// Figure-level benchmarks: one testing.B benchmark per table/figure
// of the paper's evaluation section, plus ablation benches for the
// design choices called out in DESIGN.md. Each iteration executes one
// complete benchmark cell (load + timed transaction phase) and
// reports throughput and anomaly score as custom metrics.
//
// Full-size sweeps (the paper's exact parameter grids) live in
// cmd/experiments; these benches use reduced cells so `go test
// -bench=.` completes in minutes.
package ycsbt_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/bench"
	"ycsbt/internal/client"
	"ycsbt/internal/cloudsim"
	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/trace"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

// benchOpts sizes one sweep cell for a testing.B iteration.
func benchOpts(threads int) bench.SweepOptions {
	return bench.SweepOptions{
		Quick:       true,
		RecordCount: 500,
		CellTime:    150 * time.Millisecond,
		Threads:     []int{threads},
	}
}

// reportLast attaches the sweep's final point as benchmark metrics.
func reportLast(b *testing.B, s bench.Series) {
	if len(s.Points) == 0 {
		return
	}
	pt := s.Points[len(s.Points)-1]
	b.ReportMetric(pt.Throughput, "tput_ops/s")
	b.ReportMetric(pt.AnomalyScore, "anomaly_score")
	b.ReportMetric(float64(pt.Aborts), "aborts")
}

// BenchmarkFigure2 regenerates one cell of Figure 2 (transactional
// CEW on simulated WAS) per mix at 16 threads.
func BenchmarkFigure2(b *testing.B) {
	for _, mix := range []struct {
		name string
		read float64
	}{{"Mix90_10", 0.9}, {"Mix80_20", 0.8}, {"Mix70_30", 0.7}} {
		b.Run(mix.name, func(b *testing.B) {
			var last []bench.Series
			for i := 0; i < b.N; i++ {
				series, err := bench.Figure2(context.Background(), bench.SweepOptions{
					Quick: true, RecordCount: 500,
					CellTime: 150 * time.Millisecond, Threads: []int{16},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = series
			}
			// Figure2 returns all three mixes; report the requested one.
			for _, s := range last {
				if s.Label == "read:write "+mix.name[3:5]+":"+mix.name[6:8] {
					reportLast(b, s)
				}
			}
		})
	}
}

// BenchmarkFigure3 regenerates Figure 3's two curves at 8 threads.
func BenchmarkFigure3(b *testing.B) {
	var last []bench.Series
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure3(context.Background(), benchOpts(8))
		if err != nil {
			b.Fatal(err)
		}
		last = series
	}
	for _, s := range last {
		pt := s.Points[len(s.Points)-1]
		b.ReportMetric(pt.Throughput, s.Label+"_ops/s")
	}
}

// BenchmarkFigure4 regenerates one Figure 4/5 cell (non-transactional
// CEW over HTTP) at 8 threads; anomaly_score is the Figure 4 value
// and tput_ops/s the Figure 5 value.
func BenchmarkFigure4And5(b *testing.B) {
	var last bench.Series
	for i := 0; i < b.N; i++ {
		fig4, _, err := bench.Figure45(context.Background(), benchOpts(8))
		if err != nil {
			b.Fatal(err)
		}
		last = fig4
	}
	reportLast(b, last)
}

// BenchmarkTier5Overhead regenerates the per-operation latency table
// and reports the transactional read-modify-write cost.
func BenchmarkTier5Overhead(b *testing.B) {
	var rows []bench.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Tier5Overhead(context.Background(), benchOpts(8))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Series == "TX-READMODIFYWRITE" {
			b.ReportMetric(r.TxUS, "tx_rmw_us")
		}
		if r.Series == "READ-MODIFY-WRITE" && r.NonTxUS > 0 {
			b.ReportMetric(r.NonTxUS, "nontx_rmw_us")
		}
	}
}

// BenchmarkMiddlewareChain measures the per-operation cost of the
// middleware stack itself: a read against the in-memory binding under
// progressively deeper chains. The deltas between sub-benchmarks are
// the interception overhead each layer adds.
func BenchmarkMiddlewareChain(b *testing.B) {
	cases := []struct {
		name  string
		chain func(base db.DB, reg *measurement.Registry) db.DB
	}{
		{"Bare", func(base db.DB, _ *measurement.Registry) db.DB {
			return base
		}},
		{"Metered", func(base db.DB, reg *measurement.Registry) db.DB {
			return db.Chain(base, db.Metered(reg.Recorder()))
		}},
		{"TraceMeteredRetry", func(base db.DB, reg *measurement.Registry) db.DB {
			log := trace.NewOpLog(1024)
			return db.Chain(base,
				db.Traced(log),
				db.Metered(reg.Recorder()),
				db.Retry(db.RetryOptions{}))
		}},
	}
	ctx := context.Background()
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			base := db.NewMemory()
			if err := base.Insert(ctx, "t", "k", db.Record{"f": []byte("v")}); err != nil {
				b.Fatal(err)
			}
			d := c.chain(base, measurement.NewRegistry(0))
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.Read(ctx, "t", "k", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// cewCell runs one in-memory transactional CEW cell and returns
// (operations, aborts); shared by the ablation benches.
func cewCell(b *testing.B, m *txn.Manager, over map[string]string) (int64, int64) {
	b.Helper()
	props := map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               "300",
		"totalcash":                 "30000",
		"operationcount":            "20000",
		"threadcount":               "8",
		"readproportion":            "0.2",
		"readmodifywriteproportion": "0.8",
		"requestdistribution":       "zipfian",
	}
	for k, v := range over {
		props[k] = v
	}
	p := properties.FromMap(props)
	w, err := workload.New("closedeconomy")
	if err != nil {
		b.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		b.Fatal(err)
	}
	c, err := client.New(client.BuildConfig(p), w, txn.NewBinding(m), reg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Load(ctx); err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		b.Fatal(err)
	}
	v := res.Validation
	if v != nil && !v.Valid {
		b.Fatalf("transactional ablation broke the invariant: %+v", v)
	}
	return res.Operations, res.Aborts
}

// BenchmarkAblationLockOrder compares ordered vs unordered prepare
// (DESIGN.md ablation 1): correctness is identical, but the abort
// rate under contention differs.
func BenchmarkAblationLockOrder(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"Ordered", false}, {"Unordered", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var ops, aborts int64
			for i := 0; i < b.N; i++ {
				inner := kvstore.OpenMemory()
				m, err := txn.NewManager(txn.Options{DisableOrderedPrepare: mode.disable},
					txn.NewLocalStore("local", inner))
				if err != nil {
					b.Fatal(err)
				}
				ops, aborts = cewCell(b, m, nil)
				inner.Close()
			}
			b.ReportMetric(float64(aborts)/float64(ops)*100, "abort_%")
		})
	}
}

// BenchmarkAblationDistribution compares the anomaly score of the
// non-transactional store under zipfian vs uniform key choice
// (DESIGN.md ablation 2): skew concentrates conflicts.
func BenchmarkAblationDistribution(b *testing.B) {
	for _, dist := range []string{"zipfian", "uniform"} {
		b.Run(dist, func(b *testing.B) {
			var score float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(8)
				fig4, _, err := bench.Figure45WithDistribution(context.Background(), o, dist)
				if err != nil {
					b.Fatal(err)
				}
				score = fig4.Points[len(fig4.Points)-1].AnomalyScore
			}
			b.ReportMetric(score, "anomaly_score")
		})
	}
}

// BenchmarkAblationWAL measures the embedded engine's write path with
// the write-ahead log off, on, and on+fsync (DESIGN.md ablation 3 —
// the paper's "latency versus durability" trade-off).
func BenchmarkAblationWAL(b *testing.B) {
	cases := []struct {
		name string
		open func(dir string) (*kvstore.Store, error)
	}{
		{"NoWAL", func(string) (*kvstore.Store, error) { return kvstore.OpenMemory(), nil }},
		{"WAL", func(dir string) (*kvstore.Store, error) {
			return kvstore.Open(kvstore.Options{Path: dir + "/w.wal"})
		}},
		{"WALSync", func(dir string) (*kvstore.Store, error) {
			return kvstore.Open(kvstore.Options{Path: dir + "/w.wal", SyncWrites: true})
		}},
	}
	val := map[string][]byte{"field0": make([]byte, 100)}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s, err := c.open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Put("t", fmt.Sprintf("key%07d", i%100000), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreParallel measures the embedded engine's point-op path
// under parallel load with one partition (the pre-sharding single
// lock) versus the default eight. Run with -cpu=1,8,32 to see the
// shard win grow with parallelism.
func BenchmarkStoreParallel(b *testing.B) {
	const keys = 100000
	val := map[string][]byte{"field0": make([]byte, 100)}
	keyset := make([]string, keys)
	for i := range keyset {
		keyset[i] = fmt.Sprintf("key%07d", i)
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("Shards%d", shards), func(b *testing.B) {
			s, err := kvstore.Open(kvstore.Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < keys; i++ {
				if _, err := s.Put("t", keyset[i], val); err != nil {
					b.Fatal(err)
				}
			}
			var goroutine atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Decorrelate goroutines: each starts at its own offset
				// and walks a coprime stride, so concurrent accesses
				// spread across the key space (and hence the shards)
				// instead of marching through it in lockstep.
				g := goroutine.Add(1)
				i := int(g * 31337 % keys)
				for pb.Next() {
					k := keyset[i]
					if i%5 == 0 { // 20% writes, 80% reads
						if _, err := s.Put("t", k, val); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := s.Get("t", k); err != nil {
							b.Fatal(err)
						}
					}
					i = (i + 7919) % keys
				}
			})
		})
	}
}

// BenchmarkStoreScanMerge measures the ordered cross-partition scan:
// with one partition it is a plain tree walk, with eight it k-way
// merges the per-shard trees through the cursor heap.
func BenchmarkStoreScanMerge(b *testing.B) {
	const keys = 100000
	val := map[string][]byte{"field0": make([]byte, 100)}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("Shards%d", shards), func(b *testing.B) {
			s, err := kvstore.Open(kvstore.Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < keys; i++ {
				if _, err := s.Put("t", fmt.Sprintf("key%07d", i), val); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := fmt.Sprintf("key%07d", (i*997)%keys)
				kvs, err := s.Scan("t", start, 100)
				if err != nil {
					b.Fatal(err)
				}
				if len(kvs) == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// BenchmarkAblationPool sweeps the simulated container's
// connection-pool size at fixed high concurrency (DESIGN.md ablation
// 4): smaller pools push the contention knee earlier, the Figure 2
// decline mechanism.
func BenchmarkAblationPool(b *testing.B) {
	for _, pool := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("Pool%d", pool), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				cfg := cloudsim.WASPreset()
				cfg.PoolSize = pool
				cfg.ReadLatency = 500 * time.Microsecond
				cfg.WriteLatency = time.Millisecond
				cfg.RateLimit = 0
				inner := kvstore.OpenMemory()
				cloud := cloudsim.NewOver(cfg, inner)
				m, err := txn.NewManager(txn.Options{}, cloud)
				if err != nil {
					b.Fatal(err)
				}
				loadM, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", inner))
				if err != nil {
					b.Fatal(err)
				}
				tput = poolCell(b, loadM, m)
				inner.Close()
			}
			b.ReportMetric(tput, "tput_ops/s")
		})
	}
}

func poolCell(b *testing.B, loadM, runM *txn.Manager) float64 {
	b.Helper()
	p := properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               "300",
		"totalcash":                 "30000",
		"operationcount":            "1000000000",
		"maxexecutiontime":          "1",
		"threadcount":               "64",
		"readproportion":            "0.9",
		"readmodifywriteproportion": "0.1",
		"requestdistribution":       "zipfian",
	})
	w, err := workload.New("closedeconomy")
	if err != nil {
		b.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	loadCfg := client.BuildConfig(p)
	loadCfg.SkipValidation = true
	lc, err := client.New(loadCfg, w, txn.NewBinding(loadM), reg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := lc.Load(ctx); err != nil {
		b.Fatal(err)
	}
	runCfg := client.BuildConfig(p)
	runCfg.SkipValidation = true
	runCfg.MaxExecutionTime = 150 * time.Millisecond
	rc, err := client.New(runCfg, w, txn.NewBinding(runM), reg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := rc.Run(ctx)
	if err != nil {
		b.Fatal(err)
	}
	return res.Throughput
}

// BenchmarkHistoryCaptureOverhead measures what history capture costs
// per transaction, with and without a sink streaming to a real
// history file. Two cell families:
//
//   - TxnKV: one RMW transaction through the txnkv binding (the
//     native capture path — txn.Manager emits at commit). This is the
//     deployment the ≤5% throughput budget governs; capture adds one
//     record build and one channel send to a full prepare/TSR/
//     roll-forward commit.
//   - Middleware: the same RMW against the raw in-memory kvstore
//     binding through the capture middleware — the adversarial floor,
//     where the whole transaction is a handful of map operations and
//     the write-behind encoder competes for the same cores. Overhead
//     here bounds what any realistic binding can see.
//
// CI uploads both families as BENCH_history.json.
func BenchmarkHistoryCaptureOverhead(b *testing.B) {
	const keys = 1024
	keyset := make([]string, keys)
	for i := range keyset {
		keyset[i] = fmt.Sprintf("key%07d", i)
	}
	val := db.Record{"field0": make([]byte, 100)}
	ctx := context.Background()

	for _, capture := range []bool{false, true} {
		name := "TxnKV/CaptureOff"
		if capture {
			name = "TxnKV/CaptureOn"
		}
		b.Run(name, func(b *testing.B) {
			s, err := kvstore.Open(kvstore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			m, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("local", s))
			if err != nil {
				b.Fatal(err)
			}
			binding := txn.NewBinding(m)
			for i := range keyset {
				if err := binding.Insert(ctx, "t", keyset[i], val); err != nil {
					b.Fatal(err)
				}
			}
			var sink *history.Sink
			if capture {
				sink, err = history.OpenFile(filepath.Join(b.TempDir(), "history.ndjson"), history.SinkOptions{})
				if err != nil {
					b.Fatal(err)
				}
				binding.SetHistorySink(sink)
			}
			var goroutine atomic.Int64
			b.ResetTimer()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				g := goroutine.Add(1)
				i := int(g * 31337 % keys)
				for pb.Next() {
					tctx, err := binding.Start(ctx)
					if err != nil {
						b.Fatal(err)
					}
					v := binding.WithTx(tctx)
					k := keyset[i]
					// Conflicts between racing goroutines are normal txnkv
					// behaviour; an aborted attempt still counts as one
					// iteration (both cells pay the same abort rate).
					ok := true
					if _, err := v.Read(ctx, "t", k, nil); err != nil {
						ok = false
					}
					if ok && v.Update(ctx, "t", k, val) != nil {
						ok = false
					}
					if !ok || binding.Commit(ctx, tctx) != nil {
						binding.Abort(ctx, tctx)
					}
					i = (i + 7919) % keys
				}
			})
			b.StopTimer()
			if capture {
				if err := sink.Close(); err != nil {
					b.Fatal(err)
				}
				events, dropped := sink.Stats()
				b.ReportMetric(float64(dropped)/float64(events+1), "dropped/event")
			}
		})
	}

	for _, capture := range []bool{false, true} {
		name := "Middleware/CaptureOff"
		if capture {
			name = "Middleware/CaptureOn"
		}
		b.Run(name, func(b *testing.B) {
			s, err := kvstore.Open(kvstore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			binding := kvstore.NewBinding(s)
			for i := range keyset {
				if err := binding.Insert(ctx, "t", keyset[i], val); err != nil {
					b.Fatal(err)
				}
			}
			var sink *history.Sink
			if capture {
				sink, err = history.OpenFile(filepath.Join(b.TempDir(), "history.ndjson"), history.SinkOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			var session atomic.Int64
			b.ResetTimer()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				d := db.DB(binding)
				if capture {
					d = db.Chain(binding, history.Middleware(sink, int(session.Add(1))))
				}
				tdb := db.Transactional(d)
				g := session.Add(1)
				i := int(g * 31337 % keys)
				for pb.Next() {
					tctx, err := tdb.Start(ctx)
					if err != nil {
						b.Fatal(err)
					}
					k := keyset[i]
					if _, err := d.Read(ctx, "t", k, nil); err != nil {
						b.Fatal(err)
					}
					if err := d.Update(ctx, "t", k, val); err != nil {
						b.Fatal(err)
					}
					if err := tdb.Commit(ctx, tctx); err != nil {
						b.Fatal(err)
					}
					i = (i + 7919) % keys
				}
			})
			b.StopTimer()
			if capture {
				if err := sink.Close(); err != nil {
					b.Fatal(err)
				}
				events, dropped := sink.Stats()
				b.ReportMetric(float64(dropped)/float64(events+1), "dropped/event")
			}
		})
	}
}
