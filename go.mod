module ycsbt

go 1.22
