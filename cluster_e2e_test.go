// Multi-process cluster end to end: three real kvserver processes
// behind one shard map, client-coordinated CEW transactions routed
// across them by the cluster binding, and a live slot migration in
// the middle of the timed run. The closed economy must balance to an
// anomaly score of zero — transactions spanning nodes, surviving a
// rebalance, losing nothing.
package ycsbt_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/workload"

	_ "ycsbt/internal/txn" // register the txnkv binding
)

// freeAddrs reserves n distinct loopback ports by listening and
// immediately closing; the tiny reuse race is acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// startClusterProcs builds the kvserver binary once and spawns one
// real process per address, all sharing a uniform bootstrap map. Every
// node also gets a binary wire listener and an ops listener, so the
// fleet exercises the framed protocol end to end and the test can
// confirm from kvwire_* metrics that traffic really rode it; opsURLs
// receives one ops base URL per node when non-nil.
func startClusterProcs(t *testing.T, addrs []string, slots int, opsURLs *[]string) []string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kvserver")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/kvserver").CombinedOutput(); err != nil {
		t.Fatalf("building kvserver: %v\n%s", err, out)
	}
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")
	wireAddrs := freeAddrs(t, len(addrs))
	opsAddrs := freeAddrs(t, len(addrs))
	for i, a := range addrs {
		cmd := exec.Command(bin,
			"-addr", a,
			"-cluster-node-id", urls[i],
			"-peers", peers,
			"-cluster-slots", fmt.Sprint(slots),
			"-wire-addr", wireAddrs[i],
			"-ops-addr", opsAddrs[i],
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	}
	if opsURLs != nil {
		for _, a := range opsAddrs {
			*opsURLs = append(*opsURLs, "http://"+a)
		}
	}
	for _, u := range urls {
		ok := false
		for i := 0; i < 100; i++ {
			resp, err := http.Get(u + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok = true
					break
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("node %s never became healthy", u)
		}
	}
	return urls
}

// adminMigrate drives one live migration through the admin route.
func adminMigrate(u string, slot int, dest string) error {
	resp, err := http.Post(fmt.Sprintf("%s/admin/migrate?slot=%d&dest=%s", u, slot, dest), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("migrate via %s: %s", u, resp.Status)
	}
	return nil
}

func TestClusterCEWZeroAnomalyAcrossMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e cell")
	}
	ctx := context.Background()
	const slots = 12
	var opsURLs []string
	urls := startClusterProcs(t, freeAddrs(t, 3), slots, &opsURLs)

	p := properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               "150",
		"totalcash":                 "15000",
		"operationcount":            "1000000000", // bounded by MaxExecutionTime
		"threadcount":               "8",
		"readproportion":            "0.2",
		"readmodifywriteproportion": "0.8",
		"requestdistribution":       "zipfian",
		"fieldcount":                "1",
		"fieldlength":               "32",
		"txnkv.backend":             "cluster",
		"cluster.nodes":             strings.Join(urls, ","),
	})
	d, err := db.Open("txnkv")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Init(p); err != nil {
		t.Fatal(err)
	}
	defer d.Cleanup()
	w, err := workload.New("closedeconomy")
	if err != nil {
		t.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		t.Fatal(err)
	}

	// Capture the full operation history — the offline checker must
	// certify the cross-node, cross-migration run serializable.
	histPath := filepath.Join(t.TempDir(), "history.ndjson")
	sink, err := history.OpenFile(histPath, history.SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}

	loadCfg := client.BuildConfig(p)
	loadCfg.SkipValidation = true
	loadCfg.History = sink
	lc, err := client.New(loadCfg, w, d, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Load(ctx); err != nil {
		t.Fatalf("cluster load: %v", err)
	}

	// Two live migrations fire while the timed run is in flight. The
	// bootstrap map assigns slots round-robin, so slot 0 starts on
	// node 0 and slot 1 on node 1.
	migErr := make(chan error, 1)
	go func() {
		time.Sleep(500 * time.Millisecond)
		if err := adminMigrate(urls[0], 0, urls[1]); err != nil {
			migErr <- err
			return
		}
		time.Sleep(300 * time.Millisecond)
		migErr <- adminMigrate(urls[1], 1, urls[2])
	}()

	runCfg := client.BuildConfig(p)
	runCfg.MaxExecutionTime = 2500 * time.Millisecond
	runCfg.SkipValidation = true // the run deadline would cut the scan short; validate below
	runCfg.History = sink
	rc, err := client.New(runCfg, w, d, reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rc.Run(ctx)
	if err != nil {
		t.Fatalf("cluster CEW run: %v", err)
	}
	if err := <-migErr; err != nil {
		t.Fatalf("mid-run migration: %v", err)
	}
	if res.Operations == 0 {
		t.Fatal("cluster CEW cell completed zero operations")
	}
	v, err := w.Validate(ctx, d)
	if err != nil {
		t.Fatalf("cluster CEW validation: %v", err)
	}
	t.Logf("cluster CEW: %d ops, %d aborts, anomaly score %g (%s)",
		res.Operations, res.Aborts, v.AnomalyScore, v.Detail)
	if !v.Valid || v.AnomalyScore != 0 {
		t.Errorf("cross-node transactions lost money across migration: %+v", v)
	}

	// Both migrations really happened: the fleet converged on map v3.
	for _, u := range urls {
		resp, err := http.Get(u + "/v1/shardmap")
		if err != nil {
			t.Fatal(err)
		}
		ver := resp.Header.Get("X-Shard-Map-Version")
		resp.Body.Close()
		if ver != "3" {
			t.Errorf("node %s at map v%s after two migrations, want v3", u, ver)
		}
	}

	// The run really rode the binary protocol: every node's wire
	// listener saw frames.
	for i, u := range opsURLs {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		frames := 0.0
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, `kvwire_frames_total{dir="in"}`) {
				fmt.Sscanf(line, `kvwire_frames_total{dir="in"} %g`, &frames)
			}
		}
		if frames == 0 {
			t.Errorf("node %d (%s): kvwire_frames_total{dir=in} = 0; cluster traffic never rode the wire", i, urls[i])
		}
	}

	// Offline certification: replay the captured history and certify
	// the whole run — client-coordinated transactions across three
	// nodes and two live migrations — serializable.
	if err := sink.Close(); err != nil {
		t.Fatalf("history sink: %v", err)
	}
	events, dropped := sink.Stats()
	if events == 0 {
		t.Fatal("history sink captured nothing")
	}
	if dropped != 0 {
		t.Errorf("history sink dropped %d records", dropped)
	}
	recs, _, err := history.LoadFile(histPath)
	if err != nil {
		t.Fatalf("decoding history: %v", err)
	}
	cert := history.Check(recs)
	t.Logf("histcheck: %s", cert.Summary())
	if cert.Committed == 0 {
		t.Fatal("history holds no committed transactions")
	}
	if !cert.Serializable {
		t.Errorf("cluster CEW history refuted: %+v", cert.Cycles)
	}
}
