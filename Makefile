# Tier-1 verification entry point (see ROADMAP.md): `make check` is
# what CI and contributors run before merging.

GO ?= go

.PHONY: check vet build test test-race fuzz-smoke bench bench-quick bench-cluster clean

# The full tier-1 gate: vet, build everything, the race-enabled short
# test run, then a short coverage-guided fuzz of the binary frame
# codec (hostile bytes off the network must never panic the decoder)
# and of the history NDJSON decoder (hostile history files must never
# panic the offline checker).
check: vet build test-race fuzz-smoke

fuzz-smoke:
	$(GO) test -run xx -fuzz FuzzFrameCodec -fuzztime 10s ./internal/kvwire/
	$(GO) test -run xx -fuzz FuzzHistoryDecoder -fuzztime 10s ./internal/history/

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Plain test run (the ROADMAP tier-1 command).
test:
	$(GO) test ./...

# Short mode keeps the race run quick; the race detector covers the
# sharded measurement path and the per-thread middleware chains.
test-race:
	$(GO) test -race -short ./...

# Reduced-cell figure benchmarks plus the measurement hot-path bench.
bench:
	$(GO) test -bench . -benchtime 1x ./...
	$(GO) test -bench BenchmarkSeriesMeasureParallel -cpu 1,8,32 ./internal/measurement/

# The acceptance benchmarks, machine-readable: CI uploads
# BENCH_batch.json (batched-vs-single ratio), BENCH_read.json (the
# lock-free snapshot read path vs the emulated locked+clone baseline),
# BENCH_mvcc.json (as-of scan throughput under concurrent writers
# plus the head-read path, whose 0-alloc budget must not regress now
# that records carry version chains) and BENCH_wire.json (the framed
# binary transport vs HTTP/NDJSON at 32 client threads — the Read
# cells carry the ≥2x acceptance bound) so all regressions are
# visible per run. BENCH_history.json carries the history-capture
# overhead cells (CaptureOn vs CaptureOff; budget ≤5%).
bench-quick:
	$(GO) test -run xx -bench BenchmarkBatchVsSingle -benchtime 3x -json . | tee BENCH_batch.json
	$(GO) test -run xx -bench 'BenchmarkReadHeavy|BenchmarkGetScanParallel' -benchtime 300ms -cpu 4 -json ./internal/kvstore/ | tee BENCH_read.json
	$(GO) test -run xx -bench BenchmarkAsOfScanUnderWrites -benchtime 300ms -cpu 4 -json ./internal/kvstore/ | tee BENCH_mvcc.json
	$(GO) test -run xx -bench BenchmarkStoreParallel -benchtime 300ms -json . | tee -a BENCH_mvcc.json
	$(GO) test -run xx -bench BenchmarkWireVsHTTP -benchtime 1s -json . | tee BENCH_wire.json
	$(GO) test -run xx -bench BenchmarkHistoryCaptureOverhead -benchtime 500ms -cpu 4 -json . | tee BENCH_history.json
	$(GO) test -run xx -bench BenchmarkScanWireVsHTTP -benchtime 1s -json . | tee BENCH_scan.json

# Cluster scaling acceptance bench: identical capacity-bound nodes,
# read-heavy load routed by the shard map, 1 node vs 3. The 3-node
# cell must clear 2x; CI uploads BENCH_cluster.json per run.
bench-cluster:
	$(GO) test -run xx -bench BenchmarkClusterScaling -benchtime 3x -json . | tee BENCH_cluster.json

clean:
	$(GO) clean ./...
