// History capture end to end over a non-transactional binding: an
// injected write skew that the γ anomaly score cannot see — the
// closed-economy invariant holds, so Tier 6 scores the run clean —
// but the offline checker refutes with a named RW–RW witness cycle.
// This is the headline capability of the history subsystem: it
// detects anomaly classes that value-conservation checking is blind
// to, and correctly classifies them (write skew is refuted for
// serializability yet certified for snapshot isolation).
package ycsbt_test

import (
	"context"
	"path/filepath"
	"strconv"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/kvstore"
)

func TestHistoryRefutesWriteSkewInvisibleToGamma(t *testing.T) {
	ctx := context.Background()
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	binding := kvstore.NewBinding(store)

	cash := func(n int) db.Record { return db.Record{"cash": []byte(strconv.Itoa(n))} }
	readCash := func(d db.DB, key string) int {
		t.Helper()
		rec, err := d.Read(ctx, "usertable", key, nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(string(rec["cash"]))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Initial state, installed outside the history: x = y = 100, with
	// the invariant sum(x, y) = 200.
	if err := binding.Insert(ctx, "usertable", "x", cash(100)); err != nil {
		t.Fatal(err)
	}
	if err := binding.Insert(ctx, "usertable", "y", cash(100)); err != nil {
		t.Fatal(err)
	}

	histPath := filepath.Join(t.TempDir(), "history.ndjson")
	sink, err := history.OpenFile(histPath, history.SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Two sessions over the same store, each with its own capture
	// middleware — the same stacking the client gives every thread.
	// The kvstore binding has no transaction machinery (no-op
	// demarcation), so the interleaving below really executes
	// unisolated.
	s1 := db.Chain(binding, history.Middleware(sink, 1)).(db.TransactionalDB)
	s2 := db.Chain(binding, history.Middleware(sink, 2)).(db.TransactionalDB)

	// Classic write skew: both transactions read both accounts, then
	// each updates a different one. Every individual update conserves
	// nothing — each writer re-derives its target from its stale reads
	// — yet the final sum is still 200, so γ = 0.
	t1, err := s1.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s2.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	x1, y1 := readCash(s1, "x"), readCash(s1, "y")
	x2, y2 := readCash(s2, "x"), readCash(s2, "y")
	// T1 moves 25 from x's half of the budget: x := x - 25.
	if err := s1.Update(ctx, "usertable", "x", cash(x1-25)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(ctx, t1); err != nil {
		t.Fatal(err)
	}
	// T2, still acting on its pre-T1 snapshot, moves 25 to y: y := y + 25.
	if err := s2.Update(ctx, "usertable", "y", cash(y2+25)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(ctx, t2); err != nil {
		t.Fatal(err)
	}
	_ = x2
	_ = y1

	// Tier-6-style value check: the economy balances, γ = |200-200|/n = 0.
	if sum := readCash(binding, "x") + readCash(binding, "y"); sum != 200 {
		t.Fatalf("sum = %d; this test needs a γ=0 interleaving", sum)
	}

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := history.LoadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	res := history.Check(recs)
	t.Logf("histcheck:\n%s", res.Summary())

	if res.Serializable {
		t.Fatal("write skew certified serializable; γ = 0 hid a real anomaly")
	}
	if len(res.Cycles) != 1 {
		t.Fatalf("cycles = %+v", res.Cycles)
	}
	c := res.Cycles[0]
	if len(c.Nodes) != 2 {
		t.Fatalf("witness names %d txns, want 2: %+v", len(c.Nodes), c)
	}
	keys := map[string]bool{}
	for _, e := range c.Edges {
		if e.Type != history.EdgeRW {
			t.Fatalf("witness edge %s --%s--> %s, want pure RW cycle", e.From, e.Type, e.To)
		}
		keys[e.Key] = true
	}
	if !keys["usertable/x"] || !keys["usertable/y"] {
		t.Fatalf("witness keys = %v, want both accounts", keys)
	}
	if !c.SIPermitted {
		t.Fatal("write-skew witness should carry the consecutive-RW (SI-permitted) shape")
	}
	// The classification matters: snapshot isolation permits exactly
	// this anomaly, so SI must be certified while serializability is
	// refuted.
	if res.SI != history.SICertified {
		t.Fatalf("SI = %s (violations %+v), want certified", res.SI, res.SIViolations)
	}
}
