// End-to-end exercise of the MVCC tentpole: a read-only transaction
// scans the whole table at one fixed timestamp while a closed economy
// of transfer writers churns underneath it. Every snapshot scan must
// sum to exactly the snapshot-time total — no torn cuts, no drift —
// and the writers must keep committing while the scans run (snapshot
// readers take no locks).
package ycsbt_test

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/txn"
)

func TestLongScanUnderWrites(t *testing.T) {
	ctx := context.Background()
	const (
		writers  = 32
		accounts = 64
		initial  = 100
		total    = accounts * initial
	)

	// Aggressive retention plus a live vacuum so the scan also proves
	// the min-active-ts watermark: without it the pinned versions would
	// be reclaimed mid-scan.
	inner, err := kvstore.Open(kvstore.Options{Retention: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	m, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("local", inner))
	if err != nil {
		t.Fatal(err)
	}

	acct := func(i int) string { return "acct" + strconv.Itoa(i) }
	bal := func(n int64) map[string][]byte {
		return map[string][]byte{"balance": []byte(strconv.FormatInt(n, 10))}
	}
	getBal := func(f map[string][]byte) int64 {
		n, err := strconv.ParseInt(string(f["balance"]), 10, 64)
		if err != nil {
			t.Fatalf("bad balance %q: %v", f["balance"], err)
		}
		return n
	}

	if err := m.RunInTxn(ctx, 0, func(tx *txn.Txn) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Insert("", "t", acct(i), bal(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// 32 transfer writers: move money between random account pairs,
	// preserving the total at every commit boundary.
	var (
		stop    atomic.Bool
		commits atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := int64(rng.Intn(5) + 1)
				err := m.RunInTxn(ctx, 2, func(tx *txn.Txn) error {
					ff, err := tx.Read(ctx, "", "t", acct(from))
					if err != nil {
						return err
					}
					tf, err := tx.Read(ctx, "", "t", acct(to))
					if err != nil {
						return err
					}
					if err := tx.Write("", "t", acct(from), bal(getBal(ff)-amt)); err != nil {
						return err
					}
					return tx.Write("", "t", acct(to), bal(getBal(tf)+amt))
				})
				if err == nil {
					commits.Add(1)
				}
			}
		}(int64(w))
	}

	// A vacuum loop races the pinned reader for the old versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			inner.Vacuum()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Let the economy churn, then open the long-running snapshot.
	for commits.Load() < 100 {
		time.Sleep(time.Millisecond)
	}
	ro, err := m.BeginReadOnly(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var pinnedTS int64
	before := commits.Load()
	for round := 0; round < 15; round++ {
		kvs, err := ro.Scan(ctx, "", "t", "", -1)
		if err != nil {
			t.Fatalf("round %d: snapshot scan: %v", round, err)
		}
		if len(kvs) != accounts {
			t.Fatalf("round %d: scan saw %d accounts, want %d", round, len(kvs), accounts)
		}
		var sum int64
		for _, kv := range kvs {
			sum += getBal(kv.Fields)
		}
		if sum != total {
			t.Fatalf("round %d: snapshot scan sum = %d, want exactly %d", round, sum, total)
		}
		if ts := ro.ReadTS(""); round == 0 {
			pinnedTS = ts
			if ts == 0 {
				t.Fatal("no snapshot ts pinned")
			}
		} else if ts != pinnedTS {
			t.Fatalf("round %d: snapshot ts moved %d -> %d", round, pinnedTS, ts)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Writers were never blocked by the scanning snapshot.
	if after := commits.Load(); after <= before {
		t.Fatalf("writers stalled during the snapshot scans: %d -> %d commits", before, after)
	}
	if err := ro.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	stop.Store(true)
	wg.Wait()

	// The economy stayed closed at the head too.
	var sum int64
	if err := m.RunInTxn(ctx, 0, func(tx *txn.Txn) error {
		sum = 0
		kvs, err := tx.Scan(ctx, "", "t", "", -1)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			sum += getBal(kv.Fields)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != total {
		t.Fatalf("final head sum = %d, want %d", sum, total)
	}
	t.Logf("scanned %d rounds at ts %d over %d live commits", 15, pinnedTS, commits.Load()-before)
}
