// Package ycsbt is a Go reproduction of "YCSB+T: Benchmarking
// Web-scale Transactional Databases" (Dey, Fekete, Nambiar, Röhm —
// ICDE 2014 workshops).
//
// The repository contains:
//
//   - internal/client, internal/workload, internal/measurement,
//     internal/generator, internal/properties — the YCSB+T benchmark
//     framework: a YCSB-compatible workload executor extended with
//     transaction wrapping (Tier 5, transactional overhead) and a
//     post-run validation stage with anomaly scoring (Tier 6,
//     consistency), plus the Closed Economy Workload (CEW);
//   - internal/kvstore, internal/httpkv — an embedded versioned
//     B-tree key-value engine with a write-ahead log, and its HTTP
//     front end (the paper's WiredTiger-over-HTTP analog);
//   - internal/cloudsim — a simulated cloud store container
//     (WAS/GCS-like: request latency, rate ceiling, connection-pool
//     contention, ETag conditional puts);
//   - internal/txn — a client-coordinated multi-item transaction
//     library in the style of the authors' own system (Percolator /
//     ReTSO family, no central coordinator);
//   - internal/bench — sweeps that regenerate every figure of the
//     paper's evaluation (run `go run ./cmd/experiments`);
//   - cmd/ycsbt, cmd/kvserver, cmd/experiments — the benchmark
//     client, the HTTP store server, and the figure harness;
//   - examples/ — runnable demonstrations of the public surface.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package ycsbt
