// End-to-end benchmark for streamed scans and framed migration: the
// BENCH_scan.json acceptance cells. Scan1k pits the HTTP/NDJSON scan
// path against credit-gated chunk frames at 32 client threads on
// 1000-record scans (the wire cell must clear 2x); MigrateSlot times
// the wall clock of moving one populated slot between two live nodes
// with the copy riding HTTP versus scan/ingest frames.
package ycsbt_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/properties"
)

// scanTransportCell times 32 client threads each pulling 1000-record
// scan pages over one transport. The records/s metric is the headline:
// scans move orders of magnitude more payload per request than point
// ops, so per-record encode/decode cost dominates.
func scanTransportCell(b *testing.B, mode string) {
	store, url := startWireKVServer(b)
	val := make([]byte, 100)
	for i := 0; i < 2000; i++ {
		if _, err := store.Put("usertable", fmt.Sprintf("user%05d", i), map[string][]byte{"field0": val}); err != nil {
			b.Fatal(err)
		}
	}
	c := httpkv.NewClient(url, nil)
	p := properties.New()
	p.Set("rawhttp.wire", mode)
	if err := c.Init(p); err != nil {
		b.Fatal(err)
	}
	defer c.Cleanup()
	ctx := context.Background()
	// Prime the pool and the capability sniff outside the timed region.
	if kvs, err := c.Scan(ctx, "usertable", "user00000", 1000, nil); err != nil || len(kvs) != 1000 {
		b.Fatalf("prime scan: %d records, err=%v", len(kvs), err)
	}
	var seq, recs atomic.Int64
	b.SetParallelism(32)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			from := fmt.Sprintf("user%05d", int(seq.Add(1))%1000)
			kvs, err := c.Scan(ctx, "usertable", from, 1000, nil)
			if err != nil || len(kvs) != 1000 {
				b.Errorf("scan from %s: %d records, err=%v", from, len(kvs), err)
				return
			}
			recs.Add(int64(len(kvs)))
		}
	})
	b.ReportMetric(float64(recs.Load())/time.Since(start).Seconds(), "scan_recs/s")
}

// clusterPairNode is one of the two live nodes under the migration
// cells: full HTTP front end plus a stream-capable binary listener.
type clusterPairNode struct {
	url   string
	store *kvstore.Store
}

// startClusterPair boots two cluster-mode nodes sharing one shard map,
// each advertising a streaming binary listener.
func startClusterPair(b *testing.B, slots int) ([2]clusterPairNode, *cluster.Map) {
	b.Helper()
	var lns [2]net.Listener
	var urls []string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		urls = append(urls, "http://"+ln.Addr().String())
	}
	m, err := cluster.NewUniform(cluster.PlacementHash, slots, urls, nil)
	if err != nil {
		b.Fatal(err)
	}
	var nodes [2]clusterPairNode
	for i := range lns {
		store, err := kvstore.Open(kvstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		state, err := cluster.NewState(urls[i], m, nil)
		if err != nil {
			b.Fatal(err)
		}
		core := kvwire.NewCore(store, state, 0)
		wireLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		ws := kvwire.NewServer(core, kvwire.ServerOptions{})
		go ws.Serve(wireLn)
		srv := &http.Server{Handler: httpkv.NewServerWithOptions(store, httpkv.ServerOptions{
			Cluster:  state,
			Core:     core,
			WireAddr: wireLn.Addr().String(),
		})}
		go srv.Serve(lns[i])
		b.Cleanup(func() {
			srv.Close()
			ws.Close()
			store.Close()
		})
		nodes[i] = clusterPairNode{url: urls[i], store: store}
	}
	return nodes, m
}

// migrateCell times moving one populated slot back and forth between
// two nodes, copy path pinned by disableWire. Migrating the same slot
// alternately in each direction keeps every iteration's payload
// identical without reseeding.
func migrateCell(b *testing.B, disableWire bool) {
	nodes, m := startClusterPair(b, 8)
	ctx := context.Background()
	hc := &http.Client{}
	ca := httpkv.NewClient(nodes[0].url, hc)
	cb := httpkv.NewClient(nodes[1].url, hc)
	// Seed the key space through each key's owner in batch envelopes.
	val := make([]byte, 100)
	byOwner := map[string][]db.BatchOp{}
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("user%05d", i)
		owner, _ := m.Owner(k)
		byOwner[owner] = append(byOwner[owner], db.BatchOp{
			Op: db.OpInsert, Table: "usertable", Key: k,
			Values: map[string][]byte{"field0": val},
		})
	}
	for owner, ops := range byOwner {
		c := ca
		if owner == nodes[1].url {
			c = cb
		}
		for len(ops) > 0 {
			n := min(256, len(ops))
			for _, r := range c.ExecBatch(ctx, ops[:n]) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			ops = ops[n:]
		}
	}
	// Migrate a slot node 0 owns; ~1/8 of the keys ride along.
	slot := -1
	for s := 0; s < 8; s++ {
		if m.OwnerOfSlot(s) == nodes[0].url {
			slot = s
			break
		}
	}
	if slot < 0 {
		b.Fatal("node 0 owns no slot")
	}
	dests := [2]string{nodes[1].url, nodes[0].url}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := httpkv.MigrateSlotOpts(ctx, hc, m, slot, dests[i%2], httpkv.MigrateOptions{DisableWire: disableWire})
		if err != nil {
			b.Fatalf("migration %d: %v", i, err)
		}
		m = next
	}
}

// BenchmarkScanWireVsHTTP is the streaming acceptance benchmark. The
// Scan1k wire cell carries the 2x bound over HTTP/NDJSON: on the HTTP
// path every record is JSON-encoded, chunked-transfer framed, then
// JSON-decoded; chunk frames replace all three with length-prefixed
// binary that the client decodes into pooled buffers. MigrateSlot
// shows the same machinery moving a live slot: the framed copy streams
// version-preserving records straight into the destination engine
// instead of re-putting them one HTTP batch at a time.
func BenchmarkScanWireVsHTTP(b *testing.B) {
	b.Run("Scan1k/HTTP", func(b *testing.B) { scanTransportCell(b, httpkv.WireModeOff) })
	b.Run("Scan1k/Wire", func(b *testing.B) { scanTransportCell(b, httpkv.WireModeAuto) })
	b.Run("MigrateSlot/HTTP", func(b *testing.B) { migrateCell(b, true) })
	b.Run("MigrateSlot/Wire", func(b *testing.B) { migrateCell(b, false) })
}
