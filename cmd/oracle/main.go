// Command oracle serves a timestamp oracle over HTTP for
// multi-process Percolator-style deployments:
//
//	oracle -addr 127.0.0.1:8099 &
//	ycsbt -db percolator -p percolator.oracle_url=http://127.0.0.1:8099 \
//	      -P workloads/closed_economy_workload -load -t
//
// Clients fetch timestamps with GET /ts (optionally batched:
// GET /ts?n=100).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"ycsbt/internal/oracle"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8099", "listen address")
	flag.Parse()

	srv := &http.Server{Addr: *addr, Handler: oracle.NewServer(oracle.NewLocal())}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("timestamp oracle listening on http://%s/ts\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("oracle: received %v, shutting down\n", s)
		srv.Close()
	}
}
