// Command oracle serves a timestamp oracle over HTTP for
// multi-process Percolator-style deployments:
//
//	oracle -addr 127.0.0.1:8099 &
//	ycsbt -db percolator -p percolator.oracle_url=http://127.0.0.1:8099 \
//	      -P workloads/closed_economy_workload -load -t
//
// Clients fetch timestamps with GET /ts (optionally batched:
// GET /ts?n=100). With -ops-addr set, a private ops listener serves
// /metrics, /healthz, and pprof.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"ycsbt/internal/obs"
	"ycsbt/internal/oracle"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8099", "listen address")
	opsAddr := flag.String("ops-addr", "", "ops listener address serving /metrics, /healthz, /debug/pprof (empty = disabled)")
	flag.Parse()

	handler := oracle.NewServer(oracle.NewLocal())
	if *opsAddr != "" {
		reg := obs.Default()
		reg.RegisterCollector(obs.RuntimeCollector())
		handler.Instrument(reg)
		opsSrv, opsLn, err := obs.StartOps(*opsAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oracle:", err)
			os.Exit(1)
		}
		defer opsSrv.Close()
		fmt.Printf("oracle ops listening on http://%s\n", opsLn)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("timestamp oracle listening on http://%s/ts\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("oracle: received %v, shutting down\n", s)
		srv.Close()
	}
}
