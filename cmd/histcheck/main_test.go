package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ycsbt/internal/history"
)

func writeHistory(t *testing.T, recs ...*history.TxnRecord) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.ndjson")
	sink, err := history.OpenFile(path, history.SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		sink.RecordTxn(r)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHistcheckCertifies(t *testing.T) {
	path := writeHistory(t,
		&history.TxnRecord{ID: "t1", StartTS: 1, CommitTS: 10, Outcome: history.OutcomeCommit,
			Ops: []history.Op{{Kind: history.OpWrite, Table: "u", Key: "x", Ver: 2}}},
		&history.TxnRecord{ID: "t2", StartTS: 11, CommitTS: 12, Outcome: history.OutcomeCommit,
			Ops: []history.Op{{Kind: history.OpRead, Table: "u", Key: "x", Ver: 2}}},
	)
	var out, errOut strings.Builder
	verdictPath := filepath.Join(t.TempDir(), "verdict.json")
	code := run([]string{"-json", verdictPath, path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"certified: serializable", "certified: snapshot-isolation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}
	buf, err := os.ReadFile(verdictPath)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		File         string `json:"file"`
		Serializable bool   `json:"serializable"`
		SI           string `json:"si"`
		Committed    int    `json:"committed"`
	}
	if err := json.Unmarshal(buf, &v); err != nil {
		t.Fatal(err)
	}
	if v.File != path || !v.Serializable || v.SI != history.SICertified || v.Committed != 2 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestHistcheckRefutesWithWitness(t *testing.T) {
	path := writeHistory(t,
		&history.TxnRecord{ID: "t1", StartTS: 1, CommitTS: 10, Outcome: history.OutcomeCommit,
			Ops: []history.Op{
				{Kind: history.OpRead, Table: "u", Key: "x", Ver: 1},
				{Kind: history.OpRead, Table: "u", Key: "y", Ver: 1},
				{Kind: history.OpWrite, Table: "u", Key: "x", Ver: 2}}},
		&history.TxnRecord{ID: "t2", StartTS: 2, CommitTS: 11, Outcome: history.OutcomeCommit,
			Ops: []history.Op{
				{Kind: history.OpRead, Table: "u", Key: "x", Ver: 1},
				{Kind: history.OpRead, Table: "u", Key: "y", Ver: 1},
				{Kind: history.OpWrite, Table: "u", Key: "y", Ver: 2}}},
	)
	var out, errOut strings.Builder
	code := run([]string{path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"refuted: serializable", "t1 --RW[u/y]--> t2", "t2 --RW[u/x]--> t1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestHistcheckUsageAndErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing")}, &out, &errOut); code != 2 {
		t.Fatalf("missing-file exit = %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("{\"t\":\"h\",\"version\":42}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Fatalf("bad-version exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unsupported format version") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}
