// Command histcheck is the offline consistency certifier: it replays
// an operation history captured with `ycsbt -history <file>` (or the
// "history.file" property), rebuilds the transactional dependency
// graph (WR/WW/RW edges over commit-timestamp-ordered MVCC versions),
// and certifies or refutes serializability and snapshot isolation.
//
//	histcheck [-json verdict.json] [-q] history.ndjson
//
// The human-readable report goes to stdout; every refutation names a
// witness: the ordered transaction ids, the edge types, and the keys
// of each violating cycle (or the binding constraints of each
// snapshot-isolation violation). With -json a machine-readable
// verdict is also written.
//
// Exit status: 0 when the history is certified serializable, 1 when
// serializability is refuted, 2 on usage or decode errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ycsbt/internal/history"
)

// verdict is the machine-readable output envelope.
type verdict struct {
	File  string               `json:"file"`
	Stats *history.DecodeStats `json:"decode"`
	*history.Result
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("histcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonPath := fs.String("json", "", "also write a machine-readable JSON verdict to this file")
	quiet := fs.Bool("q", false, "suppress the report; only the exit status (and -json output) matter")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: histcheck [-json verdict.json] [-q] history.ndjson")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)

	recs, stats, err := history.LoadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "histcheck:", err)
		return 2
	}
	res := history.Check(recs)

	if !*quiet {
		fmt.Fprintf(stdout, "%s: %d lines", path, stats.Lines)
		if stats.TruncatedTail {
			fmt.Fprint(stdout, " (truncated tail line ignored)")
		}
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, res.Summary())
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&verdict{File: path, Stats: stats, Result: res}, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "histcheck:", err)
			return 2
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "histcheck:", err)
			return 2
		}
	}

	if res.Serializable {
		return 0
	}
	return 1
}
