// Command ycsbt is the YCSB+T benchmark client — the Go equivalent of
// the paper's Listing 1 invocation:
//
//	ycsbt -db rawhttp -P workloads/closed_economy_workload -threads 16 -t
//
// It loads one or more workload property files (-P, Java .properties
// format), applies -p key=value overrides, runs the load phase
// (-load) and/or the transaction phase (-t), executes the Tier 6
// validation stage, and prints the measurements in the Listing 3
// format.
//
// Registered bindings: memory, kvstore (embedded engine, optional
// WAL), rawhttp (HTTP client for cmd/kvserver), cloudsim (simulated
// WAS/GCS container) and txnkv (client-coordinated transactions).
//
// Every client thread wraps the binding in the middleware stack named
// by -middleware (outermost first; default "metered"): metered, trace,
// retry, faultinject.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/db"
	"ycsbt/internal/history"
	"ycsbt/internal/measurement"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
	"ycsbt/internal/workload"

	// Register every binding with the -db registry.
	_ "ycsbt/internal/cloudsim"
	_ "ycsbt/internal/httpkv"
	_ "ycsbt/internal/kvstore"
	_ "ycsbt/internal/percolator"
	_ "ycsbt/internal/replica"
	_ "ycsbt/internal/txn"
)

// repeatedFlag collects a repeatable string flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string { return strings.Join(*r, ",") }

func (r *repeatedFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ycsbt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ycsbt", flag.ContinueOnError)
	var (
		propFiles repeatedFlag
		overrides repeatedFlag
		dbName    = fs.String("db", "", "database binding (overrides the 'db' property)")
		wlName    = fs.String("workload", "", "workload name (overrides the 'workload' property)")
		threads   = fs.Int("threads", 0, "client threads (overrides 'threadcount')")
		target    = fs.Float64("target", 0, "target total ops/sec (overrides 'target')")
		mws       = fs.String("middleware", "", "comma-separated middleware stack, outermost first (overrides 'middleware'; default metered)")
		doLoad    = fs.Bool("load", false, "execute the load phase")
		doRun     = fs.Bool("t", false, "execute the transaction phase")
		status    = fs.Bool("s", false, "print interim status to stderr (interval via 'status.interval_ms', default 10000)")
		maxExec   = fs.Int64("maxexecutiontime", 0, "cap the transaction phase at this many seconds (overrides 'maxexecutiontime')")
		timeline  = fs.Bool("timeline", false, "record and report 1-second throughput time series")
		opsAddr   = fs.String("ops-addr", "", "ops listener address serving /metrics, /healthz, /debug/pprof with live run stats (sets obs.enabled=true)")
		histFile  = fs.String("history", "", "write the run's operation history (NDJSON) to this file for offline certification with histcheck (overrides 'history.file')")
		listDBs   = fs.Bool("list", false, "list registered bindings and workloads, then exit")
	)
	fs.Var(&propFiles, "P", "workload property file (repeatable)")
	fs.Var(&overrides, "p", "property override key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listDBs {
		fmt.Println("bindings:  ", strings.Join(db.Bindings(), ", "))
		fmt.Println("workloads: ", strings.Join(workload.Names(), ", "))
		fmt.Println("middleware:", strings.Join(db.MiddlewareNames(), ", "))
		return nil
	}

	props := properties.New()
	for _, pf := range propFiles {
		loaded, err := properties.LoadFile(pf)
		if err != nil {
			return err
		}
		props.Merge(loaded)
	}
	for _, ov := range overrides {
		key, val, ok := strings.Cut(ov, "=")
		if !ok {
			return fmt.Errorf("bad -p override %q (want key=value)", ov)
		}
		props.Set(key, val)
	}
	if *dbName != "" {
		props.Set("db", *dbName)
	}
	if *wlName != "" {
		props.Set("workload", *wlName)
	}
	if *threads > 0 {
		props.Set("threadcount", fmt.Sprint(*threads))
	}
	if *target > 0 {
		props.Set("target", fmt.Sprint(*target))
	}
	if *mws != "" {
		props.Set("middleware", *mws)
	}
	if *maxExec > 0 {
		props.Set("maxexecutiontime", fmt.Sprint(*maxExec))
	}
	if *histFile != "" {
		props.Set("history.file", *histFile)
	}
	if *opsAddr != "" {
		// Instrument the binding's substrate too, not just the client.
		props.Set("obs.enabled", "true")
	}
	if !*doLoad && !*doRun {
		return fmt.Errorf("nothing to do: pass -load, -t or both")
	}

	fmt.Println(client.Version)
	fmt.Printf("Command line: %s\n", strings.Join(args, " "))

	c, _, err := client.NewFromProperties(props)
	if err != nil {
		return err
	}
	if *status || *timeline {
		// Rebuild with the extra instrumentation; the config is cheap
		// to redo.
		cfg := client.BuildConfig(props)
		if *status {
			cfg.StatusInterval = time.Duration(props.GetInt64("status.interval_ms", 10000)) * time.Millisecond
			cfg.Status = os.Stderr
		}
		if *timeline {
			cfg.TimelineInterval = time.Second
		}
		c, err = client.New(cfg, c.Workload(), c.DB(), c.Registry())
		if err != nil {
			return err
		}
	}
	defer c.DB().Cleanup()

	if path := props.GetString("history.file", ""); path != "" {
		sink, err := history.OpenFile(path, history.SinkOptions{
			Queue:   props.GetInt("history.queue", 0),
			Metrics: obs.Enabled(props.GetBool("obs.enabled", false)),
		})
		if err != nil {
			return err
		}
		c.SetHistory(sink)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ycsbt: history sink:", err)
			}
			events, dropped := sink.Stats()
			fmt.Printf("history: %d records captured, %d dropped -> %s (check with: histcheck %s)\n",
				events, dropped, path, path)
		}()
	}

	if *opsAddr != "" {
		reg := obs.Default()
		reg.RegisterCollector(obs.RuntimeCollector())
		reg.RegisterCollector(measurement.ObsCollector(c.Registry()))
		opsSrv, opsLn, err := obs.StartOps(*opsAddr, reg, nil)
		if err != nil {
			return err
		}
		defer opsSrv.Close()
		fmt.Printf("ops listening on http://%s\n", opsLn)
	}

	ctx := context.Background()
	if *doLoad {
		fmt.Println("Loading workload...")
		res, err := c.Load(ctx)
		if err != nil {
			return err
		}
		if !*doRun {
			return client.Report(os.Stdout, res)
		}
		fmt.Printf("Load complete: %d records in %.1fs\n",
			res.Operations, res.RunTime.Seconds())
	}
	fmt.Println("Starting test.")
	res, err := c.Run(ctx)
	if err != nil {
		return err
	}
	return client.Report(os.Stdout, res)
}
