package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeProps drops a minimal CEW property file for CLI tests.
func writeProps(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "cew.properties")
	content := `recordcount=100
operationcount=500
workload=closedeconomy
totalcash=10000
readproportion=0.8
readmodifywriteproportion=0.2
requestdistribution=zipfian
threadcount=2
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLoadAndTransactionPhases(t *testing.T) {
	props := writeProps(t)
	if err := run([]string{"-db", "memory", "-P", props, "-load", "-t"}); err != nil {
		t.Fatalf("run = %v", err)
	}
}

func TestRunTxnkvBinding(t *testing.T) {
	props := writeProps(t)
	if err := run([]string{"-db", "txnkv", "-P", props, "-threads", "4", "-load", "-t", "-timeline"}); err != nil {
		t.Fatalf("run txnkv = %v", err)
	}
}

func TestRunLoadOnly(t *testing.T) {
	props := writeProps(t)
	if err := run([]string{"-db", "memory", "-P", props, "-load"}); err != nil {
		t.Fatalf("load only = %v", err)
	}
}

func TestRunOverrides(t *testing.T) {
	props := writeProps(t)
	err := run([]string{
		"-db", "memory", "-P", props,
		"-p", "operationcount=100",
		"-p", "recordcount=50",
		"-workload", "closedeconomy",
		"-target", "100000",
		"-load", "-t",
	})
	if err != nil {
		t.Fatalf("run with overrides = %v", err)
	}
}

func TestRunMiddlewareStack(t *testing.T) {
	props := writeProps(t)
	err := run([]string{
		"-db", "memory", "-P", props,
		"-middleware", "metered,trace,retry",
		"-load", "-t",
	})
	if err != nil {
		t.Fatalf("run with middleware stack = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	props := writeProps(t)
	cases := [][]string{
		{"-db", "memory", "-P", props},                           // neither -load nor -t
		{"-db", "nope", "-P", props, "-t"},                       // unknown binding
		{"-db", "memory", "-P", "/no/such/file", "-t"},           // missing props file
		{"-db", "memory", "-P", props, "-p", "badpair", "-t"},    // malformed override
		{"-workload", "nope", "-P", props, "-t"},                 // unknown workload
		{"-db", "memory", "-P", props, "-middleware", "x", "-t"}, // unknown middleware
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list = %v", err)
	}
}
