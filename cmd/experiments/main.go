// Command experiments regenerates every figure of the YCSB+T paper's
// evaluation section and prints the series as text tables (and
// optionally JSON). See EXPERIMENTS.md for the paper-vs-measured
// comparison.
//
//	experiments            # all figures, full-size sweeps
//	experiments -fig 3     # one figure
//	experiments -quick     # small sweeps (seconds instead of minutes)
//	experiments -json out.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ycsbt/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "figure to regenerate (2, 3, 4, 5, 6 = oracle-RTT comparison, 7 = staleness probe, 8 = multi-host split; 0 = all)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	verbose := flag.Bool("v", false, "log each cell as it completes")
	jsonPath := flag.String("json", "", "also write all series as JSON to this file")
	flag.Parse()

	opts := bench.SweepOptions{Quick: *quick}
	if *verbose {
		opts.Log = os.Stderr
	}
	ctx := context.Background()
	all := map[string]any{}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(2) {
		series, err := bench.Figure2(ctx, opts)
		if err != nil {
			return fmt.Errorf("figure 2: %w", err)
		}
		bench.PrintSeries(os.Stdout,
			"Figure 2: YCSB+T transactional throughput on simulated WAS (CEW)",
			"txn/sec", bench.Tput, series)
		all["figure2"] = series
	}
	if want(3) {
		series, err := bench.Figure3(ctx, opts)
		if err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
		bench.PrintSeries(os.Stdout,
			"Figure 3: impact of transactions on throughput (CEW 90:10)",
			"ops/sec", bench.Tput, series)
		overhead(series)
		all["figure3"] = series

		rows, err := bench.Tier5Overhead(ctx, opts)
		if err != nil {
			return fmt.Errorf("tier 5 table: %w", err)
		}
		bench.PrintOverhead(os.Stdout, rows)
		all["tier5"] = rows
	}
	if want(4) || want(5) {
		fig4, fig5, err := bench.Figure45(ctx, opts)
		if err != nil {
			return fmt.Errorf("figures 4/5: %w", err)
		}
		if want(4) {
			bench.PrintSeries(os.Stdout,
				"Figure 4: threads vs anomaly score (non-transactional store over HTTP)",
				"anomaly score", bench.Score, []bench.Series{fig4})
			all["figure4"] = fig4
		}
		if want(5) {
			bench.PrintSeries(os.Stdout,
				"Figure 5: threads vs throughput (non-transactional store over HTTP)",
				"ops/sec", bench.Tput, []bench.Series{fig5})
			all["figure5"] = fig5
		}
	}

	if want(6) {
		series, err := bench.OracleSweep(ctx, opts)
		if err != nil {
			return fmt.Errorf("oracle sweep: %w", err)
		}
		bench.PrintOracleSweep(os.Stdout, series)
		all["oracle_sweep"] = series
	}

	if want(7) {
		lag := 10 * time.Millisecond
		delays := []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond,
			10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
		probes := 200
		if *quick {
			probes = 30
		}
		points, err := bench.StalenessProbe(ctx, lag, delays, probes)
		if err != nil {
			return fmt.Errorf("staleness probe: %w", err)
		}
		bench.PrintStaleness(os.Stdout, lag, points)
		all["staleness"] = points
	}

	if want(8) {
		points, err := bench.MultiHost(ctx, opts)
		if err != nil {
			return fmt.Errorf("multi-host sweep: %w", err)
		}
		bench.PrintMultiHost(os.Stdout, points)
		all["multihost"] = points
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// overhead prints the tx/non-tx throughput ratio per thread count —
// the paper's "reduced by about 30 to 40%" claim.
func overhead(series []bench.Series) {
	if len(series) != 2 {
		return
	}
	fmt.Println("Transactional overhead (tx / non-tx throughput):")
	for i, pt := range series[1].Points {
		if i < len(series[0].Points) && series[0].Points[i].Throughput > 0 {
			ratio := pt.Throughput / series[0].Points[i].Throughput
			fmt.Printf("  threads=%-4d ratio=%.2f (overhead %.0f%%)\n",
				pt.Threads, ratio, (1-ratio)*100)
		}
	}
	fmt.Println()
}
