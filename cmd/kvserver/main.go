// Command kvserver serves the embedded key-value store over HTTP —
// the reproduction's stand-in for the paper's "WiredTiger key-value
// store augmented with an HTTP interface".
//
// Run it, then point the benchmark client at it:
//
//	kvserver -addr 127.0.0.1:8077 -wal /tmp/cew.wal &
//	ycsbt -db rawhttp -p rawhttp.url=http://127.0.0.1:8077 \
//	      -P workloads/closed_economy_workload -threads 16 -load -t
//
// With -ops-addr set, a private ops listener serves Prometheus-text
// /metrics, /healthz, and net/http/pprof. With -backups > 0 the node
// serves a primary-backup replicated in-memory store instead of the
// single embedded engine.
//
// With -cluster-node-id set the node joins a shared-nothing fleet: it
// boots a versioned shard map (-peers for a uniform bootstrap map,
// -shardmap for an explicit one), serves only the slots the map
// assigns it, and answers everything else 410 Gone with routing
// hints. POST /admin/migrate?slot=N&dest=URL live-migrates one slot
// to another member (freeze, pinned-ts copy, map version bump).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/obs"
	"ycsbt/internal/replica"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	wal := flag.String("wal", "", "write-ahead-log path: a file for one shard, a directory of wal-<shard>.log segments otherwise (empty = volatile)")
	syncWrites := flag.Bool("sync", false, "fsync the WAL on every write")
	shards := flag.Int("shards", kvstore.DefaultShards, "hash partitions of the store (an existing WAL layout wins)")
	groupCommit := flag.Duration("group-commit", 0, "WAL group-commit window, e.g. 2ms (0 = sync inline)")
	delay := flag.Duration("delay", 0, "artificial per-request service latency")
	maxInflight := flag.Int("max-inflight", 0, "concurrent /v1/batch requests admitted before 429 (0 = unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request body cap in bytes, larger bodies get 413 (0 = default 1MiB)")
	retention := flag.Duration("retention", kvstore.DefaultRetention, "how long overwritten record versions stay readable via as-of reads")
	vacuumInterval := flag.Duration("vacuum-interval", 0, "background version-vacuum sweep interval (0 = write-path trimming only)")
	opsAddr := flag.String("ops-addr", "", "ops listener address serving /metrics, /healthz, /debug/pprof (empty = disabled)")
	wireAddr := flag.String("wire-addr", "", "binary wire protocol listener address; advertised to clients via the X-KV-Wire response header (empty = disabled)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown bound: how long in-flight requests on the HTTP, wire and ops listeners get to finish")
	backups := flag.Int("backups", 0, "serve a replicated in-memory store with this many backups instead of the embedded engine (-wal is ignored)")
	replicaLag := flag.Duration("replica-lag", 0, "async replication delay per backup hop (with -backups)")
	replicaSync := flag.Bool("replica-sync", false, "replicate synchronously: a quorum of backups applies every write before acknowledging (with -backups)")
	replicaQuorum := flag.Int("replica-quorum", 0, "backups that must apply a sync write before acknowledging; 0 = majority (with -replica-sync)")
	clusterNodeID := flag.String("cluster-node-id", "", "this node's base URL in the shard map, e.g. http://127.0.0.1:8077 (enables cluster mode)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster member, this node included; builds a uniform round-robin shard map at version 1 (with -cluster-node-id)")
	shardmapPath := flag.String("shardmap", "", "path to a shard map JSON file to boot from instead of -peers (with -cluster-node-id)")
	clusterSlots := flag.Int("cluster-slots", cluster.DefaultSlots, "key-space slots in the bootstrap shard map (with -peers)")
	clusterPlacement := flag.String("cluster-placement", cluster.PlacementHash, "bootstrap placement, hash or range; range needs explicit bounds, so boot it from -shardmap (with -peers)")
	flag.Parse()

	reg := obs.Default()
	var metrics *obs.Registry
	if *opsAddr != "" {
		metrics = reg
		reg.RegisterCollector(obs.RuntimeCollector())
	}

	// The engine: embedded single store, or a replicated group.
	var eng kvstore.Engine
	var desc string
	if *backups > 0 {
		mode := replica.Async
		if *replicaSync {
			mode = replica.Sync
		}
		rs, err := replica.New(replica.Config{
			Name:       "kvserver",
			Backups:    *backups,
			Mode:       mode,
			Quorum:     *replicaQuorum,
			ReplicaLag: *replicaLag,
			Shards:     *shards,
			Metrics:    metrics,
		})
		if err != nil {
			return err
		}
		eng = rs.Engine()
		desc = fmt.Sprintf("replicated backups=%d sync=%v quorum=%d lag=%v", *backups, *replicaSync, rs.Quorum(), *replicaLag)
	} else {
		store, err := kvstore.Open(kvstore.Options{
			Path:           *wal,
			SyncWrites:     *syncWrites,
			Shards:         *shards,
			GroupCommit:    *groupCommit,
			Retention:      *retention,
			VacuumInterval: *vacuumInterval,
			Metrics:        metrics,
		})
		if err != nil {
			return err
		}
		eng = store
		desc = fmt.Sprintf("wal=%q sync=%v shards=%d", *wal, *syncWrites, store.Shards())
	}
	defer eng.Close()

	// Cluster mode: boot a shard map and serve only the owned slots.
	var cs *cluster.State
	if *clusterNodeID != "" {
		var m *cluster.Map
		var err error
		switch {
		case *shardmapPath != "":
			doc, rerr := os.ReadFile(*shardmapPath)
			if rerr != nil {
				return fmt.Errorf("reading -shardmap: %w", rerr)
			}
			m, err = cluster.Decode(doc)
		case *peers != "":
			m, err = cluster.NewUniform(*clusterPlacement, *clusterSlots, httpkv.SplitNodes(*peers), nil)
		default:
			return fmt.Errorf("cluster mode needs -peers or -shardmap")
		}
		if err != nil {
			return fmt.Errorf("bootstrapping shard map: %w", err)
		}
		cs, err = cluster.NewState(*clusterNodeID, m, metrics)
		if err != nil {
			return fmt.Errorf("joining cluster: %w", err)
		}
		desc += fmt.Sprintf(" cluster node=%s slots=%d/%d map=v%d", *clusterNodeID, len(m.SlotsOf(*clusterNodeID)), m.Slots, m.Version)
	}

	// One transport-neutral core serves both front ends, so HTTP and
	// binary requests share a single admission limit and ownership gate.
	core := kvwire.NewCore(eng, cs, *maxInflight)

	var wireSrv *kvwire.Server
	var wireLnAddr string
	if *wireAddr != "" {
		wireLn, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return fmt.Errorf("wire listener: %w", err)
		}
		wireSrv = kvwire.NewServer(core, kvwire.ServerOptions{Metrics: metrics})
		go func() {
			if err := wireSrv.Serve(wireLn); err != nil {
				fmt.Fprintln(os.Stderr, "kvserver: wire listener:", err)
			}
		}()
		wireLnAddr = wireLn.Addr().String()
		desc += fmt.Sprintf(" wire=%s", wireLnAddr)
	}

	var handler http.Handler = httpkv.NewServerWithOptions(eng, httpkv.ServerOptions{
		MaxInflightBatches: *maxInflight,
		MaxBodyBytes:       *maxBodyBytes,
		Metrics:            metrics,
		Cluster:            cs,
		Core:               core,
		WireAddr:           wireLnAddr,
	})
	if *delay > 0 {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(*delay)
			inner.ServeHTTP(w, r)
		})
	}
	// Admin surface: compaction and store stats.
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/admin/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		before, _ := eng.WALSize()
		if err := eng.Compact(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		after, _ := eng.WALSize()
		fmt.Fprintf(w, "compacted: %d -> %d bytes\n", before, after)
	})
	// One migration at a time per admin node: MigrateSlot's preflight
	// and CAS cutover catch races across the fleet, but two local
	// requests need not burn a freeze/copy cycle each to discover only
	// one can win.
	var migrateMu sync.Mutex
	mux.HandleFunc("/admin/migrate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if cs == nil {
			http.Error(w, "not a cluster node", http.StatusPreconditionFailed)
			return
		}
		migrateMu.Lock()
		defer migrateMu.Unlock()
		slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
		if err != nil {
			http.Error(w, "bad slot", http.StatusBadRequest)
			return
		}
		dest := r.URL.Query().Get("dest")
		if dest == "" {
			http.Error(w, "missing dest", http.StatusBadRequest)
			return
		}
		next, err := httpkv.MigrateSlot(r.Context(), nil, cs.Map(), slot, dest)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "{\"slot\":%d,\"dest\":%q,\"map_version\":%d}\n", slot, dest, next.Version)
	})
	mux.HandleFunc("/admin/stats", func(w http.ResponseWriter, r *http.Request) {
		size, _ := eng.WALSize()
		fmt.Fprintf(w, "wal_bytes %d\n", size)
		for _, table := range eng.Tables() {
			fmt.Fprintf(w, "records{table=%q} %d\n", table, eng.Len(table))
		}
	})
	srv := &http.Server{Addr: *addr, Handler: mux}

	var opsSrv *http.Server
	if *opsAddr != "" {
		var opsLn net.Addr
		var err error
		opsSrv, opsLn, err = obs.StartOps(*opsAddr, reg, nil)
		if err != nil {
			return err
		}
		defer opsSrv.Close()
		fmt.Printf("kvserver ops listening on http://%s\n", opsLn)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("kvserver listening on http://%s (%s)\n", *addr, desc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("kvserver: received %v, shutting down\n", s)
		drain(*drainTimeout, srv, wireSrv, opsSrv)
		return eng.Sync()
	}
}

// drain stops all listeners gracefully and concurrently — new
// connections are refused at once, in-flight requests (including
// pipelined binary frames already read off a connection) get until
// the deadline to finish, then everything is cut.
func drain(timeout time.Duration, srv *http.Server, wireSrv *kvwire.Server, opsSrv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	shutdown := func(f func(context.Context) error, name string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "kvserver: %s drain: %v\n", name, err)
			}
		}()
	}
	shutdown(srv.Shutdown, "http")
	if wireSrv != nil {
		shutdown(wireSrv.Shutdown, "wire")
	}
	if opsSrv != nil {
		shutdown(opsSrv.Shutdown, "ops")
	}
	wg.Wait()
}
