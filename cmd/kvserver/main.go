// Command kvserver serves the embedded key-value store over HTTP —
// the reproduction's stand-in for the paper's "WiredTiger key-value
// store augmented with an HTTP interface".
//
// Run it, then point the benchmark client at it:
//
//	kvserver -addr 127.0.0.1:8077 -wal /tmp/cew.wal &
//	ycsbt -db rawhttp -p rawhttp.url=http://127.0.0.1:8077 \
//	      -P workloads/closed_economy_workload -threads 16 -load -t
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	wal := flag.String("wal", "", "write-ahead-log path: a file for one shard, a directory of wal-<shard>.log segments otherwise (empty = volatile)")
	syncWrites := flag.Bool("sync", false, "fsync the WAL on every write")
	shards := flag.Int("shards", kvstore.DefaultShards, "hash partitions of the store (an existing WAL layout wins)")
	groupCommit := flag.Duration("group-commit", 0, "WAL group-commit window, e.g. 2ms (0 = sync inline)")
	delay := flag.Duration("delay", 0, "artificial per-request service latency")
	maxInflight := flag.Int("max-inflight", 0, "concurrent /v1/batch requests admitted before 429 (0 = unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request body cap in bytes, larger bodies get 413 (0 = default 1MiB)")
	flag.Parse()

	store, err := kvstore.Open(kvstore.Options{
		Path:        *wal,
		SyncWrites:  *syncWrites,
		Shards:      *shards,
		GroupCommit: *groupCommit,
	})
	if err != nil {
		return err
	}
	defer store.Close()

	var handler http.Handler = httpkv.NewServerWithOptions(store, httpkv.ServerOptions{
		MaxInflightBatches: *maxInflight,
		MaxBodyBytes:       *maxBodyBytes,
	})
	if *delay > 0 {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(*delay)
			inner.ServeHTTP(w, r)
		})
	}
	// Admin surface: compaction and store stats.
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/admin/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		before, _ := store.WALSize()
		if err := store.Compact(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		after, _ := store.WALSize()
		fmt.Fprintf(w, "compacted: %d -> %d bytes\n", before, after)
	})
	mux.HandleFunc("/admin/stats", func(w http.ResponseWriter, r *http.Request) {
		size, _ := store.WALSize()
		fmt.Fprintf(w, "wal_bytes %d\n", size)
		for _, table := range store.Tables() {
			fmt.Fprintf(w, "records{table=%q} %d\n", table, store.Len(table))
		}
	})
	srv := &http.Server{Addr: *addr, Handler: mux}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("kvserver listening on http://%s (wal=%q sync=%v shards=%d)\n", *addr, *wal, *syncWrites, store.Shards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("kvserver: received %v, shutting down\n", s)
		srv.Close()
		return store.Sync()
	}
}
