// Cluster scaling acceptance bench: the same read-heavy workload
// against a 1-node and a 3-node fleet of cluster-mode servers, each
// node given an identical fixed service capacity (one request at a
// time, fixed service latency — the cloudsim idiom for modeling a
// capacity-bound store). Aggregate capacity triples with the node
// count, so routed throughput must scale; the acceptance bound is
// 3-node ≥ 2x 1-node.
package ycsbt_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/cluster"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/workload"
)

// perNodeService is the modeled service time of one request on one
// node; with the one-at-a-time admission below it caps each node at
// roughly 1/perNodeService ops/s regardless of host parallelism.
const perNodeService = 150 * time.Microsecond

// startCapacityCluster boots n in-process cluster nodes, each behind
// the fixed capacity model, and returns their base URLs.
func startCapacityCluster(tb testing.TB, n, slots int) []string {
	tb.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	m, err := cluster.NewUniform(cluster.PlacementHash, slots, urls, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for i, ln := range lns {
		store, err := kvstore.Open(kvstore.Options{Shards: 2})
		if err != nil {
			tb.Fatal(err)
		}
		st, err := cluster.NewState(urls[i], m, nil)
		if err != nil {
			tb.Fatal(err)
		}
		inner := httpkv.NewServerWithOptions(store, httpkv.ServerOptions{Cluster: st})
		sem := make(chan struct{}, 1)
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sem <- struct{}{}
			time.Sleep(perNodeService)
			inner.ServeHTTP(w, r)
			<-sem
		})}
		go srv.Serve(ln)
		tb.Cleanup(func() { srv.Close(); store.Close() })
	}
	return urls
}

// clusterReadCell loads records through the router, then measures a
// read-only core workload cell and returns its throughput.
func clusterReadCell(tb testing.TB, urls []string, records int64, cellTime time.Duration) float64 {
	tb.Helper()
	ctx := context.Background()
	r, err := httpkv.NewRouter(urls, nil, nil)
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Cleanup()

	p := properties.FromMap(map[string]string{
		"workload":            "core",
		"recordcount":         fmt.Sprint(records),
		"operationcount":      "1000000000", // bounded by MaxExecutionTime
		"threadcount":         "24",
		"readproportion":      "1.0",
		"updateproportion":    "0",
		"requestdistribution": "uniform",
		"fieldcount":          "1",
		"fieldlength":         "64",
	})
	w, err := workload.New("core")
	if err != nil {
		tb.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		tb.Fatal(err)
	}
	loadCfg := client.BuildConfig(p)
	loadCfg.SkipValidation = true
	lc, err := client.New(loadCfg, w, r, reg)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := lc.Load(ctx); err != nil {
		tb.Fatal(err)
	}
	runCfg := client.BuildConfig(p)
	runCfg.SkipValidation = true
	runCfg.MaxExecutionTime = cellTime
	rc, err := client.New(runCfg, w, r, reg)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := rc.Run(ctx)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Throughput
}

// BenchmarkClusterScaling is the acceptance benchmark behind `make
// bench-cluster`: identical capacity-bound nodes, read-heavy load,
// 1 node versus 3. The 3-node cell should clear 2x.
func BenchmarkClusterScaling(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("Nodes%d", n), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				urls := startCapacityCluster(b, n, 12)
				tput = clusterReadCell(b, urls, 400, 800*time.Millisecond)
			}
			b.ReportMetric(tput, "tput_ops/s")
		})
	}
}

// TestClusterScalingSpeedup keeps a loose version of the bound in the
// regular suite: 3 capacity-bound nodes must beat 1. The strict ≥2x
// claim lives in BenchmarkClusterScaling where cells are longer.
func TestClusterScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive e2e cell")
	}
	one := clusterReadCell(t, startCapacityCluster(t, 1, 12), 300, 500*time.Millisecond)
	three := clusterReadCell(t, startCapacityCluster(t, 3, 12), 300, 500*time.Millisecond)
	t.Logf("read-heavy tput: 1 node=%.0f ops/s, 3 nodes=%.0f ops/s (%.1fx)", one, three, three/one)
	if three <= one {
		t.Errorf("3-node fleet no faster than 1 node: %.0f <= %.0f ops/s", three, one)
	}
}
