// Closed Economy Workload demo: the same CEW run twice — once against
// the raw (non-transactional) store and once through the
// client-coordinated transaction library — showing Tier 6 in action:
// the raw store accumulates lost-update anomalies under concurrency
// while the transactional run keeps the anomaly score at exactly 0.
//
//	go run ./examples/closedeconomy
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "closedeconomy:", err)
		os.Exit(1)
	}
}

func props(threads int) *properties.Properties {
	return properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               "1000",
		"totalcash":                 "1000000",
		"operationcount":            "30000",
		"threadcount":               fmt.Sprint(threads),
		"readproportion":            "0.5",
		"readmodifywriteproportion": "0.5",
		"requestdistribution":       "zipfian",
	})
}

func run() error {
	ctx := context.Background()
	const threads = 16

	// --- Run 1: raw store over HTTP, no transactions. -------------
	nontxScore, err := rawRun(ctx, threads)
	if err != nil {
		return err
	}

	// --- Run 2: the same workload through the txn library. --------
	txScore, aborts, err := txnRun(ctx, threads)
	if err != nil {
		return err
	}

	fmt.Println("\n=== Tier 6 verdict ===")
	fmt.Printf("non-transactional anomaly score: %g\n", nontxScore)
	fmt.Printf("transactional anomaly score:     %g (%d conflicting txns aborted cleanly)\n",
		txScore, aborts)
	if txScore != 0 {
		return fmt.Errorf("transactional run should have score 0")
	}
	return nil
}

// rawRun drives CEW through the HTTP interface with no transactions,
// like the paper's Section V-C setup, and returns the anomaly score.
func rawRun(ctx context.Context, threads int) (float64, error) {
	store := kvstore.OpenMemory()
	defer store.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	kv := httpkv.NewServer(store)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Microsecond) // storage-engine I/O stand-in
		kv.ServeHTTP(w, r)
	})}
	go srv.Serve(ln)
	defer srv.Close()

	p := props(threads)
	w, err := workload.New("closedeconomy")
	if err != nil {
		return 0, err
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		return 0, err
	}
	raw := httpkv.NewClient("http://"+ln.Addr().String(), nil)
	c, err := client.New(client.BuildConfig(p), w, raw, reg)
	if err != nil {
		return 0, err
	}
	fmt.Printf("== non-transactional CEW over HTTP, %d threads ==\n", threads)
	if _, err := c.Load(ctx); err != nil {
		return 0, err
	}
	res, err := c.Run(ctx)
	if err != nil {
		return 0, err
	}
	v := res.Validation
	fmt.Printf("throughput %.0f ops/sec; counted %d vs expected %d → anomaly score %g\n",
		res.Throughput, v.Counted, v.Expected, v.AnomalyScore)
	return v.AnomalyScore, nil
}

// txnRun drives the identical workload through client-coordinated
// transactions and returns the anomaly score and abort count.
func txnRun(ctx context.Context, threads int) (float64, int64, error) {
	inner := kvstore.OpenMemory()
	defer inner.Close()
	m, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("local", inner))
	if err != nil {
		return 0, 0, err
	}
	binding := txn.NewBinding(m)

	p := props(threads)
	w, err := workload.New("closedeconomy")
	if err != nil {
		return 0, 0, err
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		return 0, 0, err
	}
	c, err := client.New(client.BuildConfig(p), w, binding, reg)
	if err != nil {
		return 0, 0, err
	}
	fmt.Printf("\n== transactional CEW (client-coordinated), %d threads ==\n", threads)
	if _, err := c.Load(ctx); err != nil {
		return 0, 0, err
	}
	res, err := c.Run(ctx)
	if err != nil {
		return 0, 0, err
	}
	v := res.Validation
	fmt.Printf("throughput %.0f txn/sec; counted %d vs expected %d → anomaly score %g\n",
		res.Throughput, v.Counted, v.Expected, v.AnomalyScore)
	return v.AnomalyScore, res.Aborts, nil
}
