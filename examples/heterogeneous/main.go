// Heterogeneous stores: one transaction spanning two different
// simulated cloud providers — the headline capability of the paper's
// client-coordinated transaction library ("It enables transactions to
// span across hybrid data stores that can be deployed in different
// regions and does not rely upon a central timestamp manager").
//
// A WAS-like container holds the checking accounts; a GCS-like
// container holds the savings accounts. Transfers between them commit
// atomically: either both sides move or neither does, with the
// transaction status record living on the coordinating store.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"ycsbt/internal/cloudsim"
	"ycsbt/internal/txn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heterogeneous:", err)
		os.Exit(1)
	}
}

func bal(n int64) map[string][]byte {
	return map[string][]byte{"balance": []byte(strconv.FormatInt(n, 10))}
}

func parse(f map[string][]byte) int64 {
	n, _ := strconv.ParseInt(string(f["balance"]), 10, 64)
	return n
}

func run() error {
	ctx := context.Background()

	// Two simulated providers with different latency profiles; shrink
	// the latencies so the demo runs in a couple of seconds.
	wasCfg := cloudsim.WASPreset()
	wasCfg.ReadLatency, wasCfg.WriteLatency = 300*time.Microsecond, 600*time.Microsecond
	gcsCfg := cloudsim.GCSPreset()
	gcsCfg.ReadLatency, gcsCfg.WriteLatency = 400*time.Microsecond, 800*time.Microsecond
	was := cloudsim.New(wasCfg)
	gcs := cloudsim.New(gcsCfg)
	defer was.Close()
	defer gcs.Close()

	m, err := txn.NewManager(txn.Options{}, was, gcs)
	if err != nil {
		return err
	}

	const customers = 20
	const perAccount = int64(500)
	if err := m.RunInTxn(ctx, 0, func(t *txn.Txn) error {
		for i := 0; i < customers; i++ {
			key := fmt.Sprintf("cust%02d", i)
			if err := t.Insert("was", "checking", key, bal(perAccount)); err != nil {
				return err
			}
			if err := t.Insert("gcs", "savings", key, bal(perAccount)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("created %d customers: checking on WAS, savings on GCS\n", customers)

	// Concurrent cross-provider sweeps: move $10 checking → savings.
	var wg sync.WaitGroup
	var moved int64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("cust%02d", (w*25+i)%customers)
				err := m.RunInTxn(ctx, 10, func(t *txn.Txn) error {
					cf, err := t.Read(ctx, "was", "checking", key)
					if err != nil {
						return err
					}
					if parse(cf) < 10 {
						return nil
					}
					sf, err := t.Read(ctx, "gcs", "savings", key)
					if err != nil {
						return err
					}
					if err := t.Write("was", "checking", key, bal(parse(cf)-10)); err != nil {
						return err
					}
					return t.Write("gcs", "savings", key, bal(parse(sf)+10))
				})
				if err == nil {
					mu.Lock()
					moved += 10
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify the global invariant across both providers with one
	// transactional scan each.
	var checking, savings int64
	if err := m.RunInTxn(ctx, 3, func(t *txn.Txn) error {
		checking, savings = 0, 0
		ckvs, err := t.Scan(ctx, "was", "checking", "", -1)
		if err != nil {
			return err
		}
		for _, kv := range ckvs {
			checking += parse(kv.Fields)
		}
		skvs, err := t.Scan(ctx, "gcs", "savings", "", -1)
		if err != nil {
			return err
		}
		for _, kv := range skvs {
			savings += parse(kv.Fields)
		}
		return nil
	}); err != nil {
		return err
	}

	total := checking + savings
	want := int64(customers) * perAccount * 2
	commits, aborts, conflicts, _ := m.Stats()
	fmt.Printf("swept ~$%d across providers (%d commits, %d aborts, %d conflicts)\n",
		moved, commits, aborts, conflicts)
	fmt.Printf("WAS checking total: $%d, GCS savings total: $%d, grand total $%d (expected $%d)\n",
		checking, savings, total, want)
	if total != want {
		return fmt.Errorf("cross-store invariant broken: %d != %d", total, want)
	}
	wr, ww, _ := was.Stats()
	gr, gw, _ := gcs.Stats()
	fmt.Printf("request counts — WAS: %d reads / %d writes; GCS: %d reads / %d writes\n", wr, ww, gr, gw)
	return nil
}
