// Isolation levels under the Tier 6 microscope: the write-skew
// workload (the paper's Section VII direction) run at two isolation
// levels of the client-coordinated transaction library. Snapshot
// isolation admits write skew — pairs of accounts jointly overdrawn
// by concurrent withdrawals that each looked safe — while
// serializable-read validation eliminates it at the cost of extra
// aborts. The Tier 6 validation stage quantifies both.
//
//	go run ./examples/isolation
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/cloudsim"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "isolation:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("write-skew workload: pairs of accounts, constraint a+b >= 0,")
	fmt.Println("withdrawals of $150 against two $100 accounts — safe alone, unsafe in parallel")
	fmt.Println()
	for _, mode := range []struct {
		label        string
		serializable bool
	}{
		{"snapshot isolation (default)", false},
		{"serializable reads", true},
	} {
		res, err := runMode(mode.serializable)
		if err != nil {
			return err
		}
		v := res.Validation
		fmt.Printf("%-30s violations=%d/%d pairs, anomaly score=%.2g, aborts=%d\n",
			mode.label, v.Counted, 10, v.AnomalyScore, res.Aborts)
	}
	fmt.Println("\nsnapshot isolation permits exactly this anomaly; serializable validation")
	fmt.Println("converts would-be violations into aborts — Tier 6 makes the difference measurable.")
	return nil
}

func runMode(serializable bool) (*client.Result, error) {
	ctx := context.Background()
	inner := kvstore.OpenMemory()
	defer inner.Close()
	// A store with small per-request latency so concurrent
	// transactions genuinely interleave.
	store := cloudsim.NewOver(cloudsim.Config{
		Name:         "local",
		ReadLatency:  150 * time.Microsecond,
		WriteLatency: 300 * time.Microsecond,
	}, inner)
	m, err := txn.NewManager(txn.Options{SerializableReads: serializable}, store)
	if err != nil {
		return nil, err
	}
	p := properties.FromMap(map[string]string{
		"workload":             "writeskew",
		"recordcount":          "10",
		"operationcount":       "3000",
		"threadcount":          "16",
		"readproportion":       "0",
		"ws.depositproportion": "0.4",
		"ws.initial":           "100",
		"ws.withdraw":          "150",
		"requestdistribution":  "zipfian",
	})
	w, err := workload.New("writeskew")
	if err != nil {
		return nil, err
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		return nil, err
	}
	cfg := client.BuildConfig(p)
	cfg.RecordCount = 10
	c, err := client.New(cfg, w, txn.NewBinding(m), reg)
	if err != nil {
		return nil, err
	}
	if _, err := c.Load(ctx); err != nil {
		return nil, err
	}
	return c.Run(ctx)
}
