// Bank transfer: direct use of the client-coordinated transaction
// library (the paper's own system, Section II-B) without the
// benchmark harness. Demonstrates:
//
//   - multi-key atomic transfers with automatic conflict retry,
//
//   - crash recovery: a transaction that dies after its commit point
//     is rolled forward by the next reader,
//
//   - the total-balance invariant surviving heavy concurrency.
//
//     go run ./examples/banktransfer
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/txn"
)

const (
	accounts  = 50
	initial   = int64(1000)
	transfers = 200
	workers   = 8
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "banktransfer:", err)
		os.Exit(1)
	}
}

func acct(i int) string { return fmt.Sprintf("acct%03d", i) }

func bal(n int64) map[string][]byte {
	return map[string][]byte{"balance": []byte(strconv.FormatInt(n, 10))}
}

func parse(f map[string][]byte) int64 {
	n, _ := strconv.ParseInt(string(f["balance"]), 10, 64)
	return n
}

func run() error {
	ctx := context.Background()
	store := kvstore.OpenMemory()
	defer store.Close()
	m, err := txn.NewManager(txn.Options{RecoveryTimeout: 500 * time.Millisecond},
		txn.NewLocalStore("bank", store))
	if err != nil {
		return err
	}

	// Open the accounts in one transaction.
	if err := m.RunInTxn(ctx, 0, func(t *txn.Txn) error {
		for i := 0; i < accounts; i++ {
			if err := t.Insert("bank", "accounts", acct(i), bal(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("opened %d accounts with $%d each\n", accounts, initial)

	// Hammer the bank with concurrent random transfers.
	var wg sync.WaitGroup
	var ok, failed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(r.Intn(50) + 1)
				err := m.RunInTxn(ctx, 10, func(t *txn.Txn) error {
					ff, err := t.Read(ctx, "bank", "accounts", acct(from))
					if err != nil {
						return err
					}
					if parse(ff) < amount {
						return nil // insufficient funds: commit no-op
					}
					tf, err := t.Read(ctx, "bank", "accounts", acct(to))
					if err != nil {
						return err
					}
					if err := t.Write("bank", "accounts", acct(from), bal(parse(ff)-amount)); err != nil {
						return err
					}
					return t.Write("bank", "accounts", acct(to), bal(parse(tf)+amount))
				})
				mu.Lock()
				if err == nil {
					ok++
				} else {
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	commits, aborts, conflicts, _ := m.Stats()
	fmt.Printf("transfers: %d committed, %d failed (manager: %d commits, %d aborts, %d conflicts)\n",
		ok, failed, commits, aborts, conflicts)

	if err := checkTotal(store, "after concurrent transfers"); err != nil {
		return err
	}

	// Crash demo: prepare a transfer, write the TSR (commit point),
	// then "crash" before rolling forward. The next reader finishes
	// the job.
	if err := crashAfterCommitPoint(ctx, m, store); err != nil {
		return err
	}
	return checkTotal(store, "after crash recovery")
}

// checkTotal asserts the closed-economy invariant directly on the
// store.
func checkTotal(store *kvstore.Store, when string) error {
	var total int64
	store.ForEach("accounts", func(_ string, rec *kvstore.VersionedRecord) bool {
		total += parse(rec.Fields)
		return true
	})
	want := int64(accounts) * initial
	fmt.Printf("total balance %s: $%d (expected $%d)\n", when, total, want)
	if total != want {
		return fmt.Errorf("invariant broken: %d != %d", total, want)
	}
	return nil
}

// crashAfterCommitPoint simulates a client that dies right after
// writing its transaction status record: the transfer is durably
// committed but the records still hold prepared images. A subsequent
// read resolves and rolls them forward.
func crashAfterCommitPoint(ctx context.Context, m *txn.Manager, store *kvstore.Store) error {
	fmt.Println("\nsimulating a writer crash after the commit point...")
	// Install prepared images by hand, exactly as a dying writer
	// would leave them (move $100 acct000 → acct001).
	a, err := store.Get("accounts", acct(0))
	if err != nil {
		return err
	}
	b, err := store.Get("accounts", acct(1))
	if err != nil {
		return err
	}
	balA, balB := parse(a.Fields), parse(b.Fields)
	if err := txn.InstallPreparedForTest(store, "accounts", acct(0), a, bal(balA-100), "crashed-txn-1", "bank"); err != nil {
		return err
	}
	if err := txn.InstallPreparedForTest(store, "accounts", acct(1), b, bal(balB+100), "crashed-txn-1", "bank"); err != nil {
		return err
	}
	if err := txn.InstallCommittedTSRForTest(store, "crashed-txn-1"); err != nil {
		return err
	}

	// Any transactional read now resolves the crashed writer.
	return m.RunInTxn(ctx, 0, func(t *txn.Txn) error {
		fa, err := t.Read(ctx, "bank", "accounts", acct(0))
		if err != nil {
			return err
		}
		fb, err := t.Read(ctx, "bank", "accounts", acct(1))
		if err != nil {
			return err
		}
		fmt.Printf("reader resolved crashed transfer: acct000=$%d acct001=$%d (rolled forward)\n",
			parse(fa), parse(fb))
		return nil
	})
}
