// Quickstart: run YCSB Workload A (50/50 read/update, zipfian)
// against the embedded key-value store and print the standard YCSB+T
// report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"ycsbt/internal/client"
	"ycsbt/internal/properties"

	_ "ycsbt/internal/kvstore" // register the "kvstore" binding
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Workload A over 10k records and 100k operations, 8 client
	// threads, on the embedded B-tree engine. The middleware property
	// declares each thread's interception stack, outermost first:
	// trace logs every operation, metered captures the Tier 5 series,
	// retry absorbs transient throttling.
	props := properties.FromMap(map[string]string{
		"workload":            "core",
		"db":                  "kvstore",
		"recordcount":         "10000",
		"operationcount":      "100000",
		"threadcount":         "8",
		"readproportion":      "0.5",
		"updateproportion":    "0.5",
		"requestdistribution": "zipfian",
		"middleware":          "trace,metered,retry",
	})

	c, _, err := client.NewFromProperties(props)
	if err != nil {
		return err
	}
	defer c.DB().Cleanup()
	ctx := context.Background()

	fmt.Println("== load phase ==")
	loadRes, err := c.Load(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d records at %.0f inserts/sec\n\n",
		loadRes.Operations, loadRes.Throughput)

	fmt.Println("== transaction phase ==")
	runRes, err := c.Run(ctx)
	if err != nil {
		return err
	}
	if err := client.Report(os.Stdout, runRes); err != nil {
		return err
	}

	// The trace middleware kept a bounded log of recent operations.
	log := c.OpLog()
	events := log.Events()
	fmt.Printf("\ntraced %d operations; last %d retained, e.g.:\n",
		log.Total(), len(events))
	for _, ev := range events[:min(3, len(events))] {
		fmt.Printf("  %-6s %s/%s %v code=%d\n", ev.Op, ev.Table, ev.Key, ev.Latency, ev.Code)
	}
	return nil
}
