package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
)

// Binding adapts a simulated cloud container to the YCSB+T db.DB
// interface for direct, non-transactional access — the baseline of
// Figure 3 ("non-transactional access to the database scales from
// 81.57 operations per second for 1 thread to 794.97 for 16").
type Binding struct {
	db.NoTransactions
	store *Store
	owns  bool

	// BlindUpdates makes Update issue a single unconditional PUT of
	// the given values instead of read-merge-write. Correct only when
	// the workload writes every field on update (writeallfields, as
	// CEW does); it halves the request count of an update, matching
	// how a raw cloud client behaves. Also settable via the
	// "cloudsim.blindupdates" property.
	BlindUpdates bool
}

// NewBinding wraps an existing simulated store.
func NewBinding(s *Store) *Binding { return &Binding{store: s} }

func init() {
	db.Register("cloudsim", func() (db.DB, error) { return &Binding{}, nil })
}

// Init builds a store from properties when none was supplied:
// "cloudsim.preset" (was|gcs) then individual overrides
// "cloudsim.readlatency_us", "cloudsim.writelatency_us",
// "cloudsim.ratelimit", "cloudsim.poolsize",
// "cloudsim.contention_us".
func (b *Binding) Init(p *properties.Properties) error {
	if b.store != nil {
		return nil
	}
	var cfg Config
	switch preset := p.GetString("cloudsim.preset", "was"); preset {
	case "was":
		cfg = WASPreset()
	case "gcs":
		cfg = GCSPreset()
	default:
		return fmt.Errorf("cloudsim: unknown preset %q", preset)
	}
	cfg.ReadLatency = time.Duration(p.GetInt64("cloudsim.readlatency_us", cfg.ReadLatency.Microseconds())) * time.Microsecond
	cfg.WriteLatency = time.Duration(p.GetInt64("cloudsim.writelatency_us", cfg.WriteLatency.Microseconds())) * time.Microsecond
	cfg.RateLimit = p.GetFloat("cloudsim.ratelimit", cfg.RateLimit)
	cfg.PoolSize = p.GetInt("cloudsim.poolsize", cfg.PoolSize)
	cfg.ContentionPenalty = time.Duration(p.GetInt64("cloudsim.contention_us", cfg.ContentionPenalty.Microseconds())) * time.Microsecond
	cfg.Shards = p.GetInt("kvstore.shards", kvstore.DefaultShards)
	b.BlindUpdates = p.GetBool("cloudsim.blindupdates", false)
	cfg.Metrics = obs.Enabled(p.GetBool("obs.enabled", false))
	b.store = New(cfg)
	b.owns = true
	return nil
}

// Cleanup closes the store when this binding created it.
func (b *Binding) Cleanup() error {
	if b.owns && b.store != nil {
		return b.store.Close()
	}
	return nil
}

// Store exposes the simulated container (for validation and stats).
func (b *Binding) Store() *Store { return b.store }

func translate(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, kvstore.ErrNotFound):
		return fmt.Errorf("%w: %v", db.ErrNotFound, err)
	case errors.Is(err, kvstore.ErrVersionMismatch), errors.Is(err, kvstore.ErrExists):
		return fmt.Errorf("%w: %v", db.ErrConflict, err)
	default:
		return err
	}
}

// Read implements db.DB.
func (b *Binding) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	rec, err := b.store.Get(ctx, table, key)
	if err != nil {
		return nil, translate(err)
	}
	return db.ProjectFields(rec.Fields, fields), nil
}

// Scan implements db.DB.
func (b *Binding) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	kvs, err := b.store.Scan(ctx, table, startKey, count)
	if err != nil {
		return nil, translate(err)
	}
	out := make([]db.KV, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, db.KV{Key: kv.Key, Record: db.ProjectFields(kv.Record.Fields, fields)})
	}
	return out, nil
}

// Update implements db.DB with read-merge-write (cloud stores have no
// server-side merge; this is what a raw client does, racily), or a
// single blind PUT when BlindUpdates is set.
func (b *Binding) Update(ctx context.Context, table, key string, values db.Record) error {
	if b.BlindUpdates {
		_, err := b.store.Put(ctx, table, key, values, kvstore.AnyVersion)
		return translate(err)
	}
	cur, err := b.store.Get(ctx, table, key)
	if err != nil {
		return translate(err)
	}
	merged := make(map[string][]byte, len(cur.Fields)+len(values))
	for f, v := range cur.Fields {
		merged[f] = v
	}
	for f, v := range values {
		merged[f] = v
	}
	_, err = b.store.Put(ctx, table, key, merged, kvstore.AnyVersion)
	return translate(err)
}

// Insert implements db.DB (unconditional put).
func (b *Binding) Insert(ctx context.Context, table, key string, values db.Record) error {
	_, err := b.store.Put(ctx, table, key, values, kvstore.AnyVersion)
	return translate(err)
}

// Delete implements db.DB.
func (b *Binding) Delete(ctx context.Context, table, key string) error {
	return translate(b.store.Delete(ctx, table, key, kvstore.AnyVersion))
}
