package cloudsim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/properties"
)

// fastConfig returns a config with tiny latencies for quick tests.
func fastConfig() Config {
	return Config{
		Name:         "test",
		ReadLatency:  100 * time.Microsecond,
		WriteLatency: 200 * time.Microsecond,
	}
}

func TestStoreBasicOps(t *testing.T) {
	ctx := context.Background()
	s := New(fastConfig())
	defer s.Close()

	v, err := s.Put(ctx, "t", "k", map[string][]byte{"f": []byte("a")}, kvstore.AnyVersion)
	if err != nil || v != 1 {
		t.Fatalf("Put = %d, %v", v, err)
	}
	rec, err := s.Get(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 1 || string(rec.Fields["f"]) != "a" {
		t.Errorf("Get = %+v", rec)
	}
	// Conditional put honors versions.
	if _, err := s.Put(ctx, "t", "k", map[string][]byte{"f": []byte("b")}, 99); !errors.Is(err, kvstore.ErrVersionMismatch) {
		t.Errorf("stale CAS = %v", err)
	}
	if _, err := s.Put(ctx, "t", "k", map[string][]byte{"f": []byte("b")}, 1); err != nil {
		t.Errorf("CAS = %v", err)
	}
	kvs, err := s.Scan(ctx, "t", "", 10)
	if err != nil || len(kvs) != 1 {
		t.Errorf("Scan = %v, %v", kvs, err)
	}
	if err := s.Delete(ctx, "t", "k", kvstore.AnyVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "t", "k"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
	reads, writes, _ := s.Stats()
	if reads != 3 || writes != 4 {
		t.Errorf("Stats = %d reads, %d writes", reads, writes)
	}
}

func TestStoreLatencyApplied(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Name: "lat", ReadLatency: 5 * time.Millisecond, WriteLatency: 10 * time.Millisecond}
	s := New(cfg)
	defer s.Close()
	s.Put(ctx, "t", "k", map[string][]byte{"f": []byte("v")}, kvstore.AnyVersion)

	start := time.Now()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := s.Get(ctx, "t", "k"); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < n*4*time.Millisecond {
		t.Errorf("10 reads took %v, want ≥ %v", elapsed, n*4*time.Millisecond)
	}
}

func TestStoreJitterVariesLatency(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Name: "jit", ReadLatency: 2 * time.Millisecond, LatencyJitter: 0.5, Seed: 42}
	s := New(cfg)
	defer s.Close()
	s.inner.Put("t", "k", map[string][]byte{"f": []byte("v")})

	var min, max time.Duration = time.Hour, 0
	for i := 0; i < 30; i++ {
		start := time.Now()
		s.Get(ctx, "t", "k")
		d := time.Since(start)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max < min*11/10 {
		t.Errorf("jitter absent: min=%v max=%v", min, max)
	}
}

func TestStoreContextCancellation(t *testing.T) {
	cfg := Config{Name: "slow", ReadLatency: 2 * time.Second}
	s := New(cfg)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Get(ctx, "t", "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Get = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not interrupt the latency sleep")
	}
}

func TestRateLimiterCapsThroughput(t *testing.T) {
	// 500 req/s with 8 concurrent clients for ~400ms should complete
	// roughly 200 requests, far below the unthrottled count.
	cfg := Config{Name: "cap", RateLimit: 500, Burst: 1}
	s := New(cfg)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if _, err := s.Put(ctx, "t", "k", map[string][]byte{"f": []byte("v")}, kvstore.AnyVersion); err == nil {
					ops.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	got := ops.Load()
	if got > 320 {
		t.Errorf("rate limiter leaked: %d ops in 400ms at 500/s", got)
	}
	if got < 100 {
		t.Errorf("rate limiter too strict: %d ops", got)
	}
	_, _, waited := s.Stats()
	if waited == 0 {
		t.Error("no rate-limit waiting recorded")
	}
}

func TestTokenBucketSequential(t *testing.T) {
	b := newTokenBucket(1000, 1) // 1ms per token
	ctx := context.Background()
	// First request rides the burst.
	w, err := b.wait(ctx)
	if err != nil || w != 0 {
		t.Fatalf("first wait = %v, %v", w, err)
	}
	// Back-to-back requests must be paced.
	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := b.wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Errorf("10 paced waits took %v, want ≈10ms", elapsed)
	}
}

func TestTokenBucketIdleCredit(t *testing.T) {
	b := newTokenBucket(100, 5)
	ctx := context.Background()
	// Consume the burst.
	for i := 0; i < 5; i++ {
		b.wait(ctx)
	}
	// After idling, burst credit returns.
	time.Sleep(80 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := b.wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Errorf("burst after idle took %v", elapsed)
	}
}

func TestTokenBucketCancellation(t *testing.T) {
	b := newTokenBucket(1, 1)
	ctx := context.Background()
	b.wait(ctx) // consume the burst token
	cctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := b.wait(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("wait = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("cancellation did not interrupt the wait")
	}
}

func TestContentionPenaltyGrowsWithConcurrency(t *testing.T) {
	cfg := Config{
		Name:              "cont",
		ReadLatency:       200 * time.Microsecond,
		PoolSize:          2,
		ContentionPenalty: 2 * time.Millisecond,
	}
	s := New(cfg)
	defer s.Close()
	ctx := context.Background()
	s.inner.Put("t", "k", map[string][]byte{"f": []byte("v")})

	measure := func(threads int) time.Duration {
		var wg sync.WaitGroup
		var total atomic.Int64
		var count atomic.Int64
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					start := time.Now()
					s.Get(ctx, "t", "k")
					total.Add(int64(time.Since(start)))
					count.Add(1)
				}
			}()
		}
		wg.Wait()
		return time.Duration(total.Load() / count.Load())
	}
	lowConc := measure(1)
	highConc := measure(16)
	if highConc < 2*lowConc {
		t.Errorf("contention penalty absent: 1-thread avg %v, 16-thread avg %v", lowConc, highConc)
	}
}

func TestPresets(t *testing.T) {
	for _, cfg := range []Config{WASPreset(), GCSPreset()} {
		if cfg.ReadLatency <= 0 || cfg.WriteLatency < cfg.ReadLatency {
			t.Errorf("%s: implausible latencies %v/%v", cfg.Name, cfg.ReadLatency, cfg.WriteLatency)
		}
		if cfg.RateLimit <= 0 || cfg.PoolSize <= 0 {
			t.Errorf("%s: missing rate limit or pool", cfg.Name)
		}
	}
}

func TestBindingCRUD(t *testing.T) {
	ctx := context.Background()
	b := NewBinding(New(fastConfig()))
	if err := b.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(ctx, "t", "k", db.Record{"f": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	rec, err := b.Read(ctx, "t", "k", nil)
	if err != nil || string(rec["f"]) != "1" {
		t.Fatalf("Read = %v, %v", rec, err)
	}
	if err := b.Update(ctx, "t", "k", db.Record{"g": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	rec, _ = b.Read(ctx, "t", "k", nil)
	if string(rec["f"]) != "1" || string(rec["g"]) != "2" {
		t.Errorf("merged = %v", rec)
	}
	rec, _ = b.Read(ctx, "t", "k", []string{"g"})
	if len(rec) != 1 {
		t.Errorf("projection = %v", rec)
	}
	kvs, err := b.Scan(ctx, "t", "", 5, nil)
	if err != nil || len(kvs) != 1 {
		t.Errorf("Scan = %v, %v", kvs, err)
	}
	if err := b.Delete(ctx, "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(ctx, "t", "k", nil); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("after delete = %v", err)
	}
	if err := b.Update(ctx, "t", "missing", db.Record{"f": nil}); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("Update missing = %v", err)
	}
	if err := b.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestBindingInitFromProperties(t *testing.T) {
	p := properties.FromMap(map[string]string{
		"cloudsim.preset":         "gcs",
		"cloudsim.readlatency_us": "50",
		"cloudsim.ratelimit":      "123",
	})
	b := &Binding{}
	if err := b.Init(p); err != nil {
		t.Fatal(err)
	}
	defer b.Cleanup()
	if b.Store().cfg.ReadLatency != 50*time.Microsecond {
		t.Errorf("ReadLatency = %v", b.Store().cfg.ReadLatency)
	}
	if b.Store().cfg.RateLimit != 123 {
		t.Errorf("RateLimit = %v", b.Store().cfg.RateLimit)
	}
	if b.Store().cfg.Name != "gcs" {
		t.Errorf("preset = %q", b.Store().cfg.Name)
	}

	bad := &Binding{}
	if err := bad.Init(properties.FromMap(map[string]string{"cloudsim.preset": "aws"})); err == nil {
		t.Error("unknown preset should fail")
	}
}
