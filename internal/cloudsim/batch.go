package cloudsim

import (
	"context"
	"fmt"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
)

// Batch economics: a cloud store bills per request, so a multi-key
// batch API is charged as ONE request — one service-latency draw, one
// rate-limit token, one entry in the read/write stats — regardless of
// how many keys it touches. That is exactly why batching changes the
// Figure 2/3 curves: the container's request-rate ceiling binds on
// batches, not keys.

// BatchGet answers a multi-key read as one simulated read request.
// The returned error is the admission failure of the whole request
// (rate-limit cancellation); per-key misses are inside the results.
func (s *Store) BatchGet(ctx context.Context, reqs []kvstore.GetReq) ([]kvstore.GetResult, error) {
	if err := s.simulate(ctx, s.cfg.ReadLatency); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	s.mReads.Inc()
	return s.inner.BatchGet(reqs), nil
}

// BatchApply applies a multi-key mutation batch as one simulated
// write request.
func (s *Store) BatchApply(ctx context.Context, muts []kvstore.Mutation) ([]kvstore.MutResult, error) {
	if err := s.simulate(ctx, s.cfg.WriteLatency); err != nil {
		return nil, err
	}
	s.writes.Add(1)
	s.mWrites.Inc()
	return s.inner.BatchApply(muts), nil
}

// ExecBatch implements db.BatchDB with the same run-splitting as the
// embedded binding: consecutive reads share one BatchGet charge,
// consecutive writes one BatchApply charge. Non-blind updates need
// the cloud client's read-merge-write, so a write run containing
// updates pays one extra read charge for the pre-read — still two
// requests where the single-op path pays 2N.
func (b *Binding) ExecBatch(ctx context.Context, ops []db.BatchOp) []db.BatchResult {
	out := make([]db.BatchResult, len(ops))
	for lo := 0; lo < len(ops); {
		hi := lo + 1
		for hi < len(ops) && (ops[hi].Op == db.OpRead) == (ops[lo].Op == db.OpRead) {
			hi++
		}
		if ops[lo].Op == db.OpRead {
			b.execReadRun(ctx, ops[lo:hi], out[lo:hi])
		} else {
			b.execWriteRun(ctx, ops[lo:hi], out[lo:hi])
		}
		lo = hi
	}
	return out
}

func (b *Binding) execReadRun(ctx context.Context, ops []db.BatchOp, out []db.BatchResult) {
	reqs := make([]kvstore.GetReq, len(ops))
	for i, op := range ops {
		reqs[i] = kvstore.GetReq{Table: op.Table, Key: op.Key}
	}
	results, err := b.store.BatchGet(ctx, reqs)
	if err != nil {
		for i := range out {
			out[i] = db.BatchResult{Err: translate(err)}
		}
		return
	}
	for i, r := range results {
		if r.Err != nil {
			out[i] = db.BatchResult{Err: translate(r.Err)}
			continue
		}
		out[i] = db.BatchResult{Record: db.ProjectFields(r.Record.Fields, ops[i].Fields)}
	}
}

func (b *Binding) execWriteRun(ctx context.Context, ops []db.BatchOp, out []db.BatchResult) {
	// Cloud stores have no server-side merge: updates are
	// read-merge-write unless BlindUpdates. The pre-read for every
	// update in the run is one batched read request.
	merged := make([]db.Record, len(ops))
	if !b.BlindUpdates {
		var updIdx []int
		var reqs []kvstore.GetReq
		for i, op := range ops {
			if op.Op == db.OpUpdate {
				updIdx = append(updIdx, i)
				reqs = append(reqs, kvstore.GetReq{Table: op.Table, Key: op.Key})
			}
		}
		if len(reqs) > 0 {
			results, err := b.store.BatchGet(ctx, reqs)
			if err != nil {
				for i := range out {
					out[i] = db.BatchResult{Err: translate(err)}
				}
				return
			}
			for j, r := range results {
				i := updIdx[j]
				if r.Err != nil {
					out[i] = db.BatchResult{Err: translate(r.Err)}
					continue
				}
				m := make(db.Record, len(r.Record.Fields)+len(ops[i].Values))
				for f, v := range r.Record.Fields {
					m[f] = v
				}
				for f, v := range ops[i].Values {
					m[f] = v
				}
				merged[i] = m
			}
		}
	}
	muts := make([]kvstore.Mutation, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		if out[i].Err != nil { // failed pre-read, already reported
			continue
		}
		var m kvstore.Mutation
		switch op.Op {
		case db.OpUpdate:
			values := op.Values
			if merged[i] != nil {
				values = merged[i]
			}
			m = kvstore.Mutation{Op: kvstore.MutPut, Table: op.Table, Key: op.Key, Fields: values, Expect: kvstore.AnyVersion}
		case db.OpInsert:
			m = kvstore.Mutation{Op: kvstore.MutPut, Table: op.Table, Key: op.Key, Fields: op.Values, Expect: kvstore.AnyVersion}
		case db.OpDelete:
			m = kvstore.Mutation{Op: kvstore.MutDelete, Table: op.Table, Key: op.Key, Expect: kvstore.AnyVersion}
		default:
			out[i] = db.BatchResult{Err: fmt.Errorf("%w: cannot batch %v", db.ErrNotSupported, op.Op)}
			continue
		}
		muts = append(muts, m)
		idx = append(idx, i)
	}
	if len(muts) == 0 {
		return
	}
	results, err := b.store.BatchApply(ctx, muts)
	if err != nil {
		for _, i := range idx {
			out[i] = db.BatchResult{Err: translate(err)}
		}
		return
	}
	for j, r := range results {
		out[idx[j]] = db.BatchResult{Err: translate(r.Err)}
	}
}

var _ db.BatchDB = (*Binding)(nil)
