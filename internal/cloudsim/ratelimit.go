package cloudsim

import (
	"context"
	"sync"
	"time"
)

// tokenBucket is a blocking rate limiter implemented as a GCRA-style
// reservation queue: each waiter reserves the next free token slot,
// so concurrent waiters serialize at exactly the configured rate
// (cloud SDK clients retry throttled requests with backoff; blocking
// models the steady-state effect of that).
type tokenBucket struct {
	mu       sync.Mutex
	interval time.Duration // time between tokens = 1/rate
	burstDur time.Duration // how far `next` may lag behind now
	next     time.Time     // when the next token becomes free
	now      func() time.Time
	sleep    func(context.Context, time.Duration) error
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		panic("cloudsim: rate must be positive")
	}
	if burst < 1 {
		burst = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	// A burst of b grants b immediately-available tokens: the first
	// matures now, so `next` may lag now by at most (b-1) intervals.
	burstDur := time.Duration((burst - 1) * float64(interval))
	return &tokenBucket{
		interval: interval,
		burstDur: burstDur,
		next:     time.Now().Add(-burstDur),
		now:      time.Now,
		sleep:    sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait blocks until this caller's reserved token matures and returns
// how long it waited.
func (b *tokenBucket) wait(ctx context.Context) (time.Duration, error) {
	b.mu.Lock()
	now := b.now()
	// Idle credit accumulates up to the burst allowance.
	if earliest := now.Add(-b.burstDur); b.next.Before(earliest) {
		b.next = earliest
	}
	tokenAt := b.next
	b.next = b.next.Add(b.interval)
	b.mu.Unlock()

	wait := tokenAt.Sub(now)
	if wait <= 0 {
		return 0, nil
	}
	if err := b.sleep(ctx, wait); err != nil {
		return 0, err
	}
	return wait, nil
}
