// Package cloudsim simulates a cloud key-value store container such
// as a Windows Azure Storage (WAS) container or a Google Cloud
// Storage (GCS) bucket, the substrates of the paper's Figure 2 and
// Figure 3 experiments.
//
// The paper measured its client-coordinated transaction library from
// EC2 hosts against real WAS/GCS containers. We do not have those, so
// the simulator reproduces the three mechanisms that give Figure 2
// its shape:
//
//  1. Per-request service latency (reads cheaper than writes): at low
//     thread counts throughput scales linearly with threads because
//     each thread is latency-bound.
//  2. A container request-rate ceiling (token bucket): the paper
//     observes throughput "remains roughly the same" from 16 to 32
//     threads and attributes it to "a bottleneck in the network or
//     the data store container itself" — a request-rate limit.
//  3. Client-side thread contention: beyond the connection-pool size,
//     each in-flight request pays a queueing penalty proportional to
//     the excess concurrency, which reproduces the throughput decline
//     at 64 and 128 threads that the authors attribute to "thread
//     contention".
//
// The store exposes versioned conditional operations (the ETag
// conditional-put idiom both WAS and GCS offer), which is exactly the
// primitive the client-coordinated transaction library requires.
package cloudsim

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
)

// Config tunes one simulated store container.
type Config struct {
	// Name identifies the container (e.g. "was-1").
	Name string
	// ReadLatency is the mean service time of a read request.
	ReadLatency time.Duration
	// WriteLatency is the mean service time of a write request.
	WriteLatency time.Duration
	// LatencyJitter is the coefficient of variation of service times
	// (0 = deterministic). Latencies are drawn from a lognormal-like
	// two-point mixture to keep the hot path cheap.
	LatencyJitter float64
	// RateLimit caps the container's requests per second (token
	// bucket); 0 means unlimited. Requests beyond the burst wait for
	// tokens, which produces the 16→32-thread throughput plateau.
	RateLimit float64
	// Burst is the token-bucket burst size; defaults to RateLimit/10.
	Burst float64
	// PoolSize models the client connection pool: in-flight requests
	// beyond this pay ContentionPenalty per excess request.
	PoolSize int
	// ContentionPenalty is the extra latency per in-flight request
	// above PoolSize, modelling client-side thread contention
	// (context switching, lock convoys). Produces the 64/128-thread
	// throughput decline.
	ContentionPenalty time.Duration
	// Seed seeds the jitter source; 0 uses a fixed default so runs
	// are reproducible.
	Seed int64
	// Shards is the hash-partition count of the backing engine; 0
	// means kvstore.DefaultShards. The simulated latencies dominate a
	// single request, but at high thread counts the substrate must
	// not serialize behind one lock or it, not the simulated
	// container, becomes the bottleneck.
	Shards int
	// Metrics, when non-nil, receives the cloudsim_* series, labelled
	// store=Name: request counters, rate-limit wait histogram, and
	// inflight/pool-excess gauges.
	Metrics *obs.Registry
}

// WASPreset returns a configuration shaped like the paper's single
// WAS container reached from an EC2 client, scaled down ~10× in
// latency so experiment sweeps complete in seconds rather than hours.
// The shape (linear to 16 threads, plateau at 32, decline past that)
// is preserved; see DESIGN.md.
func WASPreset() Config {
	// Calibration: with CEW 90:10 the transactional client issues
	// ~1.7 requests per transaction and one latency-bound thread
	// commits ~145 txn/s, so a 2600 req/s container ceiling starts to
	// bind just past 16 threads — reproducing the paper's 16→32
	// thread plateau. Past the 32-connection pool each in-flight
	// request pays 1.2 ms per excess waiter; at 64 threads that makes
	// the client, not the container, the bottleneck — the paper's
	// 64/128-thread decline ("this may be a result of thread
	// contention").
	return Config{
		Name:              "was",
		ReadLatency:       3 * time.Millisecond,
		WriteLatency:      6 * time.Millisecond,
		LatencyJitter:     0.15,
		RateLimit:         2600,
		PoolSize:          32,
		ContentionPenalty: 1200 * time.Microsecond,
	}
}

// GCSPreset returns a configuration shaped like a GCS bucket: a bit
// slower per request than WAS in the paper's experience.
func GCSPreset() Config {
	return Config{
		Name:              "gcs",
		ReadLatency:       4 * time.Millisecond,
		WriteLatency:      8 * time.Millisecond,
		LatencyJitter:     0.2,
		RateLimit:         2100,
		PoolSize:          32,
		ContentionPenalty: 1200 * time.Microsecond,
	}
}

// Store is a simulated cloud store container backed by an in-memory
// kvstore engine. It is safe for concurrent use.
type Store struct {
	cfg     Config
	inner   *kvstore.Store
	limiter *tokenBucket

	inflight atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand

	// Stats counters.
	reads  atomic.Int64
	writes atomic.Int64
	waited atomic.Int64 // nanoseconds spent waiting for rate tokens

	// obs handles; nil (uninstrumented) handles no-op.
	mReads  *obs.Counter
	mWrites *obs.Counter
	mWait   *obs.Histogram
}

// NewOver returns a simulated container layered over an existing
// engine. The experiment harness uses this to pre-populate a store
// through a zero-latency path and then benchmark it through the
// simulated one.
func NewOver(cfg Config, inner *kvstore.Store) *Store {
	s := New(cfg)
	s.inner = inner
	return s
}

// New returns a simulated container with the given configuration.
func New(cfg Config) *Store {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = kvstore.DefaultShards
	}
	inner, _ := kvstore.Open(kvstore.Options{Shards: shards}) // in-memory open cannot fail
	s := &Store{
		cfg:   cfg,
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
	}
	if cfg.RateLimit > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = cfg.RateLimit / 10
			if burst < 1 {
				burst = 1
			}
		}
		s.limiter = newTokenBucket(cfg.RateLimit, burst)
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Help("cloudsim_requests_total", "Simulated container requests by kind.")
		reg.Help("cloudsim_ratelimit_wait_seconds", "Time requests spent waiting for rate-limit tokens.")
		reg.Help("cloudsim_inflight_requests", "Requests currently inside the simulated container.")
		reg.Help("cloudsim_pool_excess", "In-flight requests beyond the connection pool (paying contention penalty).")
		s.mReads = reg.Counter("cloudsim_requests_total", "kind", "read", "store", cfg.Name)
		s.mWrites = reg.Counter("cloudsim_requests_total", "kind", "write", "store", cfg.Name)
		s.mWait = reg.Histogram("cloudsim_ratelimit_wait_seconds", obs.DurationBuckets, "store", cfg.Name)
		reg.GaugeFunc("cloudsim_inflight_requests", func() float64 {
			return float64(s.inflight.Load())
		}, "store", cfg.Name)
		reg.GaugeFunc("cloudsim_pool_excess", func() float64 {
			if cfg.PoolSize <= 0 {
				return 0
			}
			if excess := s.inflight.Load() - int64(cfg.PoolSize); excess > 0 {
				return float64(excess)
			}
			return 0
		}, "store", cfg.Name)
	}
	return s
}

// Name returns the container name.
func (s *Store) Name() string { return s.cfg.Name }

// Inner exposes the backing engine for validation scans.
func (s *Store) Inner() *kvstore.Store { return s.inner }

// Stats reports request counts and cumulative rate-limit wait time.
func (s *Store) Stats() (reads, writes int64, waited time.Duration) {
	return s.reads.Load(), s.writes.Load(), time.Duration(s.waited.Load())
}

// serviceTime draws this request's simulated service latency.
func (s *Store) serviceTime(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := float64(mean)
	if s.cfg.LatencyJitter > 0 {
		s.mu.Lock()
		// Lognormal(µ, σ) with σ = jitter, rescaled to the target mean.
		sigma := s.cfg.LatencyJitter
		draw := math.Exp(s.rng.NormFloat64()*sigma - sigma*sigma/2)
		s.mu.Unlock()
		d *= draw
	}
	// Client-side contention: each in-flight request beyond the pool
	// size adds a queueing penalty.
	if s.cfg.PoolSize > 0 && s.cfg.ContentionPenalty > 0 {
		excess := s.inflight.Load() - int64(s.cfg.PoolSize)
		if excess > 0 {
			d += float64(excess) * float64(s.cfg.ContentionPenalty)
		}
	}
	return time.Duration(d)
}

// simulate applies admission control and latency around one request.
func (s *Store) simulate(ctx context.Context, mean time.Duration) error {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.limiter != nil {
		waited, err := s.limiter.wait(ctx)
		if err != nil {
			return err
		}
		s.waited.Add(int64(waited))
		s.mWait.Observe(waited.Seconds())
	}
	d := s.serviceTime(mean)
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Get fetches a versioned record, paying read latency.
func (s *Store) Get(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	if err := s.simulate(ctx, s.cfg.ReadLatency); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	s.mReads.Inc()
	return s.inner.Get(table, key)
}

// Put stores a record conditionally on expect (kvstore.AnyVersion /
// MustNotExist / exact version), paying write latency.
func (s *Store) Put(ctx context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	if err := s.simulate(ctx, s.cfg.WriteLatency); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mWrites.Inc()
	return s.inner.PutIfVersion(table, key, fields, expect)
}

// Delete removes a record conditionally on expect, paying write
// latency.
func (s *Store) Delete(ctx context.Context, table, key string, expect uint64) error {
	if err := s.simulate(ctx, s.cfg.WriteLatency); err != nil {
		return err
	}
	s.writes.Add(1)
	s.mWrites.Inc()
	return s.inner.DeleteIfVersion(table, key, expect)
}

// Scan returns up to count records from startKey, paying read latency
// once (cloud list calls are one request per page).
func (s *Store) Scan(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	if err := s.simulate(ctx, s.cfg.ReadLatency); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	s.mReads.Inc()
	return s.inner.Scan(table, startKey, count)
}

// Close shuts down the backing engine.
func (s *Store) Close() error { return s.inner.Close() }
