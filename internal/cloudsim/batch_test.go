package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ycsbt/internal/db"
)

// zeroLatency returns a store with no simulated latency so tests only
// observe the request accounting.
func zeroLatency() *Store {
	return New(Config{Name: "test"})
}

// TestBatchChargedAsOneRequest checks the batch economics: a read run
// costs one read request and a write run one write request, no matter
// how many keys move.
func TestBatchChargedAsOneRequest(t *testing.T) {
	ctx := context.Background()
	b := NewBinding(zeroLatency())
	defer b.store.Close()

	var ops []db.BatchOp
	for i := 0; i < 8; i++ {
		ops = append(ops, db.BatchOp{Op: db.OpInsert, Table: "t", Key: fmt.Sprintf("k%d", i), Values: db.Record{"f": []byte("v")}})
	}
	for _, r := range b.ExecBatch(ctx, ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	reads, writes, _ := b.store.Stats()
	if reads != 0 || writes != 1 {
		t.Fatalf("after 8-insert batch: reads=%d writes=%d, want 0/1", reads, writes)
	}

	ops = ops[:0]
	for i := 0; i < 8; i++ {
		ops = append(ops, db.BatchOp{Op: db.OpRead, Table: "t", Key: fmt.Sprintf("k%d", i)})
	}
	for i, r := range b.ExecBatch(ctx, ops) {
		if r.Err != nil || string(r.Record["f"]) != "v" {
			t.Fatalf("read %d: %+v", i, r)
		}
	}
	reads, writes, _ = b.store.Stats()
	if reads != 1 || writes != 1 {
		t.Fatalf("after 8-read batch: reads=%d writes=%d, want 1/1", reads, writes)
	}
}

// TestBatchUpdateChargesPreRead checks a non-blind update run pays
// exactly two requests (batched pre-read + batched put), and a blind
// run pays one.
func TestBatchUpdateChargesPreRead(t *testing.T) {
	ctx := context.Background()
	b := NewBinding(zeroLatency())
	defer b.store.Close()
	for i := 0; i < 4; i++ {
		if err := b.Insert(ctx, "t", fmt.Sprintf("k%d", i), db.Record{"f": []byte("v"), "keep": []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	r0, w0, _ := b.store.Stats()

	var ops []db.BatchOp
	for i := 0; i < 4; i++ {
		ops = append(ops, db.BatchOp{Op: db.OpUpdate, Table: "t", Key: fmt.Sprintf("k%d", i), Values: db.Record{"f": []byte("v2")}})
	}
	for i, r := range b.ExecBatch(ctx, ops) {
		if r.Err != nil {
			t.Fatalf("update %d: %v", i, r.Err)
		}
	}
	r1, w1, _ := b.store.Stats()
	if r1-r0 != 1 || w1-w0 != 1 {
		t.Fatalf("merge-update batch: +%d reads +%d writes, want 1/1", r1-r0, w1-w0)
	}
	// The merge preserved untouched fields.
	rec, err := b.Read(ctx, "t", "k0", nil)
	if err != nil || string(rec["f"]) != "v2" || string(rec["keep"]) != "x" {
		t.Fatalf("merged record: %v %v", rec, err)
	}

	b.BlindUpdates = true
	r1, w1, _ = b.store.Stats()
	for i, r := range b.ExecBatch(ctx, ops) {
		if r.Err != nil {
			t.Fatalf("blind update %d: %v", i, r.Err)
		}
	}
	r2, w2, _ := b.store.Stats()
	if r2-r1 != 0 || w2-w1 != 1 {
		t.Fatalf("blind-update batch: +%d reads +%d writes, want 0/1", r2-r1, w2-w1)
	}
}

// TestBatchPerItemErrors checks misses surface per item, not as
// whole-batch failures.
func TestBatchPerItemErrors(t *testing.T) {
	ctx := context.Background()
	b := NewBinding(zeroLatency())
	defer b.store.Close()
	if err := b.Insert(ctx, "t", "a", db.Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	res := b.ExecBatch(ctx, []db.BatchOp{
		{Op: db.OpRead, Table: "t", Key: "a"},
		{Op: db.OpRead, Table: "t", Key: "missing"},
		{Op: db.OpUpdate, Table: "t", Key: "missing", Values: db.Record{"f": []byte("x")}},
		{Op: db.OpInsert, Table: "t", Key: "b", Values: db.Record{"f": []byte("v")}},
	})
	if res[0].Err != nil {
		t.Fatalf("item 0: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, db.ErrNotFound) || !errors.Is(res[2].Err, db.ErrNotFound) {
		t.Fatalf("items 1/2: %v %v", res[1].Err, res[2].Err)
	}
	if res[3].Err != nil {
		t.Fatalf("item 3: %v", res[3].Err)
	}
}
