package history

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"ycsbt/internal/obs"
	"ycsbt/internal/trace"
)

// FormatVersion is the NDJSON history format version written in the
// header line.
const FormatVersion = 1

// DefaultQueue is the default sink queue depth (records, not bytes).
const DefaultQueue = 1 << 14

// headerLine is the first line of every history file.
type headerLine struct {
	T       string `json:"t"` // "h"
	Version int    `json:"version"`
}

// accessLine is one spilled trace access ("a" line). Spilled accesses
// carry no timestamps or outcome — they come from trace.Recorder,
// which only ever sees committed transactions.
type accessLine struct {
	T     string `json:"t"` // "a"
	Txn   string `json:"txn"`
	Key   string `json:"key"`
	Ver   uint64 `json:"ver"`
	Write bool   `json:"w,omitempty"`
}

// txnLine is one full transaction record ("x" line).
type txnLine struct {
	T string `json:"t"` // "x"
	TxnRecord
}

// SinkOptions tunes a Sink.
type SinkOptions struct {
	// Queue is the channel depth between recording threads and the
	// writer goroutine (default DefaultQueue). When the writer falls
	// behind and the queue fills, records are dropped and counted —
	// capture never blocks the benchmark or grows memory unboundedly.
	Queue int
	// Metrics registers history_events_total / history_dropped_total
	// on the given registry (nil = no instrumentation).
	Metrics *obs.Registry
}

// event is one queued unit of work for the writer goroutine.
type event struct {
	txn      *TxnRecord
	accesses []trace.Access
}

// Sink is the durable history sink: a bounded queue drained by one
// writer goroutine that streams NDJSON lines to w. Memory stays
// bounded regardless of run length; enqueue is lock-light (an RLock
// plus a channel send) and never blocks.
type Sink struct {
	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool
	ch     chan event
	done   chan struct{}

	w    io.Writer
	c    io.Closer // nil when the sink does not own w
	werr atomic.Value

	events  atomic.Int64
	dropped atomic.Int64

	obsEvents  *obs.Counter
	obsDropped *obs.Counter
}

// NewSink streams history lines to w. When w is also an io.Closer the
// sink closes it on Close.
func NewSink(w io.Writer, opts SinkOptions) *Sink {
	if opts.Queue <= 0 {
		opts.Queue = DefaultQueue
	}
	s := &Sink{
		w:    w,
		ch:   make(chan event, opts.Queue),
		done: make(chan struct{}),
	}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	if opts.Metrics != nil {
		opts.Metrics.Help("history_events_total", "History records accepted by the sink.")
		opts.Metrics.Help("history_dropped_total", "History records dropped because the sink queue was full.")
		s.obsEvents = opts.Metrics.Counter("history_events_total")
		s.obsDropped = opts.Metrics.Counter("history_dropped_total")
	}
	go s.writeLoop()
	return s
}

// OpenFile creates (truncating) a history file at path and returns a
// sink streaming to it.
func OpenFile(path string, opts SinkOptions) (*Sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	return NewSink(f, opts), nil
}

// RecordTxn enqueues one finished transaction. It never blocks: when
// the queue is full the record is dropped and counted.
func (s *Sink) RecordTxn(rec *TxnRecord) {
	s.enqueue(event{txn: rec})
}

// SpillAccesses implements trace.AccessSink: a streaming
// trace.Recorder hands over batches of accesses instead of retaining
// them, so long traced runs stay memory-bounded. The batch must not
// be mutated after the call.
func (s *Sink) SpillAccesses(batch []trace.Access) {
	if len(batch) == 0 {
		return
	}
	s.enqueue(event{accesses: batch})
}

func (s *Sink) enqueue(ev event) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.drop(ev)
		return
	}
	select {
	case s.ch <- ev:
		n := int64(1)
		if ev.accesses != nil {
			n = int64(len(ev.accesses))
		}
		s.events.Add(n)
		s.obsEvents.Add(n)
	default:
		s.drop(ev)
	}
}

func (s *Sink) drop(ev event) {
	n := int64(1)
	if ev.accesses != nil {
		n = int64(len(ev.accesses))
	}
	s.dropped.Add(n)
	s.obsDropped.Add(n)
}

// writeLoop is the single writer: it owns the buffered writer and a
// reused encode buffer, so the encoding path takes no locks and
// amortizes to zero allocations. Lines are marshaled by hand (the
// format is flat and fixed) — encoding/json reflection here costs
// about a microsecond per record, which the write-behind goroutine
// would charge straight against benchmark throughput on saturated
// machines.
func (s *Sink) writeLoop() {
	defer close(s.done)
	bw := bufio.NewWriterSize(s.w, 1<<16)
	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"t":"h","version":`...)
	buf = strconv.AppendInt(buf, FormatVersion, 10)
	buf = append(buf, '}', '\n')
	if _, err := bw.Write(buf); err != nil {
		s.werr.Store(err)
	}
	for ev := range s.ch {
		buf = buf[:0]
		if ev.txn != nil {
			sortOps(ev.txn.Ops)
			buf = appendTxnLine(buf, ev.txn)
		} else {
			for i := range ev.accesses {
				buf = appendAccessLine(buf, &ev.accesses[i])
			}
		}
		if _, err := bw.Write(buf); err != nil {
			s.werr.Store(err)
		}
	}
	if err := bw.Flush(); err != nil {
		s.werr.Store(err)
	}
}

// appendTxnLine appends one "x" line, mirroring txnLine's JSON shape.
func appendTxnLine(b []byte, r *TxnRecord) []byte {
	b = append(b, `{"t":"x","id":`...)
	b = appendJSONString(b, r.ID)
	b = append(b, `,"sess":`...)
	b = strconv.AppendInt(b, int64(r.Session), 10)
	if r.StartTS != 0 {
		b = append(b, `,"start":`...)
		b = strconv.AppendInt(b, r.StartTS, 10)
	}
	if r.CommitTS != 0 {
		b = append(b, `,"commit":`...)
		b = strconv.AppendInt(b, r.CommitTS, 10)
	}
	b = append(b, `,"out":`...)
	b = appendJSONString(b, r.Outcome)
	b = append(b, `,"ops":[`...)
	for i := range r.Ops {
		if i > 0 {
			b = append(b, ',')
		}
		op := &r.Ops[i]
		b = append(b, `{"op":`...)
		b = appendJSONString(b, op.Kind)
		if op.Store != "" {
			b = append(b, `,"st":`...)
			b = appendJSONString(b, op.Store)
		}
		if op.Table != "" {
			b = append(b, `,"tab":`...)
			b = appendJSONString(b, op.Table)
		}
		b = append(b, `,"key":`...)
		b = appendJSONString(b, op.Key)
		if op.Ver != 0 {
			b = append(b, `,"ver":`...)
			b = strconv.AppendUint(b, op.Ver, 10)
		}
		b = append(b, '}')
	}
	return append(b, ']', '}', '\n')
}

// appendAccessLine appends one "a" line, mirroring accessLine's shape.
func appendAccessLine(b []byte, a *trace.Access) []byte {
	b = append(b, `{"t":"a","txn":`...)
	b = appendJSONString(b, a.Txn)
	b = append(b, `,"key":`...)
	b = appendJSONString(b, a.Key)
	b = append(b, `,"ver":`...)
	b = strconv.AppendUint(b, a.Version, 10)
	if a.Write {
		b = append(b, `,"w":true`...)
	}
	return append(b, '}', '\n')
}

// appendJSONString appends s as a JSON string literal: quotes,
// backslashes and control characters are escaped; everything else
// passes through byte-for-byte.
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		default:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// sortOps orders a record's ops deterministically — reads before
// writes, each by (store, table, key) — so identical runs produce
// byte-identical records regardless of map iteration order upstream.
func sortOps(ops []Op) {
	sort.SliceStable(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		ar, br := a.Kind == OpRead, b.Kind == OpRead
		if ar != br {
			return ar
		}
		if a.Store != b.Store {
			return a.Store < b.Store
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.Key < b.Key
	})
}

// Close drains the queue, flushes the writer, closes the underlying
// file (when the sink owns one) and returns the first write error.
// Close is idempotent; records arriving after Close are dropped.
func (s *Sink) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.ch)
	}
	<-s.done
	if !already && s.c != nil {
		if err := s.c.Close(); err != nil && s.werr.Load() == nil {
			s.werr.Store(err)
		}
	}
	if err, ok := s.werr.Load().(error); ok {
		return err
	}
	return nil
}

// Stats returns how many records the sink accepted and dropped.
func (s *Sink) Stats() (events, dropped int64) {
	return s.events.Load(), s.dropped.Load()
}

// MemorySink retains records in memory — the TxnSink for tests.
type MemorySink struct {
	mu   sync.Mutex
	recs []*TxnRecord
}

// RecordTxn implements TxnSink.
func (m *MemorySink) RecordTxn(rec *TxnRecord) {
	m.mu.Lock()
	m.recs = append(m.recs, rec)
	m.mu.Unlock()
}

// Records returns the retained records.
func (m *MemorySink) Records() []*TxnRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*TxnRecord(nil), m.recs...)
}

var _ TxnSink = (*Sink)(nil)
var _ TxnSink = (*MemorySink)(nil)
var _ trace.AccessSink = (*Sink)(nil)
