package history

import (
	"context"
	"strconv"
	"sync/atomic"

	"ycsbt/internal/db"

	"ycsbt/internal/properties"
)

// captureClock timestamps middleware-captured transactions. One
// process-wide clock keeps timestamps comparable across sessions.
var captureClock clock

// captureSeq makes middleware transaction ids unique across all
// middleware instances and phases of one process.
var captureSeq atomic.Uint64

// Middleware returns the history-capture middleware for bindings
// without native transaction machinery: it groups the operations
// between Start and Commit/Abort into one TxnRecord — reads and
// writes with the versions the binding reported through the
// db.ReportReadVersion / db.ReportWriteVersion context protocol — and
// records it with start/commit timestamps and outcome. Operations
// outside a demarcated transaction become single-op auto-commit
// records. Scans and batch flushes carry no per-record version and
// are not captured.
//
// Stack it innermost (last), directly over the binding, so retry and
// fault-injection layers above it do not distort the recorded
// history. A middleware instance is confined to one client thread,
// like every middleware built per thread.
//
// The wrapper is hand-written rather than lifted through db.Intercept:
// interception allocates a closure per call, and capture sits on every
// operation of every thread — the direct form keeps the steady-state
// overhead to the version-capture context lookup plus one channel send
// per transaction.
//
// For bindings that implement CapableDB (txnkv), install the sink
// there instead — the transaction manager records richer histories
// (MVCC versions across stores, commit timestamps at the TSR write)
// and stacking both would record every transaction twice.
func Middleware(sink TxnSink, session int) db.Middleware {
	return func(inner db.DB) db.DB {
		return &capture{inner: inner, tdb: db.Transactional(inner), sink: sink, session: session}
	}
}

// capture is one thread's capture state and DB wrapper.
type capture struct {
	inner   db.DB
	tdb     db.TransactionalDB
	sink    TxnSink
	session int

	// Context caching: the client passes the same base context to
	// every operation of a thread, so the derived capture context and
	// struct are built once and reused — zero allocations per op on
	// the steady path.
	baseCtx context.Context
	capCtx  context.Context
	vc      *db.VersionCapture

	cur *TxnRecord // open transaction, nil between transactions
}

func (m *capture) armed(ctx context.Context) context.Context {
	if ctx != m.baseCtx || m.capCtx == nil {
		m.vc = &db.VersionCapture{}
		m.baseCtx = ctx
		m.capCtx = db.WithVersionCapture(ctx, m.vc)
	}
	m.vc.Reset()
	return m.capCtx
}

func (m *capture) begin() *TxnRecord {
	id := make([]byte, 0, 20)
	id = append(id, 's')
	id = strconv.AppendInt(id, int64(m.session), 10)
	id = append(id, '-')
	id = strconv.AppendUint(id, captureSeq.Add(1), 10)
	return &TxnRecord{
		ID:      string(id),
		Session: m.session,
		StartTS: captureClock.now(),
		Ops:     make([]Op, 0, 4),
	}
}

func (m *capture) finish(rec *TxnRecord, committed bool) {
	if rec == nil {
		return
	}
	if committed {
		rec.Outcome = OutcomeCommit
		rec.CommitTS = captureClock.now()
	} else {
		rec.Outcome = OutcomeAbort
	}
	if len(rec.Ops) > 0 {
		m.sink.RecordTxn(rec)
	}
}

// open returns the transaction to record into, beginning an
// auto-commit one (auto = true) when no demarcated transaction is
// underway.
func (m *capture) open() (rec *TxnRecord, auto bool) {
	if m.cur != nil {
		return m.cur, false
	}
	return m.begin(), true
}

// note appends one successful op to rec and closes it when it was an
// auto-commit wrapper.
func (m *capture) note(rec *TxnRecord, auto bool, err error, kind, table, key string, ver uint64) {
	if err == nil {
		rec.Ops = append(rec.Ops, Op{Kind: kind, Table: table, Key: key, Ver: ver})
	}
	if auto {
		m.finish(rec, err == nil)
	}
}

// Init forwards to the wrapped binding.
func (m *capture) Init(p *properties.Properties) error { return m.inner.Init(p) }

// Cleanup forwards to the wrapped binding.
func (m *capture) Cleanup() error { return m.inner.Cleanup() }

// Unwrap returns the wrapped DB (for introspection and tests).
func (m *capture) Unwrap() db.DB { return m.inner }

// Read implements db.DB, recording the version the binding reports.
func (m *capture) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	rec, auto := m.open()
	out, err := m.inner.Read(m.armed(ctx), table, key, fields)
	m.note(rec, auto, err, OpRead, table, key, m.vc.ReadVer)
	return out, err
}

// Scan implements db.DB; range reads carry no per-record version and
// are passed through uncaptured.
func (m *capture) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	return m.inner.Scan(ctx, table, startKey, count, fields)
}

// Update implements db.DB.
func (m *capture) Update(ctx context.Context, table, key string, values db.Record) error {
	rec, auto := m.open()
	err := m.inner.Update(m.armed(ctx), table, key, values)
	m.note(rec, auto, err, OpWrite, table, key, m.vc.WriteVer)
	return err
}

// Insert implements db.DB.
func (m *capture) Insert(ctx context.Context, table, key string, values db.Record) error {
	rec, auto := m.open()
	err := m.inner.Insert(m.armed(ctx), table, key, values)
	m.note(rec, auto, err, OpWrite, table, key, m.vc.WriteVer)
	return err
}

// Delete implements db.DB.
func (m *capture) Delete(ctx context.Context, table, key string) error {
	rec, auto := m.open()
	err := m.inner.Delete(m.armed(ctx), table, key)
	m.note(rec, auto, err, OpDelete, table, key, m.vc.WriteVer)
	return err
}

// Start implements db.TransactionalDB: a successful start opens the
// record the following operations land in.
func (m *capture) Start(ctx context.Context) (*db.TransactionContext, error) {
	tctx, err := m.tdb.Start(ctx)
	if err == nil {
		m.cur = m.begin()
	}
	return tctx, err
}

// Commit implements db.TransactionalDB.
func (m *capture) Commit(ctx context.Context, tctx *db.TransactionContext) error {
	err := m.tdb.Commit(ctx, tctx)
	m.finish(m.cur, err == nil)
	m.cur = nil
	return err
}

// Abort implements db.TransactionalDB.
func (m *capture) Abort(ctx context.Context, tctx *db.TransactionContext) error {
	err := m.tdb.Abort(ctx, tctx)
	m.finish(m.cur, false)
	m.cur = nil
	return err
}

// WithTx implements db.ContextualDB: in-transaction operations on the
// view record into the same open transaction.
func (m *capture) WithTx(tctx *db.TransactionContext) db.DB {
	if cdb, ok := m.inner.(db.ContextualDB); ok {
		return &captureView{m: m, view: cdb.WithTx(tctx)}
	}
	return m
}

var (
	_ db.TransactionalDB = (*capture)(nil)
	_ db.ContextualDB    = (*capture)(nil)
)

// captureView routes in-transaction operations through the inner
// binding's transactional view while recording into the shared
// capture state (same thread, by the middleware contract).
type captureView struct {
	m    *capture
	view db.DB
}

// Init implements db.DB; the view inherits the binding's state.
func (v *captureView) Init(*properties.Properties) error { return nil }

// Cleanup implements db.DB; the view owns no resources.
func (v *captureView) Cleanup() error { return nil }

// Read implements db.DB inside the transaction.
func (v *captureView) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	rec, auto := v.m.open()
	out, err := v.view.Read(v.m.armed(ctx), table, key, fields)
	v.m.note(rec, auto, err, OpRead, table, key, v.m.vc.ReadVer)
	return out, err
}

// Scan implements db.DB inside the transaction (uncaptured).
func (v *captureView) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	return v.view.Scan(ctx, table, startKey, count, fields)
}

// Update implements db.DB inside the transaction.
func (v *captureView) Update(ctx context.Context, table, key string, values db.Record) error {
	rec, auto := v.m.open()
	err := v.view.Update(v.m.armed(ctx), table, key, values)
	v.m.note(rec, auto, err, OpWrite, table, key, v.m.vc.WriteVer)
	return err
}

// Insert implements db.DB inside the transaction.
func (v *captureView) Insert(ctx context.Context, table, key string, values db.Record) error {
	rec, auto := v.m.open()
	err := v.view.Insert(v.m.armed(ctx), table, key, values)
	v.m.note(rec, auto, err, OpWrite, table, key, v.m.vc.WriteVer)
	return err
}

// Delete implements db.DB inside the transaction.
func (v *captureView) Delete(ctx context.Context, table, key string) error {
	rec, auto := v.m.open()
	err := v.view.Delete(v.m.armed(ctx), table, key)
	v.m.note(rec, auto, err, OpDelete, table, key, v.m.vc.WriteVer)
	return err
}
