package history

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ycsbt/internal/obs"
	"ycsbt/internal/trace"
)

func TestSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.ndjson")
	reg := obs.NewRegistry()
	sink, err := OpenFile(path, SinkOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	in := []*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit,
			Op{Kind: OpWrite, Store: "s1", Table: "u", Key: "x", Ver: 2},
			Op{Kind: OpRead, Store: "s1", Table: "u", Key: "x", Ver: 1}),
		mkTxn("t2", 2, 0, OutcomeAbort, rd("y", 1)),
	}
	for _, r := range in {
		sink.RecordTxn(r)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	events, dropped := sink.Stats()
	if events != 2 || dropped != 0 {
		t.Fatalf("stats = %d events, %d dropped", events, dropped)
	}

	out, stats, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != 3 || stats.TruncatedTail {
		t.Fatalf("stats = %+v", stats)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records", len(out))
	}
	// The writer sorts ops (reads first, then by store/table/key).
	want := []Op{
		{Kind: OpRead, Store: "s1", Table: "u", Key: "x", Ver: 1},
		{Kind: OpWrite, Store: "s1", Table: "u", Key: "x", Ver: 2},
	}
	if !reflect.DeepEqual(out[0].Ops, want) {
		t.Fatalf("t1 ops = %+v", out[0].Ops)
	}
	if out[0].ID != "t1" || out[0].StartTS != 1 || out[0].CommitTS != 10 || !out[0].Committed() {
		t.Fatalf("t1 = %+v", out[0])
	}
	if out[1].ID != "t2" || out[1].Committed() {
		t.Fatalf("t2 = %+v", out[1])
	}
}

func TestSinkDropsAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.ndjson")
	sink, err := OpenFile(path, SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.RecordTxn(mkTxn("late", 1, 2, OutcomeCommit, rd("x", 1)))
	if err := sink.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if events, dropped := sink.Stats(); events != 0 || dropped != 1 {
		t.Fatalf("stats = %d events, %d dropped", events, dropped)
	}
}

// A streaming trace.Recorder spills access batches into the sink and
// retains nothing; the decoder groups them back into per-transaction
// records.
func TestSinkSpilledAccesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.ndjson")
	sink, err := OpenFile(path, SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewStreamingRecorder(sink, 2)
	rec.Read("txA", "u/x", 1)
	rec.Write("txA", "u/x", 2)
	rec.Read("txB", "u/x", 2)
	rec.Flush()
	if got := len(rec.Accesses()); got != 0 {
		t.Fatalf("recorder retained %d accesses after flush", got)
	}
	if rec.Len() != 3 {
		t.Fatalf("recorder Len = %d", rec.Len())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AccessTxns != 2 || len(recs) != 2 {
		t.Fatalf("stats = %+v, %d records", stats, len(recs))
	}
	res := Check(recs)
	if !res.Serializable {
		t.Fatalf("want serializable, got %+v", res)
	}
	if res.SI != SINotEvaluated {
		t.Fatalf("SI = %s (access lines carry no timestamps)", res.SI)
	}
}

func TestDecodeTruncatedTail(t *testing.T) {
	full := `{"t":"h","version":1}
{"t":"x","id":"t1","sess":0,"start":1,"commit":10,"out":"c","ops":[{"op":"w","key":"x","ver":2}]}
{"t":"x","id":"t2","sess":0,"start":2,"comm`
	recs, stats, err := Decode(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TruncatedTail || stats.Lines != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(recs) != 1 || recs[0].ID != "t1" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"mid-file garbage", "{\"t\":\"h\",\"version\":1}\nnot json\n{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n", "line 2"},
		{"bad version", "{\"t\":\"h\",\"version\":99}\n", "unsupported format version"},
		{"duplicate id", "{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n", "duplicate transaction id"},
		{"dup across kinds", "{\"t\":\"a\",\"txn\":\"t1\",\"key\":\"x\",\"ver\":1}\n{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\nx\n", "duplicate transaction id"},
		{"bad outcome", "{\"t\":\"x\",\"id\":\"t1\",\"out\":\"?\"}\nx\n", "unknown outcome"},
		{"bad op kind", "{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\",\"ops\":[{\"op\":\"z\"}]}\nx\n", "unknown op kind"},
		{"missing id", "{\"t\":\"x\",\"out\":\"c\"}\nx\n", "without id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDecodeEmptyFile(t *testing.T) {
	recs, stats, err := Decode(strings.NewReader(""))
	if err != nil || len(recs) != 0 || stats.Lines != 0 {
		t.Fatalf("recs=%v stats=%+v err=%v", recs, stats, err)
	}
}

func TestOpenFileError(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "no", "such", "dir", "h"), SinkOptions{}); err == nil {
		t.Fatal("want error for unreachable path")
	}
	if _, err := os.Stat("/"); err != nil {
		t.Fatal(err)
	}
}
