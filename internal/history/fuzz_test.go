package history

import (
	"strings"
	"testing"
)

// FuzzHistoryDecoder feeds hostile NDJSON to the history decoder: it
// must never panic, and whatever it accepts must survive Check and
// Summary without panicking either.
func FuzzHistoryDecoder(f *testing.F) {
	f.Add("{\"t\":\"h\",\"version\":1}\n" +
		"{\"t\":\"x\",\"id\":\"t1\",\"sess\":0,\"start\":1,\"commit\":10,\"out\":\"c\",\"ops\":[{\"op\":\"r\",\"tab\":\"u\",\"key\":\"x\",\"ver\":1},{\"op\":\"w\",\"tab\":\"u\",\"key\":\"x\",\"ver\":2}]}\n" +
		"{\"t\":\"x\",\"id\":\"t2\",\"sess\":1,\"start\":2,\"commit\":12,\"out\":\"a\",\"ops\":[{\"op\":\"d\",\"tab\":\"u\",\"key\":\"y\",\"ver\":3}]}\n" +
		"{\"t\":\"a\",\"txn\":\"t3\",\"key\":\"u/x\",\"ver\":2}\n")
	// Truncated tail.
	f.Add("{\"t\":\"h\",\"version\":1}\n{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n{\"t\":\"x\",\"id\":\"t2\",\"sta")
	// Duplicate ids, both within "x" lines and across line kinds.
	f.Add("{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n")
	f.Add("{\"t\":\"a\",\"txn\":\"t1\",\"key\":\"x\",\"ver\":1,\"w\":true}\n{\"t\":\"x\",\"id\":\"t1\",\"out\":\"c\"}\n")
	// Hostile field values.
	f.Add("{\"t\":\"x\",\"id\":\"\\u0000\\n\",\"out\":\"c\",\"ops\":[{\"op\":\"w\",\"key\":\"\",\"ver\":18446744073709551615}]}\n")
	f.Add("{\"t\":\"h\",\"version\":-1}\n")
	f.Add("{\"t\":\"zz\"}\nnull\n[]\n7\n\"str\"\n")
	f.Add(strings.Repeat("x", 200) + "\n")

	f.Fuzz(func(t *testing.T, data string) {
		recs, stats, err := Decode(strings.NewReader(data))
		if err != nil {
			return
		}
		if stats == nil {
			t.Fatal("nil stats without error")
		}
		res := Check(recs)
		if res.Txns != len(recs) {
			t.Fatalf("Txns = %d, decoded %d", res.Txns, len(recs))
		}
		_ = res.Summary()
	})
}
