package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// maxLineBytes bounds one NDJSON line; longer lines are a decode
// error, not an allocation amplifier.
const maxLineBytes = 1 << 20

// DecodeStats reports what the decoder tolerated.
type DecodeStats struct {
	// Lines is the number of non-empty lines consumed.
	Lines int
	// AccessTxns is how many transactions were synthesized from bare
	// "a" (spilled trace access) lines.
	AccessTxns int
	// TruncatedTail is true when the final line was malformed or
	// unterminated and was skipped — the expected shape of a file cut
	// short by a crash mid-write.
	TruncatedTail bool
}

// Decode reads an NDJSON history stream. Malformed content anywhere
// but the final line is an error; a malformed or unterminated final
// line is tolerated (crashed runs truncate mid-line) and reported in
// the stats. Bare access lines ("a", spilled by a streaming
// trace.Recorder) are grouped by transaction id into synthesized
// committed records without timestamps.
func Decode(r io.Reader) ([]*TxnRecord, *DecodeStats, error) {
	stats := &DecodeStats{}
	var recs []*TxnRecord
	seen := map[string]bool{}            // ids of "x" records
	accessRecs := map[string]*TxnRecord{} // synthesized from "a" lines
	var accessOrder []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	type pending struct {
		line []byte
		n    int
	}
	var prev *pending // one-line lookahead so only the true tail is forgiven

	process := func(p *pending, last bool) error {
		line := bytes.TrimSpace(p.line)
		if len(line) == 0 {
			return nil
		}
		stats.Lines++
		var probe struct {
			T string `json:"t"`
		}
		fail := func(format string, args ...any) error {
			if last {
				stats.TruncatedTail = true
				stats.Lines--
				return nil
			}
			return fmt.Errorf("history: line %d: %s", p.n, fmt.Sprintf(format, args...))
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fail("%v", err)
		}
		switch probe.T {
		case "h":
			var h headerLine
			if err := json.Unmarshal(line, &h); err != nil {
				return fail("%v", err)
			}
			if h.Version != FormatVersion {
				return fmt.Errorf("history: line %d: unsupported format version %d (want %d)", p.n, h.Version, FormatVersion)
			}
		case "x":
			var x txnLine
			if err := json.Unmarshal(line, &x); err != nil {
				return fail("%v", err)
			}
			rec := x.TxnRecord
			if rec.ID == "" {
				return fail("transaction record without id")
			}
			if rec.Outcome != OutcomeCommit && rec.Outcome != OutcomeAbort {
				return fail("transaction %s: unknown outcome %q", rec.ID, rec.Outcome)
			}
			for _, op := range rec.Ops {
				if op.Kind != OpRead && op.Kind != OpWrite && op.Kind != OpDelete {
					return fail("transaction %s: unknown op kind %q", rec.ID, op.Kind)
				}
			}
			if seen[rec.ID] || accessRecs[rec.ID] != nil {
				return fmt.Errorf("history: line %d: duplicate transaction id %q", p.n, rec.ID)
			}
			seen[rec.ID] = true
			recs = append(recs, &rec)
		case "a":
			var a accessLine
			if err := json.Unmarshal(line, &a); err != nil {
				return fail("%v", err)
			}
			if a.Txn == "" {
				return fail("access line without txn id")
			}
			if seen[a.Txn] {
				return fmt.Errorf("history: line %d: duplicate transaction id %q", p.n, a.Txn)
			}
			rec := accessRecs[a.Txn]
			if rec == nil {
				rec = &TxnRecord{ID: a.Txn, Session: -1, Outcome: OutcomeCommit}
				accessRecs[a.Txn] = rec
				accessOrder = append(accessOrder, a.Txn)
			}
			kind := OpRead
			if a.Write {
				kind = OpWrite
			}
			rec.Ops = append(rec.Ops, Op{Kind: kind, Key: a.Key, Ver: a.Ver})
		default:
			return fail("unknown line type %q", probe.T)
		}
		return nil
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		cur := &pending{line: append([]byte(nil), sc.Bytes()...), n: lineNo}
		if prev != nil {
			if err := process(prev, false); err != nil {
				return nil, nil, err
			}
		}
		prev = cur
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("history: %w", err)
	}
	if prev != nil {
		if err := process(prev, true); err != nil {
			return nil, nil, err
		}
	}

	stats.AccessTxns = len(accessOrder)
	sort.Strings(accessOrder)
	for _, id := range accessOrder {
		recs = append(recs, accessRecs[id])
	}
	return recs, stats, nil
}

// LoadFile decodes the history file at path.
func LoadFile(path string) ([]*TxnRecord, *DecodeStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
