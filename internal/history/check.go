package history

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeType classifies a DSG dependency edge.
type EdgeType string

// DSG edge types. Note the lexical order RW < WR < WW: witness
// extraction prefers the lexically smallest type, so anti-dependency
// edges — the interesting ones in SI anomalies — are named first.
const (
	EdgeWR EdgeType = "WR" // read-from: writer of v → reader of v
	EdgeWW EdgeType = "WW" // install order: writer of v → writer of next version
	EdgeRW EdgeType = "RW" // anti-dependency: reader of v → writer of next version
)

// Edge is one DSG dependency with its provenance.
type Edge struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Type EdgeType `json:"type"`
	Key  string   `json:"key"`
}

// Cycle is one serializability violation: an ordered witness. Edges[i]
// leads from Txns[i] to Txns[(i+1) % len(Txns)].
type Cycle struct {
	Nodes []string `json:"txns"`
	Edges []Edge   `json:"edges"`
	// SIPermitted reports whether the cycle has two consecutive RW
	// edges somewhere — by Fekete et al., every cycle snapshot
	// isolation can produce has that shape (write skew). A cycle
	// without it refutes SI regardless of timestamps.
	SIPermitted bool `json:"si_permitted"`
}

// DirtyRead is a committed transaction observing a version installed
// by an aborted one.
type DirtyRead struct {
	Reader string `json:"reader"`
	Writer string `json:"writer"`
	Key    string `json:"key"`
	Ver    uint64 `json:"ver"`
}

// SIViolation is one reason snapshot isolation does not hold.
type SIViolation struct {
	Txn string `json:"txn"`
	// Kind is "no-consistent-snapshot", "first-committer-wins",
	// "install-order" or "fekete-cycle".
	Kind   string `json:"kind"`
	Key    string `json:"key,omitempty"`
	Detail string `json:"detail"`
}

// SI verdict values.
const (
	SICertified    = "certified"
	SIRefuted      = "refuted"
	SINotEvaluated = "not-evaluated" // history lacks start/commit timestamps
)

// Result is a certification verdict over one history.
type Result struct {
	Txns      int `json:"txns"`
	Committed int `json:"committed"`
	Aborted   int `json:"aborted"`
	Ops       int `json:"ops"`
	// UnversionedOps counts ops whose binding reported no version;
	// they carry no dependency information and are excluded from the
	// graph (scans and non-MVCC bindings produce these).
	UnversionedOps int `json:"unversioned_ops"`
	// DuplicateInstalls counts (key, version) pairs claimed by more
	// than one committed writer — a capture artifact (e.g. merged
	// histories); the lexically first writer is kept.
	DuplicateInstalls int              `json:"duplicate_installs,omitempty"`
	EdgeCount         map[EdgeType]int `json:"edge_count"`

	Serializable bool        `json:"serializable"`
	Cycles       []Cycle     `json:"cycles,omitempty"`
	DirtyReads   []DirtyRead `json:"dirty_reads,omitempty"`

	// SI is SICertified, SIRefuted or SINotEvaluated.
	SI           string        `json:"si"`
	SIViolations []SIViolation `json:"si_violations,omitempty"`
}

// install is one committed version of a key.
type install struct {
	ver      uint64
	txn      string
	commitTS int64
}

// Check certifies or refutes serializability and snapshot isolation
// over a decoded history.
//
// Serializability: the DSG over committed transactions (WR / WW / RW
// edges across commit-ordered MVCC versions, generalizing
// trace.CheckAccesses) must be acyclic and no committed transaction
// may have read an aborted write. Each strongly connected component
// yields a named witness cycle.
//
// Snapshot isolation, when the history carries start/commit
// timestamps: each committed transaction must admit a snapshot point
// s ≤ commit consistent with every read — at or after the commit of
// each version it observed, before the commit of the next installed
// version of each key it read — and at or after the commit of any
// earlier committed writer of a key it wrote (first-committer-wins).
// An empty interval names the two operations that collide. The
// snapshot point is not required to follow the transaction's begin:
// this is generalized SI (Elnikety et al.), the honest claim for a
// client-coordinated store whose read-around path can serve the
// pre-commit image for a moment after a writer's commit point —
// anchoring snapshots at begin would refute such stale-but-consistent
// reads that plain SI semantics never forbid. Per-key install order
// must agree with commit order, and every cycle must carry the Fekete
// consecutive-RW shape; a cycle without it refutes (G)SI even without
// timestamps.
func Check(recs []*TxnRecord) *Result {
	res := &Result{EdgeCount: map[EdgeType]int{}, SI: SINotEvaluated}

	committed := map[string]*TxnRecord{}
	var order []string // committed ids, input order for determinism
	for _, r := range recs {
		res.Txns++
		res.Ops += len(r.Ops)
		if r.Committed() {
			res.Committed++
			committed[r.ID] = r
			order = append(order, r.ID)
		} else {
			res.Aborted++
		}
	}

	// Index installs (committed) and aborted installs per graph key.
	installs := map[string][]install{}
	abortedInstall := map[string]map[uint64]string{}
	for _, r := range recs {
		for _, op := range r.Ops {
			if op.Kind == OpRead {
				if op.Ver == 0 {
					res.UnversionedOps++
				}
				continue
			}
			if op.Ver == 0 {
				res.UnversionedOps++
				continue
			}
			k := op.GraphKey()
			if r.Committed() {
				installs[k] = append(installs[k], install{ver: op.Ver, txn: r.ID, commitTS: r.CommitTS})
			} else {
				m := abortedInstall[k]
				if m == nil {
					m = map[uint64]string{}
					abortedInstall[k] = m
				}
				m[op.Ver] = r.ID
			}
		}
	}
	for k, ins := range installs {
		sort.Slice(ins, func(i, j int) bool {
			if ins[i].ver != ins[j].ver {
				return ins[i].ver < ins[j].ver
			}
			return ins[i].txn < ins[j].txn
		})
		dedup := ins[:0]
		for _, in := range ins {
			if len(dedup) > 0 && dedup[len(dedup)-1].ver == in.ver {
				res.DuplicateInstalls++
				continue
			}
			dedup = append(dedup, in)
		}
		installs[k] = dedup
	}

	// writerOf resolves (key, version) to its committed installer.
	writerOf := func(k string, v uint64) (install, bool) {
		ins := installs[k]
		i := sort.Search(len(ins), func(i int) bool { return ins[i].ver >= v })
		if i < len(ins) && ins[i].ver == v {
			return ins[i], true
		}
		return install{}, false
	}
	// nextInstall returns the smallest committed install with version
	// greater than v on k, excluding self.
	nextInstall := func(k string, v uint64, self string) (install, bool) {
		ins := installs[k]
		i := sort.Search(len(ins), func(i int) bool { return ins[i].ver > v })
		for ; i < len(ins); i++ {
			if ins[i].txn != self {
				return ins[i], true
			}
		}
		return install{}, false
	}

	// Build the edge set (deduplicated) and adjacency.
	edgeSeen := map[Edge]bool{}
	adj := map[string][]Edge{}
	addEdge := func(e Edge) {
		if e.From == e.To || e.From == "" || e.To == "" || edgeSeen[e] {
			return
		}
		edgeSeen[e] = true
		res.EdgeCount[e.Type]++
		adj[e.From] = append(adj[e.From], e)
	}

	for _, id := range order {
		r := committed[id]
		for _, op := range r.Ops {
			if op.Ver == 0 {
				continue
			}
			k := op.GraphKey()
			switch op.Kind {
			case OpRead:
				if w, ok := writerOf(k, op.Ver); ok {
					addEdge(Edge{From: w.txn, To: id, Type: EdgeWR, Key: k})
				} else if m := abortedInstall[k]; m != nil {
					if aw, dirty := m[op.Ver]; dirty {
						res.DirtyReads = append(res.DirtyReads, DirtyRead{Reader: id, Writer: aw, Key: k, Ver: op.Ver})
					}
				}
				if n, ok := nextInstall(k, op.Ver, id); ok {
					addEdge(Edge{From: id, To: n.txn, Type: EdgeRW, Key: k})
				}
			case OpWrite, OpDelete:
				if n, ok := nextInstall(k, op.Ver, ""); ok && n.txn != id {
					addEdge(Edge{From: id, To: n.txn, Type: EdgeWW, Key: k})
				}
			}
		}
	}
	sort.Slice(res.DirtyReads, func(i, j int) bool {
		a, b := res.DirtyReads[i], res.DirtyReads[j]
		if a.Reader != b.Reader {
			return a.Reader < b.Reader
		}
		return a.Key < b.Key
	})
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool {
			a, b := es[i], es[j]
			if a.To != b.To {
				return a.To < b.To
			}
			if a.Type != b.Type {
				return a.Type < b.Type
			}
			return a.Key < b.Key
		})
	}

	// SCCs over committed transactions; each multi-node component is
	// reduced to its shortest witness cycle through the lexically
	// smallest member.
	for _, comp := range sccs(order, adj) {
		if len(comp) > 1 {
			res.Cycles = append(res.Cycles, witnessCycle(comp, adj))
		}
	}
	sort.Slice(res.Cycles, func(i, j int) bool {
		return res.Cycles[i].Nodes[0] < res.Cycles[j].Nodes[0]
	})
	res.Serializable = len(res.Cycles) == 0 && len(res.DirtyReads) == 0

	res.checkSI(committed, order, installs)
	return res
}

// witnessCycle extracts the shortest cycle through the smallest node
// of a strongly connected component, with concrete edges named.
func witnessCycle(comp []string, adj map[string][]Edge) Cycle {
	in := map[string]bool{}
	for _, n := range comp {
		in[n] = true
	}
	sort.Strings(comp)
	start := comp[0]

	// BFS from start within the component; parent edges reconstruct
	// the shortest path back to start.
	parent := map[string]Edge{}
	dist := map[string]int{start: 0}
	queue := []string{start}
	var closing Edge
	found := false
	for len(queue) > 0 && !found {
		n := queue[0]
		queue = queue[1:]
		for _, e := range adj[n] {
			if !in[e.To] {
				continue
			}
			if e.To == start {
				closing = e
				found = true
				break
			}
			if _, seen := dist[e.To]; !seen {
				dist[e.To] = dist[n] + 1
				parent[e.To] = e
				queue = append(queue, e.To)
			}
		}
	}

	var edges []Edge
	edges = append(edges, closing)
	for n := closing.From; n != start; {
		e := parent[n]
		edges = append(edges, e)
		n = e.From
	}
	// Reverse into start → … → start order.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	c := Cycle{Edges: edges}
	for _, e := range edges {
		c.Nodes = append(c.Nodes, e.From)
	}
	n := len(edges)
	for i := 0; i < n; i++ {
		if edges[i].Type == EdgeRW && edges[(i+1)%n].Type == EdgeRW {
			c.SIPermitted = true
			break
		}
	}
	return c
}

// checkSI runs the snapshot-isolation certification.
func (res *Result) checkSI(committed map[string]*TxnRecord, order []string, installs map[string][]install) {
	addViolation := func(v SIViolation) { res.SIViolations = append(res.SIViolations, v) }

	// Structural refutation is timestamp-free: a cycle without two
	// consecutive RW edges cannot occur under SI (Fekete et al.).
	for _, c := range res.Cycles {
		if !c.SIPermitted {
			addViolation(SIViolation{
				Txn:    c.Nodes[0],
				Kind:   "fekete-cycle",
				Detail: fmt.Sprintf("cycle %s has no consecutive RW pair; SI cannot produce it", strings.Join(c.Nodes, " -> ")),
			})
		}
	}

	hasTS := len(order) > 0
	for _, id := range order {
		r := committed[id]
		if r.StartTS == 0 || r.CommitTS == 0 {
			hasTS = false
			break
		}
	}

	if hasTS {
		// Per-key install order must agree with commit order: under SI
		// (first-committer-wins) writers of a key are never concurrent
		// and install in commit order.
		keys := make([]string, 0, len(installs))
		for k := range installs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ins := installs[k]
			for i := 1; i < len(ins); i++ {
				if ins[i].commitTS < ins[i-1].commitTS {
					addViolation(SIViolation{
						Txn:  ins[i].txn,
						Kind: "install-order",
						Key:  k,
						Detail: fmt.Sprintf("%s installed %s@v%d (commit %d) after %s installed v%d (commit %d): version order contradicts commit order",
							ins[i].txn, k, ins[i].ver, ins[i].commitTS, ins[i-1].txn, ins[i-1].ver, ins[i-1].commitTS),
					})
				}
			}
		}

		// Interval feasibility: find a snapshot point for each txn.
		writersOf := map[string][]install{} // key → committed writers by commitTS
		for k, ins := range installs {
			ws := append([]install(nil), ins...)
			sort.Slice(ws, func(i, j int) bool { return ws[i].commitTS < ws[j].commitTS })
			writersOf[k] = ws
		}
		for _, id := range order {
			r := committed[id]
			// Generalized SI: the snapshot may precede begin, so the
			// interval starts unbounded below (0 — timestamps are
			// positive) and only reads/FCW raise it.
			lo, hi := int64(0), r.CommitTS
			loWhy := "any snapshot"
			hiWhy := "commit"
			kind := "no-consistent-snapshot"
			for _, op := range r.Ops {
				if op.Ver == 0 {
					continue
				}
				k := op.GraphKey()
				switch op.Kind {
				case OpRead:
					ins := installs[k]
					i := sort.Search(len(ins), func(i int) bool { return ins[i].ver >= op.Ver })
					if i < len(ins) && ins[i].ver == op.Ver && ins[i].txn != id {
						if c := ins[i].commitTS; c > lo {
							lo, loWhy = c, fmt.Sprintf("read %s@v%d written by %s (commit %d)", k, op.Ver, ins[i].txn, c)
							kind = "no-consistent-snapshot"
						}
					}
					for j := sort.Search(len(ins), func(i int) bool { return ins[i].ver > op.Ver }); j < len(ins); j++ {
						if ins[j].txn == id {
							continue
						}
						if c := ins[j].commitTS; c-1 < hi {
							hi, hiWhy = c-1, fmt.Sprintf("read %s@v%d while %s installed v%d (commit %d)", k, op.Ver, ins[j].txn, ins[j].ver, c)
						}
						break
					}
				case OpWrite, OpDelete:
					// First-committer-wins: every earlier-committed
					// writer of k must precede this txn's snapshot.
					for _, w := range writersOf[k] {
						if w.commitTS >= r.CommitTS || w.txn == id {
							continue
						}
						if w.commitTS > lo {
							lo, loWhy = w.commitTS, fmt.Sprintf("both wrote %s; %s committed first (commit %d)", k, w.txn, w.commitTS)
							kind = "first-committer-wins"
						}
					}
				}
			}
			if lo > hi {
				addViolation(SIViolation{
					Txn:    id,
					Kind:   kind,
					Detail: fmt.Sprintf("%s admits no snapshot point: needs ≥ %d (%s) but ≤ %d (%s)", id, lo, loWhy, hi, hiWhy),
				})
			}
		}
	}

	switch {
	case len(res.SIViolations) > 0 || len(res.DirtyReads) > 0:
		res.SI = SIRefuted
	case hasTS:
		res.SI = SICertified
	default:
		res.SI = SINotEvaluated
	}
}
