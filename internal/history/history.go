// Package history implements durable per-run operation histories and
// offline consistency certification — the richer alternative to the
// paper's single anomaly score γ. γ only catches violations that
// disturb the CEW invariant; anomalies that cancel out in the sum
// (write skew being the canonical case) are invisible to it. Biswas &
// Enea ("On the Complexity of Checking Transactional Consistency")
// and Coo ("Consistency Check for Transactional Databases") point at
// the stronger approach this package takes: record the complete
// operation history of a run — every transaction's reads and writes
// with the MVCC versions they observed and installed, plus start and
// commit timestamps — then certify or refute isolation levels offline
// and name the violating cycle.
//
// The subsystem has three parts:
//
//   - Capture (sink.go, middleware.go): a streaming NDJSON sink with
//     bounded memory, fed either by txn.Manager commit paths (the
//     txnkv binding, including the cluster backend) or by the history
//     middleware for non-transactional bindings.
//   - Decode (decode.go): the crash-tolerant NDJSON reader.
//   - Check (check.go): the certifier — DSG construction over
//     commit-timestamp-ordered MVCC versions, serializability via
//     cycle detection with witness extraction, snapshot isolation via
//     snapshot-interval feasibility plus first-committer-wins.
package history

import (
	"strings"
	"sync/atomic"
	"time"
)

// Transaction outcomes.
const (
	OutcomeCommit = "c"
	OutcomeAbort  = "a"
)

// Op kinds.
const (
	OpRead   = "r"
	OpWrite  = "w"
	OpDelete = "d"
)

// Op is one operation of a recorded transaction.
type Op struct {
	// Kind is OpRead, OpWrite or OpDelete.
	Kind string `json:"op"`
	// Store is the store name ("" for single-store bindings).
	Store string `json:"st,omitempty"`
	// Table is the target table.
	Table string `json:"tab,omitempty"`
	// Key is the target key.
	Key string `json:"key"`
	// Ver is the record version read (OpRead) or installed (OpWrite /
	// OpDelete); 0 means the binding did not report one.
	Ver uint64 `json:"ver,omitempty"`
}

// GraphKey is the composite identity an Op's record has in the
// dependency graph: the non-empty (store, table, key) components
// joined with "/". It matches the key format txn's Tracer emits.
func (o Op) GraphKey() string {
	parts := make([]string, 0, 3)
	if o.Store != "" {
		parts = append(parts, o.Store)
	}
	if o.Table != "" {
		parts = append(parts, o.Table)
	}
	parts = append(parts, o.Key)
	return strings.Join(parts, "/")
}

// TxnRecord is one finished transaction: identity, session, outcome,
// timestamps and the versioned operations it performed.
type TxnRecord struct {
	// ID uniquely identifies the transaction within the run.
	ID string `json:"id"`
	// Session is the client thread that drove the transaction
	// (-1 = unknown).
	Session int `json:"sess"`
	// StartTS is the transaction's begin timestamp (0 = unknown).
	StartTS int64 `json:"start,omitempty"`
	// CommitTS is the commit timestamp (0 = unknown or aborted).
	CommitTS int64 `json:"commit,omitempty"`
	// Outcome is OutcomeCommit or OutcomeAbort.
	Outcome string `json:"out"`
	// Ops are the recorded operations.
	Ops []Op `json:"ops"`
}

// Committed reports whether the transaction committed.
func (r *TxnRecord) Committed() bool { return r.Outcome == OutcomeCommit }

// TxnSink receives finished transactions. Implementations must be
// safe for concurrent use; *Sink is the durable one, MemorySink the
// in-process one for tests.
type TxnSink interface {
	RecordTxn(*TxnRecord)
}

// CapableDB is implemented by bindings that feed a history sink
// natively from their own transaction machinery (the txnkv binding
// forwards to txn.Manager). The client prefers this over stacking the
// capture middleware, so transactions are never recorded twice.
type CapableDB interface {
	// SetHistorySink installs the sink; call it before the first
	// transaction begins.
	SetHistorySink(TxnSink)
}

// clock is a minimal hybrid logical clock for the capture middleware:
// strictly increasing nanosecond timestamps even under bursts. (A
// copy of txn.HLC — txn imports this package, so it cannot be
// imported back.)
type clock struct {
	last atomic.Int64
}

func (c *clock) now() int64 {
	for {
		phys := time.Now().UnixNano()
		last := c.last.Load()
		next := phys
		if next <= last {
			next = last + 1
		}
		if c.last.CompareAndSwap(last, next) {
			return next
		}
	}
}
