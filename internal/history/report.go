package history

import (
	"fmt"
	"sort"
	"strings"
)

// sccs computes strongly connected components over the committed
// transactions, iteratively (Tarjan), with sorted traversal for
// deterministic output.
func sccs(nodes []string, adj map[string][]Edge) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	counter := 0

	successors := func(n string) []string {
		seen := map[string]bool{}
		out := make([]string, 0, len(adj[n]))
		for _, e := range adj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				out = append(out, e.To)
			}
		}
		sort.Strings(out)
		return out
	}

	order := append([]string(nil), nodes...)
	sort.Strings(order)

	type frame struct {
		node string
		succ []string
		i    int
	}
	for _, root := range order {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root, succ: successors(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				next := f.succ[f.i]
				f.i++
				if _, seen := index[next]; !seen {
					index[next] = counter
					low[next] = counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					frames = append(frames, frame{node: next, succ: successors(next)})
				} else if onStack[next] && index[next] < low[f.node] {
					low[f.node] = index[next]
				}
				continue
			}
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Summary renders the human-readable certification report — the text
// cmd/histcheck prints. Witness cycles name their transactions, edge
// types and keys in order.
func (res *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "history: %d txns (%d committed, %d aborted), %d ops (%d unversioned), edges: WR %d, WW %d, RW %d\n",
		res.Txns, res.Committed, res.Aborted, res.Ops, res.UnversionedOps,
		res.EdgeCount[EdgeWR], res.EdgeCount[EdgeWW], res.EdgeCount[EdgeRW])
	if res.DuplicateInstalls > 0 {
		fmt.Fprintf(&b, "warning: %d duplicate installs (merged or re-captured history?)\n", res.DuplicateInstalls)
	}

	if res.Serializable {
		b.WriteString("certified: serializable\n")
	} else {
		b.WriteString("refuted: serializable\n")
		for _, dr := range res.DirtyReads {
			fmt.Fprintf(&b, "dirty read: %s read %s@v%d installed by aborted %s\n", dr.Reader, dr.Key, dr.Ver, dr.Writer)
		}
		for i, c := range res.Cycles {
			shape := "SI-forbidden shape (no consecutive RW pair)"
			if c.SIPermitted {
				shape = "SI-permitted shape (consecutive RW anti-dependencies: write skew)"
			}
			fmt.Fprintf(&b, "cycle %d: %d txns, %s\n", i+1, len(c.Nodes), shape)
			for _, e := range c.Edges {
				fmt.Fprintf(&b, "  %s --%s[%s]--> %s\n", e.From, e.Type, e.Key, e.To)
			}
		}
	}

	switch res.SI {
	case SICertified:
		b.WriteString("certified: snapshot-isolation\n")
	case SIRefuted:
		b.WriteString("refuted: snapshot-isolation\n")
		for _, v := range res.SIViolations {
			fmt.Fprintf(&b, "si violation (%s): %s\n", v.Kind, v.Detail)
		}
	default:
		b.WriteString("snapshot-isolation: not evaluated (history lacks start/commit timestamps)\n")
	}
	return b.String()
}
