package history

import (
	"strings"
	"testing"
)

// Catalogue helpers: hand-built histories over table "u". Version 1 of
// every key is the initial state (no writer in the history).

func rd(key string, ver uint64) Op { return Op{Kind: OpRead, Table: "u", Key: key, Ver: ver} }
func wr(key string, ver uint64) Op { return Op{Kind: OpWrite, Table: "u", Key: key, Ver: ver} }

func mkTxn(id string, start, commit int64, outcome string, ops ...Op) *TxnRecord {
	return &TxnRecord{ID: id, Session: 0, StartTS: start, CommitTS: commit, Outcome: outcome, Ops: ops}
}

func wantEdge(t *testing.T, e Edge, from, to string, typ EdgeType, key string) {
	t.Helper()
	if e.From != from || e.To != to || e.Type != typ || e.Key != key {
		t.Fatalf("edge = %s --%s[%s]--> %s, want %s --%s[%s]--> %s",
			e.From, e.Type, e.Key, e.To, from, typ, key, to)
	}
}

func TestCheckSerializableHistory(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit, rd("x", 1), wr("x", 2)),
		mkTxn("t2", 11, 12, OutcomeCommit, rd("x", 2), wr("x", 4)),
	})
	if !res.Serializable {
		t.Fatalf("want serializable, got %+v", res)
	}
	if res.SI != SICertified {
		t.Fatalf("SI = %s, want certified: %+v", res.SI, res.SIViolations)
	}
	// t1 read x@1 and t2 installed x@4 later (t1's own install is
	// skipped), so a forward RW edge t1→t2 joins the WR and WW edges.
	if res.EdgeCount[EdgeWR] != 1 || res.EdgeCount[EdgeWW] != 1 || res.EdgeCount[EdgeRW] != 1 {
		t.Fatalf("edge counts = %v", res.EdgeCount)
	}
	s := res.Summary()
	for _, want := range []string{"certified: serializable", "certified: snapshot-isolation"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// Dirty read: tb observes a version installed by the aborted ta.
func TestCheckDirtyRead(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("ta", 1, 0, OutcomeAbort, wr("x", 2)),
		mkTxn("tb", 2, 5, OutcomeCommit, rd("x", 2)),
	})
	if res.Serializable {
		t.Fatal("dirty read certified serializable")
	}
	if len(res.DirtyReads) != 1 {
		t.Fatalf("dirty reads = %+v", res.DirtyReads)
	}
	d := res.DirtyReads[0]
	if d.Reader != "tb" || d.Writer != "ta" || d.Key != "u/x" || d.Ver != 2 {
		t.Fatalf("dirty read witness = %+v", d)
	}
	if res.SI != SIRefuted {
		t.Fatalf("SI = %s, want refuted", res.SI)
	}
	if !strings.Contains(res.Summary(), "dirty read") {
		t.Fatalf("summary missing dirty read:\n%s", res.Summary())
	}
}

// Lost update: t1 and t2 both read x@1 and write x; the serialization
// cycle is RW–RW (SI-permitted shape) but first-committer-wins refutes
// snapshot isolation.
func TestCheckLostUpdate(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit, rd("x", 1), wr("x", 2)),
		mkTxn("t2", 2, 12, OutcomeCommit, rd("x", 1), wr("x", 3)),
	})
	if res.Serializable || len(res.Cycles) != 1 {
		t.Fatalf("want one cycle, got %+v", res)
	}
	c := res.Cycles[0]
	if len(c.Nodes) != 2 || c.Nodes[0] != "t1" || c.Nodes[1] != "t2" {
		t.Fatalf("cycle nodes = %v", c.Nodes)
	}
	wantEdge(t, c.Edges[0], "t1", "t2", EdgeRW, "u/x")
	wantEdge(t, c.Edges[1], "t2", "t1", EdgeRW, "u/x")
	if !c.SIPermitted {
		t.Fatal("lost-update cycle should be SI-permitted shape (consecutive RW)")
	}
	if res.SI != SIRefuted {
		t.Fatalf("SI = %s, want refuted", res.SI)
	}
	if len(res.SIViolations) != 1 || res.SIViolations[0].Kind != "first-committer-wins" || res.SIViolations[0].Txn != "t2" {
		t.Fatalf("si violations = %+v", res.SIViolations)
	}
}

// Read skew: t1 reads x before and y after t2's paired update. The
// cycle RW–WR has no consecutive RW pair, so SI is refuted both
// structurally (Fekete) and by interval infeasibility.
func TestCheckReadSkew(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t2", 1, 10, OutcomeCommit, wr("x", 2), wr("y", 2)),
		mkTxn("t1", 2, 12, OutcomeCommit, rd("x", 1), rd("y", 2)),
	})
	if res.Serializable || len(res.Cycles) != 1 {
		t.Fatalf("want one cycle, got %+v", res)
	}
	c := res.Cycles[0]
	wantEdge(t, c.Edges[0], "t1", "t2", EdgeRW, "u/x")
	wantEdge(t, c.Edges[1], "t2", "t1", EdgeWR, "u/y")
	if c.SIPermitted {
		t.Fatal("read-skew cycle must not be SI-permitted (no consecutive RW)")
	}
	if res.SI != SIRefuted {
		t.Fatalf("SI = %s, want refuted", res.SI)
	}
	kinds := map[string]bool{}
	for _, v := range res.SIViolations {
		kinds[v.Kind] = true
	}
	if !kinds["fekete-cycle"] || !kinds["no-consistent-snapshot"] {
		t.Fatalf("si violations = %+v", res.SIViolations)
	}
}

// Write skew: disjoint writes under mutual reads. Serializability is
// refuted with an RW–RW witness; snapshot isolation is certified —
// this is the anomaly SI permits.
func TestCheckWriteSkew(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit, rd("x", 1), rd("y", 1), wr("x", 2)),
		mkTxn("t2", 2, 11, OutcomeCommit, rd("x", 1), rd("y", 1), wr("y", 2)),
	})
	if res.Serializable || len(res.Cycles) != 1 {
		t.Fatalf("want one cycle, got %+v", res)
	}
	c := res.Cycles[0]
	if len(c.Nodes) != 2 {
		t.Fatalf("cycle nodes = %v", c.Nodes)
	}
	wantEdge(t, c.Edges[0], "t1", "t2", EdgeRW, "u/y")
	wantEdge(t, c.Edges[1], "t2", "t1", EdgeRW, "u/x")
	if !c.SIPermitted {
		t.Fatal("write-skew cycle should be SI-permitted")
	}
	if res.SI != SICertified {
		t.Fatalf("SI = %s (violations %+v), want certified", res.SI, res.SIViolations)
	}
	s := res.Summary()
	for _, want := range []string{"refuted: serializable", "write skew", "certified: snapshot-isolation"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// Long fork: two readers observe the two independent writes in
// opposite orders. The 4-cycle alternates WR/RW — impossible under SI.
func TestCheckLongFork(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit, wr("x", 2)),
		mkTxn("t2", 1, 11, OutcomeCommit, wr("y", 2)),
		mkTxn("t3", 3, 20, OutcomeCommit, rd("x", 2), rd("y", 1)),
		mkTxn("t4", 3, 21, OutcomeCommit, rd("x", 1), rd("y", 2)),
	})
	if res.Serializable || len(res.Cycles) != 1 {
		t.Fatalf("want one cycle, got %+v", res)
	}
	c := res.Cycles[0]
	if len(c.Nodes) != 4 {
		t.Fatalf("cycle nodes = %v", c.Nodes)
	}
	if c.SIPermitted {
		t.Fatal("long-fork cycle must not be SI-permitted")
	}
	types := map[EdgeType]int{}
	for _, e := range c.Edges {
		types[e.Type]++
	}
	if types[EdgeWR] != 2 || types[EdgeRW] != 2 {
		t.Fatalf("cycle edges = %+v", c.Edges)
	}
	if res.SI != SIRefuted {
		t.Fatalf("SI = %s, want refuted", res.SI)
	}
}

// A history without timestamps (e.g. synthesized from access lines)
// still gets the serializability verdict but SI is not evaluated.
func TestCheckNoTimestamps(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 0, 0, OutcomeCommit, rd("x", 1), wr("x", 2)),
		mkTxn("t2", 0, 0, OutcomeCommit, rd("x", 2)),
	})
	if !res.Serializable {
		t.Fatalf("want serializable, got %+v", res)
	}
	if res.SI != SINotEvaluated {
		t.Fatalf("SI = %s, want not-evaluated", res.SI)
	}
	if !strings.Contains(res.Summary(), "not evaluated") {
		t.Fatalf("summary:\n%s", res.Summary())
	}
}

// Install order contradicting commit order is flagged even when every
// per-transaction interval is feasible.
func TestCheckInstallOrderViolation(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 20, OutcomeCommit, wr("x", 2)),
		mkTxn("t2", 1, 10, OutcomeCommit, wr("x", 3)),
	})
	if res.SI != SIRefuted {
		t.Fatalf("SI = %s, want refuted: %+v", res.SI, res.SIViolations)
	}
	found := false
	for _, v := range res.SIViolations {
		if v.Kind == "install-order" && v.Key == "u/x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("si violations = %+v", res.SIViolations)
	}
}

// Unversioned ops carry no dependency information and must not poison
// the graph; aborted transactions contribute no edges.
func TestCheckUnversionedAndAborted(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit, rd("x", 0), wr("x", 2)),
		mkTxn("t2", 2, 0, OutcomeAbort, rd("x", 2), wr("y", 9)),
		mkTxn("t3", 3, 12, OutcomeCommit, rd("x", 2)),
	})
	if !res.Serializable {
		t.Fatalf("want serializable, got %+v", res)
	}
	if res.UnversionedOps != 1 {
		t.Fatalf("unversioned = %d", res.UnversionedOps)
	}
	if res.Committed != 2 || res.Aborted != 1 {
		t.Fatalf("committed/aborted = %d/%d", res.Committed, res.Aborted)
	}
	// t2's read of a committed version and its aborted write create no
	// edges and no dirty reads.
	if len(res.DirtyReads) != 0 {
		t.Fatalf("dirty reads = %+v", res.DirtyReads)
	}
}

// Duplicate installs (capture artifacts) are counted and deduplicated
// rather than fabricating WW self-conflicts.
func TestCheckDuplicateInstalls(t *testing.T) {
	res := Check([]*TxnRecord{
		mkTxn("t1", 1, 10, OutcomeCommit, wr("x", 2)),
		mkTxn("t2", 1, 11, OutcomeCommit, wr("x", 2)),
	})
	if res.DuplicateInstalls != 1 {
		t.Fatalf("duplicate installs = %d", res.DuplicateInstalls)
	}
	if !res.Serializable {
		t.Fatalf("want serializable, got %+v", res)
	}
}
