package db

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// batchSpy records every native batch handed to it while answering
// through the plain Memory binding.
type batchSpy struct {
	*Memory
	mu      sync.Mutex
	batches [][]BatchOp
}

func (s *batchSpy) ExecBatch(ctx context.Context, ops []BatchOp) []BatchResult {
	s.mu.Lock()
	s.batches = append(s.batches, append([]BatchOp(nil), ops...))
	s.mu.Unlock()
	out := make([]BatchResult, len(ops))
	for i := range ops {
		out[i] = execOne(ctx, s.Memory, ops[i])
	}
	return out
}

func (s *batchSpy) batchSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for _, b := range s.batches {
		out = append(out, len(b))
	}
	return out
}

// TestExecBatchFallback checks the sequential fallback for plain
// bindings: positional, per-item results.
func TestExecBatchFallback(t *testing.T) {
	ctx := context.Background()
	m := NewMemory()
	if err := m.Insert(ctx, "t", "a", Record{"f": []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	res := ExecBatch(ctx, m, []BatchOp{
		{Op: OpRead, Table: "t", Key: "a"},
		{Op: OpRead, Table: "t", Key: "missing"},
		{Op: OpInsert, Table: "t", Key: "b", Values: Record{"f": []byte("v2")}},
		{Op: OpScan, Table: "t", Key: "a"}, // not batchable
	})
	if res[0].Err != nil || string(res[0].Record["f"]) != "v1" {
		t.Fatalf("item 0: %+v", res[0])
	}
	if !errors.Is(res[1].Err, ErrNotFound) {
		t.Fatalf("item 1: got %v, want ErrNotFound", res[1].Err)
	}
	if res[2].Err != nil {
		t.Fatalf("item 2: %v", res[2].Err)
	}
	if !errors.Is(res[3].Err, ErrNotSupported) {
		t.Fatalf("item 3: got %v, want ErrNotSupported", res[3].Err)
	}
}

// buildBatching constructs the "batching" middleware exactly as the
// client does: per-thread BuildMiddlewares calls sharing one
// MiddlewareState.
func buildBatching(t *testing.T, props map[string]string, shared *MiddlewareState, rec *measurement.Recorder) Middleware {
	t.Helper()
	p := properties.New()
	for k, v := range props {
		p.Set(k, v)
	}
	mws, err := BuildMiddlewares([]string{"batching"}, MiddlewareEnv{
		Props:    p,
		Recorder: rec,
		Shared:   shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mws[0]
}

// TestBatchingCoalescesAcrossThreads drives size concurrent threads
// through the coalescer and checks the binding saw one native batch,
// with every thread getting its own positional answer back.
func TestBatchingCoalescesAcrossThreads(t *testing.T) {
	ctx := context.Background()
	spy := &batchSpy{Memory: NewMemory()}
	for i := 0; i < 4; i++ {
		if err := spy.Insert(ctx, "t", fmt.Sprintf("k%d", i), Record{"f": []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	shared := NewMiddlewareState()
	props := map[string]string{"batch.size": "4", "batch.linger_ms": "1000"}

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		mw := buildBatching(t, props, shared, nil) // per-thread build, shared state
		d := Chain(DB(spy), mw)
		wg.Add(1)
		go func(i int, d DB) {
			defer wg.Done()
			rec, err := d.Read(ctx, "t", fmt.Sprintf("k%d", i), nil)
			if err != nil {
				errs[i] = err
				return
			}
			if got := string(rec["f"]); got != fmt.Sprint(i) {
				errs[i] = fmt.Errorf("thread %d read %q", i, got)
			}
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
	}
	// With linger at 1s and exactly size threads, the only way these
	// reads completed promptly is one full native batch.
	if sizes := spy.batchSizes(); len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("native batches %v, want [4]", sizes)
	}
}

// TestBatchingLingerFlushesPartialBatch checks a lone operation is
// released by the linger timer rather than waiting for a full batch.
func TestBatchingLingerFlushesPartialBatch(t *testing.T) {
	ctx := context.Background()
	spy := &batchSpy{Memory: NewMemory()}
	shared := NewMiddlewareState()
	mw := buildBatching(t, map[string]string{"batch.size": "64", "batch.linger_ms": "5"}, shared, nil)
	d := Chain(DB(spy), mw)

	start := time.Now()
	if err := d.Insert(ctx, "t", "solo", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("lone insert took %v, linger timer did not fire", e)
	}
	if sizes := spy.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("native batches %v, want [1]", sizes)
	}
	if rec, err := spy.Read(ctx, "t", "solo", nil); err != nil || string(rec["f"]) != "v" {
		t.Fatalf("after flush: %v %v", rec, err)
	}
}

// TestBatchingCancelledWaiter checks a waiter whose context dies gets
// ctx.Err() back while the batch itself still executes.
func TestBatchingCancelledWaiter(t *testing.T) {
	spy := &batchSpy{Memory: NewMemory()}
	shared := NewMiddlewareState()
	mw := buildBatching(t, map[string]string{"batch.size": "64", "batch.linger_ms": "50"}, shared, nil)
	d := Chain(DB(spy), mw)

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(time.Millisecond); cancel() }()
	if err := d.Insert(ctx, "t", "k", Record{"f": []byte("v")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The abandoned item still lands once the linger timer flushes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rec, err := spy.Read(context.Background(), "t", "k", nil); err == nil && string(rec["f"]) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned item never executed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchingDisabledIsIdentity checks batch.size<=1 (and a nil
// shared state) yield a passthrough middleware.
func TestBatchingDisabledIsIdentity(t *testing.T) {
	inner := NewMemory()
	for _, tc := range []struct {
		name   string
		props  map[string]string
		shared *MiddlewareState
	}{
		{"size1", map[string]string{"batch.size": "1"}, NewMiddlewareState()},
		{"linger0", map[string]string{"batch.size": "8", "batch.linger_ms": "0"}, NewMiddlewareState()},
		{"nilShared", map[string]string{"batch.size": "8"}, nil},
	} {
		mw := buildBatching(t, tc.props, tc.shared, nil)
		if got := mw(inner); got != DB(inner) {
			t.Errorf("%s: middleware wrapped the DB, want identity", tc.name)
		}
	}
}

// TestBatchingMeasuresBatchSeries checks flushes land in BATCH-READ /
// BATCH-UPDATE with per-item operation counts (MeasureN semantics).
func TestBatchingMeasuresBatchSeries(t *testing.T) {
	ctx := context.Background()
	spy := &batchSpy{Memory: NewMemory()}
	reg := measurement.NewRegistry(0)
	shared := NewMiddlewareState()
	var events atomic.Int64
	obs := observerFunc(func(info OpInfo, _ time.Duration, _ error) {
		if info.Op == OpBatchRead || info.Op == OpBatchWrite {
			events.Add(int64(info.Items))
		}
	})
	p := properties.New()
	p.Set("batch.size", "3")
	p.Set("batch.linger_ms", "1000")
	mws, err := BuildMiddlewares([]string{"batching"}, MiddlewareEnv{
		Props: p, Recorder: reg.Recorder(), Observer: obs, Shared: shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := Chain(DB(spy), mws[0])

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i {
			case 0:
				d.Read(ctx, "t", "missing", nil)
			default:
				d.Insert(ctx, "t", fmt.Sprintf("k%d", i), Record{"f": []byte("v")})
			}
		}(i)
	}
	wg.Wait()

	if got := reg.Snapshot(SeriesBatchRead).Operations; got != 1 {
		t.Errorf("BATCH-READ operations = %d, want 1", got)
	}
	if got := reg.Snapshot(SeriesBatchUpdate).Operations; got != 2 {
		t.Errorf("BATCH-UPDATE operations = %d, want 2", got)
	}
	if got := reg.Snapshot(SeriesBatchRead).Returns[CodeNotFound]; got != 1 {
		t.Errorf("BATCH-READ not-found returns = %d, want 1", got)
	}
	if got := events.Load(); got != 3 {
		t.Errorf("observed batch items = %d, want 3", got)
	}
}

// TestBindingBatchThroughMiddleware checks a full chain — batching
// over a BatchDB binding — preserves single-op error semantics.
func TestBatchingPreservesErrorSemantics(t *testing.T) {
	ctx := context.Background()
	spy := &batchSpy{Memory: NewMemory()}
	shared := NewMiddlewareState()
	mw := buildBatching(t, map[string]string{"batch.size": "2", "batch.linger_ms": "1000"}, shared, nil)
	d := Chain(DB(spy), mw)

	var wg sync.WaitGroup
	var readErr, insErr error
	wg.Add(2)
	go func() { defer wg.Done(); _, readErr = d.Read(ctx, "t", "nope", nil) }()
	go func() { defer wg.Done(); insErr = d.Insert(ctx, "t", "k", Record{"f": []byte("v")}) }()
	wg.Wait()
	if !errors.Is(readErr, ErrNotFound) {
		t.Errorf("read: got %v, want ErrNotFound", readErr)
	}
	if insErr != nil {
		t.Errorf("insert: %v", insErr)
	}
}
