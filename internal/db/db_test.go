package db

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

func TestReturnCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{ErrNotFound, 1},
		{fmt.Errorf("wrapped: %w", ErrNotFound), 1},
		{ErrConflict, 2},
		{ErrAborted, 3},
		{ErrThrottled, 4},
		{ErrNotSupported, 5},
		{context.Canceled, 6},
		{context.DeadlineExceeded, 6},
		{fmt.Errorf("op: %w", context.DeadlineExceeded), 6},
		{errors.New("other"), -1},
	}
	for _, c := range cases {
		if got := ReturnCode(c.err); got != c.want {
			t.Errorf("ReturnCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	Register("test-binding", func() (DB, error) { return NewMemory(), nil })
	d, err := Open("test-binding")
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("nil DB")
	}
	if _, err := Open("missing-binding"); err == nil {
		t.Error("expected error for unknown binding")
	}
	found := false
	for _, n := range Bindings() {
		if n == "test-binding" {
			found = true
		}
	}
	if !found {
		t.Errorf("Bindings() = %v, missing test-binding", Bindings())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate registration")
			}
		}()
		Register("test-binding", func() (DB, error) { return nil, nil })
	}()
}

func TestMemoryCRUD(t *testing.T) {
	ctx := context.Background()
	m := NewMemory()
	if err := m.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	rec := Record{"field0": []byte("hello")}
	if err := m.Insert(ctx, "t", "k1", rec); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(ctx, "t", "k1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got["field0"]) != "hello" {
		t.Errorf("Read = %v", got)
	}
	// Mutating the returned record must not affect the store.
	got["field0"][0] = 'X'
	got2, _ := m.Read(ctx, "t", "k1", nil)
	if string(got2["field0"]) != "hello" {
		t.Error("Read returned aliased storage")
	}
	if err := m.Update(ctx, "t", "k1", Record{"field0": []byte("bye"), "f2": []byte("new")}); err != nil {
		t.Fatal(err)
	}
	got3, _ := m.Read(ctx, "t", "k1", []string{"f2"})
	if len(got3) != 1 || string(got3["f2"]) != "new" {
		t.Errorf("field-filtered read = %v", got3)
	}
	if err := m.Delete(ctx, "t", "k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(ctx, "t", "k1", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read after delete = %v", err)
	}
	if err := m.Update(ctx, "t", "missing", rec); !errors.Is(err, ErrNotFound) {
		t.Errorf("Update missing = %v", err)
	}
	if err := m.Delete(ctx, "t", "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete missing = %v", err)
	}
	if err := m.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryScan(t *testing.T) {
	ctx := context.Background()
	m := NewMemory()
	for _, k := range []string{"b", "a", "d", "c"} {
		if err := m.Insert(ctx, "t", k, Record{"f": []byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := m.Scan(ctx, "t", "b", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "b" || kvs[1].Key != "c" {
		t.Errorf("Scan = %+v", kvs)
	}
	// Scan past the end returns what exists.
	kvs, err = m.Scan(ctx, "t", "c", 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Errorf("tail scan = %+v", kvs)
	}
	// Scan from beyond all keys returns empty, not an error.
	kvs, err = m.Scan(ctx, "t", "zzz", 10, nil)
	if err != nil || len(kvs) != 0 {
		t.Errorf("empty scan = %v, %v", kvs, err)
	}
}

func TestMemoryConcurrent(t *testing.T) {
	ctx := context.Background()
	m := NewMemory()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				if err := m.Insert(ctx, "t", key, Record{"f": []byte("v")}); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Read(ctx, "t", key, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len("t") != 8*200 {
		t.Errorf("Len = %d", m.Len("t"))
	}
}

func TestMeteredRecordsSeries(t *testing.T) {
	ctx := context.Background()
	reg := measurement.NewRegistry(0)
	md := NewMetered(NewMemory(), reg).(TransactionalDB)
	if err := md.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	tctx, err := md.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := md.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if _, err := md.Read(ctx, "t", "k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := md.Read(ctx, "t", "missing", nil); err == nil {
		t.Fatal("expected not-found")
	}
	if err := md.Update(ctx, "t", "k", Record{"f": []byte("w")}); err != nil {
		t.Fatal(err)
	}
	if _, err := md.Scan(ctx, "t", "k", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := md.Delete(ctx, "t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := md.Commit(ctx, tctx); err != nil {
		t.Fatal(err)
	}
	if err := md.Abort(ctx, tctx); err != nil {
		t.Fatal(err)
	}

	wantOps := map[string]int64{
		SeriesStart:  1,
		SeriesInsert: 1,
		SeriesRead:   2,
		SeriesUpdate: 1,
		SeriesScan:   1,
		SeriesDelete: 1,
		SeriesCommit: 1,
		SeriesAbort:  1,
	}
	for name, want := range wantOps {
		if got := reg.Snapshot(name).Operations; got != want {
			t.Errorf("series %s ops = %d, want %d", name, got, want)
		}
	}
	// The failed read must be recorded with return code 1.
	if got := reg.Snapshot(SeriesRead).Returns[1]; got != 1 {
		t.Errorf("READ Return=1 count = %d", got)
	}
	if got := reg.Snapshot(SeriesRead).Returns[0]; got != 1 {
		t.Errorf("READ Return=0 count = %d", got)
	}
	if inner := md.(interface{ Unwrap() DB }).Unwrap(); inner == nil {
		t.Error("Unwrap() nil")
	}
	if err := md.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestMeteredWithTxOnPlainBinding(t *testing.T) {
	reg := measurement.NewRegistry(0)
	md := NewMetered(NewMemory(), reg)
	tctx, _ := md.(TransactionalDB).Start(context.Background())
	view := md.(ContextualDB).WithTx(tctx)
	if view != md {
		t.Error("WithTx on a non-contextual binding should return the metered DB itself")
	}
}

func TestNoTransactions(t *testing.T) {
	ctx := context.Background()
	var nt NoTransactions
	tctx, err := nt.Start(ctx)
	if err != nil || tctx == nil {
		t.Fatalf("Start = %v, %v", tctx, err)
	}
	if err := nt.Commit(ctx, tctx); err != nil {
		t.Errorf("Commit = %v", err)
	}
	if err := nt.Abort(ctx, tctx); err != nil {
		t.Errorf("Abort = %v", err)
	}
}
