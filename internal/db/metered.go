package db

import (
	"context"
	"time"

	"ycsbt/internal/measurement"
)

// Series names used by the metered middleware; the client layer adds
// the "TX-" prefixed whole-transaction series on top (Tier 5).
const (
	SeriesRead   = "READ"
	SeriesScan   = "SCAN"
	SeriesUpdate = "UPDATE"
	SeriesInsert = "INSERT"
	SeriesDelete = "DELETE"
	SeriesStart  = "START"
	SeriesCommit = "COMMIT"
	SeriesAbort  = "ABORT"
	// Batch flush series: one sample per coalesced item (MeasureN), so
	// Operations counts logical ops while AvgUS is each item's
	// amortized round-trip latency.
	SeriesBatchRead   = "BATCH-READ"
	SeriesBatchUpdate = "BATCH-UPDATE"
)

// Metered returns the measurement middleware: every operation's
// latency and return code land in rec's private series shards. This
// is the Tier 5 capture point for individual database operations: the
// same series names appear whether the run is transactional or not,
// so the overhead of transactional execution can be compared
// directly.
//
// The per-operation cost is one time.Now pair plus a handful of
// uncontended atomics — the series handles are resolved once here, so
// the hot path touches no map and takes no lock. Allocate one
// recorder per client thread (Client.threadLoop does) and the shards
// never contend either.
func Metered(rec *measurement.Recorder) Middleware {
	var handles [numOps]*measurement.SeriesRecorder
	for op := Op(0); op < numOps; op++ {
		handles[op] = rec.Series(op.Series())
	}
	return Intercept(func(ctx context.Context, info OpInfo, call func(context.Context) error) error {
		t := time.Now()
		err := call(ctx)
		handles[info.Op].Measure(time.Since(t), ReturnCode(err))
		return err
	})
}

// NewMetered wraps inner so its operations are measured into reg —
// the seed's decorator, now expressed as Chain(inner, Metered(…)).
// The returned DB implements TransactionalDB and ContextualDB. All
// callers share one recorder (and thus one set of shards), so prefer
// per-thread Metered recorders on hot paths.
func NewMetered(inner DB, reg *measurement.Registry) DB {
	return Chain(inner, Metered(reg.Recorder()))
}
