package db

import (
	"context"
	"time"

	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// Series names used by the metered decorator; the client layer adds
// the "TX-" prefixed whole-transaction series on top (Tier 5).
const (
	SeriesRead   = "READ"
	SeriesScan   = "SCAN"
	SeriesUpdate = "UPDATE"
	SeriesInsert = "INSERT"
	SeriesDelete = "DELETE"
	SeriesStart  = "START"
	SeriesCommit = "COMMIT"
	SeriesAbort  = "ABORT"
)

// Metered decorates a DB so every raw operation's latency and return
// code land in a measurement registry. This is the Tier 5 capture
// point for individual database operations: the same series names
// appear whether the run is transactional or not, so the overhead of
// transactional execution can be compared directly.
type Metered struct {
	inner DB
	reg   *measurement.Registry
}

// NewMetered wraps inner so its operations are measured into reg.
func NewMetered(inner DB, reg *measurement.Registry) *Metered {
	return &Metered{inner: inner, reg: reg}
}

// Inner returns the wrapped binding.
func (m *Metered) Inner() DB { return m.inner }

// Init forwards to the wrapped binding.
func (m *Metered) Init(p *properties.Properties) error { return m.inner.Init(p) }

// Cleanup forwards to the wrapped binding.
func (m *Metered) Cleanup() error { return m.inner.Cleanup() }

func (m *Metered) measure(series string, start time.Time, err error) {
	m.reg.Measure(series, time.Since(start), ReturnCode(err))
}

// Read times and forwards a read.
func (m *Metered) Read(ctx context.Context, table, key string, fields []string) (Record, error) {
	t := time.Now()
	rec, err := m.inner.Read(ctx, table, key, fields)
	m.measure(SeriesRead, t, err)
	return rec, err
}

// Scan times and forwards a scan.
func (m *Metered) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]KV, error) {
	t := time.Now()
	kvs, err := m.inner.Scan(ctx, table, startKey, count, fields)
	m.measure(SeriesScan, t, err)
	return kvs, err
}

// Update times and forwards an update.
func (m *Metered) Update(ctx context.Context, table, key string, values Record) error {
	t := time.Now()
	err := m.inner.Update(ctx, table, key, values)
	m.measure(SeriesUpdate, t, err)
	return err
}

// Insert times and forwards an insert.
func (m *Metered) Insert(ctx context.Context, table, key string, values Record) error {
	t := time.Now()
	err := m.inner.Insert(ctx, table, key, values)
	m.measure(SeriesInsert, t, err)
	return err
}

// Delete times and forwards a delete.
func (m *Metered) Delete(ctx context.Context, table, key string) error {
	t := time.Now()
	err := m.inner.Delete(ctx, table, key)
	m.measure(SeriesDelete, t, err)
	return err
}

// Start times and forwards transaction start. When the wrapped
// binding is not transactional the paper's no-op default applies and
// the measured latency is the cost of doing nothing — exactly what
// Listing 3 shows for the raw store ([START] avg 0.08 µs).
func (m *Metered) Start(ctx context.Context) (*TransactionContext, error) {
	t := time.Now()
	tctx, err := m.startInner(ctx)
	m.measure(SeriesStart, t, err)
	return tctx, err
}

func (m *Metered) startInner(ctx context.Context) (*TransactionContext, error) {
	if tdb, ok := m.inner.(TransactionalDB); ok {
		return tdb.Start(ctx)
	}
	return NoTransactions{}.Start(ctx)
}

// Commit times and forwards transaction commit.
func (m *Metered) Commit(ctx context.Context, tctx *TransactionContext) error {
	t := time.Now()
	var err error
	if tdb, ok := m.inner.(TransactionalDB); ok {
		err = tdb.Commit(ctx, tctx)
	}
	m.measure(SeriesCommit, t, err)
	return err
}

// Abort times and forwards transaction abort.
func (m *Metered) Abort(ctx context.Context, tctx *TransactionContext) error {
	t := time.Now()
	var err error
	if tdb, ok := m.inner.(TransactionalDB); ok {
		err = tdb.Abort(ctx, tctx)
	}
	m.measure(SeriesAbort, t, err)
	return err
}

// WithTx returns a metered view of the wrapped binding's
// transactional view, so in-transaction operations are measured into
// the same raw series.
func (m *Metered) WithTx(tctx *TransactionContext) DB {
	if cdb, ok := m.inner.(ContextualDB); ok {
		return NewMetered(cdb.WithTx(tctx), m.reg)
	}
	return m
}

var (
	_ TransactionalDB = (*Metered)(nil)
	_ ContextualDB    = (*Metered)(nil)
)
