package db

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// labelled returns a middleware that appends its label to trail once
// per intercepted operation, recording interception order.
func labelled(label string, trail *[]string) Middleware {
	return Intercept(func(ctx context.Context, info OpInfo, call func(context.Context) error) error {
		*trail = append(*trail, label)
		return call(ctx)
	})
}

func TestChainOrder(t *testing.T) {
	ctx := context.Background()
	var trail []string
	d := Chain(NewMemory(), labelled("outer", &trail), labelled("inner", &trail))

	if err := d.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer", "inner"}
	if fmt.Sprint(trail) != fmt.Sprint(want) {
		t.Errorf("insert trail = %v, want %v", trail, want)
	}

	// Demarcation ops flow through the same declared order.
	trail = nil
	tdb := d.(TransactionalDB)
	tctx, err := tdb.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tdb.Commit(ctx, tctx); err != nil {
		t.Fatal(err)
	}
	if err := tdb.Abort(ctx, tctx); err != nil {
		t.Fatal(err)
	}
	want = []string{"outer", "inner", "outer", "inner", "outer", "inner"}
	if fmt.Sprint(trail) != fmt.Sprint(want) {
		t.Errorf("demarcation trail = %v, want %v", trail, want)
	}
}

func TestChainEmptyStillTransactional(t *testing.T) {
	d := Chain(NewMemory())
	tdb := Transactional(d)
	tctx, err := tdb.Start(context.Background())
	if err != nil || tctx == nil {
		t.Fatalf("Start = %v, %v", tctx, err)
	}
	if err := tdb.Commit(context.Background(), tctx); err != nil {
		t.Errorf("Commit = %v", err)
	}
	if v := TxView(d, tctx); v == nil {
		t.Error("TxView nil")
	}
}

// observerFunc adapts a function to OpObserver.
type observerFunc func(info OpInfo, latency time.Duration, err error)

func (f observerFunc) ObserveOp(info OpInfo, latency time.Duration, err error) {
	f(info, latency, err)
}

func TestTracedOutsideMeteredSeesSameOps(t *testing.T) {
	ctx := context.Background()
	reg := measurement.NewRegistry(0)
	seen := map[string]int64{}
	obs := observerFunc(func(info OpInfo, _ time.Duration, _ error) {
		seen[info.Op.Series()]++
	})
	d := Chain(NewMemory(), Traced(obs), Metered(reg.Recorder()))

	if err := d.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(ctx, "t", "k", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(ctx, "t", "missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want not-found, got %v", err)
	}
	tdb := d.(TransactionalDB)
	tctx, _ := tdb.Start(ctx)
	if err := tdb.Commit(ctx, tctx); err != nil {
		t.Fatal(err)
	}

	// The trace layer sits outside Metered: every series the metered
	// layer timed must have an identical trace count.
	for _, name := range []string{SeriesInsert, SeriesRead, SeriesStart, SeriesCommit} {
		if got, want := seen[name], reg.Snapshot(name).Operations; got != want {
			t.Errorf("series %s: traced %d, metered %d", name, got, want)
		}
	}
	if seen[SeriesRead] != 2 {
		t.Errorf("traced READ = %d, want 2 (failed ops observed too)", seen[SeriesRead])
	}
}

// flaky fails key operations with err until remaining hits zero.
type flaky struct {
	*Memory
	err       error
	remaining int
	calls     int
}

func (f *flaky) Read(ctx context.Context, table, key string, fields []string) (Record, error) {
	f.calls++
	if f.remaining > 0 {
		f.remaining--
		return nil, f.err
	}
	return f.Memory.Read(ctx, table, key, fields)
}

func (f *flaky) Commit(ctx context.Context, tctx *TransactionContext) error {
	f.calls++
	if f.remaining > 0 {
		f.remaining--
		return f.err
	}
	return nil
}

func (f *flaky) Start(ctx context.Context) (*TransactionContext, error) {
	return &TransactionContext{}, nil
}

func (f *flaky) Abort(ctx context.Context, tctx *TransactionContext) error { return nil }

func TestRetryThrottled(t *testing.T) {
	ctx := context.Background()
	f := &flaky{Memory: NewMemory(), err: ErrThrottled, remaining: 2}
	if err := f.Memory.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	d := Chain(f, Retry(RetryOptions{MaxAttempts: 3, Backoff: time.Microsecond}))
	if _, err := d.Read(ctx, "t", "k", nil); err != nil {
		t.Fatalf("read after retries = %v", err)
	}
	if f.calls != 3 {
		t.Errorf("calls = %d, want 3 (two throttled + one success)", f.calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	ctx := context.Background()
	f := &flaky{Memory: NewMemory(), err: ErrThrottled, remaining: 100}
	d := Chain(f, Retry(RetryOptions{MaxAttempts: 4, Backoff: time.Microsecond}))
	if _, err := d.Read(ctx, "t", "k", nil); !errors.Is(err, ErrThrottled) {
		t.Fatalf("want throttled, got %v", err)
	}
	if f.calls != 4 {
		t.Errorf("calls = %d, want 4", f.calls)
	}
}

func TestRetryConflictOnlyWhenEnabled(t *testing.T) {
	ctx := context.Background()

	f := &flaky{Memory: NewMemory(), err: ErrConflict, remaining: 100}
	d := Chain(f, Retry(RetryOptions{MaxAttempts: 3, Backoff: time.Microsecond}))
	if _, err := d.Read(ctx, "t", "k", nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	if f.calls != 1 {
		t.Errorf("conflicts retried with RetryConflicts off: calls = %d", f.calls)
	}

	f = &flaky{Memory: NewMemory(), err: ErrConflict, remaining: 1}
	if err := f.Memory.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	d = Chain(f, Retry(RetryOptions{MaxAttempts: 3, Backoff: time.Microsecond, RetryConflicts: true}))
	if _, err := d.Read(ctx, "t", "k", nil); err != nil {
		t.Fatalf("read after conflict retry = %v", err)
	}
	if f.calls != 2 {
		t.Errorf("calls = %d, want 2", f.calls)
	}
}

func TestRetryNeverRetriesCommitConflicts(t *testing.T) {
	ctx := context.Background()
	f := &flaky{Memory: NewMemory(), err: ErrConflict, remaining: 100}
	d := Chain(f, Retry(RetryOptions{MaxAttempts: 5, Backoff: time.Microsecond, RetryConflicts: true}))
	tdb := d.(TransactionalDB)
	tctx, _ := tdb.Start(ctx)
	if err := tdb.Commit(ctx, tctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	if f.calls != 1 {
		t.Errorf("commit conflict retried: calls = %d, want 1", f.calls)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &flaky{Memory: NewMemory(), err: ErrThrottled, remaining: 100}
	d := Chain(f, Retry(RetryOptions{MaxAttempts: 1000, Backoff: time.Hour}))
	start := time.Now()
	if _, err := d.Read(ctx, "t", "k", nil); !errors.Is(err, ErrThrottled) {
		t.Fatalf("want throttled, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("retry did not bail on cancelled context")
	}
	if f.calls != 1 {
		t.Errorf("calls = %d, want 1", f.calls)
	}
}

func TestFaultInjectDeterministicExtremes(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}

	always := Chain(mem, FaultInject(FaultOptions{Probability: 1, Err: ErrConflict}))
	for i := 0; i < 50; i++ {
		if _, err := always.Read(ctx, "t", "k", nil); !errors.Is(err, ErrConflict) {
			t.Fatalf("probability 1: read %d = %v", i, err)
		}
	}
	// Demarcation is spared by default even at probability 1.
	if _, err := always.(TransactionalDB).Start(ctx); err != nil {
		t.Errorf("Start injected without Demarcation: %v", err)
	}

	never := Chain(mem, FaultInject(FaultOptions{Probability: 0, Err: ErrConflict}))
	for i := 0; i < 50; i++ {
		if _, err := never.Read(ctx, "t", "k", nil); err != nil {
			t.Fatalf("probability 0: read %d = %v", i, err)
		}
	}
}

func TestFaultInjectApproximatesProbability(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Insert(ctx, "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	d := Chain(mem, FaultInject(FaultOptions{Probability: 0.25}))
	const n = 4000
	failed := 0
	for i := 0; i < n; i++ {
		if _, err := d.Read(ctx, "t", "k", nil); err != nil {
			if !errors.Is(err, ErrThrottled) {
				t.Fatalf("unexpected injected error %v", err)
			}
			failed++
		}
	}
	if failed < n/5 || failed > n/3 {
		t.Errorf("injected %d/%d faults, want ≈ %d", failed, n, n/4)
	}
}

func TestParseAndBuildMiddlewares(t *testing.T) {
	names, err := ParseMiddlewares(" metered, trace ,retry,,faultinject ")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != fmt.Sprint([]string{"metered", "trace", "retry", "faultinject"}) {
		t.Errorf("names = %v", names)
	}
	if _, err := ParseMiddlewares("metered,nosuch"); err == nil {
		t.Error("unknown middleware accepted")
	}

	reg := measurement.NewRegistry(0)
	env := MiddlewareEnv{
		Props:    properties.New(),
		Recorder: reg.Recorder(),
		Observer: observerFunc(func(OpInfo, time.Duration, error) {}),
	}
	mws, err := BuildMiddlewares(names, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(mws) != len(names) {
		t.Fatalf("built %d middlewares, want %d", len(mws), len(names))
	}
	d := Chain(NewMemory(), mws...)
	if err := d.Insert(context.Background(), "t", "k", Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot(SeriesInsert).Operations; got != 1 {
		t.Errorf("INSERT ops through built stack = %d", got)
	}

	// Missing environment dependencies are build-time errors.
	if _, err := BuildMiddlewares([]string{"metered"}, MiddlewareEnv{}); err == nil {
		t.Error("metered built without a recorder")
	}
	if _, err := BuildMiddlewares([]string{"trace"}, MiddlewareEnv{}); err == nil {
		t.Error("trace built without an observer")
	}
	p := properties.New()
	p.Set("faultinject.probability", "1.5")
	if _, err := BuildMiddlewares([]string{"faultinject"}, MiddlewareEnv{Props: p}); err == nil {
		t.Error("faultinject accepted probability 1.5")
	}
	p = properties.New()
	p.Set("faultinject.error", "nosuch")
	if _, err := BuildMiddlewares([]string{"faultinject"}, MiddlewareEnv{Props: p}); err == nil {
		t.Error("faultinject accepted unknown error name")
	}
}

func TestMiddlewareNamesSorted(t *testing.T) {
	names := MiddlewareNames()
	for _, want := range []string{"faultinject", "metered", "retry", "trace"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("MiddlewareNames() = %v, missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("MiddlewareNames() not sorted: %v", names)
		}
	}
}
