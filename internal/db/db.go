// Package db defines the database-client abstraction of YCSB+T.
//
// It mirrors YCSB's DB class: Read / Scan / Update / Insert / Delete
// over named tables of records, where a record is a map from field
// name to value bytes. YCSB+T adds the transaction demarcation
// methods Start, Commit and Abort; in keeping with the paper's
// backward-compatibility requirement these default to no-ops (embed
// NoTransactions to get that behaviour), so any plain YCSB binding
// runs unchanged under the YCSB+T client.
//
// The package also provides the composable Middleware chain
// (middleware.go): decorators such as Metered (the Tier 5
// transactional-overhead capture point), Traced, Retry and
// FaultInject are all expressed as func(DB) DB combinators stacked by
// Chain, so every client builds its interception stack declaratively
// — e.g. from the "middleware" workload property. The client
// additionally times the whole wrapping transaction into a
// "TX-<TYPE>" series.
package db

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ycsbt/internal/properties"
)

// Record is one stored record: field name → value bytes.
type Record = map[string][]byte

// Sentinel errors shared by every binding. Bindings wrap these with
// detail; callers match with errors.Is.
var (
	// ErrNotFound reports that the requested key does not exist.
	ErrNotFound = errors.New("db: key not found")
	// ErrConflict reports a conditional-update (version/ETag) failure.
	ErrConflict = errors.New("db: version conflict")
	// ErrAborted reports that the surrounding transaction aborted.
	ErrAborted = errors.New("db: transaction aborted")
	// ErrThrottled reports that the store rejected the request due to
	// a request-rate cap (simulated cloud stores).
	ErrThrottled = errors.New("db: request throttled")
	// ErrNotSupported reports that the binding does not implement the
	// requested operation.
	ErrNotSupported = errors.New("db: operation not supported")
)

// Return codes recorded by the measurement layer (0 = OK, like
// YCSB's Status ordinals). The measurement shards index a fixed
// atomic array by these values, so keep them small and dense.
const (
	CodeOK           = 0
	CodeNotFound     = 1
	CodeConflict     = 2
	CodeAborted      = 3
	CodeThrottled    = 4
	CodeNotSupported = 5
	// CodeCancelled marks operations cut short by context
	// cancellation or deadline expiry (phase shutdown), so shutdown
	// noise is distinguishable from real errors in Tier-5 output.
	CodeCancelled = 6
	// CodeUnknown is every error no sentinel matches.
	CodeUnknown = -1
)

// ReturnCode maps an operation error to the integer return code the
// measurement layer records (0 = OK, like YCSB's Status).
func ReturnCode(err error) int {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrConflict):
		return CodeConflict
	case errors.Is(err, ErrAborted):
		return CodeAborted
	case errors.Is(err, ErrThrottled):
		return CodeThrottled
	case errors.Is(err, ErrNotSupported):
		return CodeNotSupported
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCancelled
	default:
		return CodeUnknown
	}
}

// DB is the client abstraction every binding implements, mirroring
// com.yahoo.ycsb.DB. Implementations must be safe for concurrent use
// by multiple client threads unless documented otherwise.
type DB interface {
	// Init prepares the binding with the run's properties. It is
	// called once before any operation.
	Init(p *properties.Properties) error
	// Cleanup releases binding resources after the run.
	Cleanup() error

	// Read fetches the named fields of the record under key (all
	// fields when fields is nil).
	Read(ctx context.Context, table, key string, fields []string) (Record, error)
	// Scan fetches up to count records starting at startKey in key
	// order.
	Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]KV, error)
	// Update merges values into the existing record under key.
	Update(ctx context.Context, table, key string, values Record) error
	// Insert stores a new record under key.
	Insert(ctx context.Context, table, key string, values Record) error
	// Delete removes the record under key.
	Delete(ctx context.Context, table, key string) error
}

// KV pairs a key with its record, preserving scan order.
type KV struct {
	Key    string
	Record Record
}

// ProjectFields filters a full record down to the requested fields
// (nil fields = everything). Shared by the bindings, which all
// project reads and scans the same way. The result is always a fresh
// map — the input may be an engine-owned record shared with concurrent
// readers, so aliasing it out would let callers corrupt live store
// state. The byte-slice values are not copied and must be treated as
// read-only.
func ProjectFields(all map[string][]byte, fields []string) Record {
	if fields == nil {
		out := make(Record, len(all))
		for f, v := range all {
			out[f] = v
		}
		return out
	}
	out := make(Record, len(fields))
	for _, f := range fields {
		if v, ok := all[f]; ok {
			out[f] = v
		}
	}
	return out
}

// TransactionContext carries per-thread transaction state between
// Start and Commit/Abort for bindings that are transactional. The
// YCSB+T client threads each own one context; bindings store their
// per-transaction handle in it.
type TransactionContext struct {
	// Handle is binding-private per-transaction state.
	Handle any
}

// TransactionalDB is a DB that supports wrapping operations in
// client-coordinated transactions (Section IV-A of the paper). The
// tctx passed to the data operations of a transactional binding is
// the one returned by Start.
type TransactionalDB interface {
	DB
	// Start begins a transaction and returns its context.
	Start(ctx context.Context) (*TransactionContext, error)
	// Commit makes the transaction's effects durable and visible.
	Commit(ctx context.Context, tctx *TransactionContext) error
	// Abort discards the transaction's effects.
	Abort(ctx context.Context, tctx *TransactionContext) error
}

// ContextualDB is implemented by transactional bindings whose data
// operations need the transaction context; the client routes
// operations through WithTx when available.
type ContextualDB interface {
	// WithTx returns a DB view whose operations execute inside the
	// given transaction.
	WithTx(tctx *TransactionContext) DB
}

// NoTransactions provides the paper's default no-op Start / Commit /
// Abort so that non-transactional bindings satisfy TransactionalDB
// unchanged ("backward compatible with YCSB").
type NoTransactions struct{}

// Start is a no-op; it returns an empty transaction context.
func (NoTransactions) Start(context.Context) (*TransactionContext, error) {
	return &TransactionContext{}, nil
}

// Commit is a no-op.
func (NoTransactions) Commit(context.Context, *TransactionContext) error { return nil }

// Abort is a no-op.
func (NoTransactions) Abort(context.Context, *TransactionContext) error { return nil }

// Factory constructs a fresh binding instance.
type Factory func() (DB, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register makes a binding available under name to the command-line
// client (`-db <name>`). It panics on duplicate registration, which
// indicates a programmer error at init time.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("db: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Open instantiates the binding registered under name.
func Open(name string) (DB, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("db: unknown binding %q (have %v)", name, Bindings())
	}
	return f()
}

// Bindings returns the registered binding names, sorted.
func Bindings() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
