package db

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ycsbt/internal/properties"
)

// Memory is a minimal map-backed non-transactional binding. It is the
// YCSB "BasicDB" analog used in unit tests and the quickstart
// example; the production-grade embedded engine lives in
// internal/kvstore. Memory is linearizable per key but offers no
// multi-operation atomicity, so racing read-modify-write sequences
// lose updates — which is precisely what Tier 6 exists to detect.
type Memory struct {
	NoTransactions
	mu     sync.RWMutex
	tables map[string]map[string]Record
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{tables: make(map[string]map[string]Record)}
}

func init() {
	Register("memory", func() (DB, error) { return NewMemory(), nil })
}

// Init implements DB; Memory needs no configuration.
func (m *Memory) Init(*properties.Properties) error { return nil }

// Cleanup implements DB.
func (m *Memory) Cleanup() error { return nil }

func (m *Memory) table(name string) map[string]Record {
	t, ok := m.tables[name]
	if !ok {
		t = make(map[string]Record)
		m.tables[name] = t
	}
	return t
}

func copyFields(rec Record, fields []string) Record {
	out := make(Record, len(rec))
	if fields == nil {
		for f, v := range rec {
			out[f] = append([]byte(nil), v...)
		}
		return out
	}
	for _, f := range fields {
		if v, ok := rec[f]; ok {
			out[f] = append([]byte(nil), v...)
		}
	}
	return out
}

// Read implements DB.
func (m *Memory) Read(_ context.Context, table, key string, fields []string) (Record, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.table(table)[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	return copyFields(rec, fields), nil
}

// Scan implements DB; keys are returned in lexicographic order
// starting at startKey.
func (m *Memory) Scan(_ context.Context, table, startKey string, count int, fields []string) ([]KV, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t := m.table(table)
	keys := make([]string, 0, len(t))
	for k := range t {
		if strings.Compare(k, startKey) >= 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if count < len(keys) {
		keys = keys[:count]
	}
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		out = append(out, KV{Key: k, Record: copyFields(t[k], fields)})
	}
	return out, nil
}

// Update implements DB; it merges values into the existing record.
func (m *Memory) Update(_ context.Context, table, key string, values Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.table(table)
	rec, ok := t[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	for f, v := range values {
		rec[f] = append([]byte(nil), v...)
	}
	return nil
}

// Insert implements DB; inserting an existing key overwrites it,
// matching typical key-value-store put semantics.
func (m *Memory) Insert(_ context.Context, table, key string, values Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.table(table)[key] = copyFields(values, nil)
	return nil
}

// Delete implements DB.
func (m *Memory) Delete(_ context.Context, table, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.table(table)
	if _, ok := t[key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	delete(t, key)
	return nil
}

// Len returns the number of records in table (test helper).
func (m *Memory) Len(table string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.table(table))
}
