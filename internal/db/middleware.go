package db

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// Middleware wraps a DB with extra behaviour — measurement, tracing,
// retry, fault injection, caching, batching — without the binding or
// the client knowing about it. Middlewares compose with Chain.
type Middleware func(DB) DB

// Chain stacks middlewares over base in declared order: the first
// middleware is the outermost layer, so with Chain(base, a, b) an
// operation flows a → b → base. The returned DB always implements
// TransactionalDB and ContextualDB (with the paper's no-op defaults
// when base is a plain YCSB binding), so callers can demarcate
// transactions without type switching.
func Chain(base DB, mws ...Middleware) DB {
	d := base
	for i := len(mws) - 1; i >= 0; i-- {
		d = mws[i](d)
	}
	return d
}

// Op identifies one intercepted database operation.
type Op uint8

// Intercepted operations, raw CRUD first, then transaction
// demarcation.
const (
	OpRead Op = iota
	OpScan
	OpUpdate
	OpInsert
	OpDelete
	// OpBatchRead / OpBatchWrite are flush events of the batching
	// middleware: one event per coalesced engine/wire round trip, with
	// OpInfo.Items carrying how many logical operations it moved.
	OpBatchRead
	OpBatchWrite
	OpStart
	OpCommit
	OpAbort
	numOps
)

var opSeries = [numOps]string{
	SeriesRead, SeriesScan, SeriesUpdate, SeriesInsert, SeriesDelete,
	SeriesBatchRead, SeriesBatchUpdate,
	SeriesStart, SeriesCommit, SeriesAbort,
}

// Series returns the measurement series name of the operation
// ("READ", "COMMIT", …).
func (o Op) Series() string {
	if o < numOps {
		return opSeries[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// String returns the series name.
func (o Op) String() string { return o.Series() }

// Demarcation reports whether the op is Start, Commit or Abort.
func (o Op) Demarcation() bool { return o >= OpStart }

// OpInfo describes one operation flowing through an interceptor.
type OpInfo struct {
	// Op is the operation kind.
	Op Op
	// Table is the target table ("" for demarcation ops).
	Table string
	// Key is the target key (the start key for scans, "" for
	// demarcation ops).
	Key string
	// Items is how many logical operations the event covers: 0 or 1
	// for single operations, the item count for OpBatchRead /
	// OpBatchWrite flush events.
	Items int
}

// Interceptor is the uniform around-advice every middleware reduces
// to: it runs arbitrary code before/after the operation, may mutate
// the context, may skip the call entirely (fault injection), and may
// invoke call more than once (retry). call is re-invocable.
type Interceptor func(ctx context.Context, info OpInfo, call func(context.Context) error) error

// Intercept lifts an Interceptor into a Middleware: the returned
// wrapper routes all nine DB operations — including Start, Commit and
// Abort — through fn, so a middleware is written once and observes
// raw ops and transaction demarcation alike.
func Intercept(fn Interceptor) Middleware {
	return func(inner DB) DB {
		return &intercepted{inner: inner, fn: fn}
	}
}

// intercepted is the generic middleware wrapper. It satisfies
// TransactionalDB (falling back to the paper's no-op demarcation when
// the inner binding is not transactional) and ContextualDB (the
// in-transaction view is wrapped with the same interceptor, so
// in-transaction operations are observed too).
type intercepted struct {
	inner DB
	fn    Interceptor
}

// Unwrap returns the wrapped DB (for introspection and tests).
func (w *intercepted) Unwrap() DB { return w.inner }

// Init forwards to the wrapped binding uninstrumented.
func (w *intercepted) Init(p *properties.Properties) error { return w.inner.Init(p) }

// Cleanup forwards to the wrapped binding uninstrumented.
func (w *intercepted) Cleanup() error { return w.inner.Cleanup() }

// Read routes a read through the interceptor.
func (w *intercepted) Read(ctx context.Context, table, key string, fields []string) (Record, error) {
	var rec Record
	err := w.fn(ctx, OpInfo{Op: OpRead, Table: table, Key: key}, func(ctx context.Context) error {
		var err error
		rec, err = w.inner.Read(ctx, table, key, fields)
		return err
	})
	return rec, err
}

// Scan routes a scan through the interceptor.
func (w *intercepted) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]KV, error) {
	var kvs []KV
	err := w.fn(ctx, OpInfo{Op: OpScan, Table: table, Key: startKey}, func(ctx context.Context) error {
		var err error
		kvs, err = w.inner.Scan(ctx, table, startKey, count, fields)
		return err
	})
	return kvs, err
}

// Update routes an update through the interceptor.
func (w *intercepted) Update(ctx context.Context, table, key string, values Record) error {
	return w.fn(ctx, OpInfo{Op: OpUpdate, Table: table, Key: key}, func(ctx context.Context) error {
		return w.inner.Update(ctx, table, key, values)
	})
}

// Insert routes an insert through the interceptor.
func (w *intercepted) Insert(ctx context.Context, table, key string, values Record) error {
	return w.fn(ctx, OpInfo{Op: OpInsert, Table: table, Key: key}, func(ctx context.Context) error {
		return w.inner.Insert(ctx, table, key, values)
	})
}

// Delete routes a delete through the interceptor.
func (w *intercepted) Delete(ctx context.Context, table, key string) error {
	return w.fn(ctx, OpInfo{Op: OpDelete, Table: table, Key: key}, func(ctx context.Context) error {
		return w.inner.Delete(ctx, table, key)
	})
}

// Start routes transaction start through the interceptor. When the
// wrapped binding is not transactional the paper's no-op default
// applies and the measured latency is the cost of doing nothing —
// exactly what Listing 3 shows for the raw store ([START] avg
// 0.08 µs).
func (w *intercepted) Start(ctx context.Context) (*TransactionContext, error) {
	var tctx *TransactionContext
	err := w.fn(ctx, OpInfo{Op: OpStart}, func(ctx context.Context) error {
		var err error
		tctx, err = Transactional(w.inner).Start(ctx)
		return err
	})
	return tctx, err
}

// Commit routes transaction commit through the interceptor.
func (w *intercepted) Commit(ctx context.Context, tctx *TransactionContext) error {
	return w.fn(ctx, OpInfo{Op: OpCommit}, func(ctx context.Context) error {
		return Transactional(w.inner).Commit(ctx, tctx)
	})
}

// Abort routes transaction abort through the interceptor.
func (w *intercepted) Abort(ctx context.Context, tctx *TransactionContext) error {
	return w.fn(ctx, OpInfo{Op: OpAbort}, func(ctx context.Context) error {
		return Transactional(w.inner).Abort(ctx, tctx)
	})
}

// WithTx returns a view whose in-transaction operations flow through
// the same interceptor, so they land in the same series / trace.
func (w *intercepted) WithTx(tctx *TransactionContext) DB {
	if cdb, ok := w.inner.(ContextualDB); ok {
		return &intercepted{inner: cdb.WithTx(tctx), fn: w.fn}
	}
	return w
}

var (
	_ TransactionalDB = (*intercepted)(nil)
	_ ContextualDB    = (*intercepted)(nil)
)

// nonTx adapts a plain YCSB binding to TransactionalDB with the
// paper's no-op demarcation.
type nonTx struct {
	DB
	NoTransactions
}

// WithTx forwards to the wrapped binding's view when it has one.
func (n nonTx) WithTx(tctx *TransactionContext) DB { return TxView(n.DB, tctx) }

// Transactional returns d as a TransactionalDB, adapting plain
// bindings with no-op Start/Commit/Abort ("backward compatible with
// YCSB").
func Transactional(d DB) TransactionalDB {
	if tdb, ok := d.(TransactionalDB); ok {
		return tdb
	}
	return nonTx{DB: d}
}

// TxView returns the view of d that executes inside tctx, or d itself
// when the binding has no per-transaction views.
func TxView(d DB, tctx *TransactionContext) DB {
	if cdb, ok := d.(ContextualDB); ok {
		return cdb.WithTx(tctx)
	}
	return d
}

// OpObserver receives one event per completed operation from the
// Traced middleware. internal/trace.OpLog implements it; the
// interface lives here so db does not depend on the trace package.
type OpObserver interface {
	// ObserveOp is called after the operation (and anything stacked
	// inside the trace middleware) completes.
	ObserveOp(info OpInfo, latency time.Duration, err error)
}

// Traced returns the operation-tracing middleware: every operation
// that flows through it — raw ops and Start/Commit/Abort alike — is
// reported to obs with its latency and outcome. Stack it outside
// Metered and it observes exactly the operations the metered layer
// timed.
func Traced(obs OpObserver) Middleware {
	return Intercept(func(ctx context.Context, info OpInfo, call func(context.Context) error) error {
		t := time.Now()
		err := call(ctx)
		obs.ObserveOp(info, time.Since(t), err)
		return err
	})
}

// RetryOptions configures the Retry middleware.
type RetryOptions struct {
	// MaxAttempts bounds total tries per operation (≥1; default 3).
	MaxAttempts int
	// Backoff is the first retry's delay; it doubles per attempt
	// (default 100µs).
	Backoff time.Duration
	// MaxBackoff caps the delay (default 100ms).
	MaxBackoff time.Duration
	// RetryConflicts additionally retries raw operations that fail
	// with ErrConflict (version/ETag races on auto-commit paths).
	// Commit conflicts are never retried: a conflicted commit means
	// the transaction aborted, and re-driving it is the client's job.
	RetryConflicts bool
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Microsecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 100 * time.Millisecond
	}
	return o
}

// Retry returns the retry/backoff middleware: operations failing with
// ErrThrottled (cloud request-rate caps) — and, when enabled, raw
// operations failing with ErrConflict — are retried with exponential
// backoff. Stack it outside Metered to time each attempt
// individually, or inside to time the whole retried operation once.
func Retry(o RetryOptions) Middleware {
	o = o.withDefaults()
	retryable := func(info OpInfo, err error) bool {
		if errors.Is(err, ErrThrottled) {
			return true
		}
		return o.RetryConflicts && !info.Op.Demarcation() && errors.Is(err, ErrConflict)
	}
	return Intercept(func(ctx context.Context, info OpInfo, call func(context.Context) error) error {
		var err error
		delay := o.Backoff
		for attempt := 0; attempt < o.MaxAttempts; attempt++ {
			if err = call(ctx); err == nil || !retryable(info, err) {
				return err
			}
			if attempt == o.MaxAttempts-1 {
				break
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return err
			}
			if delay *= 2; delay > o.MaxBackoff {
				delay = o.MaxBackoff
			}
		}
		return err
	})
}

// FaultOptions configures the FaultInject middleware.
type FaultOptions struct {
	// Probability is the per-operation failure rate in [0, 1].
	Probability float64
	// Err is the injected error (default ErrThrottled, so the Retry
	// middleware can absorb injected faults when stacked outside).
	Err error
	// Demarcation also injects into Start/Commit/Abort (default raw
	// ops only, so abort accounting stays workload-driven).
	Demarcation bool
}

// FaultInject returns the fault-injection middleware: it fails the
// configured fraction of operations before they reach the binding.
// Injection is deterministic (a Weyl-sequence hash over a shared
// operation counter, no locks, no global rand), so runs are
// reproducible.
func FaultInject(o FaultOptions) Middleware {
	if o.Err == nil {
		o.Err = ErrThrottled
	}
	threshold := uint64(o.Probability * (1 << 32))
	var seq atomic.Uint64
	return Intercept(func(ctx context.Context, info OpInfo, call func(context.Context) error) error {
		if threshold > 0 && (o.Demarcation || !info.Op.Demarcation()) {
			// Golden-ratio multiplicative hash of the op sequence
			// number: equidistributed, deterministic, lock-free.
			h := seq.Add(1) * 0x9E3779B97F4A7C15 >> 32
			if h < threshold {
				return fmt.Errorf("%w: injected fault", o.Err)
			}
		}
		return call(ctx)
	})
}

// MiddlewareEnv carries the dependencies property-built middlewares
// need: the run properties, the calling thread's measurement recorder
// (for "metered"), the operation observer (for "trace"), and the
// run-wide shared state middlewares that span threads anchor to (the
// "batching" coalescer).
type MiddlewareEnv struct {
	Props    *properties.Properties
	Recorder *measurement.Recorder
	Observer OpObserver
	// Shared is one run's cross-thread middleware state; every thread
	// of a run must receive the same instance (the client does this).
	// Nil disables middlewares that need it.
	Shared *MiddlewareState
}

// MiddlewareState holds middleware singletons shared by every client
// thread of one run — e.g. the batching coalescer, which only batches
// if all threads feed one queue. Keys are middleware names.
type MiddlewareState struct {
	mu sync.Mutex
	m  map[string]any
}

// NewMiddlewareState returns an empty shared-state container.
func NewMiddlewareState() *MiddlewareState {
	return &MiddlewareState{m: make(map[string]any)}
}

// LoadOrCreate returns the value under key, building it with mk on
// first use. mk runs under the state lock, at most once per key.
func (s *MiddlewareState) LoadOrCreate(key string, mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		v = mk()
		s.m[key] = v
	}
	return v
}

// MiddlewareFactory builds one middleware from the environment.
type MiddlewareFactory func(env MiddlewareEnv) (Middleware, error)

var (
	mwMu       sync.RWMutex
	mwRegistry = make(map[string]MiddlewareFactory)
)

// RegisterMiddleware makes a middleware available by name to
// property-driven stacks ("middleware=metered,trace,retry"). Like
// Register, duplicate names panic at init time.
func RegisterMiddleware(name string, f MiddlewareFactory) {
	mwMu.Lock()
	defer mwMu.Unlock()
	if _, dup := mwRegistry[name]; dup {
		panic(fmt.Sprintf("db: duplicate middleware registration of %q", name))
	}
	mwRegistry[name] = f
}

// MiddlewareNames returns the registered middleware names, sorted.
func MiddlewareNames() []string {
	mwMu.RLock()
	defer mwMu.RUnlock()
	names := make([]string, 0, len(mwRegistry))
	for n := range mwRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseMiddlewares splits a comma-separated middleware spec
// (outermost first) and validates every name against the registry.
func ParseMiddlewares(spec string) ([]string, error) {
	var names []string
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		mwMu.RLock()
		_, ok := mwRegistry[name]
		mwMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("db: unknown middleware %q (have %v)", name, MiddlewareNames())
		}
		names = append(names, name)
	}
	return names, nil
}

// BuildMiddlewares instantiates the named middlewares (outermost
// first, ready for Chain) against the environment. It is called once
// per client thread so the "metered" layer binds to that thread's
// private recorder shards.
func BuildMiddlewares(names []string, env MiddlewareEnv) ([]Middleware, error) {
	if env.Props == nil {
		env.Props = properties.New()
	}
	out := make([]Middleware, 0, len(names))
	for _, name := range names {
		mwMu.RLock()
		f, ok := mwRegistry[name]
		mwMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("db: unknown middleware %q (have %v)", name, MiddlewareNames())
		}
		mw, err := f(env)
		if err != nil {
			return nil, fmt.Errorf("db: building middleware %q: %w", name, err)
		}
		out = append(out, mw)
	}
	return out, nil
}

func init() {
	RegisterMiddleware("metered", func(env MiddlewareEnv) (Middleware, error) {
		if env.Recorder == nil {
			return nil, errors.New("metered middleware needs a measurement recorder")
		}
		return Metered(env.Recorder), nil
	})
	RegisterMiddleware("trace", func(env MiddlewareEnv) (Middleware, error) {
		if env.Observer == nil {
			return nil, errors.New("trace middleware needs an operation observer")
		}
		return Traced(env.Observer), nil
	})
	RegisterMiddleware("retry", func(env MiddlewareEnv) (Middleware, error) {
		return Retry(RetryOptions{
			MaxAttempts:    env.Props.GetInt("retry.attempts", 3),
			Backoff:        time.Duration(env.Props.GetInt64("retry.backoff_us", 100)) * time.Microsecond,
			MaxBackoff:     time.Duration(env.Props.GetInt64("retry.maxbackoff_us", 100000)) * time.Microsecond,
			RetryConflicts: env.Props.GetBool("retry.conflicts", false),
		}), nil
	})
	RegisterMiddleware("faultinject", func(env MiddlewareEnv) (Middleware, error) {
		prob := env.Props.GetFloat("faultinject.probability", 0)
		if prob < 0 || prob > 1 {
			return nil, fmt.Errorf("faultinject.probability %v outside [0,1]", prob)
		}
		var injected error
		switch e := env.Props.GetString("faultinject.error", "throttled"); e {
		case "throttled":
			injected = ErrThrottled
		case "conflict":
			injected = ErrConflict
		case "notfound":
			injected = ErrNotFound
		default:
			return nil, fmt.Errorf("unknown faultinject.error %q", e)
		}
		return FaultInject(FaultOptions{
			Probability: prob,
			Err:         injected,
			Demarcation: env.Props.GetBool("faultinject.demarcation", false),
		}), nil
	})
}
