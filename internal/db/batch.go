package db

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// BatchOp is one logical operation inside a multi-key batch: OpRead,
// OpUpdate, OpInsert or OpDelete plus its target and payload. Scans
// and demarcation ops are never batched.
type BatchOp struct {
	Op     Op
	Table  string
	Key    string
	Fields []string // read projection (nil = all fields)
	Values Record   // write payload
}

// BatchResult is the positional outcome of one BatchOp: out[i]
// answers in[i], and a failed item never aborts the rest.
type BatchResult struct {
	Record Record // read result (nil for writes and misses)
	Err    error
}

// BatchDB is the optional capability interface bindings implement
// when they can execute a multi-key batch cheaper than N single
// operations — one engine lock round per touched partition (kvstore),
// one wire round trip (httpkv), one latency/token charge (cloudsim).
type BatchDB interface {
	DB
	// ExecBatch executes the ops and returns positional results.
	ExecBatch(ctx context.Context, ops []BatchOp) []BatchResult
}

// ExecBatch executes ops against d: natively when d implements
// BatchDB, otherwise as sequential single operations. Either way the
// results are positional and per-item.
func ExecBatch(ctx context.Context, d DB, ops []BatchOp) []BatchResult {
	if bdb, ok := d.(BatchDB); ok {
		return bdb.ExecBatch(ctx, ops)
	}
	out := make([]BatchResult, len(ops))
	for i := range ops {
		out[i] = execOne(ctx, d, ops[i])
	}
	return out
}

// execOne runs a single BatchOp through the plain DB interface.
func execOne(ctx context.Context, d DB, op BatchOp) BatchResult {
	switch op.Op {
	case OpRead:
		rec, err := d.Read(ctx, op.Table, op.Key, op.Fields)
		return BatchResult{Record: rec, Err: err}
	case OpUpdate:
		return BatchResult{Err: d.Update(ctx, op.Table, op.Key, op.Values)}
	case OpInsert:
		return BatchResult{Err: d.Insert(ctx, op.Table, op.Key, op.Values)}
	case OpDelete:
		return BatchResult{Err: d.Delete(ctx, op.Table, op.Key)}
	default:
		return BatchResult{Err: fmt.Errorf("%w: cannot batch %v", ErrNotSupported, op.Op)}
	}
}

// batchItem is one operation waiting in the coalescer, with the
// enqueuing thread's own DB view so flushes never execute an item
// against another thread's binding state.
type batchItem struct {
	op    BatchOp
	inner DB
	res   BatchResult
	done  chan struct{}
}

// coalescer merges operations from every client thread of a run into
// multi-key batches. A thread enqueues and blocks; the batch flushes
// when it reaches size (the arriving thread is the flush leader) or
// when the linger timer fires, whichever is first. One coalescer is
// shared by all threads via MiddlewareState — a per-thread coalescer
// would be useless, since each thread issues operations sequentially
// and its own next op can never arrive while it waits.
type coalescer struct {
	size   int
	linger time.Duration

	mu    sync.Mutex
	buf   []*batchItem
	gen   uint64 // bumped per flush so stale linger timers no-op
	timer *time.Timer

	// Flush-side instrumentation, donated by whichever thread built
	// the coalescer (shards are atomic, so cross-thread use is safe).
	readH  *measurement.SeriesRecorder
	writeH *measurement.SeriesRecorder
	obs    OpObserver
}

// do enqueues op and blocks until its batch flushes or ctx ends.
// A context-cancelled caller abandons its item; the flusher still
// executes it (the batch may already be on the wire).
func (c *coalescer) do(ctx context.Context, inner DB, op BatchOp) BatchResult {
	it := &batchItem{op: op, inner: inner, done: make(chan struct{})}
	c.mu.Lock()
	c.buf = append(c.buf, it)
	if len(c.buf) >= c.size {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.flush(batch)
	} else {
		if len(c.buf) == 1 {
			gen := c.gen
			c.timer = time.AfterFunc(c.linger, func() { c.flushAfterLinger(gen) })
		}
		c.mu.Unlock()
	}
	select {
	case <-it.done:
		return it.res
	case <-ctx.Done():
		return BatchResult{Err: ctx.Err()}
	}
}

// takeLocked claims the pending batch and invalidates its timer.
func (c *coalescer) takeLocked() []*batchItem {
	batch := c.buf
	c.buf = nil
	c.gen++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// flushAfterLinger is the linger-timer path: flush whatever has
// accumulated, unless the batch it was armed for already flushed.
func (c *coalescer) flushAfterLinger(gen uint64) {
	c.mu.Lock()
	if c.gen != gen || len(c.buf) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.flush(batch)
}

// flush executes one batch and wakes its waiters. When every item was
// enqueued against the same DB (the common case — threads share one
// binding) the whole batch goes through ExecBatch and can hit the
// native BatchDB path; otherwise each item runs against its own view.
// The flush context is Background on purpose: items from many threads
// share the round trip, so no single caller's deadline governs it.
func (c *coalescer) flush(batch []*batchItem) {
	start := time.Now()
	sameInner := true
	for _, it := range batch {
		if it.inner != batch[0].inner {
			sameInner = false
			break
		}
	}
	if sameInner {
		ops := make([]BatchOp, len(batch))
		for i, it := range batch {
			ops[i] = it.op
		}
		for i, res := range ExecBatch(context.Background(), batch[0].inner, ops) {
			batch[i].res = res
		}
	} else {
		for _, it := range batch {
			it.res = execOne(context.Background(), it.inner, it.op)
		}
	}
	d := time.Since(start)
	c.record(batch, d)
	for _, it := range batch {
		close(it.done)
	}
}

// record lands the flush in the BATCH-READ / BATCH-UPDATE series (one
// sample per item via MeasureN, so Operations counts logical ops and
// AvgUS is the amortized per-item round trip) and reports one event
// per direction to the trace observer with the item count.
func (c *coalescer) record(batch []*batchItem, d time.Duration) {
	var reads, writes int
	var readCodes, writeCodes map[int]int64
	var readErr, writeErr error
	for _, it := range batch {
		code := ReturnCode(it.res.Err)
		if it.op.Op == OpRead {
			reads++
			if readCodes == nil {
				readCodes = map[int]int64{}
			}
			readCodes[code]++
			if readErr == nil {
				readErr = it.res.Err
			}
		} else {
			writes++
			if writeCodes == nil {
				writeCodes = map[int]int64{}
			}
			writeCodes[code]++
			if writeErr == nil {
				writeErr = it.res.Err
			}
		}
	}
	if c.readH != nil {
		for code, n := range readCodes {
			c.readH.MeasureN(d, code, n)
		}
	}
	if c.writeH != nil {
		for code, n := range writeCodes {
			c.writeH.MeasureN(d, code, n)
		}
	}
	if c.obs != nil {
		if reads > 0 {
			c.obs.ObserveOp(OpInfo{Op: OpBatchRead, Items: reads}, d, readErr)
		}
		if writes > 0 {
			c.obs.ObserveOp(OpInfo{Op: OpBatchWrite, Items: writes}, d, writeErr)
		}
	}
}

// batchingDB routes point reads and writes through the shared
// coalescer; scans, lifecycle and transaction demarcation pass
// straight through. Inside an explicit transaction (WithTx) the
// in-transaction view keeps batching only when the binding has no
// per-transaction state, so transactional bindings keep their
// isolation.
type batchingDB struct {
	inner DB
	co    *coalescer
}

// Unwrap returns the wrapped DB (for introspection and tests).
func (b *batchingDB) Unwrap() DB { return b.inner }

// Init forwards to the wrapped binding.
func (b *batchingDB) Init(p *properties.Properties) error { return b.inner.Init(p) }

// Cleanup forwards to the wrapped binding.
func (b *batchingDB) Cleanup() error { return b.inner.Cleanup() }

// Read coalesces the read into the next batch flush.
func (b *batchingDB) Read(ctx context.Context, table, key string, fields []string) (Record, error) {
	res := b.co.do(ctx, b.inner, BatchOp{Op: OpRead, Table: table, Key: key, Fields: fields})
	return res.Record, res.Err
}

// Scan bypasses the coalescer: scans are already multi-record.
func (b *batchingDB) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]KV, error) {
	return b.inner.Scan(ctx, table, startKey, count, fields)
}

// Update coalesces the update into the next batch flush.
func (b *batchingDB) Update(ctx context.Context, table, key string, values Record) error {
	return b.co.do(ctx, b.inner, BatchOp{Op: OpUpdate, Table: table, Key: key, Values: values}).Err
}

// Insert coalesces the insert into the next batch flush.
func (b *batchingDB) Insert(ctx context.Context, table, key string, values Record) error {
	return b.co.do(ctx, b.inner, BatchOp{Op: OpInsert, Table: table, Key: key, Values: values}).Err
}

// Delete coalesces the delete into the next batch flush.
func (b *batchingDB) Delete(ctx context.Context, table, key string) error {
	return b.co.do(ctx, b.inner, BatchOp{Op: OpDelete, Table: table, Key: key}).Err
}

// Start forwards transaction start to the wrapped binding.
func (b *batchingDB) Start(ctx context.Context) (*TransactionContext, error) {
	return Transactional(b.inner).Start(ctx)
}

// Commit forwards transaction commit to the wrapped binding.
func (b *batchingDB) Commit(ctx context.Context, tctx *TransactionContext) error {
	return Transactional(b.inner).Commit(ctx, tctx)
}

// Abort forwards transaction abort to the wrapped binding.
func (b *batchingDB) Abort(ctx context.Context, tctx *TransactionContext) error {
	return Transactional(b.inner).Abort(ctx, tctx)
}

// WithTx keeps batching across no-op demarcation (the binding has no
// per-transaction view, so every thread still shares one DB and the
// native batch path stays reachable) but steps aside for contextual
// bindings, whose per-transaction views must not mix across threads.
func (b *batchingDB) WithTx(tctx *TransactionContext) DB {
	if _, ok := b.inner.(ContextualDB); ok {
		return TxView(b.inner, tctx)
	}
	return b
}

var (
	_ TransactionalDB = (*batchingDB)(nil)
	_ ContextualDB    = (*batchingDB)(nil)
	_ BatchDB         = (*batchingDB)(nil)
)

// ExecBatch forwards a pre-formed batch to the wrapped binding — a
// caller that already has a batch in hand gains nothing from the
// coalescer.
func (b *batchingDB) ExecBatch(ctx context.Context, ops []BatchOp) []BatchResult {
	return ExecBatch(ctx, b.inner, ops)
}

func init() {
	RegisterMiddleware("batching", func(env MiddlewareEnv) (Middleware, error) {
		size := env.Props.GetInt("batch.size", 1)
		linger := time.Duration(env.Props.GetInt64("batch.linger_ms", 1)) * time.Millisecond
		if size <= 1 || linger <= 0 || env.Shared == nil {
			// Batching off (or nothing to share across threads):
			// identity middleware keeps the stack spec valid.
			return func(d DB) DB { return d }, nil
		}
		co := env.Shared.LoadOrCreate("batching", func() any {
			c := &coalescer{size: size, linger: linger, obs: env.Observer}
			if env.Recorder != nil {
				c.readH = env.Recorder.Series(SeriesBatchRead)
				c.writeH = env.Recorder.Series(SeriesBatchUpdate)
			}
			return c
		}).(*coalescer)
		return func(inner DB) DB { return &batchingDB{inner: inner, co: co} }, nil
	})
}
