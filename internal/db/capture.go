package db

import "context"

// Session and version-capture context protocol. The history subsystem
// (internal/history) needs two pieces of information that only exist
// on opposite sides of the middleware chain: which client thread an
// operation belongs to (known above the chain) and which record
// version the binding actually read or installed (known below it).
// Both travel through the operation context, so bindings stay free of
// any history dependency — they report into plain context values that
// cost nothing when no capture is active.

type sessionKeyType struct{}

var sessionKey sessionKeyType

// WithSession tags ctx with the client session (thread) id that
// issues the operations under it.
func WithSession(ctx context.Context, session int) context.Context {
	return context.WithValue(ctx, sessionKey, session)
}

// SessionFromContext returns the session id tagged by WithSession,
// or -1 when the context carries none.
func SessionFromContext(ctx context.Context) int {
	if v, ok := ctx.Value(sessionKey).(int); ok {
		return v
	}
	return -1
}

// VersionCapture receives the record versions one operation touched.
// A capture struct is confined to one goroutine: the layer that
// installs it reads the fields back immediately after the intercepted
// call returns, and resets it before the next operation.
type VersionCapture struct {
	// ReadVer is the version the binding's read observed (0 = none
	// reported).
	ReadVer uint64
	// WriteVer is the version the binding's write installed (0 = none
	// reported).
	WriteVer uint64
}

// Reset clears the capture for the next operation.
func (c *VersionCapture) Reset() { c.ReadVer, c.WriteVer = 0, 0 }

type captureKeyType struct{}

var captureKey captureKeyType

// WithVersionCapture arms ctx with a capture struct that bindings
// report record versions into via ReportReadVersion /
// ReportWriteVersion.
func WithVersionCapture(ctx context.Context, c *VersionCapture) context.Context {
	return context.WithValue(ctx, captureKey, c)
}

// ReportReadVersion records the version a read observed, when the
// context is armed with a capture; otherwise it is a no-op. Bindings
// whose reads know their record version call this on success.
func ReportReadVersion(ctx context.Context, ver uint64) {
	if c, ok := ctx.Value(captureKey).(*VersionCapture); ok {
		c.ReadVer = ver
	}
}

// ReportWriteVersion records the version a write installed, when the
// context is armed with a capture; otherwise it is a no-op.
func ReportWriteVersion(ctx context.Context, ver uint64) {
	if c, ok := ctx.Value(captureKey).(*VersionCapture); ok {
		c.WriteVer = ver
	}
}
