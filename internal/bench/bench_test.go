package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// quickOpts keeps sweep cells tiny so the suite stays fast.
func quickOpts() SweepOptions {
	return SweepOptions{
		Quick:       true,
		RecordCount: 200,
		CellTime:    60 * time.Millisecond,
		Threads:     []int{1, 4},
	}
}

func TestFigure2Shape(t *testing.T) {
	series, err := Figure2(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("Figure2 returned %d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.Throughput <= 0 {
				t.Errorf("%s threads=%d throughput %v", s.Label, pt.Threads, pt.Throughput)
			}
			// Transactional runs must stay anomaly-free.
			if pt.AnomalyScore != 0 {
				t.Errorf("%s threads=%d anomaly score %v on transactional run",
					s.Label, pt.Threads, pt.AnomalyScore)
			}
		}
		// More threads must help at latency-bound scale.
		if s.Points[1].Throughput <= s.Points[0].Throughput {
			t.Errorf("%s: no scaling from %d to %d threads (%.1f → %.1f)",
				s.Label, s.Points[0].Threads, s.Points[1].Threads,
				s.Points[0].Throughput, s.Points[1].Throughput)
		}
	}
	// Higher write ratio costs throughput: 90:10 beats 70:30 at equal
	// threads.
	if series[0].Points[1].Throughput <= series[2].Points[1].Throughput {
		t.Errorf("90:10 (%.1f) should outperform 70:30 (%.1f)",
			series[0].Points[1].Throughput, series[2].Points[1].Throughput)
	}
}

func TestFigure3Shape(t *testing.T) {
	// Figure 3's ratio needs enough operations per cell to be stable;
	// at 1 thread a cell completes ~4 ops per 25ms, so use larger
	// cells than the other quick sweeps.
	o := quickOpts()
	o.CellTime = 400 * time.Millisecond
	o.Threads = []int{1, 4}
	series, err := Figure3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("Figure3 returned %d series", len(series))
	}
	nontx, tx := series[0], series[1]
	for i := range nontx.Points {
		n, x := nontx.Points[i], tx.Points[i]
		if n.Throughput <= 0 || x.Throughput <= 0 {
			t.Fatalf("dead cell at threads=%d", n.Threads)
		}
		// The paper's claim: transactions cost ~30-40% of throughput.
		// Allow a generous band (15-70%) for the quick sweep.
		ratio := x.Throughput / n.Throughput
		if ratio >= 1.0 {
			t.Errorf("threads=%d: transactions were free (ratio %.2f)", n.Threads, ratio)
		}
		if ratio < 0.25 {
			t.Errorf("threads=%d: overhead implausibly high (ratio %.2f)", n.Threads, ratio)
		}
	}
}

func TestFigure45Shape(t *testing.T) {
	o := quickOpts()
	o.Threads = []int{1, 8}
	fig4, fig5, err := Figure45(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Points) != 2 || len(fig5.Points) != 2 {
		t.Fatalf("points: %d/%d", len(fig4.Points), len(fig5.Points))
	}
	// Paper: "no anomalies are present at all with a single thread".
	if fig4.Points[0].AnomalyScore != 0 {
		t.Errorf("single-thread anomaly score = %v, want 0", fig4.Points[0].AnomalyScore)
	}
	// Throughput grows with threads on the local store.
	if fig5.Points[1].Throughput <= fig5.Points[0].Throughput {
		t.Errorf("no local-store scaling: %.0f → %.0f",
			fig5.Points[0].Throughput, fig5.Points[1].Throughput)
	}
	t.Logf("fig4: 1 thread score=%g, 8 threads score=%g",
		fig4.Points[0].AnomalyScore, fig4.Points[1].AnomalyScore)
}

func TestTier5Overhead(t *testing.T) {
	rows, err := Tier5Overhead(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no overhead rows")
	}
	byName := map[string]OverheadRow{}
	for _, r := range rows {
		byName[r.Series] = r
	}
	// START/COMMIT are ~free without transactions and costly with.
	if r, ok := byName["COMMIT"]; ok {
		if r.NonTxCount == 0 || r.TxCount == 0 {
			t.Errorf("COMMIT row incomplete: %+v", r)
		}
		if r.TxUS <= r.NonTxUS {
			t.Errorf("transactional COMMIT (%.1fus) should cost more than no-op (%.1fus)", r.TxUS, r.NonTxUS)
		}
	} else {
		t.Error("no COMMIT row")
	}
	if _, ok := byName["READ"]; !ok {
		t.Error("no READ row")
	}
}

func TestPrintHelpers(t *testing.T) {
	series := []Series{{
		Label:  "a",
		Points: []Point{{Threads: 1, Throughput: 10.5, AnomalyScore: 0.001}},
	}}
	var buf bytes.Buffer
	PrintSeries(&buf, "Title", "ops/sec", Tput, series)
	out := buf.String()
	for _, want := range []string{"Title", "threads", "a", "10.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	PrintSeries(&buf, "Empty", "x", Score, nil)
	if !strings.Contains(buf.String(), "Empty") {
		t.Error("empty table has no title")
	}
	buf.Reset()
	PrintOverhead(&buf, []OverheadRow{{Series: "READ", NonTxUS: 1, TxUS: 2}})
	if !strings.Contains(buf.String(), "READ") {
		t.Error("overhead table missing row")
	}
	if got := Score(Point{AnomalyScore: 0.00123}); got != "0.00123" {
		t.Errorf("Score = %q", got)
	}
}

func TestOracleSweepShape(t *testing.T) {
	o := quickOpts()
	o.CellTime = 300 * time.Millisecond
	o.Threads = nil
	series, err := OracleSweep(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("OracleSweep returned %d series", len(series))
	}
	perc, cherry := series[0], series[1]
	if len(perc.Points) < 2 {
		t.Fatalf("points: %d", len(perc.Points))
	}
	// Percolator throughput must collapse as the oracle moves away...
	last := len(perc.Points) - 1
	if perc.Points[last].Throughput >= perc.Points[0].Throughput*0.7 {
		t.Errorf("oracle RTT did not hurt percolator: %.1f → %.1f",
			perc.Points[0].Throughput, perc.Points[last].Throughput)
	}
	// ...while the client-coordinated curve stays roughly flat.
	ratio := cherry.Points[last].Throughput / cherry.Points[0].Throughput
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("client-coordinated curve not flat: ratio %.2f", ratio)
	}
	// Both stay anomaly-free throughout.
	for _, s := range series {
		for _, pt := range s.Points {
			if pt.AnomalyScore != 0 {
				t.Errorf("%s rtt=%dms anomaly score %v", s.Label, pt.Threads, pt.AnomalyScore)
			}
		}
	}
	var buf bytes.Buffer
	PrintOracleSweep(&buf, series)
	if !strings.Contains(buf.String(), "oracle RTT") {
		t.Error("PrintOracleSweep output malformed")
	}
}

func TestStalenessProbe(t *testing.T) {
	lag := 10 * time.Millisecond
	points, err := StalenessProbe(context.Background(), lag,
		[]time.Duration{0, 30 * time.Millisecond}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	// Reading immediately after the write must be mostly stale; well
	// past the lag, mostly fresh.
	if points[0].StaleFraction < 0.5 {
		t.Errorf("immediate reads mostly fresh (%.2f) despite %v lag", points[0].StaleFraction, lag)
	}
	if points[1].StaleFraction > 0.3 {
		t.Errorf("reads after 3× lag still stale (%.2f)", points[1].StaleFraction)
	}
	var buf bytes.Buffer
	PrintStaleness(&buf, lag, points)
	if !strings.Contains(buf.String(), "P(stale read)") {
		t.Error("PrintStaleness output malformed")
	}
}

func TestMultiHostShape(t *testing.T) {
	o := quickOpts()
	o.CellTime = 400 * time.Millisecond
	points, err := MultiHost(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	// Aggregate throughput must be in the same ballpark regardless of
	// the instance split: the container cap governs.
	ratio := points[1].TotalThroughput / points[0].TotalThroughput
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("split changed capped throughput: %v (ratio %.2f)", points, ratio)
	}
	var buf bytes.Buffer
	PrintMultiHost(&buf, points)
	if !strings.Contains(buf.String(), "instances") {
		t.Error("PrintMultiHost output malformed")
	}
}
