// Package bench regenerates every figure of the YCSB+T paper's
// evaluation section (Section V) as a parameter sweep over the
// reproduction's substrates:
//
//	Figure 2 — transactional throughput vs client threads on a
//	           simulated WAS container, for 90:10, 80:20 and 70:30
//	           read:write mixes.
//	Figure 3 — the same store accessed directly (non-transactional)
//	           vs through the client-coordinated transaction library.
//	Figure 4 — anomaly score vs threads for the non-transactional
//	           embedded store under CEW.
//	Figure 5 — throughput vs threads for the same runs.
//	Tier 5   — per-operation latency in transactional and
//	           non-transactional modes (the Section V-B narrative).
//
// Every sweep returns structured series plus a text-table renderer,
// so cmd/experiments, bench_test.go and EXPERIMENTS.md all draw from
// the same code.
package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/cloudsim"
	"ycsbt/internal/db"
	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

// Point is one measurement cell of a sweep.
type Point struct {
	Threads      int     `json:"threads"`
	Throughput   float64 `json:"throughput_ops_sec"`
	AnomalyScore float64 `json:"anomaly_score"`
	Operations   int64   `json:"operations"`
	Aborts       int64   `json:"aborts"`
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// SweepOptions sizes a sweep. Zero values take the mode's defaults.
type SweepOptions struct {
	// Quick shrinks record counts, op counts and thread ranges so the
	// sweep finishes in seconds; used by tests and testing.B benches.
	Quick bool
	// RecordCount overrides the number of CEW accounts.
	RecordCount int64
	// CellTime bounds each cell's transaction phase.
	CellTime time.Duration
	// Threads overrides the thread counts swept.
	Threads []int
	// Shards is the partition count of every embedded engine a cell
	// constructs; 0 means kvstore.DefaultShards.
	Shards int
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (o SweepOptions) withDefaults(fullThreads []int) SweepOptions {
	if o.RecordCount == 0 {
		if o.Quick {
			o.RecordCount = 500
		} else {
			o.RecordCount = 10000 // the paper's 10 000 records
		}
	}
	if o.CellTime == 0 {
		if o.Quick {
			o.CellTime = 250 * time.Millisecond
		} else {
			o.CellTime = 2 * time.Second
		}
	}
	if len(o.Threads) == 0 {
		o.Threads = fullThreads
		if o.Quick && len(fullThreads) > 4 {
			o.Threads = fullThreads[:4]
		}
	}
	if o.Shards == 0 {
		o.Shards = kvstore.DefaultShards
	}
	return o
}

// newInner builds the embedded partitioned engine one cell runs
// against.
func (o SweepOptions) newInner() *kvstore.Store {
	s, err := kvstore.Open(kvstore.Options{Shards: o.Shards})
	if err != nil {
		panic(err) // unreachable: in-memory opens perform no I/O
	}
	return s
}

func (o SweepOptions) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// cewProps builds the CEW property set of the paper's Listing 2,
// parameterized by mix and sizing.
func cewProps(o SweepOptions, threads int, readProportion float64) *properties.Properties {
	return properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               fmt.Sprint(o.RecordCount),
		"totalcash":                 fmt.Sprint(o.RecordCount * 100),
		"operationcount":            "1000000000", // bounded by maxexecutiontime
		"maxexecutiontime":          fmt.Sprint(int64(o.CellTime.Seconds()) + 1),
		"threadcount":               fmt.Sprint(threads),
		"readproportion":            fmt.Sprint(readProportion),
		"readmodifywriteproportion": fmt.Sprint(1 - readProportion),
		"requestdistribution":       "zipfian",
		"fieldcount":                "1",
		"fieldlength":               "100",
	})
}

// runCell executes load + transaction phase for one cell and returns
// the result of the transaction phase.
func runCell(ctx context.Context, p *properties.Properties, loadDB, runDB db.DB, cellTime time.Duration) (*client.Result, *workload.ValidationResult, error) {
	reg := measurement.NewRegistry(0)
	w, err := workload.New("closedeconomy")
	if err != nil {
		return nil, nil, err
	}
	if err := w.Init(p, reg); err != nil {
		return nil, nil, err
	}

	// Load through the zero-latency path with plenty of threads.
	loadCfg := client.BuildConfig(p)
	loadCfg.Threads = 16
	loadCfg.SkipValidation = true
	loadCfg.MaxExecutionTime = 0
	lc, err := client.New(loadCfg, w, loadDB, reg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := lc.Load(ctx); err != nil {
		return nil, nil, err
	}

	runCfg := client.BuildConfig(p)
	runCfg.MaxExecutionTime = cellTime
	runCfg.SkipValidation = true // validated separately against loadDB
	rc, err := client.New(runCfg, w, runDB, reg)
	if err != nil {
		return nil, nil, err
	}
	res, err := rc.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	v, err := w.Validate(ctx, loadDB)
	if err != nil {
		return nil, nil, err
	}
	return res, v, nil
}

// fig2Threads is the paper's Figure 2 thread sweep.
var fig2Threads = []int{1, 2, 4, 8, 16, 32, 64, 128}

// fig35Threads is the paper's Figure 3/4/5 thread sweep.
var fig35Threads = []int{1, 2, 4, 8, 16}

// Figure2 sweeps transactional CEW throughput over threads and
// read:write mixes against a simulated WAS container.
func Figure2(ctx context.Context, o SweepOptions) ([]Series, error) {
	o = o.withDefaults(fig2Threads)
	mixes := []struct {
		label string
		read  float64
	}{
		{"90:10", 0.9},
		{"80:20", 0.8},
		{"70:30", 0.7},
	}
	var out []Series
	for _, mix := range mixes {
		s := Series{Label: "read:write " + mix.label}
		for _, th := range o.Threads {
			inner := o.newInner()
			cloud := cloudsim.NewOver(cloudsim.WASPreset(), inner)
			loadM, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", inner))
			if err != nil {
				return nil, err
			}
			runM, err := txn.NewManager(txn.Options{}, cloud)
			if err != nil {
				return nil, err
			}
			p := cewProps(o, th, mix.read)
			res, v, err := runCell(ctx, p, txn.NewBinding(loadM), txn.NewBinding(runM), o.CellTime)
			inner.Close()
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				Threads:      th,
				Throughput:   res.Throughput,
				AnomalyScore: v.AnomalyScore,
				Operations:   res.Operations,
				Aborts:       res.Aborts,
			})
			o.logf("fig2 %s threads=%d: %.1f txn/s (%d ops, %d aborts)",
				mix.label, th, res.Throughput, res.Operations, res.Aborts)
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure3 compares non-transactional and transactional access to the
// same simulated store, CEW 90:10.
func Figure3(ctx context.Context, o SweepOptions) ([]Series, error) {
	o = o.withDefaults(fig35Threads)
	nontx := Series{Label: "non-transactional"}
	tx := Series{Label: "transactional"}
	for _, th := range o.Threads {
		// Non-transactional: the cloudsim binding directly.
		{
			inner := o.newInner()
			cloud := cloudsim.NewOver(cloudsim.WASPreset(), inner)
			raw := cloudsim.NewBinding(cloud)
			// CEW writes full records, so the raw client's update is a
			// single PUT, as against a real cloud store.
			raw.BlindUpdates = true
			p := cewProps(o, th, 0.9)
			res, v, err := runCell(ctx, p, kvstore.NewBinding(inner), raw, o.CellTime)
			inner.Close()
			if err != nil {
				return nil, err
			}
			nontx.Points = append(nontx.Points, Point{
				Threads: th, Throughput: res.Throughput,
				AnomalyScore: v.AnomalyScore, Operations: res.Operations, Aborts: res.Aborts,
			})
			o.logf("fig3 non-tx threads=%d: %.1f ops/s", th, res.Throughput)
		}
		// Transactional: the txn library over the same kind of store.
		{
			inner := o.newInner()
			cloud := cloudsim.NewOver(cloudsim.WASPreset(), inner)
			loadM, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", inner))
			if err != nil {
				return nil, err
			}
			runM, err := txn.NewManager(txn.Options{}, cloud)
			if err != nil {
				return nil, err
			}
			p := cewProps(o, th, 0.9)
			res, v, err := runCell(ctx, p, txn.NewBinding(loadM), txn.NewBinding(runM), o.CellTime)
			inner.Close()
			if err != nil {
				return nil, err
			}
			tx.Points = append(tx.Points, Point{
				Threads: th, Throughput: res.Throughput,
				AnomalyScore: v.AnomalyScore, Operations: res.Operations, Aborts: res.Aborts,
			})
			o.logf("fig3 tx threads=%d: %.1f txn/s", th, res.Throughput)
		}
	}
	return []Series{nontx, tx}, nil
}

// Figure45 sweeps the non-transactional store under CEW through its
// HTTP interface — the paper's Tier 6 testbed ("a WiredTiger
// key-value store augmented with an HTTP interface ... server and the
// YCSB+T client run on the same machine") — returning the
// anomaly-score series (Figure 4) and the throughput series (Figure
// 5) from the same runs, as the paper does. The loopback HTTP hop
// provides both the request latency that lets thread counts scale
// throughput and the widened race window that produces lost-update
// anomalies.
func Figure45(ctx context.Context, o SweepOptions) (fig4, fig5 Series, err error) {
	return Figure45WithDistribution(ctx, o, "zipfian")
}

// Figure45WithDistribution is Figure45 under an arbitrary request
// distribution — the DESIGN.md "zipfian vs uniform" ablation: skew
// concentrates conflicting read-modify-writes on hot keys, driving
// the anomaly score.
func Figure45WithDistribution(ctx context.Context, o SweepOptions, dist string) (fig4, fig5 Series, err error) {
	o = o.withDefaults(fig35Threads)
	fig4 = Series{Label: "anomaly score"}
	fig5 = Series{Label: "throughput"}
	for _, th := range o.Threads {
		pt, err := figure45Cell(ctx, o, th, dist)
		if err != nil {
			return fig4, fig5, err
		}
		fig4.Points = append(fig4.Points, pt)
		fig5.Points = append(fig5.Points, pt)
		o.logf("fig4/5 threads=%d: %.0f ops/s, score %.3g", th, pt.Throughput, pt.AnomalyScore)
	}
	return fig4, fig5, nil
}

func figure45Cell(ctx context.Context, o SweepOptions, threads int, dist string) (Point, error) {
	inner := o.newInner()
	defer inner.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Point{}, fmt.Errorf("bench: listening for figure 4/5 server: %w", err)
	}
	// Each request pays a small service latency standing in for the
	// storage engine's I/O (the paper's server stored to SSD-backed
	// WiredTiger). The latency is what lets client threads overlap
	// requests — Figure 5's near-linear scaling — and it widens the
	// read-modify-write race window that Figure 4 quantifies.
	serviceDelay := time.Millisecond
	if o.Quick {
		serviceDelay = 200 * time.Microsecond
	}
	store := httpkv.NewServer(inner)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(serviceDelay)
		store.ServeHTTP(w, r)
	})
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * threads,
		MaxIdleConnsPerHost: 4 * threads,
	}}
	raw := httpkv.NewClient("http://"+ln.Addr().String(), hc)

	p := cewProps(o, threads, 0.9)
	p.Set("requestdistribution", dist)
	res, v, err := runCell(ctx, p, kvstore.NewBinding(inner), raw, o.CellTime)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Threads: threads, Throughput: res.Throughput,
		AnomalyScore: v.AnomalyScore, Operations: res.Operations, Aborts: res.Aborts,
	}, nil
}

// OverheadRow is one operation's latency in both modes (Tier 5).
type OverheadRow struct {
	Series     string  `json:"series"`
	NonTxUS    float64 `json:"nontx_avg_us"`
	TxUS       float64 `json:"tx_avg_us"`
	NonTxCount int64   `json:"nontx_ops"`
	TxCount    int64   `json:"tx_ops"`
}

// Tier5Overhead measures per-operation latency with and without
// transactions on the simulated cloud store (the Section V-B
// narrative: "the throughput is reduced by about 30 to 40% from the
// overhead of transaction management").
func Tier5Overhead(ctx context.Context, o SweepOptions) ([]OverheadRow, error) {
	o = o.withDefaults([]int{8})
	th := o.Threads[len(o.Threads)-1]

	collect := func(loadDB, runDB db.DB) (*measurement.Registry, error) {
		p := cewProps(o, th, 0.9)
		res, _, err := runCell(ctx, p, loadDB, runDB, o.CellTime)
		if err != nil {
			return nil, err
		}
		return res.Registry, nil
	}

	innerA := o.newInner()
	defer innerA.Close()
	cloudA := cloudsim.NewOver(cloudsim.WASPreset(), innerA)
	nontxReg, err := collect(kvstore.NewBinding(innerA), cloudsim.NewBinding(cloudA))
	if err != nil {
		return nil, err
	}

	innerB := o.newInner()
	defer innerB.Close()
	cloudB := cloudsim.NewOver(cloudsim.WASPreset(), innerB)
	loadM, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", innerB))
	if err != nil {
		return nil, err
	}
	runM, err := txn.NewManager(txn.Options{}, cloudB)
	if err != nil {
		return nil, err
	}
	txReg, err := collect(txn.NewBinding(loadM), txn.NewBinding(runM))
	if err != nil {
		return nil, err
	}

	series := []string{"READ", "UPDATE", "START", "COMMIT", "ABORT",
		"READ-MODIFY-WRITE", "TX-READ", "TX-READMODIFYWRITE"}
	var rows []OverheadRow
	for _, name := range series {
		a := nontxReg.Snapshot(name)
		b := txReg.Snapshot(name)
		if a.Operations == 0 && b.Operations == 0 {
			continue
		}
		rows = append(rows, OverheadRow{
			Series:  name,
			NonTxUS: a.AvgUS, TxUS: b.AvgUS,
			NonTxCount: a.Operations, TxCount: b.Operations,
		})
	}
	return rows, nil
}

// PrintSeries renders series as an aligned text table: one row per
// thread count, one column per series.
func PrintSeries(w io.Writer, title, valueHeader string, value func(Point) string, series []Series) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(w, " %20s", s.Label)
	}
	fmt.Fprintf(w, "   (%s)\n", valueHeader)
	if len(series) == 0 || len(series[0].Points) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-8d", series[0].Points[i].Threads)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(w, " %20s", value(s.Points[i]))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintOverhead renders the Tier 5 latency table.
func PrintOverhead(w io.Writer, rows []OverheadRow) {
	title := "Tier 5: per-operation latency, non-transactional vs transactional"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-22s %14s %14s %10s %10s\n", "series", "non-tx avg(us)", "tx avg(us)", "non-tx n", "tx n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %10d %10d\n",
			r.Series, r.NonTxUS, r.TxUS, r.NonTxCount, r.TxCount)
	}
	fmt.Fprintln(w)
}

// Tput formats a throughput value for tables.
func Tput(p Point) string { return fmt.Sprintf("%.1f", p.Throughput) }

// Score formats an anomaly score for tables.
func Score(p Point) string { return fmt.Sprintf("%.3g", p.AnomalyScore) }
