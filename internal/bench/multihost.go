package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/cloudsim"
	"ycsbt/internal/measurement"
	"ycsbt/internal/multi"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

// MultiHostPoint is one cell of the multi-host sweep.
type MultiHostPoint struct {
	Instances       int     `json:"instances"`
	ThreadsEach     int     `json:"threads_each"`
	TotalThroughput float64 `json:"total_throughput"`
	TotalOperations int64   `json:"total_operations"`
}

// MultiHost reproduces the paper's Section V-A observation: against a
// rate-capped container, splitting a fixed total thread count across
// several client instances ("EC2 hosts") leaves the aggregate
// throughput roughly unchanged — evidence that the container request
// rate, not the client host, is the bottleneck. The sweep holds
// instances × threads = totalThreads constant.
func MultiHost(ctx context.Context, o SweepOptions) ([]MultiHostPoint, error) {
	o = o.withDefaults(nil)
	totalThreads := 16
	splits := []int{1, 2, 4, 8}
	if o.Quick {
		splits = []int{1, 4}
	}
	var out []MultiHostPoint
	for _, instances := range splits {
		threadsEach := totalThreads / instances
		pt, err := multiHostCell(ctx, o, instances, threadsEach)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
		o.logf("multi-host %d×%d: %.1f txn/s total", instances, threadsEach, pt.TotalThroughput)
	}
	return out, nil
}

func multiHostCell(ctx context.Context, o SweepOptions, instances, threadsEach int) (MultiHostPoint, error) {
	inner := o.newInner()
	defer inner.Close()

	// Pre-load the shared store through the zero-latency path.
	loadM, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", inner))
	if err != nil {
		return MultiHostPoint{}, err
	}
	p := cewProps(o, threadsEach, 0.9)
	lw, err := workload.New("closedeconomy")
	if err != nil {
		return MultiHostPoint{}, err
	}
	if err := lw.Init(p, nil); err != nil {
		return MultiHostPoint{}, err
	}
	loadCfg := client.BuildConfig(p)
	loadCfg.Threads = 16
	loadCfg.SkipValidation = true
	lc, err := client.New(loadCfg, lw, txn.NewBinding(loadM), nil)
	if err != nil {
		return MultiHostPoint{}, err
	}
	if _, err := lc.Load(ctx); err != nil {
		return MultiHostPoint{}, err
	}

	// The shared rate-capped container.
	cfg := cloudsim.Config{
		Name:         "was",
		ReadLatency:  500 * time.Microsecond,
		WriteLatency: time.Millisecond,
		RateLimit:    2000,
	}
	cloud := cloudsim.NewOver(cfg, inner)

	clients := make([]*client.Client, instances)
	for i := range clients {
		m, err := txn.NewManager(txn.Options{}, cloud)
		if err != nil {
			return MultiHostPoint{}, err
		}
		ip := cewProps(o, threadsEach, 0.9)
		ip.Set("seed", fmt.Sprint(42+i*1000))
		w, err := workload.New("closedeconomy")
		if err != nil {
			return MultiHostPoint{}, err
		}
		reg := measurement.NewRegistry(0)
		if err := w.Init(ip, reg); err != nil {
			return MultiHostPoint{}, err
		}
		runCfg := client.BuildConfig(ip)
		runCfg.SkipValidation = true
		runCfg.MaxExecutionTime = o.CellTime
		c, err := client.New(runCfg, w, txn.NewBinding(m), reg)
		if err != nil {
			return MultiHostPoint{}, err
		}
		clients[i] = c
	}
	res, err := multi.Run(ctx, clients)
	if err != nil {
		return MultiHostPoint{}, err
	}
	return MultiHostPoint{
		Instances:       instances,
		ThreadsEach:     threadsEach,
		TotalThroughput: res.TotalThroughput,
		TotalOperations: res.TotalOperations,
	}, nil
}

// PrintMultiHost renders the multi-host sweep.
func PrintMultiHost(w io.Writer, points []MultiHostPoint) {
	title := "Section V-A claim: aggregate throughput vs client-instance split (rate-capped container)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-20s %18s\n", "instances × threads", "total txn/sec")
	for _, pt := range points {
		fmt.Fprintf(w, "%-20s %18.1f\n",
			fmt.Sprintf("%d × %d", pt.Instances, pt.ThreadsEach), pt.TotalThroughput)
	}
	fmt.Fprintln(w)
}
