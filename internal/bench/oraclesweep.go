package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ycsbt/internal/cloudsim"
	"ycsbt/internal/oracle"
	"ycsbt/internal/percolator"
	"ycsbt/internal/txn"
)

// OracleSweep quantifies the paper's Section II-B architectural
// claim: Percolator-style protocols "depend on a central
// fault-tolerant timestamp service ... making this technique
// unsuitable for client applications spread across relatively
// high-latency WANs", while the client-coordinated design "does not
// rely upon a central timestamp manager".
//
// Both protocols run the same CEW 90:10 workload against identical
// simulated stores; the sweep variable is the round-trip time to the
// timestamp oracle. The client-coordinated library never contacts an
// oracle, so its curve is flat; the Percolator-style baseline pays
// one RTT per read-only transaction and two per read-write
// transaction, so its throughput collapses as the oracle moves away.
func OracleSweep(ctx context.Context, o SweepOptions) ([]Series, error) {
	o = o.withDefaults(nil)
	rtts := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	if o.Quick {
		rtts = []time.Duration{0, 5 * time.Millisecond}
	}
	const threads = 16

	// A mild store profile isolates the oracle effect: enough latency
	// for threads to matter, no rate cap or pool contention.
	storeCfg := cloudsim.Config{
		Name:         "was",
		ReadLatency:  time.Millisecond,
		WriteLatency: 2 * time.Millisecond,
	}

	perc := Series{Label: "percolator (central TO)"}
	cherry := Series{Label: "client-coordinated"}
	for _, rtt := range rtts {
		// Percolator-style with a Delayed oracle.
		{
			inner := o.newInner()
			cloud := cloudsim.NewOver(storeCfg, inner)
			to := oracle.NewDelayed(oracle.NewLocal(), rtt)
			loadM, err := percolator.NewManager(percolator.Options{},
				txn.NewLocalStore("was", inner), oracle.NewLocal())
			if err != nil {
				return nil, err
			}
			runM, err := percolator.NewManager(percolator.Options{}, cloud, to)
			if err != nil {
				return nil, err
			}
			p := cewProps(o, threads, 0.9)
			res, v, err := runCell(ctx, p, percolator.NewBinding(loadM), percolator.NewBinding(runM), o.CellTime)
			inner.Close()
			if err != nil {
				return nil, err
			}
			perc.Points = append(perc.Points, Point{
				Threads:      int(rtt.Milliseconds()), // x-axis is RTT (ms)
				Throughput:   res.Throughput,
				AnomalyScore: v.AnomalyScore,
				Operations:   res.Operations,
				Aborts:       res.Aborts,
			})
			o.logf("oracle-sweep percolator rtt=%v: %.1f txn/s", rtt, res.Throughput)
		}
		// Client-coordinated over the same store profile (no oracle).
		{
			inner := o.newInner()
			cloud := cloudsim.NewOver(storeCfg, inner)
			loadM, err := txn.NewManager(txn.Options{}, txn.NewLocalStore("was", inner))
			if err != nil {
				return nil, err
			}
			runM, err := txn.NewManager(txn.Options{}, cloud)
			if err != nil {
				return nil, err
			}
			p := cewProps(o, threads, 0.9)
			res, v, err := runCell(ctx, p, txn.NewBinding(loadM), txn.NewBinding(runM), o.CellTime)
			inner.Close()
			if err != nil {
				return nil, err
			}
			cherry.Points = append(cherry.Points, Point{
				Threads:      int(rtt.Milliseconds()),
				Throughput:   res.Throughput,
				AnomalyScore: v.AnomalyScore,
				Operations:   res.Operations,
				Aborts:       res.Aborts,
			})
			o.logf("oracle-sweep client-coordinated rtt=%v: %.1f txn/s", rtt, res.Throughput)
		}
	}
	return []Series{perc, cherry}, nil
}

// PrintOracleSweep renders the oracle sweep with an RTT x-axis.
func PrintOracleSweep(wr io.Writer, series []Series) {
	title := "Section II-B claim: central timestamp oracle vs client-coordinated, by oracle RTT"
	fmt.Fprintf(wr, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(wr, "%-12s", "oracle RTT")
	for _, s := range series {
		fmt.Fprintf(wr, " %26s", s.Label)
	}
	fmt.Fprintf(wr, "   (txn/sec)\n")
	if len(series) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(wr, "%-12s", fmt.Sprintf("%dms", series[0].Points[i].Threads))
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(wr, " %26.1f", s.Points[i].Throughput)
			}
		}
		fmt.Fprintln(wr)
	}
	fmt.Fprintln(wr)
}
