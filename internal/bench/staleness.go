package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/replica"
)

// StalenessPoint is one cell of the staleness probe: how often a read
// issued delay after a write still returns the old value.
type StalenessPoint struct {
	DelayMS       float64 `json:"delay_ms"`
	Probes        int     `json:"probes"`
	Stale         int     `json:"stale"`
	StaleFraction float64 `json:"stale_fraction"`
}

// StalenessProbe reproduces the experiment style of Wada et al. (CIDR
// 2011), which the paper cites as the alternative consistency-
// measurement approach to its own Tier 6 ("measured the probability
// of returning stale values, as a function of how much time had
// elapsed between the latest write and the read"). The probe runs
// against the asynchronously replicated store reading from backups:
// write a new value, wait `delay`, read from a backup, and record
// whether the read returned the pre-write value.
func StalenessProbe(ctx context.Context, replicaLag time.Duration, delays []time.Duration, probesPerDelay int) ([]StalenessPoint, error) {
	if probesPerDelay <= 0 {
		probesPerDelay = 50
	}
	if len(delays) == 0 {
		delays = []time.Duration{0, replicaLag / 2, replicaLag, 2 * replicaLag}
	}
	s, err := replica.New(replica.Config{
		Name:       "probe",
		Backups:    1,
		Mode:       replica.Async,
		ReadPolicy: replica.ReadBackup,
		ReplicaLag: replicaLag,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	// Seed the key and let it settle.
	if _, err := s.Put(ctx, "t", "probe", value(0), kvstore.AnyVersion); err != nil {
		return nil, err
	}
	s.Flush()

	out := make([]StalenessPoint, 0, len(delays))
	gen := 0
	for _, delay := range delays {
		pt := StalenessPoint{DelayMS: float64(delay.Microseconds()) / 1000, Probes: probesPerDelay}
		for i := 0; i < probesPerDelay; i++ {
			gen++
			if _, err := s.Put(ctx, "t", "probe", value(gen), kvstore.AnyVersion); err != nil {
				return nil, err
			}
			if delay > 0 {
				if err := sleepFor(ctx, delay); err != nil {
					return nil, err
				}
			}
			rec, err := s.Get(ctx, "t", "probe")
			switch {
			case err == nil:
				if string(rec.Fields["gen"]) != fmt.Sprint(gen) {
					pt.Stale++
				}
			case errors.Is(err, kvstore.ErrNotFound):
				pt.Stale++ // nothing replicated yet: maximally stale
			default:
				return nil, err
			}
			// Settle before the next probe so staleness measures this
			// write only.
			s.Flush()
		}
		pt.StaleFraction = float64(pt.Stale) / float64(pt.Probes)
		out = append(out, pt)
	}
	return out, nil
}

func value(gen int) map[string][]byte {
	return map[string][]byte{"gen": []byte(fmt.Sprint(gen))}
}

func sleepFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PrintStaleness renders the probe results.
func PrintStaleness(w io.Writer, replicaLag time.Duration, points []StalenessPoint) {
	title := fmt.Sprintf("Staleness probe (Wada et al. style): async replication, backup reads, lag %v", replicaLag)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-18s %8s %8s %14s\n", "delay after write", "probes", "stale", "P(stale read)")
	for _, pt := range points {
		fmt.Fprintf(w, "%-18s %8d %8d %14.2f\n",
			fmt.Sprintf("%.1fms", pt.DelayMS), pt.Probes, pt.Stale, pt.StaleFraction)
	}
	fmt.Fprintln(w)
}
