// Package trace implements execution-trace capture and
// dependency-graph serializability checking — the alternative
// consistency-measurement approach the paper discusses in its related
// work ("A different approach to measure consistency is found in
// Zellag and Kemme where the execution trace is captured, and the
// non-serializable executions are detected by cycles in the
// dependency graph").
//
// A Recorder collects, per committed transaction, which record
// versions it read and which versions it installed. From the trace a
// direct serialization graph (DSG) is built:
//
//   - WR (read-from): Ti installed version v of x, Tj read v  → Ti → Tj
//   - WW (write-after-write): Ti installed version v of x, Tj
//     installed the next version of x                         → Ti → Tj
//   - RW (anti-dependency): Ti read version v of x, Tj installed
//     the next version of x                                   → Ti → Tj
//
// A serializable execution yields an acyclic DSG; every strongly
// connected component with more than one transaction is a
// serializability violation. Snapshot isolation's write skew, for
// example, shows up as a cycle of two RW edges — detectable here even
// when an application-level invariant (Tier 6) happens not to be
// disturbed.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Access is one recorded read or write.
type Access struct {
	// Txn identifies the committed transaction.
	Txn string
	// Key identifies the record (store/table/key composite).
	Key string
	// Version is the record version read, or installed by a write.
	Version uint64
	// Write distinguishes installs from reads.
	Write bool
}

// AccessSink receives batches of accesses from a streaming Recorder,
// which hands them off instead of retaining them so long traced runs
// stay memory-bounded. history.Sink implements it (spilled accesses
// become durable NDJSON lines the offline checker replays).
// Implementations must be safe for concurrent use; a handed-off batch
// must not be mutated by the recorder afterwards.
type AccessSink interface {
	SpillAccesses([]Access)
}

// recorderStripes is the number of lock stripes. Like
// internal/measurement's per-thread shards, striping keeps concurrent
// committers off one mutex; the count is fixed and modest because a
// stripe is only held for an append.
const recorderStripes = 32

// DefaultSpillBatch is the per-stripe batch size at which a streaming
// recorder hands accesses to its sink.
const DefaultSpillBatch = 1024

// stripe is one lock shard, padded so adjacent stripes do not share a
// cache line under concurrent commit storms.
type stripe struct {
	mu       sync.Mutex
	accesses []Access
	_        [24]byte
}

// Recorder accumulates accesses of committed transactions. It is safe
// for concurrent use: accesses are striped by transaction id, so
// concurrent committers contend only when they hash to the same
// stripe. A plain recorder retains everything for Check; a streaming
// recorder (NewStreamingRecorder) spills full batches to an
// AccessSink and retains only the unspilled remainder.
type Recorder struct {
	stripes [recorderStripes]stripe
	sink    AccessSink
	batch   int
	spilled atomic.Int64
}

// NewRecorder returns an empty retaining recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewStreamingRecorder returns a recorder that hands each stripe's
// accesses to sink whenever batch accumulate (batch <= 0 uses
// DefaultSpillBatch). Call Flush when the run ends to spill the
// remainder. Check only covers retained accesses; a spilled trace is
// checked offline from the sink's output (cmd/histcheck).
func NewStreamingRecorder(sink AccessSink, batch int) *Recorder {
	if batch <= 0 {
		batch = DefaultSpillBatch
	}
	return &Recorder{sink: sink, batch: batch}
}

// Read records that txn read version of key.
func (r *Recorder) Read(txn, key string, version uint64) {
	r.add(Access{Txn: txn, Key: key, Version: version})
}

// Write records that txn installed version of key.
func (r *Recorder) Write(txn, key string, version uint64) {
	r.add(Access{Txn: txn, Key: key, Version: version, Write: true})
}

// stripeFor picks the stripe by FNV-1a hash of the txn id, keeping
// one transaction's accesses together.
func (r *Recorder) stripeFor(txn string) *stripe {
	h := uint32(2166136261)
	for i := 0; i < len(txn); i++ {
		h = (h ^ uint32(txn[i])) * 16777619
	}
	return &r.stripes[h%recorderStripes]
}

func (r *Recorder) add(a Access) {
	s := r.stripeFor(a.Txn)
	s.mu.Lock()
	s.accesses = append(s.accesses, a)
	if r.sink != nil && len(s.accesses) >= r.batch {
		out := s.accesses
		s.accesses = nil
		s.mu.Unlock()
		r.spilled.Add(int64(len(out)))
		r.sink.SpillAccesses(out)
		return
	}
	s.mu.Unlock()
}

// Flush hands any retained accesses to the sink (no-op for a
// retaining recorder).
func (r *Recorder) Flush() {
	if r.sink == nil {
		return
	}
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		out := s.accesses
		s.accesses = nil
		s.mu.Unlock()
		if len(out) > 0 {
			r.spilled.Add(int64(len(out)))
			r.sink.SpillAccesses(out)
		}
	}
}

// Len returns the number of recorded accesses, spilled included.
func (r *Recorder) Len() int {
	n := int(r.spilled.Load())
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += len(s.accesses)
		s.mu.Unlock()
	}
	return n
}

// Accesses returns a copy of the retained (unspilled) accesses.
func (r *Recorder) Accesses() []Access {
	var out []Access
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		out = append(out, s.accesses...)
		s.mu.Unlock()
	}
	return out
}

// Report is the outcome of a serializability check.
type Report struct {
	// Transactions is the number of distinct transactions traced.
	Transactions int
	// Edges is the number of DSG dependency edges.
	Edges int
	// Violations lists the non-serializable groups: each is the set
	// of transaction ids forming one strongly connected component of
	// size > 1.
	Violations [][]string
}

// Serializable reports whether no violation was found.
func (rep *Report) Serializable() bool { return len(rep.Violations) == 0 }

// String summarizes the report.
func (rep *Report) String() string {
	return fmt.Sprintf("trace: %d txns, %d edges, %d non-serializable groups",
		rep.Transactions, rep.Edges, len(rep.Violations))
}

// Check builds the dependency graph from the recorded trace and
// returns the violations.
func (r *Recorder) Check() *Report {
	return CheckAccesses(r.Accesses())
}

// CheckAccesses runs the serializability check over an explicit
// access list.
func CheckAccesses(accesses []Access) *Report {
	// Group by key: writers ordered by version, readers by the
	// version they saw.
	type keyHistory struct {
		writeVersions []uint64          // sorted unique installed versions
		writerOf      map[uint64]string // version → txn
		readers       map[uint64][]string
	}
	hist := map[string]*keyHistory{}
	txns := map[string]bool{}
	for _, a := range accesses {
		txns[a.Txn] = true
		h := hist[a.Key]
		if h == nil {
			h = &keyHistory{writerOf: map[uint64]string{}, readers: map[uint64][]string{}}
			hist[a.Key] = h
		}
		if a.Write {
			if _, dup := h.writerOf[a.Version]; !dup {
				h.writeVersions = append(h.writeVersions, a.Version)
			}
			h.writerOf[a.Version] = a.Txn
		} else {
			h.readers[a.Version] = append(h.readers[a.Version], a.Txn)
		}
	}

	// Build adjacency.
	adj := map[string]map[string]bool{}
	addEdge := func(from, to string) {
		if from == to || from == "" || to == "" {
			return
		}
		m := adj[from]
		if m == nil {
			m = map[string]bool{}
			adj[from] = m
		}
		m[to] = true
	}
	for _, h := range hist {
		sort.Slice(h.writeVersions, func(i, j int) bool { return h.writeVersions[i] < h.writeVersions[j] })
		for i, v := range h.writeVersions {
			writer := h.writerOf[v]
			// WW: consecutive installed versions.
			if i+1 < len(h.writeVersions) {
				addEdge(writer, h.writerOf[h.writeVersions[i+1]])
			}
			// WR: everyone who read v depends on its writer.
			for _, reader := range h.readers[v] {
				addEdge(writer, reader)
			}
		}
		// RW: a reader of version v precedes the writer that
		// installed the next version after v.
		for v, readers := range h.readers {
			next, ok := nextVersionAfter(h.writeVersions, v)
			if !ok {
				continue
			}
			for _, reader := range readers {
				addEdge(reader, h.writerOf[next])
			}
		}
	}

	edges := 0
	for _, m := range adj {
		edges += len(m)
	}
	rep := &Report{Transactions: len(txns), Edges: edges}

	// Tarjan SCC over all traced transactions.
	for _, comp := range tarjan(txns, adj) {
		if len(comp) > 1 {
			sort.Strings(comp)
			rep.Violations = append(rep.Violations, comp)
		}
	}
	return rep
}

// nextVersionAfter returns the smallest installed version > v.
func nextVersionAfter(sorted []uint64, v uint64) (uint64, bool) {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	if i == len(sorted) {
		return 0, false
	}
	return sorted[i], true
}

// tarjan computes strongly connected components iteratively.
func tarjan(nodes map[string]bool, adj map[string]map[string]bool) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	counter := 0

	type frame struct {
		node string
		succ []string
		i    int
	}
	successors := func(n string) []string {
		out := make([]string, 0, len(adj[n]))
		for s := range adj[n] {
			out = append(out, s)
		}
		sort.Strings(out) // deterministic traversal
		return out
	}

	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	for _, root := range order {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root, succ: successors(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				next := f.succ[f.i]
				f.i++
				if _, seen := index[next]; !seen {
					index[next] = counter
					low[next] = counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					frames = append(frames, frame{node: next, succ: successors(next)})
				} else if onStack[next] {
					if index[next] < low[f.node] {
						low[f.node] = index[next]
					}
				}
				continue
			}
			// Pop the frame.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
