package trace

import (
	"sync"
	"time"

	"ycsbt/internal/db"
)

// OpEvent is one operation observed by the trace middleware: which
// operation ran, against what, how long it took and how it ended.
// Unlike the version-level Recorder (which needs binding cooperation
// to learn record versions), OpEvents are captured generically at the
// db.Middleware layer for any binding.
type OpEvent struct {
	// Op is the operation's series name ("READ", "COMMIT", …).
	Op string
	// Table and Key locate the target ("" for Start/Commit/Abort).
	Table string
	Key   string
	// Latency is the observed wall-clock duration, including
	// everything stacked inside the trace middleware.
	Latency time.Duration
	// Code is the db return code of the outcome (0 = OK).
	Code int
	// Items is how many logical operations the event covers: 1 for
	// single operations, the coalesced item count for BATCH-* flush
	// events.
	Items int
}

// OpLog is a bounded operation log implementing db.OpObserver: plug
// it into the "trace" middleware (db.Traced) and every operation
// flowing through the chain is appended. It keeps the most recent max
// events in a ring while counting all of them, so long runs stay
// bounded in memory. Safe for concurrent use; the log is opt-in
// diagnostics, not a benchmark hot path.
type OpLog struct {
	mu    sync.Mutex
	ring  []OpEvent
	next  int   // ring write cursor
	total int64 // events ever observed
}

// DefaultOpLogSize bounds an OpLog when no capacity is given.
const DefaultOpLogSize = 1 << 16

// NewOpLog returns a log retaining the latest max events (max <= 0
// takes DefaultOpLogSize).
func NewOpLog(max int) *OpLog {
	if max <= 0 {
		max = DefaultOpLogSize
	}
	return &OpLog{ring: make([]OpEvent, 0, max)}
}

// ObserveOp implements db.OpObserver.
func (l *OpLog) ObserveOp(info db.OpInfo, latency time.Duration, err error) {
	items := info.Items
	if items <= 0 {
		items = 1
	}
	ev := OpEvent{
		Op:      info.Op.Series(),
		Table:   info.Table,
		Key:     info.Key,
		Latency: latency,
		Code:    db.ReturnCode(err),
		Items:   items,
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % len(l.ring)
	}
	l.total++
	l.mu.Unlock()
}

// Total returns how many events were observed over the log's life,
// including ones the ring has since dropped.
func (l *OpLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events, oldest first.
func (l *OpLog) Events() []OpEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]OpEvent, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

var _ db.OpObserver = (*OpLog)(nil)
