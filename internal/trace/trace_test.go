package trace

import (
	"testing"
	"testing/quick"
)

func TestEmptyTrace(t *testing.T) {
	rep := NewRecorder().Check()
	if !rep.Serializable() || rep.Transactions != 0 || rep.Edges != 0 {
		t.Errorf("empty trace = %+v", rep)
	}
}

func TestSerialHistoryIsSerializable(t *testing.T) {
	r := NewRecorder()
	// T1 writes x@1, T2 reads x@1 and writes x@2, T3 reads x@2.
	r.Write("T1", "x", 1)
	r.Read("T2", "x", 1)
	r.Write("T2", "x", 2)
	r.Read("T3", "x", 2)
	rep := r.Check()
	if !rep.Serializable() {
		t.Errorf("serial history flagged: %+v", rep)
	}
	if rep.Transactions != 3 {
		t.Errorf("transactions = %d", rep.Transactions)
	}
	if rep.Edges == 0 {
		t.Error("no edges built")
	}
	if rep.String() == "" {
		t.Error("empty String()")
	}
}

func TestLostUpdateCycleDetected(t *testing.T) {
	// Classic lost update: both read x@1, both write (T1 installs 2,
	// T2 installs 3). RW: T1→T2 (T1 read 1, T2 wrote next-after-1? no:
	// next after 1 is 2, written by T1 itself — skip self). T2 read 1,
	// next version after 1 is 2 by T1 → T2→T1. WW: T1→T2. So cycle
	// T1→T2 (WW) and T2→T1 (RW).
	r := NewRecorder()
	r.Read("T1", "x", 1)
	r.Read("T2", "x", 1)
	r.Write("T1", "x", 2)
	r.Write("T2", "x", 3)
	rep := r.Check()
	if rep.Serializable() {
		t.Fatalf("lost update not detected: %+v", rep)
	}
	if len(rep.Violations) != 1 || len(rep.Violations[0]) != 2 {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestWriteSkewCycleDetected(t *testing.T) {
	// Write skew: T1 reads x@1,y@1 writes x@2; T2 reads x@1,y@1
	// writes y@2. RW edges: T1 read y@1 → T2 (wrote y@2); T2 read
	// x@1 → T1 (wrote x@2). Pure anti-dependency cycle.
	r := NewRecorder()
	r.Read("T1", "x", 1)
	r.Read("T1", "y", 1)
	r.Write("T1", "x", 2)
	r.Read("T2", "x", 1)
	r.Read("T2", "y", 1)
	r.Write("T2", "y", 2)
	rep := r.Check()
	if rep.Serializable() {
		t.Fatalf("write skew not detected: %+v", rep)
	}
}

func TestSnapshotNonCycleNotFlagged(t *testing.T) {
	// T1 reads x@1 then T2 writes x@2: a single RW edge, no cycle.
	r := NewRecorder()
	r.Write("T0", "x", 1)
	r.Read("T1", "x", 1)
	r.Write("T2", "x", 2)
	rep := r.Check()
	if !rep.Serializable() {
		t.Errorf("acyclic history flagged: %+v", rep)
	}
}

func TestThreeWayCycle(t *testing.T) {
	// T1 → T2 → T3 → T1 via RW edges across three keys.
	r := NewRecorder()
	r.Write("T0", "x", 1)
	r.Write("T0", "y", 1)
	r.Write("T0", "z", 1)
	r.Read("T1", "x", 1)
	r.Write("T2", "x", 2)
	r.Read("T2", "y", 1)
	r.Write("T3", "y", 2)
	r.Read("T3", "z", 1)
	r.Write("T1", "z", 2)
	rep := r.Check()
	if rep.Serializable() {
		t.Fatal("3-cycle not detected")
	}
	if len(rep.Violations[0]) != 3 {
		t.Errorf("component = %v", rep.Violations[0])
	}
	// T0 is not part of the violation.
	for _, txn := range rep.Violations[0] {
		if txn == "T0" {
			t.Error("T0 wrongly included")
		}
	}
}

func TestDisjointKeysNeverCycle(t *testing.T) {
	// Property: transactions touching disjoint keys are always
	// serializable.
	f := func(raw []uint8) bool {
		r := NewRecorder()
		for i, b := range raw {
			txn := string(rune('A' + i%26))
			key := txn + "-private" // one key per txn
			if b%2 == 0 {
				r.Write(txn, key, uint64(b)+1)
			} else {
				r.Read(txn, key, uint64(b))
			}
		}
		return r.Check().Serializable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVersionOrderDefinesWW(t *testing.T) {
	// Writers recorded out of order must still chain by version.
	r := NewRecorder()
	r.Write("T3", "x", 30)
	r.Write("T1", "x", 10)
	r.Write("T2", "x", 20)
	rep := r.Check()
	if !rep.Serializable() {
		t.Errorf("WW chain flagged: %+v", rep)
	}
	if rep.Edges != 2 {
		t.Errorf("edges = %d, want 2 (T1→T2→T3)", rep.Edges)
	}
}

func TestAccessesCopy(t *testing.T) {
	r := NewRecorder()
	r.Write("T1", "x", 1)
	a := r.Accesses()
	if len(a) != 1 || r.Len() != 1 {
		t.Fatalf("accesses = %v", a)
	}
	a[0].Txn = "mutated"
	if r.Accesses()[0].Txn != "T1" {
		t.Error("Accesses returned aliased storage")
	}
}
