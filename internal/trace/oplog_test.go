package trace

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ycsbt/internal/db"
)

func TestOpLogObserveFields(t *testing.T) {
	l := NewOpLog(8)
	l.ObserveOp(db.OpInfo{Op: db.OpRead, Table: "usertable", Key: "user42"}, 5*time.Millisecond, db.ErrNotFound)
	l.ObserveOp(db.OpInfo{Op: db.OpCommit}, time.Millisecond, nil)
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("Events len = %d", len(evs))
	}
	e := evs[0]
	if e.Op != "READ" || e.Table != "usertable" || e.Key != "user42" {
		t.Errorf("event = %+v", e)
	}
	if e.Latency != 5*time.Millisecond || e.Code != db.CodeNotFound {
		t.Errorf("latency/code = %v/%d", e.Latency, e.Code)
	}
	if evs[1].Op != "COMMIT" || evs[1].Code != db.CodeOK {
		t.Errorf("commit event = %+v", evs[1])
	}
}

func TestOpLogRingWraparound(t *testing.T) {
	l := NewOpLog(4)
	for i := 0; i < 10; i++ {
		l.ObserveOp(db.OpInfo{Op: db.OpRead, Key: fmt.Sprintf("k%d", i)}, 0, nil)
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	// Oldest-first: the ring keeps the latest 4 of 10.
	for i, e := range evs {
		if want := fmt.Sprintf("k%d", 6+i); e.Key != want {
			t.Errorf("event %d key = %q, want %q", i, e.Key, want)
		}
	}
}

func TestOpLogDefaultSize(t *testing.T) {
	l := NewOpLog(0)
	if got := cap(l.ring); got != DefaultOpLogSize {
		t.Errorf("default capacity = %d, want %d", got, DefaultOpLogSize)
	}
}

func TestOpLogConcurrent(t *testing.T) {
	l := NewOpLog(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			l.ObserveOp(db.OpInfo{Op: db.OpUpdate}, time.Microsecond, errors.New("x"))
		}
	}()
	for i := 0; i < 100; i++ {
		if got := int64(len(l.Events())); got > l.Total() {
			t.Fatalf("retained %d events with total %d", got, l.Total())
		}
	}
	<-done
	if l.Total() != 2000 {
		t.Errorf("Total = %d", l.Total())
	}
}
