package workload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/generator"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// ClosedEconomyWorkload (CEW) is the paper's Section IV-C workload: a
// simplified simulation of a closed economy in which money neither
// enters nor exits the system during the evaluation period. A fixed
// number of accounts share a fixed amount of total cash, initially
// distributed evenly. Every operation preserves the invariant
//
//	Σ account balances + escrow pot == totalcash
//
// when executed serializably, so any drift measures isolation
// anomalies (lost updates and the like). Operations follow the paper:
//
//   - doTransactionRead: read an account chosen by the key generator.
//   - doTransactionScan: scan a key range.
//   - doTransactionUpdate: read an account, add $1 captured from
//     delete operations (the escrow pot), write it back.
//   - doTransactionDelete: read an account, capture its balance into
//     the pot, delete the record.
//   - doTransactionInsert: create a new account with a balance
//     captured from the pot.
//   - doTransactionReadModifyWrite: read two accounts, move $1 from
//     one to the other, write both back.
//
// The validation phase (Tier 6) iterates every record, sums the
// balances and compares against totalcash, reporting the paper's
// simple anomaly score γ = |S_initial − S_final| / n.
//
// Properties (defaults in parentheses): recordcount (10000),
// totalcash (recordcount × 1000, i.e. $1000 per account),
// readproportion (0.9), updateproportion (0), insertproportion (0),
// scanproportion (0), deleteproportion (0),
// readmodifywriteproportion (0.1), requestdistribution (zipfian),
// table (usertable), zeropadding (12), seed (42),
// cew.validatebatch (1000).
type ClosedEconomyWorkload struct {
	table       string
	recordCount int64
	totalCash   int64
	distName    string
	zeroPadding int
	seed        int64
	batchSize   int

	opChooser   *generator.Discrete
	insertSeq   *generator.AcknowledgedCounter
	loadCounter *generator.Counter
	reg         *measurement.Registry

	// pot is the escrow holding cash captured by deletes until an
	// insert or update returns it to an account. It is client-side
	// state, updated atomically, so it never contributes anomalies of
	// its own.
	pot atomic.Int64
	// ops counts executed operations: the n of the anomaly score.
	ops atomic.Int64
}

// NewClosedEconomy returns an uninitialized CEW.
func NewClosedEconomy() *ClosedEconomyWorkload { return &ClosedEconomyWorkload{} }

func init() {
	Register("closedeconomy", func() Workload { return NewClosedEconomy() })
	Register("com.yahoo.ycsb.workloads.ClosedEconomyWorkload", func() Workload { return NewClosedEconomy() })
}

type cewThreadState struct {
	r         *rand.Rand
	keyChoose generator.Integer
	scanLen   generator.Integer
	opChoose  *generator.Discrete
	loadSeq   *generator.Counter // shared; see Init
	rmw       *measurement.SeriesRecorder

	// potDelta is the net escrow-pot change made by the operation
	// currently wrapped in a transaction; OnAbort reverses it when
	// that transaction rolls back.
	potDelta int64
}

// Init implements Workload.
func (c *ClosedEconomyWorkload) Init(p *properties.Properties, reg *measurement.Registry) error {
	c.reg = reg
	c.table = p.GetString("table", "usertable")
	c.recordCount = p.GetInt64("recordcount", 10000)
	if c.recordCount <= 0 {
		return fmt.Errorf("workload: recordcount must be positive, got %d", c.recordCount)
	}
	c.totalCash = p.GetInt64("totalcash", c.recordCount*1000)
	if c.totalCash < c.recordCount {
		return fmt.Errorf("workload: totalcash %d cannot give every one of %d accounts a balance", c.totalCash, c.recordCount)
	}
	c.distName = p.GetString("requestdistribution", "zipfian")
	c.zeroPadding = p.GetInt("zeropadding", 12)
	c.seed = p.GetInt64("seed", 42)
	c.batchSize = p.GetInt("cew.validatebatch", 1000)

	read := p.GetFloat("readproportion", 0.9)
	update := p.GetFloat("updateproportion", 0)
	insert := p.GetFloat("insertproportion", 0)
	scan := p.GetFloat("scanproportion", 0)
	del := p.GetFloat("deleteproportion", 0)
	rmw := p.GetFloat("readmodifywriteproportion", 0.1)
	c.opChooser = generator.NewDiscrete()
	for _, e := range []struct {
		op   OpType
		prop float64
	}{
		{OpRead, read}, {OpUpdate, update}, {OpInsert, insert},
		{OpScan, scan}, {OpDelete, del}, {OpRMW, rmw},
	} {
		if e.prop < 0 {
			return fmt.Errorf("workload: negative proportion for %s", e.op)
		}
		c.opChooser.Add(e.prop, string(e.op))
	}
	c.insertSeq = generator.NewAcknowledgedCounter(c.recordCount)
	c.loadCounter = generator.NewCounter(0)
	return nil
}

// InitThread implements Workload.
func (c *ClosedEconomyWorkload) InitThread(id, count int) (ThreadState, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: thread count %d", count)
	}
	ts := &cewThreadState{r: threadRand(c.seed, id), opChoose: c.opChooser.Clone(), loadSeq: c.loadCounter}
	switch c.distName {
	case "uniform":
		ts.keyChoose = generator.NewUniform(0, c.recordCount-1)
	case "zipfian":
		ts.keyChoose = generator.NewScrambledZipfian(0, c.recordCount-1)
	case "latest":
		ts.keyChoose = generator.NewSkewedLatest(c.insertSeq)
	case "sequential":
		ts.keyChoose = generator.NewSequential(0, c.recordCount-1)
	case "hotspot":
		ts.keyChoose = generator.NewHotspot(0, c.recordCount-1, 0.2, 0.8)
	default:
		return nil, fmt.Errorf("workload: unknown requestdistribution %q", c.distName)
	}
	ts.scanLen = generator.NewUniform(1, 100)
	if c.reg != nil {
		// Thread-private series handle: the RMW hot path writes to its
		// own shard instead of funnelling through the shared one.
		ts.rmw = c.reg.Recorder().Series(string(OpRMW))
	}
	return ts, nil
}

// keyName formats account number keynum, zero-padded so lexicographic
// scan order matches numeric order.
func (c *ClosedEconomyWorkload) keyName(keynum int64) string {
	s := strconv.FormatInt(keynum, 10)
	if pad := c.zeroPadding - len(s); pad > 0 {
		buf := make([]byte, 0, c.zeroPadding+4)
		buf = append(buf, "user"...)
		for i := 0; i < pad; i++ {
			buf = append(buf, '0')
		}
		return string(append(buf, s...))
	}
	return "user" + s
}

func balanceRecord(amount int64) db.Record {
	return db.Record{"field0": []byte(strconv.FormatInt(amount, 10))}
}

func parseBalance(rec db.Record) (int64, error) {
	raw, ok := rec["field0"]
	if !ok {
		return 0, errors.New("workload: record has no field0 balance")
	}
	n, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: unparsable balance %q: %w", raw, err)
	}
	return n, nil
}

// initialBalance computes account i's share of total cash: even
// split, with the first accounts absorbing the remainder so the sum
// is exactly totalcash.
func (c *ClosedEconomyWorkload) initialBalance(keynum int64) int64 {
	share := c.totalCash / c.recordCount
	if keynum < c.totalCash%c.recordCount {
		return share + 1
	}
	return share
}

// Load implements Workload: insert one account with its initial
// balance (paper: "Each key denotes an account number and is assigned
// an initial balance ... set to a portion of the amount set by the
// workload parameter total_cash").
func (c *ClosedEconomyWorkload) Load(ctx context.Context, d db.DB, ts ThreadState) error {
	s := ts.(*cewThreadState)
	keynum := s.loadSeq.Next(s.r)
	if keynum >= c.recordCount {
		return fmt.Errorf("workload: load overran recordcount (%d)", keynum)
	}
	return d.Insert(ctx, c.table, c.keyName(keynum), balanceRecord(c.initialBalance(keynum)))
}

// Do implements Workload: one closed-economy operation.
func (c *ClosedEconomyWorkload) Do(ctx context.Context, d db.DB, ts ThreadState) (OpType, error) {
	s := ts.(*cewThreadState)
	s.potDelta = 0
	op := OpType(s.opChoose.NextString(s.r))
	var err error
	switch op {
	case OpRead:
		err = c.doRead(ctx, d, s)
	case OpUpdate:
		err = c.doUpdate(ctx, d, s)
	case OpInsert:
		err = c.doInsert(ctx, d, s)
	case OpScan:
		err = c.doScan(ctx, d, s)
	case OpDelete:
		err = c.doDelete(ctx, d, s)
	case OpRMW:
		err = c.doReadModifyWrite(ctx, d, s)
	default:
		return op, fmt.Errorf("workload: unimplemented op %q", op)
	}
	c.ops.Add(1)
	return op, err
}

func (c *ClosedEconomyWorkload) doRead(ctx context.Context, d db.DB, s *cewThreadState) error {
	_, err := d.Read(ctx, c.table, c.keyName(s.keyChoose.Next(s.r)), nil)
	return err
}

func (c *ClosedEconomyWorkload) doScan(ctx context.Context, d db.DB, s *cewThreadState) error {
	_, err := d.Scan(ctx, c.table, c.keyName(s.keyChoose.Next(s.r)), int(s.scanLen.Next(s.r)), nil)
	return err
}

// doUpdate reads an account, adds $1 captured from deletes (if the
// pot has any), and writes it back.
func (c *ClosedEconomyWorkload) doUpdate(ctx context.Context, d db.DB, s *cewThreadState) error {
	key := c.keyName(s.keyChoose.Next(s.r))
	rec, err := d.Read(ctx, c.table, key, nil)
	if err != nil {
		return err
	}
	bal, err := parseBalance(rec)
	if err != nil {
		return err
	}
	grant := c.withdrawPot(s, 1)
	if err := d.Update(ctx, c.table, key, balanceRecord(bal+grant)); err != nil {
		c.depositPot(s, grant)
		return err
	}
	return nil
}

// doDelete reads an account, captures its balance into the pot, and
// deletes the record.
func (c *ClosedEconomyWorkload) doDelete(ctx context.Context, d db.DB, s *cewThreadState) error {
	key := c.keyName(s.keyChoose.Next(s.r))
	rec, err := d.Read(ctx, c.table, key, nil)
	if err != nil {
		return err
	}
	bal, err := parseBalance(rec)
	if err != nil {
		return err
	}
	if err := d.Delete(ctx, c.table, key); err != nil {
		return err
	}
	c.depositPot(s, bal)
	return nil
}

// doInsert creates a new account funded entirely from the pot.
func (c *ClosedEconomyWorkload) doInsert(ctx context.Context, d db.DB, s *cewThreadState) error {
	funding := c.drainPot(s)
	keynum := c.insertSeq.Next(s.r)
	if err := d.Insert(ctx, c.table, c.keyName(keynum), balanceRecord(funding)); err != nil {
		c.depositPot(s, funding)
		return err
	}
	c.insertSeq.Acknowledge(keynum)
	return nil
}

// doReadModifyWrite reads two accounts, moves $1 from the first to
// the second, and writes both back.
func (c *ClosedEconomyWorkload) doReadModifyWrite(ctx context.Context, d db.DB, s *cewThreadState) error {
	start := time.Now()
	err := c.rmwOnce(ctx, d, s)
	if s.rmw != nil {
		s.rmw.Measure(time.Since(start), db.ReturnCode(err))
	}
	return err
}

func (c *ClosedEconomyWorkload) rmwOnce(ctx context.Context, d db.DB, s *cewThreadState) error {
	k1 := s.keyChoose.Next(s.r)
	k2 := s.keyChoose.Next(s.r)
	if k1 == k2 {
		k2 = (k1 + 1) % c.recordCount
	}
	from, to := c.keyName(k1), c.keyName(k2)
	fromRec, err := d.Read(ctx, c.table, from, nil)
	if err != nil {
		return err
	}
	toRec, err := d.Read(ctx, c.table, to, nil)
	if err != nil {
		return err
	}
	fromBal, err := parseBalance(fromRec)
	if err != nil {
		return err
	}
	toBal, err := parseBalance(toRec)
	if err != nil {
		return err
	}
	if err := d.Update(ctx, c.table, from, balanceRecord(fromBal-1)); err != nil {
		return err
	}
	return d.Update(ctx, c.table, to, balanceRecord(toBal+1))
}

// withdrawPot takes up to amount from the escrow pot and returns how
// much it actually got, recording the change against the thread's
// in-flight operation.
func (c *ClosedEconomyWorkload) withdrawPot(s *cewThreadState, amount int64) int64 {
	for {
		cur := c.pot.Load()
		take := amount
		if take > cur {
			take = cur
		}
		if take <= 0 {
			return 0
		}
		if c.pot.CompareAndSwap(cur, cur-take) {
			s.potDelta -= take
			return take
		}
	}
}

// drainPot empties the escrow pot.
func (c *ClosedEconomyWorkload) drainPot(s *cewThreadState) int64 {
	for {
		cur := c.pot.Load()
		if cur <= 0 {
			return 0
		}
		if c.pot.CompareAndSwap(cur, 0) {
			s.potDelta -= cur
			return cur
		}
	}
}

func (c *ClosedEconomyWorkload) depositPot(s *cewThreadState, amount int64) {
	if amount != 0 {
		c.pot.Add(amount)
		s.potDelta += amount
	}
}

// OnAbort implements AbortAware: when the transaction wrapping the
// thread's last operation aborts, its buffered database writes vanish
// — so the pot change that mirrored them must vanish too, or money
// would leak in or out of the closed economy.
func (c *ClosedEconomyWorkload) OnAbort(ts ThreadState) {
	s, ok := ts.(*cewThreadState)
	if !ok || s.potDelta == 0 {
		return
	}
	c.pot.Add(-s.potDelta)
	s.potDelta = 0
}

// Pot returns the current escrow balance (for tests and reporting).
func (c *ClosedEconomyWorkload) Pot() int64 { return c.pot.Load() }

// Operations returns the number of operations executed so far.
func (c *ClosedEconomyWorkload) Operations() int64 { return c.ops.Load() }

// TotalCash returns the configured economy size.
func (c *ClosedEconomyWorkload) TotalCash() int64 { return c.totalCash }

// Validate implements the Tier 6 consistency stage: iterate every
// account, sum the balances (plus the client-side escrow pot) and
// compare against totalcash. The anomaly score is the paper's
//
//	γ = |S_initial − S_final| / n
func (c *ClosedEconomyWorkload) Validate(ctx context.Context, d db.DB) (*ValidationResult, error) {
	var sum int64
	var count int64
	startKey := ""
	for {
		kvs, err := d.Scan(ctx, c.table, startKey, c.batchSize, nil)
		if err != nil {
			return nil, fmt.Errorf("workload: validation scan: %w", err)
		}
		if len(kvs) == 0 {
			break
		}
		for _, kv := range kvs {
			if kv.Key == startKey {
				continue // batches overlap by one key
			}
			bal, err := parseBalance(kv.Record)
			if err != nil {
				return nil, err
			}
			sum += bal
			count++
		}
		if len(kvs) < c.batchSize {
			break
		}
		startKey = kvs[len(kvs)-1].Key
	}
	counted := sum + c.pot.Load()
	n := c.ops.Load()
	score := 0.0
	if n > 0 {
		score = math.Abs(float64(c.totalCash-counted)) / float64(n)
	} else if counted != c.totalCash {
		score = math.Abs(float64(c.totalCash - counted))
	}
	return &ValidationResult{
		Valid:        counted == c.totalCash,
		Expected:     c.totalCash,
		Counted:      counted,
		Operations:   n,
		AnomalyScore: score,
		Detail: fmt.Sprintf("%d accounts, sum %d + pot %d = %d vs totalcash %d",
			count, sum, c.pot.Load(), counted, c.totalCash),
	}, nil
}
