package workload

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

func TestTxSeries(t *testing.T) {
	cases := map[OpType]string{
		OpRead:   "TX-READ",
		OpUpdate: "TX-UPDATE",
		OpRMW:    "TX-READMODIFYWRITE",
		OpScan:   "TX-SCAN",
		OpInsert: "TX-INSERT",
		OpDelete: "TX-DELETE",
	}
	for op, want := range cases {
		if got := TxSeries(op); got != want {
			t.Errorf("TxSeries(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{
		"core",
		"com.yahoo.ycsb.workloads.CoreWorkload",
		"closedeconomy",
		"com.yahoo.ycsb.workloads.ClosedEconomyWorkload",
	} {
		w, err := New(name)
		if err != nil || w == nil {
			t.Errorf("New(%q) = %v, %v", name, w, err)
		}
	}
	if _, err := New("missing"); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(Names()) < 4 {
		t.Errorf("Names() = %v", Names())
	}
}

func loadAll(t *testing.T, w Workload, d db.DB, n int) {
	t.Helper()
	ts, err := w.InitThread(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if err := w.Load(ctx, d, ts); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
}

func TestCoreWorkloadLoadAndRun(t *testing.T) {
	const records = 200
	p := properties.FromMap(map[string]string{
		"recordcount":               strconv.Itoa(records),
		"fieldcount":                "3",
		"fieldlength":               "10",
		"readproportion":            "0.4",
		"updateproportion":          "0.3",
		"insertproportion":          "0.1",
		"scanproportion":            "0.1",
		"readmodifywriteproportion": "0.1",
		"requestdistribution":       "zipfian",
	})
	w := NewCore()
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		t.Fatal(err)
	}
	mem := db.NewMemory()
	loadAll(t, w, mem, records)
	if mem.Len("usertable") != records {
		t.Fatalf("loaded %d records", mem.Len("usertable"))
	}

	ts, _ := w.InitThread(0, 1)
	ctx := context.Background()
	seen := map[OpType]int{}
	for i := 0; i < 2000; i++ {
		op, err := w.Do(ctx, mem, ts)
		if err != nil {
			t.Fatalf("op %d (%s): %v", i, op, err)
		}
		seen[op]++
	}
	for _, op := range []OpType{OpRead, OpUpdate, OpInsert, OpScan, OpRMW} {
		if seen[op] == 0 {
			t.Errorf("operation %s never chosen: %v", op, seen)
		}
	}
	// RMW composite latency must be recorded.
	if reg.Snapshot(string(OpRMW)).Operations == 0 {
		t.Error("READ-MODIFY-WRITE series empty")
	}
	// No consistency check for core.
	res, err := w.Validate(ctx, mem)
	if err != nil || !res.Valid || res.AnomalyScore != 0 {
		t.Errorf("Validate = %+v, %v", res, err)
	}
}

func TestCoreWorkloadDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "zipfian", "latest", "sequential", "hotspot", "exponential"} {
		t.Run(dist, func(t *testing.T) {
			p := properties.FromMap(map[string]string{
				"recordcount":         "100",
				"fieldcount":          "1",
				"fieldlength":         "5",
				"requestdistribution": dist,
				"readproportion":      "1.0",
				"updateproportion":    "0",
			})
			w := NewCore()
			if err := w.Init(p, nil); err != nil {
				t.Fatal(err)
			}
			mem := db.NewMemory()
			loadAll(t, w, mem, 100)
			ts, err := w.InitThread(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for i := 0; i < 500; i++ {
				if op, err := w.Do(ctx, mem, ts); err != nil {
					t.Fatalf("%s op %d (%s): %v", dist, i, op, err)
				}
			}
		})
	}
	// Unknown distribution fails at InitThread.
	w := NewCore()
	if err := w.Init(properties.FromMap(map[string]string{"requestdistribution": "bogus"}), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.InitThread(0, 1); err == nil {
		t.Error("bogus distribution accepted")
	}
}

func TestCoreWorkloadKeyName(t *testing.T) {
	w := NewCore()
	p := properties.FromMap(map[string]string{"insertorder": "ordered", "zeropadding": "8"})
	if err := w.Init(p, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.keyName(42); got != "user00000042" {
		t.Errorf("keyName(42) = %q", got)
	}
	// Hashed order scatters keys.
	w2 := NewCore()
	if err := w2.Init(properties.New(), nil); err != nil {
		t.Fatal(err)
	}
	if w2.keyName(1) == "user1" {
		t.Errorf("hashed keyName(1) = %q, expected scattered", w2.keyName(1))
	}
}

func TestCoreWorkloadValidation(t *testing.T) {
	w := NewCore()
	if err := w.Init(properties.FromMap(map[string]string{"recordcount": "0"}), nil); err == nil {
		t.Error("recordcount=0 accepted")
	}
	w2 := NewCore()
	if err := w2.Init(properties.FromMap(map[string]string{"readproportion": "-1"}), nil); err == nil {
		t.Error("negative proportion accepted")
	}
	w3 := NewCore()
	if err := w3.Init(properties.New(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w3.InitThread(0, 0); err == nil {
		t.Error("zero thread count accepted")
	}
}

func newCEW(t *testing.T, over map[string]string) (*ClosedEconomyWorkload, *db.Memory) {
	t.Helper()
	props := map[string]string{
		"recordcount":               "100",
		"totalcash":                 "10000",
		"readproportion":            "0.5",
		"updateproportion":          "0.1",
		"insertproportion":          "0.05",
		"scanproportion":            "0.05",
		"deleteproportion":          "0.1",
		"readmodifywriteproportion": "0.2",
		"requestdistribution":       "uniform",
	}
	for k, v := range over {
		props[k] = v
	}
	w := NewClosedEconomy()
	p := properties.FromMap(props)
	if err := w.Init(p, measurement.NewRegistry(0)); err != nil {
		t.Fatal(err)
	}
	mem := db.NewMemory()
	loadAll(t, w, mem, p.GetInt("recordcount", 100))
	return w, mem
}

func TestCEWLoadDistributesCashExactly(t *testing.T) {
	w, mem := newCEW(t, map[string]string{"totalcash": "10007"}) // does not divide evenly
	ctx := context.Background()
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || res.Counted != 10007 {
		t.Errorf("after load: %+v", res)
	}
	if res.AnomalyScore != 0 {
		t.Errorf("score after load = %v", res.AnomalyScore)
	}
}

func TestCEWSingleThreadPreservesInvariant(t *testing.T) {
	// Paper: "no anomalies are present at all with a single thread".
	w, mem := newCEW(t, nil)
	ts, _ := w.InitThread(0, 1)
	ctx := context.Background()
	for i := 0; i < 3000; i++ {
		// Errors are fine (deletes of deleted keys); anomalies are not.
		w.Do(ctx, mem, ts)
	}
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("single-thread run broke the invariant: %+v", res)
	}
	if res.Operations != 3000 {
		t.Errorf("operations = %d", res.Operations)
	}
}

func TestCEWAllOpTypesPreserveInvariantSerially(t *testing.T) {
	// Drive each op type individually many times and check the
	// invariant after each batch — catches sign errors per op.
	ops := []string{"read", "update", "insert", "scan", "delete", "readmodifywrite"}
	for _, only := range ops {
		t.Run(only, func(t *testing.T) {
			over := map[string]string{
				"readproportion": "0", "updateproportion": "0",
				"insertproportion": "0", "scanproportion": "0",
				"deleteproportion": "0", "readmodifywriteproportion": "0",
			}
			over[only+"proportion"] = "1"
			if only == "insert" {
				// Inserts need cash in the pot: mix in deletes.
				over["deleteproportion"] = "0.5"
				over["insertproportion"] = "0.5"
			}
			w, mem := newCEW(t, over)
			ts, _ := w.InitThread(0, 1)
			ctx := context.Background()
			for i := 0; i < 500; i++ {
				w.Do(ctx, mem, ts)
			}
			res, err := w.Validate(ctx, mem)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Valid {
				t.Errorf("op %s broke the invariant: %s", only, res.Detail)
			}
		})
	}
}

func TestCEWConcurrentNonTransactionalIntroducesAnomalies(t *testing.T) {
	// The Figure 4 mechanism: concurrent RMW against a
	// non-transactional store loses updates. With a heavily skewed
	// distribution and many threads, the invariant should (almost
	// always) break; we assert only that the score is reported
	// coherently, since anomalies are probabilistic.
	w, mem := newCEW(t, map[string]string{
		"recordcount":               "20",
		"totalcash":                 "2000",
		"readproportion":            "0",
		"updateproportion":          "0",
		"deleteproportion":          "0",
		"insertproportion":          "0",
		"scanproportion":            "0",
		"readmodifywriteproportion": "1",
		"requestdistribution":       "zipfian",
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ts, err := w.InitThread(i, 8)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ts ThreadState) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				w.Do(ctx, mem, ts)
			}
		}(ts)
	}
	wg.Wait()
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations != 8*500 {
		t.Errorf("operations = %d", res.Operations)
	}
	wantScore := float64(res.Expected-res.Counted) / float64(res.Operations)
	if wantScore < 0 {
		wantScore = -wantScore
	}
	if res.AnomalyScore != wantScore {
		t.Errorf("score = %v, want |%d-%d|/%d = %v",
			res.AnomalyScore, res.Expected, res.Counted, res.Operations, wantScore)
	}
	t.Logf("non-transactional 8-thread CEW: counted %d vs %d, score %g",
		res.Counted, res.Expected, res.AnomalyScore)
}

func TestCEWValidateBatchesCorrectly(t *testing.T) {
	// Small validation batches must still count every record once.
	w, mem := newCEW(t, map[string]string{"cew.validatebatch": "7"})
	res, err := w.Validate(context.Background(), mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("batched validation = %+v", res)
	}
}

func TestCEWInitValidation(t *testing.T) {
	w := NewClosedEconomy()
	if err := w.Init(properties.FromMap(map[string]string{"recordcount": "-5"}), nil); err == nil {
		t.Error("negative recordcount accepted")
	}
	w2 := NewClosedEconomy()
	if err := w2.Init(properties.FromMap(map[string]string{
		"recordcount": "100", "totalcash": "5",
	}), nil); err == nil {
		t.Error("totalcash < recordcount accepted")
	}
	w3 := NewClosedEconomy()
	if err := w3.Init(properties.FromMap(map[string]string{"requestdistribution": "exponential"}), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w3.InitThread(0, 1); err == nil {
		t.Error("CEW should reject the exponential distribution (unsupported)")
	}
}

func TestCEWPotNeverNegative(t *testing.T) {
	w, mem := newCEW(t, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		ts, _ := w.InitThread(i, 4)
		wg.Add(1)
		go func(ts ThreadState) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				w.Do(ctx, mem, ts)
				if w.Pot() < 0 {
					t.Error("pot went negative")
					return
				}
			}
		}(ts)
	}
	wg.Wait()
}

func TestCEWKeyNamesSortLexicographically(t *testing.T) {
	w, _ := newCEW(t, nil)
	prev := ""
	for i := int64(0); i < 1000; i += 7 {
		k := w.keyName(i)
		if k <= prev {
			t.Fatalf("keyName(%d) = %q not > %q", i, k, prev)
		}
		prev = k
	}
}

func TestCEWTransactionalRunStaysConsistent(t *testing.T) {
	// Mini Tier 6 "with transactions" check at the workload level
	// using the memory binding serially per op but concurrent
	// threads; uses a mutex-protected DB to emulate perfect
	// serialization, proving the workload itself is anomaly-free.
	w, mem := newCEW(t, map[string]string{"requestdistribution": "zipfian"})
	ctx := context.Background()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ts, _ := w.InitThread(i, 8)
		wg.Add(1)
		go func(ts ThreadState) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				mu.Lock()
				w.Do(ctx, mem, ts)
				mu.Unlock()
			}
		}(ts)
	}
	wg.Wait()
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("serialized concurrent run broke invariant: %s", res.Detail)
	}
}

func TestCEWAccessors(t *testing.T) {
	w, _ := newCEW(t, nil)
	if w.TotalCash() != 10000 {
		t.Errorf("TotalCash = %d", w.TotalCash())
	}
	if w.Operations() != 0 {
		t.Errorf("Operations = %d", w.Operations())
	}
	if w.Pot() != 0 {
		t.Errorf("Pot = %d", w.Pot())
	}
}

func TestDuplicateWorkloadRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("core", func() Workload { return NewCore() })
}

func BenchmarkCEWDo(b *testing.B) {
	w := NewClosedEconomy()
	p := properties.FromMap(map[string]string{
		"recordcount": "1000",
		"totalcash":   "100000",
	})
	if err := w.Init(p, nil); err != nil {
		b.Fatal(err)
	}
	mem := db.NewMemory()
	ts, _ := w.InitThread(0, 1)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if err := w.Load(ctx, mem, ts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Do(ctx, mem, ts)
	}
	_ = fmt.Sprint() // keep fmt imported
}

func TestCoreWorkloadDataIntegrity(t *testing.T) {
	p := properties.FromMap(map[string]string{
		"recordcount":               "100",
		"fieldcount":                "3",
		"fieldlength":               "20",
		"dataintegrity":             "true",
		"readproportion":            "0.5",
		"updateproportion":          "0.2",
		"scanproportion":            "0.1",
		"readmodifywriteproportion": "0.2",
		"insertproportion":          "0",
		"requestdistribution":       "uniform",
	})
	w := NewCore()
	if err := w.Init(p, nil); err != nil {
		t.Fatal(err)
	}
	mem := db.NewMemory()
	loadAll(t, w, mem, 100)
	ts, _ := w.InitThread(0, 1)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if op, err := w.Do(ctx, mem, ts); err != nil {
			t.Fatalf("op %d (%s): %v", i, op, err)
		}
	}
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || res.Counted != 0 {
		t.Errorf("clean store failed integrity check: %+v", res)
	}
	if !strings.Contains(res.Detail, "verified reads") {
		t.Errorf("detail = %q", res.Detail)
	}

	// Corrupt one record: the next read of it must be flagged.
	key := w.keyName(7)
	if err := mem.Update(ctx, "usertable", key, db.Record{"field0": []byte("CORRUPTED!!")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Read(ctx, "usertable", key, nil); err != nil {
		t.Fatal(err)
	}
	rec, _ := mem.Read(ctx, "usertable", key, nil)
	w.verifyRead(key, rec)
	res, _ = w.Validate(ctx, mem)
	if res.Valid || res.Counted == 0 {
		t.Errorf("corruption not detected: %+v", res)
	}
}

func TestIntegrityValueDeterministic(t *testing.T) {
	a := integrityValue("user5", "field0", 50)
	b := integrityValue("user5", "field0", 50)
	if string(a) != string(b) {
		t.Error("integrityValue not deterministic")
	}
	c := integrityValue("user6", "field0", 50)
	if string(a) == string(c) {
		t.Error("different keys produced identical values")
	}
	d := integrityValue("user5", "field1", 50)
	if string(a) == string(d) {
		t.Error("different fields produced identical values")
	}
	for _, ch := range a {
		if ch < ' ' || ch > '~' {
			t.Fatalf("non-printable byte %q", ch)
		}
	}
}

func TestCoreWorkloadFieldLengthDistributions(t *testing.T) {
	for _, dist := range []string{"constant", "uniform", "zipfian"} {
		t.Run(dist, func(t *testing.T) {
			p := properties.FromMap(map[string]string{
				"recordcount":             "50",
				"fieldcount":              "2",
				"fieldlength":             "64",
				"fieldlengthdistribution": dist,
				"readproportion":          "1",
				"updateproportion":        "0",
			})
			w := NewCore()
			if err := w.Init(p, nil); err != nil {
				t.Fatal(err)
			}
			mem := db.NewMemory()
			loadAll(t, w, mem, 50)
			// Inspect stored value lengths.
			ctx := context.Background()
			kvs, err := mem.Scan(ctx, "usertable", "", 50, nil)
			if err != nil {
				t.Fatal(err)
			}
			minLen, maxLen := 1<<30, 0
			for _, kv := range kvs {
				for _, v := range kv.Record {
					if len(v) < minLen {
						minLen = len(v)
					}
					if len(v) > maxLen {
						maxLen = len(v)
					}
				}
			}
			if maxLen > 64 || minLen < 1 {
				t.Errorf("%s: lengths out of range [%d, %d]", dist, minLen, maxLen)
			}
			if dist == "constant" && (minLen != 64 || maxLen != 64) {
				t.Errorf("constant lengths varied: [%d, %d]", minLen, maxLen)
			}
			if dist != "constant" && minLen == maxLen {
				t.Errorf("%s produced uniform lengths %d", dist, minLen)
			}
		})
	}
	w := NewCore()
	if err := w.Init(properties.FromMap(map[string]string{"fieldlengthdistribution": "bogus"}), nil); err == nil {
		t.Error("bogus fieldlengthdistribution accepted")
	}
}
