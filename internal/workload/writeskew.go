package workload

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"

	"ycsbt/internal/db"
	"ycsbt/internal/generator"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// WriteSkewWorkload targets the classic snapshot-isolation write-skew
// anomaly — the Section VII future-work direction of the paper
// ("additional workloads that will target specific anomalies that are
// observed at various transaction isolation levels").
//
// The database holds pairs of accounts (a_i, b_i). The application
// constraint is per-pair: a_i + b_i ≥ 0. A withdraw transaction reads
// both accounts of a pair and, if the combined balance covers the
// amount, subtracts it from ONE of the two (chosen at random). Two
// concurrent withdrawals against the same pair each see the other
// account untouched and each debit a different record — serializable
// execution forbids it, snapshot isolation permits it, and
// non-transactional execution also loses updates outright.
//
// The validation stage counts pairs whose combined balance went
// negative; the anomaly score is violations / operations. Expected
// outcomes:
//
//   - non-transactional binding: score > 0 under concurrency;
//   - txn library, snapshot mode (default): score > 0 — write skew is
//     exactly the anomaly snapshot isolation admits;
//   - txn library with SerializableReads: score = 0.
//
// A deposit operation (ws.depositproportion) resets a pair to its
// initial balances so the skew-prone window keeps recurring — but it
// deliberately skips pairs whose sum is already negative, so evidence
// of a violation survives until the validation stage.
//
// Properties: recordcount = number of pairs (default 100), ws.initial
// per-account starting balance (default 100), ws.withdraw amount per
// withdrawal (default 150 — more than one account, less than the
// pair), readproportion (default 0.2), ws.depositproportion (default
// 0.3; the remainder are withdrawals),
// requestdistribution (zipfian|uniform, default zipfian), seed.
type WriteSkewWorkload struct {
	table    string
	pairs    int64
	initial  int64
	withdraw int64
	readProp float64
	depProp  float64
	distName string
	seed     int64

	ops        atomic.Int64
	withdrawn  atomic.Int64 // total successfully withdrawn
	sharedLoad *generator.Counter
	reg        *measurement.Registry
}

// NewWriteSkew returns an uninitialized write-skew workload.
func NewWriteSkew() *WriteSkewWorkload { return &WriteSkewWorkload{} }

func init() {
	Register("writeskew", func() Workload { return NewWriteSkew() })
}

type wsThreadState struct {
	r        *rand.Rand
	pairPick generator.Integer
	loadSeq  *generator.Counter
}

// Init implements Workload.
func (w *WriteSkewWorkload) Init(p *properties.Properties, reg *measurement.Registry) error {
	w.reg = reg
	w.table = p.GetString("table", "usertable")
	w.pairs = p.GetInt64("recordcount", 100)
	if w.pairs <= 0 {
		return fmt.Errorf("workload: recordcount must be positive, got %d", w.pairs)
	}
	w.initial = p.GetInt64("ws.initial", 100)
	w.withdraw = p.GetInt64("ws.withdraw", 150)
	if w.withdraw <= w.initial || w.withdraw > 2*w.initial {
		return fmt.Errorf("workload: ws.withdraw (%d) must exceed one account (%d) but fit in the pair (%d) for skew to be observable",
			w.withdraw, w.initial, 2*w.initial)
	}
	w.readProp = p.GetFloat("readproportion", 0.2)
	w.depProp = p.GetFloat("ws.depositproportion", 0.3)
	if w.readProp < 0 || w.readProp > 1 || w.depProp < 0 || w.readProp+w.depProp > 1 {
		return fmt.Errorf("workload: proportions out of range (read %v, deposit %v)", w.readProp, w.depProp)
	}
	w.distName = p.GetString("requestdistribution", "zipfian")
	w.seed = p.GetInt64("seed", 42)
	w.sharedLoad = generator.NewCounter(0)
	return nil
}

// InitThread implements Workload.
func (w *WriteSkewWorkload) InitThread(id, count int) (ThreadState, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: thread count %d", count)
	}
	ts := &wsThreadState{r: threadRand(w.seed, id), loadSeq: w.sharedLoad}
	switch w.distName {
	case "uniform":
		ts.pairPick = generator.NewUniform(0, w.pairs-1)
	case "zipfian":
		ts.pairPick = generator.NewScrambledZipfian(0, w.pairs-1)
	default:
		return nil, fmt.Errorf("workload: unknown requestdistribution %q", w.distName)
	}
	return ts, nil
}

func (w *WriteSkewWorkload) keyA(pair int64) string { return fmt.Sprintf("pair%010da", pair) }
func (w *WriteSkewWorkload) keyB(pair int64) string { return fmt.Sprintf("pair%010db", pair) }

// Load implements Workload: one pair per call (two inserts).
func (w *WriteSkewWorkload) Load(ctx context.Context, d db.DB, ts ThreadState) error {
	s := ts.(*wsThreadState)
	pair := s.loadSeq.Next(s.r)
	if pair >= w.pairs {
		return fmt.Errorf("workload: load overran pair count (%d)", pair)
	}
	if err := d.Insert(ctx, w.table, w.keyA(pair), balanceRecord(w.initial)); err != nil {
		return err
	}
	return d.Insert(ctx, w.table, w.keyB(pair), balanceRecord(w.initial))
}

// Do implements Workload.
func (w *WriteSkewWorkload) Do(ctx context.Context, d db.DB, ts ThreadState) (OpType, error) {
	s := ts.(*wsThreadState)
	defer w.ops.Add(1)
	u := s.r.Float64()
	switch {
	case u < w.readProp:
		pair := s.pairPick.Next(s.r)
		if _, err := d.Read(ctx, w.table, w.keyA(pair), nil); err != nil {
			return OpRead, err
		}
		_, err := d.Read(ctx, w.table, w.keyB(pair), nil)
		return OpRead, err
	case u < w.readProp+w.depProp:
		return OpUpdate, w.doDeposit(ctx, d, s)
	default:
		return OpRMW, w.doWithdraw(ctx, d, s)
	}
}

// doDeposit restores a pair to its initial balances — unless the pair
// already violates the constraint, in which case it is left alone so
// the violation is observable at validation time.
func (w *WriteSkewWorkload) doDeposit(ctx context.Context, d db.DB, s *wsThreadState) error {
	pair := s.pairPick.Next(s.r)
	ka, kb := w.keyA(pair), w.keyB(pair)
	ra, err := d.Read(ctx, w.table, ka, nil)
	if err != nil {
		return err
	}
	rb, err := d.Read(ctx, w.table, kb, nil)
	if err != nil {
		return err
	}
	balA, err := parseBalance(ra)
	if err != nil {
		return err
	}
	balB, err := parseBalance(rb)
	if err != nil {
		return err
	}
	if balA+balB < 0 || (balA == w.initial && balB == w.initial) {
		return nil // violated (preserve evidence) or already full
	}
	if err := d.Update(ctx, w.table, ka, balanceRecord(w.initial)); err != nil {
		return err
	}
	return d.Update(ctx, w.table, kb, balanceRecord(w.initial))
}

// doWithdraw is the skew-prone transaction: read both accounts of a
// pair, check the constraint, debit one.
func (w *WriteSkewWorkload) doWithdraw(ctx context.Context, d db.DB, s *wsThreadState) error {
	pair := s.pairPick.Next(s.r)
	ka, kb := w.keyA(pair), w.keyB(pair)
	ra, err := d.Read(ctx, w.table, ka, nil)
	if err != nil {
		return err
	}
	rb, err := d.Read(ctx, w.table, kb, nil)
	if err != nil {
		return err
	}
	balA, err := parseBalance(ra)
	if err != nil {
		return err
	}
	balB, err := parseBalance(rb)
	if err != nil {
		return err
	}
	if balA+balB < w.withdraw {
		return nil // constraint would be violated: decline, commit no-op
	}
	target, newBal := ka, balA-w.withdraw
	if s.r.Intn(2) == 1 {
		target, newBal = kb, balB-w.withdraw
	}
	if err := d.Update(ctx, w.table, target, balanceRecord(newBal)); err != nil {
		return err
	}
	w.withdrawn.Add(w.withdraw)
	return nil
}

// Operations returns the number of operations executed.
func (w *WriteSkewWorkload) Operations() int64 { return w.ops.Load() }

// Validate implements the Tier 6 stage: count pairs whose combined
// balance violates the a+b ≥ 0 constraint.
func (w *WriteSkewWorkload) Validate(ctx context.Context, d db.DB) (*ValidationResult, error) {
	var violations, pairsSeen int64
	for pair := int64(0); pair < w.pairs; pair++ {
		ra, err := d.Read(ctx, w.table, w.keyA(pair), nil)
		if err != nil {
			return nil, fmt.Errorf("workload: validating pair %d: %w", pair, err)
		}
		rb, err := d.Read(ctx, w.table, w.keyB(pair), nil)
		if err != nil {
			return nil, fmt.Errorf("workload: validating pair %d: %w", pair, err)
		}
		balA, err := parseBalance(ra)
		if err != nil {
			return nil, err
		}
		balB, err := parseBalance(rb)
		if err != nil {
			return nil, err
		}
		pairsSeen++
		if balA+balB < 0 {
			violations++
		}
	}
	n := w.ops.Load()
	score := 0.0
	if n > 0 {
		score = float64(violations) / float64(n)
	}
	return &ValidationResult{
		Valid:        violations == 0,
		Expected:     0,
		Counted:      violations,
		Operations:   n,
		AnomalyScore: score,
		Detail: fmt.Sprintf("%d of %d pairs violate a+b ≥ 0 (withdrew %s total)",
			violations, pairsSeen, strconv.FormatInt(w.withdrawn.Load(), 10)),
	}, nil
}
