package workload

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/generator"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// CoreWorkload is a port of com.yahoo.ycsb.workloads.CoreWorkload:
// the standard YCSB mix of read/update/insert/scan/read-modify-write
// operations over a table of records with randomly generated fields.
// All of the YCSB core properties are honoured (defaults in
// parentheses):
//
//	table            (usertable)   fieldcount        (10)
//	fieldlength      (100)         fieldlengthdistribution (constant:
//	                               constant|uniform|zipfian)
//	readallfields    (true)
//	writeallfields   (false)       readproportion    (0.95)
//	updateproportion (0.05)        insertproportion  (0)
//	scanproportion   (0)           readmodifywriteproportion (0)
//	requestdistribution (uniform: uniform|zipfian|latest|sequential|
//	                     hotspot|exponential)
//	maxscanlength    (1000)        scanlengthdistribution (uniform)
//	insertstart      (0)           recordcount       (1000)
//	insertorder      (hashed)      zeropadding       (1)
//	hotspotdatafraction (0.2)      hotspotopnfraction (0.8)
//	core_workload_insertion_retry_limit (0)
//	seed             (42)            dataintegrity (false)
//
// With dataintegrity=true, field values are a deterministic function
// of (key, field name), every read verifies the returned bytes, and
// Validate reports corrupt reads — YCSB's data-integrity checking,
// which complements Tier 6: Tier 6 detects isolation anomalies,
// integrity checking detects stores returning wrong bytes.
//
// Otherwise CoreWorkload has no consistency invariant and Validate
// returns the paper's default no-op result.
type CoreWorkload struct {
	table        string
	fieldCount   int
	fieldLength  int
	fieldLenDist string
	readAll      bool
	writeAll     bool
	recordCount  int64
	insertStart  int64
	orderedKeys  bool
	zeroPadding  int
	maxScanLen   int64
	uniformScan  bool
	distName     string
	seed         int64

	dataIntegrity bool

	opChooser    *generator.Discrete
	keyLow       int64
	loadSeq      *generator.Counter
	insertSeq    *generator.AcknowledgedCounter
	reg          *measurement.Registry
	proportionOf map[OpType]float64

	ops            atomic.Int64
	verifyFailures atomic.Int64
	verifiedReads  atomic.Int64
}

// NewCore returns an uninitialized CoreWorkload.
func NewCore() *CoreWorkload { return &CoreWorkload{} }

func init() {
	Register("core", func() Workload { return NewCore() })
	Register("com.yahoo.ycsb.workloads.CoreWorkload", func() Workload { return NewCore() })
}

// coreThreadState is the per-thread generator bundle.
type coreThreadState struct {
	r         *rand.Rand
	keyChoose generator.Integer
	scanLen   generator.Integer
	opChoose  *generator.Discrete
	fieldGen  *generator.Uniform
	fieldLen  generator.Integer
	rmw       *measurement.SeriesRecorder
}

// Init implements Workload.
func (c *CoreWorkload) Init(p *properties.Properties, reg *measurement.Registry) error {
	c.reg = reg
	c.table = p.GetString("table", "usertable")
	c.fieldCount = p.GetInt("fieldcount", 10)
	c.fieldLength = p.GetInt("fieldlength", 100)
	c.fieldLenDist = p.GetString("fieldlengthdistribution", "constant")
	switch c.fieldLenDist {
	case "constant", "uniform", "zipfian":
	default:
		return fmt.Errorf("workload: unknown fieldlengthdistribution %q", c.fieldLenDist)
	}
	c.readAll = p.GetBool("readallfields", true)
	c.writeAll = p.GetBool("writeallfields", false)
	c.recordCount = p.GetInt64("recordcount", 1000)
	if c.recordCount <= 0 {
		return fmt.Errorf("workload: recordcount must be positive, got %d", c.recordCount)
	}
	c.insertStart = p.GetInt64("insertstart", 0)
	c.orderedKeys = p.GetString("insertorder", "hashed") == "ordered"
	c.zeroPadding = p.GetInt("zeropadding", 1)
	c.maxScanLen = p.GetInt64("maxscanlength", 1000)
	c.uniformScan = p.GetString("scanlengthdistribution", "uniform") == "uniform"
	c.distName = p.GetString("requestdistribution", "uniform")
	c.seed = p.GetInt64("seed", 42)
	c.dataIntegrity = p.GetBool("dataintegrity", false)

	read := p.GetFloat("readproportion", 0.95)
	update := p.GetFloat("updateproportion", 0.05)
	insert := p.GetFloat("insertproportion", 0)
	scan := p.GetFloat("scanproportion", 0)
	rmw := p.GetFloat("readmodifywriteproportion", 0)
	c.opChooser = generator.NewDiscrete()
	c.proportionOf = map[OpType]float64{}
	for _, e := range []struct {
		op   OpType
		prop float64
	}{
		{OpRead, read}, {OpUpdate, update}, {OpInsert, insert}, {OpScan, scan}, {OpRMW, rmw},
	} {
		if e.prop < 0 {
			return fmt.Errorf("workload: negative proportion for %s", e.op)
		}
		c.opChooser.Add(e.prop, string(e.op))
		c.proportionOf[e.op] = e.prop
	}
	c.keyLow = c.insertStart
	c.loadSeq = generator.NewCounter(c.insertStart)
	c.insertSeq = generator.NewAcknowledgedCounter(c.insertStart + c.recordCount)
	return nil
}

// InitThread implements Workload.
func (c *CoreWorkload) InitThread(id, count int) (ThreadState, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: thread count %d", count)
	}
	ts := &coreThreadState{r: threadRand(c.seed, id), opChoose: c.opChooser.Clone()}
	upper := c.insertStart + c.recordCount - 1
	switch c.distName {
	case "uniform":
		ts.keyChoose = generator.NewUniform(c.keyLow, upper)
	case "zipfian":
		// Like YCSB: size the zipfian over the expected final keyspace
		// so inserts during the run stay in range.
		ts.keyChoose = generator.NewScrambledZipfian(c.keyLow, upper)
	case "latest":
		ts.keyChoose = generator.NewSkewedLatest(c.insertSeq)
	case "sequential":
		ts.keyChoose = generator.NewSequential(c.keyLow, upper)
	case "hotspot":
		ts.keyChoose = generator.NewHotspot(c.keyLow, upper, 0.2, 0.8)
	case "exponential":
		ts.keyChoose = generator.NewExponential(95, 0.8571428571, c.recordCount)
	default:
		return nil, fmt.Errorf("workload: unknown requestdistribution %q", c.distName)
	}
	if c.uniformScan {
		ts.scanLen = generator.NewUniform(1, c.maxScanLen)
	} else {
		ts.scanLen = generator.NewZipfian(1, c.maxScanLen)
	}
	ts.fieldGen = generator.NewUniform(0, int64(c.fieldCount-1))
	switch c.fieldLenDist {
	case "uniform":
		ts.fieldLen = generator.NewUniform(1, int64(c.fieldLength))
	case "zipfian":
		ts.fieldLen = generator.NewZipfian(1, int64(c.fieldLength))
	default:
		ts.fieldLen = generator.NewConstant(int64(c.fieldLength))
	}
	if c.reg != nil {
		// Thread-private series handle: the RMW hot path writes to its
		// own shard instead of funnelling through the shared one.
		ts.rmw = c.reg.Recorder().Series(string(OpRMW))
	}
	return ts, nil
}

// keyName formats a key number the way YCSB does: optionally hashed,
// zero-padded, "user"-prefixed.
func (c *CoreWorkload) keyName(keynum int64) string {
	if !c.orderedKeys {
		keynum = generator.FNVHash64(keynum)
	}
	s := strconv.FormatInt(keynum, 10)
	if pad := c.zeroPadding - len(s); pad > 0 {
		buf := make([]byte, 0, c.zeroPadding+4)
		buf = append(buf, "user"...)
		for i := 0; i < pad; i++ {
			buf = append(buf, '0')
		}
		return string(append(buf, s...))
	}
	return "user" + s
}

// nextKey draws an existing key, clamped to the acknowledged insert
// frontier for the "latest" distribution.
func (c *CoreWorkload) nextKey(ts *coreThreadState) int64 {
	for {
		k := ts.keyChoose.Next(ts.r)
		if c.distName == "latest" {
			// Only acknowledged inserts are safe to read; newly
			// inserted keys above the initial range are fair game.
			if k <= c.insertSeq.Last() {
				return k
			}
			continue
		}
		// Unbounded distributions (exponential) clamp to the loaded
		// keyspace.
		if k > c.insertStart+c.recordCount-1 {
			k = c.insertStart + c.recordCount - 1
		}
		return k
	}
}

// buildValues generates a full record: random bytes, or — with
// dataintegrity — bytes derived deterministically from the key and
// field name so any read can verify them.
func (c *CoreWorkload) buildValues(s *coreThreadState, key string) db.Record {
	rec := make(db.Record, c.fieldCount)
	for i := 0; i < c.fieldCount; i++ {
		f := fieldName(i)
		if c.dataIntegrity {
			// Integrity checking requires deterministic lengths.
			rec[f] = integrityValue(key, f, c.fieldLength)
		} else {
			rec[f] = randomValue(s.r, int(s.fieldLen.Next(s.r)))
		}
	}
	return rec
}

// integrityValue derives the canonical value of key/field: an
// FNV-seeded printable expansion, reproducible by any reader.
func integrityValue(key, field string, n int) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	h := uint64(fnvOffsetCore)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrimeCore
	}
	for i := 0; i < len(field); i++ {
		h = (h ^ uint64(field[i])) * fnvPrimeCore
	}
	out := make([]byte, n)
	for i := range out {
		h = h*fnvPrimeCore + uint64(i)
		out[i] = alphabet[h%uint64(len(alphabet))]
	}
	return out
}

const (
	fnvOffsetCore = 0xCBF29CE484222325
	fnvPrimeCore  = 0x100000001B3
)

// verifyRead checks a returned record against the canonical values.
func (c *CoreWorkload) verifyRead(key string, rec db.Record) {
	if !c.dataIntegrity {
		return
	}
	c.verifiedReads.Add(1)
	for f, v := range rec {
		if string(v) != string(integrityValue(key, f, c.fieldLength)) {
			c.verifyFailures.Add(1)
			return
		}
	}
}

// buildUpdate generates the values for an update: all fields or one
// random field per writeallfields.
func (c *CoreWorkload) buildUpdate(ts *coreThreadState, key string) db.Record {
	if c.writeAll {
		return c.buildValues(ts, key)
	}
	f := fieldName(int(ts.fieldGen.Next(ts.r)))
	if c.dataIntegrity {
		return db.Record{f: integrityValue(key, f, c.fieldLength)}
	}
	return db.Record{f: randomValue(ts.r, int(ts.fieldLen.Next(ts.r)))}
}

// readFields returns the field projection for reads.
func (c *CoreWorkload) readFields(ts *coreThreadState) []string {
	if c.readAll {
		return nil
	}
	return []string{fieldName(int(ts.fieldGen.Next(ts.r)))}
}

// Load implements Workload: one sequential insert filling
// [insertstart, insertstart+recordcount). The transaction-phase
// insert frontier (insertSeq) starts past that range and is not
// advanced here.
func (c *CoreWorkload) Load(ctx context.Context, d db.DB, ts ThreadState) error {
	s := ts.(*coreThreadState)
	keynum := c.loadSeq.Next(s.r)
	key := c.keyName(keynum)
	return d.Insert(ctx, c.table, key, c.buildValues(s, key))
}

// Do implements Workload: one operation per the configured mix.
func (c *CoreWorkload) Do(ctx context.Context, d db.DB, ts ThreadState) (OpType, error) {
	s := ts.(*coreThreadState)
	op := OpType(s.opChoose.NextString(s.r))
	c.ops.Add(1)
	switch op {
	case OpRead:
		key := c.keyName(c.nextKey(s))
		rec, err := d.Read(ctx, c.table, key, c.readFields(s))
		if err == nil {
			c.verifyRead(key, rec)
		}
		return op, err
	case OpUpdate:
		key := c.keyName(c.nextKey(s))
		return op, d.Update(ctx, c.table, key, c.buildUpdate(s, key))
	case OpInsert:
		keynum := c.insertSeq.Next(s.r)
		key := c.keyName(keynum)
		err := d.Insert(ctx, c.table, key, c.buildValues(s, key))
		if err == nil {
			c.insertSeq.Acknowledge(keynum)
		}
		return op, err
	case OpScan:
		kvs, err := d.Scan(ctx, c.table, c.keyName(c.nextKey(s)), int(s.scanLen.Next(s.r)), c.readFields(s))
		if err == nil {
			for _, kv := range kvs {
				c.verifyRead(kv.Key, kv.Record)
			}
		}
		return op, err
	case OpRMW:
		start := time.Now()
		key := c.keyName(c.nextKey(s))
		rec, err := d.Read(ctx, c.table, key, c.readFields(s))
		if err == nil {
			c.verifyRead(key, rec)
			err = d.Update(ctx, c.table, key, c.buildUpdate(s, key))
		}
		if s.rmw != nil {
			s.rmw.Measure(time.Since(start), db.ReturnCode(err))
		}
		return op, err
	default:
		return op, fmt.Errorf("workload: unimplemented op %q", op)
	}
}

// Validate implements Workload. Without dataintegrity this is the
// paper's default no-op: valid, score 0. With it, the result reports
// reads whose bytes did not match the canonical derived values.
func (c *CoreWorkload) Validate(context.Context, db.DB) (*ValidationResult, error) {
	if !c.dataIntegrity {
		return &ValidationResult{Valid: true, Detail: "core workload has no consistency check"}, nil
	}
	failures := c.verifyFailures.Load()
	n := c.ops.Load()
	score := 0.0
	if n > 0 {
		score = float64(failures) / float64(n)
	}
	return &ValidationResult{
		Valid:        failures == 0,
		Counted:      failures,
		Operations:   n,
		AnomalyScore: score,
		Detail: fmt.Sprintf("%d of %d verified reads returned corrupt data",
			failures, c.verifiedReads.Load()),
	}, nil
}

// fieldName returns "field<i>".
func fieldName(i int) string { return "field" + strconv.Itoa(i) }

// randomValue builds a printable random value of length n.
func randomValue(r *rand.Rand, n int) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return out
}
