// Package workload defines the YCSB+T workload abstraction and its
// two concrete workloads: CoreWorkload (the YCSB default, with the
// standard A–F mixes) and ClosedEconomyWorkload (CEW, Section IV-C of
// the paper).
//
// A workload decides which operation to perform against the DB
// binding; the client (internal/client) owns threading, transaction
// demarcation and measurement. YCSB+T adds the Validate hook — the
// Tier 6 consistency stage — which runs after the load or transaction
// phase, applies an application-defined check over the whole
// database, and quantifies anomalies as a score (0 = consistent, as
// from a serializable execution).
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ycsbt/internal/db"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

// OpType names a workload operation; values double as measurement
// series names.
type OpType string

// Operation types, named as the paper's client output (Listing 3)
// reports them.
const (
	OpRead   OpType = "READ"
	OpUpdate OpType = "UPDATE"
	OpInsert OpType = "INSERT"
	OpScan   OpType = "SCAN"
	OpDelete OpType = "DELETE"
	OpRMW    OpType = "READ-MODIFY-WRITE"
	// OpUnstarted labels transactions whose Start failed before the
	// workload chose an operation; their latency and return code are
	// still part of the run and land in the TX-UNSTARTED series.
	OpUnstarted OpType = "UNSTARTED"
)

// TxSeries returns the Tier 5 whole-transaction series name for an
// operation type: "TX-READMODIFYWRITE" for OpRMW, matching Listing 3.
func TxSeries(op OpType) string {
	out := make([]byte, 0, len(op)+3)
	out = append(out, "TX-"...)
	for i := 0; i < len(op); i++ {
		if op[i] != '-' {
			out = append(out, op[i])
		}
	}
	return string(out)
}

// ThreadState carries one client thread's private generator state; it
// is created by InitThread and passed back on every call, so workload
// implementations need no locking on the hot path.
type ThreadState interface{}

// ValidationResult is the outcome of the Tier 6 validation stage.
type ValidationResult struct {
	// Valid reports whether the database passed the application check.
	Valid bool
	// AnomalyScore is the paper's γ = |S_initial − S_final| / n
	// (0 for workloads with no invariant check).
	AnomalyScore float64
	// Expected and Counted are the invariant's expected and observed
	// quantities (total cash for CEW).
	Expected, Counted int64
	// Operations is the number of operations the workload executed.
	Operations int64
	// Detail is a human-readable summary.
	Detail string
}

// Workload generates the operations of a benchmark run.
// Implementations must be safe for concurrent calls to Load and Do
// from distinct threads, each holding its own ThreadState.
type Workload interface {
	// Init prepares the workload from the run properties; reg
	// receives workload-level composite measurements (e.g. the
	// READ-MODIFY-WRITE series) and may be nil.
	Init(p *properties.Properties, reg *measurement.Registry) error
	// InitThread creates the per-thread state for thread id of count.
	InitThread(id, count int) (ThreadState, error)
	// Load performs one insert of the load phase.
	Load(ctx context.Context, d db.DB, ts ThreadState) error
	// Do performs one operation of the transaction phase and reports
	// which operation type it chose.
	Do(ctx context.Context, d db.DB, ts ThreadState) (OpType, error)
	// Validate runs the Tier 6 consistency check against the
	// database after a phase completes. Workloads without a check
	// return a valid result with score 0 (the paper's default no-op).
	Validate(ctx context.Context, d db.DB) (*ValidationResult, error)
}

// AbortAware is implemented by workloads that maintain client-side
// state (like CEW's escrow pot) that must be undone when the wrapping
// transaction aborts: buffered database writes vanish on abort, so
// client-side mirrors of them have to vanish too. The client calls
// OnAbort with the thread's state after aborting the transaction that
// wrapped the most recent Do/Load call on that state.
type AbortAware interface {
	OnAbort(ts ThreadState)
}

// Factory builds a workload instance.
type Factory func() Workload

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a workload available by name (including its
// YCSB-compatible Java class-name aliases).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates the workload registered under name.
func New(name string) (Workload, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// threadRand derives a deterministic per-thread RNG from the run seed
// so benchmark runs are reproducible thread-for-thread.
func threadRand(seed int64, threadID int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(threadID)*1_000_003))
}
