package workload

import (
	"context"
	"strconv"
	"sync"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/measurement"
	"ycsbt/internal/properties"
)

func newWS(t *testing.T, over map[string]string) *WriteSkewWorkload {
	t.Helper()
	props := map[string]string{
		"recordcount":         "50",
		"ws.initial":          "100",
		"ws.withdraw":         "150",
		"readproportion":      "0.2",
		"requestdistribution": "zipfian",
	}
	for k, v := range over {
		props[k] = v
	}
	w := NewWriteSkew()
	if err := w.Init(properties.FromMap(props), measurement.NewRegistry(0)); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWriteSkewLoadAndValidateClean(t *testing.T) {
	w := newWS(t, nil)
	mem := db.NewMemory()
	ts, err := w.InitThread(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := w.Load(ctx, mem, ts); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Len("usertable") != 100 {
		t.Fatalf("loaded %d records, want 100 (50 pairs)", mem.Len("usertable"))
	}
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || res.AnomalyScore != 0 {
		t.Errorf("fresh load invalid: %+v", res)
	}
}

func TestWriteSkewSerialExecutionNeverViolates(t *testing.T) {
	w := newWS(t, nil)
	mem := db.NewMemory()
	ts, _ := w.InitThread(0, 1)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := w.Load(ctx, mem, ts); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := w.Do(ctx, mem, ts); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("serial write-skew run violated the constraint: %s", res.Detail)
	}
	if res.Operations != 2000 {
		t.Errorf("ops = %d", res.Operations)
	}
}

func TestWriteSkewConcurrentNonTransactional(t *testing.T) {
	// Under raw concurrent access violations are possible; this test
	// asserts coherent reporting, not a particular count.
	w := newWS(t, map[string]string{"recordcount": "5", "readproportion": "0"})
	mem := db.NewMemory()
	ts0, _ := w.InitThread(0, 1)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := w.Load(ctx, mem, ts0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ts, _ := w.InitThread(i, 8)
		wg.Add(1)
		go func(ts ThreadState) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				w.Do(ctx, mem, ts)
			}
		}(ts)
	}
	wg.Wait()
	res, err := w.Validate(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counted > 5 {
		t.Errorf("more violations (%d) than pairs", res.Counted)
	}
	wantScore := float64(res.Counted) / float64(res.Operations)
	if res.AnomalyScore != wantScore {
		t.Errorf("score = %v, want %v", res.AnomalyScore, wantScore)
	}
	t.Logf("non-transactional write-skew: %d violations over %d ops", res.Counted, res.Operations)
}

func TestWriteSkewConstraintEnforcedWhenBroke(t *testing.T) {
	// Once a pair cannot cover the amount, withdrawals decline.
	w := newWS(t, map[string]string{"recordcount": "1", "readproportion": "0", "ws.depositproportion": "0", "requestdistribution": "uniform"})
	mem := db.NewMemory()
	ts, _ := w.InitThread(0, 1)
	ctx := context.Background()
	if err := w.Load(ctx, mem, ts); err != nil {
		t.Fatal(err)
	}
	// Pair holds 200; exactly one 150-withdrawal fits.
	for i := 0; i < 10; i++ {
		if _, err := w.Do(ctx, mem, ts); err != nil {
			t.Fatal(err)
		}
	}
	ra, _ := mem.Read(ctx, "usertable", w.keyA(0), nil)
	rb, _ := mem.Read(ctx, "usertable", w.keyB(0), nil)
	a, _ := strconv.ParseInt(string(ra["field0"]), 10, 64)
	b, _ := strconv.ParseInt(string(rb["field0"]), 10, 64)
	if a+b != 50 {
		t.Errorf("pair sum = %d, want 50 (one withdrawal)", a+b)
	}
}

func TestWriteSkewInitValidation(t *testing.T) {
	bad := []map[string]string{
		{"recordcount": "0"},
		{"ws.withdraw": "50"},  // fits one account: no skew possible
		{"ws.withdraw": "500"}, // exceeds the pair: never succeeds
		{"readproportion": "1.5"},
		{"readproportion": "0.8", "ws.depositproportion": "0.8"},
	}
	for _, over := range bad {
		props := map[string]string{"recordcount": "10"}
		for k, v := range over {
			props[k] = v
		}
		w := NewWriteSkew()
		if err := w.Init(properties.FromMap(props), nil); err == nil {
			t.Errorf("Init accepted %v", over)
		}
	}
	w := newWS(t, map[string]string{"requestdistribution": "latest"})
	if _, err := w.InitThread(0, 1); err == nil {
		t.Error("unsupported distribution accepted")
	}
	if _, err := w.InitThread(0, 0); err == nil {
		t.Error("zero thread count accepted")
	}
}
