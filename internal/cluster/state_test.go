package cluster

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/obs"
)

func newTestState(t *testing.T, self string) (*State, *Map) {
	t.Helper()
	m, err := NewUniform(PlacementHash, 4, []string{"http://a", "http://b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(self, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

// keysFor finds one key per wanted owner under m.
func keysFor(t *testing.T, m *Map, owners ...string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for i := 0; len(out) < len(owners) && i < 10000; i++ {
		k := "key" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		owner, _ := m.Owner(k)
		for _, want := range owners {
			if owner == want && out[want] == "" {
				out[want] = k
			}
		}
	}
	for _, want := range owners {
		if out[want] == "" {
			t.Fatalf("found no key owned by %s", want)
		}
	}
	return out
}

func TestNewStateRejectsStranger(t *testing.T) {
	m, _ := NewUniform(PlacementHash, 4, []string{"http://a"}, nil)
	if _, err := NewState("http://zzz", m, nil); err == nil {
		t.Fatal("NewState accepted a self not in the map")
	}
}

func TestCheckReadWrite(t *testing.T) {
	st, m := newTestState(t, "http://a")
	keys := keysFor(t, m, "http://a", "http://b")

	if err := st.CheckRead(keys["http://a"]); err != nil {
		t.Errorf("owned read rejected: %v", err)
	}
	err := st.CheckRead(keys["http://b"])
	var me *MovedError
	if !errors.As(err, &me) {
		t.Fatalf("foreign read error = %v, want MovedError", err)
	}
	if me.Owner != "http://b" || me.MapVersion != m.Version {
		t.Errorf("MovedError = %+v, want owner b map v%d", me, m.Version)
	}

	release := st.Enter()
	if err := st.CheckWrite(keys["http://a"]); err != nil {
		t.Errorf("owned write rejected: %v", err)
	}
	if err := st.CheckWrite(keys["http://b"]); !errors.As(err, &me) {
		t.Errorf("foreign write error = %v, want MovedError", err)
	}
	release()
}

func TestFreezeRejectsWritesKeepsReads(t *testing.T) {
	st, m := newTestState(t, "http://a")
	k := keysFor(t, m, "http://a")["http://a"]
	slot := m.SlotOf(k)

	if err := st.Freeze(slot); err != nil {
		t.Fatal(err)
	}
	if !st.Frozen(slot) {
		t.Error("Frozen(slot) = false after Freeze")
	}
	if err := st.CheckRead(k); err != nil {
		t.Errorf("read of frozen slot rejected: %v", err)
	}
	release := st.Enter()
	err := st.CheckWrite(k)
	release()
	var me *MovedError
	if !errors.As(err, &me) {
		t.Fatalf("write to frozen slot error = %v, want MovedError", err)
	}
	if me.Owner != "" {
		t.Errorf("frozen MovedError carries owner %q, want empty (back off, not redirect)", me.Owner)
	}

	st.Thaw(slot)
	release = st.Enter()
	if err := st.CheckWrite(k); err != nil {
		t.Errorf("write after Thaw rejected: %v", err)
	}
	release()
}

func TestFreezeUnownedSlotFails(t *testing.T) {
	st, m := newTestState(t, "http://a")
	k := keysFor(t, m, "http://b")["http://b"]
	if err := st.Freeze(m.SlotOf(k)); err == nil {
		t.Error("Freeze accepted a slot this node does not own")
	}
	if err := st.Freeze(-1); err == nil {
		t.Error("Freeze accepted slot -1")
	}
}

// TestFreezeWaitsOutInflightWrites pins the barrier contract: Freeze
// must not return while a mutation that passed CheckWrite is still
// between check and apply.
func TestFreezeWaitsOutInflightWrites(t *testing.T) {
	st, m := newTestState(t, "http://a")
	k := keysFor(t, m, "http://a")["http://a"]
	slot := m.SlotOf(k)

	var applied atomic.Bool
	inCheck := make(chan struct{})
	proceed := make(chan struct{})
	go func() {
		release := st.Enter()
		defer release()
		if err := st.CheckWrite(k); err != nil {
			t.Error(err)
			return
		}
		close(inCheck)
		<-proceed
		applied.Store(true) // the "engine apply"
	}()

	<-inCheck
	frozen := make(chan struct{})
	go func() {
		if err := st.Freeze(slot); err != nil {
			t.Error(err)
		}
		close(frozen)
	}()

	select {
	case <-frozen:
		t.Fatal("Freeze returned while a checked write was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(proceed)
	<-frozen
	if !applied.Load() {
		t.Error("Freeze returned before the in-flight apply finished")
	}
}

func TestInstall(t *testing.T) {
	st, m := newTestState(t, "http://a")

	// Stale and equal versions are rejected.
	if _, err := st.Install(m); err == nil {
		t.Error("Install accepted same version")
	}
	// Geometry changes are rejected.
	geo := m.Clone()
	geo.Version++
	geo.Slots = 8
	geo.Assign = make([]int, 8)
	if _, err := st.Install(geo); err == nil {
		t.Error("Install accepted a geometry change")
	}
	// Dropping self is rejected.
	drop, err := NewUniform(PlacementHash, 4, []string{"http://b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	drop.Version = m.Version + 1
	if _, err := st.Install(drop); err == nil {
		t.Error("Install accepted a map without self")
	}

	// A legitimate successor installs and clears freezes.
	k := keysFor(t, m, "http://a")["http://a"]
	slot := m.SlotOf(k)
	if err := st.Freeze(slot); err != nil {
		t.Fatal(err)
	}
	next, err := m.WithSlotMoved(slot, "http://b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Install(next); err != nil {
		t.Fatal(err)
	}
	if st.Map().Version != next.Version {
		t.Errorf("installed version = %d, want %d", st.Map().Version, next.Version)
	}
	if st.Frozen(slot) {
		t.Error("Install left the slot frozen")
	}
	// The moved slot now rejects even reads here.
	if err := st.CheckRead(k); err == nil {
		t.Error("read of moved-away slot accepted after install")
	}
}

// TestInstallCAS pins the conditional-install contract the migration
// cutover rides on: the install lands only when the node's map is at
// exactly the expected predecessor version.
func TestInstallCAS(t *testing.T) {
	st, m := newTestState(t, "http://a")
	next := m.Clone()
	next.Version++

	if _, err := st.InstallCAS(next, m.Version+5); err == nil {
		t.Error("InstallCAS accepted a wrong expected version")
	}
	if st.Map().Version != m.Version {
		t.Fatalf("failed CAS changed the map to v%d", st.Map().Version)
	}
	if _, err := st.InstallCAS(next, m.Version); err != nil {
		t.Fatalf("InstallCAS with the right predecessor: %v", err)
	}
	if st.Map().Version != next.Version {
		t.Errorf("installed version = %d, want %d", st.Map().Version, next.Version)
	}
	// A second racing v+1 built from the same predecessor must lose.
	rival := m.Clone()
	rival.Version = next.Version
	if _, err := st.InstallCAS(rival, m.Version); err == nil {
		t.Error("InstallCAS accepted a rival successor of an already-consumed predecessor")
	}
}

// Rebalancing moves slots; it must not silently re-split the key
// space. A successor with different range bounds would remap keys to
// different slots under the same slot count.
func TestInstallRejectsBoundsChange(t *testing.T) {
	m, err := NewUniform(PlacementRange, 3, []string{"http://a", "http://b"}, []string{"g", "p"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState("http://a", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	next := m.Clone()
	next.Version++
	next.Bounds = []string{"g", "q"}
	if _, err := st.Install(next); err == nil {
		t.Error("Install accepted a map with different range bounds")
	}
	next.Bounds = []string{"g", "p"}
	if _, err := st.Install(next); err != nil {
		t.Errorf("Install rejected a map with unchanged bounds: %v", err)
	}
}

// Install concludes only the migrations the new map actually settles:
// a freeze for a slot the map leaves in place belongs to a different
// in-flight migration and must survive.
func TestInstallKeepsUnrelatedFreeze(t *testing.T) {
	st, m := newTestState(t, "http://a")
	keys := keysFor(t, m, "http://a", "http://b")
	moved := m.SlotOf(keys["http://a"])
	kept := -1
	for slot := 0; slot < m.Slots; slot++ {
		if slot != moved && m.OwnerOfSlot(slot) == "http://a" {
			kept = slot
			break
		}
	}
	if kept < 0 {
		t.Skip("no second owned slot under this map")
	}
	if err := st.Freeze(moved); err != nil {
		t.Fatal(err)
	}
	if err := st.Freeze(kept); err != nil {
		t.Fatal(err)
	}
	next, err := m.WithSlotMoved(moved, "http://b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Install(next); err != nil {
		t.Fatal(err)
	}
	if st.Frozen(moved) {
		t.Error("install left the migrated slot frozen")
	}
	if !st.Frozen(kept) {
		t.Error("install cleared the freeze of a slot it did not move")
	}
}

func TestMovedCounterAndGauge(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := NewUniform(PlacementHash, 4, []string{"http://a", "http://b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState("http://a", m, reg)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysFor(t, m, "http://b")
	st.CheckRead(keys["http://b"])
	st.CheckRead(keys["http://b"])

	var out strings.Builder
	if err := reg.Export(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, `httpkv_moved_total{node="http://a"} 2`) {
		t.Errorf("exposition missing moved counter:\n%s", text)
	}
	if !strings.Contains(text, "cluster_shardmap_version") {
		t.Errorf("exposition missing shard map version gauge:\n%s", text)
	}
}

func TestConcurrentCheckWriteVsInstall(t *testing.T) {
	st, m := newTestState(t, "http://a")
	keys := keysFor(t, m, "http://a")
	k := keys["http://a"]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				release := st.Enter()
				st.CheckWrite(k)
				release()
			}
		}()
	}
	cur := m
	for v := 0; v < 50; v++ {
		next := cur.Clone()
		next.Version++
		if _, err := st.Install(next); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	close(stop)
	wg.Wait()
	if st.Map().Version != cur.Version {
		t.Errorf("final version = %d, want %d", st.Map().Version, cur.Version)
	}
}
