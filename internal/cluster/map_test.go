package cluster

import (
	"testing"
)

func mustUniform(t *testing.T, placement string, slots int, nodes []string, bounds []string) *Map {
	t.Helper()
	m, err := NewUniform(placement, slots, nodes, bounds)
	if err != nil {
		t.Fatalf("NewUniform(%s, %d, %v): %v", placement, slots, nodes, err)
	}
	return m
}

func TestNewUniformRoundRobin(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	m := mustUniform(t, PlacementHash, 8, nodes, nil)
	if m.Version != 1 {
		t.Fatalf("fresh map version = %d, want 1", m.Version)
	}
	counts := make(map[string]int)
	for slot := 0; slot < m.Slots; slot++ {
		counts[m.OwnerOfSlot(slot)]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Errorf("node %s owns no slots: %v", n, counts)
		}
	}
}

func TestHashPlacementCoversAllSlots(t *testing.T) {
	m := mustUniform(t, PlacementHash, 16, []string{"http://a", "http://b"}, nil)
	seen := make(map[int]bool)
	for i := 0; i < 4096; i++ {
		slot := m.SlotOf(key(t, i))
		if slot < 0 || slot >= m.Slots {
			t.Fatalf("slot %d out of range", slot)
		}
		seen[slot] = true
	}
	if len(seen) != m.Slots {
		t.Errorf("4096 keys hit only %d/%d slots", len(seen), m.Slots)
	}
}

func key(t *testing.T, i int) string {
	t.Helper()
	return "user" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestRangePlacement(t *testing.T) {
	m := mustUniform(t, PlacementRange, 3, []string{"http://a", "http://b"}, []string{"g", "p"})
	cases := map[string]int{
		"a": 0, "f": 0, "g": 1, "m": 1, "p": 2, "z": 2, "": 0,
	}
	for k, want := range cases {
		if got := m.SlotOf(k); got != want {
			t.Errorf("SlotOf(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Map {
		return mustUniform(t, PlacementHash, 4, []string{"http://a", "http://b"}, nil)
	}
	cases := []struct {
		name  string
		break_ func(*Map)
	}{
		{"zero version", func(m *Map) { m.Version = 0 }},
		{"bad placement", func(m *Map) { m.Placement = "random" }},
		{"no nodes", func(m *Map) { m.Nodes = nil }},
		{"empty node", func(m *Map) { m.Nodes[0] = "" }},
		{"duplicate node", func(m *Map) { m.Nodes[1] = m.Nodes[0] }},
		{"assign length", func(m *Map) { m.Assign = m.Assign[:2] }},
		{"assign out of range", func(m *Map) { m.Assign[0] = 7 }},
		{"hash with bounds", func(m *Map) { m.Bounds = []string{"k"} }},
	}
	for _, tc := range cases {
		m := base()
		tc.break_(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken map", tc.name)
		}
	}
	// Range-specific: wrong bound count, unsorted bounds.
	rm := mustUniform(t, PlacementRange, 3, []string{"http://a"}, []string{"g", "p"})
	rm.Bounds = []string{"p", "g"}
	if err := rm.Validate(); err == nil {
		t.Error("unsorted bounds accepted")
	}
	rm2 := mustUniform(t, PlacementRange, 3, []string{"http://a"}, []string{"g", "p"})
	rm2.Bounds = rm2.Bounds[:1]
	if err := rm2.Validate(); err == nil {
		t.Error("wrong bound count accepted")
	}
}

func TestWithSlotMoved(t *testing.T) {
	m := mustUniform(t, PlacementHash, 4, []string{"http://a", "http://b"}, nil)
	moved, err := m.WithSlotMoved(2, "http://b")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Version != m.Version+1 {
		t.Errorf("version = %d, want %d", moved.Version, m.Version+1)
	}
	if moved.OwnerOfSlot(2) != "http://b" {
		t.Errorf("slot 2 owner = %s, want http://b", moved.OwnerOfSlot(2))
	}
	// The original is untouched (immutability).
	if m.OwnerOfSlot(2) != "http://a" {
		t.Errorf("original map mutated: slot 2 owner = %s", m.OwnerOfSlot(2))
	}
	if _, err := m.WithSlotMoved(99, "http://b"); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := m.WithSlotMoved(0, "http://nope"); err == nil {
		t.Error("non-member node accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := mustUniform(t, PlacementRange, 3, []string{"http://a", "http://b"}, []string{"g", "p"})
	doc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != m.Version || back.Placement != m.Placement || back.Slots != m.Slots {
		t.Errorf("round trip mismatch: %+v vs %+v", back, m)
	}
	for i := range m.Assign {
		if back.Assign[i] != m.Assign[i] {
			t.Errorf("assign[%d] = %d, want %d", i, back.Assign[i], m.Assign[i])
		}
	}
	if _, err := Decode([]byte(`{"version":0}`)); err == nil {
		t.Error("Decode accepted an invalid map")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("Decode accepted garbage")
	}
}

func TestSlotsOfAndNodeIndex(t *testing.T) {
	m := mustUniform(t, PlacementHash, 4, []string{"http://a", "http://b"}, nil)
	if got := m.NodeIndex("http://b"); got != 1 {
		t.Errorf("NodeIndex = %d, want 1", got)
	}
	if got := m.NodeIndex("http://zzz"); got != -1 {
		t.Errorf("NodeIndex of stranger = %d, want -1", got)
	}
	slots := m.SlotsOf("http://a")
	if len(slots) != 2 {
		t.Errorf("SlotsOf(a) = %v, want 2 slots", slots)
	}
	for _, s := range slots {
		if m.OwnerOfSlot(s) != "http://a" {
			t.Errorf("slot %d not owned by a", s)
		}
	}
	if got := m.SlotsOf("http://zzz"); got != nil {
		t.Errorf("SlotsOf(stranger) = %v, want nil", got)
	}
}
