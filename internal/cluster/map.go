// Package cluster defines the shard map that scales the kvserver
// fleet out to multiple nodes: a monotonically versioned assignment
// of key-space slots onto node addresses, the node-local State that
// mounts one owned slice of that map, and the typed MovedError the
// HTTP layer surfaces when a request lands on the wrong node.
//
// The design follows the client-coordinated philosophy of the rest of
// the system (the Cherry-Garcia-style txn layer needs no central
// coordinator, and neither does routing): there is no metadata
// service. Every node carries a full copy of the map and serves it at
// GET /v1/shardmap; clients cache a copy, route per key, and re-fetch
// when a 410 response tells them their copy is stale. Rebalancing
// bumps the version and installs the new map node by node — stale
// nodes keep answering with moved hints until they converge, so the
// fleet never needs to agree atomically.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Placement names the key→slot function of a map.
const (
	// PlacementHash routes keys by FNV-1a hash modulo Slots — the
	// default, matching the engine's own partition routing so load
	// spreads uniformly without any knowledge of the key population.
	PlacementHash = "hash"
	// PlacementRange routes keys by binary search over Bounds:
	// slot i owns [Bounds[i-1], Bounds[i]). Range placement keeps
	// lexicographic neighbours colocated, so scans touch few nodes,
	// at the price of choosing split points up front.
	PlacementRange = "range"
)

// DefaultSlots is the slot count used when none is configured. Slots
// are the unit of rebalancing — more slots than nodes, so a node can
// shed load one slice at a time.
const DefaultSlots = 16

// Map is a versioned placement of key-space slots onto nodes. It is
// immutable once published: rebalancing builds a successor with
// WithSlotMoved, which bumps Version. Everything is exported and
// JSON-encodable because the map itself is the wire protocol
// (GET/PUT /v1/shardmap).
type Map struct {
	// Version orders maps totally; higher wins. Installation rejects
	// anything ≤ the current version, so replayed or reordered
	// installs are harmless.
	Version int64 `json:"version"`
	// Placement is PlacementHash or PlacementRange.
	Placement string `json:"placement"`
	// Slots is the number of key-space slices. Immutable across
	// versions of the same cluster (resharding is a different, much
	// bigger operation than rebalancing).
	Slots int `json:"slots"`
	// Nodes are the base URLs of every cluster member.
	Nodes []string `json:"nodes"`
	// Assign maps slot index → index into Nodes.
	Assign []int `json:"assign"`
	// Bounds are the Slots-1 sorted split keys of range placement:
	// slot 0 owns keys < Bounds[0], slot i owns [Bounds[i-1],
	// Bounds[i]), the last slot owns keys ≥ the final bound. Empty
	// for hash placement.
	Bounds []string `json:"bounds,omitempty"`
}

// NewUniform builds a version-1 map assigning slots round-robin over
// nodes. For range placement the caller supplies the slots-1 split
// keys; for hash placement bounds must be nil.
func NewUniform(placement string, slots int, nodes []string, bounds []string) (*Map, error) {
	if slots <= 0 {
		slots = DefaultSlots
	}
	m := &Map{
		Version:   1,
		Placement: placement,
		Slots:     slots,
		Nodes:     append([]string(nil), nodes...),
		Assign:    make([]int, slots),
		Bounds:    append([]string(nil), bounds...),
	}
	for i := range m.Assign {
		m.Assign[i] = i % len(nodes)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the map's internal consistency.
func (m *Map) Validate() error {
	if m == nil {
		return fmt.Errorf("cluster: nil map")
	}
	if m.Version <= 0 {
		return fmt.Errorf("cluster: map version %d must be positive", m.Version)
	}
	switch m.Placement {
	case PlacementHash:
		if len(m.Bounds) != 0 {
			return fmt.Errorf("cluster: hash placement carries %d bounds", len(m.Bounds))
		}
	case PlacementRange:
		if len(m.Bounds) != m.Slots-1 {
			return fmt.Errorf("cluster: range placement needs %d bounds, got %d", m.Slots-1, len(m.Bounds))
		}
		if !sort.StringsAreSorted(m.Bounds) {
			return fmt.Errorf("cluster: range bounds not sorted")
		}
	default:
		return fmt.Errorf("cluster: unknown placement %q", m.Placement)
	}
	if m.Slots <= 0 {
		return fmt.Errorf("cluster: slots %d must be positive", m.Slots)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n == "" {
			return fmt.Errorf("cluster: empty node address")
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	if len(m.Assign) != m.Slots {
		return fmt.Errorf("cluster: assign length %d != slots %d", len(m.Assign), m.Slots)
	}
	for slot, ni := range m.Assign {
		if ni < 0 || ni >= len(m.Nodes) {
			return fmt.Errorf("cluster: slot %d assigned to unknown node index %d", slot, ni)
		}
	}
	return nil
}

// fnv1a is the same 32-bit FNV-1a the engine uses for partition
// routing, duplicated here so the cluster layer has no dependency on
// the storage engine.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// SlotOf maps a key to its slot under this map's placement.
func (m *Map) SlotOf(key string) int {
	if m.Placement == PlacementRange {
		// Upper bound: the number of split keys ≤ key.
		return sort.Search(len(m.Bounds), func(i int) bool { return m.Bounds[i] > key })
	}
	return int(fnv1a(key) % uint32(m.Slots))
}

// OwnerOfSlot returns the node address serving slot.
func (m *Map) OwnerOfSlot(slot int) string {
	return m.Nodes[m.Assign[slot]]
}

// Owner resolves a key to its owning node address and slot.
func (m *Map) Owner(key string) (node string, slot int) {
	slot = m.SlotOf(key)
	return m.OwnerOfSlot(slot), slot
}

// NodeIndex returns the index of addr in Nodes, or -1.
func (m *Map) NodeIndex(addr string) int {
	for i, n := range m.Nodes {
		if n == addr {
			return i
		}
	}
	return -1
}

// SlotsOf lists the slots assigned to addr.
func (m *Map) SlotsOf(addr string) []int {
	ni := m.NodeIndex(addr)
	var out []int
	for slot, a := range m.Assign {
		if a == ni {
			out = append(out, slot)
		}
	}
	return out
}

// Clone deep-copies the map.
func (m *Map) Clone() *Map {
	out := *m
	out.Nodes = append([]string(nil), m.Nodes...)
	out.Assign = append([]int(nil), m.Assign...)
	out.Bounds = append([]string(nil), m.Bounds...)
	return &out
}

// WithSlotMoved returns the successor map (Version+1) assigning slot
// to node, which must already be a cluster member.
func (m *Map) WithSlotMoved(slot int, node string) (*Map, error) {
	if slot < 0 || slot >= m.Slots {
		return nil, fmt.Errorf("cluster: slot %d out of range [0,%d)", slot, m.Slots)
	}
	ni := m.NodeIndex(node)
	if ni < 0 {
		return nil, fmt.Errorf("cluster: node %q not a cluster member", node)
	}
	out := m.Clone()
	out.Version++
	out.Assign[slot] = ni
	return out, nil
}

// Encode renders the map as its wire JSON.
func (m *Map) Encode() ([]byte, error) {
	return json.Marshal(m)
}

// Decode parses and validates a wire-JSON map.
func Decode(doc []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, fmt.Errorf("cluster: decoding shard map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
