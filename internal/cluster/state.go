package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ycsbt/internal/obs"
)

// MovedError reports that a key's slot is not served by the node that
// received the request. Owner is the address of the node the sender
// believes owns the slot under MapVersion; an empty Owner means the
// slot is frozen for migration on this node — it will be owned
// elsewhere shortly, so the caller should back off and retry rather
// than redirect.
type MovedError struct {
	Key        string
	Owner      string
	MapVersion int64
}

func (e *MovedError) Error() string {
	if e.Owner == "" {
		return fmt.Sprintf("cluster: key %q draining for migration (map v%d)", e.Key, e.MapVersion)
	}
	return fmt.Sprintf("cluster: key %q moved to %s (map v%d)", e.Key, e.Owner, e.MapVersion)
}

// Wire headers carrying moved hints on 410 responses and the map
// version on /v1/shardmap exchanges.
const (
	// HeaderMapVersion carries the responding node's current shard
	// map version.
	HeaderMapVersion = "X-Shard-Map-Version"
	// HeaderOwner carries the owning node's address on a 410; absent
	// or empty while the slot drains for migration.
	HeaderOwner = "X-Shard-Owner"
	// HeaderMapCAS, on a PUT /v1/shardmap, makes the install
	// conditional: it only succeeds when the node's current map version
	// equals the header's value. The migration cutover uses it so two
	// racing migrations built from the same predecessor cannot both
	// install their divergent successors — the loser gets a 409 and
	// aborts instead of silently splitting the fleet.
	HeaderMapCAS = "X-Shard-Map-If-Version"
)

// State is a node's live view of the cluster: the current map, which
// node this process is, and the set of slots frozen for an in-flight
// migration.
//
// Ownership checks and engine mutations must be atomic with respect
// to map installs and freezes, or a write could pass the check under
// map v, commit after the migration snapshot is taken, and be lost.
// State provides that as a read/write barrier: mutating request
// handlers hold the read side (Enter) across check+apply, and
// Freeze/Install take the write side briefly after flipping the
// frozen/map state — returning only once every in-flight mutation
// that saw the old state has drained.
type State struct {
	self string // this node's address as it appears in Map.Nodes

	cur atomic.Pointer[Map]

	mu     sync.RWMutex // the write barrier; protects frozen
	frozen map[int]bool

	movedTotal *obs.Counter
}

// NewState mounts a node at self under the given initial map. self
// must be one of the map's node addresses. The registry may be nil
// (metrics off).
func NewState(self string, m *Map, reg *obs.Registry) (*State, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.NodeIndex(self) < 0 {
		return nil, fmt.Errorf("cluster: self %q not in shard map nodes %v", self, m.Nodes)
	}
	s := &State{self: self, frozen: make(map[int]bool)}
	s.cur.Store(m.Clone())
	reg.Help("cluster_shardmap_version", "Version of the shard map currently installed on this node.")
	reg.GaugeFunc("cluster_shardmap_version", func() float64 {
		return float64(s.Map().Version)
	}, "node", self)
	reg.Help("httpkv_moved_total", "Requests rejected with 410 moved because this node does not own the key's slot.")
	s.movedTotal = reg.Counter("httpkv_moved_total", "node", self)
	return s, nil
}

// Self returns this node's address.
func (s *State) Self() string { return s.self }

// Map returns the currently installed map (immutable; do not modify).
func (s *State) Map() *Map { return s.cur.Load() }

// Enter takes the read side of the write barrier. Mutating request
// handlers call it before the ownership check and release (the
// returned func) only after the engine apply, so Freeze and Install
// can wait out every mutation that raced with them.
func (s *State) Enter() func() {
	s.mu.RLock()
	return s.mu.RUnlock
}

// CheckRead reports whether this node may serve reads of key. Reads
// stay up while a slot drains (the data is still here and immutable
// past the snapshot ts), so only true non-ownership rejects.
func (s *State) CheckRead(key string) error {
	m := s.cur.Load()
	owner, _ := m.Owner(key)
	if owner != s.self {
		s.movedTotal.Inc()
		return &MovedError{Key: key, Owner: owner, MapVersion: m.Version}
	}
	return nil
}

// CheckWrite reports whether this node may apply a mutation of key.
// Must be called with the barrier held (inside Enter). Rejects both
// non-owned slots and owned-but-frozen slots; for frozen slots the
// MovedError carries no owner — the new owner isn't serving yet.
func (s *State) CheckWrite(key string) error {
	m := s.cur.Load()
	owner, slot := m.Owner(key)
	if owner != s.self {
		s.movedTotal.Inc()
		return &MovedError{Key: key, Owner: owner, MapVersion: m.Version}
	}
	if s.frozen[slot] {
		s.movedTotal.Inc()
		return &MovedError{Key: key, MapVersion: m.Version}
	}
	return nil
}

// Freeze marks slot as draining and then waits out every in-flight
// mutation, so that once Freeze returns, any write that passed
// CheckWrite has also finished its engine apply — a snapshot
// timestamp drawn after Freeze captures all of them. Returns an error
// if this node doesn't own the slot.
func (s *State) Freeze(slot int) error {
	m := s.cur.Load()
	if slot < 0 || slot >= m.Slots {
		return fmt.Errorf("cluster: slot %d out of range [0,%d)", slot, m.Slots)
	}
	if m.OwnerOfSlot(slot) != s.self {
		return fmt.Errorf("cluster: node %s does not own slot %d", s.self, slot)
	}
	// Lock is the barrier: it waits for every mutation holding the
	// read side, and any mutation entering afterwards sees frozen.
	s.mu.Lock()
	s.frozen[slot] = true
	s.mu.Unlock()
	return nil
}

// Thaw clears a freeze (migration aborted; resume serving writes).
func (s *State) Thaw(slot int) {
	s.mu.Lock()
	delete(s.frozen, slot)
	s.mu.Unlock()
}

// Frozen reports whether slot is currently draining.
func (s *State) Frozen(slot int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.frozen[slot]
}

// Install publishes a new map. The version must strictly increase and
// the placement geometry (slots, placement, bounds) must be unchanged
// — rebalancing moves slots, it doesn't reshard or re-split the key
// space. Freezes are cleared only for slots the new map actually
// reassigns: those migrations are concluded by the map, while a freeze
// for a slot the map leaves in place belongs to a still-in-flight (or
// unrelated) migration and must survive the install. Returns the
// installed map.
func (s *State) Install(m *Map) (*Map, error) {
	return s.install(m, -1)
}

// InstallCAS is Install conditioned on the exact current version: it
// fails unless the node's map is at expect when the install lands.
// The migration cutover uses it to detect a concurrent migration that
// already moved the fleet past the predecessor this map was built
// from.
func (s *State) InstallCAS(m *Map, expect int64) (*Map, error) {
	return s.install(m, expect)
}

func (s *State) install(m *Map, expect int64) (*Map, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if expect >= 0 && cur.Version != expect {
		return nil, fmt.Errorf("cluster: conditional install of v%d expected current v%d, have v%d", m.Version, expect, cur.Version)
	}
	if m.Version <= cur.Version {
		return nil, fmt.Errorf("cluster: stale map install v%d (have v%d)", m.Version, cur.Version)
	}
	if m.Slots != cur.Slots || m.Placement != cur.Placement {
		return nil, fmt.Errorf("cluster: map v%d changes geometry (slots %d→%d, placement %s→%s)",
			m.Version, cur.Slots, m.Slots, cur.Placement, m.Placement)
	}
	if !stringsEqual(m.Bounds, cur.Bounds) {
		return nil, fmt.Errorf("cluster: map v%d changes range bounds (keys would silently remap to different slots)", m.Version)
	}
	if m.NodeIndex(s.self) < 0 {
		return nil, fmt.Errorf("cluster: map v%d drops self %q", m.Version, s.self)
	}
	installed := m.Clone()
	s.cur.Store(installed)
	for slot := range s.frozen {
		if installed.OwnerOfSlot(slot) != cur.OwnerOfSlot(slot) {
			delete(s.frozen, slot)
		}
	}
	return installed, nil
}

// stringsEqual reports element-wise equality of two string slices.
func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MapJSON renders the current map for the /v1/shardmap endpoint.
func (s *State) MapJSON() []byte {
	doc, _ := s.Map().Encode() // a validated map always encodes
	return doc
}
