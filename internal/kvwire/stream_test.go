package kvwire

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
)

// newTestStore opens a fresh volatile engine.
func newTestStore(t *testing.T) kvstore.Engine {
	t.Helper()
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// loadKeys writes n ordered records k0000..k<n-1> into table t.
func loadKeys(t *testing.T, store kvstore.Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%04d", i)
		if _, err := store.PutIfVersion("t", key, map[string][]byte{"f": []byte(key)}, kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamScanRoundTrip(t *testing.T) {
	store := newTestStore(t)
	loadKeys(t, store, 1000)
	core := NewCore(store, nil, 0)
	_, addr := startWireServer(t, core, ServerOptions{})
	ep := NewEndpoint(addr, 0)
	defer ep.Close()

	for _, tc := range []struct {
		name  string
		req   ScanRequest
		first string
		n     int
	}{
		{"all", ScanRequest{Table: "t", Count: 1000, Slot: -1}, "k0000", 1000},
		{"limited", ScanRequest{Table: "t", Count: 7, Slot: -1}, "k0000", 7},
		{"offset", ScanRequest{Table: "t", Start: "k0500", Count: 10, Slot: -1}, "k0500", 10},
		{"pastEnd", ScanRequest{Table: "t", Start: "k0998", Count: 100, Slot: -1}, "k0998", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ep.Scan(context.Background(), &tc.req)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var got []string
			for s.Next() {
				rec := s.Record()
				if string(rec.Fields["f"]) != rec.Key {
					t.Fatalf("record %q carries fields %q", rec.Key, rec.Fields["f"])
				}
				if rec.Version == 0 {
					t.Fatalf("record %q missing version", rec.Key)
				}
				got = append(got, rec.Key)
			}
			if err := s.Err(); err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.n {
				t.Fatalf("scanned %d records, want %d", len(got), tc.n)
			}
			if got[0] != tc.first {
				t.Fatalf("first key %q, want %q", got[0], tc.first)
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("out of order: %q after %q", got[i], got[i-1])
				}
			}
		})
	}
}

// TestStreamScanSlowConsumerBounded proves the credit window bounds
// the server: a consumer that grants window=2 and then stops consuming
// sees exactly 2 chunk frames, with the producer parked (stall counter
// moving), until credits flow again.
func TestStreamScanSlowConsumerBounded(t *testing.T) {
	store := newTestStore(t)
	loadKeys(t, store, 2000) // ≥ 7 chunks of 256
	core := NewCore(store, nil, 0)
	srv, addr := startWireServer(t, core, ServerOptions{Metrics: obs.NewRegistry()})
	ep := NewEndpoint(addr, 0)
	defer ep.Close()

	s, err := ep.Scan(context.Background(), &ScanRequest{Table: "t", Count: 2000, Slot: -1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Without consuming anything, the server may send exactly the
	// granted window and must then stall.
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.scanChunks.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server sent %d chunks, want 2", srv.metrics.scanChunks.Value())
		}
		time.Sleep(time.Millisecond)
	}
	for srv.metrics.creditsStalled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never recorded a credit stall")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if n := srv.metrics.scanChunks.Value(); n != 2 {
		t.Fatalf("stalled server sent %d chunks, want exactly the window of 2", n)
	}

	// Resume consuming: the rest of the stream arrives.
	n := 0
	for s.Next() {
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("scanned %d records after stall, want 2000", n)
	}
}

// TestStreamScanClientCancelReleasesServer cancels the consumer's
// context while the producer is parked on credits and asserts the
// server goroutine exits.
func TestStreamScanClientCancelReleasesServer(t *testing.T) {
	store := newTestStore(t)
	loadKeys(t, store, 2000)
	core := NewCore(store, nil, 0)
	srv, addr := startWireServer(t, core, ServerOptions{Metrics: obs.NewRegistry()})
	ep := NewEndpoint(addr, 0)
	defer ep.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ep.Scan(ctx, &ScanRequest{Table: "t", Count: 2000, Slot: -1, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Park the producer: one chunk sent, no credits coming.
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.creditsStalled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never stalled")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	if s.Next() {
		t.Fatal("Next succeeded after ctx cancel")
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}

	// The cancel frame must release the parked producer goroutine.
	done := make(chan struct{})
	go func() {
		srv.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server scan goroutine still running after client cancel")
	}
}

func TestStreamIngestRoundTrip(t *testing.T) {
	store := newTestStore(t)
	core := NewCore(store, nil, 0)
	srv, addr := startWireServer(t, core, ServerOptions{Metrics: obs.NewRegistry()})
	ep := NewEndpoint(addr, 0)
	defer ep.Close()

	in, err := ep.Ingest(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	var recs []StreamRecord
	for i := 0; i < 700; i++ {
		recs = append(recs, StreamRecord{
			Key:      fmt.Sprintf("k%04d", i),
			Version:  uint64(i + 7),
			CommitTS: int64(1000 + i),
			Fields:   map[string][]byte{"f": []byte(fmt.Sprintf("v%d", i))},
		})
	}
	// One tombstone rides along, like a migration copy's deletes.
	recs = append(recs, StreamRecord{Key: "kdead", Version: 9, CommitTS: 2000, Deleted: true})
	if err := in.Send(recs); err != nil {
		t.Fatal(err)
	}
	n, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 701 {
		t.Fatalf("server ingested %d records, want 701", n)
	}
	if v := srv.metrics.ingestRecords.Value(); v != 701 {
		t.Fatalf("kvwire_ingest_records_total = %d, want 701", v)
	}

	// Versions and commit timestamps are preserved.
	rec, err := store.Get("t", "k0042")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 49 || rec.CommitTS != 1042 {
		t.Fatalf("k0042 = v%d@%d, want v49@1042", rec.Version, rec.CommitTS)
	}
	if _, err := store.Get("t", "kdead"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("tombstoned key readable: %v", err)
	}
}

func TestStreamIngestAdmissionShed(t *testing.T) {
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := &blockingEngine{Engine: store, entered: make(chan struct{}), release: make(chan struct{})}
	defer close(eng.release)
	core := NewCore(eng, nil, 1)
	_, addr := startWireServer(t, core, ServerOptions{})
	ep := NewEndpoint(addr, 1)
	defer ep.Close()

	// Occupy the only admission slot.
	go ep.Exec(context.Background(), []Op{
		{Kind: KindPut, Table: "t", Key: "k", Fields: map[string][]byte{"f": []byte("v")}, Expect: kvstore.AnyVersion},
	})
	<-eng.entered

	in, err := ep.Ingest(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.Close()
	var re *RequestError
	if !errors.As(err, &re) || re.Status != 429 {
		t.Fatalf("err = %v, want 429 RequestError", err)
	}
}

func TestStreamScanRejectsBadParams(t *testing.T) {
	store := newTestStore(t)
	core := NewCore(store, nil, 0)
	_, addr := startWireServer(t, core, ServerOptions{})
	ep := NewEndpoint(addr, 0)
	defer ep.Close()

	for _, req := range []ScanRequest{
		{Table: "t", Count: -1, Slot: -1},                   // unlimited is cluster-only
		{Table: "t", Count: 10, Slot: 3},                    // slot filter is cluster-only
		{Table: "t", Count: 10, Slot: -1, AsOf: -1},         // negative snapshot
		{Table: "t", Count: 10, Slot: -1, Tombstones: true}, // tombstones need cluster + as-of
	} {
		s, err := ep.Scan(context.Background(), &req)
		if err != nil {
			t.Fatal(err)
		}
		for s.Next() {
		}
		var re *RequestError
		if err := s.Err(); !errors.As(err, &re) || re.Status != 400 {
			t.Fatalf("req %+v: Err() = %v, want 400 RequestError", req, s.Err())
		}
		s.Close()
	}
}
