package kvwire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/obs"
)

// Server speaks the framed binary protocol over raw TCP connections,
// answering every request frame through the shared Core. Connections
// are persistent and multiplexed: each request frame is handled in its
// own goroutine and its response frame is written whenever it
// completes, so a pipelining client sees out-of-order responses keyed
// by request id.
type Server struct {
	core    *Core
	opts    ServerOptions
	metrics *wireMetrics

	mu       sync.Mutex
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup // in-flight request frames
	closed   atomic.Bool
}

// ServerOptions tune a wire server.
type ServerOptions struct {
	// Metrics registers the kvwire_* series when non-nil.
	Metrics *obs.Registry
	// RetryAfter is the backoff hint carried by admission-shed error
	// frames (default 1s).
	RetryAfter time.Duration
}

// wireMetrics is the kvwire_* series; obs handles are nil-safe, so a
// server without a registry pays two nil checks per frame and nothing
// else.
type wireMetrics struct {
	connsOpen      *obs.Gauge
	framesIn       *obs.Counter
	framesOut      *obs.Counter
	pipeline       *obs.Gauge
	decodeErrs     *obs.Counter
	scanChunks     *obs.Counter
	creditsStalled *obs.Counter
	ingestRecords  *obs.Counter
}

func newWireMetrics(reg *obs.Registry) *wireMetrics {
	reg.Help("kvwire_conns_open", "Binary wire connections currently open.")
	reg.Help("kvwire_frames_total", "Frames moved over the binary wire protocol, by direction.")
	reg.Help("kvwire_pipeline_depth", "Request frames currently in flight across all wire connections.")
	reg.Help("kvwire_decode_errors_total", "Wire frames the server failed to parse (the connection is closed after each).")
	reg.Help("kvwire_scan_chunks_total", "Scan chunk frames streamed to wire clients.")
	reg.Help("kvwire_stream_credits_stalled_total", "Times a stream producer blocked waiting for consumer credits.")
	reg.Help("kvwire_ingest_records_total", "Records ingested over streaming wire ingest.")
	return &wireMetrics{
		connsOpen:      reg.Gauge("kvwire_conns_open"),
		framesIn:       reg.Counter("kvwire_frames_total", "dir", "in"),
		framesOut:      reg.Counter("kvwire_frames_total", "dir", "out"),
		pipeline:       reg.Gauge("kvwire_pipeline_depth"),
		decodeErrs:     reg.Counter("kvwire_decode_errors_total"),
		scanChunks:     reg.Counter("kvwire_scan_chunks_total"),
		creditsStalled: reg.Counter("kvwire_stream_credits_stalled_total"),
		ingestRecords:  reg.Counter("kvwire_ingest_records_total"),
	}
}

// NewServer builds a wire server over core. Pass the same Core to the
// HTTP front end so both transports share one admission limit and
// ownership gate.
func NewServer(core *Core, opts ServerOptions) *Server {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	return &Server{
		core:    core,
		opts:    opts,
		metrics: newWireMetrics(opts.Metrics),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until the listener fails or the
// server shuts down (which returns nil).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return errors.New("kvwire: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn owns one connection: verify the magic, echo it, then read
// request frames until the peer goes away, dispatching each to its own
// handler goroutine.
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.metrics.connsOpen.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	c := &serverConn{
		conn:    conn,
		ctx:     ctx,
		cancel:  cancel,
		scans:   make(map[uint64]*serverScan),
		ingests: make(map[uint64]*serverIngest),
	}
	defer func() {
		// The read side is done (peer EOF or shutdown's CloseRead), but
		// decoded requests may still be executing: their responses can
		// still reach the peer, so the full close waits for them. Stream
		// producers blocked on credits (or ingest handlers blocked on
		// chunks) would wait forever — the conn context wakes them first.
		c.cancel()
		c.handlers.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.connsOpen.Add(-1)
		conn.Close()
	}()

	var magic [len(Magic)]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != Magic {
		if err == nil {
			s.metrics.decodeErrs.Inc()
		}
		return
	}
	if _, err := conn.Write([]byte(Magic)); err != nil {
		return
	}

	var payload []byte
	for {
		var typ byte
		var id uint64
		var err error
		typ, id, payload, err = ReadFrame(conn, payload)
		if err != nil {
			if err != io.EOF && !s.closed.Load() {
				s.metrics.decodeErrs.Inc()
			}
			return
		}
		s.metrics.framesIn.Inc()
		switch typ {
		case frameRequest:
			deadlineMs, ops, err := DecodeRequest(payload, nil)
			if err != nil {
				s.metrics.decodeErrs.Inc()
				return
			}
			s.handlers.Add(1)
			c.handlers.Add(1)
			s.metrics.pipeline.Add(1)
			go func(id uint64, deadlineMs uint64, ops []Op) {
				defer s.handlers.Done()
				defer c.handlers.Done()
				defer s.metrics.pipeline.Add(-1)
				s.handleRequest(c, id, deadlineMs, ops)
			}(id, deadlineMs, ops)
		case frameScanReq, frameChunk, frameStreamEnd, frameCredit, frameIngestReq:
			if !s.handleStreamFrame(c, typ, id, payload) {
				s.metrics.decodeErrs.Inc()
				return
			}
		default:
			s.metrics.decodeErrs.Inc()
			return
		}
	}
}

// serverConn serializes response writes on one connection and counts
// its in-flight handlers so the close waits for their responses. ctx
// is cancelled when the read side dies, waking stream handlers blocked
// on credits or chunks; scans/ingests route stream frames read off the
// connection to the stream's handler goroutine.
type serverConn struct {
	conn     net.Conn
	ctx      context.Context
	cancel   context.CancelFunc
	handlers sync.WaitGroup
	wmu      sync.Mutex
	wbuf     []byte

	smu     sync.Mutex
	scans   map[uint64]*serverScan
	ingests map[uint64]*serverIngest
}

func (s *Server) handleRequest(c *serverConn, id uint64, deadlineMs uint64, ops []Op) {
	release, ok := s.core.AcquireBatch()
	if !ok {
		secs := uint64((s.opts.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		s.writeFrame(c, func(buf []byte) []byte {
			return AppendError(buf, id, 429, secs, "too many in-flight batches")
		})
		return
	}
	defer release()
	ctx := context.Background()
	if deadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMs)*time.Millisecond)
		defer cancel()
	}
	if len(ops) == 0 {
		s.writeFrame(c, func(buf []byte) []byte {
			return AppendError(buf, id, 400, 0, "empty batch")
		})
		return
	}
	res := resultsPool.Get().(*[]Result)
	if cap(*res) < len(ops) {
		*res = make([]Result, len(ops))
	} else {
		*res = (*res)[:len(ops)]
	}
	s.core.ExecBatchInto(ctx, ops, *res)
	s.writeFrame(c, func(buf []byte) []byte {
		return AppendResponse(buf, id, *res)
	})
	clear(*res)
	*res = (*res)[:0]
	resultsPool.Put(res)
}

var resultsPool = sync.Pool{New: func() any {
	res := make([]Result, 0, 64)
	return &res
}}

// writeFrame encodes into the connection's pooled buffer and writes
// it under the write lock (one syscall per frame; the frame is the
// flush unit). Chunk frames from streams interleave with pipelined
// responses here. The error lets stream producers stop scanning for a
// peer that is gone; response writers ignore it.
func (s *Server) writeFrame(c *serverConn, encode func([]byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = encode(c.wbuf[:0])
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return err
	}
	s.metrics.framesOut.Inc()
	return nil
}

// Shutdown drains the server: stop accepting, stop reading new request
// frames, wait (bounded by ctx) for in-flight handlers to write their
// responses, then close every connection. A pipelined request that was
// already decoded when Shutdown began gets its response.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.mu.Lock()
	for ln := range s.lns {
		ln.Close()
	}
	// Half-close the read side so conn readers see EOF and stop
	// accepting new frames while the write side stays usable for
	// in-flight responses.
	for conn := range s.conns {
		if cr, ok := conn.(interface{ CloseRead() error }); ok {
			cr.CloseRead()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("kvwire: shutdown: %w", ctx.Err())
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	return err
}

// Close is Shutdown with no grace.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}
