package kvwire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Endpoint is the client side of the framed binary protocol for one
// server address: a small pool of persistent connections, each
// multiplexing many in-flight requests by id. Exec is safe for
// concurrent use; requests pipeline onto the least-loaded connection
// and responses are matched back by request id, so slow requests never
// head-of-line-block fast ones.
type Endpoint struct {
	addr        string
	maxConns    int
	dialTimeout time.Duration

	mu     sync.Mutex
	conns  []*clientConn
	closed bool
}

// ErrUnavailable reports a definitive protocol failure — connection
// refused, magic mismatch — the kind a caller should latch an HTTP
// fallback on, as opposed to a transient I/O error worth retrying.
var ErrUnavailable = errors.New("kvwire: endpoint unavailable")

// RequestError is a whole-request error frame (admission shed,
// oversized batch); per-item failures ride in Results instead.
type RequestError struct {
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("kvwire: request failed: %d %s", e.Status, e.Msg)
}

// DefaultMaxConns bounds one endpoint's connection pool. Pipelining
// does the heavy lifting; the pool only needs to cover write-lock
// contention.
const DefaultMaxConns = 4

// pipelineBound is the in-flight depth past which Exec prefers opening
// another connection over piling deeper onto an existing one.
const pipelineBound = 128

// NewEndpoint builds a client endpoint for addr (host:port). Dialing
// is lazy: no connection exists until the first Exec.
func NewEndpoint(addr string, maxConns int) *Endpoint {
	if maxConns <= 0 {
		maxConns = DefaultMaxConns
	}
	return &Endpoint{addr: addr, maxConns: maxConns, dialTimeout: 5 * time.Second}
}

// Addr returns the endpoint's dial address.
func (e *Endpoint) Addr() string { return e.addr }

// Exec ships ops as one request frame and waits for the matching
// response. The ctx deadline rides in the frame (the server abandons
// work it cannot start in time, like the HTTP X-Deadline-Ms header).
func (e *Endpoint) Exec(ctx context.Context, ops []Op) ([]Result, error) {
	c, err := e.pick(ctx)
	if err != nil {
		return nil, err
	}
	var deadlineMs uint64
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms <= 0 {
			return nil, context.DeadlineExceeded
		}
		deadlineMs = uint64(ms)
	}
	reply := make(chan wireReply, 1)
	id := c.register(reply)
	if err := c.writeRequest(id, deadlineMs, ops); err != nil {
		c.fail(err)
		e.drop(c)
		return nil, err
	}
	select {
	case r := <-reply:
		if r.err != nil {
			e.drop(c)
			return nil, r.err
		}
		if r.reqErr != nil {
			return nil, r.reqErr
		}
		return r.res, nil
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	}
}

// pick returns a live connection, preferring the least-loaded one and
// dialing a new one while the pool is shallow or every conn is past
// the pipeline bound.
func (e *Endpoint) pick(ctx context.Context) (*clientConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("kvwire: endpoint closed")
	}
	var best *clientConn
	for _, c := range e.conns {
		if c.dead.Load() {
			continue
		}
		if best == nil || c.inflight.Load() < best.inflight.Load() {
			best = c
		}
	}
	if best != nil && (len(e.conns) >= e.maxConns || best.inflight.Load() < pipelineBound) {
		e.mu.Unlock()
		return best, nil
	}
	e.mu.Unlock()

	c, err := e.dial(ctx)
	if err != nil {
		if best != nil {
			return best, nil // a live conn beats a failed dial
		}
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.conn.Close()
		return nil, errors.New("kvwire: endpoint closed")
	}
	e.conns = append(e.conns, c)
	e.mu.Unlock()
	return c, nil
}

// dial opens and handshakes one connection. Refused connections and
// bad magic are ErrUnavailable — the latch-fallback signal.
func (e *Endpoint) dial(ctx context.Context) (*clientConn, error) {
	d := net.Dialer{Timeout: e.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", e.addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	conn.SetDeadline(time.Now().Add(e.dialTimeout))
	if _, err := conn.Write([]byte(Magic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	var echo [len(Magic)]byte
	if _, err := io.ReadFull(conn, echo[:]); err != nil || string(echo[:]) != Magic {
		conn.Close()
		return nil, fmt.Errorf("%w: bad handshake", ErrUnavailable)
	}
	conn.SetDeadline(time.Time{})
	c := &clientConn{
		conn:    conn,
		pending: make(map[uint64]chan<- wireReply),
		streams: make(map[uint64]*clientStream),
	}
	go c.readLoop()
	return c, nil
}

// drop removes a failed connection from the pool.
func (e *Endpoint) drop(c *clientConn) {
	c.dead.Store(true)
	e.mu.Lock()
	for i, cc := range e.conns {
		if cc == c {
			e.conns = append(e.conns[:i], e.conns[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	c.conn.Close()
}

// Close tears down every connection; in-flight Execs fail.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	conns := e.conns
	e.conns = nil
	e.mu.Unlock()
	for _, c := range conns {
		c.fail(errors.New("kvwire: endpoint closed"))
		c.conn.Close()
	}
	return nil
}

// wireReply is one matched response: results, a whole-request error
// frame, or a connection failure.
type wireReply struct {
	res    []Result
	reqErr *RequestError
	err    error
}

type clientConn struct {
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]chan<- wireReply
	streams map[uint64]*clientStream
	nextID  uint64

	inflight atomic.Int64
	dead     atomic.Bool
}

func (c *clientConn) register(reply chan<- wireReply) uint64 {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = reply
	c.mu.Unlock()
	c.inflight.Add(1)
	return id
}

func (c *clientConn) unregister(id uint64) {
	c.mu.Lock()
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		c.inflight.Add(-1)
	}
	c.mu.Unlock()
}

func (c *clientConn) writeRequest(id uint64, deadlineMs uint64, ops []Op) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendRequest(c.wbuf[:0], id, deadlineMs, ops)
	_, err := c.conn.Write(c.wbuf)
	return err
}

// readLoop owns the read side: match response frames to waiters until
// the connection dies, then fail whoever is left.
func (c *clientConn) readLoop() {
	var payload []byte
	for {
		typ, id, p, err := ReadFrame(c.conn, payload)
		if err != nil {
			c.fail(err)
			return
		}
		payload = p
		var reply wireReply
		switch typ {
		case frameResponse:
			res, err := DecodeResponse(payload, nil)
			if err != nil {
				c.fail(err)
				return
			}
			reply.res = res
		case frameError:
			status, retry, msg, err := DecodeError(payload)
			if err != nil {
				c.fail(err)
				return
			}
			reply.reqErr = &RequestError{Status: status, RetryAfter: time.Duration(retry) * time.Second, Msg: msg}
		case frameChunk, frameStreamEnd, frameCredit:
			if err := c.handleStreamFrame(typ, id, payload); err != nil {
				c.fail(err)
				return
			}
			continue
		default:
			c.fail(fmt.Errorf("kvwire: unexpected frame type %d", typ))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			c.inflight.Add(-1)
			ch <- reply
		}
	}
}

// fail marks the conn dead and answers every waiter — pending
// requests and open streams — with err.
func (c *clientConn) fail(err error) {
	c.dead.Store(true)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan<- wireReply)
	c.mu.Unlock()
	for _, ch := range pending {
		c.inflight.Add(-1)
		ch <- wireReply{err: fmt.Errorf("kvwire: connection failed: %w", err)}
	}
	c.failStreams(fmt.Errorf("kvwire: connection failed: %w", err))
}
