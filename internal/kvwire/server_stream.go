package kvwire

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"ycsbt/internal/kvstore"
)

// Server side of the streaming protocol (see stream.go for the frame
// layout). Scans run in a producer goroutine per stream that blocks on
// consumer credits, so server memory per scan is one chunk regardless
// of result size or consumer speed; ingests run in a handler goroutine
// fed by a bounded channel whose capacity is exactly the credit window
// the server granted, so a client that sends past its credits hits a
// full channel and is disconnected as a protocol violator.

// serverScan is one outbound scan stream: the producer takes one
// credit per chunk frame and parks when the consumer has granted none.
type serverScan struct {
	mu      sync.Mutex
	credits uint64
	avail   chan struct{} // buffered(1), pulsed on every grant
	cancel  context.CancelFunc
}

// grant adds n credits and wakes a parked producer.
func (sc *serverScan) grant(n uint64) {
	sc.mu.Lock()
	sc.credits += n
	sc.mu.Unlock()
	select {
	case sc.avail <- struct{}{}:
	default:
	}
}

// take consumes one credit, blocking until the consumer grants more,
// the stream is cancelled, or the connection dies. onStall fires once
// when the producer has to park.
func (sc *serverScan) take(ctx context.Context, onStall func()) error {
	stalled := false
	for {
		sc.mu.Lock()
		if sc.credits > 0 {
			sc.credits--
			sc.mu.Unlock()
			return nil
		}
		sc.mu.Unlock()
		if !stalled {
			stalled = true
			onStall()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-sc.avail:
		}
	}
}

// serverIngest is one inbound ingest stream: the read loop decodes
// chunk frames into the channel, the handler goroutine feeds them to
// Core.StreamIngest and grants one credit back per chunk it takes.
type serverIngest struct {
	chunks chan []kvstore.BulkKV
	cancel context.CancelFunc
	ended  bool // client sent its stream-end; channel closed or stream aborted
}

// handleStreamFrame routes one stream frame read off the connection.
// false means protocol violation (the read loop closes the conn).
func (s *Server) handleStreamFrame(c *serverConn, typ byte, id uint64, payload []byte) bool {
	switch typ {
	case frameScanReq:
		req, window, err := DecodeScanRequest(payload)
		if err != nil {
			return false
		}
		return s.startScan(c, id, &req, window)
	case frameIngestReq:
		table, err := DecodeIngestRequest(payload)
		if err != nil {
			return false
		}
		return s.startIngest(c, id, table)
	case frameCredit:
		n, err := DecodeCredit(payload)
		if err != nil {
			return false
		}
		c.smu.Lock()
		sc := c.scans[id]
		c.smu.Unlock()
		// A credit for a stream that just ended races the end frame —
		// tolerated, not a violation.
		if sc != nil {
			sc.grant(n)
		}
		return true
	case frameChunk:
		return s.routeIngestChunk(c, id, payload)
	case frameStreamEnd:
		status, _, _, _, err := DecodeStreamEnd(payload)
		if err != nil {
			return false
		}
		c.endStream(id, status)
		return true
	}
	return false
}

// endStream applies a consumer/producer stream-end from the peer: a
// scan's consumer cancelling, or an ingest's producer finishing
// (status 200) or aborting. Unknown ids are tolerated — the peer's end
// can race the server's own end frame.
func (c *serverConn) endStream(id uint64, status int) {
	c.smu.Lock()
	defer c.smu.Unlock()
	if sc := c.scans[id]; sc != nil {
		sc.cancel()
		return
	}
	if ing := c.ingests[id]; ing != nil && !ing.ended {
		ing.ended = true
		if status == http.StatusOK {
			close(ing.chunks)
		} else {
			ing.cancel()
		}
	}
}

// startScan registers an outbound scan stream and spawns its producer.
func (s *Server) startScan(c *serverConn, id uint64, req *ScanRequest, window int) bool {
	ctx, cancel := context.WithCancel(c.ctx)
	sc := &serverScan{credits: uint64(window), avail: make(chan struct{}, 1), cancel: cancel}
	c.smu.Lock()
	if _, dup := c.scans[id]; dup || c.ingests[id] != nil {
		c.smu.Unlock()
		cancel()
		return false
	}
	c.scans[id] = sc
	c.smu.Unlock()
	s.handlers.Add(1)
	c.handlers.Add(1)
	go func() {
		defer s.handlers.Done()
		defer c.handlers.Done()
		defer cancel()
		s.runScan(ctx, c, id, sc, req)
		c.smu.Lock()
		delete(c.scans, id)
		c.smu.Unlock()
	}()
	return true
}

// runScan drives Core.StreamScan, writing one chunk frame per credit
// and a terminal stream-end frame.
func (s *Server) runScan(ctx context.Context, c *serverConn, id uint64, sc *serverScan, req *ScanRequest) {
	var total uint64
	recs := make([]StreamRecord, 0, streamChunkRecords)
	mapVer, err := s.core.StreamScan(ctx, req, func(chunk []kvstore.VersionedKV, mapVersion int64) error {
		if err := sc.take(ctx, s.metrics.creditsStalled.Inc); err != nil {
			return err
		}
		recs = recs[:0]
		for _, kv := range chunk {
			recs = append(recs, StreamRecord{
				Key:      kv.Key,
				Version:  kv.Record.Version,
				CommitTS: kv.Record.CommitTS,
				Deleted:  kv.Record.Tombstone(),
				Fields:   kv.Record.Fields,
			})
		}
		if err := s.writeFrame(c, func(buf []byte) []byte {
			return AppendChunk(buf, id, mapVersion, recs)
		}); err != nil {
			return err
		}
		s.metrics.scanChunks.Inc()
		total += uint64(len(chunk))
		return nil
	})
	status, msg := http.StatusOK, ""
	switch {
	case err == nil:
	case ctx.Err() != nil:
		// Consumer cancel (or conn death, where the write below fails
		// harmlessly): status 0 acks the cancel so the client can
		// retire the stream id.
		status = 0
	default:
		status, msg = http.StatusInternalServerError, err.Error()
		var serr *StreamError
		if errors.As(err, &serr) {
			status, msg = serr.Status, serr.Msg
		}
	}
	s.writeFrame(c, func(buf []byte) []byte {
		return AppendStreamEnd(buf, id, status, mapVer, total, msg)
	})
}

// startIngest admits and registers an inbound ingest stream, answering
// with the server's credit window, and spawns its handler.
func (s *Server) startIngest(c *serverConn, id uint64, table string) bool {
	release, ok := s.core.AcquireBatch()
	if !ok {
		secs := uint64((s.opts.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		s.writeFrame(c, func(buf []byte) []byte {
			return AppendStreamEnd(buf, id, http.StatusTooManyRequests, 0, secs, "too many in-flight batches")
		})
		return true
	}
	ctx, cancel := context.WithCancel(c.ctx)
	ing := &serverIngest{chunks: make(chan []kvstore.BulkKV, DefaultStreamWindow), cancel: cancel}
	c.smu.Lock()
	if _, dup := c.ingests[id]; dup || c.scans[id] != nil {
		c.smu.Unlock()
		cancel()
		release()
		return false
	}
	c.ingests[id] = ing
	c.smu.Unlock()
	if err := s.writeFrame(c, func(buf []byte) []byte {
		return AppendCredit(buf, id, DefaultStreamWindow)
	}); err != nil {
		c.smu.Lock()
		delete(c.ingests, id)
		c.smu.Unlock()
		cancel()
		release()
		return true
	}
	s.handlers.Add(1)
	c.handlers.Add(1)
	go func() {
		defer s.handlers.Done()
		defer c.handlers.Done()
		defer cancel()
		defer release()
		s.runIngest(ctx, c, id, ing, table)
		c.smu.Lock()
		delete(c.ingests, id)
		c.smu.Unlock()
	}()
	return true
}

// routeIngestChunk decodes one inbound chunk and hands it to the
// stream's handler. A chunk past the granted credits finds the channel
// full — protocol violation, conn closed — so server memory is bounded
// by window × chunk size no matter what the client does.
func (s *Server) routeIngestChunk(c *serverConn, id uint64, payload []byte) bool {
	c.smu.Lock()
	ing := c.ingests[id]
	ended := ing != nil && ing.ended
	c.smu.Unlock()
	if ing == nil || ended {
		return false
	}
	_, recs, err := DecodeChunk(payload, nil)
	if err != nil {
		return false
	}
	kvs := make([]kvstore.BulkKV, len(recs))
	for i := range recs {
		kvs[i] = kvstore.BulkKV{
			Key:      recs[i].Key,
			Fields:   recs[i].Fields,
			Version:  recs[i].Version,
			CommitTS: recs[i].CommitTS,
			Deleted:  recs[i].Deleted,
		}
	}
	select {
	case ing.chunks <- kvs:
		return true
	default:
		return false
	}
}

// runIngest feeds chunks to Core.StreamIngest, granting one credit
// back per chunk taken, and acks the stream with the ingested count.
func (s *Server) runIngest(ctx context.Context, c *serverConn, id uint64, ing *serverIngest, table string) {
	total, err := s.core.StreamIngest(ctx, table, func() ([]kvstore.BulkKV, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case kvs, ok := <-ing.chunks:
			if !ok {
				return nil, nil
			}
			// Grant-after-take: the channel capacity, not the client's
			// send rate, bounds buffered chunks.
			s.writeFrame(c, func(buf []byte) []byte {
				return AppendCredit(buf, id, 1)
			})
			return kvs, nil
		}
	})
	if err != nil {
		s.metrics.ingestRecords.Add(int64(total))
		if ctx.Err() != nil {
			return // client abort or conn death; nothing to ack
		}
		status, msg := http.StatusInternalServerError, err.Error()
		var serr *StreamError
		if errors.As(err, &serr) {
			status, msg = serr.Status, serr.Msg
		}
		s.writeFrame(c, func(buf []byte) []byte {
			return AppendStreamEnd(buf, id, status, 0, total, msg)
		})
		// The client may have window chunks in flight; drain them (no
		// further grants) until its stream-end closes the channel, so
		// the read loop doesn't mistake them for a credit overrun.
		for {
			select {
			case <-ctx.Done():
				return
			case _, ok := <-ing.chunks:
				if !ok {
					return
				}
			}
		}
	}
	s.metrics.ingestRecords.Add(int64(total))
	s.writeFrame(c, func(buf []byte) []byte {
		return AppendStreamEnd(buf, id, http.StatusOK, 0, total, "")
	})
}
