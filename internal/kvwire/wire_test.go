package kvwire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
)

// startWireServer boots a Server over a fresh volatile store and
// returns its dial address plus the pieces tests poke at.
func startWireServer(t *testing.T, core *Core, opts ServerOptions) (*Server, string) {
	t.Helper()
	srv := NewServer(core, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func newTestCore(t *testing.T) *Core {
	t.Helper()
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return NewCore(store, nil, 0)
}

func TestWireExecRoundTrip(t *testing.T) {
	core := newTestCore(t)
	_, addr := startWireServer(t, core, ServerOptions{})
	ep := NewEndpoint(addr, 0)
	defer ep.Close()
	ctx := context.Background()

	res, err := ep.Exec(ctx, []Op{
		{Kind: KindPut, Table: "t", Key: "a", Fields: map[string][]byte{"f": []byte("1")}, Expect: kvstore.AnyVersion},
		{Kind: KindPut, Table: "t", Key: "b", Fields: map[string][]byte{"f": []byte("2")}, Expect: kvstore.MustNotExist},
		{Kind: KindGet, Table: "t", Key: "a"},
		{Kind: KindGet, Table: "t", Key: "missing"},
		{Kind: KindDelete, Table: "t", Key: "b", Expect: kvstore.AnyVersion},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{200, 200, 200, 404, 204}
	for i, st := range want {
		if res[i].Status != st {
			t.Errorf("res[%d].Status = %d, want %d (%+v)", i, res[i].Status, st, res[i])
		}
	}
	if string(res[2].Fields["f"]) != "1" {
		t.Errorf("get returned %q", res[2].Fields["f"])
	}
	if !res[0].HasVersion || res[0].Version == 0 {
		t.Errorf("put result missing version: %+v", res[0])
	}

	// Create-only against an existing key must 412.
	res, err = ep.Exec(ctx, []Op{{Kind: KindPut, Table: "t", Key: "a", Fields: map[string][]byte{"f": []byte("x")}, Expect: kvstore.MustNotExist}})
	if err != nil || res[0].Status != 412 {
		t.Fatalf("create-only overwrite: res=%+v err=%v", res, err)
	}
}

func TestWirePipelinedConcurrentExecs(t *testing.T) {
	core := newTestCore(t)
	_, addr := startWireServer(t, core, ServerOptions{})
	ep := NewEndpoint(addr, 1) // force one conn: all requests pipeline
	defer ep.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%26))
			res, err := ep.Exec(context.Background(), []Op{
				{Kind: KindPut, Table: "t", Key: key, Fields: map[string][]byte{"f": []byte(key)}, Expect: kvstore.AnyVersion},
				{Kind: KindGet, Table: "t", Key: key},
			})
			if err != nil {
				errs <- err
				return
			}
			if res[0].Status != 200 || res[1].Status != 200 {
				errs <- errors.New("bad statuses")
				return
			}
			if string(res[1].Fields["f"]) != key {
				errs <- errors.New("cross-matched response: wrong field value")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// blockingEngine parks BatchApply until released, so tests can hold a
// request in flight deterministically.
type blockingEngine struct {
	kvstore.Engine
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (e *blockingEngine) BatchApply(muts []kvstore.Mutation) []kvstore.MutResult {
	e.once.Do(func() { close(e.entered) })
	<-e.release
	return e.Engine.BatchApply(muts)
}

func TestWireShutdownDrainsInflightPipelinedRequest(t *testing.T) {
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := &blockingEngine{Engine: store, entered: make(chan struct{}), release: make(chan struct{})}
	core := NewCore(eng, nil, 0)
	srv, addr := startWireServer(t, core, ServerOptions{})
	ep := NewEndpoint(addr, 1)
	defer ep.Close()

	// Park one mutation in the engine, pipelined behind nothing.
	execDone := make(chan error, 1)
	var res []Result
	go func() {
		var err error
		res, err = ep.Exec(context.Background(), []Op{
			{Kind: KindPut, Table: "t", Key: "k", Fields: map[string][]byte{"f": []byte("v")}, Expect: kvstore.AnyVersion},
		})
		execDone <- err
	}()
	<-eng.entered

	// Shutdown with the request still in flight: it must not return
	// until the handler has written its response.
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// Give shutdown a moment to close the read side, then release the
	// engine so the handler can finish.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-shutDone:
		t.Fatal("Shutdown returned while a request was still in flight")
	default:
	}
	close(eng.release)

	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-execDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if len(res) != 1 || res[0].Status != 200 {
		t.Fatalf("in-flight request answered %+v", res)
	}

	// The endpoint's connection is now closed; a new request fails.
	if _, err := ep.Exec(context.Background(), []Op{{Kind: KindGet, Table: "t", Key: "k"}}); err == nil {
		t.Fatal("request succeeded against a shut-down server")
	}
}

func TestWireAdmissionShed(t *testing.T) {
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := &blockingEngine{Engine: store, entered: make(chan struct{}), release: make(chan struct{})}
	defer close(eng.release)
	core := NewCore(eng, nil, 1)
	_, addr := startWireServer(t, core, ServerOptions{RetryAfter: 3 * time.Second})
	ep := NewEndpoint(addr, 1)
	defer ep.Close()

	go ep.Exec(context.Background(), []Op{
		{Kind: KindPut, Table: "t", Key: "k", Fields: map[string][]byte{"f": []byte("v")}, Expect: kvstore.AnyVersion},
	})
	<-eng.entered

	_, err = ep.Exec(context.Background(), []Op{{Kind: KindGet, Table: "t", Key: "k"}})
	var re *RequestError
	if !errors.As(err, &re) || re.Status != 429 {
		t.Fatalf("err=%v, want 429 RequestError", err)
	}
	if re.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter=%v, want 3s", re.RetryAfter)
	}
}

func TestWireDialUnavailable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now
	ep := NewEndpoint(addr, 0)
	defer ep.Close()
	_, err = ep.Exec(context.Background(), []Op{{Kind: KindGet, Table: "t", Key: "k"}})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err=%v, want ErrUnavailable", err)
	}
}
