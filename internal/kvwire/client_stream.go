package kvwire

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Client side of the streaming protocol. A ScanStream consumes chunk
// frames the server produces, granting one credit back per chunk it
// finishes, so the amount buffered client-side is bounded by the
// window it asked for; an IngestStream produces chunk frames against
// the server's granted credits, blocking when the server falls behind.
// Both multiplex onto the same pooled connections as Exec — chunks
// interleave with pipelined responses.

// clientStream is one stream's read-loop mailbox. Scan chunks ride ev
// (capacity = window, so a server exceeding its credits hits a full
// channel and the connection is failed as a protocol violator);
// terminal events — the peer's stream-end or a connection failure —
// ride term, capacity 1, which the read loop fills after everything
// sent before it is already in ev.
type clientStream struct {
	id     uint64
	ingest bool

	ev   chan streamEvent
	term chan streamEvent

	// cancelled marks a scan the consumer abandoned: the read loop
	// discards its remaining chunks and retires the id on the ack.
	cancelled atomic.Bool

	// Ingest producer state: credits granted by the server, avail
	// pulsed on every grant and on terminal events.
	credits atomic.Int64
	avail   chan struct{}
}

// streamEvent is one read-loop delivery: a chunk, the peer's
// stream-end (end=true), or a connection failure (err != nil).
type streamEvent struct {
	recs   []StreamRecord
	mapVer int64
	end    bool
	status int
	count  uint64
	msg    string
	err    error
}

func (st *clientStream) pulse() {
	select {
	case st.avail <- struct{}{}:
	default:
	}
}

// deliverTerm hands the stream its terminal event. Capacity 1 and
// single-delivery discipline (the read loop unregisters the stream
// first) mean this never blocks.
func (st *clientStream) deliverTerm(e streamEvent) {
	select {
	case st.term <- e:
	default:
	}
	st.pulse()
}

// openStream registers a new stream on the conn, sharing the request
// id space (and the inflight count load-balanced by pick).
func (c *clientConn) openStream(ingest bool, window int) *clientStream {
	st := &clientStream{
		ingest: ingest,
		ev:     make(chan streamEvent, window),
		term:   make(chan streamEvent, 1),
		avail:  make(chan struct{}, 1),
	}
	c.mu.Lock()
	c.nextID++
	st.id = c.nextID
	c.streams[st.id] = st
	c.mu.Unlock()
	c.inflight.Add(1)
	return st
}

// takeStream unregisters a stream (terminal frame received).
func (c *clientConn) takeStream(id uint64) *clientStream {
	c.mu.Lock()
	st, ok := c.streams[id]
	if ok {
		delete(c.streams, id)
	}
	c.mu.Unlock()
	if ok {
		c.inflight.Add(-1)
	}
	return st
}

// handleStreamFrame routes one stream frame from the read loop.
// Returning an error fails the connection.
func (c *clientConn) handleStreamFrame(typ byte, id uint64, payload []byte) error {
	c.mu.Lock()
	st := c.streams[id]
	c.mu.Unlock()
	switch typ {
	case frameChunk:
		if st == nil || st.ingest {
			return fmt.Errorf("kvwire: chunk frame for unknown stream %d", id)
		}
		if st.cancelled.Load() {
			return nil // draining an abandoned scan
		}
		mapVer, recs, err := DecodeChunk(payload, nil)
		if err != nil {
			return err
		}
		select {
		case st.ev <- streamEvent{recs: recs, mapVer: mapVer}:
			return nil
		default:
			return errors.New("kvwire: server exceeded granted stream credits")
		}
	case frameCredit:
		if st == nil || !st.ingest {
			return fmt.Errorf("kvwire: credit frame for unknown stream %d", id)
		}
		n, err := DecodeCredit(payload)
		if err != nil {
			return err
		}
		st.credits.Add(int64(n))
		st.pulse()
		return nil
	case frameStreamEnd:
		status, mapVer, count, msg, err := DecodeStreamEnd(payload)
		if err != nil {
			return err
		}
		st = c.takeStream(id)
		if st == nil {
			return fmt.Errorf("kvwire: stream-end for unknown stream %d", id)
		}
		st.deliverTerm(streamEvent{end: true, status: status, mapVer: mapVer, count: count, msg: msg})
		return nil
	}
	return fmt.Errorf("kvwire: unexpected frame type %d", typ)
}

// failStreams answers every open stream with the connection error.
func (c *clientConn) failStreams(err error) {
	c.mu.Lock()
	streams := c.streams
	c.streams = make(map[uint64]*clientStream)
	c.mu.Unlock()
	for _, st := range streams {
		c.inflight.Add(-1)
		st.deliverTerm(streamEvent{err: err})
	}
}

// writeStreamFrame shares the conn's write lock and buffer with
// request frames.
func (c *clientConn) writeStreamFrame(encode func([]byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = encode(c.wbuf[:0])
	_, err := c.conn.Write(c.wbuf)
	return err
}

// ScanStream iterates a streamed scan:
//
//	s, err := ep.Scan(ctx, &kvwire.ScanRequest{Table: "t", Count: 1000})
//	defer s.Close()
//	for s.Next() {
//		rec := s.Record()
//	}
//	err = s.Err()
//
// Next/Record/Err/Close must stay on one goroutine. Close is required
// unless Next returned false (it cancels the server's producer).
type ScanStream struct {
	e   *Endpoint
	c   *clientConn
	st  *clientStream
	ctx context.Context

	chunk  []StreamRecord
	idx    int
	mapVer int64
	done   bool
	err    error
}

// Scan opens one streamed scan. req.Window chooses the credit window
// (0 = DefaultStreamWindow). Errors from the open itself (dial,
// handshake) wrap ErrUnavailable like Exec; stream-level failures
// surface from Next/Err.
func (e *Endpoint) Scan(ctx context.Context, req *ScanRequest) (*ScanStream, error) {
	c, err := e.pick(ctx)
	if err != nil {
		return nil, err
	}
	window := req.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	st := c.openStream(false, window)
	if err := c.writeStreamFrame(func(buf []byte) []byte {
		r := *req
		r.Window = window
		return AppendScanRequest(buf, st.id, &r)
	}); err != nil {
		c.takeStream(st.id)
		c.fail(err)
		e.drop(c)
		return nil, err
	}
	return &ScanStream{e: e, c: c, st: st, ctx: ctx}, nil
}

// Next advances to the next record, blocking for the next chunk (and
// granting a credit back per finished chunk). False means the stream
// is done: Err distinguishes a clean end from a failure.
func (s *ScanStream) Next() bool {
	if s.done {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.fail(err, false)
		return false
	}
	s.idx++
	if s.idx < len(s.chunk) {
		return true
	}
	if s.chunk != nil {
		// Finished a chunk: grant the server one more.
		s.chunk = nil
		if err := s.c.writeStreamFrame(func(buf []byte) []byte {
			return AppendCredit(buf, s.st.id, 1)
		}); err != nil {
			s.fail(err, true)
			return false
		}
	}
	// Drain buffered chunks before looking at a terminal event: the
	// read loop only delivers term after every prior chunk is in ev.
	var e streamEvent
	select {
	case e = <-s.st.ev:
	default:
		select {
		case e = <-s.st.ev:
		case e = <-s.st.term:
		case <-s.ctx.Done():
			s.fail(s.ctx.Err(), false)
			return false
		}
	}
	switch {
	case e.err != nil:
		s.fail(e.err, true)
		return false
	case e.end:
		s.done = true
		if e.mapVer != 0 {
			s.mapVer = e.mapVer
		}
		if e.status != http.StatusOK {
			s.err = &RequestError{Status: e.status, Msg: e.msg}
		}
		return false
	}
	s.chunk, s.idx, s.mapVer = e.recs, 0, e.mapVer
	return true
}

// fail terminates the stream on a local error. connDead drops the
// pooled connection; otherwise (ctx cancel) Close tells the server to
// stop.
func (s *ScanStream) fail(err error, connDead bool) {
	s.done = true
	s.err = err
	if connDead {
		s.c.takeStream(s.st.id)
		s.st.cancelled.Store(true)
		s.e.drop(s.c)
	} else {
		s.Close()
	}
}

// Record returns the current record (valid after Next returned true,
// until the next Next call).
func (s *ScanStream) Record() *StreamRecord { return &s.chunk[s.idx] }

// MapVersion reports the shard-map version echoed on the last chunk
// (or the stream end), 0 for single-node servers.
func (s *ScanStream) MapVersion() int64 { return s.mapVer }

// Err reports how the stream ended: nil for a clean end, a
// *RequestError for a server-side abort (400/409/...), the ctx or
// connection error otherwise.
func (s *ScanStream) Err() error { return s.err }

// Close cancels the scan if it is still running. The server acks the
// cancel with a stream-end the read loop uses to retire the id; Close
// does not wait for it.
func (s *ScanStream) Close() error {
	if s.st.cancelled.Swap(true) {
		return nil
	}
	s.done = true
	// Only cancel a stream still registered (not yet terminated).
	s.c.mu.Lock()
	_, open := s.c.streams[s.st.id]
	s.c.mu.Unlock()
	if !open {
		return nil
	}
	if err := s.c.writeStreamFrame(func(buf []byte) []byte {
		return AppendStreamEnd(buf, s.st.id, 0, 0, 0, "")
	}); err != nil {
		s.c.takeStream(s.st.id)
		s.e.drop(s.c)
		return err
	}
	return nil
}

// IngestStream streams record chunks into one table:
//
//	in, err := ep.Ingest(ctx, "t")
//	err = in.Send(recs)          // repeatedly; blocks on server credits
//	n, err := in.Close()         // finishes and returns the server's count
//
// Send/Close/Abort must stay on one goroutine. On error, call Abort.
type IngestStream struct {
	e   *Endpoint
	c   *clientConn
	st  *clientStream
	ctx context.Context

	done bool
	term *streamEvent
}

// Ingest opens one streamed ingest. The server answers with its credit
// window (or an admission-shed stream-end, surfaced by the first Send
// or Close as a 429 RequestError).
func (e *Endpoint) Ingest(ctx context.Context, table string) (*IngestStream, error) {
	c, err := e.pick(ctx)
	if err != nil {
		return nil, err
	}
	st := c.openStream(true, 1)
	if err := c.writeStreamFrame(func(buf []byte) []byte {
		return AppendIngestRequest(buf, st.id, table)
	}); err != nil {
		c.takeStream(st.id)
		c.fail(err)
		e.drop(c)
		return nil, err
	}
	return &IngestStream{e: e, c: c, st: st, ctx: ctx}, nil
}

// take blocks until the server has granted a chunk credit; a terminal
// event instead is returned as the stream's outcome error.
func (in *IngestStream) take() error {
	for {
		select {
		case e := <-in.st.term:
			in.term = &e
			return in.termErr()
		default:
		}
		if in.st.credits.Add(-1) >= 0 {
			return nil
		}
		in.st.credits.Add(1)
		select {
		case <-in.ctx.Done():
			return in.ctx.Err()
		case <-in.st.avail:
		}
	}
}

func (in *IngestStream) termErr() error {
	e := in.term
	if e.err != nil {
		return e.err
	}
	if e.status != http.StatusOK {
		return &RequestError{Status: e.status, Msg: e.msg}
	}
	return nil
}

// Send ships recs as one or more chunk frames, blocking whenever the
// server's credits are exhausted — the flow control that keeps server
// memory bounded however large the ingest is.
func (in *IngestStream) Send(recs []StreamRecord) error {
	if in.done {
		return errors.New("kvwire: ingest stream closed")
	}
	for len(recs) > 0 {
		n := len(recs)
		if n > streamChunkRecords {
			n = streamChunkRecords
		}
		if err := in.take(); err != nil {
			in.finish(err)
			return err
		}
		if err := in.c.writeStreamFrame(func(buf []byte) []byte {
			return AppendChunk(buf, in.st.id, 0, recs[:n])
		}); err != nil {
			in.failConn(err)
			return err
		}
		recs = recs[n:]
	}
	return nil
}

// Close ends the stream cleanly and waits for the server's ack,
// returning the number of records it ingested.
func (in *IngestStream) Close() (uint64, error) {
	if in.done {
		return 0, errors.New("kvwire: ingest stream closed")
	}
	if in.term == nil {
		if err := in.c.writeStreamFrame(func(buf []byte) []byte {
			return AppendStreamEnd(buf, in.st.id, http.StatusOK, 0, 0, "")
		}); err != nil {
			in.failConn(err)
			return 0, err
		}
		select {
		case e := <-in.st.term:
			in.term = &e
		case <-in.ctx.Done():
			in.failConn(in.ctx.Err())
			return 0, in.ctx.Err()
		}
	}
	in.done = true
	if err := in.termErr(); err != nil {
		if in.term.err != nil {
			in.e.drop(in.c)
		}
		return in.term.count, err
	}
	return in.term.count, nil
}

// Abort tells the server to discard the stream (its ingest handler
// stops at the next chunk boundary; records already ingested stay —
// the engine ingest is idempotent, callers retry the whole copy).
func (in *IngestStream) Abort() {
	if in.done {
		return
	}
	if in.term == nil {
		if err := in.c.writeStreamFrame(func(buf []byte) []byte {
			return AppendStreamEnd(buf, in.st.id, 0, 0, 0, "abort")
		}); err != nil {
			in.failConn(err)
			return
		}
		// The server does not ack an abort; retire the id locally.
		in.c.takeStream(in.st.id)
	}
	in.done = true
}

// finish retires the stream after a terminal error that leaves the
// connection healthy (ctx cancel, admission shed, server-side store
// error). The end frame is sent even when the server aborted first —
// its handler drains the stream until the client's end arrives — and
// is harmless if the server already forgot the id.
func (in *IngestStream) finish(err error) {
	in.done = true
	if in.term != nil && in.term.err != nil {
		in.failConn(in.term.err)
		return
	}
	in.c.writeStreamFrame(func(buf []byte) []byte {
		return AppendStreamEnd(buf, in.st.id, 0, 0, 0, "abort")
	})
	in.c.takeStream(in.st.id)
}

// failConn retires the stream after a connection-level failure.
func (in *IngestStream) failConn(err error) {
	in.done = true
	in.c.takeStream(in.st.id)
	in.c.fail(err)
	in.e.drop(in.c)
}
