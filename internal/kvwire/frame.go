package kvwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The framed binary protocol. A connection opens with a 4-byte magic
// ("KVW1") from the client; after the server echoes it, both sides
// exchange length-prefixed frames:
//
//	u32 LE payload length | u8 frame type | u64 LE request id | payload
//
// Request ids are chosen by the client and echoed verbatim, so many
// requests ride one TCP connection concurrently and responses return
// in completion order, not request order (pipelining). Frame types:
//
//	1 request  — uvarint deadline_ms, uvarint op count, ops
//	2 response — uvarint result count, results
//	3 error    — uvarint status, uvarint retry-after secs, msg bytes
//
// Ops and results use uvarint lengths and values, varint (zigzag) for
// signed timestamps, and single flags bytes for optional payload
// sections — the encoding equivalent of omitempty. Strings ride as
// raw bytes; there is no text anywhere on the hot path.
//
// An error frame answers a request that failed as a whole (admission
// shed 429, oversized batch 400) — per-item failures are ordinary
// results with non-2xx statuses, exactly like /v1/batch. A peer that
// cannot parse a frame at all must close the connection: framing is
// the only resync point.

// Magic opens every connection, both directions. The trailing '1' is
// the protocol version.
const Magic = "KVW1"

// Frame types.
const (
	frameRequest  = 1
	frameResponse = 2
	frameError    = 3
)

// MaxFramePayload bounds one frame. Larger length prefixes are a
// protocol error: the reader refuses them before allocating, so a
// hostile or corrupt peer cannot make the server reserve gigabytes.
const MaxFramePayload = 16 << 20

// MaxOpsPerFrame mirrors the HTTP front end's maxBatchItems cap.
const MaxOpsPerFrame = 4096

// maxFieldsPerOp bounds the per-record field map claimed by a frame.
const maxFieldsPerOp = 1 << 16

// Op flags.
const (
	opFlagExpect       = 1 << 0 // exact-version conditional follows
	opFlagMustNotExist = 1 << 1 // create-only conditional
	opFlagAsOf         = 1 << 2 // snapshot timestamp follows
	opFlagFields       = 1 << 3 // field map follows
)

// Result flags.
const (
	resFlagVersion = 1 << 0
	resFlagFields  = 1 << 1
	resFlagErr     = 1 << 2
	resFlagAsOf    = 1 << 3
	resFlagMoved   = 1 << 4
)

// ErrFrameTooLarge reports a length prefix over MaxFramePayload.
var ErrFrameTooLarge = errors.New("kvwire: frame exceeds size limit")

// errTruncated reports a payload that ended mid-structure.
var errTruncated = errors.New("kvwire: truncated payload")

const frameHeaderLen = 4 + 1 + 8

// appendFrameHeader reserves and fills the frame header; the caller
// appends the payload and then calls finishFrame to patch the length.
func appendFrameHeader(buf []byte, typ byte, id uint64) []byte {
	buf = append(buf, 0, 0, 0, 0, typ)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return buf
}

// finishFrame patches the length prefix of the frame starting at off.
func finishFrame(buf []byte, off int) []byte {
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(buf)-off-frameHeaderLen))
	return buf
}

// AppendRequest encodes one request frame carrying ops.
func AppendRequest(buf []byte, id uint64, deadlineMs uint64, ops []Op) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameRequest, id)
	buf = binary.AppendUvarint(buf, deadlineMs)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for i := range ops {
		buf = appendOp(buf, &ops[i])
	}
	return finishFrame(buf, off)
}

func appendOp(buf []byte, op *Op) []byte {
	buf = append(buf, byte(op.Kind))
	var flags byte
	switch {
	case op.Expect == 0: // kvstore.MustNotExist
		flags |= opFlagMustNotExist
	case op.Expect != ^uint64(0): // not kvstore.AnyVersion
		flags |= opFlagExpect
	}
	if op.AsOf != 0 {
		flags |= opFlagAsOf
	}
	if op.Fields != nil {
		flags |= opFlagFields
	}
	buf = append(buf, flags)
	buf = appendBytes(buf, op.Table)
	buf = appendBytes(buf, op.Key)
	if flags&opFlagExpect != 0 {
		buf = binary.AppendUvarint(buf, op.Expect)
	}
	if flags&opFlagAsOf != 0 {
		buf = binary.AppendVarint(buf, op.AsOf)
	}
	if flags&opFlagFields != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(op.Fields)))
		for k, v := range op.Fields {
			buf = appendBytes(buf, k)
			buf = append(binary.AppendUvarint(buf, uint64(len(v))), v...)
		}
	}
	return buf
}

// AppendResponse encodes one response frame carrying results.
func AppendResponse(buf []byte, id uint64, res []Result) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameResponse, id)
	buf = binary.AppendUvarint(buf, uint64(len(res)))
	for i := range res {
		buf = appendResult(buf, &res[i])
	}
	return finishFrame(buf, off)
}

func appendResult(buf []byte, r *Result) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Status))
	var flags byte
	if r.HasVersion {
		flags |= resFlagVersion
	}
	if r.Fields != nil {
		flags |= resFlagFields
	}
	if r.Err != "" {
		flags |= resFlagErr
	}
	if r.AsOf != 0 {
		flags |= resFlagAsOf
	}
	if r.Owner != "" || r.MapVersion != 0 {
		flags |= resFlagMoved
	}
	buf = append(buf, flags)
	if flags&resFlagVersion != 0 {
		buf = binary.AppendUvarint(buf, r.Version)
	}
	if flags&resFlagFields != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(r.Fields)))
		for k, v := range r.Fields {
			buf = appendBytes(buf, k)
			buf = append(binary.AppendUvarint(buf, uint64(len(v))), v...)
		}
	}
	if flags&resFlagErr != 0 {
		buf = appendBytes(buf, r.Err)
	}
	if flags&resFlagAsOf != 0 {
		buf = binary.AppendVarint(buf, r.AsOf)
	}
	if flags&resFlagMoved != 0 {
		buf = appendBytes(buf, r.Owner)
		buf = binary.AppendVarint(buf, r.MapVersion)
	}
	return buf
}

// AppendError encodes one error frame: a whole-request failure.
func AppendError(buf []byte, id uint64, status int, retryAfterSecs uint64, msg string) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameError, id)
	buf = binary.AppendUvarint(buf, uint64(status))
	buf = binary.AppendUvarint(buf, retryAfterSecs)
	buf = append(buf, msg...)
	return finishFrame(buf, off)
}

func appendBytes(buf []byte, s string) []byte {
	return append(binary.AppendUvarint(buf, uint64(len(s))), s...)
}

// ReadFrame reads one frame header + payload into payload (reused when
// capacity allows) and returns the frame type, request id and payload
// bytes. io.EOF with no bytes read means a clean close.
func ReadFrame(r io.Reader, payload []byte) (typ byte, id uint64, out []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, payload, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFramePayload {
		return 0, 0, payload, ErrFrameTooLarge
	}
	typ = hdr[4]
	id = binary.LittleEndian.Uint64(hdr[5:])
	if cap(payload) < int(n) {
		payload = make([]byte, n)
	}
	payload = payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, payload, err
	}
	return typ, id, payload, nil
}

// DecodeRequest parses a request payload, appending the ops to dst
// (pass dst[:0] of a pooled slice to avoid allocation).
func DecodeRequest(payload []byte, dst []Op) (deadlineMs uint64, ops []Op, err error) {
	deadlineMs, payload, err = readUvarint(payload)
	if err != nil {
		return 0, dst, err
	}
	count, payload, err := readUvarint(payload)
	if err != nil {
		return 0, dst, err
	}
	if count > MaxOpsPerFrame {
		return 0, dst, fmt.Errorf("kvwire: request claims %d ops (max %d)", count, MaxOpsPerFrame)
	}
	// Every op costs at least 4 bytes on the wire (kind, flags, two
	// zero lengths); a count beyond that is lying about the payload.
	if count > uint64(len(payload)/4)+1 {
		return 0, dst, errTruncated
	}
	ops = dst
	for i := uint64(0); i < count; i++ {
		var op Op
		op, payload, err = readOp(payload)
		if err != nil {
			return 0, dst, err
		}
		ops = append(ops, op)
	}
	if len(payload) != 0 {
		return 0, dst, fmt.Errorf("kvwire: %d trailing bytes after request", len(payload))
	}
	return deadlineMs, ops, nil
}

func readOp(b []byte) (Op, []byte, error) {
	var op Op
	if len(b) < 2 {
		return op, b, errTruncated
	}
	kind, flags := Kind(b[0]), b[1]
	if kind == KindInvalid || kind >= kindMax {
		return op, b, fmt.Errorf("kvwire: bad op kind %d", kind)
	}
	op.Kind = kind
	b = b[2:]
	var err error
	if op.Table, b, err = readString(b); err != nil {
		return op, b, err
	}
	if op.Key, b, err = readString(b); err != nil {
		return op, b, err
	}
	switch {
	case flags&opFlagExpect != 0:
		if op.Expect, b, err = readUvarint(b); err != nil {
			return op, b, err
		}
	case flags&opFlagMustNotExist != 0:
		op.Expect = 0 // kvstore.MustNotExist
	default:
		op.Expect = ^uint64(0) // kvstore.AnyVersion
	}
	if flags&opFlagAsOf != 0 {
		if op.AsOf, b, err = readVarint(b); err != nil {
			return op, b, err
		}
	}
	if flags&opFlagFields != 0 {
		if op.Fields, b, err = readFields(b); err != nil {
			return op, b, err
		}
	}
	return op, b, nil
}

// DecodeResponse parses a response payload, appending results to dst.
func DecodeResponse(payload []byte, dst []Result) ([]Result, error) {
	count, payload, err := readUvarint(payload)
	if err != nil {
		return dst, err
	}
	if count > MaxOpsPerFrame {
		return dst, fmt.Errorf("kvwire: response claims %d results (max %d)", count, MaxOpsPerFrame)
	}
	if count > uint64(len(payload)/2)+1 {
		return dst, errTruncated
	}
	res := dst
	for i := uint64(0); i < count; i++ {
		var r Result
		r, payload, err = readResult(payload)
		if err != nil {
			return dst, err
		}
		res = append(res, r)
	}
	if len(payload) != 0 {
		return dst, fmt.Errorf("kvwire: %d trailing bytes after response", len(payload))
	}
	return res, nil
}

func readResult(b []byte) (Result, []byte, error) {
	var r Result
	status, b, err := readUvarint(b)
	if err != nil {
		return r, b, err
	}
	if status > 999 {
		return r, b, fmt.Errorf("kvwire: bad status %d", status)
	}
	r.Status = int(status)
	if len(b) < 1 {
		return r, b, errTruncated
	}
	flags := b[0]
	b = b[1:]
	if flags&resFlagVersion != 0 {
		r.HasVersion = true
		if r.Version, b, err = readUvarint(b); err != nil {
			return r, b, err
		}
	}
	if flags&resFlagFields != 0 {
		if r.Fields, b, err = readFields(b); err != nil {
			return r, b, err
		}
	}
	if flags&resFlagErr != 0 {
		if r.Err, b, err = readString(b); err != nil {
			return r, b, err
		}
	}
	if flags&resFlagAsOf != 0 {
		if r.AsOf, b, err = readVarint(b); err != nil {
			return r, b, err
		}
	}
	if flags&resFlagMoved != 0 {
		if r.Owner, b, err = readString(b); err != nil {
			return r, b, err
		}
		if r.MapVersion, b, err = readVarint(b); err != nil {
			return r, b, err
		}
	}
	return r, b, nil
}

// DecodeError parses an error payload.
func DecodeError(payload []byte) (status int, retryAfterSecs uint64, msg string, err error) {
	st, payload, err := readUvarint(payload)
	if err != nil {
		return 0, 0, "", err
	}
	if st > 999 {
		return 0, 0, "", fmt.Errorf("kvwire: bad status %d", st)
	}
	retryAfterSecs, payload, err = readUvarint(payload)
	if err != nil {
		return 0, 0, "", err
	}
	return int(st), retryAfterSecs, string(payload), nil
}

func readFields(b []byte) (map[string][]byte, []byte, error) {
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, b, err
	}
	if count > maxFieldsPerOp || count > uint64(len(b)/2)+1 {
		return nil, b, errTruncated
	}
	fields := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		var k string
		if k, b, err = readString(b); err != nil {
			return nil, b, err
		}
		var n uint64
		if n, b, err = readUvarint(b); err != nil {
			return nil, b, err
		}
		if n > uint64(len(b)) {
			return nil, b, errTruncated
		}
		v := make([]byte, n)
		copy(v, b[:n])
		fields[k] = v
		b = b[n:]
	}
	return fields, b, nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > uint64(len(b)) {
		return "", b, errTruncated
	}
	return string(b[:n]), b[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, errTruncated
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, errTruncated
	}
	return v, b[n:], nil
}
