package kvwire

import (
	"encoding/binary"
	"fmt"
)

// The streaming half of the framed protocol: scans and migration
// ingest move as sequences of bounded chunk frames instead of one
// monolithic response, governed by credit-based flow control so the
// producer's memory is bounded by the consumer's granted window, not
// by the result size.
//
//	4 scan-request  — flags, table, start, varint count, varint as-of
//	                  ts, varint slot, uvarint credits: opens a scan
//	                  stream; the request id names the stream.
//	5 chunk         — varint map-version echo, uvarint record count,
//	                  records: one bounded slice of a stream. Server →
//	                  client on scans, client → server on ingests.
//	6 stream-end    — uvarint status, varint map-version, uvarint
//	                  record count, msg bytes: terminates a stream.
//	                  Status 200 is a clean end; 0 from the consumer
//	                  means cancel; anything else is the error that
//	                  killed the stream.
//	7 credit        — uvarint n: the consumer grants the producer n
//	                  more chunk frames. A producer that has exhausted
//	                  its credits blocks; a producer that sends past
//	                  them is violating the protocol and the peer
//	                  closes the connection.
//	8 ingest-request — table bytes: opens an ingest stream. The server
//	                  answers with a credit frame (its window) or a
//	                  stream-end error (admission shed); the client
//	                  then streams chunk frames and a final stream-end,
//	                  and the server acks with a stream-end carrying
//	                  the ingested record count.
//
// Streams share the connection with pipelined request/response
// frames: chunk frames interleave with ordinary responses under the
// same per-connection write lock, so one slow scan never parks the
// point lookups pipelined next to it.

// Streaming frame types (continuing the request/response/error space).
const (
	frameScanReq   = 4
	frameChunk     = 5
	frameStreamEnd = 6
	frameCredit    = 7
	frameIngestReq = 8
)

// MaxChunkRecords bounds the records one chunk frame may claim.
const MaxChunkRecords = 1024

// maxStreamWindow bounds a credit grant: windows are meant to be a
// handful of chunks, so a grant beyond this is a lying or corrupt
// frame, not a generous consumer.
const maxStreamWindow = 1 << 16

// streamChunkRecords / streamChunkBytes bound one encoded chunk on
// the producer side: a chunk flushes at whichever limit it hits
// first, keeping frames well under MaxFramePayload.
const (
	streamChunkRecords = 256
	streamChunkBytes   = 256 << 10
)

// DefaultStreamWindow is the credit window consumers grant when the
// caller does not choose one: enough chunks in flight to hide one
// round trip, small enough that an abandoned stream strands little.
const DefaultStreamWindow = 4

// ScanRequest names one streaming scan: the same parameter surface as
// the HTTP scan route (and Core.Scan). Count < 0 means unlimited
// (cluster-internal drains), Slot < 0 means no slot filter.
type ScanRequest struct {
	Table      string
	Start      string
	Count      int
	AsOf       int64
	Slot       int
	Tombstones bool
	// Window is the initial credit grant (chunks the server may send
	// before blocking); 0 means DefaultStreamWindow.
	Window int
}

// StreamRecord is one record on a stream: the superset both scans
// (versioned reads) and migration ingest (version/commit-ts-preserving
// copies, tombstones included) need.
type StreamRecord struct {
	Key      string
	Version  uint64
	CommitTS int64
	Deleted  bool
	Fields   map[string][]byte
}

// Record flags.
const (
	recFlagDeleted = 1 << 0
	recFlagFields  = 1 << 1
)

// Scan-request flags.
const scanFlagTombstones = 1 << 0

// AppendScanRequest encodes one scan-request frame.
func AppendScanRequest(buf []byte, id uint64, req *ScanRequest) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameScanReq, id)
	var flags byte
	if req.Tombstones {
		flags |= scanFlagTombstones
	}
	buf = append(buf, flags)
	buf = appendBytes(buf, req.Table)
	buf = appendBytes(buf, req.Start)
	buf = binary.AppendVarint(buf, int64(req.Count))
	buf = binary.AppendVarint(buf, req.AsOf)
	buf = binary.AppendVarint(buf, int64(req.Slot))
	window := req.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	buf = binary.AppendUvarint(buf, uint64(window))
	return finishFrame(buf, off)
}

// DecodeScanRequest parses a scan-request payload. The returned window
// is always in [1, maxStreamWindow].
func DecodeScanRequest(payload []byte) (req ScanRequest, window int, err error) {
	if len(payload) < 1 {
		return req, 0, errTruncated
	}
	flags := payload[0]
	payload = payload[1:]
	req.Tombstones = flags&scanFlagTombstones != 0
	if req.Table, payload, err = readString(payload); err != nil {
		return req, 0, err
	}
	if req.Start, payload, err = readString(payload); err != nil {
		return req, 0, err
	}
	var v int64
	if v, payload, err = readVarint(payload); err != nil {
		return req, 0, err
	}
	req.Count = int(v)
	if req.AsOf, payload, err = readVarint(payload); err != nil {
		return req, 0, err
	}
	if v, payload, err = readVarint(payload); err != nil {
		return req, 0, err
	}
	req.Slot = int(v)
	var w uint64
	if w, payload, err = readUvarint(payload); err != nil {
		return req, 0, err
	}
	if w == 0 || w > maxStreamWindow {
		return req, 0, fmt.Errorf("kvwire: bad credit window %d", w)
	}
	if len(payload) != 0 {
		return req, 0, fmt.Errorf("kvwire: %d trailing bytes after scan request", len(payload))
	}
	req.Window = int(w)
	return req, int(w), nil
}

// AppendChunk encodes one chunk frame carrying recs.
func AppendChunk(buf []byte, id uint64, mapVersion int64, recs []StreamRecord) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameChunk, id)
	buf = binary.AppendVarint(buf, mapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for i := range recs {
		buf = appendStreamRecord(buf, &recs[i])
	}
	return finishFrame(buf, off)
}

func appendStreamRecord(buf []byte, r *StreamRecord) []byte {
	var flags byte
	if r.Deleted {
		flags |= recFlagDeleted
	}
	if r.Fields != nil {
		flags |= recFlagFields
	}
	buf = append(buf, flags)
	buf = appendBytes(buf, r.Key)
	buf = binary.AppendUvarint(buf, r.Version)
	buf = binary.AppendVarint(buf, r.CommitTS)
	if flags&recFlagFields != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(r.Fields)))
		for k, v := range r.Fields {
			buf = appendBytes(buf, k)
			buf = append(binary.AppendUvarint(buf, uint64(len(v))), v...)
		}
	}
	return buf
}

// DecodeChunk parses a chunk payload, appending records to dst.
func DecodeChunk(payload []byte, dst []StreamRecord) (mapVersion int64, recs []StreamRecord, err error) {
	mapVersion, payload, err = readVarint(payload)
	if err != nil {
		return 0, dst, err
	}
	count, payload, err := readUvarint(payload)
	if err != nil {
		return 0, dst, err
	}
	if count > MaxChunkRecords {
		return 0, dst, fmt.Errorf("kvwire: chunk claims %d records (max %d)", count, MaxChunkRecords)
	}
	// Every record costs at least 4 bytes (flags, zero-length key,
	// version, commit ts); a larger claim is lying about the payload.
	if count > uint64(len(payload)/4)+1 {
		return 0, dst, errTruncated
	}
	recs = dst
	for i := uint64(0); i < count; i++ {
		var r StreamRecord
		r, payload, err = readStreamRecord(payload)
		if err != nil {
			return 0, dst, err
		}
		recs = append(recs, r)
	}
	if len(payload) != 0 {
		return 0, dst, fmt.Errorf("kvwire: %d trailing bytes after chunk", len(payload))
	}
	return mapVersion, recs, nil
}

func readStreamRecord(b []byte) (StreamRecord, []byte, error) {
	var r StreamRecord
	if len(b) < 1 {
		return r, b, errTruncated
	}
	flags := b[0]
	b = b[1:]
	r.Deleted = flags&recFlagDeleted != 0
	var err error
	if r.Key, b, err = readString(b); err != nil {
		return r, b, err
	}
	if r.Version, b, err = readUvarint(b); err != nil {
		return r, b, err
	}
	if r.CommitTS, b, err = readVarint(b); err != nil {
		return r, b, err
	}
	if flags&recFlagFields != 0 {
		if r.Fields, b, err = readFields(b); err != nil {
			return r, b, err
		}
	}
	return r, b, nil
}

// AppendStreamEnd encodes one stream-end frame. Status 200 with count
// is the producer's clean end (count meaningful on ingest acks);
// status 0 is the consumer's cancel; anything else aborts the stream
// with msg.
func AppendStreamEnd(buf []byte, id uint64, status int, mapVersion int64, count uint64, msg string) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameStreamEnd, id)
	buf = binary.AppendUvarint(buf, uint64(status))
	buf = binary.AppendVarint(buf, mapVersion)
	buf = binary.AppendUvarint(buf, count)
	buf = append(buf, msg...)
	return finishFrame(buf, off)
}

// DecodeStreamEnd parses a stream-end payload.
func DecodeStreamEnd(payload []byte) (status int, mapVersion int64, count uint64, msg string, err error) {
	st, payload, err := readUvarint(payload)
	if err != nil {
		return 0, 0, 0, "", err
	}
	if st > 999 {
		return 0, 0, 0, "", fmt.Errorf("kvwire: bad status %d", st)
	}
	if mapVersion, payload, err = readVarint(payload); err != nil {
		return 0, 0, 0, "", err
	}
	if count, payload, err = readUvarint(payload); err != nil {
		return 0, 0, 0, "", err
	}
	return int(st), mapVersion, count, string(payload), nil
}

// AppendCredit encodes one credit frame granting n chunks.
func AppendCredit(buf []byte, id uint64, n uint64) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameCredit, id)
	buf = binary.AppendUvarint(buf, n)
	return finishFrame(buf, off)
}

// DecodeCredit parses a credit payload. Grants of zero or beyond the
// window bound are protocol errors — a peer lying about credits gets
// its connection closed, not a giant buffer.
func DecodeCredit(payload []byte) (uint64, error) {
	n, payload, err := readUvarint(payload)
	if err != nil {
		return 0, err
	}
	if n == 0 || n > maxStreamWindow {
		return 0, fmt.Errorf("kvwire: bad credit grant %d", n)
	}
	if len(payload) != 0 {
		return 0, fmt.Errorf("kvwire: %d trailing bytes after credit", len(payload))
	}
	return n, nil
}

// AppendIngestRequest encodes one ingest-request frame for table.
func AppendIngestRequest(buf []byte, id uint64, table string) []byte {
	off := len(buf)
	buf = appendFrameHeader(buf, frameIngestReq, id)
	buf = appendBytes(buf, table)
	return finishFrame(buf, off)
}

// DecodeIngestRequest parses an ingest-request payload.
func DecodeIngestRequest(payload []byte) (table string, err error) {
	table, payload, err = readString(payload)
	if err != nil {
		return "", err
	}
	if table == "" {
		return "", fmt.Errorf("kvwire: ingest request missing table")
	}
	if len(payload) != 0 {
		return "", fmt.Errorf("kvwire: %d trailing bytes after ingest request", len(payload))
	}
	return table, nil
}
