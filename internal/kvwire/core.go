// Package kvwire is the transport-neutral request core of the
// key-value server: every front end — the HTTP/NDJSON protocol in
// internal/httpkv, the framed binary protocol in this package — parses
// its wire format into []Op, hands the slice to Core, and renders the
// positional []Result back out. Dispatch, validation, batch
// run-splitting, as-of grouping, cluster slot gating (MovedError),
// per-request deadlines and the batch admission limit all live here,
// once, so a new transport is only a codec plus a listener.
//
// Result statuses use the HTTP status space (200/204/400/404/410/412/
// 429/500/503/504): the NDJSON /v1/batch protocol already committed to
// it on the wire, and sharing it keeps the two transports'
// error-mapping tables identical.
package kvwire

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ycsbt/internal/cluster"
	"ycsbt/internal/kvstore"
)

// Kind identifies one operation. The zero value is KindInvalid: a
// front end that fails to parse an item (unknown op name, bad
// conditional) ships it through as KindInvalid with Reason set, so the
// item answers 400 positionally without disturbing the run-splitting
// around it.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindGet
	KindPut
	KindPatch
	KindDelete
	kindMax
)

// Op is one decoded operation, independent of the wire format that
// carried it.
//
// Expect uses the kvstore encoding (kvstore.AnyVersion for
// unconditional, kvstore.MustNotExist for create-only, else an exact
// version). Note the Go zero value is MustNotExist — front ends must
// set AnyVersion explicitly for unconditional writes.
type Op struct {
	Kind   Kind
	Table  string
	Key    string
	Fields map[string][]byte
	Expect uint64
	// AsOf, on a get, asks for the newest version with commit ts ≤
	// AsOf instead of the head; results echo it.
	AsOf int64
	// Reason carries the 400 message of a KindInvalid op.
	Reason string
}

// Result is the positional outcome of one Op.
type Result struct {
	Status     int // HTTP status space
	Version    uint64
	HasVersion bool // distinguishes "version 0" from "no version"
	Fields     map[string][]byte
	Err        string
	// AsOf echoes the op's as_of when the read was served from the
	// version history (the echo is the client's proof the snapshot was
	// honored).
	AsOf int64
	// Owner and MapVersion carry a 410's routing hints in cluster
	// mode. Owner is empty while the key's slot drains for migration.
	Owner      string
	MapVersion int64
}

// Core executes decoded operations against the engine, applying the
// cluster ownership gate and the shared admission limits. One Core is
// shared by every transport of a server process, so the inflight batch
// cap bounds the process, not each listener separately.
type Core struct {
	store    kvstore.Engine
	cluster  *cluster.State
	inflight chan struct{} // batch admission semaphore (nil = unlimited)
}

// NewCore builds a core over store. cs may be nil (single-node mode);
// maxInflightBatches <= 0 means unlimited.
func NewCore(store kvstore.Engine, cs *cluster.State, maxInflightBatches int) *Core {
	c := &Core{store: store, cluster: cs}
	if maxInflightBatches > 0 {
		c.inflight = make(chan struct{}, maxInflightBatches)
	}
	return c
}

// Store exposes the engine (front-end routes that bypass the op model:
// scans, ingest, tables, ts).
func (c *Core) Store() kvstore.Engine { return c.store }

// Cluster exposes the ownership gate; nil when not clustered.
func (c *Core) Cluster() *cluster.State { return c.cluster }

// AcquireBatch admits one batch execution under the shared inflight
// cap. ok=false means the caller must shed the request (429 +
// Retry-After); otherwise release must be called when the batch is
// done. Load shedding, not queueing: a full semaphore rejects
// immediately.
func (c *Core) AcquireBatch() (release func(), ok bool) {
	if c.inflight == nil {
		return func() {}, true
	}
	select {
	case c.inflight <- struct{}{}:
		return func() { <-c.inflight }, true
	default:
		return nil, false
	}
}

// GateRead applies the cluster ownership check to a single-key read;
// nil when this node serves the key (or no cluster). The error is
// always a *cluster.MovedError.
func (c *Core) GateRead(key string) error {
	if c.cluster == nil {
		return nil
	}
	return c.cluster.CheckRead(key)
}

// EnterWrite takes the cluster freeze barrier and checks ownership
// for a single-key mutation. The caller must invoke release around
// the engine apply (it is non-nil even on error). The error is always
// a *cluster.MovedError.
func (c *Core) EnterWrite(key string) (release func(), err error) {
	if c.cluster == nil {
		return func() {}, nil
	}
	release = c.cluster.Enter()
	if err := c.cluster.CheckWrite(key); err != nil {
		release()
		return func() {}, err
	}
	return release, nil
}

// Get serves one gated read, from the head or (ts > 0) the version
// history.
func (c *Core) Get(table, key string, ts int64) (*kvstore.VersionedRecord, error) {
	if err := c.GateRead(key); err != nil {
		return nil, err
	}
	if ts != 0 {
		return c.store.GetAsOf(table, key, ts)
	}
	return c.store.Get(table, key)
}

// Put serves one gated conditional put.
func (c *Core) Put(table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	release, err := c.EnterWrite(key)
	if err != nil {
		return 0, err
	}
	defer release()
	return c.store.PutIfVersion(table, key, fields, expect)
}

// Update serves one gated merge-update.
func (c *Core) Update(table, key string, fields map[string][]byte) (uint64, error) {
	release, err := c.EnterWrite(key)
	if err != nil {
		return 0, err
	}
	defer release()
	return c.store.Update(table, key, fields)
}

// Delete serves one gated conditional delete.
func (c *Core) Delete(table, key string, expect uint64) error {
	release, err := c.EnterWrite(key)
	if err != nil {
		return err
	}
	defer release()
	return c.store.DeleteIfVersion(table, key, expect)
}

// SnapshotTS draws a snapshot timestamp from the engine's commit
// clock.
func (c *Core) SnapshotTS() int64 { return c.store.SnapshotTS() }

// Scan serves one ordered scan. In cluster mode the result is always
// filtered — owned slots by default, exactly slot when slot ≥ 0 (the
// migration copy path) — and pages through the engine until count
// filtered records are found, so a routed scan is never silently
// short. tombstones (cluster + as-of only, validated by the front
// end) includes delete versions so a migration copy carries deletes.
// ctx is checked between engine pages, so a scan whose client has
// gone away stops paging instead of draining the table for nobody.
func (c *Core) Scan(ctx context.Context, table, start string, count int, ts int64, slot int, tombstones bool) ([]kvstore.VersionedKV, error) {
	var out []kvstore.VersionedKV
	err := c.scanPages(ctx, table, start, count, ts, slot, tombstones, func(kv kvstore.VersionedKV) error {
		out = append(out, kv)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanPages is the shared paging loop under Scan and StreamScan: it
// pages through the engine, applies the cluster slot/ownership filter,
// and hands every kept record to emit until count records are emitted,
// the table is exhausted, ctx is done, or emit returns an error.
func (c *Core) scanPages(ctx context.Context, table, start string, count int, ts int64, slot int, tombstones bool, emit func(kvstore.VersionedKV) error) error {
	if c.cluster == nil {
		var page []kvstore.VersionedKV
		var err error
		if ts != 0 {
			page, err = c.store.ScanAsOf(table, start, count, ts)
		} else {
			page, err = c.store.Scan(table, start, count)
		}
		if err != nil {
			return err
		}
		for _, kv := range page {
			if err := emit(kv); err != nil {
				return err
			}
		}
		return nil
	}
	m := c.cluster.Map()
	keep := func(key string) bool {
		sl := m.SlotOf(key)
		if slot >= 0 {
			return sl == slot
		}
		return m.OwnerOfSlot(sl) == c.cluster.Self()
	}
	pageSize := 1024
	if count >= 0 && count > pageSize {
		pageSize = count
	}
	emitted := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var page []kvstore.VersionedKV
		var err error
		switch {
		case tombstones:
			page, err = c.store.ScanVersionsAsOf(table, start, pageSize, ts)
		case ts != 0:
			page, err = c.store.ScanAsOf(table, start, pageSize, ts)
		default:
			page, err = c.store.Scan(table, start, pageSize)
		}
		if err != nil {
			return err
		}
		for _, kv := range page {
			if !keep(kv.Key) {
				continue
			}
			if err := emit(kv); err != nil {
				return err
			}
			emitted++
			if count >= 0 && emitted >= count {
				return nil
			}
		}
		if len(page) < pageSize {
			return nil
		}
		start = page[len(page)-1].Key + "\x00"
	}
}

// StreamError aborts a stream with a status in the HTTP space, which
// the wire server renders as the stream-end frame's status.
type StreamError struct {
	Status int
	Msg    string
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("kvwire: stream failed: %d %s", e.Status, e.Msg)
}

// ValidateScan applies the front ends' shared scan-parameter rules
// (the same checks the HTTP route enforces with 400s).
func (c *Core) ValidateScan(req *ScanRequest) *StreamError {
	if req.Count < -1 || (req.Count == -1 && c.cluster == nil) {
		return &StreamError{Status: http.StatusBadRequest, Msg: "bad count"}
	}
	if req.Slot >= 0 && c.cluster == nil {
		return &StreamError{Status: http.StatusBadRequest, Msg: "not a cluster node"}
	}
	if c.cluster != nil && req.Slot >= c.cluster.Map().Slots {
		return &StreamError{Status: http.StatusBadRequest, Msg: "bad slot"}
	}
	if req.AsOf < 0 {
		return &StreamError{Status: http.StatusBadRequest, Msg: "bad as-of ts"}
	}
	if req.Tombstones && (c.cluster == nil || req.AsOf == 0) {
		return &StreamError{Status: http.StatusBadRequest, Msg: "tombstones requires cluster mode and an as-of ts"}
	}
	return nil
}

// StreamScan serves one scan as a sequence of bounded chunks: emit is
// called with each full chunk (and the shard map version it was
// filtered under) as the paging loop produces it, so the caller's
// memory holds one chunk, not the result. In cluster mode the shard
// map version is re-checked per chunk: a map change mid-stream means
// the slot filter silently changed underneath the scan, so the stream
// aborts with 409 and the client rescans under the new map — the
// streaming form of the router's fan-out skew check. An emit error
// (credits gone, peer gone, ctx done) stops the scan immediately.
// The returned map version is the one the whole stream was filtered
// under (0 single-node), reported even when the scan emits nothing so
// an empty node still participates in the fan-out skew check.
func (c *Core) StreamScan(ctx context.Context, req *ScanRequest, emit func(chunk []kvstore.VersionedKV, mapVersion int64) error) (int64, error) {
	var mapVer int64
	if c.cluster != nil {
		mapVer = c.cluster.Map().Version
	}
	if serr := c.ValidateScan(req); serr != nil {
		return mapVer, serr
	}
	chunk := make([]kvstore.VersionedKV, 0, streamChunkRecords)
	bytes := 0
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if c.cluster != nil && c.cluster.Map().Version != mapVer {
			return &StreamError{Status: http.StatusConflict, Msg: "shard map changed mid-scan"}
		}
		if err := emit(chunk, mapVer); err != nil {
			return err
		}
		chunk = chunk[:0]
		bytes = 0
		return nil
	}
	err := c.scanPages(ctx, req.Table, req.Start, req.Count, req.AsOf, req.Slot, req.Tombstones, func(kv kvstore.VersionedKV) error {
		chunk = append(chunk, kv)
		bytes += len(kv.Key) + recordBytes(kv.Record)
		if len(chunk) >= streamChunkRecords || bytes >= streamChunkBytes {
			return flush()
		}
		return nil
	})
	if err != nil {
		return mapVer, err
	}
	return mapVer, flush()
}

// recordBytes estimates a record's encoded size for chunk flushing.
func recordBytes(r *kvstore.VersionedRecord) int {
	n := 16
	for k, v := range r.Fields {
		n += len(k) + len(v) + 4
	}
	return n
}

// StreamIngest merges streamed record chunks into table, preserving
// versions and commit timestamps. next returns one decoded chunk at a
// time (nil, nil at end of stream); the records land through the same
// Engine.Ingest the HTTP route uses, chunk by chunk, so server memory
// is bounded by the chunk size regardless of how much one migration
// moves. Returns the total records ingested.
func (c *Core) StreamIngest(ctx context.Context, table string, next func() ([]kvstore.BulkKV, error)) (uint64, error) {
	var total uint64
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		kvs, err := next()
		if err != nil {
			return total, err
		}
		if kvs == nil {
			return total, nil
		}
		for i := range kvs {
			if kvs[i].Key == "" {
				return total, &StreamError{Status: http.StatusBadRequest, Msg: "ingest record missing key"}
			}
		}
		if err := c.store.Ingest(table, kvs); err != nil {
			return total, err
		}
		total += uint64(len(kvs))
	}
}

// ExecBatch answers the decoded ops through the engine's multi-key
// path, splitting the batch into maximal same-kind runs — consecutive
// gets share one BatchGet, consecutive mutations one BatchApply — so
// order within the batch is preserved while each run pays one lock
// round per touched partition. If the request deadline expires
// between runs, the remaining items report 504 instead of running. In
// cluster mode each item is ownership-gated (410 + routing hints) and
// mutation runs hold the freeze barrier across check and apply.
func (c *Core) ExecBatch(ctx context.Context, ops []Op) []Result {
	out := make([]Result, len(ops))
	c.ExecBatchInto(ctx, ops, out)
	return out
}

// ExecBatchInto is ExecBatch writing into a caller-owned result slice
// (len(out) must equal len(ops)) so hot transports can pool it.
func (c *Core) ExecBatchInto(ctx context.Context, ops []Op, out []Result) {
	for lo := 0; lo < len(ops); {
		hi := lo + 1
		for hi < len(ops) && (ops[hi].Kind == KindGet) == (ops[lo].Kind == KindGet) {
			hi++
		}
		if ctx.Err() != nil {
			for i := lo; i < len(ops); i++ {
				out[i] = Result{Status: http.StatusGatewayTimeout, Err: "deadline exceeded"}
			}
			return
		}
		if ops[lo].Kind == KindGet {
			c.execGetRunClustered(ops[lo:hi], out[lo:hi])
		} else {
			c.execMutRunClustered(ops[lo:hi], out[lo:hi])
		}
		lo = hi
	}
}

// execGetRunClustered gates a get run per item in cluster mode: items
// this node does not own answer 410 with routing hints, the rest
// share the usual engine rounds.
func (c *Core) execGetRunClustered(ops []Op, out []Result) {
	if c.cluster == nil {
		c.execGetRun(ops, out)
		return
	}
	kept, idx := c.clusterFilter(ops, out, c.cluster.CheckRead)
	if len(kept) == 0 {
		return
	}
	sub := make([]Result, len(kept))
	c.execGetRun(kept, sub)
	for j, i := range idx {
		out[i] = sub[j]
	}
}

// execMutRunClustered gates a mutation run per item, holding the
// freeze barrier across check and engine apply so a migration
// snapshot drawn after Freeze returns covers every write admitted
// here.
func (c *Core) execMutRunClustered(ops []Op, out []Result) {
	if c.cluster == nil {
		c.execMutRun(ops, out)
		return
	}
	release := c.cluster.Enter()
	defer release()
	kept, idx := c.clusterFilter(ops, out, c.cluster.CheckWrite)
	if len(kept) == 0 {
		return
	}
	sub := make([]Result, len(kept))
	c.execMutRun(kept, sub)
	for j, i := range idx {
		out[i] = sub[j]
	}
}

// clusterFilter splits a run into the items this node serves
// (returned with their original indices) and the ones it rejects (410
// results written in place).
func (c *Core) clusterFilter(ops []Op, out []Result, check func(string) error) ([]Op, []int) {
	kept := make([]Op, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		if err := check(op.Key); err != nil {
			out[i] = MovedResult(err.(*cluster.MovedError))
			continue
		}
		kept = append(kept, op)
		idx = append(idx, i)
	}
	return kept, idx
}

func (c *Core) execGetRun(ops []Op, out []Result) {
	// Fast path: no item asks for a snapshot, one head BatchGet covers
	// the whole run without any grouping overhead.
	head := true
	for _, op := range ops {
		if op.AsOf != 0 {
			head = false
			break
		}
	}
	if head {
		reqs := make([]kvstore.GetReq, len(ops))
		for i, op := range ops {
			reqs[i] = kvstore.GetReq{Table: op.Table, Key: op.Key}
		}
		for i, r := range c.store.BatchGet(reqs) {
			if r.Err != nil {
				out[i] = ErrResult(r.Err)
				continue
			}
			out[i] = Result{
				Status:     http.StatusOK,
				Version:    r.Record.Version,
				HasVersion: true,
				Fields:     r.Record.Fields,
			}
		}
		return
	}
	// Mixed run: group the item indices by as_of timestamp so each
	// distinct snapshot (and the head, ts 0) pays one engine round.
	groups := make(map[int64][]int)
	order := make([]int64, 0, 2)
	for i, op := range ops {
		if _, ok := groups[op.AsOf]; !ok {
			order = append(order, op.AsOf)
		}
		groups[op.AsOf] = append(groups[op.AsOf], i)
	}
	for _, ts := range order {
		idx := groups[ts]
		if ts < 0 {
			for _, i := range idx {
				out[i] = Result{Status: http.StatusBadRequest, Err: fmt.Sprintf("bad as_of %d", ts)}
			}
			continue
		}
		reqs := make([]kvstore.GetReq, len(idx))
		for j, i := range idx {
			reqs[j] = kvstore.GetReq{Table: ops[i].Table, Key: ops[i].Key}
		}
		var results []kvstore.GetResult
		if ts == 0 {
			results = c.store.BatchGet(reqs)
		} else {
			results = c.store.BatchGetAsOf(reqs, ts)
		}
		for j, r := range results {
			i := idx[j]
			if r.Err != nil {
				res := ErrResult(r.Err)
				res.AsOf = ts
				out[i] = res
				continue
			}
			out[i] = Result{
				Status:     http.StatusOK,
				Version:    r.Record.Version,
				HasVersion: true,
				Fields:     r.Record.Fields,
				AsOf:       ts,
			}
		}
	}
}

func (c *Core) execMutRun(ops []Op, out []Result) {
	muts := make([]kvstore.Mutation, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		var m kvstore.Mutation
		switch op.Kind {
		case KindPut:
			m = kvstore.Mutation{Op: kvstore.MutPut, Table: op.Table, Key: op.Key, Fields: op.Fields, Expect: op.Expect}
		case KindPatch:
			m = kvstore.Mutation{Op: kvstore.MutUpdate, Table: op.Table, Key: op.Key, Fields: op.Fields}
		case KindDelete:
			m = kvstore.Mutation{Op: kvstore.MutDelete, Table: op.Table, Key: op.Key, Expect: op.Expect}
		default:
			reason := op.Reason
			if reason == "" {
				reason = "invalid op"
			}
			out[i] = Result{Status: http.StatusBadRequest, Err: reason}
			continue
		}
		if (op.Kind == KindPut || op.Kind == KindPatch) && op.Fields == nil {
			out[i] = Result{Status: http.StatusBadRequest, Err: "missing fields"}
			continue
		}
		muts = append(muts, m)
		idx = append(idx, i)
	}
	for j, r := range c.store.BatchApply(muts) {
		i := idx[j]
		if r.Err != nil {
			out[i] = ErrResult(r.Err)
			continue
		}
		status := http.StatusOK
		if ops[i].Kind == KindDelete {
			status = http.StatusNoContent
		}
		out[i] = Result{Status: status, Version: r.Version, HasVersion: true}
	}
}

// ErrResult maps a store error to a per-item result, mirroring the
// single-op handlers' status mapping.
func ErrResult(err error) Result {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, kvstore.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, kvstore.ErrVersionMismatch), errors.Is(err, kvstore.ErrExists):
		status = http.StatusPreconditionFailed
	case errors.Is(err, kvstore.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	return Result{Status: status, Err: err.Error()}
}

// MovedResult renders a per-item 410 carrying the same routing hints
// as the single-op headers.
func MovedResult(me *cluster.MovedError) Result {
	return Result{
		Status:     http.StatusGone,
		Err:        me.Error(),
		Owner:      me.Owner,
		MapVersion: me.MapVersion,
	}
}
