package kvwire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"ycsbt/internal/kvstore"
)

func sampleOps() []Op {
	return []Op{
		{Kind: KindGet, Table: "usertable", Key: "user42"},
		{Kind: KindGet, Table: "t", Key: "k", AsOf: 123456789},
		{Kind: KindPut, Table: "t", Key: "k2", Fields: map[string][]byte{"field0": []byte("v0"), "field1": {}}, Expect: kvstore.AnyVersion},
		{Kind: KindPut, Table: "t", Key: "new", Fields: map[string][]byte{"a": []byte("b")}, Expect: kvstore.MustNotExist},
		{Kind: KindPatch, Table: "t", Key: "k3", Fields: map[string][]byte{"f": []byte("x")}, Expect: kvstore.AnyVersion},
		{Kind: KindDelete, Table: "t", Key: "k4", Expect: 7},
	}
}

func sampleResults() []Result {
	return []Result{
		{Status: 200, Version: 3, HasVersion: true, Fields: map[string][]byte{"f": []byte("v")}},
		{Status: 200, Version: 9, HasVersion: true, Fields: map[string][]byte{"f": []byte("v")}, AsOf: 42},
		{Status: 404, Err: "not found"},
		{Status: 204, Version: 8, HasVersion: true},
		{Status: 410, Err: "moved", Owner: "http://127.0.0.1:9999", MapVersion: 4},
		{Status: 410, Err: "draining", MapVersion: 5},
		{Status: 429, Err: "too many in-flight batches"},
	}
}

func TestFrameRequestRoundTrip(t *testing.T) {
	ops := sampleOps()
	buf := AppendRequest(nil, 77, 1500, ops)
	typ, id, payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != frameRequest || id != 77 {
		t.Fatalf("typ=%d id=%d", typ, id)
	}
	deadline, got, err := DecodeRequest(payload, nil)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if deadline != 1500 {
		t.Fatalf("deadline=%d", deadline)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("ops round trip:\n got %+v\nwant %+v", got, ops)
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	res := sampleResults()
	buf := AppendResponse(nil, 12345678901234, res)
	typ, id, payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != frameResponse || id != 12345678901234 {
		t.Fatalf("typ=%d id=%d", typ, id)
	}
	got, err := DecodeResponse(payload, nil)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("results round trip:\n got %+v\nwant %+v", got, res)
	}
}

func TestFrameErrorRoundTrip(t *testing.T) {
	buf := AppendError(nil, 5, 429, 2, "too many in-flight batches")
	typ, id, payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil || typ != frameError || id != 5 {
		t.Fatalf("typ=%d id=%d err=%v", typ, id, err)
	}
	status, retry, msg, err := DecodeError(payload)
	if err != nil || status != 429 || retry != 2 || msg != "too many in-flight batches" {
		t.Fatalf("status=%d retry=%d msg=%q err=%v", status, retry, msg, err)
	}
}

func TestReadFrameRefusesOversizedPayload(t *testing.T) {
	hdr := make([]byte, frameHeaderLen)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr), nil); err != ErrFrameTooLarge {
		t.Fatalf("err=%v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, _, _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("err=%v, want io.EOF", err)
	}
}

func TestDecodeRequestRejectsLyingCounts(t *testing.T) {
	// deadline 0, then a count that claims far more ops than the
	// payload could hold — must error before allocating them.
	payload := []byte{0, 0xff, 0xff, 0x3f} // count = 1048575
	if _, _, err := DecodeRequest(payload, nil); err == nil {
		t.Fatal("accepted lying op count")
	}
}

func TestDecodeRequestRejectsTrailingBytes(t *testing.T) {
	buf := AppendRequest(nil, 1, 0, []Op{{Kind: KindGet, Table: "t", Key: "k"}})
	payload := append(append([]byte(nil), buf[frameHeaderLen:]...), 0x00)
	if _, _, err := DecodeRequest(payload, nil); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

// FuzzFrameCodec checks every frame decoder never panics on hostile
// input and that whatever it accepts re-encodes to a frame that
// decodes equal (structure round trip — overlong uvarints mean
// byte-exact stability is not guaranteed, struct-exact is). The
// allocation guard is implicit: lying counts error before reserving
// memory, so hostile frames cannot make the decoder allocate beyond
// their own size. mode selects the decoder under test: 0 request,
// 1 response, 2 scan-request, 3 chunk, 4 stream-end, 5 credit,
// 6 ingest-request.
func FuzzFrameCodec(f *testing.F) {
	reqSeed := AppendRequest(nil, 1, 250, sampleOps())
	resSeed := AppendResponse(nil, 2, sampleResults())
	scanSeed := AppendScanRequest(nil, 3, &ScanRequest{Table: "t", Start: "user1", Count: 100, AsOf: 42, Slot: 3, Tombstones: true, Window: 4})
	chunkSeed := AppendChunk(nil, 4, 7, sampleStreamRecords())
	endSeed := AppendStreamEnd(nil, 5, 409, 7, 12, "shard map changed mid-scan")
	creditSeed := AppendCredit(nil, 6, 3)
	ingestSeed := AppendIngestRequest(nil, 7, "usertable")
	f.Add(reqSeed[frameHeaderLen:], byte(0))
	f.Add(resSeed[frameHeaderLen:], byte(1))
	f.Add(scanSeed[frameHeaderLen:], byte(2))
	f.Add(chunkSeed[frameHeaderLen:], byte(3))
	f.Add(endSeed[frameHeaderLen:], byte(4))
	f.Add(creditSeed[frameHeaderLen:], byte(5))
	f.Add(ingestSeed[frameHeaderLen:], byte(6))
	f.Add([]byte{}, byte(0))
	f.Add([]byte{0, 1, 1}, byte(0))
	// Hostile: a chunk truncated mid-record and one claiming far more
	// records than its bytes could carry.
	f.Add(chunkSeed[frameHeaderLen:len(chunkSeed)-5], byte(3))
	f.Add([]byte{0x0e, 0xff, 0xff, 0x3f}, byte(3))
	// Hostile: lying credits — a zero grant and one far past the
	// window cap, both of which the decoder must refuse.
	f.Add([]byte{0x00}, byte(5))
	f.Add([]byte{0xff, 0xff, 0x7f}, byte(5))
	f.Fuzz(func(t *testing.T, payload []byte, mode byte) {
		switch mode % 7 {
		case 0:
			deadline, ops, err := DecodeRequest(payload, nil)
			if err != nil {
				return
			}
			re := AppendRequest(nil, 9, deadline, ops)
			deadline2, ops2, err := DecodeRequest(re[frameHeaderLen:], nil)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if deadline2 != deadline || !reflect.DeepEqual(normOps(ops2), normOps(ops)) {
				t.Fatalf("request not stable:\n got %+v\nwant %+v", ops2, ops)
			}
		case 1:
			res, err := DecodeResponse(payload, nil)
			if err != nil {
				return
			}
			re := AppendResponse(nil, 9, res)
			res2, err := DecodeResponse(re[frameHeaderLen:], nil)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(res2, res) {
				t.Fatalf("response not stable:\n got %+v\nwant %+v", res2, res)
			}
		case 2:
			req, _, err := DecodeScanRequest(payload)
			if err != nil {
				return
			}
			re := AppendScanRequest(nil, 9, &req)
			req2, _, err := DecodeScanRequest(re[frameHeaderLen:])
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(req2, req) {
				t.Fatalf("scan request not stable:\n got %+v\nwant %+v", req2, req)
			}
		case 3:
			mapVer, recs, err := DecodeChunk(payload, nil)
			if err != nil {
				return
			}
			re := AppendChunk(nil, 9, mapVer, recs)
			mapVer2, recs2, err := DecodeChunk(re[frameHeaderLen:], nil)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if mapVer2 != mapVer || !reflect.DeepEqual(normRecs(recs2), normRecs(recs)) {
				t.Fatalf("chunk not stable:\n got %+v\nwant %+v", recs2, recs)
			}
		case 4:
			status, mapVer, count, msg, err := DecodeStreamEnd(payload)
			if err != nil {
				return
			}
			re := AppendStreamEnd(nil, 9, status, mapVer, count, msg)
			status2, mapVer2, count2, msg2, err := DecodeStreamEnd(re[frameHeaderLen:])
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if status2 != status || mapVer2 != mapVer || count2 != count || msg2 != msg {
				t.Fatalf("stream end not stable: got %d/%d/%d/%q want %d/%d/%d/%q",
					status2, mapVer2, count2, msg2, status, mapVer, count, msg)
			}
		case 5:
			n, err := DecodeCredit(payload)
			if err != nil {
				return
			}
			re := AppendCredit(nil, 9, n)
			n2, err := DecodeCredit(re[frameHeaderLen:])
			if err != nil || n2 != n {
				t.Fatalf("credit not stable: got %d err=%v want %d", n2, err, n)
			}
		case 6:
			table, err := DecodeIngestRequest(payload)
			if err != nil {
				return
			}
			re := AppendIngestRequest(nil, 9, table)
			table2, err := DecodeIngestRequest(re[frameHeaderLen:])
			if err != nil || table2 != table {
				t.Fatalf("ingest request not stable: got %q err=%v want %q", table2, err, table)
			}
		}
	})
}

// sampleStreamRecords covers the chunk record shapes: live records
// with fields, a tombstone, and an empty field map.
func sampleStreamRecords() []StreamRecord {
	return []StreamRecord{
		{Key: "user1", Version: 3, CommitTS: 100, Fields: map[string][]byte{"f0": []byte("v0"), "f1": {}}},
		{Key: "user2", Version: 9, CommitTS: 107, Deleted: true},
		{Key: "user3", Version: 1, CommitTS: 90, Fields: map[string][]byte{}},
	}
}

// normRecs is normOps for chunk records: empty-but-non-nil field maps
// compare equal to omitted ones.
func normRecs(recs []StreamRecord) []StreamRecord {
	out := make([]StreamRecord, len(recs))
	copy(out, recs)
	for i := range out {
		if len(out[i].Fields) == 0 {
			out[i].Fields = nil
		}
	}
	return out
}

// normOps maps empty-but-non-nil field maps to nil so DeepEqual treats
// a decoded zero-count map and an omitted one alike (the encoder
// distinguishes them; the semantics do not).
func normOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	copy(out, ops)
	for i := range out {
		if len(out[i].Fields) == 0 {
			out[i].Fields = nil
		}
	}
	return out
}
