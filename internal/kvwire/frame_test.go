package kvwire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"ycsbt/internal/kvstore"
)

func sampleOps() []Op {
	return []Op{
		{Kind: KindGet, Table: "usertable", Key: "user42"},
		{Kind: KindGet, Table: "t", Key: "k", AsOf: 123456789},
		{Kind: KindPut, Table: "t", Key: "k2", Fields: map[string][]byte{"field0": []byte("v0"), "field1": {}}, Expect: kvstore.AnyVersion},
		{Kind: KindPut, Table: "t", Key: "new", Fields: map[string][]byte{"a": []byte("b")}, Expect: kvstore.MustNotExist},
		{Kind: KindPatch, Table: "t", Key: "k3", Fields: map[string][]byte{"f": []byte("x")}, Expect: kvstore.AnyVersion},
		{Kind: KindDelete, Table: "t", Key: "k4", Expect: 7},
	}
}

func sampleResults() []Result {
	return []Result{
		{Status: 200, Version: 3, HasVersion: true, Fields: map[string][]byte{"f": []byte("v")}},
		{Status: 200, Version: 9, HasVersion: true, Fields: map[string][]byte{"f": []byte("v")}, AsOf: 42},
		{Status: 404, Err: "not found"},
		{Status: 204, Version: 8, HasVersion: true},
		{Status: 410, Err: "moved", Owner: "http://127.0.0.1:9999", MapVersion: 4},
		{Status: 410, Err: "draining", MapVersion: 5},
		{Status: 429, Err: "too many in-flight batches"},
	}
}

func TestFrameRequestRoundTrip(t *testing.T) {
	ops := sampleOps()
	buf := AppendRequest(nil, 77, 1500, ops)
	typ, id, payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != frameRequest || id != 77 {
		t.Fatalf("typ=%d id=%d", typ, id)
	}
	deadline, got, err := DecodeRequest(payload, nil)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if deadline != 1500 {
		t.Fatalf("deadline=%d", deadline)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("ops round trip:\n got %+v\nwant %+v", got, ops)
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	res := sampleResults()
	buf := AppendResponse(nil, 12345678901234, res)
	typ, id, payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != frameResponse || id != 12345678901234 {
		t.Fatalf("typ=%d id=%d", typ, id)
	}
	got, err := DecodeResponse(payload, nil)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("results round trip:\n got %+v\nwant %+v", got, res)
	}
}

func TestFrameErrorRoundTrip(t *testing.T) {
	buf := AppendError(nil, 5, 429, 2, "too many in-flight batches")
	typ, id, payload, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil || typ != frameError || id != 5 {
		t.Fatalf("typ=%d id=%d err=%v", typ, id, err)
	}
	status, retry, msg, err := DecodeError(payload)
	if err != nil || status != 429 || retry != 2 || msg != "too many in-flight batches" {
		t.Fatalf("status=%d retry=%d msg=%q err=%v", status, retry, msg, err)
	}
}

func TestReadFrameRefusesOversizedPayload(t *testing.T) {
	hdr := make([]byte, frameHeaderLen)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := ReadFrame(bytes.NewReader(hdr), nil); err != ErrFrameTooLarge {
		t.Fatalf("err=%v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, _, _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("err=%v, want io.EOF", err)
	}
}

func TestDecodeRequestRejectsLyingCounts(t *testing.T) {
	// deadline 0, then a count that claims far more ops than the
	// payload could hold — must error before allocating them.
	payload := []byte{0, 0xff, 0xff, 0x3f} // count = 1048575
	if _, _, err := DecodeRequest(payload, nil); err == nil {
		t.Fatal("accepted lying op count")
	}
}

func TestDecodeRequestRejectsTrailingBytes(t *testing.T) {
	buf := AppendRequest(nil, 1, 0, []Op{{Kind: KindGet, Table: "t", Key: "k"}})
	payload := append(append([]byte(nil), buf[frameHeaderLen:]...), 0x00)
	if _, _, err := DecodeRequest(payload, nil); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

// FuzzFrameCodec checks the decoder never panics on hostile input and
// that whatever it accepts re-encodes to a frame that decodes equal
// (structure round trip — overlong uvarints mean byte-exact stability
// is not guaranteed, struct-exact is). The allocation guard is
// implicit: lying counts error before reserving memory, so hostile
// frames cannot make the decoder allocate beyond their own size.
func FuzzFrameCodec(f *testing.F) {
	reqSeed := AppendRequest(nil, 1, 250, sampleOps())
	resSeed := AppendResponse(nil, 2, sampleResults())
	f.Add(reqSeed[frameHeaderLen:], true)
	f.Add(resSeed[frameHeaderLen:], false)
	f.Add([]byte{}, true)
	f.Add([]byte{0, 1, 1}, true)
	f.Fuzz(func(t *testing.T, payload []byte, asRequest bool) {
		if asRequest {
			deadline, ops, err := DecodeRequest(payload, nil)
			if err != nil {
				return
			}
			re := AppendRequest(nil, 9, deadline, ops)
			deadline2, ops2, err := DecodeRequest(re[frameHeaderLen:], nil)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if deadline2 != deadline || !reflect.DeepEqual(normOps(ops2), normOps(ops)) {
				t.Fatalf("request not stable:\n got %+v\nwant %+v", ops2, ops)
			}
			return
		}
		res, err := DecodeResponse(payload, nil)
		if err != nil {
			return
		}
		re := AppendResponse(nil, 9, res)
		res2, err := DecodeResponse(re[frameHeaderLen:], nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(res2, res) {
			t.Fatalf("response not stable:\n got %+v\nwant %+v", res2, res)
		}
	})
}

// normOps maps empty-but-non-nil field maps to nil so DeepEqual treats
// a decoded zero-count map and an omitted one alike (the encoder
// distinguishes them; the semantics do not).
func normOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	copy(out, ops)
	for i := range out {
		if len(out[i].Fields) == 0 {
			out[i].Fields = nil
		}
	}
	return out
}
