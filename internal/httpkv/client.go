package httpkv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/properties"
)

// Client is the "rawhttp" DB binding: it speaks the httpkv protocol
// to a remote (or in-process httptest) server. Like the paper's
// RawHttpDB it has no transaction support — Start/Commit/Abort fall
// back to the DB class's no-op defaults.
type Client struct {
	db.NoTransactions
	base string
	hc   *http.Client
}

// NewClient returns a binding that talks to the server at baseURL
// (e.g. "http://127.0.0.1:8077"). A nil hc uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: baseURL, hc: hc}
}

func init() {
	db.Register("rawhttp", func() (db.DB, error) { return &Client{}, nil })
}

// Init reads the "rawhttp.url" property when the binding was opened
// by name through the registry.
func (c *Client) Init(p *properties.Properties) error {
	if c.base == "" {
		c.base = p.GetString("rawhttp.url", "http://127.0.0.1:8077")
	}
	if c.hc == nil {
		c.hc = http.DefaultClient
	}
	return nil
}

// Cleanup implements db.DB.
func (c *Client) Cleanup() error {
	c.hc.CloseIdleConnections()
	return nil
}

func (c *Client) recordURL(table, key string) string {
	return c.base + "/v1/" + url.PathEscape(table) + "/" + url.PathEscape(key)
}

// statusError maps HTTP status codes back to db-layer sentinels.
func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", db.ErrNotFound, bytes.TrimSpace(body))
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %s", db.ErrConflict, bytes.TrimSpace(body))
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", db.ErrThrottled, bytes.TrimSpace(body))
	default:
		return fmt.Errorf("httpkv: server returned %s: %s", resp.Status, bytes.TrimSpace(body))
	}
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpkv: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, statusError(resp)
	}
	return resp, nil
}

// Read implements db.DB.
func (c *Client) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.recordURL(table, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wr wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("httpkv: decoding record: %w", err)
	}
	return db.ProjectFields(wr.Fields, fields), nil
}

// ReadVersioned fetches a record together with its version (ETag);
// used by tests and by callers that need the CAS handle.
func (c *Client) ReadVersioned(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.recordURL(table, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wr wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("httpkv: decoding record: %w", err)
	}
	return &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields}, nil
}

// Scan implements db.DB.
func (c *Client) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	u := c.base + "/v1/" + url.PathEscape(table) + "?start=" + url.QueryEscape(startKey) + "&count=" + strconv.Itoa(count)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wrs []wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wrs); err != nil {
		return nil, fmt.Errorf("httpkv: decoding scan: %w", err)
	}
	out := make([]db.KV, 0, len(wrs))
	for _, wr := range wrs {
		out = append(out, db.KV{Key: wr.Key, Record: db.ProjectFields(wr.Fields, fields)})
	}
	return out, nil
}

// writeReq sends method with a JSON fields body and optional headers.
func (c *Client) writeReq(ctx context.Context, method, u string, values db.Record, hdr map[string]string) error {
	body, err := json.Marshal(wireRecord{Fields: values})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Update implements db.DB (merge semantics, key must exist).
func (c *Client) Update(ctx context.Context, table, key string, values db.Record) error {
	return c.writeReq(ctx, http.MethodPatch, c.recordURL(table, key), values, nil)
}

// Insert implements db.DB (unconditional put).
func (c *Client) Insert(ctx context.Context, table, key string, values db.Record) error {
	return c.writeReq(ctx, http.MethodPut, c.recordURL(table, key), values, nil)
}

// PutIfVersion performs a conditional put via If-Match /
// If-None-Match, exposing the store's test-and-set over HTTP.
func (c *Client) PutIfVersion(ctx context.Context, table, key string, values db.Record, expect uint64) error {
	_, err := c.putVersioned(ctx, table, key, values, expect)
	return err
}

// condHeaders builds the conditional-write headers for expect.
func condHeaders(expect uint64) map[string]string {
	hdr := map[string]string{}
	switch expect {
	case kvstore.AnyVersion:
	case kvstore.MustNotExist:
		hdr["If-None-Match"] = "*"
	default:
		hdr["If-Match"] = strconv.FormatUint(expect, 10)
	}
	return hdr
}

// putVersioned performs a conditional put and returns the new version
// from the response ETag.
func (c *Client) putVersioned(ctx context.Context, table, key string, values db.Record, expect uint64) (uint64, error) {
	body, err := json.Marshal(wireRecord{Fields: values})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.recordURL(table, key), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range condHeaders(expect) {
		req.Header.Set(k, v)
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	ver, err := strconv.ParseUint(resp.Header.Get("ETag"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("httpkv: missing ETag on put response: %w", err)
	}
	return ver, nil
}

// deleteVersioned performs a conditional delete.
func (c *Client) deleteVersioned(ctx context.Context, table, key string, expect uint64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.recordURL(table, key), nil)
	if err != nil {
		return err
	}
	for k, v := range condHeaders(expect) {
		req.Header.Set(k, v)
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// scanVersioned fetches a scan page with record versions.
func (c *Client) scanVersioned(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	u := c.base + "/v1/" + url.PathEscape(table) + "?start=" + url.QueryEscape(startKey) + "&count=" + strconv.Itoa(count)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wrs []wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wrs); err != nil {
		return nil, fmt.Errorf("httpkv: decoding scan: %w", err)
	}
	out := make([]kvstore.VersionedKV, 0, len(wrs))
	for _, wr := range wrs {
		out = append(out, kvstore.VersionedKV{
			Key:    wr.Key,
			Record: &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields},
		})
	}
	return out, nil
}

// Delete implements db.DB.
func (c *Client) Delete(ctx context.Context, table, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.recordURL(table, key), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
