package httpkv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/properties"
)

// Transport defaults; overridable via the rawhttp.* properties.
const (
	// DefaultPoolSize is the idle-connection pool per host. The
	// benchmark hammers one host from many threads, so the per-host
	// pool — not net/http's global default of 2 — decides whether
	// connections are reused or churned through TIME_WAIT.
	DefaultPoolSize = 64
	// DefaultTimeout bounds one HTTP exchange end to end.
	DefaultTimeout = 30 * time.Second
	// DefaultRetry429 is how many times a throttled (429) exchange is
	// re-sent after honoring the server's Retry-After hint. 0 disables
	// (surface db.ErrThrottled immediately, the pre-retry behavior).
	DefaultRetry429 = 2
	// DefaultRetry429Max caps one backoff sleep regardless of what
	// Retry-After asks for.
	DefaultRetry429Max = 5 * time.Second
)

// newPooledHTTPClient builds the binding's dedicated HTTP client:
// never http.DefaultClient (whose zero timeout hangs forever on a
// dead server and whose shared transport lets one binding's settings
// leak into every other user of the process).
func newPooledHTTPClient(poolSize int, timeout time.Duration) *http.Client {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			MaxIdleConns:        poolSize * 2,
			MaxIdleConnsPerHost: poolSize,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Client is the "rawhttp" DB binding: it speaks the httpkv protocol
// to a remote (or in-process httptest) server. Like the paper's
// RawHttpDB it has no transaction support — Start/Commit/Abort fall
// back to the DB class's no-op defaults. It does implement db.BatchDB
// (batch.go), so stacked under the batching middleware one POST moves
// a whole multi-key batch.
type Client struct {
	db.NoTransactions
	base string
	hc   *http.Client
	// sem bounds in-flight requests client-side (nil = unbounded):
	// bounded pipelining keeps a saturated benchmark from opening
	// unlimited sockets when the server slows down.
	sem chan struct{}
	// caps holds this endpoint's negotiated-capability latches
	// (batch-route fallback, as-of fast-fail). Scoped per endpoint so
	// a cluster router's nodes latch independently; see caps.go.
	caps *endpointCaps
	// asOf, when non-zero, routes every read through the as-of wire
	// protocol at that snapshot timestamp (the "as_of" property).
	asOf int64
	// retry429 / retry429Max configure the throttle retry loop (see
	// sendRetry): up to retry429 re-sends, each sleeping the server's
	// Retry-After (doubled per attempt) capped at retry429Max.
	retry429    int
	retry429Max time.Duration
	// wireMode steers the binary transport: "auto" (or empty) sniffs
	// the X-KV-Wire header, "off" stays on HTTP, anything else is an
	// explicit host:port dial address. wireConns sizes the binary
	// connection pool (0 = kvwire.DefaultMaxConns). See wire.go.
	wireMode  string
	wireConns int
}

// NewClient returns a binding that talks to the server at baseURL
// (e.g. "http://127.0.0.1:8077"). A nil hc gets a dedicated pooled
// client with default sizing.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = newPooledHTTPClient(DefaultPoolSize, DefaultTimeout)
	}
	return &Client{base: baseURL, hc: hc, caps: &endpointCaps{}, retry429: DefaultRetry429, retry429Max: DefaultRetry429Max}
}

func init() {
	db.Register("rawhttp", func() (db.DB, error) { return &Client{}, nil })
}

// Init reads the "rawhttp.url", "rawhttp.pool_size",
// "rawhttp.timeout_ms", "rawhttp.max_inflight", "rawhttp.retry429"
// and "rawhttp.retry429_max_ms" properties when the binding was
// opened by name through the registry.
func (c *Client) Init(p *properties.Properties) error {
	if c.base == "" {
		c.base = p.GetString("rawhttp.url", "http://127.0.0.1:8077")
	}
	if c.caps == nil {
		c.caps = &endpointCaps{}
	}
	if c.hc == nil {
		c.hc = newPooledHTTPClient(
			p.GetInt("rawhttp.pool_size", DefaultPoolSize),
			time.Duration(p.GetInt64("rawhttp.timeout_ms", int64(DefaultTimeout/time.Millisecond)))*time.Millisecond,
		)
	}
	if c.sem == nil {
		if n := p.GetInt("rawhttp.max_inflight", 0); n > 0 {
			c.sem = make(chan struct{}, n)
		}
	}
	c.retry429 = p.GetInt("rawhttp.retry429", DefaultRetry429)
	c.retry429Max = time.Duration(p.GetInt64("rawhttp.retry429_max_ms", int64(DefaultRetry429Max/time.Millisecond))) * time.Millisecond
	c.wireMode = p.GetString("rawhttp.wire", WireModeAuto)
	c.wireConns = p.GetInt("rawhttp.wire_conns", 0)
	// as_of pins every read this binding issues to one snapshot
	// timestamp: an explicit positive commit ts, or -1 to freeze at
	// whatever the server's clock reads now (fetched once via /v1/ts).
	if ts := p.GetInt64("as_of", 0); ts != 0 {
		if ts < 0 {
			now, err := c.SnapshotTS(context.Background())
			if err != nil {
				return fmt.Errorf("httpkv: resolving as_of=-1: %w", err)
			}
			ts = now
		}
		c.asOf = ts
	}
	return nil
}

// Cleanup implements db.DB.
func (c *Client) Cleanup() error {
	c.hc.CloseIdleConnections()
	c.caps.closeWire()
	return nil
}

func (c *Client) recordURL(table, key string) string {
	return c.base + "/v1/" + url.PathEscape(table) + "/" + url.PathEscape(key)
}

// statusError maps HTTP status codes back to db-layer sentinels. A
// 410 becomes a typed *cluster.MovedError carrying the responding
// node's map version and owner hint, so routers and middleware can
// tell a stale shard map apart from a genuine client error instead of
// pattern-matching on a generic 4xx.
func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", db.ErrNotFound, bytes.TrimSpace(body))
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %s", db.ErrConflict, bytes.TrimSpace(body))
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", db.ErrThrottled, bytes.TrimSpace(body))
	case http.StatusGone:
		ver, _ := strconv.ParseInt(resp.Header.Get(cluster.HeaderMapVersion), 10, 64)
		return &cluster.MovedError{
			Owner:      resp.Header.Get(cluster.HeaderOwner),
			MapVersion: ver,
		}
	default:
		return fmt.Errorf("httpkv: server returned %s: %s", resp.Status, bytes.TrimSpace(body))
	}
}

// send runs one HTTP exchange under the client-side in-flight bound,
// propagating the caller's context deadline to the server as
// X-Deadline-Ms so the server can shed work the client will no longer
// wait for.
func (c *Client) send(req *http.Request) (*http.Response, error) {
	if d, ok := req.Context().Deadline(); ok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	if c.sem != nil {
		select {
		case c.sem <- struct{}{}:
			defer func() { <-c.sem }()
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := c.hc.Do(req)
	if err == nil {
		c.sniffWire(resp)
	}
	return resp, err
}

// sendRetry is send plus the 429 policy: a throttled response is
// retried up to c.retry429 times, sleeping the server's Retry-After
// hint (doubled each attempt as backoff, capped at c.retry429Max)
// between sends. The request body is replayed via GetBody, which
// net/http sets for the bytes.Reader/bytes.Buffer bodies every caller
// here uses; a non-replayable body surfaces the 429 unchanged. The
// retry gives up early when the context would expire before the
// backoff elapses, returning the throttled response so the caller
// still maps it to db.ErrThrottled.
func (c *Client) sendRetry(req *http.Request) (*http.Response, error) {
	resp, err := c.send(req)
	for attempt := 0; attempt < c.retry429; attempt++ {
		if err != nil || resp.StatusCode != http.StatusTooManyRequests {
			return resp, err
		}
		if req.Body != nil && req.GetBody == nil {
			return resp, err // cannot replay the body
		}
		wait := retryAfterDelay(resp, attempt, c.retry429Max)
		if d, ok := req.Context().Deadline(); ok && time.Until(d) <= wait {
			return resp, err // would expire mid-backoff; let the caller see the 429
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		select {
		case <-time.After(wait):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return nil, berr
			}
			req.Body = body
		}
		resp, err = c.send(req)
	}
	return resp, err
}

// retryAfterDelay resolves one backoff sleep: the response's
// Retry-After hint (100ms when absent or unparsable), doubled per
// completed attempt, capped at max. RFC 9110 §10.2.3 allows both
// forms of the header — delta-seconds and an HTTP-date — so both
// parse here; a date already in the past means "retry now" (zero
// sleep), not "fall back to the default".
func retryAfterDelay(resp *http.Response, attempt int, ceiling time.Duration) time.Duration {
	base := 100 * time.Millisecond
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
			base = time.Duration(secs) * time.Second
		} else if t, terr := http.ParseTime(h); terr == nil {
			base = time.Until(t)
			if base < 0 {
				base = 0
			}
		}
	}
	d := base << attempt
	if ceiling > 0 && d > ceiling {
		d = ceiling
	}
	return d
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.sendRetry(req)
	if err != nil {
		return nil, fmt.Errorf("httpkv: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, statusError(resp)
	}
	return resp, nil
}

// Read implements db.DB.
func (c *Client) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	if c.asOf == 0 || !c.caps.asOfUnsupported.Load() {
		op := kvwire.Op{Kind: kvwire.KindGet, Table: table, Key: key, AsOf: c.asOf}
		if res, served, err := c.wireSingle(ctx, op); served {
			if err != nil {
				return nil, err
			}
			if err := wireResultErr(res); err != nil {
				return nil, err
			}
			db.ReportReadVersion(ctx, res.Version)
			return db.ProjectFields(res.Fields, fields), nil
		}
	}
	if c.asOf != 0 {
		wr, err := c.readWireAsOf(ctx, table, key, c.asOf)
		if err != nil {
			return nil, err
		}
		db.ReportReadVersion(ctx, wr.Version)
		return db.ProjectFields(wr.Fields, fields), nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.recordURL(table, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wr wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("httpkv: decoding record: %w", err)
	}
	db.ReportReadVersion(ctx, wr.Version)
	return db.ProjectFields(wr.Fields, fields), nil
}

// ReadVersioned fetches a record together with its version (ETag);
// used by tests and by callers that need the CAS handle.
func (c *Client) ReadVersioned(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	if res, served, err := c.wireSingle(ctx, kvwire.Op{Kind: kvwire.KindGet, Table: table, Key: key}); served {
		if err != nil {
			return nil, err
		}
		if err := wireResultErr(res); err != nil {
			return nil, err
		}
		return &kvstore.VersionedRecord{Version: res.Version, Fields: res.Fields}, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.recordURL(table, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wr wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("httpkv: decoding record: %w", err)
	}
	return &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields}, nil
}

// scanWire fetches one scan page, asking for NDJSON and decoding
// whichever representation the server speaks (old servers answer a
// JSON array; the Content-Type decides). mapVer is the shard map
// version the serving node scanned under (echoed on cluster-mode
// responses; 0 from non-cluster or pre-echo servers) — the router's
// fan-out compares it across nodes to detect a scan that straddled a
// migration cutover.
func (c *Client) scanWire(ctx context.Context, table, startKey string, count int) (wrs []wireRecord, mapVer int64, err error) {
	if wrs, mapVer, served, err := c.scanStream(ctx, table, startKey, count, 0, -1, false); served {
		return wrs, mapVer, err
	}
	return c.scanWireHTTP(ctx, table, startKey, count)
}

// scanWireHTTP is the HTTP page fetch under scanWire — also the
// fallback the router's streaming cursor uses directly, so a failed
// stream open does not re-probe the stream path within the same call.
func (c *Client) scanWireHTTP(ctx context.Context, table, startKey string, count int) (wrs []wireRecord, mapVer int64, err error) {
	u := c.base + "/v1/" + url.PathEscape(table) + "?start=" + url.QueryEscape(startKey) + "&count=" + strconv.Itoa(count)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := c.do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	mapVer, _ = strconv.ParseInt(resp.Header.Get(cluster.HeaderMapVersion), 10, 64)
	if strings.Contains(resp.Header.Get("Content-Type"), NDJSONContentType) {
		wrs, err := decodeScanNDJSON(resp.Body, count)
		if err != nil {
			return nil, 0, err
		}
		return wrs, mapVer, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrs); err != nil {
		return nil, 0, fmt.Errorf("httpkv: decoding scan: %w", err)
	}
	return wrs, mapVer, nil
}

// Scan implements db.DB.
func (c *Client) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	var wrs []wireRecord
	var err error
	if c.asOf != 0 {
		wrs, err = c.scanWireAsOf(ctx, table, startKey, count, c.asOf)
	} else {
		wrs, _, err = c.scanWire(ctx, table, startKey, count)
	}
	if err != nil {
		return nil, err
	}
	out := make([]db.KV, 0, len(wrs))
	for _, wr := range wrs {
		out = append(out, db.KV{Key: wr.Key, Record: db.ProjectFields(wr.Fields, fields)})
	}
	return out, nil
}

// writeReq sends method with a JSON fields body and optional headers.
func (c *Client) writeReq(ctx context.Context, method, u string, values db.Record, hdr map[string]string) error {
	body, err := json.Marshal(wireRecord{Fields: values})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	// The server stamps write responses with the new version as the
	// ETag; report it when a history capture is armed.
	if ver, perr := strconv.ParseUint(resp.Header.Get("ETag"), 10, 64); perr == nil {
		db.ReportWriteVersion(ctx, ver)
	}
	return nil
}

// wireWrite runs one mutation over the binary protocol when it is
// negotiated, returning served=false to send the caller down the HTTP
// path. A nil fields map would answer 400 from the core's batch
// validation, so it rides as an empty one — matching the single-op
// HTTP route, which accepts a missing fields object.
func (c *Client) wireWrite(ctx context.Context, kind kvwire.Kind, table, key string, values db.Record, expect uint64) (ver uint64, served bool, err error) {
	op := kvwire.Op{Kind: kind, Table: table, Key: key, Fields: values, Expect: expect}
	if op.Fields == nil && kind != kvwire.KindDelete {
		op.Fields = map[string][]byte{}
	}
	res, served, err := c.wireSingle(ctx, op)
	if !served {
		return 0, false, nil
	}
	if err != nil {
		return 0, true, err
	}
	if err := wireResultErr(res); err != nil {
		return 0, true, err
	}
	return res.Version, true, nil
}

// Update implements db.DB (merge semantics, key must exist).
func (c *Client) Update(ctx context.Context, table, key string, values db.Record) error {
	if ver, served, err := c.wireWrite(ctx, kvwire.KindPatch, table, key, values, kvstore.AnyVersion); served {
		if err == nil {
			db.ReportWriteVersion(ctx, ver)
		}
		return err
	}
	return c.writeReq(ctx, http.MethodPatch, c.recordURL(table, key), values, nil)
}

// Insert implements db.DB (unconditional put).
func (c *Client) Insert(ctx context.Context, table, key string, values db.Record) error {
	if ver, served, err := c.wireWrite(ctx, kvwire.KindPut, table, key, values, kvstore.AnyVersion); served {
		if err == nil {
			db.ReportWriteVersion(ctx, ver)
		}
		return err
	}
	return c.writeReq(ctx, http.MethodPut, c.recordURL(table, key), values, nil)
}

// PutIfVersion performs a conditional put via If-Match /
// If-None-Match, exposing the store's test-and-set over HTTP.
func (c *Client) PutIfVersion(ctx context.Context, table, key string, values db.Record, expect uint64) error {
	_, err := c.putVersioned(ctx, table, key, values, expect)
	return err
}

// condHeaders builds the conditional-write headers for expect.
func condHeaders(expect uint64) map[string]string {
	hdr := map[string]string{}
	switch expect {
	case kvstore.AnyVersion:
	case kvstore.MustNotExist:
		hdr["If-None-Match"] = "*"
	default:
		hdr["If-Match"] = strconv.FormatUint(expect, 10)
	}
	return hdr
}

// putVersioned performs a conditional put and returns the new version
// from the response ETag.
func (c *Client) putVersioned(ctx context.Context, table, key string, values db.Record, expect uint64) (uint64, error) {
	if ver, served, err := c.wireWrite(ctx, kvwire.KindPut, table, key, values, expect); served {
		return ver, err
	}
	body, err := json.Marshal(wireRecord{Fields: values})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.recordURL(table, key), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range condHeaders(expect) {
		req.Header.Set(k, v)
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	ver, err := strconv.ParseUint(resp.Header.Get("ETag"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("httpkv: missing ETag on put response: %w", err)
	}
	return ver, nil
}

// deleteVersioned performs a conditional delete.
func (c *Client) deleteVersioned(ctx context.Context, table, key string, expect uint64) error {
	if _, served, err := c.wireWrite(ctx, kvwire.KindDelete, table, key, nil, expect); served {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.recordURL(table, key), nil)
	if err != nil {
		return err
	}
	for k, v := range condHeaders(expect) {
		req.Header.Set(k, v)
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// scanVersioned fetches a scan page with record versions.
func (c *Client) scanVersioned(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	wrs, _, err := c.scanWire(ctx, table, startKey, count)
	if err != nil {
		return nil, err
	}
	out := make([]kvstore.VersionedKV, 0, len(wrs))
	for _, wr := range wrs {
		out = append(out, kvstore.VersionedKV{
			Key:    wr.Key,
			Record: &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields},
		})
	}
	return out, nil
}

// Delete implements db.DB.
func (c *Client) Delete(ctx context.Context, table, key string) error {
	if _, served, err := c.wireWrite(ctx, kvwire.KindDelete, table, key, nil, kvstore.AnyVersion); served {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.recordURL(table, key), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
