package httpkv

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
)

func newTestRouter(t *testing.T, nodes []*clusterNode, reg *obs.Registry) *Router {
	t.Helper()
	r, err := NewRouter([]string{nodes[0].URL}, nodes[0].srv.Client(), reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Cleanup() })
	return r
}

// The router sends every key to its owner: operations succeed across
// the whole fleet and each record lands on exactly the node the map
// assigns it.
func TestRouterRoutesPerKey(t *testing.T) {
	nodes := startTestCluster(t, 3, 12)
	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()
	m := r.Map()

	const n = 60
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%05d", i)
		if err := r.Insert(ctx, "t", k, rec("v-"+k)); err != nil {
			t.Fatalf("insert %s: %v", k, err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user%05d", i)
		got, err := r.Read(ctx, "t", k, nil)
		if err != nil || string(got["f"]) != "v-"+k {
			t.Fatalf("read %s: %v %v", k, got, err)
		}
		owner, _ := m.Owner(k)
		for _, tn := range nodes {
			_, err := tn.store.Get("t", k)
			if (tn.URL == owner) != (err == nil) {
				t.Fatalf("key %s: presence on %s = %v, owner is %s", k, tn.URL, err == nil, owner)
			}
		}
	}
	if err := r.Update(ctx, "t", "user00000", rec("v2")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(ctx, "t", "user00001"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(ctx, "t", "user00001", nil); err == nil {
		t.Error("deleted key still readable")
	}
}

// Fleet-wide scans merge per-node pages into one global key order.
func TestRouterScanMerges(t *testing.T) {
	nodes := startTestCluster(t, 3, 12)
	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()

	var want []string
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("user%05d", i)
		if err := r.Insert(ctx, "t", k, rec("v")); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}
	kvs, err := r.Scan(ctx, "t", "", 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, kv := range kvs {
		got = append(got, kv.Key)
	}
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("scan order mismatch:\n got %v\nwant %v", got, want)
	}
	// Bounded scans honor count across the merge.
	kvs, err = r.Scan(ctx, "t", "user00010", 7, nil)
	if err != nil || len(kvs) != 7 || kvs[0].Key != "user00010" {
		t.Errorf("bounded scan: %d keys from %q, err %v", len(kvs), kvs[0].Key, err)
	}
}

// A scan fanned out while the fleet straddles a map install must not
// return a silently merged result: each node echoes the map version
// it scanned under, and disagreement makes the router retry and, if
// the fleet never converges, fail loudly instead of dropping the
// migrating slot's records.
func TestRouterScanDetectsVersionSkew(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()
	a, b := nodes[0], nodes[1]

	const n = 20
	for i := 0; i < n; i++ {
		if err := r.Insert(ctx, "t", fmt.Sprintf("user%05d", i), rec("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Half-install a successor: a is at v+1, b still at v.
	next := r.Map().Clone()
	next.Version++
	if _, err := a.state.Install(next); err != nil {
		t.Fatal(err)
	}
	r.retries = 2
	r.backoff = time.Millisecond
	if _, err := r.Scan(ctx, "t", "", -1, nil); err == nil {
		t.Fatal("scan across a version-skewed fleet succeeded silently")
	} else if !strings.Contains(err.Error(), "straddling") {
		t.Fatalf("skewed scan error = %v, want version-skew report", err)
	}

	// Once the fleet converges the same scan covers every key again.
	if _, err := b.state.Install(next); err != nil {
		t.Fatal(err)
	}
	kvs, err := r.Scan(ctx, "t", "", -1, nil)
	if err != nil {
		t.Fatalf("scan after convergence: %v", err)
	}
	if len(kvs) != n {
		t.Errorf("converged scan returned %d keys, want %d", len(kvs), n)
	}
}

// Batches fan out per owner and merge positionally: result i always
// answers op i, whatever node served it.
func TestRouterBatchFanOut(t *testing.T) {
	nodes := startTestCluster(t, 3, 12)
	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()

	var ops []db.BatchOp
	for i := 0; i < 30; i++ {
		ops = append(ops, db.BatchOp{Op: db.OpInsert, Table: "t", Key: fmt.Sprintf("user%05d", i), Values: rec(fmt.Sprintf("v%d", i))})
	}
	for _, res := range r.ExecBatch(ctx, ops) {
		if res.Err != nil {
			t.Fatalf("batch insert: %v", res.Err)
		}
	}
	ops = ops[:0]
	for i := 0; i < 30; i++ {
		ops = append(ops, db.BatchOp{Op: db.OpRead, Table: "t", Key: fmt.Sprintf("user%05d", i)})
	}
	for i, res := range r.ExecBatch(ctx, ops) {
		if res.Err != nil || string(res.Record["f"]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("batch read %d: %v %v", i, res.Record, res.Err)
		}
	}
}

// When the fleet installs a newer map behind the router's back, the
// 410 + hint makes it refetch and retry — the operation succeeds and
// the refetch counter moves.
func TestRouterRefetchesOnMoved(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	reg := obs.NewRegistry()
	r := newTestRouter(t, nodes, reg)
	ctx := context.Background()
	m := r.Map()
	a, b := nodes[0], nodes[1]

	slot := m.SlotsOf(a.URL)[0]
	next, err := m.WithSlotMoved(slot, b.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes {
		if _, err := tn.state.Install(next); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Map().Version; got != m.Version {
		t.Fatalf("router map already at v%d before any traffic", got)
	}

	key := keyOwnedBy(t, next, b.URL, "mv")
	if owner, _ := m.Owner(key); owner != a.URL {
		// Want a key that moved: owned by a under v1, by b under v2.
		for i := 0; ; i++ {
			key = fmt.Sprintf("mv2-%05d", i)
			if _, s := m.Owner(key); s == slot {
				break
			}
		}
	}
	before := reg.Counter("cluster_map_refetch_total").Value()
	if err := r.Insert(ctx, "t", key, rec("v")); err != nil {
		t.Fatalf("insert across stale map: %v", err)
	}
	if got := r.Map().Version; got != next.Version {
		t.Errorf("router map version after retry = %d, want %d", got, next.Version)
	}
	if after := reg.Counter("cluster_map_refetch_total").Value(); after <= before {
		t.Errorf("refetch counter did not move: %d -> %d", before, after)
	}
	if moved := reg.Counter("httpkv_client_moved_total").Value(); moved == 0 {
		t.Error("moved counter did not move")
	}
	// The record landed on the new owner.
	if _, err := b.store.Get("t", key); err != nil {
		t.Errorf("record not on new owner: %v", err)
	}
}

// One old node in a mixed-version fleet latches its own capability
// fallback without disabling batch support for every other node: the
// per-endpoint latches are scoped per node address.
func TestRouterPerNodeCapabilityLatch(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	// Node b plays an old server with no /v1/batch route.
	oldNode := func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/v1/batch" {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return true
		}
		return false
	}
	b.pre.Store(&oldNode)

	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()
	m := r.Map()

	var ops []db.BatchOp
	seenB := false
	for i := 0; len(ops) < 20; i++ {
		k := fmt.Sprintf("user%05d", i)
		if owner, _ := m.Owner(k); owner == b.URL {
			seenB = true
		}
		ops = append(ops, db.BatchOp{Op: db.OpInsert, Table: "t", Key: k, Values: rec("v")})
	}
	if !seenB {
		t.Fatal("test keys never hit node b")
	}
	for i, res := range r.ExecBatch(ctx, ops) {
		if res.Err != nil {
			t.Fatalf("mixed-fleet batch op %d: %v", i, res.Err)
		}
	}

	r.mu.RLock()
	capsA, capsB := r.caps[a.URL], r.caps[b.URL]
	r.mu.RUnlock()
	if !capsB.batchUnsupported.Load() {
		t.Error("old node's batch latch not set despite 405")
	}
	if capsA.batchUnsupported.Load() {
		t.Error("new node's batch latch set by the old node's 405 — latch must be per endpoint")
	}

	// New batches still go to a as envelopes; reads see every write.
	for i := range ops {
		got, err := r.Read(ctx, "t", ops[i].Key, nil)
		if err != nil || string(got["f"]) != "v" {
			t.Fatalf("read-back %s: %v %v", ops[i].Key, got, err)
		}
	}
}

// The moved-key storm (run under -race): eight writers batch through
// the router while a slot live-migrates underneath them. No operation
// may be lost or duplicated, and the map refetches must stay bounded
// instead of stampeding once per moved item.
func TestRouterMovedStorm(t *testing.T) {
	nodes := startTestCluster(t, 3, 12)
	reg := obs.NewRegistry()
	r := newTestRouter(t, nodes, reg)
	ctx := context.Background()
	m := r.Map()
	a, b := nodes[0], nodes[1]

	const (
		threads = 8
		rounds  = 30
		perOp   = 4 // keys per thread per batch
	)
	// Seed every key; counters start at 0.
	for th := 0; th < threads; th++ {
		var ops []db.BatchOp
		for j := 0; j < perOp; j++ {
			ops = append(ops, db.BatchOp{
				Op: db.OpInsert, Table: "t",
				Key: fmt.Sprintf("storm-%d-%d", th, j), Values: rec("0"),
			})
		}
		for _, res := range r.ExecBatch(ctx, ops) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, threads)
	acked := make([][]int, threads) // per-thread count of acked updates per key
	for th := 0; th < threads; th++ {
		acked[th] = make([]int, perOp)
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				var ops []db.BatchOp
				for j := 0; j < perOp; j++ {
					ops = append(ops, db.BatchOp{
						Op: db.OpUpdate, Table: "t",
						Key:    fmt.Sprintf("storm-%d-%d", th, j),
						Values: rec(fmt.Sprintf("%d", round)),
					})
				}
				for j, res := range r.ExecBatch(ctx, ops) {
					if res.Err != nil {
						errs <- fmt.Errorf("thread %d round %d op %d: %w", th, round, j, res.Err)
						return
					}
					acked[th][j]++
				}
			}
		}(th)
	}

	// Two live migrations mid-storm: a → b, then another slot b → a.
	slotAB := m.SlotsOf(a.URL)[0]
	m2, err := MigrateSlot(ctx, a.srv.Client(), m, slotAB, b.URL)
	if err != nil {
		t.Fatalf("storm migration 1: %v", err)
	}
	slotBA := m2.SlotsOf(b.URL)[0]
	if _, err := MigrateSlot(ctx, a.srv.Client(), m2, slotBA, a.URL); err != nil {
		t.Fatalf("storm migration 2: %v", err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No lost ops: every thread acked all its rounds, and the final
	// image is the last acked write (updates are ordered per thread,
	// so a lost-but-acked write would leave an older value behind).
	for th := 0; th < threads; th++ {
		for j := 0; j < perOp; j++ {
			if acked[th][j] != rounds {
				t.Errorf("thread %d key %d: %d acks, want %d", th, j, acked[th][j], rounds)
			}
			k := fmt.Sprintf("storm-%d-%d", th, j)
			got, err := r.Read(ctx, "t", k, nil)
			if err != nil {
				t.Fatalf("final read %s: %v", k, err)
			}
			if string(got["f"]) != fmt.Sprintf("%d", rounds) {
				t.Errorf("%s final value = %s, want %d (lost update)", k, got["f"], rounds)
			}
			// Exactly rounds+1 record versions (seed + one per round):
			// a duplicated (replayed) update would inflate this.
			owner, _ := r.Map().Owner(k)
			for _, tn := range nodes {
				if tn.URL != owner {
					continue
				}
				recv, err := tn.store.Get("t", k)
				if err != nil {
					t.Fatalf("owner read %s: %v", k, err)
				}
				if recv.Version != uint64(rounds+1) {
					t.Errorf("%s version = %d, want %d (duplicated or lost op)", k, recv.Version, rounds+1)
				}
			}
		}
	}

	// Bounded refetches: a handful per migration, not one per moved op.
	refetches := reg.Counter("cluster_map_refetch_total").Value()
	const maxRefetches = 2 * (threads + 2) // generous: both migrations, every thread may refetch once each
	if refetches > maxRefetches {
		t.Errorf("refetch storm: %d map refetches (bound %d)", refetches, maxRefetches)
	}
	t.Logf("storm: %d refetches, %d moved answers",
		refetches, reg.Counter("httpkv_client_moved_total").Value())
}

// The cluster binding rejects as_of: commit timestamps are per-store
// logical clocks with no cross-node meaning.
func TestRouterRejectsAsOf(t *testing.T) {
	nodes := startTestCluster(t, 1, 4)
	r := &Router{}
	p := properties.New()
	p.Set("cluster.nodes", nodes[0].URL)
	p.Set("as_of", "123")
	err := r.Init(p)
	if !errors.Is(err, db.ErrNotSupported) {
		t.Fatalf("as_of init: got %v, want ErrNotSupported", err)
	}
}
