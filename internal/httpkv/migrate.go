package httpkv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"ycsbt/internal/cluster"
	"ycsbt/internal/kvwire"
)

// Slot migration: move one shard-map slot between live nodes with no
// lost updates and no stale reads.
//
//	freeze   POST src /v1/shardmap/freeze?slot=N — drains in-flight
//	         writes; returns only when every admitted write has
//	         applied. Reads keep serving (the data cannot change:
//	         src rejects new writes, and no other node owns the slot).
//	ts       GET src /v1/ts — a commit timestamp covering every
//	         acknowledged write, drawn after the freeze barrier.
//	copy     per table: scan src ?slot=N&count=-1&tombstones=1 as-of
//	         ts (the pinned-ts machinery replica seeding uses), stream
//	         the versioned records — tombstones included — into dest
//	         /v1/ingest in bounded chunks. Ingest preserves Version
//	         and CommitTS, so CAS handles held by clients stay valid
//	         across the move, and advances dest's commit clock past
//	         the imported history.
//	serve    install map v+1 (slot → dest) on src FIRST, then dest,
//	         then the rest of the fleet. Both cutover installs are
//	         CAS-conditioned on the predecessor version v, so a
//	         concurrent migration built from the same v cannot
//	         silently install a divergent v+1 — the loser 409s and
//	         aborts (src) or rolls back (dest). Between the two
//	         installs the slot answers 410 everywhere — briefly
//	         unavailable, never stale: src stops serving reads the
//	         instant it learns the slot is no longer its own, so no
//	         read can miss a write that landed on dest. Routers ride
//	         the window out with refetch-and-retry.
//
// Before freezing, a preflight confirms every fleet member is at
// exactly map version v: stragglers behind v are converged by
// re-pushing v, and any node already past v aborts the migration (a
// concurrent migration won). Combined with the CAS cutover this
// serializes racing migrations: at most one v+1 ever installs.
//
// Failure before the src install thaws the slot and leaves the old
// map in force (the copy is harmlessly idempotent — Ingest skips
// records the destination already has at the same or newer commit
// ts). Failure at the dest install rolls the slot back to src on top
// of the newest map observed in the fleet, so the rollback converges
// any concurrent divergence instead of fighting it; src's data is
// still complete.
//
// Source-side records of a migrated slot are not deleted; the
// ownership gate hides them and scans filter them out. Space is
// reclaimed by the engine's normal retention/compaction machinery.
// Those hidden records are exactly why the copy must carry
// tombstones: if the slot ever migrates back, a live-records-only
// copy would omit keys deleted elsewhere and the former owner's stale
// live records would resurrect — a silent lost delete.

// migrateChunk bounds one ingest POST: at most this many records and
// roughly this many body bytes, staying under the server's default
// 1 MiB body cap with margin.
const (
	migrateChunkRecords = 512
	migrateChunkBytes   = 256 << 10
)

// MigrateSlot moves slot to dest under the given map, returning the
// successor map it installed across the fleet.
func MigrateSlot(ctx context.Context, hc *http.Client, m *cluster.Map, slot int, dest string) (*cluster.Map, error) {
	return MigrateSlotOpts(ctx, hc, m, slot, dest, MigrateOptions{})
}

// MigrateSlotOpts is MigrateSlot with tuning options.
func MigrateSlotOpts(ctx context.Context, hc *http.Client, m *cluster.Map, slot int, dest string, opts MigrateOptions) (*cluster.Map, error) {
	if hc == nil {
		hc = newPooledHTTPClient(DefaultPoolSize, DefaultTimeout)
	}
	if slot < 0 || slot >= m.Slots {
		return nil, fmt.Errorf("cluster: migrate slot %d out of range [0,%d)", slot, m.Slots)
	}
	if m.NodeIndex(dest) < 0 {
		return nil, fmt.Errorf("cluster: migrate destination %q not a cluster member", dest)
	}
	src := m.OwnerOfSlot(slot)
	if src == dest {
		return m, nil
	}
	next, err := m.WithSlotMoved(slot, dest)
	if err != nil {
		return nil, err
	}

	// Preflight: a concurrent migration shows up as a fleet member
	// whose map is already past m. Stragglers behind m (a previous
	// migration's best-effort fan-out missed them) are converged by
	// re-pushing m; anything ahead aborts before we freeze.
	for _, addr := range m.Nodes {
		got, ferr := fetchShardMap(ctx, hc, addr)
		if ferr != nil {
			return nil, fmt.Errorf("cluster: migrate slot %d: preflight map fetch from %s: %w", slot, addr, ferr)
		}
		switch {
		case got.Version > m.Version:
			return nil, fmt.Errorf("cluster: migrate slot %d: node %s already at map v%d (concurrent migration?); re-run against the current map",
				slot, addr, got.Version)
		case got.Version < m.Version:
			if perr := putShardMap(ctx, hc, addr, m, 0); perr != nil {
				return nil, fmt.Errorf("cluster: migrate slot %d: converging straggler %s to v%d: %w", slot, addr, m.Version, perr)
			}
		}
	}

	// Drain: after this returns, no write to the slot is in flight
	// anywhere, and none can start (src rejects, nobody else owns it).
	if err := postFreeze(ctx, hc, src, slot, false); err != nil {
		return nil, fmt.Errorf("cluster: freezing slot %d on %s: %w", slot, src, err)
	}
	fail := func(step string, err error) (*cluster.Map, error) {
		postFreeze(ctx, hc, src, slot, true) // thaw, best effort
		return nil, fmt.Errorf("cluster: migrate slot %d %s→%s: %s: %w", slot, src, dest, step, err)
	}

	ts, err := fetchSnapshotTS(ctx, hc, src)
	if err != nil {
		return fail("drawing snapshot ts", err)
	}
	tables, err := fetchTables(ctx, hc, src)
	if err != nil {
		return fail("listing tables", err)
	}
	// Copy over the framed wire when both ends negotiated streams;
	// otherwise — or on any wire failure mid-table — over HTTP. The
	// fallback re-copies the table from the top, which is safe: the
	// scan is pinned to ts and the ingest is idempotent.
	var srcEp, dstEp *kvwire.Endpoint
	if !opts.DisableWire {
		if sa, ok := sniffNodeWireStream(ctx, hc, src); ok {
			if da, ok := sniffNodeWireStream(ctx, hc, dest); ok {
				srcEp = kvwire.NewEndpoint(sa, 1)
				dstEp = kvwire.NewEndpoint(da, 1)
				defer srcEp.Close()
				defer dstEp.Close()
			}
		}
	}
	for _, table := range tables {
		if srcEp != nil {
			if err := copySlotWire(ctx, srcEp, dstEp, table, slot, ts); err == nil {
				continue
			} else if ctx.Err() != nil {
				return fail(fmt.Sprintf("copying table %q", table), err)
			}
		}
		if err := copySlot(ctx, hc, src, dest, table, slot, ts); err != nil {
			return fail(fmt.Sprintf("copying table %q", table), err)
		}
	}

	// Cut over: src first (stops serving the slot, clears the freeze),
	// then dest (starts serving), then the rest of the fleet. Both
	// installs are CAS-conditioned on the predecessor version so a
	// racing migration that slipped past the preflight loses cleanly
	// instead of split-braining the fleet with a divergent successor.
	if err := putShardMap(ctx, hc, src, next, m.Version); err != nil {
		return fail("installing map on source", err)
	}
	if err := putShardMap(ctx, hc, dest, next, m.Version); err != nil {
		// src already dropped the slot; give it back so the fleet is
		// never left with an unserved slot. Build the rollback on top of
		// the newest map observed (a concurrent migration may have moved
		// dest past next), so the rollback converges the divergence.
		base := next
		if dm, derr := fetchShardMap(ctx, hc, dest); derr == nil && dm.Version > base.Version {
			base = dm
		}
		if back, berr := base.WithSlotMoved(slot, src); berr == nil {
			if rerr := putShardMap(ctx, hc, src, back, 0); rerr == nil {
				installEverywhere(ctx, hc, back, src)
				return nil, fmt.Errorf("cluster: migrate slot %d %s→%s: installing map on destination: %w (rolled back to %s at map v%d)",
					slot, src, dest, err, src, back.Version)
			}
		}
		return nil, fmt.Errorf("cluster: migrate slot %d %s→%s: installing map on destination: %w (ROLLBACK FAILED: slot unserved until an operator re-installs a map)",
			slot, src, dest, err)
	}
	installEverywhere(ctx, hc, next, src, dest)
	return next, nil
}

// installEverywhere pushes the map to every fleet node not in done,
// best effort: a straggler keeps answering moved hints from its stale
// map, which routers resolve by polling the whole fleet for the
// newest copy.
func installEverywhere(ctx context.Context, hc *http.Client, m *cluster.Map, done ...string) {
	skip := make(map[string]bool, len(done))
	for _, d := range done {
		skip[d] = true
	}
	for _, addr := range m.Nodes {
		if !skip[addr] {
			putShardMap(ctx, hc, addr, m, 0)
		}
	}
}

// postFreeze freezes (or thaws) one slot on a node.
func postFreeze(ctx context.Context, hc *http.Client, base string, slot int, thaw bool) error {
	u := fmt.Sprintf("%s/v1/shardmap/freeze?slot=%d", base, slot)
	if thaw {
		u += "&thaw=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// fetchSnapshotTS draws a commit timestamp from a node's clock.
func fetchSnapshotTS(ctx context.Context, hc *http.Client, base string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/ts", nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var ts wireTS
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil || ts.TS <= 0 {
		return 0, fmt.Errorf("node %s serves no snapshot clock", base)
	}
	return ts.TS, nil
}

// fetchTables lists the tables a node carries.
func fetchTables(ctx context.Context, hc *http.Client, base string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/tables", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing tables: %s", resp.Status)
	}
	var body struct {
		Tables []string `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Tables, nil
}

// copySlot streams one table's slice of the slot from src (scanned
// as-of ts) into dest's ingest route in bounded chunks.
func copySlot(ctx context.Context, hc *http.Client, src, dest, table string, slot int, ts int64) error {
	u := fmt.Sprintf("%s/v1/%s?start=&count=-1&slot=%d&tombstones=1", src, url.PathEscape(table), slot)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", NDJSONContentType)
	req.Header.Set(AsOfHeader, strconv.FormatInt(ts, 10))
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("scanning source: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if resp.Header.Get(AsOfServedHeader) == "" {
		return fmt.Errorf("source node %s ignored the as-of scan (pre-MVCC server?)", src)
	}
	if resp.Header.Get(ScanTombstonesHeader) == "" {
		return fmt.Errorf("source node %s ignored the tombstone scan (pre-tombstone server?); refusing a copy that would resurrect deleted keys", src)
	}

	var chunk bytes.Buffer
	enc := json.NewEncoder(&chunk)
	records := 0
	flush := func() error {
		if records == 0 {
			return nil
		}
		if err := postIngest(ctx, hc, dest, table, &chunk); err != nil {
			return err
		}
		chunk.Reset()
		records = 0
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var wr wireRecord
		if err := dec.Decode(&wr); err != nil {
			return fmt.Errorf("decoding source scan: %w", err)
		}
		if err := enc.Encode(wr); err != nil {
			return err
		}
		records++
		if records >= migrateChunkRecords || chunk.Len() >= migrateChunkBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// postIngest ships one NDJSON chunk to the destination's merge route.
func postIngest(ctx context.Context, hc *http.Client, dest, table string, body *bytes.Buffer) error {
	u := dest + "/v1/ingest?table=" + url.QueryEscape(table)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", NDJSONContentType)
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("ingest on %s: %s: %s", dest, resp.Status, bytes.TrimSpace(b))
	}
	return nil
}

// putShardMap installs a map on one node via PUT /v1/shardmap.
//
// With expect > 0 the install is a CAS on the node's exact current
// version (the HeaderMapCAS header) and only a 200 is success — the
// cutover installs use this so a concurrent migration's divergent
// same-version map can never be mistaken for our own already landed.
// With expect == 0 the install is unconditional convergence: a 409
// with an equal-or-newer version header is success (the node is
// already there or ahead), which is what the best-effort fleet
// fan-out and rollback paths want.
func putShardMap(ctx context.Context, hc *http.Client, base string, m *cluster.Map, expect int64) error {
	doc, err := m.Encode()
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/v1/shardmap", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if expect > 0 {
		req.Header.Set(cluster.HeaderMapCAS, strconv.FormatInt(expect, 10))
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	if expect == 0 && resp.StatusCode == http.StatusConflict {
		if have, _ := strconv.ParseInt(resp.Header.Get(cluster.HeaderMapVersion), 10, 64); have >= m.Version {
			return nil // already there or ahead
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("installing map v%d on %s: %s: %s", m.Version, base, resp.Status, bytes.TrimSpace(body))
}
