package httpkv

import (
	"net/http"
	"strconv"

	"ycsbt/internal/obs"
)

// trackedCodes are the response codes that get their own counter
// series; anything else lands in code="other". Pre-registering keeps
// the per-request path to one read-only map lookup plus one atomic.
var trackedCodes = []int{200, 204, 400, 404, 405, 412, 413, 429, 500, 503, 504}

// serverMetrics holds the server's obs handles; nil disables the
// whole layer (every method is nil-safe).
type serverMetrics struct {
	inflight   *obs.Gauge
	responses  map[int]*obs.Counter
	otherResp  *obs.Counter
	batchItems *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	reg.Help("httpkv_inflight_requests", "HTTP requests currently being served.")
	reg.Help("httpkv_responses_total", "HTTP responses by status code (413/429/504 are the admission-control sheds).")
	reg.Help("httpkv_batch_items", "Operations per /v1/batch request.")
	m := &serverMetrics{
		inflight:   reg.Gauge("httpkv_inflight_requests"),
		responses:  make(map[int]*obs.Counter, len(trackedCodes)),
		otherResp:  reg.Counter("httpkv_responses_total", "code", "other"),
		batchItems: reg.Histogram("httpkv_batch_items", obs.CountBuckets),
	}
	for _, code := range trackedCodes {
		m.responses[code] = reg.Counter("httpkv_responses_total", "code", strconv.Itoa(code))
	}
	return m
}

func (m *serverMetrics) countResponse(code int) {
	if m == nil {
		return
	}
	if c, ok := m.responses[code]; ok {
		c.Inc()
		return
	}
	m.otherResp.Inc()
}

func (m *serverMetrics) observeBatchSize(n int) {
	if m == nil {
		return
	}
	m.batchItems.Observe(float64(n))
}

// statusRecorder captures the response status so ServeHTTP can count
// it after the handler runs; an unset status means an implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush keeps streaming handlers working behind the wrapper.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sr *statusRecorder) code() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}
