package httpkv

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/kvstore"
)

// endlessEngine serves an infinite ascending key space: every Scan
// page is full, so a count=-1 scan never exhausts the table. The page
// counter is how the test observes whether the handler's paging loop
// is still running.
type endlessEngine struct {
	kvstore.Engine
	scans atomic.Int32
}

func (e *endlessEngine) Scan(table, start string, count int) ([]kvstore.VersionedKV, error) {
	e.scans.Add(1)
	out := make([]kvstore.VersionedKV, count)
	for i := range out {
		out[i] = kvstore.VersionedKV{
			Key:    fmt.Sprintf("%s.%06d", start, i),
			Record: &kvstore.VersionedRecord{Version: 1, Fields: map[string][]byte{"f": []byte("v")}},
		}
	}
	return out, nil
}

// A scan whose client has gone away must stop paging the engine: the
// handler passes the request context into Core.Scan, which checks it
// between pages. Regression test for the handler draining an unbounded
// scan for nobody after the consumer disconnected.
func TestScanHandlerStopsWhenClientDisconnects(t *testing.T) {
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := &endlessEngine{Engine: store}

	var h atomic.Pointer[Server]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()
	// Single-node cluster mode: count=-1 is legal and the scan pages
	// through the engine instead of answering one bounded call.
	m, err := cluster.NewUniform(cluster.PlacementHash, 4, []string{srv.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cluster.NewState(srv.URL, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Store(NewServerWithOptions(eng, ServerOptions{Cluster: st}))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/t?start=&count=-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := srv.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Let the paging loop demonstrably run, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for eng.scans.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("scan never started paging")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request succeeded against an endless table")
	}
	// The handler may finish the page in flight; after that the counter
	// must stop moving. Without the ctx check it pages forever.
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		n1 := eng.scans.Load()
		time.Sleep(150 * time.Millisecond)
		if eng.scans.Load() == n1 {
			return // paging stopped
		}
	}
	t.Fatalf("handler still paging the engine %v after client disconnect (%d pages)",
		5*time.Second, eng.scans.Load())
}
