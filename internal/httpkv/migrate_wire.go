package httpkv

import (
	"context"
	"io"
	"net/http"

	"ycsbt/internal/kvwire"
)

// The framed migration copy: when both ends of a migration advertise
// stream-capable binary listeners (X-KV-Wire + X-KV-Wire-Stream), the
// copy leg runs scan-chunk frames out of the source straight into an
// ingest stream on the destination — no NDJSON encode/decode round
// trip, no per-chunk POST, and both directions credit-gated so neither
// the migrator nor the destination buffers more than a window of
// chunks. Any wire failure falls the table back to the HTTP copy,
// which is safe to repeat: Engine.Ingest skips records the destination
// already holds at the same or newer commit ts.

// MigrateOptions tunes MigrateSlot.
type MigrateOptions struct {
	// DisableWire forces the HTTP copy path even when both nodes
	// advertise streaming wire listeners — the benchmark's baseline
	// cell and an operator escape hatch.
	DisableWire bool
}

// sniffNodeWireStream probes one node for a stream-capable binary
// listener, returning its dialable address. The probe is a plain
// shardmap GET: wire-capable servers stamp every response with the
// advertisement headers, so any cheap route works.
func sniffNodeWireStream(ctx context.Context, hc *http.Client, base string) (string, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/shardmap", nil)
	if err != nil {
		return "", false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.Header.Get(WireStreamHeader) == "" {
		return "", false
	}
	addr := resolveWireAddrAgainst(base, resp.Header.Get(WireAddrHeader))
	return addr, addr != ""
}

// copySlotWire streams one table's slice of the slot from src (scanned
// as-of ts, tombstones included) into an ingest stream on dest. The
// scan request carries ts and the tombstone flag in the frame itself
// and the server validates both, so the echo checks the HTTP copy
// needs are structural here. Version and CommitTS ride each record
// frame; StreamIngest preserves them like the NDJSON route.
func copySlotWire(ctx context.Context, srcEp, dstEp *kvwire.Endpoint, table string, slot int, ts int64) error {
	s, err := srcEp.Scan(ctx, &kvwire.ScanRequest{
		Table:      table,
		Count:      -1,
		AsOf:       ts,
		Slot:       slot,
		Tombstones: true,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	in, err := dstEp.Ingest(ctx, table)
	if err != nil {
		return err
	}
	batch := make([]kvwire.StreamRecord, 0, migrateChunkRecords)
	size := 0
	for s.Next() {
		rec := s.Record()
		batch = append(batch, *rec)
		size += len(rec.Key) + 16
		for k, v := range rec.Fields {
			size += len(k) + len(v) + 4
		}
		if len(batch) >= migrateChunkRecords || size >= migrateChunkBytes {
			if err := in.Send(batch); err != nil {
				return err // Send already finished the stream
			}
			batch = batch[:0]
			size = 0
		}
	}
	if err := s.Err(); err != nil {
		in.Abort()
		return err
	}
	if len(batch) > 0 {
		if err := in.Send(batch); err != nil {
			return err
		}
	}
	_, err = in.Close()
	return err
}
