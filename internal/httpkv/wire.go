package httpkv

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/kvwire"
)

// The client side of the binary wire negotiation. Discovery costs
// nothing: every response from a wire-capable server carries the
// X-KV-Wire header (its binary listener address), which send() sniffs
// in passing. Once an address is known, batch and single-record
// operations ride the framed binary protocol; HTTP stays the path for
// scans, streams and the management routes. Failure handling mirrors
// the batch/as-of capability latches: a definitive protocol failure
// (connection refused, bad handshake) latches the endpoint back to
// HTTP permanently, while a transient error only falls back for the
// one call.
//
// The rawhttp.wire property steers the mode: "auto" (default) sniffs
// the header, "off" disables the binary path, anything else is used
// as an explicit host:port dial address.

// WireAddrHeader advertises the server's binary wire listener. Every
// HTTP response from a server started with a wire listener carries it
// (X-KV-Wire: host:port), so a client discovers the fast path from
// responses it was already making — no extra negotiation round trip.
// Old servers never set it; clients simply stay on HTTP.
const WireAddrHeader = "X-KV-Wire"

// WireStreamHeader advertises that the server's binary listener also
// speaks the streaming frames (scan/ingest chunks with credit flow
// control). Servers set it whenever they set WireAddrHeader; its
// absence tells a new client the wire endpoint is an older
// request/response-only build, so scans stay on HTTP.
const WireStreamHeader = "X-KV-Wire-Stream"

// WireModeOff disables the binary transport ("rawhttp.wire=off").
const WireModeOff = "off"

// WireModeAuto (the default) negotiates per endpoint via the
// X-KV-Wire response header.
const WireModeAuto = "auto"

// sniffWire records a server's advertised binary listener. Called on
// every HTTP response; after the first hit it is one atomic load.
func (c *Client) sniffWire(resp *http.Response) {
	if c.wireMode == WireModeOff || c.caps.wireAddr.Load() != nil {
		return
	}
	h := resp.Header.Get(WireAddrHeader)
	if h == "" {
		return
	}
	addr := c.resolveWireAddr(h)
	if addr == "" {
		return
	}
	if resp.Header.Get(WireStreamHeader) != "" {
		c.caps.wireStream.Store(true)
	}
	c.caps.wireAddr.CompareAndSwap(nil, &addr)
}

// wireStreamEndpoint returns the binary pool when streaming frames may
// be used on it: the endpoint advertised stream support, or the dial
// address was configured explicitly (an operator pointing at a stream-
// capable listener).
func (c *Client) wireStreamEndpoint() (*kvwire.Endpoint, bool) {
	switch c.wireMode {
	case WireModeOff:
		return nil, false
	case "", WireModeAuto:
		if !c.caps.wireStream.Load() {
			return nil, false
		}
	}
	return c.wireEndpoint()
}

// resolveWireAddr turns an advertised listener address into a dialable
// one, filling a missing or unspecified host (":9077", "0.0.0.0:9077",
// "[::]:9077") from the endpoint's base URL — the server knows its
// port but not necessarily the name clients reach it by.
func (c *Client) resolveWireAddr(adv string) string {
	return resolveWireAddrAgainst(c.base, adv)
}

// resolveWireAddrAgainst is resolveWireAddr for callers without a
// Client (the migrator sniffs fleet nodes by base URL).
func resolveWireAddrAgainst(base, adv string) string {
	host, port, err := net.SplitHostPort(adv)
	if err != nil || port == "" {
		return ""
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		u, err := url.Parse(base)
		if err != nil {
			return ""
		}
		host = u.Hostname()
		if host == "" {
			return ""
		}
	}
	return net.JoinHostPort(host, port)
}

// wireEndpoint returns the endpoint's binary connection pool when the
// binary path is available: an address is known (sniffed or explicit)
// and no definitive failure has latched the endpoint back to HTTP.
func (c *Client) wireEndpoint() (*kvwire.Endpoint, bool) {
	if c.wireMode == WireModeOff || c.caps.wireUnsupported.Load() {
		return nil, false
	}
	if ep := c.caps.wireEp.Load(); ep != nil {
		return ep, true
	}
	var addr string
	switch c.wireMode {
	case "", WireModeAuto:
		p := c.caps.wireAddr.Load()
		if p == nil {
			return nil, false
		}
		addr = *p
	default:
		addr = c.wireMode // explicit dial address
	}
	ep := kvwire.NewEndpoint(addr, c.wireConns)
	if !c.caps.wireEp.CompareAndSwap(nil, ep) {
		ep.Close()
		ep = c.caps.wireEp.Load()
		if ep == nil {
			return nil, false
		}
	}
	return ep, true
}

// wireExec ships ops over the binary protocol with the same 429
// policy as sendRetry: up to c.retry429 re-sends honoring the server's
// retry hint (doubled per attempt, capped at c.retry429Max).
// ok=false means the caller should run the HTTP path instead — either
// a transient connection error (this call only) or a definitive one
// (latched; every later call skips the wire).
func (c *Client) wireExec(ctx context.Context, ep *kvwire.Endpoint, ops []kvwire.Op) (res []kvwire.Result, err error, ok bool) {
	for attempt := 0; ; attempt++ {
		res, err = ep.Exec(ctx, ops)
		if err == nil {
			if len(res) != len(ops) {
				return nil, fmt.Errorf("httpkv: wire answered %d of %d items", len(res), len(ops)), true
			}
			return res, nil, true
		}
		var re *kvwire.RequestError
		if errors.As(err, &re) && re.Status == http.StatusTooManyRequests {
			if attempt >= c.retry429 {
				return nil, fmt.Errorf("%w: %s", db.ErrThrottled, re.Msg), true
			}
			wait := re.RetryAfter
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			wait <<= attempt
			if c.retry429Max > 0 && wait > c.retry429Max {
				wait = c.retry429Max
			}
			if d, ok := ctx.Deadline(); ok && time.Until(d) <= wait {
				return nil, fmt.Errorf("%w: %s", db.ErrThrottled, re.Msg), true
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err(), true
			}
			continue
		}
		if errors.As(err, &re) {
			return nil, fmt.Errorf("httpkv: wire request failed: %d %s", re.Status, re.Msg), true
		}
		if errors.Is(err, kvwire.ErrUnavailable) {
			// Definitive: nothing (or not our protocol) listens there.
			c.caps.wireUnsupported.Store(true)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err(), true
		}
		return nil, err, false
	}
}

// wireSingle runs one op over the binary protocol. ok=false means
// "use HTTP" (no wire endpoint, or a fallback-worthy failure).
func (c *Client) wireSingle(ctx context.Context, op kvwire.Op) (kvwire.Result, bool, error) {
	ep, ok := c.wireEndpoint()
	if !ok {
		return kvwire.Result{}, false, nil
	}
	res, err, served := c.wireExec(ctx, ep, []kvwire.Op{op})
	if !served {
		return kvwire.Result{}, false, nil
	}
	if err != nil {
		return kvwire.Result{}, true, err
	}
	return res[0], true, nil
}

// wireResultErr maps a non-2xx wire result to the same db-layer error
// surface statusError produces for HTTP responses.
func wireResultErr(r kvwire.Result) error {
	switch r.Status {
	case http.StatusOK, http.StatusNoContent:
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", db.ErrNotFound, r.Err)
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %s", db.ErrConflict, r.Err)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", db.ErrThrottled, r.Err)
	case http.StatusGone:
		return &cluster.MovedError{Owner: r.Owner, MapVersion: r.MapVersion}
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w: %s", context.DeadlineExceeded, r.Err)
	default:
		return fmt.Errorf("httpkv: server returned %d: %s", r.Status, r.Err)
	}
}
