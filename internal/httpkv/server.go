// Package httpkv exposes a kvstore.Store over HTTP and provides the
// matching client-side DB binding ("rawhttp").
//
// This is the reproduction's analog of the paper's Tier 6 testbed: "a
// WiredTiger key-value store augmented with an HTTP interface that we
// implemented using the Boost ASIO library", accessed through the
// RawHttpDB client class. The interface is deliberately plain REST
// with no multi-key operations, so concurrent read-modify-write
// sequences race and the Closed Economy Workload's validation stage
// detects the resulting lost updates.
//
// Protocol (JSON bodies, record values base64-encoded by
// encoding/json's []byte rules):
//
//	GET    /v1/{table}/{key}          → 200 {"version":n,"fields":{...}} | 404
//	PUT    /v1/{table}/{key}          → 200; If-Match: <ver> CAS, If-None-Match: * create-only; 412 on conflict
//	PATCH  /v1/{table}/{key}          → 200 merge-update | 404
//	DELETE /v1/{table}/{key}          → 204; If-Match honored; 404/412
//	GET    /v1/{table}?start=k&count=n → 200 [{"key":k,"version":v,"fields":{...}},...]
//	GET    /healthz                   → 200 "ok"
//
// Every successful record response carries the version in the "ETag"
// header, the idiom the simulated cloud stores share.
package httpkv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ycsbt/internal/kvstore"
)

// wireRecord is the JSON shape of one record on the wire.
type wireRecord struct {
	Key     string            `json:"key,omitempty"`
	Version uint64            `json:"version"`
	Fields  map[string][]byte `json:"fields"`
}

// Server is an http.Handler serving a kvstore.Engine — any engine
// implementation (the embedded partitioned store today, future
// engines tomorrow) gets the HTTP surface for free.
type Server struct {
	store kvstore.Engine
	mux   *http.ServeMux
}

// NewServer returns a handler serving store.
func NewServer(store kvstore.Engine) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/", s.handleRecord)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// splitPath parses /v1/{table}[/{key}] and reports whether a key part
// is present.
func splitPath(path string) (table, key string, hasKey bool, ok bool) {
	rest := strings.TrimPrefix(path, "/v1/")
	if rest == path || rest == "" {
		return "", "", false, false
	}
	parts := strings.SplitN(rest, "/", 2)
	table = parts[0]
	if table == "" {
		return "", "", false, false
	}
	if len(parts) == 1 || parts[1] == "" {
		return table, "", false, true
	}
	return table, parts[1], true, true
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	table, key, hasKey, ok := splitPath(r.URL.Path)
	if !ok {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	if !hasKey {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleScan(w, r, table)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleGet(w, table, key)
	case http.MethodPut:
		s.handlePut(w, r, table, key)
	case http.MethodPatch:
		s.handlePatch(w, r, table, key)
	case http.MethodDelete:
		s.handleDelete(w, r, table, key)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, table, key string) {
	rec, err := s.store.Get(table, key)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	writeRecord(w, "", rec)
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request, table string) {
	q := r.URL.Query()
	start := q.Get("start")
	count := 100
	if c := q.Get("count"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			http.Error(w, "bad count", http.StatusBadRequest)
			return
		}
		count = n
	}
	kvs, err := s.store.Scan(table, start, count)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	out := make([]wireRecord, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, wireRecord{Key: kv.Key, Version: kv.Record.Version, Fields: kv.Record.Fields})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// condition extracts the conditional-write expectation from If-Match /
// If-None-Match headers; default is unconditional.
func condition(r *http.Request) (uint64, error) {
	if r.Header.Get("If-None-Match") == "*" {
		return kvstore.MustNotExist, nil
	}
	im := r.Header.Get("If-Match")
	if im == "" {
		return kvstore.AnyVersion, nil
	}
	v, err := strconv.ParseUint(strings.Trim(im, `"`), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad If-Match %q", im)
	}
	return v, nil
}

func decodeFields(r *http.Request) (map[string][]byte, error) {
	var body wireRecord
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&body); err != nil {
		return nil, err
	}
	if body.Fields == nil {
		return nil, errors.New("missing fields")
	}
	return body.Fields, nil
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, table, key string) {
	expect, err := condition(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fields, err := decodeFields(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ver, err := s.store.PutIfVersion(table, key, fields, expect)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	w.Header().Set("ETag", strconv.FormatUint(ver, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request, table, key string) {
	fields, err := decodeFields(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ver, err := s.store.Update(table, key, fields)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	w.Header().Set("ETag", strconv.FormatUint(ver, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, table, key string) {
	expect, err := condition(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.DeleteIfVersion(table, key, expect); err != nil {
		writeStoreError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeRecord(w http.ResponseWriter, key string, rec *kvstore.VersionedRecord) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", strconv.FormatUint(rec.Version, 10))
	json.NewEncoder(w).Encode(wireRecord{Key: key, Version: rec.Version, Fields: rec.Fields})
}

func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, kvstore.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, kvstore.ErrVersionMismatch), errors.Is(err, kvstore.ErrExists):
		http.Error(w, err.Error(), http.StatusPreconditionFailed)
	case errors.Is(err, kvstore.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
