// Package httpkv exposes a kvstore.Store over HTTP and provides the
// matching client-side DB binding ("rawhttp").
//
// This is the reproduction's analog of the paper's Tier 6 testbed: "a
// WiredTiger key-value store augmented with an HTTP interface that we
// implemented using the Boost ASIO library", accessed through the
// RawHttpDB client class. The single-key interface is deliberately
// plain REST, so concurrent read-modify-write sequences race and the
// Closed Economy Workload's validation stage detects the resulting
// lost updates; /v1/batch moves many such operations per round trip
// without changing those semantics (per-item results, no atomicity
// across items).
//
// Protocol (JSON bodies, record values base64-encoded by
// encoding/json's []byte rules):
//
//	GET    /v1/{table}/{key}          → 200 {"version":n,"fields":{...}} | 404
//	PUT    /v1/{table}/{key}          → 200; If-Match: <ver> CAS, If-None-Match: * create-only; 412 on conflict
//	PATCH  /v1/{table}/{key}          → 200 merge-update | 404
//	DELETE /v1/{table}/{key}          → 204; If-Match honored; 404/412
//	GET    /v1/{table}?start=k&count=n → 200 [{"key":k,"version":v,"fields":{...}},...]
//	                                     (Accept: application/x-ndjson streams one record per line)
//	POST   /v1/batch                  → 200 NDJSON per-item results (see batch.go)
//	GET    /v1/ts                     → 200 {"ts":n} snapshot timestamp (see asof.go; reserves table name "ts")
//	GET    /healthz                   → 200 "ok"
//
// Every successful record response carries the version in the "ETag"
// header, the idiom the simulated cloud stores share.
//
// Time travel: an X-As-Of-Ts request header on GET/scan (and an
// "as_of" field on batch get lines) serves the read from the engine's
// version history as of that commit timestamp; the server echoes the
// served ts in X-As-Of-Served (or the result line's "as_of"), which is
// how clients detect servers that predate the header and refuse to
// silently read head data (see asof.go).
//
// Admission control (ServerOptions): request bodies are capped (413
// past the cap), an X-Deadline-Ms header bounds how long the server
// may sit on the request (504 once expired), and concurrent /v1/batch
// executions beyond MaxInflightBatches shed immediately with 429 +
// Retry-After.
package httpkv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/obs"
)

// wireRecord is the JSON shape of one record on the wire. CommitTS
// rides along (omitted when zero) so a migration copy can preserve
// as-of visibility on the destination node; Deleted marks a tombstone
// in a migration copy (tombstone scans + ingest), so deletes travel
// with the data. Old clients drop the unknown fields.
type wireRecord struct {
	Key      string            `json:"key,omitempty"`
	Version  uint64            `json:"version"`
	CommitTS int64             `json:"commit_ts,omitempty"`
	Deleted  bool              `json:"deleted,omitempty"`
	Fields   map[string][]byte `json:"fields"`
}

// ServerOptions tunes the server's admission control.
type ServerOptions struct {
	// MaxInflightBatches caps concurrently executing /v1/batch
	// requests; excess requests are rejected immediately with 429 +
	// Retry-After instead of queueing (load shedding, not buffering).
	// <= 0 means unlimited.
	MaxInflightBatches int
	// MaxBodyBytes caps any request body (default 1 MiB); larger
	// bodies fail with 413.
	MaxBodyBytes int64
	// RetryAfter is the backoff hint sent with 429 responses
	// (default 1s; rendered in whole seconds per RFC 9110).
	RetryAfter time.Duration
	// Metrics, when non-nil, receives the server's httpkv_* series
	// (inflight gauge, response-code counters, batch-size histogram).
	Metrics *obs.Registry
	// Cluster, when non-nil, puts the server in cluster mode: it
	// serves only the shard-map slots the node owns, answers the rest
	// with 410 + routing hints, and exposes the shard-map management
	// routes (see cluster.go).
	Cluster *cluster.State
	// Core, when non-nil, is the transport-neutral request core to
	// serve through — pass the same Core to the binary wire listener so
	// both transports share one admission limit and ownership gate.
	// When nil a private core is built from Cluster and
	// MaxInflightBatches.
	Core *kvwire.Core
	// WireAddr, when non-empty, is the address of this process's
	// binary wire listener; every HTTP response advertises it in the
	// X-KV-Wire header so clients can upgrade the hot path.
	WireAddr string
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server is an http.Handler serving a kvstore.Engine — any engine
// implementation (the embedded partitioned store today, future
// engines tomorrow) gets the HTTP surface for free.
type Server struct {
	store   kvstore.Engine
	core    *kvwire.Core
	mux     *http.ServeMux
	opts    ServerOptions
	metrics *serverMetrics
}

// NewServer returns a handler serving store with default admission
// control.
func NewServer(store kvstore.Engine) *Server {
	return NewServerWithOptions(store, ServerOptions{})
}

// NewServerWithOptions returns a handler serving store with the given
// admission control.
func NewServerWithOptions(store kvstore.Engine, opts ServerOptions) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), opts: opts.withDefaults()}
	s.metrics = newServerMetrics(opts.Metrics)
	s.core = s.opts.Core
	if s.core == nil {
		s.core = kvwire.NewCore(store, s.opts.Cluster, s.opts.MaxInflightBatches)
	} else if s.opts.Cluster == nil {
		// A shared core carries the cluster gate; the HTTP management
		// routes need it too.
		s.opts.Cluster = s.core.Cluster()
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/ts", s.handleSnapshotTS)
	s.mux.HandleFunc("/v1/shardmap", s.handleShardMap)
	s.mux.HandleFunc("/v1/shardmap/freeze", s.handleFreeze)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/tables", s.handleTables)
	s.mux.HandleFunc("/v1/", s.handleRecord)
	return s
}

// ServeHTTP implements http.Handler: body caps and the per-request
// deadline apply here, before any route runs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.opts.WireAddr != "" {
		w.Header().Set(WireAddrHeader, s.opts.WireAddr)
		// Same build serves both listeners, so advertising the wire
		// listener implies it speaks the streaming frames too; clients
		// sniff this before sending stream frames an older wire server
		// would treat as a protocol violation.
		w.Header().Set(WireStreamHeader, "1")
	}
	if s.metrics != nil {
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		sr := &statusRecorder{ResponseWriter: w}
		defer func() { s.metrics.countResponse(sr.code()) }()
		w = sr
	}
	if r.Body != nil && r.ContentLength != 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			http.Error(w, "bad "+DeadlineHeader, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// splitPath parses /v1/{table}[/{key}] and reports whether a key part
// is present.
func splitPath(path string) (table, key string, hasKey bool, ok bool) {
	rest := strings.TrimPrefix(path, "/v1/")
	if rest == path || rest == "" {
		return "", "", false, false
	}
	parts := strings.SplitN(rest, "/", 2)
	table = parts[0]
	if table == "" {
		return "", "", false, false
	}
	if len(parts) == 1 || parts[1] == "" {
		return table, "", false, true
	}
	return table, parts[1], true, true
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	table, key, hasKey, ok := splitPath(r.URL.Path)
	if !ok {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	if r.Context().Err() != nil {
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	if !hasKey {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleScan(w, r, table)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleGet(w, r, table, key)
	case http.MethodPut:
		s.handlePut(w, r, table, key)
	case http.MethodPatch:
		s.handlePatch(w, r, table, key)
	case http.MethodDelete:
		s.handleDelete(w, r, table, key)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, table, key string) {
	if s.checkRead(w, key) {
		return
	}
	ts, err := asOfRequested(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if ts != 0 {
		// Echo the served ts on every as-of response (including
		// errors): the echo is how clients distinguish a server that
		// honored the snapshot from an old one that ignored the header.
		w.Header().Set(AsOfServedHeader, strconv.FormatInt(ts, 10))
	}
	rec, err := s.core.Get(table, key, ts)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	writeRecord(w, "", rec)
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request, table string) {
	q := r.URL.Query()
	start := q.Get("start")
	count := 100
	if c := q.Get("count"); c != "" {
		n, err := strconv.Atoi(c)
		// count=-1 (unlimited) is reserved for cluster-internal scans:
		// the migration copy must drain a whole slot in one pass.
		if err != nil || n < -1 || (n == -1 && s.opts.Cluster == nil) {
			http.Error(w, "bad count", http.StatusBadRequest)
			return
		}
		count = n
	}
	slot := -1
	if sl := q.Get("slot"); sl != "" {
		if s.opts.Cluster == nil {
			http.Error(w, "not a cluster node", http.StatusBadRequest)
			return
		}
		n, err := strconv.Atoi(sl)
		if err != nil || n < 0 || n >= s.opts.Cluster.Map().Slots {
			http.Error(w, "bad slot", http.StatusBadRequest)
			return
		}
		slot = n
	}
	ts, err := asOfRequested(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if ts != 0 {
		w.Header().Set(AsOfServedHeader, strconv.FormatInt(ts, 10))
	}
	// tombstones=1 (cluster-internal, as-of only) includes delete
	// versions in the result, marked wireRecord.Deleted — the migration
	// copy needs them so a deleted key cannot resurrect when a slot
	// returns to a former owner. The echo header is how the migrator
	// detects a pre-tombstone server that silently ignored the param.
	tombstones := q.Get("tombstones") != ""
	if tombstones {
		if s.opts.Cluster == nil || ts == 0 {
			http.Error(w, "tombstones requires cluster mode and an as-of ts", http.StatusBadRequest)
			return
		}
		w.Header().Set(ScanTombstonesHeader, "1")
	}
	if s.opts.Cluster != nil {
		// Cluster mode always filters (the core pages until count
		// owned records are found). Scan responses echo the node's map
		// version so routers can detect a mid-cutover fleet whose
		// nodes filter by different maps.
		w.Header().Set(cluster.HeaderMapVersion, strconv.FormatInt(s.opts.Cluster.Map().Version, 10))
	}
	// r.Context() dies when the client disconnects: the core checks it
	// between engine pages, so an abandoned scan stops paging instead
	// of draining the table for nobody.
	kvs, err := s.core.Scan(r.Context(), table, start, count, ts, slot, tombstones)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	toWire := func(kv kvstore.VersionedKV) wireRecord {
		return wireRecord{
			Key:      kv.Key,
			Version:  kv.Record.Version,
			CommitTS: kv.Record.CommitTS,
			Deleted:  kv.Record.Tombstone(),
			Fields:   kv.Record.Fields,
		}
	}
	// NDJSON-aware clients get one record per line (written as
	// produced, no array buffering); everyone else keeps the original
	// JSON array.
	if strings.Contains(r.Header.Get("Accept"), NDJSONContentType) {
		w.Header().Set("Content-Type", NDJSONContentType)
		enc := json.NewEncoder(w)
		for _, kv := range kvs {
			enc.Encode(toWire(kv))
		}
		return
	}
	out := make([]wireRecord, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, toWire(kv))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// condition extracts the conditional-write expectation from If-Match /
// If-None-Match headers; default is unconditional.
func condition(r *http.Request) (uint64, error) {
	if r.Header.Get("If-None-Match") == "*" {
		return kvstore.MustNotExist, nil
	}
	im := r.Header.Get("If-Match")
	if im == "" {
		return kvstore.AnyVersion, nil
	}
	v, err := strconv.ParseUint(strings.Trim(im, `"`), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad If-Match %q", im)
	}
	return v, nil
}

func decodeFields(r *http.Request) (map[string][]byte, error) {
	var body wireRecord
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&body); err != nil {
		return nil, err
	}
	if body.Fields == nil {
		return nil, errors.New("missing fields")
	}
	return body.Fields, nil
}

// writeDecodeError answers a request-body failure: bodies over the
// admission cap are 413, everything else (malformed JSON, missing
// fields) is 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, table, key string) {
	expect, err := condition(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fields, err := decodeFields(r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	ver, err := s.core.Put(table, key, fields, expect)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	w.Header().Set("ETag", strconv.FormatUint(ver, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request, table, key string) {
	fields, err := decodeFields(r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	ver, err := s.core.Update(table, key, fields)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	w.Header().Set("ETag", strconv.FormatUint(ver, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, table, key string) {
	expect, err := condition(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.core.Delete(table, key, expect); err != nil {
		writeStoreError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeRecord(w http.ResponseWriter, key string, rec *kvstore.VersionedRecord) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", strconv.FormatUint(rec.Version, 10))
	json.NewEncoder(w).Encode(wireRecord{Key: key, Version: rec.Version, CommitTS: rec.CommitTS, Fields: rec.Fields})
}

func writeStoreError(w http.ResponseWriter, err error) {
	var me *cluster.MovedError
	if errors.As(err, &me) {
		writeMoved(w, me)
		return
	}
	switch {
	case errors.Is(err, kvstore.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, kvstore.ErrVersionMismatch), errors.Is(err, kvstore.ErrExists):
		http.Error(w, err.Error(), http.StatusPreconditionFailed)
	case errors.Is(err, kvstore.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
