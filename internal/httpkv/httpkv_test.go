package httpkv

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/properties"
)

func newPair(t *testing.T) (*kvstore.Store, *Client, func()) {
	t.Helper()
	store := kvstore.OpenMemory()
	srv := httptest.NewServer(NewServer(store))
	client := NewClient(srv.URL, srv.Client())
	if err := client.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	return store, client, func() {
		srv.Close()
		store.Close()
	}
}

func TestHTTPCRUDRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, c, done := newPair(t)
	defer done()

	if err := c.Insert(ctx, "usertable", "user1", db.Record{"field0": []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Read(ctx, "usertable", "user1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["field0"]) != "hello" {
		t.Errorf("Read = %v", rec)
	}
	if err := c.Update(ctx, "usertable", "user1", db.Record{"field1": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	rec, _ = c.Read(ctx, "usertable", "user1", nil)
	if string(rec["field0"]) != "hello" || string(rec["field1"]) != "x" {
		t.Errorf("merged = %v", rec)
	}
	// Field projection.
	rec, _ = c.Read(ctx, "usertable", "user1", []string{"field1"})
	if len(rec) != 1 || string(rec["field1"]) != "x" {
		t.Errorf("projection = %v", rec)
	}
	if err := c.Delete(ctx, "usertable", "user1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(ctx, "usertable", "user1", nil); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("Read deleted = %v", err)
	}
	if err := c.Update(ctx, "usertable", "user1", db.Record{"f": []byte("v")}); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("Update missing = %v", err)
	}
	if err := c.Delete(ctx, "usertable", "user1"); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("Delete missing = %v", err)
	}
	if err := c.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPScan(t *testing.T) {
	ctx := context.Background()
	_, c, done := newPair(t)
	defer done()
	for i := 0; i < 10; i++ {
		if err := c.Insert(ctx, "t", fmt.Sprintf("k%02d", i), db.Record{"f": []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := c.Scan(ctx, "t", "k03", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 4 || kvs[0].Key != "k03" || kvs[3].Key != "k06" {
		t.Errorf("Scan = %+v", kvs)
	}
	if string(kvs[0].Record["f"]) != "3" {
		t.Errorf("scan record = %v", kvs[0].Record)
	}
}

func TestHTTPConditionalPut(t *testing.T) {
	ctx := context.Background()
	_, c, done := newPair(t)
	defer done()

	if err := c.PutIfVersion(ctx, "t", "k", db.Record{"f": []byte("a")}, kvstore.MustNotExist); err != nil {
		t.Fatal(err)
	}
	if err := c.PutIfVersion(ctx, "t", "k", db.Record{"f": []byte("b")}, kvstore.MustNotExist); !errors.Is(err, db.ErrConflict) {
		t.Errorf("create-only on existing = %v", err)
	}
	if err := c.PutIfVersion(ctx, "t", "k", db.Record{"f": []byte("b")}, 99); !errors.Is(err, db.ErrConflict) {
		t.Errorf("stale CAS = %v", err)
	}
	if err := c.PutIfVersion(ctx, "t", "k", db.Record{"f": []byte("b")}, 1); err != nil {
		t.Errorf("CAS v1 = %v", err)
	}
	vr, err := c.ReadVersioned(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if vr.Version != 2 || string(vr.Fields["f"]) != "b" {
		t.Errorf("versioned read = %+v", vr)
	}
}

func TestHTTPServerDirect(t *testing.T) {
	store := kvstore.OpenMemory()
	defer store.Close()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	// Health endpoint.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	// Bad paths.
	for _, p := range []string{"/v1/", "/nope", "/v1"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s = %d, want error", p, resp.StatusCode)
		}
	}
	// Method not allowed on table path.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/tbl", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE table = %d", resp.StatusCode)
	}
	// Bad If-Match header.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/t/k", strings.NewReader(`{"fields":{"f":"dg=="}}`))
	req.Header.Set("If-Match", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad If-Match = %d", resp.StatusCode)
	}
	// Bad JSON body.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/t/k", strings.NewReader(`{garbage`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body = %d", resp.StatusCode)
	}
	// Bad scan count.
	resp, err = http.Get(srv.URL + "/v1/t?count=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad count = %d", resp.StatusCode)
	}
}

func TestHTTPKeysWithSpecialCharacters(t *testing.T) {
	ctx := context.Background()
	_, c, done := newPair(t)
	defer done()
	key := "weird/key with spaces?&#"
	if err := c.Insert(ctx, "t", key, db.Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Read(ctx, "t", key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec["f"]) != "v" {
		t.Errorf("special-char key round trip = %v", rec)
	}
}

func TestHTTPConcurrentClients(t *testing.T) {
	ctx := context.Background()
	store, c, done := newPair(t)
	defer done()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				if err := c.Insert(ctx, "t", key, db.Record{"f": []byte("v")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if store.Len("t") != 8*50 {
		t.Errorf("store has %d records", store.Len("t"))
	}
}

func TestLostUpdateAnomalyThroughHTTP(t *testing.T) {
	// The raw HTTP interface has no transactions: two clients doing
	// read-modify-write on the same counter lose updates. This is the
	// precise mechanism behind Figure 4 of the paper.
	ctx := context.Background()
	_, c, done := newPair(t)
	defer done()
	if err := c.Insert(ctx, "t", "ctr", db.Record{"n": []byte("0")}); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec, err := c.Read(ctx, "t", "ctr", nil)
				if err != nil {
					t.Error(err)
					return
				}
				var n int
				fmt.Sscanf(string(rec["n"]), "%d", &n)
				if err := c.Update(ctx, "t", "ctr", db.Record{"n": []byte(fmt.Sprint(n + 1))}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rec, _ := c.Read(ctx, "t", "ctr", nil)
	var final int
	fmt.Sscanf(string(rec["n"]), "%d", &final)
	if final > workers*per {
		t.Errorf("counter overshot: %d", final)
	}
	t.Logf("non-transactional RMW preserved %d of %d increments (lost %d)",
		final, workers*per, workers*per-final)
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		path       string
		table, key string
		hasKey, ok bool
	}{
		{"/v1/t/k", "t", "k", true, true},
		{"/v1/t", "t", "", false, true},
		{"/v1/t/", "t", "", false, true},
		{"/v1/t/k/with/slashes", "t", "k/with/slashes", true, true},
		{"/v1/", "", "", false, false},
		{"/other", "", "", false, false},
	}
	for _, c := range cases {
		table, key, hasKey, ok := splitPath(c.path)
		if table != c.table || key != c.key || hasKey != c.hasKey || ok != c.ok {
			t.Errorf("splitPath(%q) = %q,%q,%v,%v", c.path, table, key, hasKey, ok)
		}
	}
}
