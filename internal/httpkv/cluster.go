package httpkv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ycsbt/internal/cluster"
	"ycsbt/internal/kvstore"
)

// Server-side cluster mode: when ServerOptions.Cluster is set, the
// node serves only the shard-map slots it owns and answers everything
// else with 410 Gone plus routing hints (X-Shard-Map-Version and, for
// settled slots, X-Shard-Owner). Four management routes appear:
//
//	GET  /v1/shardmap               → 200 the node's current map JSON
//	PUT  /v1/shardmap               → install a newer map (409 if stale)
//	POST /v1/shardmap/freeze?slot=N → drain writes to one slot ("&thaw=1" reverts)
//	POST /v1/ingest?table=T         → NDJSON version-preserving record merge
//	GET  /v1/tables                 → 200 {"tables":[...]}
//
// A non-cluster server answers the first two paths from its generic
// record handler (a scan of a table named "shardmap"), which the
// cluster client detects as "no cluster support" — the same
// old-server negotiation idiom as /v1/ts. The table names "shardmap",
// "ingest" and "tables" are reserved by these routes.
//
// Reads keep serving while a slot drains (the data is still local and
// immutable past the migration snapshot); only writes 410 during the
// drain window, with no owner hint — the new owner is not serving
// yet, so clients back off and retry rather than redirect.

// writeMoved answers a request for a key this node does not serve.
func writeMoved(w http.ResponseWriter, me *cluster.MovedError) {
	w.Header().Set(cluster.HeaderMapVersion, strconv.FormatInt(me.MapVersion, 10))
	if me.Owner != "" {
		w.Header().Set(cluster.HeaderOwner, me.Owner)
	}
	http.Error(w, me.Error(), http.StatusGone)
}

// checkRead gates a single-key read; it reports true when the request
// was rejected (response already written).
func (s *Server) checkRead(w http.ResponseWriter, key string) bool {
	cs := s.opts.Cluster
	if cs == nil {
		return false
	}
	if err := cs.CheckRead(key); err != nil {
		writeMoved(w, err.(*cluster.MovedError))
		return true
	}
	return false
}

// handleShardMap serves GET (fetch) and PUT (install) /v1/shardmap.
func (s *Server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	cs := s.opts.Cluster
	if cs == nil {
		http.Error(w, "not a cluster node", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		m := cs.Map()
		w.Header().Set(cluster.HeaderMapVersion, strconv.FormatInt(m.Version, 10))
		w.Header().Set("Content-Type", "application/json")
		w.Write(cs.MapJSON())
	case http.MethodPut:
		var m cluster.Map
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			writeDecodeError(w, err)
			return
		}
		var installed *cluster.Map
		var err error
		if cas := r.Header.Get(cluster.HeaderMapCAS); cas != "" {
			expect, perr := strconv.ParseInt(cas, 10, 64)
			if perr != nil || expect < 0 {
				http.Error(w, "bad "+cluster.HeaderMapCAS, http.StatusBadRequest)
				return
			}
			installed, err = cs.InstallCAS(&m, expect)
		} else {
			installed, err = cs.Install(&m)
		}
		if err != nil {
			cur := cs.Map()
			w.Header().Set(cluster.HeaderMapVersion, strconv.FormatInt(cur.Version, 10))
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set(cluster.HeaderMapVersion, strconv.FormatInt(installed.Version, 10))
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleFreeze serves POST /v1/shardmap/freeze?slot=N[&thaw=1]. Freeze
// returns only after every in-flight write to the slot has drained, so
// a snapshot timestamp drawn afterwards covers them all.
func (s *Server) handleFreeze(w http.ResponseWriter, r *http.Request) {
	cs := s.opts.Cluster
	if cs == nil {
		http.Error(w, "not a cluster node", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
	if err != nil {
		http.Error(w, "bad slot", http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("thaw") != "" {
		cs.Thaw(slot)
		w.WriteHeader(http.StatusOK)
		return
	}
	if err := cs.Freeze(slot); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handleIngest serves POST /v1/ingest?table=T: NDJSON wireRecord lines
// (key, version, commit_ts, fields) merged version-preservingly into
// the engine — the receiving half of a slot migration. No ownership
// gate: the point is to land records for a slot this node does not
// own yet.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		http.Error(w, "missing table", http.StatusBadRequest)
		return
	}
	var kvs []kvstore.BulkKV
	dec := json.NewDecoder(r.Body)
	for dec.More() {
		var wr wireRecord
		if err := dec.Decode(&wr); err != nil {
			writeDecodeError(w, fmt.Errorf("line %d: %w", len(kvs)+1, err))
			return
		}
		if wr.Key == "" {
			http.Error(w, fmt.Sprintf("line %d: missing key", len(kvs)+1), http.StatusBadRequest)
			return
		}
		kvs = append(kvs, kvstore.BulkKV{Key: wr.Key, Fields: wr.Fields, Version: wr.Version, CommitTS: wr.CommitTS, Deleted: wr.Deleted})
	}
	if err := s.store.Ingest(table, kvs); err != nil {
		writeStoreError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ingested\":%d}\n", len(kvs))
}

// handleTables serves GET /v1/tables so the migrator can enumerate
// what to copy.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tables := s.store.Tables()
	if tables == nil {
		tables = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{"tables": tables})
}

