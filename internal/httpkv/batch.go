package httpkv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
)

// The /v1/batch protocol: the request body is NDJSON, one operation
// per line, answered positionally with NDJSON result lines carrying a
// per-item HTTP status and ETag. One POST moves a whole multi-key
// batch, so the per-request costs the single-op protocol pays N times
// — connection scheduling, header parsing, handler dispatch, response
// flush — are paid once:
//
//	POST /v1/batch                   Content-Type: application/x-ndjson
//	{"op":"get","table":"t","key":"a"}
//	{"op":"put","table":"t","key":"b","fields":{...},"if_none_match":"*"}
//	{"op":"patch","table":"t","key":"c","fields":{...}}
//	{"op":"delete","table":"t","key":"d","if_match":"7"}
//	→ 200                            Content-Type: application/x-ndjson
//	{"status":200,"etag":"3","fields":{...}}
//	{"status":412,"error":"..."}
//	...
//
// Per-item failures never fail the POST; whole-request failures are
// 400 (malformed NDJSON), 413 (body over the server's cap), 429 +
// Retry-After (admission control) and 504 (X-Deadline-Ms expired
// before any work ran). The table name "batch" is reserved by this
// route.

// NDJSONContentType is the MIME type of batch bodies and streamed
// scans.
const NDJSONContentType = "application/x-ndjson"

// DeadlineHeader carries the client's remaining per-request budget in
// milliseconds; the server abandons work it cannot start in time.
const DeadlineHeader = "X-Deadline-Ms"

// maxBatchItems bounds one batch request independently of body bytes.
const maxBatchItems = 4096

// Pooled per-request machinery: every /v1/batch round trip used to
// allocate a bufio.Writer + json.Encoder for the response and a fresh
// op slice for the request. At benchmark batch sizes these dominate
// the handler's steady-state garbage, so both recycle through
// sync.Pools (the encoder keeps its writer for life; Reset retargets
// it per request).
type batchEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

var batchEncPool = sync.Pool{New: func() any {
	bw := bufio.NewWriterSize(nil, 4096)
	return &batchEncoder{bw: bw, enc: json.NewEncoder(bw)}
}}

var batchOpsPool = sync.Pool{New: func() any {
	ops := make([]wireBatchOp, 0, 64)
	return &ops
}}

// putBatchOps clears decoded field maps (so the pool does not pin
// request payloads) and returns the slice to the pool.
func putBatchOps(ops *[]wireBatchOp) {
	clear(*ops)
	*ops = (*ops)[:0]
	batchOpsPool.Put(ops)
}

// coreBatchPool recycles the kvwire op/result slices the handler
// builds per request, so the core extraction does not add steady-state
// garbage to the NDJSON hot path.
type coreBatch struct {
	ops []kvwire.Op
	res []kvwire.Result
}

var coreBatchPool = sync.Pool{New: func() any {
	return &coreBatch{ops: make([]kvwire.Op, 0, 64), res: make([]kvwire.Result, 0, 64)}
}}

func putCoreBatch(cb *coreBatch) {
	clear(cb.ops)
	clear(cb.res)
	cb.ops = cb.ops[:0]
	cb.res = cb.res[:0]
	coreBatchPool.Put(cb)
}

// wireBatchOp is one NDJSON request line.
type wireBatchOp struct {
	Op          string            `json:"op"`
	Table       string            `json:"table"`
	Key         string            `json:"key"`
	Fields      map[string][]byte `json:"fields,omitempty"`
	IfMatch     string            `json:"if_match,omitempty"`
	IfNoneMatch string            `json:"if_none_match,omitempty"`
	// AsOf, on a get, asks for the newest version with commit ts ≤
	// AsOf instead of the head. Old servers drop the unknown field and
	// serve head data; the result-line echo is how clients tell.
	AsOf int64 `json:"as_of,omitempty"`
}

// wireBatchResult is one NDJSON response line.
type wireBatchResult struct {
	Status int               `json:"status"`
	ETag   string            `json:"etag,omitempty"`
	Fields map[string][]byte `json:"fields,omitempty"`
	Error  string            `json:"error,omitempty"`
	// AsOf echoes the request line's as_of when the server honored it;
	// its absence on an as-of get means an old server served head data
	// (the batch analogue of the missing AsOfServedHeader).
	AsOf int64 `json:"as_of,omitempty"`
	// Owner and MapVersion carry the routing hints of a per-item 410
	// in cluster mode — the batch analogue of the X-Shard-Owner and
	// X-Shard-Map-Version headers. Owner is empty while the key's slot
	// drains for migration (back off, don't redirect).
	Owner      string `json:"owner,omitempty"`
	MapVersion int64  `json:"map_version,omitempty"`
}

// expect resolves the line's conditional-write headers (same defaults
// as the single-op protocol).
func (op wireBatchOp) expect() (uint64, error) {
	if op.IfNoneMatch == "*" {
		return kvstore.MustNotExist, nil
	}
	if op.IfMatch == "" {
		return kvstore.AnyVersion, nil
	}
	v, err := strconv.ParseUint(op.IfMatch, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad if_match %q", op.IfMatch)
	}
	return v, nil
}

// toOp parses one NDJSON line into the transport-neutral op model.
// Parse failures (bad conditional, unknown op name) become KindInvalid
// with Reason set, preserving the protocol's error precedence: a bad
// if_match 400s before an unknown op name, which 400s before missing
// fields (the core's check).
func (op wireBatchOp) toOp() kvwire.Op {
	if op.Op == "get" {
		return kvwire.Op{Kind: kvwire.KindGet, Table: op.Table, Key: op.Key, AsOf: op.AsOf}
	}
	expect, err := op.expect()
	if err != nil {
		return kvwire.Op{Reason: err.Error()}
	}
	var kind kvwire.Kind
	switch op.Op {
	case "put":
		kind = kvwire.KindPut
	case "patch":
		kind = kvwire.KindPatch
	case "delete":
		kind = kvwire.KindDelete
	default:
		return kvwire.Op{Reason: fmt.Sprintf("unknown op %q", op.Op)}
	}
	return kvwire.Op{Kind: kind, Table: op.Table, Key: op.Key, Fields: op.Fields, Expect: expect}
}

// fromResult renders one core result as an NDJSON response line.
func fromResult(res kvwire.Result) wireBatchResult {
	out := wireBatchResult{
		Status:     res.Status,
		Fields:     res.Fields,
		Error:      res.Err,
		AsOf:       res.AsOf,
		Owner:      res.Owner,
		MapVersion: res.MapVersion,
	}
	if res.HasVersion {
		out.ETag = strconv.FormatUint(res.Version, 10)
	}
	return out
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.core.AcquireBatch()
	if !ok {
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		http.Error(w, "too many in-flight batches", http.StatusTooManyRequests)
		return
	}
	defer release()
	opsp, err := decodeBatchOps(r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	defer putBatchOps(opsp)
	ops := *opsp
	s.metrics.observeBatchSize(len(ops))
	if err := r.Context().Err(); err != nil {
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	cb := coreBatchPool.Get().(*coreBatch)
	defer putCoreBatch(cb)
	for _, op := range ops {
		cb.ops = append(cb.ops, op.toOp())
	}
	if cap(cb.res) < len(cb.ops) {
		cb.res = make([]kvwire.Result, len(cb.ops))
	} else {
		cb.res = cb.res[:len(cb.ops)]
	}
	s.core.ExecBatchInto(r.Context(), cb.ops, cb.res)
	w.Header().Set("Content-Type", NDJSONContentType)
	be := batchEncPool.Get().(*batchEncoder)
	be.bw.Reset(w)
	for _, res := range cb.res {
		be.enc.Encode(fromResult(res))
	}
	be.bw.Flush()
	be.bw.Reset(nil) // drop the ResponseWriter before pooling
	batchEncPool.Put(be)
}

// decodeBatchOps reads the NDJSON request lines into a pooled slice;
// the caller returns it with putBatchOps once the response is written.
func decodeBatchOps(r *http.Request) (*[]wireBatchOp, error) {
	opsp := batchOpsPool.Get().(*[]wireBatchOp)
	ops := (*opsp)[:0]
	fail := func(err error) (*[]wireBatchOp, error) {
		*opsp = ops
		putBatchOps(opsp)
		return nil, err
	}
	dec := json.NewDecoder(r.Body)
	for dec.More() {
		if len(ops) >= maxBatchItems {
			return fail(fmt.Errorf("batch exceeds %d items", maxBatchItems))
		}
		var op wireBatchOp
		if err := dec.Decode(&op); err != nil {
			return fail(fmt.Errorf("line %d: %w", len(ops)+1, err))
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return fail(errors.New("empty batch"))
	}
	*opsp = ops
	return opsp, nil
}

// retryAfterSeconds renders a Retry-After header value (whole
// seconds, minimum 1, per RFC 9110).
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ---------------------------------------------------------------------
// Client side.

// ExecBatch implements db.BatchDB over one POST /v1/batch round trip.
// Against a server that predates the batch route (404/405 on the
// first attempt) it falls back — permanently, per client — to
// sequential single operations, keeping old-server interop.
func (c *Client) ExecBatch(ctx context.Context, ops []db.BatchOp) []db.BatchResult {
	out := make([]db.BatchResult, len(ops))
	wire := make([]wireBatchOp, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		var w wireBatchOp
		switch op.Op {
		case db.OpRead:
			w = wireBatchOp{Op: "get", Table: op.Table, Key: op.Key}
			if c.asOf != 0 {
				if c.caps.asOfUnsupported.Load() {
					out[i] = db.BatchResult{Err: errAsOfUnsupported}
					continue
				}
				w.AsOf = c.asOf
			}
		case db.OpInsert:
			w = wireBatchOp{Op: "put", Table: op.Table, Key: op.Key, Fields: op.Values}
		case db.OpUpdate:
			w = wireBatchOp{Op: "patch", Table: op.Table, Key: op.Key, Fields: op.Values}
		case db.OpDelete:
			w = wireBatchOp{Op: "delete", Table: op.Table, Key: op.Key}
		default:
			out[i] = db.BatchResult{Err: fmt.Errorf("%w: cannot batch %v", db.ErrNotSupported, op.Op)}
			continue
		}
		wire = append(wire, w)
		idx = append(idx, i)
	}
	if len(wire) == 0 {
		return out
	}
	// The binary fast path: when the endpoint has negotiated the wire
	// protocol, the whole batch rides one request frame. served=false
	// (transient conn failure, or a definitive one that just latched)
	// falls through to the HTTP path below.
	if ep, ok := c.wireEndpoint(); ok {
		wops := make([]kvwire.Op, len(wire))
		for j := range wire {
			wops[j] = wire[j].toOp()
		}
		res, err, served := c.wireExec(ctx, ep, wops)
		if served {
			if err != nil {
				for _, i := range idx {
					out[i] = db.BatchResult{Err: err}
				}
				return out
			}
			for j, i := range idx {
				out[i] = fromResult(res[j]).toBatchResult(ops[i].Fields)
			}
			return out
		}
	}
	if c.caps.batchUnsupported.Load() {
		c.execBatchFallback(ctx, ops, idx, out)
		return out
	}
	results, err := c.postBatch(ctx, wire)
	if err != nil {
		if errors.Is(err, errNoBatchRoute) {
			c.caps.batchUnsupported.Store(true)
			c.execBatchFallback(ctx, ops, idx, out)
			return out
		}
		for _, i := range idx {
			out[i] = db.BatchResult{Err: err}
		}
		return out
	}
	for j, i := range idx {
		if wire[j].AsOf != 0 && results[j].AsOf == 0 {
			// An old server dropped the unknown as_of field and served
			// head data; refuse it and latch, like the header echo path.
			c.caps.asOfUnsupported.Store(true)
			out[i] = db.BatchResult{Err: errAsOfUnsupported}
			continue
		}
		out[i] = results[j].toBatchResult(ops[i].Fields)
	}
	return out
}

// errNoBatchRoute marks a server without the /v1/batch route.
var errNoBatchRoute = errors.New("httpkv: server has no batch route")

// bodyBufPool recycles batch request bodies across POSTs. A buffer
// goes back to the pool only after sendRetry has fully finished with
// the request: net/http snapshots the buffer's bytes into GetBody at
// request build time, and a 429 retry replays that snapshot — reusing
// the buffer earlier would corrupt the replayed body.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// postBatch ships the wire ops and parses the positional NDJSON
// response.
func (c *Client) postBatch(ctx context.Context, wire []wireBatchOp) ([]wireBatchResult, error) {
	body := bodyBufPool.Get().(*bytes.Buffer)
	body.Reset()
	defer bodyBufPool.Put(body)
	enc := json.NewEncoder(body)
	for _, op := range wire {
		if err := enc.Encode(op); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", NDJSONContentType)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := c.sendRetry(req)
	if err != nil {
		return nil, fmt.Errorf("httpkv: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound, resp.StatusCode == http.StatusMethodNotAllowed:
		// An old server answers the unknown route from its generic
		// handlers; fall back to the single-op protocol.
		return nil, errNoBatchRoute
	case resp.StatusCode >= 400:
		return nil, statusError(resp)
	}
	results := make([]wireBatchResult, 0, len(wire))
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r wireBatchResult
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("httpkv: decoding batch response: %w", err)
		}
		results = append(results, r)
	}
	if len(results) != len(wire) {
		return nil, fmt.Errorf("httpkv: batch answered %d of %d items", len(results), len(wire))
	}
	return results, nil
}

// execBatchFallback answers the batchable items with sequential
// single operations (old-server interop path).
func (c *Client) execBatchFallback(ctx context.Context, ops []db.BatchOp, idx []int, out []db.BatchResult) {
	for _, i := range idx {
		op := ops[i]
		switch op.Op {
		case db.OpRead:
			rec, err := c.Read(ctx, op.Table, op.Key, op.Fields)
			out[i] = db.BatchResult{Record: rec, Err: err}
		case db.OpInsert:
			out[i] = db.BatchResult{Err: c.Insert(ctx, op.Table, op.Key, op.Values)}
		case db.OpUpdate:
			out[i] = db.BatchResult{Err: c.Update(ctx, op.Table, op.Key, op.Values)}
		case db.OpDelete:
			out[i] = db.BatchResult{Err: c.Delete(ctx, op.Table, op.Key)}
		}
	}
}

// toBatchResult maps one wire result to the db layer, projecting read
// fields like the single-op client does.
func (r wireBatchResult) toBatchResult(fields []string) db.BatchResult {
	switch r.Status {
	case http.StatusOK, http.StatusNoContent:
		if r.Fields != nil {
			return db.BatchResult{Record: db.ProjectFields(r.Fields, fields)}
		}
		return db.BatchResult{}
	case http.StatusNotFound:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", db.ErrNotFound, r.Error)}
	case http.StatusPreconditionFailed:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", db.ErrConflict, r.Error)}
	case http.StatusTooManyRequests:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", db.ErrThrottled, r.Error)}
	case http.StatusGone:
		return db.BatchResult{Err: &cluster.MovedError{Owner: r.Owner, MapVersion: r.MapVersion}}
	case http.StatusGatewayTimeout:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", context.DeadlineExceeded, r.Error)}
	default:
		return db.BatchResult{Err: fmt.Errorf("httpkv: batch item status %d: %s", r.Status, r.Error)}
	}
}

var _ db.BatchDB = (*Client)(nil)
