package httpkv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
)

// The /v1/batch protocol: the request body is NDJSON, one operation
// per line, answered positionally with NDJSON result lines carrying a
// per-item HTTP status and ETag. One POST moves a whole multi-key
// batch, so the per-request costs the single-op protocol pays N times
// — connection scheduling, header parsing, handler dispatch, response
// flush — are paid once:
//
//	POST /v1/batch                   Content-Type: application/x-ndjson
//	{"op":"get","table":"t","key":"a"}
//	{"op":"put","table":"t","key":"b","fields":{...},"if_none_match":"*"}
//	{"op":"patch","table":"t","key":"c","fields":{...}}
//	{"op":"delete","table":"t","key":"d","if_match":"7"}
//	→ 200                            Content-Type: application/x-ndjson
//	{"status":200,"etag":"3","fields":{...}}
//	{"status":412,"error":"..."}
//	...
//
// Per-item failures never fail the POST; whole-request failures are
// 400 (malformed NDJSON), 413 (body over the server's cap), 429 +
// Retry-After (admission control) and 504 (X-Deadline-Ms expired
// before any work ran). The table name "batch" is reserved by this
// route.

// NDJSONContentType is the MIME type of batch bodies and streamed
// scans.
const NDJSONContentType = "application/x-ndjson"

// DeadlineHeader carries the client's remaining per-request budget in
// milliseconds; the server abandons work it cannot start in time.
const DeadlineHeader = "X-Deadline-Ms"

// maxBatchItems bounds one batch request independently of body bytes.
const maxBatchItems = 4096

// Pooled per-request machinery: every /v1/batch round trip used to
// allocate a bufio.Writer + json.Encoder for the response and a fresh
// op slice for the request. At benchmark batch sizes these dominate
// the handler's steady-state garbage, so both recycle through
// sync.Pools (the encoder keeps its writer for life; Reset retargets
// it per request).
type batchEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

var batchEncPool = sync.Pool{New: func() any {
	bw := bufio.NewWriterSize(nil, 4096)
	return &batchEncoder{bw: bw, enc: json.NewEncoder(bw)}
}}

var batchOpsPool = sync.Pool{New: func() any {
	ops := make([]wireBatchOp, 0, 64)
	return &ops
}}

// putBatchOps clears decoded field maps (so the pool does not pin
// request payloads) and returns the slice to the pool.
func putBatchOps(ops *[]wireBatchOp) {
	clear(*ops)
	*ops = (*ops)[:0]
	batchOpsPool.Put(ops)
}

// wireBatchOp is one NDJSON request line.
type wireBatchOp struct {
	Op          string            `json:"op"`
	Table       string            `json:"table"`
	Key         string            `json:"key"`
	Fields      map[string][]byte `json:"fields,omitempty"`
	IfMatch     string            `json:"if_match,omitempty"`
	IfNoneMatch string            `json:"if_none_match,omitempty"`
	// AsOf, on a get, asks for the newest version with commit ts ≤
	// AsOf instead of the head. Old servers drop the unknown field and
	// serve head data; the result-line echo is how clients tell.
	AsOf int64 `json:"as_of,omitempty"`
}

// wireBatchResult is one NDJSON response line.
type wireBatchResult struct {
	Status int               `json:"status"`
	ETag   string            `json:"etag,omitempty"`
	Fields map[string][]byte `json:"fields,omitempty"`
	Error  string            `json:"error,omitempty"`
	// AsOf echoes the request line's as_of when the server honored it;
	// its absence on an as-of get means an old server served head data
	// (the batch analogue of the missing AsOfServedHeader).
	AsOf int64 `json:"as_of,omitempty"`
	// Owner and MapVersion carry the routing hints of a per-item 410
	// in cluster mode — the batch analogue of the X-Shard-Owner and
	// X-Shard-Map-Version headers. Owner is empty while the key's slot
	// drains for migration (back off, don't redirect).
	Owner      string `json:"owner,omitempty"`
	MapVersion int64  `json:"map_version,omitempty"`
}

// expect resolves the line's conditional-write headers (same defaults
// as the single-op protocol).
func (op wireBatchOp) expect() (uint64, error) {
	if op.IfNoneMatch == "*" {
		return kvstore.MustNotExist, nil
	}
	if op.IfMatch == "" {
		return kvstore.AnyVersion, nil
	}
	v, err := strconv.ParseUint(op.IfMatch, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad if_match %q", op.IfMatch)
	}
	return v, nil
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
			http.Error(w, "too many in-flight batches", http.StatusTooManyRequests)
			return
		}
	}
	opsp, err := decodeBatchOps(r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	defer putBatchOps(opsp)
	ops := *opsp
	s.metrics.observeBatchSize(len(ops))
	if err := r.Context().Err(); err != nil {
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	results := s.execBatch(r.Context(), ops)
	w.Header().Set("Content-Type", NDJSONContentType)
	be := batchEncPool.Get().(*batchEncoder)
	be.bw.Reset(w)
	for _, res := range results {
		be.enc.Encode(res)
	}
	be.bw.Flush()
	be.bw.Reset(nil) // drop the ResponseWriter before pooling
	batchEncPool.Put(be)
}

// decodeBatchOps reads the NDJSON request lines into a pooled slice;
// the caller returns it with putBatchOps once the response is written.
func decodeBatchOps(r *http.Request) (*[]wireBatchOp, error) {
	opsp := batchOpsPool.Get().(*[]wireBatchOp)
	ops := (*opsp)[:0]
	fail := func(err error) (*[]wireBatchOp, error) {
		*opsp = ops
		putBatchOps(opsp)
		return nil, err
	}
	dec := json.NewDecoder(r.Body)
	for dec.More() {
		if len(ops) >= maxBatchItems {
			return fail(fmt.Errorf("batch exceeds %d items", maxBatchItems))
		}
		var op wireBatchOp
		if err := dec.Decode(&op); err != nil {
			return fail(fmt.Errorf("line %d: %w", len(ops)+1, err))
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return fail(errors.New("empty batch"))
	}
	*opsp = ops
	return opsp, nil
}

// execBatch answers the decoded ops through the engine's multi-key
// path, splitting the batch into maximal same-kind runs — consecutive
// gets share one BatchGet, consecutive mutations one BatchApply — so
// order within the batch is preserved while each run pays one lock
// round per touched partition. If the request deadline expires
// between runs, the remaining items report 504 instead of running.
func (s *Server) execBatch(ctx context.Context, ops []wireBatchOp) []wireBatchResult {
	out := make([]wireBatchResult, len(ops))
	for lo := 0; lo < len(ops); {
		hi := lo + 1
		for hi < len(ops) && (ops[hi].Op == "get") == (ops[lo].Op == "get") {
			hi++
		}
		if ctx.Err() != nil {
			for i := lo; i < len(ops); i++ {
				out[i] = wireBatchResult{Status: http.StatusGatewayTimeout, Error: "deadline exceeded"}
			}
			return out
		}
		if ops[lo].Op == "get" {
			s.execGetRunClustered(ops[lo:hi], out[lo:hi])
		} else {
			s.execMutRunClustered(ops[lo:hi], out[lo:hi])
		}
		lo = hi
	}
	return out
}

func (s *Server) execGetRun(ops []wireBatchOp, out []wireBatchResult) {
	// Fast path: no line asks for a snapshot, one head BatchGet covers
	// the whole run without any grouping overhead.
	head := true
	for _, op := range ops {
		if op.AsOf != 0 {
			head = false
			break
		}
	}
	if head {
		reqs := make([]kvstore.GetReq, len(ops))
		for i, op := range ops {
			reqs[i] = kvstore.GetReq{Table: op.Table, Key: op.Key}
		}
		for i, r := range s.store.BatchGet(reqs) {
			if r.Err != nil {
				out[i] = batchErrResult(r.Err)
				continue
			}
			out[i] = wireBatchResult{
				Status: http.StatusOK,
				ETag:   strconv.FormatUint(r.Record.Version, 10),
				Fields: r.Record.Fields,
			}
		}
		return
	}
	// Mixed run: group the line indices by as_of timestamp so each
	// distinct snapshot (and the head, ts 0) pays one engine round.
	groups := make(map[int64][]int)
	order := make([]int64, 0, 2)
	for i, op := range ops {
		if _, ok := groups[op.AsOf]; !ok {
			order = append(order, op.AsOf)
		}
		groups[op.AsOf] = append(groups[op.AsOf], i)
	}
	for _, ts := range order {
		idx := groups[ts]
		if ts < 0 {
			for _, i := range idx {
				out[i] = wireBatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("bad as_of %d", ts)}
			}
			continue
		}
		reqs := make([]kvstore.GetReq, len(idx))
		for j, i := range idx {
			reqs[j] = kvstore.GetReq{Table: ops[i].Table, Key: ops[i].Key}
		}
		var results []kvstore.GetResult
		if ts == 0 {
			results = s.store.BatchGet(reqs)
		} else {
			results = s.store.BatchGetAsOf(reqs, ts)
		}
		for j, r := range results {
			i := idx[j]
			if r.Err != nil {
				res := batchErrResult(r.Err)
				res.AsOf = ts
				out[i] = res
				continue
			}
			out[i] = wireBatchResult{
				Status: http.StatusOK,
				ETag:   strconv.FormatUint(r.Record.Version, 10),
				Fields: r.Record.Fields,
				AsOf:   ts,
			}
		}
	}
}

func (s *Server) execMutRun(ops []wireBatchOp, out []wireBatchResult) {
	muts := make([]kvstore.Mutation, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		expect, err := op.expect()
		if err != nil {
			out[i] = wireBatchResult{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		var m kvstore.Mutation
		switch op.Op {
		case "put":
			m = kvstore.Mutation{Op: kvstore.MutPut, Table: op.Table, Key: op.Key, Fields: op.Fields, Expect: expect}
		case "patch":
			m = kvstore.Mutation{Op: kvstore.MutUpdate, Table: op.Table, Key: op.Key, Fields: op.Fields}
		case "delete":
			m = kvstore.Mutation{Op: kvstore.MutDelete, Table: op.Table, Key: op.Key, Expect: expect}
		default:
			out[i] = wireBatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("unknown op %q", op.Op)}
			continue
		}
		if (op.Op == "put" || op.Op == "patch") && op.Fields == nil {
			out[i] = wireBatchResult{Status: http.StatusBadRequest, Error: "missing fields"}
			continue
		}
		muts = append(muts, m)
		idx = append(idx, i)
	}
	for j, r := range s.store.BatchApply(muts) {
		i := idx[j]
		if r.Err != nil {
			out[i] = batchErrResult(r.Err)
			continue
		}
		status := http.StatusOK
		if ops[i].Op == "delete" {
			status = http.StatusNoContent
		}
		out[i] = wireBatchResult{Status: status, ETag: strconv.FormatUint(r.Version, 10)}
	}
}

// batchErrResult maps a store error to a per-item result, mirroring
// writeStoreError's single-op status mapping.
func batchErrResult(err error) wireBatchResult {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, kvstore.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, kvstore.ErrVersionMismatch), errors.Is(err, kvstore.ErrExists):
		status = http.StatusPreconditionFailed
	case errors.Is(err, kvstore.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	return wireBatchResult{Status: status, Error: err.Error()}
}

// retryAfterSeconds renders a Retry-After header value (whole
// seconds, minimum 1, per RFC 9110).
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ---------------------------------------------------------------------
// Client side.

// ExecBatch implements db.BatchDB over one POST /v1/batch round trip.
// Against a server that predates the batch route (404/405 on the
// first attempt) it falls back — permanently, per client — to
// sequential single operations, keeping old-server interop.
func (c *Client) ExecBatch(ctx context.Context, ops []db.BatchOp) []db.BatchResult {
	out := make([]db.BatchResult, len(ops))
	wire := make([]wireBatchOp, 0, len(ops))
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		var w wireBatchOp
		switch op.Op {
		case db.OpRead:
			w = wireBatchOp{Op: "get", Table: op.Table, Key: op.Key}
			if c.asOf != 0 {
				if c.caps.asOfUnsupported.Load() {
					out[i] = db.BatchResult{Err: errAsOfUnsupported}
					continue
				}
				w.AsOf = c.asOf
			}
		case db.OpInsert:
			w = wireBatchOp{Op: "put", Table: op.Table, Key: op.Key, Fields: op.Values}
		case db.OpUpdate:
			w = wireBatchOp{Op: "patch", Table: op.Table, Key: op.Key, Fields: op.Values}
		case db.OpDelete:
			w = wireBatchOp{Op: "delete", Table: op.Table, Key: op.Key}
		default:
			out[i] = db.BatchResult{Err: fmt.Errorf("%w: cannot batch %v", db.ErrNotSupported, op.Op)}
			continue
		}
		wire = append(wire, w)
		idx = append(idx, i)
	}
	if len(wire) == 0 {
		return out
	}
	if c.caps.batchUnsupported.Load() {
		c.execBatchFallback(ctx, ops, idx, out)
		return out
	}
	results, err := c.postBatch(ctx, wire)
	if err != nil {
		if errors.Is(err, errNoBatchRoute) {
			c.caps.batchUnsupported.Store(true)
			c.execBatchFallback(ctx, ops, idx, out)
			return out
		}
		for _, i := range idx {
			out[i] = db.BatchResult{Err: err}
		}
		return out
	}
	for j, i := range idx {
		if wire[j].AsOf != 0 && results[j].AsOf == 0 {
			// An old server dropped the unknown as_of field and served
			// head data; refuse it and latch, like the header echo path.
			c.caps.asOfUnsupported.Store(true)
			out[i] = db.BatchResult{Err: errAsOfUnsupported}
			continue
		}
		out[i] = results[j].toBatchResult(ops[i].Fields)
	}
	return out
}

// errNoBatchRoute marks a server without the /v1/batch route.
var errNoBatchRoute = errors.New("httpkv: server has no batch route")

// bodyBufPool recycles batch request bodies across POSTs. A buffer
// goes back to the pool only after sendRetry has fully finished with
// the request: net/http snapshots the buffer's bytes into GetBody at
// request build time, and a 429 retry replays that snapshot — reusing
// the buffer earlier would corrupt the replayed body.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// postBatch ships the wire ops and parses the positional NDJSON
// response.
func (c *Client) postBatch(ctx context.Context, wire []wireBatchOp) ([]wireBatchResult, error) {
	body := bodyBufPool.Get().(*bytes.Buffer)
	body.Reset()
	defer bodyBufPool.Put(body)
	enc := json.NewEncoder(body)
	for _, op := range wire {
		if err := enc.Encode(op); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", NDJSONContentType)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := c.sendRetry(req)
	if err != nil {
		return nil, fmt.Errorf("httpkv: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound, resp.StatusCode == http.StatusMethodNotAllowed:
		// An old server answers the unknown route from its generic
		// handlers; fall back to the single-op protocol.
		return nil, errNoBatchRoute
	case resp.StatusCode >= 400:
		return nil, statusError(resp)
	}
	results := make([]wireBatchResult, 0, len(wire))
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r wireBatchResult
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("httpkv: decoding batch response: %w", err)
		}
		results = append(results, r)
	}
	if len(results) != len(wire) {
		return nil, fmt.Errorf("httpkv: batch answered %d of %d items", len(results), len(wire))
	}
	return results, nil
}

// execBatchFallback answers the batchable items with sequential
// single operations (old-server interop path).
func (c *Client) execBatchFallback(ctx context.Context, ops []db.BatchOp, idx []int, out []db.BatchResult) {
	for _, i := range idx {
		op := ops[i]
		switch op.Op {
		case db.OpRead:
			rec, err := c.Read(ctx, op.Table, op.Key, op.Fields)
			out[i] = db.BatchResult{Record: rec, Err: err}
		case db.OpInsert:
			out[i] = db.BatchResult{Err: c.Insert(ctx, op.Table, op.Key, op.Values)}
		case db.OpUpdate:
			out[i] = db.BatchResult{Err: c.Update(ctx, op.Table, op.Key, op.Values)}
		case db.OpDelete:
			out[i] = db.BatchResult{Err: c.Delete(ctx, op.Table, op.Key)}
		}
	}
}

// toBatchResult maps one wire result to the db layer, projecting read
// fields like the single-op client does.
func (r wireBatchResult) toBatchResult(fields []string) db.BatchResult {
	switch r.Status {
	case http.StatusOK, http.StatusNoContent:
		if r.Fields != nil {
			return db.BatchResult{Record: db.ProjectFields(r.Fields, fields)}
		}
		return db.BatchResult{}
	case http.StatusNotFound:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", db.ErrNotFound, r.Error)}
	case http.StatusPreconditionFailed:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", db.ErrConflict, r.Error)}
	case http.StatusTooManyRequests:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", db.ErrThrottled, r.Error)}
	case http.StatusGone:
		return db.BatchResult{Err: &cluster.MovedError{Owner: r.Owner, MapVersion: r.MapVersion}}
	case http.StatusGatewayTimeout:
		return db.BatchResult{Err: fmt.Errorf("%w: %s", context.DeadlineExceeded, r.Error)}
	default:
		return db.BatchResult{Err: fmt.Errorf("httpkv: batch item status %d: %s", r.Status, r.Error)}
	}
}

var _ db.BatchDB = (*Client)(nil)
