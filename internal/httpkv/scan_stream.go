package httpkv

import (
	"context"
	"errors"

	"ycsbt/internal/kvwire"
)

// The streamed scan fast path: when the endpoint negotiated streaming
// frames (X-KV-Wire-Stream), scans ride the binary protocol as
// credit-gated chunk streams instead of HTTP/NDJSON pages. served =
// false sends the caller down the HTTP path — the same per-call
// fallback shape as wireExec, safe because scans are idempotent.
func (c *Client) scanStream(ctx context.Context, table, start string, count int, asOf int64, slot int, tombstones bool) (wrs []wireRecord, mapVer int64, served bool, err error) {
	ep, ok := c.wireStreamEndpoint()
	if !ok {
		return nil, 0, false, nil
	}
	s, err := ep.Scan(ctx, &kvwire.ScanRequest{
		Table:      table,
		Start:      start,
		Count:      count,
		AsOf:       asOf,
		Slot:       slot,
		Tombstones: tombstones,
	})
	if err != nil {
		if errors.Is(err, kvwire.ErrUnavailable) {
			c.caps.wireUnsupported.Store(true)
		}
		if ctx.Err() != nil {
			return nil, 0, true, ctx.Err()
		}
		return nil, 0, false, nil
	}
	defer s.Close()
	if count > 0 {
		wrs = make([]wireRecord, 0, count)
	}
	for s.Next() {
		rec := s.Record()
		wrs = append(wrs, wireRecord{
			Key:      rec.Key,
			Version:  rec.Version,
			CommitTS: rec.CommitTS,
			Deleted:  rec.Deleted,
			Fields:   rec.Fields,
		})
	}
	if err := s.Err(); err != nil {
		var re *kvwire.RequestError
		if errors.As(err, &re) {
			// A server-side abort (bad params, shard-map skew, shed) is
			// authoritative — HTTP would answer the same.
			return nil, 0, true, wireResultErr(kvwire.Result{Status: re.Status, Err: re.Msg})
		}
		if ctx.Err() != nil {
			return nil, 0, true, ctx.Err()
		}
		// Connection died mid-stream: rescan over HTTP (idempotent).
		return nil, 0, false, nil
	}
	return wrs, s.MapVersion(), true, nil
}
