package httpkv

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/properties"
)

// newPreMVCCServer simulates a deployment that predates the as-of
// protocol, for the old/new interop matrix: the as-of header is
// dropped before dispatch (the old server never read it), batch lines
// lose their as_of field (the old decoder had no such field), and
// there is no /v1/ts route — that path falls through to the record
// handler and scans a table named "ts", exactly as the old mux did.
func newPreMVCCServer(store kvstore.Engine) http.Handler {
	s := NewServer(store)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del(AsOfHeader)
		switch {
		case r.URL.Path == "/v1/ts":
			s.handleRecord(w, r)
		case r.URL.Path == "/v1/batch" && r.Body != nil:
			var buf bytes.Buffer
			dec := json.NewDecoder(r.Body)
			enc := json.NewEncoder(&buf)
			for dec.More() {
				var op wireBatchOp
				if err := dec.Decode(&op); err != nil {
					break
				}
				op.AsOf = 0
				enc.Encode(op)
			}
			r.Body = io.NopCloser(&buf)
			r.ContentLength = int64(buf.Len())
			s.ServeHTTP(w, r)
		default:
			s.ServeHTTP(w, r)
		}
	})
}

// asOfFixture seeds a store with a known snapshot, mutates past it,
// and serves it through both a current and a pre-MVCC server.
type asOfFixture struct {
	store  *kvstore.Store
	ts     int64 // snapshot: k1..k4 = "old"; after it k1 = "new", k3 deleted, k5 inserted
	newSrv *httptest.Server
	oldSrv *httptest.Server
}

func newAsOfFixture(t *testing.T) *asOfFixture {
	t.Helper()
	store := kvstore.OpenMemoryShards(4)
	t.Cleanup(func() { store.Close() })
	for i := 1; i <= 4; i++ {
		if _, err := store.Put("t", "k"+strconv.Itoa(i), map[string][]byte{"v": []byte("old")}); err != nil {
			t.Fatal(err)
		}
	}
	ts := store.SnapshotTS()
	if _, err := store.Put("t", "k1", map[string][]byte{"v": []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("t", "k3"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("t", "k5", map[string][]byte{"v": []byte("late")}); err != nil {
		t.Fatal(err)
	}
	f := &asOfFixture{store: store, ts: ts}
	f.newSrv = httptest.NewServer(NewServer(store))
	t.Cleanup(f.newSrv.Close)
	f.oldSrv = httptest.NewServer(newPreMVCCServer(store))
	t.Cleanup(f.oldSrv.Close)
	return f
}

// client builds a fresh Client for one pairing; asOf 0 = a pre-MVCC
// client that never sends the header.
func (f *asOfFixture) client(t *testing.T, base string, asOf int64) *Client {
	t.Helper()
	c := NewClient(base, nil)
	p := properties.New()
	if asOf != 0 {
		p.Set("as_of", strconv.FormatInt(asOf, 10))
	}
	if err := c.Init(p); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Cleanup() })
	return c
}

// TestAsOfInteropNewClientNewServer: both sides speak the protocol —
// GET, streamed scan and batch all answer from the frozen snapshot.
func TestAsOfInteropNewClientNewServer(t *testing.T) {
	ctx := context.Background()
	f := newAsOfFixture(t)
	c := f.client(t, f.newSrv.URL, f.ts)

	if now, err := c.SnapshotTS(ctx); err != nil || now <= f.ts {
		t.Fatalf("SnapshotTS = %d, %v; want > snapshot", now, err)
	}
	for key, want := range map[string]string{"k1": "old", "k3": "old"} {
		rec, err := c.Read(ctx, "t", key, nil)
		if err != nil {
			t.Fatalf("Read %s: %v", key, err)
		}
		if got := string(rec["v"]); got != want {
			t.Fatalf("Read %s = %q, want %q", key, got, want)
		}
	}
	if _, err := c.Read(ctx, "t", "k5", nil); !errors.Is(err, db.ErrNotFound) {
		t.Fatalf("Read later-inserted k5: %v, want ErrNotFound", err)
	}
	kvs, err := c.Scan(ctx, "t", "", 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 4 {
		t.Fatalf("as-of scan saw %d keys, want 4: %v", len(kvs), kvs)
	}
	for _, kv := range kvs {
		if got := string(kv.Record["v"]); got != "old" {
			t.Fatalf("as-of scan %s = %q, want \"old\"", kv.Key, got)
		}
	}
	res := c.ExecBatch(ctx, []db.BatchOp{
		{Op: db.OpRead, Table: "t", Key: "k1"},
		{Op: db.OpRead, Table: "t", Key: "k3"},
		{Op: db.OpRead, Table: "t", Key: "k5"},
	})
	for i := 0; i < 2; i++ {
		if res[i].Err != nil || string(res[i].Record["v"]) != "old" {
			t.Fatalf("batch item %d = %v, %v; want \"old\"", i, res[i].Record, res[i].Err)
		}
	}
	if !errors.Is(res[2].Err, db.ErrNotFound) {
		t.Fatalf("batch read of later-inserted k5: %v, want ErrNotFound", res[2].Err)
	}
	if c.caps.asOfUnsupported.Load() {
		t.Fatal("latch set against a current server")
	}
}

// TestAsOfInteropNewClientOldServer: the server ignores as-of requests
// — the client must detect the missing echo on every path and fail
// with ErrNotSupported rather than silently serving head data.
func TestAsOfInteropNewClientOldServer(t *testing.T) {
	ctx := context.Background()
	f := newAsOfFixture(t)

	// GET path: detect, fail, latch.
	c := f.client(t, f.oldSrv.URL, f.ts)
	if _, err := c.Read(ctx, "t", "k1", nil); !errors.Is(err, db.ErrNotSupported) {
		t.Fatalf("as-of read against old server: %v, want ErrNotSupported", err)
	}
	if !c.caps.asOfUnsupported.Load() {
		t.Fatal("latch not set after missing echo")
	}
	if _, err := c.Scan(ctx, "t", "", 10, nil); !errors.Is(err, db.ErrNotSupported) {
		t.Fatalf("latched scan: %v, want fast-fail ErrNotSupported", err)
	}

	// Streamed scan path on a fresh client.
	c2 := f.client(t, f.oldSrv.URL, f.ts)
	if _, err := c2.Scan(ctx, "t", "", 10, nil); !errors.Is(err, db.ErrNotSupported) {
		t.Fatalf("as-of scan against old server: %v, want ErrNotSupported", err)
	}

	// Batch path on a fresh client: the old server strips as_of, so
	// result lines carry no echo — every as-of get must fail.
	c3 := f.client(t, f.oldSrv.URL, f.ts)
	res := c3.ExecBatch(ctx, []db.BatchOp{
		{Op: db.OpRead, Table: "t", Key: "k1"},
		{Op: db.OpRead, Table: "t", Key: "k2"},
	})
	for i, r := range res {
		if !errors.Is(r.Err, db.ErrNotSupported) {
			t.Fatalf("batch item %d against old server: %v, want ErrNotSupported", i, r.Err)
		}
		if r.Record != nil {
			t.Fatalf("batch item %d silently served head data: %v", i, r.Record)
		}
	}
	if !c3.caps.asOfUnsupported.Load() {
		t.Fatal("batch latch not set after missing as_of echo")
	}

	// as_of=-1 resolves through /v1/ts, which the old server answers as
	// a table scan: Init must refuse, not freeze at garbage.
	c4 := NewClient(f.oldSrv.URL, nil)
	p := properties.New()
	p.Set("as_of", "-1")
	if err := c4.Init(p); !errors.Is(err, db.ErrNotSupported) {
		t.Fatalf("as_of=-1 against old server: %v, want ErrNotSupported", err)
	}
	c4.Cleanup()
}

// TestAsOfInteropOldClientAnyServer: a client that never sends as-of
// headers keeps full head-read semantics against both server
// generations — the protocol is invisible until asked for.
func TestAsOfInteropOldClientAnyServer(t *testing.T) {
	ctx := context.Background()
	f := newAsOfFixture(t)
	for name, base := range map[string]string{"new server": f.newSrv.URL, "old server": f.oldSrv.URL} {
		c := f.client(t, base, 0)
		rec, err := c.Read(ctx, "t", "k1", nil)
		if err != nil || string(rec["v"]) != "new" {
			t.Fatalf("%s: head read = %v, %v; want \"new\"", name, rec, err)
		}
		if _, err := c.Read(ctx, "t", "k3", nil); !errors.Is(err, db.ErrNotFound) {
			t.Fatalf("%s: head read of deleted k3: %v, want ErrNotFound", name, err)
		}
		kvs, err := c.Scan(ctx, "t", "", 10, nil)
		if err != nil || len(kvs) != 4 { // k1,k2,k4,k5 — k3 deleted
			t.Fatalf("%s: head scan = %d keys, %v; want 4", name, len(kvs), err)
		}
		res := c.ExecBatch(ctx, []db.BatchOp{{Op: db.OpRead, Table: "t", Key: "k5"}})
		if res[0].Err != nil || string(res[0].Record["v"]) != "late" {
			t.Fatalf("%s: head batch read = %v, %v; want \"late\"", name, res[0].Record, res[0].Err)
		}
	}
}

// TestAsOfRemoteStoreSnapshot drives the txn-facing SnapshotStore
// capability over the wire end to end: draw a ts, keep reading the
// frozen cut through GetAsOf/ScanAsOf while the head moves on.
func TestAsOfRemoteStoreSnapshot(t *testing.T) {
	ctx := context.Background()
	f := newAsOfFixture(t)
	rs := NewRemoteStore("remote", f.newSrv.URL, nil)

	ts, release, err := rs.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := f.store.Put("t", "k1", map[string][]byte{"v": []byte("newer")}); err != nil {
		t.Fatal(err)
	}
	rec, err := rs.GetAsOf(ctx, "t", "k1", ts)
	if err != nil || string(rec.Fields["v"]) != "new" {
		t.Fatalf("remote GetAsOf = %v, %v; want \"new\"", rec, err)
	}
	if _, err := rs.GetAsOf(ctx, "t", "k3", ts); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("remote GetAsOf deleted key: %v, want kvstore.ErrNotFound", err)
	}
	kvs, err := rs.ScanAsOf(ctx, "t", "", 10, ts)
	if err != nil || len(kvs) != 4 {
		t.Fatalf("remote ScanAsOf = %d keys, %v; want 4", len(kvs), err)
	}

	// Malformed header → 400, and bad-request responses don't latch.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, f.newSrv.URL+"/v1/t/k1", nil)
	req.Header.Set(AsOfHeader, "yesterday")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed as-of header: %d, want 400", resp.StatusCode)
	}
}
