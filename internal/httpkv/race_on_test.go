//go:build race

package httpkv

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count assertions are skipped since the detector
// adds its own allocations.
const raceEnabled = true
