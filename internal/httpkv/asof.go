package httpkv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
)

// The as-of wire protocol: time-travel reads over HTTP.
//
// A client that wants a snapshot read sends the commit timestamp in
// the X-As-Of-Ts header (GET and scan) or the "as_of" field of a batch
// get line. A server that understands the protocol serves the read
// from the engine's version history and echoes the timestamp back
// (X-As-Of-Served header / "as_of" result field) on every response,
// errors included. The echo is the negotiation: an old server ignores
// the unknown header (or drops the unknown JSON field) and answers
// with head data and no echo, which the client treats as
// db.ErrNotSupported — a snapshot read must never silently degrade to
// a head read. Like the batch route's 405 latch, the first missing
// echo latches the client into fast-fail for later as-of reads.
//
// GET /v1/ts returns {"ts":n}, a snapshot timestamp from the engine's
// commit clock: every already-acknowledged write is ≤ n. Old servers
// answer that path as a scan of a table named "ts" — a JSON array —
// which the client detects as "no snapshot support". There is no
// remote pin: the server's retention window (kvstore.retention_ms)
// bounds how old a usable snapshot can be.

// AsOfHeader carries a snapshot (commit) timestamp on GET and scan
// requests; the server resolves each key's version chain to the newest
// version at or below it.
const AsOfHeader = "X-As-Of-Ts"

// AsOfServedHeader echoes the snapshot timestamp an as-of read was
// actually served at; its absence tells the client the server ignored
// AsOfHeader.
const AsOfServedHeader = "X-As-Of-Served"

// ScanTombstonesHeader echoes a scan's tombstones=1 request param; its
// absence tells the migration copy the server predates tombstone
// propagation and would silently drop deletes.
const ScanTombstonesHeader = "X-Scan-Tombstones"

// errAsOfUnsupported marks a server that ignores as-of requests.
var errAsOfUnsupported = fmt.Errorf("%w: server does not support as-of reads", db.ErrNotSupported)

// asOfRequested parses the as-of header: 0 when absent, an error when
// malformed (non-integer or non-positive).
func asOfRequested(r *http.Request) (int64, error) {
	h := r.Header.Get(AsOfHeader)
	if h == "" {
		return 0, nil
	}
	ts, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ts <= 0 {
		return 0, fmt.Errorf("bad %s %q", AsOfHeader, h)
	}
	return ts, nil
}

// wireTS is the /v1/ts response body.
type wireTS struct {
	TS int64 `json:"ts"`
}

// handleSnapshotTS serves GET /v1/ts from the engine's commit clock.
func (s *Server) handleSnapshotTS(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(wireTS{TS: s.store.SnapshotTS()})
}

// ---------------------------------------------------------------------
// Client side.

// asOfEvidence reports whether a response status is conclusive about
// the server's as-of support: on these statuses a new server always
// has the echo header set, so its absence means an old server.
// Transport-level rejections (throttle, deadline, 5xx) say nothing.
func asOfEvidence(status int) bool {
	switch status {
	case http.StatusOK, http.StatusNoContent, http.StatusNotFound, http.StatusPreconditionFailed:
		return true
	}
	return false
}

// checkAsOfEcho latches the unsupported flag when a conclusive
// response lacks the served-ts echo.
func (c *Client) checkAsOfEcho(resp *http.Response) error {
	if resp.Header.Get(AsOfServedHeader) != "" {
		return nil
	}
	if !asOfEvidence(resp.StatusCode) {
		return nil // inconclusive; don't latch, let the status surface
	}
	c.caps.asOfUnsupported.Store(true)
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return errAsOfUnsupported
}

// readWireAsOf fetches one record as of ts, enforcing the echo.
func (c *Client) readWireAsOf(ctx context.Context, table, key string, ts int64) (*wireRecord, error) {
	if c.caps.asOfUnsupported.Load() {
		return nil, errAsOfUnsupported
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.recordURL(table, key), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(AsOfHeader, strconv.FormatInt(ts, 10))
	resp, err := c.sendRetry(req)
	if err != nil {
		return nil, fmt.Errorf("httpkv: %w", err)
	}
	if err := c.checkAsOfEcho(resp); err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, statusError(resp)
	}
	var wr wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, fmt.Errorf("httpkv: decoding record: %w", err)
	}
	return &wr, nil
}

// scanWireAsOf fetches one scan page as of ts, enforcing the echo.
// Like scanWire it speaks NDJSON when the server does.
func (c *Client) scanWireAsOf(ctx context.Context, table, startKey string, count int, ts int64) ([]wireRecord, error) {
	if c.caps.asOfUnsupported.Load() {
		return nil, errAsOfUnsupported
	}
	// The streamed scan carries the as-of ts in the request frame and
	// the server's paging loop reads from the version history, so the
	// snapshot is honored by construction — no echo check needed.
	if wrs, _, served, err := c.scanStream(ctx, table, startKey, count, ts, -1, false); served {
		return wrs, err
	}
	u := c.base + "/v1/" + url.PathEscape(table) + "?start=" + url.QueryEscape(startKey) + "&count=" + strconv.Itoa(count)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", NDJSONContentType)
	req.Header.Set(AsOfHeader, strconv.FormatInt(ts, 10))
	resp, err := c.sendRetry(req)
	if err != nil {
		return nil, fmt.Errorf("httpkv: %w", err)
	}
	if err := c.checkAsOfEcho(resp); err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, statusError(resp)
	}
	if strings.Contains(resp.Header.Get("Content-Type"), NDJSONContentType) {
		return decodeScanNDJSON(resp.Body, count)
	}
	var wrs []wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&wrs); err != nil {
		return nil, fmt.Errorf("httpkv: decoding scan: %w", err)
	}
	return wrs, nil
}

// SnapshotTS fetches a snapshot timestamp from GET /v1/ts. An old
// server answers the path as a table scan (a JSON array), which maps
// to db.ErrNotSupported and latches the as-of fast-fail.
func (c *Client) SnapshotTS(ctx context.Context) (int64, error) {
	if c.caps.asOfUnsupported.Load() {
		return 0, errAsOfUnsupported
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/ts", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var ts wireTS
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil || ts.TS <= 0 {
		c.caps.asOfUnsupported.Store(true)
		return 0, errAsOfUnsupported
	}
	return ts.TS, nil
}

// ---------------------------------------------------------------------
// RemoteStore: the txn.SnapshotStore capability over the wire.

// Snapshot draws a snapshot timestamp from the server. HTTP is
// stateless, so there is no remote pin: the release is a no-op and the
// snapshot stays readable for the server's retention window — size
// kvstore.retention_ms to cover the longest read-only transaction.
func (r *RemoteStore) Snapshot(ctx context.Context) (int64, func(), error) {
	ts, err := r.c.SnapshotTS(ctx)
	if err != nil {
		return 0, nil, remoteTranslate(err)
	}
	return ts, func() {}, nil
}

// GetAsOf implements the snapshot-store capability over AsOfHeader.
func (r *RemoteStore) GetAsOf(ctx context.Context, table, key string, ts int64) (*kvstore.VersionedRecord, error) {
	wr, err := r.c.readWireAsOf(ctx, table, key, ts)
	if err != nil {
		return nil, remoteTranslate(err)
	}
	return &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields}, nil
}

// ScanAsOf implements the snapshot-store capability over AsOfHeader.
func (r *RemoteStore) ScanAsOf(ctx context.Context, table, startKey string, count int, ts int64) ([]kvstore.VersionedKV, error) {
	wrs, err := r.c.scanWireAsOf(ctx, table, startKey, count, ts)
	if err != nil {
		return nil, remoteTranslate(err)
	}
	out := make([]kvstore.VersionedKV, 0, len(wrs))
	for _, wr := range wrs {
		out = append(out, kvstore.VersionedKV{
			Key:    wr.Key,
			Record: &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields},
		})
	}
	return out, nil
}
