package httpkv

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
)

// RemoteStore adapts an httpkv server to the transaction libraries'
// store interface (txn.Store / percolator.Store): versioned gets and
// scans plus conditional writes, all over HTTP. With it, one
// client-coordinated transaction can span stores "deployed in
// different regions" reachable only over the network — the
// heterogeneous-store scenario of Section II-B — with no software on
// the server side beyond the plain key-value interface.
type RemoteStore struct {
	name string
	c    *Client
}

// NewRemoteStore wraps the httpkv server at baseURL as a named
// transaction store.
func NewRemoteStore(name, baseURL string, hc *http.Client) *RemoteStore {
	return &RemoteStore{name: name, c: NewClient(baseURL, hc)}
}

// Name implements the store interface.
func (r *RemoteStore) Name() string { return r.name }

// Get implements the store interface.
func (r *RemoteStore) Get(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	rec, err := r.c.ReadVersioned(ctx, table, key)
	if err != nil {
		return nil, remoteTranslate(err)
	}
	return rec, nil
}

// Put implements the store interface (conditional put via ETag
// headers).
func (r *RemoteStore) Put(ctx context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	ver, err := r.c.putVersioned(ctx, table, key, fields, expect)
	if err != nil {
		return 0, remoteTranslate(err)
	}
	return ver, nil
}

// Delete implements the store interface.
func (r *RemoteStore) Delete(ctx context.Context, table, key string, expect uint64) error {
	return remoteTranslate(r.c.deleteVersioned(ctx, table, key, expect))
}

// Scan implements the store interface.
func (r *RemoteStore) Scan(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	kvs, err := r.c.scanVersioned(ctx, table, startKey, count)
	if err != nil {
		return nil, remoteTranslate(err)
	}
	return kvs, nil
}

// remoteTranslate maps the client's db-layer sentinels back to the
// kvstore-layer errors the transaction protocols match on.
func remoteTranslate(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, db.ErrNotFound):
		return fmt.Errorf("%w: %v", kvstore.ErrNotFound, err)
	case errors.Is(err, db.ErrConflict):
		return fmt.Errorf("%w: %v", kvstore.ErrVersionMismatch, err)
	default:
		return err
	}
}
