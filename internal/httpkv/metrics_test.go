package httpkv

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
	"ycsbt/internal/replica"
)

// TestConcurrentMetricsScrape is the end-to-end observability check:
// the full kvserver stack (replicated engine under the HTTP server,
// both instrumented into one registry) takes concurrent client traffic
// while /metrics is scraped in parallel. Under -race this is the
// cross-layer thread-safety proof; the series assertions mirror the
// smoke test CI runs against a live kvserver.
func TestConcurrentMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := replica.New(replica.Config{
		Name: "kvserver", Backups: 1, Mode: replica.Async, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := rep.Engine()
	defer eng.Close()
	// The replica primary is already registry-wired; add a second,
	// directly instrumented engine on the same registry to prove the
	// per-shard handles from multiple engines merge safely at scrape.
	plain, err := kvstore.Open(kvstore.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Put("warm", "k", map[string][]byte{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServerWithOptions(eng, ServerOptions{Metrics: reg}))
	defer srv.Close()
	ops := httptest.NewServer(obs.NewOpsMux(reg, nil))
	defer ops.Close()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(srv.URL, srv.Client())
			ctx := context.Background()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := c.Insert(ctx, "usertable", key, db.Record{"f": []byte("v")}); err != nil {
					t.Errorf("insert %s: %v", key, err)
					return
				}
				if _, err := c.Read(ctx, "usertable", key, nil); err != nil {
					t.Errorf("read %s: %v", key, err)
					return
				}
			}
		}(w)
	}

	// Scrape concurrently with the traffic.
	var lastBody string
	for s := 0; s < 10; s++ {
		resp, err := http.Get(ops.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: %s", s, resp.Status)
		}
		lastBody = string(body)
	}
	wg.Wait()

	// A final scrape must expose all three layers: engine, HTTP server,
	// and replica — the kvserver acceptance criterion.
	resp, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lastBody = string(body)
	for _, want := range []string{
		"kvstore_ops_total",
		"httpkv_responses_total",
		"httpkv_inflight_requests",
		"replica_lag_ops",
		"replica_applied_total",
	} {
		if !strings.Contains(lastBody, want) {
			t.Errorf("final scrape missing %s series:\n%.400s", want, lastBody)
		}
	}
	if !strings.Contains(lastBody, `httpkv_responses_total{code="200"}`) {
		t.Errorf("no 200 responses counted:\n%.400s", lastBody)
	}
}
