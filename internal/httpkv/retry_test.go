package httpkv

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/db"
)

// throttleServer answers 429 (with the given Retry-After header) to
// the first `fail` requests, then succeeds, echoing the body length so
// the test can prove the replayed body arrived intact.
type throttleServer struct {
	fail       int32
	retryAfter string
	requests   atomic.Int32
	lastBody   atomic.Int32
}

func (ts *throttleServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := ts.requests.Add(1)
		body, _ := io.ReadAll(r.Body)
		ts.lastBody.Store(int32(len(body)))
		if n <= atomic.LoadInt32(&ts.fail) {
			if ts.retryAfter != "" {
				w.Header().Set("Retry-After", ts.retryAfter)
			}
			http.Error(w, "throttled", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("ETag", "1")
		w.WriteHeader(http.StatusNoContent)
	})
}

func newRetryClient(t *testing.T, ts *throttleServer) (*Client, func()) {
	t.Helper()
	srv := httptest.NewServer(ts.handler())
	c := NewClient(srv.URL, srv.Client())
	return c, srv.Close
}

func TestRetry429ReplaysBodyAndSucceeds(t *testing.T) {
	ts := &throttleServer{fail: 2, retryAfter: "0"}
	c, closeSrv := newRetryClient(t, ts)
	defer closeSrv()

	values := db.Record{"field0": []byte("hello")}
	if err := c.Insert(context.Background(), "usertable", "k1", values); err != nil {
		t.Fatalf("Insert after retries: %v", err)
	}
	if got := ts.requests.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
	// The final (successful) attempt must carry the same JSON body as
	// the first: GetBody replay, not an empty re-send.
	want, _ := json.Marshal(wireRecord{Fields: values})
	if got := ts.lastBody.Load(); got != int32(len(want)) {
		t.Fatalf("replayed body was %d bytes, want %d", got, len(want))
	}
}

func TestRetry429Exhausted(t *testing.T) {
	ts := &throttleServer{fail: 100, retryAfter: "0"}
	c, closeSrv := newRetryClient(t, ts)
	defer closeSrv()

	err := c.Insert(context.Background(), "usertable", "k1", db.Record{"f": []byte("v")})
	if !errors.Is(err, db.ErrThrottled) {
		t.Fatalf("exhausted retries: got %v, want ErrThrottled", err)
	}
	if got := ts.requests.Load(); got != int32(1+DefaultRetry429) {
		t.Fatalf("server saw %d requests, want %d", got, 1+DefaultRetry429)
	}
}

func TestRetry429Disabled(t *testing.T) {
	ts := &throttleServer{fail: 1, retryAfter: "0"}
	c, closeSrv := newRetryClient(t, ts)
	defer closeSrv()
	c.retry429 = 0

	err := c.Insert(context.Background(), "usertable", "k1", db.Record{"f": []byte("v")})
	if !errors.Is(err, db.ErrThrottled) {
		t.Fatalf("retry disabled: got %v, want immediate ErrThrottled", err)
	}
	if got := ts.requests.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestRetry429DeadlineShortCircuits(t *testing.T) {
	// Retry-After asks for 5s but the context expires in 50ms: the
	// client must surface the 429 instead of sleeping into the deadline.
	ts := &throttleServer{fail: 100, retryAfter: "5"}
	c, closeSrv := newRetryClient(t, ts)
	defer closeSrv()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Insert(ctx, "usertable", "k1", db.Record{"f": []byte("v")})
	if !errors.Is(err, db.ErrThrottled) {
		t.Fatalf("got %v, want ErrThrottled", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("took %v: slept into the backoff instead of bailing", el)
	}
	if got := ts.requests.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestRetryAfterDelay(t *testing.T) {
	mk := func(h string) *http.Response {
		resp := &http.Response{Header: http.Header{}}
		if h != "" {
			resp.Header.Set("Retry-After", h)
		}
		return resp
	}
	cases := []struct {
		header  string
		attempt int
		ceiling time.Duration
		want    time.Duration
	}{
		{"", 0, 5 * time.Second, 100 * time.Millisecond},        // default base
		{"", 2, 5 * time.Second, 400 * time.Millisecond},        // doubled per attempt
		{"1", 0, 5 * time.Second, time.Second},                  // server hint
		{"1", 1, 5 * time.Second, 2 * time.Second},              // hint doubled
		{"30", 0, 5 * time.Second, 5 * time.Second},             // capped
		{"garbage", 0, 5 * time.Second, 100 * time.Millisecond}, // unparsable → base
	}
	for _, tc := range cases {
		if got := retryAfterDelay(mk(tc.header), tc.attempt, tc.ceiling); got != tc.want {
			t.Errorf("retryAfterDelay(%q, %d, %v) = %v, want %v", tc.header, tc.attempt, tc.ceiling, tc.want, got)
		}
	}
}

// TestRetryAfterDelayHTTPDate covers the header's second allowed form
// (RFC 9110 §10.2.3): an HTTP-date instead of delta-seconds.
func TestRetryAfterDelayHTTPDate(t *testing.T) {
	mk := func(h string) *http.Response {
		resp := &http.Response{Header: http.Header{}}
		resp.Header.Set("Retry-After", h)
		return resp
	}
	// A date ~3s out resolves to roughly that delay.
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	got := retryAfterDelay(mk(future), 0, 10*time.Second)
	if got < 1500*time.Millisecond || got > 3*time.Second {
		t.Errorf("future HTTP-date: got %v, want ~3s", got)
	}
	// A date in the past means "retry now", not the fallback default.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := retryAfterDelay(mk(past), 0, 10*time.Second); got != 0 {
		t.Errorf("past HTTP-date: got %v, want 0", got)
	}
	// RFC 850 dates parse too (http.ParseTime tries all three forms).
	rfc850 := time.Now().Add(-time.Minute).UTC().Format(time.RFC850)
	if got := retryAfterDelay(mk(rfc850), 0, 10*time.Second); got != 0 {
		t.Errorf("RFC 850 date: got %v, want 0", got)
	}
}

// TestRetry429HonorsHTTPDateEndToEnd drives the whole retry loop with
// a date-form Retry-After: the request must be retried (not surfaced
// as a throttle error) and succeed.
func TestRetry429HonorsHTTPDateEndToEnd(t *testing.T) {
	past := time.Now().Add(-time.Second).UTC().Format(http.TimeFormat)
	ts := &throttleServer{fail: 1, retryAfter: past}
	c, closeSrv := newRetryClient(t, ts)
	defer closeSrv()
	if err := c.Insert(context.Background(), "t", "k", db.Record{"f": []byte("v")}); err != nil {
		t.Fatalf("Insert after date-form retry: %v", err)
	}
	if got := ts.requests.Load(); got != 2 {
		t.Fatalf("requests = %d, want 2 (one 429 + one retry)", got)
	}
}
