package httpkv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func ndjsonScanPage(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < n; i++ {
		wr := wireRecord{
			Key:     fmt.Sprintf("user%06d", i),
			Version: uint64(i + 1),
			Fields:  map[string][]byte{"field0": []byte("0123456789abcdef0123456789abcdef")},
		}
		if err := enc.Encode(wr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestDecodeScanNDJSON(t *testing.T) {
	data := ndjsonScanPage(t, 100)
	wrs, err := decodeScanNDJSON(bytes.NewReader(data), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrs) != 100 {
		t.Fatalf("decoded %d records, want 100", len(wrs))
	}
	if wrs[42].Key != "user000042" || wrs[42].Version != 43 {
		t.Fatalf("record 42 = %+v", wrs[42])
	}
	if string(wrs[99].Fields["field0"]) != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("record 99 fields = %v", wrs[99].Fields)
	}
	// Garbage mid-page surfaces as a decode error, not a short page.
	bad := append(append([]byte{}, data...), []byte("{oops\n")...)
	if _, err := decodeScanNDJSON(bytes.NewReader(bad), 100); err == nil {
		t.Fatal("accepted malformed scan line")
	}
	// No trailing newline on the last line still decodes.
	trimmed := bytes.TrimRight(data, "\n")
	wrs, err = decodeScanNDJSON(bytes.NewReader(trimmed), 100)
	if err != nil || len(wrs) != 100 {
		t.Fatalf("no-final-newline page: %d records, err=%v", len(wrs), err)
	}
}

// The pooled line decoder must beat the old fresh-json.Decoder-per-page
// shape on allocations — that machinery (decoder state + its growing
// read buffer) was per-page garbage on the scan hot path.
func TestDecodeScanNDJSONPooledAllocs(t *testing.T) {
	data := ndjsonScanPage(t, 100)
	fresh := testing.AllocsPerRun(100, func() {
		dec := json.NewDecoder(bytes.NewReader(data))
		var wrs []wireRecord
		for dec.More() {
			var wr wireRecord
			if err := dec.Decode(&wr); err != nil {
				t.Fatal(err)
			}
			wrs = append(wrs, wr)
		}
		if len(wrs) != 100 {
			t.Fatalf("decoded %d", len(wrs))
		}
	})
	pooled := testing.AllocsPerRun(100, func() {
		wrs, err := decodeScanNDJSON(bytes.NewReader(data), 100)
		if err != nil || len(wrs) != 100 {
			t.Fatalf("decoded %d, err=%v", len(wrs), err)
		}
	})
	t.Logf("allocs/page: fresh decoder %.0f, pooled %.0f", fresh, pooled)
	if pooled >= fresh {
		t.Fatalf("pooled decode allocates %.0f/page, fresh decoder %.0f/page — pooling regressed", pooled, fresh)
	}
}
