package httpkv

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/obs"
)

// startStreamListenerFor boots a metrics-instrumented binary listener
// so tests can assert which transport scans actually rode.
func startStreamListenerFor(t *testing.T, core *kvwire.Core) (string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := kvwire.NewServer(core, kvwire.ServerOptions{Metrics: reg})
	go ws.Serve(ln)
	t.Cleanup(func() { ws.Close() })
	return ln.Addr().String(), reg
}

func loadFixtureKeys(t *testing.T, c *Client, n int) {
	t.Helper()
	ctx := context.Background()
	ops := make([]db.BatchOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, db.BatchOp{
			Op: db.OpInsert, Table: "t", Key: fmt.Sprintf("user%05d", i),
			Values: rec(fmt.Sprintf("v%05d", i)),
		})
	}
	for _, res := range c.ExecBatch(ctx, ops) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

func checkScan(t *testing.T, got []db.KV, start, count int) {
	t.Helper()
	if len(got) != count {
		t.Fatalf("scan returned %d records, want %d", len(got), count)
	}
	for i, kv := range got {
		wantKey := fmt.Sprintf("user%05d", start+i)
		if kv.Key != wantKey || string(kv.Record["f"]) != fmt.Sprintf("v%05d", start+i) {
			t.Fatalf("record %d = %s/%q, want %s", i, kv.Key, kv.Record["f"], wantKey)
		}
	}
}

// TestScanInteropNewClientNewServer: once the stream capability is
// sniffed, scans ride chunked frames — the HTTP request count freezes
// while the server's chunk counter moves — with results identical to
// the HTTP path.
func TestScanInteropNewClientNewServer(t *testing.T) {
	ctx := context.Background()
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	core := kvwire.NewCore(store, nil, 0)
	addr, reg := startStreamListenerFor(t, core)
	var httpCount int64
	inner := NewServerWithOptions(store, ServerOptions{Core: core, WireAddr: addr})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpCount++
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c := newWireClient(t, srv.URL, nil)
	if err := c.Insert(ctx, "t", "sniff", rec("x")); err != nil { // primes the capability sniff
		t.Fatal(err)
	}
	if !c.caps.wireStream.Load() {
		t.Fatal("stream capability not sniffed from X-KV-Wire-Stream")
	}
	loadFixtureKeys(t, c, 600)
	base := httpCount

	got, err := c.Scan(ctx, "t", "user00100", 400, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScan(t, got, 100, 400)
	if httpCount != base {
		t.Errorf("HTTP requests grew %d -> %d; scan did not ride the stream", base, httpCount)
	}
	if n := reg.Counter("kvwire_scan_chunks_total").Value(); n == 0 {
		t.Error("kvwire_scan_chunks_total = 0; scan served without chunk frames?")
	}
}

// TestScanInteropNewClientOldWireServer: a server whose binary
// listener predates streams advertises X-KV-Wire without
// X-KV-Wire-Stream. Scans must stay on HTTP — the client never sends
// stream frames the listener would reject — while request/response
// ops still ride the wire.
func TestScanInteropNewClientOldWireServer(t *testing.T) {
	ctx := context.Background()
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	core := kvwire.NewCore(store, nil, 0)
	addr, reg := startStreamListenerFor(t, core)
	inner := NewServerWithOptions(store, ServerOptions{Core: core, WireAddr: addr})
	// Strip the stream advertisement, faking a request/response-only
	// wire build.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(&headerStripper{ResponseWriter: w, strip: WireStreamHeader}, r)
	}))
	t.Cleanup(srv.Close)

	c := newWireClient(t, srv.URL, nil)
	if err := c.Insert(ctx, "t", "sniff", rec("x")); err != nil {
		t.Fatal(err)
	}
	if c.caps.wireAddr.Load() == nil {
		t.Fatal("wire address not sniffed")
	}
	if c.caps.wireStream.Load() {
		t.Fatal("stream capability latched without the advertisement")
	}
	loadFixtureKeys(t, c, 100)

	got, err := c.Scan(ctx, "t", "user00000", 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScan(t, got, 0, 50)
	if n := reg.Counter("kvwire_scan_chunks_total").Value(); n != 0 {
		t.Errorf("kvwire_scan_chunks_total = %d; client streamed against a non-advertising server", n)
	}
	// The request/response path still negotiated.
	if c.caps.wireEp.Load() == nil {
		t.Error("request/response wire path should still be live")
	}
}

// headerStripper deletes one response header at write time.
type headerStripper struct {
	http.ResponseWriter
	strip string
}

func (h *headerStripper) WriteHeader(code int) {
	h.Header().Del(h.strip)
	h.ResponseWriter.WriteHeader(code)
}

// TestScanInteropOldClientNewServer: with the binary path disabled the
// scan serves over HTTP against a stream-capable server, chunk-free.
func TestScanInteropOldClientNewServer(t *testing.T) {
	ctx := context.Background()
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	core := kvwire.NewCore(store, nil, 0)
	addr, reg := startStreamListenerFor(t, core)
	srv := httptest.NewServer(NewServerWithOptions(store, ServerOptions{Core: core, WireAddr: addr}))
	t.Cleanup(srv.Close)

	c := newWireClient(t, srv.URL, map[string]string{"rawhttp.wire": WireModeOff})
	loadFixtureKeys(t, c, 100)
	got, err := c.Scan(ctx, "t", "user00000", 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScan(t, got, 0, 80)
	if n := reg.Counter("kvwire_scan_chunks_total").Value(); n != 0 {
		t.Errorf("kvwire_scan_chunks_total = %d with rawhttp.wire=off", n)
	}
	if c.caps.wireEp.Load() != nil {
		t.Error("wire endpoint created despite rawhttp.wire=off")
	}
}

// TestScanInteropNewClientNoWireServer: no advertisement at all —
// scans serve over HTTP, full semantics (the fourth pairing).
func TestScanInteropNewClientNoWireServer(t *testing.T) {
	ctx := context.Background()
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	c := newWireClient(t, srv.URL, nil)
	loadFixtureKeys(t, c, 100)
	got, err := c.Scan(ctx, "t", "user00010", 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScan(t, got, 10, 60)
	if c.caps.wireEp.Load() != nil {
		t.Error("client invented a wire endpoint no server advertised")
	}
}

// upgradeClusterNodeToStreams mounts a stream-capable wire listener on
// one in-process cluster node, returning the listener's registry.
func upgradeClusterNodeToStreams(t *testing.T, tn *clusterNode) *obs.Registry {
	t.Helper()
	core := kvwire.NewCore(tn.store, tn.state, 0)
	addr, reg := startStreamListenerFor(t, core)
	tn.h.Store(NewServerWithOptions(tn.store, ServerOptions{
		Cluster: tn.state, Core: core, WireAddr: addr,
	}))
	return reg
}

// TestRouterScanStreamsAcrossFleet: a routed scan against a
// stream-capable fleet merges per-node chunk streams — every node's
// chunk counter moves, and the merged order and values match the
// key space.
func TestRouterScanStreamsAcrossFleet(t *testing.T) {
	nodes := startTestCluster(t, 3, 12)
	regs := make([]*obs.Registry, len(nodes))
	for i, tn := range nodes {
		regs[i] = upgradeClusterNodeToStreams(t, tn)
	}
	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()

	n := 400
	ops := make([]db.BatchOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, db.BatchOp{
			Op: db.OpInsert, Table: "t", Key: fmt.Sprintf("user%05d", i),
			Values: rec(fmt.Sprintf("v%05d", i)),
		})
	}
	for _, res := range r.ExecBatch(ctx, ops) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	got, err := r.Scan(ctx, "t", "user00050", 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScan(t, got, 50, 300)
	for i, reg := range regs {
		if c := reg.Counter("kvwire_scan_chunks_total").Value(); c == 0 {
			t.Errorf("node %d served no scan chunks; its slice of the merge did not stream", i)
		}
	}
}

// TestMigrateSlotOverWire: the migration copy rides scan/ingest frames
// when both ends advertise streams — the destination's streamed-ingest
// counter moves, records (and CAS-relevant versions) survive the move,
// and DisableWire forces the HTTP copy for the same migration shape.
func TestMigrateSlotOverWire(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	upgradeClusterNodeToStreams(t, a)
	regB := upgradeClusterNodeToStreams(t, b)
	ctx := context.Background()
	m := a.state.Map()

	ca := NewClient(a.URL, a.srv.Client())
	cb := NewClient(b.URL, b.srv.Client())
	keys := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("user%05d", i)
		keys = append(keys, k)
		cl := ca
		if owner, _ := m.Owner(k); owner == b.URL {
			cl = cb
		}
		if err := cl.Insert(ctx, "t", k, rec("v-"+k)); err != nil {
			t.Fatalf("insert %s: %v", k, err)
		}
	}
	// Find a slot node a owns that actually holds keys.
	slot := -1
	for _, k := range keys {
		if owner, _ := m.Owner(k); owner == a.URL {
			slot = m.SlotOf(k)
			break
		}
	}
	if slot < 0 {
		t.Fatal("no key landed on node a")
	}

	next, err := MigrateSlot(ctx, a.srv.Client(), m, slot, b.URL)
	if err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	ingested := regB.Counter("kvwire_ingest_records_total").Value()
	if ingested == 0 {
		t.Error("kvwire_ingest_records_total = 0 on destination; copy did not ride the wire")
	}
	// Every key in the moved slot now serves from b with its value.
	moved := 0
	for _, k := range keys {
		if next.SlotOf(k) != slot {
			continue
		}
		moved++
		got, err := cb.Read(ctx, "t", k, nil)
		if err != nil || string(got["f"]) != "v-"+k {
			t.Fatalf("post-migration read %s from dest: %v %v", k, got, err)
		}
	}
	if moved == 0 {
		t.Fatal("migrated slot held no test keys")
	}

	// Migrate the slot back with the wire disabled: the HTTP copy path
	// must still work and the streamed-ingest counter must not move.
	base := regB.Counter("kvwire_ingest_records_total").Value()
	if _, err := MigrateSlotOpts(ctx, a.srv.Client(), next, slot, a.URL, MigrateOptions{DisableWire: true}); err != nil {
		t.Fatalf("MigrateSlotOpts(DisableWire): %v", err)
	}
	if n := regB.Counter("kvwire_ingest_records_total").Value(); n != base {
		t.Errorf("streamed-ingest counter moved %d -> %d despite DisableWire", base, n)
	}
	for _, k := range keys {
		if next.SlotOf(k) != slot {
			continue
		}
		got, err := ca.Read(ctx, "t", k, nil)
		if err != nil || string(got["f"]) != "v-"+k {
			t.Fatalf("post-rollback read %s from source: %v %v", k, got, err)
		}
	}
}
