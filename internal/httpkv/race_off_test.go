//go:build !race

package httpkv

const raceEnabled = false
