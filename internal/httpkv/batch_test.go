package httpkv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/properties"
)

// newLegacyServer builds a server with the pre-batch wire surface
// (no /v1/batch route), standing in for an old deployment in interop
// tests.
func newLegacyServer(store kvstore.Engine) *Server {
	s := &Server{store: store, core: kvwire.NewCore(store, nil, 0), mux: http.NewServeMux(), opts: ServerOptions{}.withDefaults()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/", s.handleRecord)
	return s
}

// slowEngine delays batch execution so admission-control tests can
// hold a request in flight deterministically.
type slowEngine struct {
	kvstore.Engine
	delay   time.Duration
	entered chan struct{} // closed once the first batch starts (optional)
	once    sync.Once
}

func (e *slowEngine) BatchGet(reqs []kvstore.GetReq) []kvstore.GetResult {
	if e.entered != nil {
		e.once.Do(func() { close(e.entered) })
	}
	time.Sleep(e.delay)
	return e.Engine.BatchGet(reqs)
}

func (e *slowEngine) BatchApply(muts []kvstore.Mutation) []kvstore.MutResult {
	if e.entered != nil {
		e.once.Do(func() { close(e.entered) })
	}
	time.Sleep(e.delay)
	return e.Engine.BatchApply(muts)
}

func TestBatchRoundTrip(t *testing.T) {
	ctx := context.Background()
	store, c, done := newPair(t)
	defer done()
	if _, err := store.Put("t", "a", map[string][]byte{"f": []byte("v1"), "g": []byte("keep")}); err != nil {
		t.Fatal(err)
	}

	res := c.ExecBatch(ctx, []db.BatchOp{
		{Op: db.OpRead, Table: "t", Key: "a", Fields: []string{"f"}},
		{Op: db.OpInsert, Table: "t", Key: "b", Values: db.Record{"f": []byte("v2")}},
		{Op: db.OpUpdate, Table: "t", Key: "a", Values: db.Record{"f": []byte("v1b")}},
		{Op: db.OpRead, Table: "t", Key: "missing"},
		{Op: db.OpUpdate, Table: "t", Key: "nope", Values: db.Record{"f": []byte("x")}},
		{Op: db.OpDelete, Table: "t", Key: "b"},
		{Op: db.OpScan, Table: "t", Key: "a"}, // not batchable, client-side error
	})
	if res[0].Err != nil || string(res[0].Record["f"]) != "v1" || len(res[0].Record) != 1 {
		t.Fatalf("item 0 (projected read): %+v", res[0])
	}
	if res[1].Err != nil || res[2].Err != nil || res[5].Err != nil {
		t.Fatalf("write items: %v %v %v", res[1].Err, res[2].Err, res[5].Err)
	}
	for _, i := range []int{3, 4} {
		if !errors.Is(res[i].Err, db.ErrNotFound) {
			t.Fatalf("item %d: got %v, want ErrNotFound", i, res[i].Err)
		}
	}
	if !errors.Is(res[6].Err, db.ErrNotSupported) {
		t.Fatalf("item 6: got %v, want ErrNotSupported", res[6].Err)
	}
	// The interleaved order held: the update (item 2) ran after the
	// read (item 0), and the delete removed item 1's insert.
	rec, err := store.Get("t", "a")
	if err != nil || string(rec.Fields["f"]) != "v1b" || string(rec.Fields["g"]) != "keep" {
		t.Fatalf("after batch: %v %v", rec, err)
	}
	if _, err := store.Get("t", "b"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

// TestBatchWireConditionals drives the raw NDJSON protocol, checking
// per-item statuses and ETags without the client's translation.
func TestBatchWireConditionals(t *testing.T) {
	store, c, done := newPair(t)
	defer done()
	if _, err := store.Put("t", "a", map[string][]byte{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}

	body := strings.Join([]string{
		`{"op":"put","table":"t","key":"a","fields":{"f":"eA=="},"if_none_match":"*"}`,
		`{"op":"put","table":"t","key":"a","fields":{"f":"eA=="},"if_match":"1"}`,
		`{"op":"get","table":"t","key":"a"}`,
		`{"op":"delete","table":"t","key":"a","if_match":"999"}`,
		`{"op":"frobnicate","table":"t","key":"a"}`,
	}, "\n")
	resp, err := c.hc.Post(c.base+"/v1/batch", NDJSONContentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, NDJSONContentType) {
		t.Fatalf("Content-Type %q", got)
	}
	var results []wireBatchResult
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r wireBatchResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	wantStatus := []int{http.StatusPreconditionFailed, http.StatusOK, http.StatusOK, http.StatusPreconditionFailed, http.StatusBadRequest}
	if len(results) != len(wantStatus) {
		t.Fatalf("got %d results, want %d", len(results), len(wantStatus))
	}
	for i, want := range wantStatus {
		if results[i].Status != want {
			t.Errorf("item %d: status %d, want %d (%s)", i, results[i].Status, want, results[i].Error)
		}
	}
	// The CAS put bumped the version; the get returns the new ETag.
	if results[1].ETag != "2" || results[2].ETag != "2" {
		t.Errorf("etags %q %q, want 2 2", results[1].ETag, results[2].ETag)
	}
	if string(results[2].Fields["f"]) != "x" {
		t.Errorf("get fields %v", results[2].Fields)
	}
}

func TestBatchAdmissionControl(t *testing.T) {
	entered := make(chan struct{})
	eng := &slowEngine{Engine: kvstore.OpenMemory(), delay: 750 * time.Millisecond, entered: entered}
	srv := httptest.NewServer(NewServerWithOptions(eng, ServerOptions{MaxInflightBatches: 1}))
	defer srv.Close()
	defer eng.Close()
	c := NewClient(srv.URL, srv.Client())
	if err := c.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	c.retry429 = 0 // this test asserts the raw 429 surface; retry has its own test

	ops := []db.BatchOp{{Op: db.OpRead, Table: "t", Key: "k"}}
	first := make(chan []db.BatchResult)
	go func() { first <- c.ExecBatch(context.Background(), ops) }()
	<-entered // the slow batch now owns the one admission slot

	// Wire level: immediate 429 with a Retry-After hint, no queueing.
	resp, err := c.hc.Post(srv.URL+"/v1/batch", NDJSONContentType,
		strings.NewReader(`{"op":"get","table":"t","key":"k"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}

	// Client level: the rejection maps to ErrThrottled per item.
	res := c.ExecBatch(context.Background(), ops)
	if !errors.Is(res[0].Err, db.ErrThrottled) {
		t.Fatalf("second batch: got %v, want ErrThrottled", res[0].Err)
	}
	if res := <-first; !errors.Is(res[0].Err, db.ErrNotFound) {
		t.Fatalf("first batch: got %v, want ErrNotFound (empty store)", res[0].Err)
	}
}

func TestBatchDeadlineExpired(t *testing.T) {
	eng := &slowEngine{Engine: kvstore.OpenMemory(), delay: 100 * time.Millisecond}
	srv := httptest.NewServer(NewServerWithOptions(eng, ServerOptions{}))
	defer srv.Close()
	defer eng.Close()

	// Two same-kind runs split by a mutation: the first run eats the
	// deadline, the rest must report 504 per item instead of running.
	body := strings.Join([]string{
		`{"op":"get","table":"t","key":"a"}`,
		`{"op":"put","table":"t","key":"b","fields":{"f":"eA=="}}`,
	}, "\n")
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/batch", strings.NewReader(body))
	req.Header.Set(DeadlineHeader, "30")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var results []wireBatchResult
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r wireBatchResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Status != http.StatusNotFound {
		t.Errorf("item 0 ran before the deadline: status %d", results[0].Status)
	}
	if results[1].Status != http.StatusGatewayTimeout {
		t.Errorf("item 1: status %d, want 504", results[1].Status)
	}
	// The abandoned put never reached the store.
	if _, err := eng.Get("t", "b"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("abandoned put landed: %v", err)
	}

	// A malformed deadline header is rejected outright.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/v1/t/a", nil)
	req.Header.Set(DeadlineHeader, "soon")
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad deadline header: status %d, want 400", resp2.StatusCode)
	}
}

func TestServerRejectsMalformedAndOversized(t *testing.T) {
	store := kvstore.OpenMemory()
	defer store.Close()
	srv := httptest.NewServer(NewServerWithOptions(store, ServerOptions{MaxBodyBytes: 256}))
	defer srv.Close()
	hc := srv.Client()

	post := func(path, body string, hdr map[string]string, method string) int {
		req, _ := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Malformed JSON bodies → 400.
	if got := post("/v1/t/k", "{not json", nil, http.MethodPut); got != http.StatusBadRequest {
		t.Errorf("malformed put: %d, want 400", got)
	}
	if got := post("/v1/batch", "{not json", nil, http.MethodPost); got != http.StatusBadRequest {
		t.Errorf("malformed batch: %d, want 400", got)
	}
	if got := post("/v1/batch", "", nil, http.MethodPost); got != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", got)
	}
	// Missing fields → 400.
	if got := post("/v1/t/k", `{"version":1}`, nil, http.MethodPut); got != http.StatusBadRequest {
		t.Errorf("missing fields: %d, want 400", got)
	}
	// Unknown methods → 405.
	if got := post("/v1/t/k", "", nil, http.MethodPost); got != http.StatusMethodNotAllowed {
		t.Errorf("POST on record: %d, want 405", got)
	}
	if got := post("/v1/batch", "", nil, http.MethodGet); got != http.StatusMethodNotAllowed {
		t.Errorf("GET on batch: %d, want 405", got)
	}
	// Oversized bodies → 413 on both routes.
	big := `{"fields":{"f":"` + strings.Repeat("QUFB", 200) + `"}}`
	if got := post("/v1/t/k", big, nil, http.MethodPut); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized put: %d, want 413", got)
	}
	if got := post("/v1/batch", `{"op":"put","table":"t","key":"k",`+big[1:], nil, http.MethodPost); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d, want 413", got)
	}
	// Bad path → 400.
	if got := post("/v1/", "", nil, http.MethodGet); got != http.StatusBadRequest {
		t.Errorf("bad path: %d, want 400", got)
	}
}

// TestBatchFallbackToLegacyServer checks a batch-speaking client
// against a pre-batch server: the first attempt discovers the missing
// route and every batch — including later ones — is answered through
// the single-op protocol with identical semantics.
func TestBatchFallbackToLegacyServer(t *testing.T) {
	ctx := context.Background()
	store := kvstore.OpenMemory()
	defer store.Close()
	srv := httptest.NewServer(newLegacyServer(store))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if err := c.Init(properties.New()); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		res := c.ExecBatch(ctx, []db.BatchOp{
			{Op: db.OpInsert, Table: "t", Key: fmt.Sprintf("k%d", round), Values: db.Record{"f": []byte("v")}},
			{Op: db.OpRead, Table: "t", Key: fmt.Sprintf("k%d", round)},
			{Op: db.OpRead, Table: "t", Key: "missing"},
		})
		if res[0].Err != nil || res[1].Err != nil || string(res[1].Record["f"]) != "v" {
			t.Fatalf("round %d: %+v %+v", round, res[0], res[1])
		}
		if !errors.Is(res[2].Err, db.ErrNotFound) {
			t.Fatalf("round %d item 2: %v", round, res[2].Err)
		}
	}
	if !c.caps.batchUnsupported.Load() {
		t.Error("fallback latch not set after talking to a legacy server")
	}

	// The legacy array scan still parses through the NDJSON-asking
	// client.
	kvs, err := c.Scan(ctx, "t", "", 10, nil)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("legacy scan: %v %v", kvs, err)
	}
}

// TestScanNDJSONStreaming checks the new server streams scans when
// asked and that the client round-trips them.
func TestScanNDJSONStreaming(t *testing.T) {
	ctx := context.Background()
	store, c, done := newPair(t)
	defer done()
	for i := 0; i < 5; i++ {
		if _, err := store.Put("t", fmt.Sprintf("k%d", i), map[string][]byte{"f": []byte{byte('0' + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, c.base+"/v1/t?start=&count=10", nil)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, NDJSONContentType) {
		t.Fatalf("Content-Type %q, want NDJSON", got)
	}
	kvs, err := c.Scan(ctx, "t", "", 10, nil)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("ndjson scan: %d records, err %v", len(kvs), err)
	}
	for i, kv := range kvs {
		if kv.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("scan order: %v", kvs)
		}
	}
}

// TestClientMaxInflight checks the client-side pipelining bound
// blocks the excess request rather than opening more connections.
func TestClientMaxInflight(t *testing.T) {
	release := make(chan struct{})
	var inflight, peak int
	var mu sync.Mutex
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		inflight++
		if inflight > peak {
			peak = inflight
		}
		mu.Unlock()
		<-release
		mu.Lock()
		inflight--
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":1,"fields":{}}`))
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	p := properties.New()
	p.Set("rawhttp.max_inflight", "2")
	if err := c.Init(p); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Read(context.Background(), "t", "k", nil)
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Fatalf("peak in-flight %d, want <= 2", peak)
	}
	if peak == 0 {
		t.Fatal("no requests observed")
	}
}
