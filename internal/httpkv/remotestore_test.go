package httpkv_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strconv"
	"testing"

	"ycsbt/internal/httpkv"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/txn"
)

func newRemote(t *testing.T, name string) (*httpkv.RemoteStore, *kvstore.Store) {
	t.Helper()
	store := kvstore.OpenMemory()
	srv := httptest.NewServer(httpkv.NewServer(store))
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return httpkv.NewRemoteStore(name, srv.URL, srv.Client()), store
}

func TestRemoteStoreVersionedOps(t *testing.T) {
	ctx := context.Background()
	r, _ := newRemote(t, "remote")
	if r.Name() != "remote" {
		t.Errorf("Name = %q", r.Name())
	}
	v, err := r.Put(ctx, "t", "k", map[string][]byte{"f": []byte("a")}, kvstore.MustNotExist)
	if err != nil || v != 1 {
		t.Fatalf("create = %d, %v", v, err)
	}
	if _, err := r.Put(ctx, "t", "k", map[string][]byte{"f": []byte("b")}, 99); !errors.Is(err, kvstore.ErrVersionMismatch) {
		t.Errorf("stale CAS = %v", err)
	}
	v, err = r.Put(ctx, "t", "k", map[string][]byte{"f": []byte("b")}, 1)
	if err != nil || v != 2 {
		t.Fatalf("CAS = %d, %v", v, err)
	}
	rec, err := r.Get(ctx, "t", "k")
	if err != nil || rec.Version != 2 || string(rec.Fields["f"]) != "b" {
		t.Fatalf("Get = %+v, %v", rec, err)
	}
	kvs, err := r.Scan(ctx, "t", "", 10)
	if err != nil || len(kvs) != 1 || kvs[0].Record.Version != 2 {
		t.Fatalf("Scan = %+v, %v", kvs, err)
	}
	if err := r.Delete(ctx, "t", "k", 1); !errors.Is(err, kvstore.ErrVersionMismatch) {
		t.Errorf("stale delete = %v", err)
	}
	if err := r.Delete(ctx, "t", "k", 2); err != nil {
		t.Errorf("delete = %v", err)
	}
	if _, err := r.Get(ctx, "t", "k"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("Get deleted = %v", err)
	}
}

func TestTransactionAcrossRemoteStores(t *testing.T) {
	// A single client-coordinated transaction spanning two separate
	// HTTP servers — the paper's heterogeneous multi-region scenario,
	// over actual network sockets.
	ctx := context.Background()
	east, eastInner := newRemote(t, "east")
	west, westInner := newRemote(t, "west")

	m, err := txn.NewManager(txn.Options{}, east, west)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *txn.Txn) error {
		if err := tx.Insert("east", "acct", "a", map[string][]byte{"bal": []byte("100")}); err != nil {
			return err
		}
		return tx.Insert("west", "acct", "b", map[string][]byte{"bal": []byte("100")})
	}); err != nil {
		t.Fatal(err)
	}
	// Cross-server transfer.
	if err := m.RunInTxn(ctx, 3, func(tx *txn.Txn) error {
		fa, err := tx.Read(ctx, "east", "acct", "a")
		if err != nil {
			return err
		}
		fb, err := tx.Read(ctx, "west", "acct", "b")
		if err != nil {
			return err
		}
		na, _ := strconv.Atoi(string(fa["bal"]))
		nb, _ := strconv.Atoi(string(fb["bal"]))
		if err := tx.Write("east", "acct", "a", map[string][]byte{"bal": []byte(strconv.Itoa(na - 25))}); err != nil {
			return err
		}
		return tx.Write("west", "acct", "b", map[string][]byte{"bal": []byte(strconv.Itoa(nb + 25))})
	}); err != nil {
		t.Fatal(err)
	}

	ra, err := eastInner.Get("acct", "a")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := westInner.Get("acct", "b")
	if err != nil {
		t.Fatal(err)
	}
	if string(ra.Fields["bal"]) != "75" || string(rb.Fields["bal"]) != "125" {
		t.Errorf("cross-server transfer: a=%s b=%s", ra.Fields["bal"], rb.Fields["bal"])
	}
	// No transaction debris on either server.
	if eastInner.Len("_tsr")+westInner.Len("_tsr") != 0 {
		t.Error("TSR left behind on a remote store")
	}
	for _, rec := range []*kvstore.VersionedRecord{ra, rb} {
		for f := range rec.Fields {
			if len(f) >= 5 && f[:5] == "_txn:" {
				t.Errorf("metadata %s left on committed record", f)
			}
		}
	}
}

func TestRemoteStoreConflictAcrossClients(t *testing.T) {
	// Two transaction managers on separate "client hosts" sharing the
	// same remote store: first committer wins, second aborts.
	ctx := context.Background()
	remote, inner := newRemote(t, "shared")
	m1, err := txn.NewManager(txn.Options{}, remote)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := txn.NewManager(txn.Options{}, remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.RunInTxn(ctx, 0, func(tx *txn.Txn) error {
		return tx.Insert("shared", "t", "k", map[string][]byte{"n": []byte("0")})
	}); err != nil {
		t.Fatal(err)
	}
	t1, _ := m1.Begin(ctx)
	t2, _ := m2.Begin(ctx)
	if _, err := t1.Read(ctx, "shared", "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(ctx, "shared", "t", "k"); err != nil {
		t.Fatal(err)
	}
	t1.Write("shared", "t", "k", map[string][]byte{"n": []byte("1")})
	t2.Write("shared", "t", "k", map[string][]byte{"n": []byte("2")})
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, txn.ErrConflict) {
		t.Errorf("second committer across hosts = %v", err)
	}
	rec, _ := inner.Get("t", "k")
	if string(rec.Fields["n"]) != "1" {
		t.Errorf("final = %s", rec.Fields["n"])
	}
}
