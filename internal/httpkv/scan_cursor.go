package httpkv

import (
	"context"
	"errors"
	"net/http"

	"ycsbt/internal/kvwire"
)

// errScanRescan marks a scan round the fleet invalidated mid-flight —
// a stream answered 409 (the shard map changed under it) or a wire
// connection died partway through a chunk sequence. Scans are
// idempotent, so the router's answer is always the same: refetch the
// map, back off, scan again.
var errScanRescan = errors.New("httpkv: scan raced a shard map change; rescan")

// scanCursor yields one node's sorted scan results for the router's
// k-way merge. Over a stream-capable wire endpoint it is lazy: records
// are pulled chunk by chunk as the merge consumes them, so a node
// whose keys mostly lose the merge race buffers at most a credit
// window of chunks instead of materializing the full count — and
// close() cancels the server's producer as soon as the merge has
// enough. The HTTP fallback keeps the old shape: one eager full page.
type scanCursor struct {
	ctx    context.Context
	stream *kvwire.ScanStream // nil on the HTTP path
	page   []wireRecord
	idx    int
	ver    int64 // shard map version the node scanned under
	cur    wireRecord
}

// openScanCursor opens one node's side of a fleet scan, streaming when
// the endpoint negotiated it and falling back to one eager HTTP page
// otherwise (same per-call fallback shape as scanStream).
func (c *Client) openScanCursor(ctx context.Context, table, start string, count int) (*scanCursor, error) {
	if ep, ok := c.wireStreamEndpoint(); ok {
		s, err := ep.Scan(ctx, &kvwire.ScanRequest{Table: table, Start: start, Count: count, Slot: -1})
		if err == nil {
			return &scanCursor{ctx: ctx, stream: s}, nil
		}
		if errors.Is(err, kvwire.ErrUnavailable) {
			c.caps.wireUnsupported.Store(true)
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Transient open failure: HTTP for this call only.
	}
	page, ver, err := c.scanWireHTTP(ctx, table, start, count)
	if err != nil {
		return nil, err
	}
	return &scanCursor{ctx: ctx, page: page, ver: ver}, nil
}

// next returns the node's next record, or (nil, nil) when the cursor
// is exhausted. The returned pointer is valid until the next call.
func (sc *scanCursor) next() (*wireRecord, error) {
	if sc.stream == nil {
		if sc.idx >= len(sc.page) {
			return nil, nil
		}
		wr := &sc.page[sc.idx]
		sc.idx++
		return wr, nil
	}
	if sc.stream.Next() {
		rec := sc.stream.Record()
		sc.ver = sc.stream.MapVersion()
		sc.cur = wireRecord{
			Key:      rec.Key,
			Version:  rec.Version,
			CommitTS: rec.CommitTS,
			Deleted:  rec.Deleted,
			Fields:   rec.Fields,
		}
		return &sc.cur, nil
	}
	sc.ver = sc.stream.MapVersion()
	err := sc.stream.Err()
	if err == nil {
		return nil, nil
	}
	var re *kvwire.RequestError
	switch {
	case errors.As(err, &re) && re.Status == http.StatusConflict:
		// The shard map changed under the node's scan.
		return nil, errScanRescan
	case errors.As(err, &re):
		return nil, wireResultErr(kvwire.Result{Status: re.Status, Err: re.Msg})
	case sc.ctx.Err() != nil:
		return nil, sc.ctx.Err()
	default:
		// Connection died mid-stream: rescan (idempotent).
		return nil, errScanRescan
	}
}

// close cancels a still-running stream so the server stops producing;
// a no-op for exhausted streams and HTTP pages.
func (sc *scanCursor) close() {
	if sc.stream != nil {
		sc.stream.Close()
	}
}
