package httpkv

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
)

// MigrateSlot end to end, in process: the moved slot's records appear
// on the destination with versions and commit timestamps preserved,
// the source starts answering 410 with the new owner, and every node
// converges on the successor map.
func TestMigrateSlotMovesData(t *testing.T) {
	nodes := startTestCluster(t, 3, 12)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	ca := NewClient(a.URL, a.srv.Client())

	// Load keys onto a, remembering those in the slot we'll move.
	slot := m.SlotsOf(a.URL)[0]
	var inSlot, elsewhere []string
	for i := 0; len(inSlot) < 20 || len(elsewhere) < 20; i++ {
		k := fmt.Sprintf("user%05d", i)
		owner, s := m.Owner(k)
		if owner != a.URL {
			continue
		}
		if err := ca.Insert(ctx, "usertable", k, rec("v-"+k)); err != nil {
			t.Fatal(err)
		}
		if s == slot {
			inSlot = append(inSlot, k)
		} else {
			elsewhere = append(elsewhere, k)
		}
	}
	// A second write gives moved records a version history worth
	// preserving (version 2, later commit ts).
	if err := ca.Update(ctx, "usertable", inSlot[0], rec("v2")); err != nil {
		t.Fatal(err)
	}
	wantRec, err := a.store.Get("usertable", inSlot[0])
	if err != nil {
		t.Fatal(err)
	}

	next, err := MigrateSlot(ctx, a.srv.Client(), m, slot, b.URL)
	if err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	if next.Version != m.Version+1 || next.OwnerOfSlot(slot) != b.URL {
		t.Fatalf("successor map: v%d owner=%s", next.Version, next.OwnerOfSlot(slot))
	}
	for _, tn := range nodes {
		if got := tn.state.Map().Version; got != next.Version {
			t.Errorf("node %s map version = %d, want %d", tn.URL, got, next.Version)
		}
	}

	// Destination serves the moved keys, history intact.
	cb := NewClient(b.URL, b.srv.Client())
	for _, k := range inSlot {
		if _, err := cb.Read(ctx, "usertable", k, nil); err != nil {
			t.Fatalf("read %s on destination: %v", k, err)
		}
	}
	got, err := b.store.Get("usertable", inSlot[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != wantRec.Version || got.CommitTS != wantRec.CommitTS {
		t.Errorf("moved record: version=%d ts=%d, want version=%d ts=%d",
			got.Version, got.CommitTS, wantRec.Version, wantRec.CommitTS)
	}

	// Source redirects the moved keys and still serves the rest.
	var me *cluster.MovedError
	if _, err := ca.Read(ctx, "usertable", inSlot[0], nil); !errors.As(err, &me) {
		t.Fatalf("read of moved key on source: got %v, want MovedError", err)
	}
	if me.Owner != b.URL || me.MapVersion != next.Version {
		t.Errorf("source moved hints: owner=%q v=%d", me.Owner, me.MapVersion)
	}
	for _, k := range elsewhere {
		if _, err := ca.Read(ctx, "usertable", k, nil); err != nil {
			t.Fatalf("read of unmoved key %s on source: %v", k, err)
		}
	}

	// Writes continue on the destination: the slot thawed with the move.
	if err := cb.Update(ctx, "usertable", inSlot[0], rec("v3")); err != nil {
		t.Errorf("write to migrated slot on destination: %v", err)
	}
}

// A migration retry after a mid-copy failure must be harmless: the
// records it re-ships are skipped by the destination's ingest.
func TestMigrateSlotIdempotentCopy(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	ca := NewClient(a.URL, a.srv.Client())

	slot := m.SlotsOf(a.URL)[0]
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("user%05d", i)
		if _, s := m.Owner(k); s == slot {
			key = k
			break
		}
	}
	if err := ca.Insert(ctx, "usertable", key, rec("v1")); err != nil {
		t.Fatal(err)
	}
	// Simulate the copy half of a failed earlier attempt.
	ts, err := fetchSnapshotTS(ctx, a.srv.Client(), a.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := copySlot(ctx, a.srv.Client(), a.URL, b.URL, "usertable", slot, ts); err != nil {
		t.Fatal(err)
	}
	// The real migration re-copies the same records, then cuts over.
	if _, err := MigrateSlot(ctx, a.srv.Client(), m, slot, b.URL); err != nil {
		t.Fatalf("retry migration: %v", err)
	}
	got, err := b.store.Get("usertable", key)
	if err != nil || string(got.Fields["f"]) != "v1" || got.Version != 1 {
		t.Errorf("after idempotent re-copy: %+v %v", got, err)
	}
}

// A slot that migrates away and back must not resurrect keys deleted
// while it lived elsewhere: the source keeps its hidden pre-migration
// records, so the return copy has to carry the new owner's tombstones
// over them.
func TestMigrateBackPreservesDeletes(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	hc := a.srv.Client()
	ca := NewClient(a.URL, hc)

	slot := m.SlotsOf(a.URL)[0]
	var keys []string
	for i := 0; len(keys) < 2; i++ {
		k := fmt.Sprintf("user%05d", i)
		if _, s := m.Owner(k); s == slot {
			keys = append(keys, k)
		}
	}
	doomed, kept := keys[0], keys[1]
	for _, k := range keys {
		if err := ca.Insert(ctx, "usertable", k, rec("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	next, err := MigrateSlot(ctx, hc, m, slot, b.URL)
	if err != nil {
		t.Fatalf("migrate a→b: %v", err)
	}
	cb := NewClient(b.URL, hc)
	if err := cb.Delete(ctx, "usertable", doomed); err != nil {
		t.Fatalf("delete on new owner: %v", err)
	}

	back, err := MigrateSlot(ctx, hc, next, slot, a.URL)
	if err != nil {
		t.Fatalf("migrate b→a: %v", err)
	}
	if back.OwnerOfSlot(slot) != a.URL {
		t.Fatalf("slot owner after return = %s", back.OwnerOfSlot(slot))
	}
	if _, err := ca.Read(ctx, "usertable", doomed, nil); !errors.Is(err, db.ErrNotFound) {
		t.Fatalf("deleted key resurrected after migrate-back: err=%v", err)
	}
	if got, err := ca.Read(ctx, "usertable", kept, nil); err != nil || string(got["f"]) != "v-"+kept {
		t.Fatalf("undeleted key after migrate-back: %v %v", got, err)
	}
	// The delete landed on a's engine as a tombstone version shadowing
	// the hidden pre-migration record, not as an untouched head.
	if _, err := a.store.Get("usertable", doomed); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("engine head read of deleted key: %v", err)
	}
}

// A migration whose map is already superseded somewhere in the fleet
// must abort in preflight, before freezing or copying anything.
func TestMigrateSlotAbortsWhenFleetAhead(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()

	// A concurrent migration already advanced b past m.
	ahead := m.Clone()
	ahead.Version++
	if _, err := b.state.Install(ahead); err != nil {
		t.Fatal(err)
	}

	slot := m.SlotsOf(a.URL)[0]
	if _, err := MigrateSlot(ctx, a.srv.Client(), m, slot, b.URL); err == nil {
		t.Fatal("migration built from a superseded map ran anyway")
	}
	if a.state.Frozen(slot) {
		t.Error("aborted preflight left the slot frozen")
	}
	if got := a.state.Map().Version; got != m.Version {
		t.Errorf("aborted preflight moved a's map to v%d", got)
	}
}

// Migration argument validation and the no-op case.
func TestMigrateSlotValidation(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a := nodes[0]
	m := a.state.Map()
	ctx := context.Background()

	if _, err := MigrateSlot(ctx, a.srv.Client(), m, 99, nodes[1].URL); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := MigrateSlot(ctx, a.srv.Client(), m, 0, "http://stranger:1"); err == nil {
		t.Error("non-member destination accepted")
	}
	slot := m.SlotsOf(a.URL)[0]
	same, err := MigrateSlot(ctx, a.srv.Client(), m, slot, a.URL)
	if err != nil || same.Version != m.Version {
		t.Errorf("self-migration should be a version-preserving no-op: %v v%d", err, same.Version)
	}
}
