package httpkv

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/properties"
)

// TestBatchResponseEncodePooled pins the server-side win of the
// encoder pool: writing a 16-item NDJSON response reuses the pooled
// bufio.Writer + json.Encoder, so the per-request allocation count is
// a small constant — not "one writer, one encoder, one buffer growth"
// per request as the unpooled path paid.
func TestBatchResponseEncodePooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	results := make([]wireBatchResult, 16)
	for i := range results {
		results[i] = wireBatchResult{Status: 200, ETag: "42"}
	}
	encode := func() {
		be := batchEncPool.Get().(*batchEncoder)
		be.bw.Reset(io.Discard)
		for _, r := range results {
			be.enc.Encode(r)
		}
		be.bw.Flush()
		be.bw.Reset(nil)
		batchEncPool.Put(be)
	}
	// encoding/json allocates once per Encode call regardless of the
	// writer, so the pooled floor is one alloc per item; the bound
	// leaves a little headroom but fails if per-request machinery
	// (writer, encoder, buffer growth) creeps back in.
	encode() // warm the pool
	if per := testing.AllocsPerRun(200, encode); per > float64(len(results))+4 {
		t.Errorf("pooled 16-item response encode = %.1f allocs, want ≤ %d", per, len(results)+4)
	}
}

// BenchmarkBatchPost measures one client ExecBatch round trip (16 ops)
// end to end — the pooled request-body buffer, ops slice, and response
// encoder all sit on this path; allocs/op is the number to watch.
func BenchmarkBatchPost(b *testing.B) {
	store := kvstore.OpenMemory()
	defer store.Close()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if err := c.Init(properties.New()); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	ops := make([]db.BatchOp, 16)
	for i := range ops {
		key := fmt.Sprintf("k%02d", i)
		if _, err := store.Put("t", key, map[string][]byte{"f": []byte("v")}); err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			ops[i] = db.BatchOp{Op: db.OpRead, Table: "t", Key: key}
		} else {
			ops[i] = db.BatchOp{Op: db.OpUpdate, Table: "t", Key: key, Values: db.Record{"f": []byte("w")}}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range c.ExecBatch(ctx, ops) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
