package httpkv

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/obs"
	"ycsbt/internal/properties"
)

// Router is the "cluster" DB binding: a client-side, coordinator-free
// router over a fleet of cluster-mode kvservers. It caches the
// versioned shard map, routes every single-key operation to the key's
// owner, fans /v1/batch envelopes out per owner node (merging results
// back in request order), and merges scans across the fleet. When a
// node answers 410 moved — its map is newer, or the router's copy is
// stale, or the key's slot is mid-migration — the router re-fetches
// the map and retries with bounded attempts and backoff, so a live
// rebalance costs clients a blip, not an error.
//
// Each node gets its own underlying Client with its own endpointCaps,
// so one old node in a mixed-version fleet falls back to single-op /
// head reads by itself without latching the capability off for every
// other node. Node clients share one pooled HTTP transport; the caps
// are keyed by node address and survive client rebuilds on map change.
//
// The router does not support the "as_of" property: commit timestamps
// are per-store logical clocks, so one timestamp has no meaning
// across node boundaries. Snapshot transactions against a cluster
// need a cluster-wide clock — future work, out of scope here.
type Router struct {
	db.NoTransactions
	hc *http.Client

	// retries bounds how many moved-error rounds one logical op may
	// pay; backoff is slept (doubling) between rounds while the fleet
	// converges on a new map.
	retries int
	backoff time.Duration

	cur atomic.Pointer[cluster.Map]

	mu    sync.RWMutex
	nodes map[string]*Client       // node address → its client
	caps  map[string]*endpointCaps // node address → capability latches

	// wireMode / wireConns propagate the rawhttp.wire settings to every
	// node client. The wire state itself lives in caps, keyed by node
	// address, so one old node in a mixed-version fleet degrades only
	// itself and the latch survives the per-node Client being rebuilt.
	wireMode  string
	wireConns int

	metrics *routerMetrics
}

// Router defaults; overridable via the cluster.* properties.
const (
	// DefaultRouterRetries is how many moved-error rounds one logical
	// operation survives before the router gives up. A migration's
	// unavailability window is two map installs long, so a handful of
	// short-backoff rounds rides it out with margin.
	DefaultRouterRetries = 8
	// DefaultRouterBackoff is the first between-round sleep; it
	// doubles per round.
	DefaultRouterBackoff = 25 * time.Millisecond
)

// routerMetrics holds the router's obs handles; everything is
// nil-safe so the binding runs identically with metrics off.
type routerMetrics struct {
	reg     *obs.Registry
	refetch *obs.Counter // cluster_map_refetch_total
	moved   *obs.Counter // httpkv_client_moved_total

	mu         sync.Mutex
	batchItems map[string]*obs.Histogram // httpkv_routed_batch_items per node
}

func newRouterMetrics(reg *obs.Registry, mapVersion func() float64) *routerMetrics {
	m := &routerMetrics{reg: reg, batchItems: make(map[string]*obs.Histogram)}
	reg.Help("cluster_map_refetch_total", "Shard-map re-fetches triggered by moved errors or bootstrap.")
	reg.Help("httpkv_client_moved_total", "Moved (410) answers observed by the cluster router.")
	reg.Help("cluster_client_shardmap_version", "Version of the shard map the router currently routes by.")
	reg.Help("httpkv_routed_batch_items", "Operations per routed per-node batch, labeled by owner node.")
	m.refetch = reg.Counter("cluster_map_refetch_total")
	m.moved = reg.Counter("httpkv_client_moved_total")
	reg.GaugeFunc("cluster_client_shardmap_version", mapVersion)
	return m
}

// observeRoutedBatch records the per-node envelope size.
func (m *routerMetrics) observeRoutedBatch(node string, items int) {
	if m == nil || m.reg == nil {
		return
	}
	m.mu.Lock()
	h, ok := m.batchItems[node]
	if !ok {
		h = m.reg.Histogram("httpkv_routed_batch_items", obs.CountBuckets, "node", node)
		m.batchItems[node] = h
	}
	m.mu.Unlock()
	h.Observe(float64(items))
}

func (m *routerMetrics) incRefetch() {
	if m != nil {
		m.refetch.Inc()
	}
}

func (m *routerMetrics) incMoved() {
	if m != nil {
		m.moved.Inc()
	}
}

func init() {
	db.Register("cluster", func() (db.DB, error) { return &Router{}, nil })
}

// NewRouter builds a router over the given seed node addresses,
// bootstrapping the shard map from the first node that serves one. A
// nil hc gets a dedicated pooled transport shared by all node
// clients. The registry may be nil (metrics off).
func NewRouter(seeds []string, hc *http.Client, reg *obs.Registry) (*Router, error) {
	r := &Router{
		hc:      hc,
		retries: DefaultRouterRetries,
		backoff: DefaultRouterBackoff,
		nodes:   make(map[string]*Client),
		caps:    make(map[string]*endpointCaps),
	}
	if r.hc == nil {
		r.hc = newPooledHTTPClient(DefaultPoolSize, DefaultTimeout)
	}
	r.metrics = newRouterMetrics(reg, func() float64 {
		if m := r.cur.Load(); m != nil {
			return float64(m.Version)
		}
		return 0
	})
	if err := r.bootstrap(context.Background(), seeds); err != nil {
		return nil, err
	}
	return r, nil
}

// Init reads the "cluster.nodes" (comma-separated base URLs, required),
// "cluster.placement" (optional assertion against the fetched map),
// "cluster.retries" and "cluster.retry_backoff_ms" properties, plus
// the rawhttp.* transport knobs for the underlying node clients.
func (r *Router) Init(p *properties.Properties) error {
	if r.cur.Load() != nil {
		return nil // built via NewRouter
	}
	seeds := SplitNodes(p.GetString("cluster.nodes", ""))
	if len(seeds) == 0 {
		return errors.New("cluster: missing required property cluster.nodes")
	}
	r.hc = newPooledHTTPClient(
		p.GetInt("rawhttp.pool_size", DefaultPoolSize),
		time.Duration(p.GetInt64("rawhttp.timeout_ms", int64(DefaultTimeout/time.Millisecond)))*time.Millisecond,
	)
	r.retries = p.GetInt("cluster.retries", DefaultRouterRetries)
	r.backoff = time.Duration(p.GetInt64("cluster.retry_backoff_ms", int64(DefaultRouterBackoff/time.Millisecond))) * time.Millisecond
	r.wireMode = p.GetString("rawhttp.wire", WireModeAuto)
	r.wireConns = p.GetInt("rawhttp.wire_conns", 0)
	if r.nodes == nil {
		r.nodes = make(map[string]*Client)
		r.caps = make(map[string]*endpointCaps)
	}
	reg := obs.Enabled(p.GetBool("obs.enabled", false))
	r.metrics = newRouterMetrics(reg, func() float64 {
		if m := r.cur.Load(); m != nil {
			return float64(m.Version)
		}
		return 0
	})
	if p.GetInt64("as_of", 0) != 0 {
		return fmt.Errorf("%w: the cluster binding cannot serve as-of reads (per-store commit clocks)", db.ErrNotSupported)
	}
	if err := r.bootstrap(context.Background(), seeds); err != nil {
		return err
	}
	if want := p.GetString("cluster.placement", ""); want != "" {
		if got := r.cur.Load().Placement; got != want {
			return fmt.Errorf("cluster: fleet placement is %q, cluster.placement asserts %q", got, want)
		}
	}
	return nil
}

// SplitNodes parses a comma-separated node address list (the
// cluster.nodes property): whitespace is trimmed, empty entries are
// dropped, and trailing slashes are stripped so addresses compare
// equal to the map's node entries. Every consumer of cluster.nodes
// must parse it this way or the same property string routes
// differently per entry point.
func SplitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, strings.TrimRight(n, "/"))
		}
	}
	return out
}

// bootstrap fetches the shard map from the first seed that serves
// one and mounts a client per fleet node.
func (r *Router) bootstrap(ctx context.Context, seeds []string) error {
	var firstErr error
	for _, seed := range seeds {
		m, err := fetchShardMap(ctx, r.hc, seed)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: fetching shard map from %s: %w", seed, err)
			}
			continue
		}
		r.installMap(m)
		r.metrics.incRefetch()
		return nil
	}
	return firstErr
}

// fetchShardMap GETs /v1/shardmap from one node. An old
// (non-cluster) server answers the path as a table scan — a JSON
// array — which cluster.Decode rejects, surfacing "not a cluster
// node" instead of a silent mis-parse.
func fetchShardMap(ctx context.Context, hc *http.Client, base string) (*cluster.Map, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/shardmap", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shardmap fetch: %s", resp.Status)
	}
	doc, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return cluster.Decode(doc)
}

// installMap publishes m when newer than the current map and mounts
// clients for any node addresses not seen before. Idempotent under
// races: the newest version wins, clients/caps are create-only.
func (r *Router) installMap(m *cluster.Map) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	if cur == nil || m.Version > cur.Version {
		r.cur.Store(m.Clone())
	}
	for _, addr := range m.Nodes {
		if _, ok := r.nodes[addr]; ok {
			continue
		}
		caps := r.caps[addr]
		if caps == nil {
			caps = &endpointCaps{}
			r.caps[addr] = caps
		}
		c := NewClient(addr, r.hc)
		c.caps = caps
		c.wireMode = r.wireMode
		c.wireConns = r.wireConns
		r.nodes[addr] = c
	}
}

// Map returns the shard map the router currently routes by.
func (r *Router) Map() *cluster.Map { return r.cur.Load() }

// node returns the client for addr, mounting one if the address is
// new (a just-fetched map can name nodes bootstrap never saw).
func (r *Router) node(addr string) *Client {
	r.mu.RLock()
	c := r.nodes[addr]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.nodes[addr]; c != nil {
		return c
	}
	caps := r.caps[addr]
	if caps == nil {
		caps = &endpointCaps{}
		r.caps[addr] = caps
	}
	c = NewClient(addr, r.hc)
	c.caps = caps
	c.wireMode = r.wireMode
	c.wireConns = r.wireConns
	r.nodes[addr] = c
	return c
}

// refetchMap pulls the shard map from the fleet and installs the
// newest copy found. Prefer is polled first (the 410's owner hint
// names a node that, being the new owner, installed the new map
// early).
func (r *Router) refetchMap(ctx context.Context, prefer string) {
	r.metrics.incRefetch()
	cur := r.cur.Load()
	order := make([]string, 0, len(cur.Nodes)+1)
	if prefer != "" {
		order = append(order, prefer)
	}
	for _, n := range cur.Nodes {
		if n != prefer {
			order = append(order, n)
		}
	}
	for _, addr := range order {
		m, err := fetchShardMap(ctx, r.hc, addr)
		if err != nil {
			continue
		}
		r.installMap(m)
		if m.Version > cur.Version {
			return // found a successor; good enough to retry with
		}
	}
}

// handleMoved reacts to one moved error: refetch (hinted) when the
// responder knows a newer map, otherwise back off while the fleet
// converges, then refetch. Returns ctx.Err() when the deadline fires
// mid-backoff.
func (r *Router) handleMoved(ctx context.Context, me *cluster.MovedError, attempt int) error {
	r.metrics.incMoved()
	cur := r.cur.Load()
	if me.MapVersion > cur.Version {
		// The responder is ahead of us: fetch its map and go again.
		r.refetchMap(ctx, me.Owner)
		return nil
	}
	// The responder is stale or the slot is mid-migration (frozen, or
	// in the between-installs window where nobody serves it). Back off
	// a beat, then look for a newer map.
	wait := r.backoff << attempt
	if wait > time.Second {
		wait = time.Second
	}
	select {
	case <-time.After(wait):
	case <-ctx.Done():
		return ctx.Err()
	}
	r.refetchMap(ctx, me.Owner)
	return nil
}

// route runs fn against the key's owner, riding out moved errors with
// bounded map-refetch retries.
func (r *Router) route(ctx context.Context, key string, fn func(c *Client) error) error {
	for attempt := 0; ; attempt++ {
		m := r.cur.Load()
		owner, _ := m.Owner(key)
		err := fn(r.node(owner))
		var me *cluster.MovedError
		if err == nil || !errors.As(err, &me) {
			return err
		}
		if attempt >= r.retries {
			return fmt.Errorf("cluster: key %q still moving after %d retries (map v%d): %w",
				key, attempt, r.cur.Load().Version, me)
		}
		if herr := r.handleMoved(ctx, me, attempt); herr != nil {
			return herr
		}
	}
}

// Cleanup implements db.DB.
func (r *Router) Cleanup() error {
	r.hc.CloseIdleConnections()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, caps := range r.caps {
		caps.closeWire()
	}
	return nil
}

// Read implements db.DB.
func (r *Router) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	var rec db.Record
	err := r.route(ctx, key, func(c *Client) error {
		var err error
		rec, err = c.Read(ctx, table, key, fields)
		return err
	})
	return rec, err
}

// Insert implements db.DB.
func (r *Router) Insert(ctx context.Context, table, key string, values db.Record) error {
	return r.route(ctx, key, func(c *Client) error {
		return c.Insert(ctx, table, key, values)
	})
}

// Update implements db.DB.
func (r *Router) Update(ctx context.Context, table, key string, values db.Record) error {
	return r.route(ctx, key, func(c *Client) error {
		return c.Update(ctx, table, key, values)
	})
}

// Delete implements db.DB.
func (r *Router) Delete(ctx context.Context, table, key string) error {
	return r.route(ctx, key, func(c *Client) error {
		return c.Delete(ctx, table, key)
	})
}

// Scan implements db.DB: every node scans its owned slice (the server
// filters), and the router k-way merges the sorted, disjoint results
// back into one global key order.
func (r *Router) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	merged, err := r.scanMerged(ctx, table, startKey, count)
	if err != nil {
		return nil, err
	}
	out := make([]db.KV, 0, len(merged))
	for _, wr := range merged {
		out = append(out, db.KV{Key: wr.Key, Record: db.ProjectFields(wr.Fields, fields)})
	}
	return out, nil
}

// scanMerged fans one scan out to the whole fleet and merges the
// per-node sorted, disjoint results into one slice of at most count
// records. Nodes that answer 404 for the table contribute nothing (a
// table can live on a subset of nodes until writes spread).
//
// Stream-capable nodes are consumed lazily through scanCursor: each
// buffers at most a credit window of chunks, and the moment the merge
// has count records every remaining stream is cancelled — the fleet no
// longer materializes count records per node for a merge that keeps
// only count total. HTTP-only nodes still contribute one eager page.
//
// Each node reports the shard map version it scanned under. If the
// reports disagree, the fan-out straddled a migration cutover: the
// node still at v filters the migrating slot out (it no longer owns
// it... or doesn't own it yet), and so does the node at v+1 — the
// slot's records would silently vanish from the merged result. The
// same applies when one node's stream aborts 409 (its map changed
// mid-scan) or a wire connection dies partway. In every case the
// router refetches the map, backs off, and rescans until a round
// completes under one version, bounded by the usual retry budget.
// Pre-echo servers report version 0 and are exempt from the check —
// best effort is all a mixed-version fleet can offer.
func (r *Router) scanMerged(ctx context.Context, table, startKey string, count int) ([]wireRecord, error) {
	for attempt := 0; ; attempt++ {
		out, err := r.scanRound(ctx, table, startKey, count)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, errScanRescan) {
			return nil, err
		}
		if attempt >= r.retries {
			return nil, fmt.Errorf("cluster: scan still straddling a map change after %d retries: %w", attempt, err)
		}
		wait := r.backoff << attempt
		if wait > time.Second {
			wait = time.Second
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		r.refetchMap(ctx, "")
	}
}

// scanRound runs one fan-out round: open a cursor per node (priming
// each with its first record concurrently), verify the fleet answered
// under one map version, then merge. Any errScanRescan — from a
// stream's 409, a dead wire connection, or cross-node version skew —
// aborts the round for scanMerged to retry.
func (r *Router) scanRound(ctx context.Context, table, startKey string, count int) ([]wireRecord, error) {
	m := r.cur.Load()
	roundCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	cursors := make([]*scanCursor, len(m.Nodes))
	heads := make([]*wireRecord, len(m.Nodes))
	errs := make([]error, len(m.Nodes))
	var wg sync.WaitGroup
	for i, addr := range m.Nodes {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			sc, err := c.openScanCursor(roundCtx, table, startKey, count)
			if err != nil {
				errs[i] = err
				return
			}
			cursors[i] = sc
			heads[i], errs[i] = sc.next()
		}(i, r.node(addr))
	}
	wg.Wait()
	defer func() {
		for _, sc := range cursors {
			if sc != nil {
				sc.close()
			}
		}
	}()
	for i, err := range errs {
		if err == nil || errors.Is(err, db.ErrNotFound) {
			continue
		}
		if errors.Is(err, errScanRescan) {
			return nil, err
		}
		return nil, fmt.Errorf("cluster: scan on %s: %w", m.Nodes[i], err)
	}
	// After priming, every cursor knows its node's map version (streams
	// learn it from the first chunk or the end frame) and per-node
	// consistency is the stream's own 409 check — so one cross-node
	// comparison here covers the whole round.
	skew := int64(0)
	for _, sc := range cursors {
		if sc == nil || sc.ver == 0 {
			continue // pre-echo server or single-node; nothing to compare
		}
		if skew == 0 {
			skew = sc.ver
		} else if sc.ver != skew {
			return nil, errScanRescan
		}
	}
	var out []wireRecord
	if count >= 0 {
		out = make([]wireRecord, 0, count)
	}
	for {
		best := -1
		for i, h := range heads {
			if h == nil {
				continue
			}
			if best < 0 || h.Key < heads[best].Key {
				best = i
			}
		}
		if best < 0 || (count >= 0 && len(out) >= count) {
			return out, nil
		}
		out = append(out, *heads[best])
		h, err := cursors[best].next()
		if err != nil {
			if errors.Is(err, db.ErrNotFound) {
				h = nil
			} else if errors.Is(err, errScanRescan) {
				return nil, err
			} else {
				return nil, fmt.Errorf("cluster: scan on %s: %w", m.Nodes[best], err)
			}
		}
		heads[best] = h
	}
}

// ExecBatch implements db.BatchDB: ops group by owner node, one
// envelope POSTs per owner concurrently, and results merge back in
// request order. Items answered 410 re-route (after a map refetch)
// with bounded retries, so a batch spanning a migrating slot loses no
// operations — it just pays extra rounds for the moved subset.
func (r *Router) ExecBatch(ctx context.Context, ops []db.BatchOp) []db.BatchResult {
	out := make([]db.BatchResult, len(ops))
	pending := make([]int, len(ops))
	for i := range ops {
		pending[i] = i
	}
	for attempt := 0; len(pending) > 0; attempt++ {
		m := r.cur.Load()
		groups := make(map[string][]int)
		for _, i := range pending {
			owner, _ := m.Owner(ops[i].Key)
			groups[owner] = append(groups[owner], i)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var movedNext []int
		var firstMoved *cluster.MovedError
		for owner, idx := range groups {
			wg.Add(1)
			go func(owner string, idx []int) {
				defer wg.Done()
				sub := make([]db.BatchOp, len(idx))
				for j, i := range idx {
					sub[j] = ops[i]
				}
				r.metrics.observeRoutedBatch(owner, len(sub))
				results := r.node(owner).ExecBatch(ctx, sub)
				mu.Lock()
				defer mu.Unlock()
				for j, i := range idx {
					res := results[j]
					var me *cluster.MovedError
					if errors.As(res.Err, &me) {
						movedNext = append(movedNext, i)
						if firstMoved == nil {
							firstMoved = me
						}
						continue
					}
					out[i] = res
				}
			}(owner, idx)
		}
		wg.Wait()
		if len(movedNext) == 0 {
			return out
		}
		if attempt >= r.retries {
			for _, i := range movedNext {
				out[i] = db.BatchResult{Err: fmt.Errorf(
					"cluster: key %q still moving after %d retries: %w", ops[i].Key, attempt, firstMoved)}
			}
			return out
		}
		if err := r.handleMoved(ctx, firstMoved, attempt); err != nil {
			for _, i := range movedNext {
				out[i] = db.BatchResult{Err: err}
			}
			return out
		}
		sort.Ints(movedNext)
		pending = movedNext
	}
	return out
}

var (
	_ db.DB      = (*Router)(nil)
	_ db.BatchDB = (*Router)(nil)
)
