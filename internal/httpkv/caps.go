package httpkv

import "sync/atomic"

// endpointCaps holds the negotiated-capability latches for ONE server
// endpoint. The client discovers what a server speaks by trying: a
// 404/405 on /v1/batch latches the single-op fallback, a missing
// as-of echo latches snapshot-read fast-fail. Those latches are facts
// about a *server*, not about the client — so they live in their own
// per-endpoint struct rather than inline Client fields. A Client
// talking to exactly one base URL owns exactly one endpointCaps; the
// cluster Router keeps one per node address (keyed by the address, so
// the latch survives the per-node Client being rebuilt on a map
// change), and one old node in a mixed-version cluster degrades only
// itself instead of disabling batch and as-of for the whole fleet.
type endpointCaps struct {
	// batchUnsupported latches after the endpoint answers /v1/batch
	// with 404/405; later batches to it use the single-op fallback.
	batchUnsupported atomic.Bool
	// asOfUnsupported latches after the endpoint provably ignores
	// as-of requests (no served-ts echo on a conclusive status, or
	// /v1/ts answered as a table scan); later as-of reads against it
	// fast-fail with db.ErrNotSupported rather than serving head data.
	asOfUnsupported atomic.Bool
}
