package httpkv

import (
	"sync/atomic"

	"ycsbt/internal/kvwire"
)

// endpointCaps holds the negotiated-capability latches for ONE server
// endpoint. The client discovers what a server speaks by trying: a
// 404/405 on /v1/batch latches the single-op fallback, a missing
// as-of echo latches snapshot-read fast-fail. Those latches are facts
// about a *server*, not about the client — so they live in their own
// per-endpoint struct rather than inline Client fields. A Client
// talking to exactly one base URL owns exactly one endpointCaps; the
// cluster Router keeps one per node address (keyed by the address, so
// the latch survives the per-node Client being rebuilt on a map
// change), and one old node in a mixed-version cluster degrades only
// itself instead of disabling batch and as-of for the whole fleet.
type endpointCaps struct {
	// batchUnsupported latches after the endpoint answers /v1/batch
	// with 404/405; later batches to it use the single-op fallback.
	batchUnsupported atomic.Bool
	// asOfUnsupported latches after the endpoint provably ignores
	// as-of requests (no served-ts echo on a conclusive status, or
	// /v1/ts answered as a table scan); later as-of reads against it
	// fast-fail with db.ErrNotSupported rather than serving head data.
	asOfUnsupported atomic.Bool

	// The binary wire state. wireAddr is the endpoint's advertised
	// binary listener (learned from the X-KV-Wire response header, or
	// set explicitly via the rawhttp.wire property); wireEp is the
	// lazily-dialed shared connection pool for it. wireUnsupported
	// latches after a definitive protocol failure (connection refused,
	// bad handshake) — later requests stay on HTTP without re-probing,
	// the same degrade-per-endpoint shape as the batch latch.
	wireAddr        atomic.Pointer[string]
	wireEp          atomic.Pointer[kvwire.Endpoint]
	wireUnsupported atomic.Bool
	// wireStream records that the endpoint advertised streaming frame
	// support (X-KV-Wire-Stream alongside X-KV-Wire): scans and ingest
	// may ride chunked streams. An old wire server that only speaks
	// request/response frames never sets the header, so new clients
	// never send it stream frames it would reject.
	wireStream atomic.Bool
}

// closeWire tears down the endpoint's wire pool, if one was dialed.
func (caps *endpointCaps) closeWire() {
	if ep := caps.wireEp.Swap(nil); ep != nil {
		ep.Close()
	}
}
