package httpkv

import (
	"context"

	"ycsbt/internal/kvstore"
)

// RouterStore adapts a cluster Router to the transaction libraries'
// store interface (txn.Store): versioned gets and conditional writes,
// routed per key across the fleet by the shard map. With it, one
// client-coordinated Cherry-Garcia transaction spans nodes with no
// central coordinator — the transaction's CAS writes land on
// whichever node owns each key, and the commit protocol never needs
// to know the cluster exists. Moved errors (live rebalancing) are
// absorbed by the router's refetch-and-retry before the transaction
// layer sees them; a CAS conflict surfacing after a migration is just
// an ordinary version mismatch, because Ingest preserves record
// versions across the copy.
type RouterStore struct {
	name string
	r    *Router
}

// NewRouterStore wraps the router as a named transaction store.
func NewRouterStore(name string, r *Router) *RouterStore {
	return &RouterStore{name: name, r: r}
}

// Name implements the store interface.
func (s *RouterStore) Name() string { return s.name }

// Router exposes the underlying router (tests and admin tooling).
func (s *RouterStore) Router() *Router { return s.r }

// Get implements the store interface.
func (s *RouterStore) Get(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	var rec *kvstore.VersionedRecord
	err := s.r.route(ctx, key, func(c *Client) error {
		var err error
		rec, err = c.ReadVersioned(ctx, table, key)
		return err
	})
	if err != nil {
		return nil, remoteTranslate(err)
	}
	return rec, nil
}

// Put implements the store interface (conditional put via ETag
// headers, routed to the key's owner).
func (s *RouterStore) Put(ctx context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	var ver uint64
	err := s.r.route(ctx, key, func(c *Client) error {
		var err error
		ver, err = c.putVersioned(ctx, table, key, fields, expect)
		return err
	})
	if err != nil {
		return 0, remoteTranslate(err)
	}
	return ver, nil
}

// Delete implements the store interface.
func (s *RouterStore) Delete(ctx context.Context, table, key string, expect uint64) error {
	return remoteTranslate(s.r.route(ctx, key, func(c *Client) error {
		return c.deleteVersioned(ctx, table, key, expect)
	}))
}

// Scan implements the store interface: per-node sorted results merged
// into global key order, like the binding's Scan.
func (s *RouterStore) Scan(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	merged, err := s.r.scanMerged(ctx, table, startKey, count)
	if err != nil {
		return nil, remoteTranslate(err)
	}
	out := make([]kvstore.VersionedKV, 0, len(merged))
	for _, wr := range merged {
		out = append(out, kvstore.VersionedKV{
			Key:    wr.Key,
			Record: &kvstore.VersionedRecord{Version: wr.Version, Fields: wr.Fields},
		})
	}
	return out, nil
}
