package httpkv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Pooled NDJSON scan decoding. scanWire and scanWireAsOf used to spin
// up a fresh json.Decoder (plus its internal read buffer, grown from
// 512 bytes) and grow the result slice from nil on every page — all
// per-page steady-state garbage on the scan hot path, the decode-side
// sibling of the pooled response encoder in batch.go. json.Decoder has
// no Reset, so the pool wraps each decoder around a swappable reader:
// point it at the next body, decode, and recycle the pair once the
// page is fully consumed.
type scanDecoder struct {
	src swapReader
	dec *json.Decoder
}

// swapReader is the retargetable io.Reader under a pooled decoder.
type swapReader struct{ r io.Reader }

func (s *swapReader) Read(p []byte) (int, error) { return s.r.Read(p) }

var scanDecPool = sync.Pool{New: func() any {
	sd := &scanDecoder{}
	sd.dec = json.NewDecoder(&sd.src)
	return sd
}}

// decodeScanNDJSON reads one NDJSON scan page. count sizes the result
// slice up front when the caller asked for a bounded page (count <= 0
// — unbounded migration scans — starts empty and grows).
func decodeScanNDJSON(body io.Reader, count int) ([]wireRecord, error) {
	sd := scanDecPool.Get().(*scanDecoder)
	sd.src.r = body
	var wrs []wireRecord
	if count > 0 {
		wrs = make([]wireRecord, 0, count)
	}
	for sd.dec.More() {
		var wr wireRecord
		if err := sd.dec.Decode(&wr); err != nil {
			// Mid-value state is poisoned; drop the decoder, not repool.
			return nil, fmt.Errorf("httpkv: decoding scan line %d: %w", len(wrs)+1, err)
		}
		wrs = append(wrs, wr)
	}
	// Recycle only a decoder that drained the page completely: More()
	// also returns false on a buffered non-value byte (say a stray ']'),
	// which would leak into the next page's decode.
	var tail [16]byte
	if n, _ := sd.dec.Buffered().Read(tail[:]); len(bytes.TrimSpace(tail[:n])) == 0 {
		sd.src.r = nil // drop the response body before pooling
		scanDecPool.Put(sd)
	}
	return wrs, nil
}
