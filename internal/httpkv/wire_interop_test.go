package httpkv

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/kvwire"
	"ycsbt/internal/properties"
)

// startWireListenerFor boots a binary wire listener serving core and
// returns its dial address.
func startWireListenerFor(t *testing.T, core *kvwire.Core) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := kvwire.NewServer(core, kvwire.ServerOptions{})
	go ws.Serve(ln)
	t.Cleanup(func() { ws.Close() })
	return ln.Addr().String()
}

// wireFixture serves one store through a wire-enabled HTTP front end
// (advertising the binary listener) while counting the HTTP requests
// that still arrive — the direct way to prove traffic moved off HTTP.
type wireFixture struct {
	store     *kvstore.Store
	srv       *httptest.Server
	wireAddr  string
	httpCount atomic.Int64
}

func newWireFixture(t *testing.T) *wireFixture {
	t.Helper()
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	core := kvwire.NewCore(store, nil, 0)
	f := &wireFixture{store: store, wireAddr: startWireListenerFor(t, core)}
	inner := NewServerWithOptions(store, ServerOptions{Core: core, WireAddr: f.wireAddr})
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.httpCount.Add(1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func newWireClient(t *testing.T, base string, props map[string]string) *Client {
	t.Helper()
	c := NewClient(base, nil)
	p := properties.New()
	for k, v := range props {
		p.Set(k, v)
	}
	if err := c.Init(p); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Cleanup() })
	return c
}

// TestWireInteropNewClientOldServer: a wire-capable client against a
// server that never advertises a binary listener stays on HTTP with
// full semantics — the protocol is invisible until offered.
func TestWireInteropNewClientOldServer(t *testing.T) {
	ctx := context.Background()
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	c := newWireClient(t, srv.URL, nil)

	if err := c.Insert(ctx, "t", "k1", rec("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(ctx, "t", "k1", nil)
	if err != nil || string(got["f"]) != "v1" {
		t.Fatalf("read = %v, %v; want v1", got, err)
	}
	res := c.ExecBatch(ctx, []db.BatchOp{{Op: db.OpRead, Table: "t", Key: "k1"}})
	if res[0].Err != nil || string(res[0].Record["f"]) != "v1" {
		t.Fatalf("batch read = %v, %v", res[0].Record, res[0].Err)
	}
	if c.caps.wireAddr.Load() != nil || c.caps.wireEp.Load() != nil {
		t.Error("client invented a wire endpoint no server advertised")
	}
}

// TestWireInteropOldClientNewServer: a client with the binary path
// disabled (standing in for a pre-wire client, which likewise only
// speaks HTTP) works unchanged against a wire-advertising server.
func TestWireInteropOldClientNewServer(t *testing.T) {
	ctx := context.Background()
	f := newWireFixture(t)
	c := newWireClient(t, f.srv.URL, map[string]string{"rawhttp.wire": WireModeOff})

	if err := c.Insert(ctx, "t", "k1", rec("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(ctx, "t", "k1", nil)
	if err != nil || string(got["f"]) != "v1" {
		t.Fatalf("read = %v, %v; want v1", got, err)
	}
	if c.caps.wireEp.Load() != nil {
		t.Error("wire endpoint created despite rawhttp.wire=off")
	}
	// Every operation stayed on HTTP.
	if n := f.httpCount.Load(); n < 2 {
		t.Errorf("HTTP request count = %d, want every op over HTTP", n)
	}
}

// TestWireInteropNewClientNewServer: the first HTTP response carries
// the X-KV-Wire advertisement, and from then on single-record and
// batch operations ride the binary protocol — the HTTP request count
// freezes after the sniff while semantics (values, versions, 404s,
// CAS conflicts) stay identical.
func TestWireInteropNewClientNewServer(t *testing.T) {
	ctx := context.Background()
	f := newWireFixture(t)
	c := newWireClient(t, f.srv.URL, nil)

	// First op travels HTTP and sniffs the advertisement.
	if err := c.Insert(ctx, "t", "k1", rec("v1")); err != nil {
		t.Fatal(err)
	}
	if c.caps.wireAddr.Load() == nil {
		t.Fatal("wire address not sniffed from the first response")
	}
	base := f.httpCount.Load()

	// Everything after the sniff rides the wire.
	if err := c.Insert(ctx, "t", "k2", rec("v2")); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		got, err := c.Read(ctx, "t", key, nil)
		if err != nil || string(got["f"]) != want {
			t.Fatalf("wire read %s = %v, %v; want %q", key, got, err, want)
		}
	}
	if _, err := c.Read(ctx, "t", "nope", nil); !errors.Is(err, db.ErrNotFound) {
		t.Fatalf("wire read of missing key: %v, want ErrNotFound", err)
	}
	if err := c.Update(ctx, "t", "k1", rec("v1b")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "t", "k2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(ctx, "t", "k2", nil); !errors.Is(err, db.ErrNotFound) {
		t.Fatalf("wire read of deleted key: %v, want ErrNotFound", err)
	}
	res := c.ExecBatch(ctx, []db.BatchOp{
		{Op: db.OpRead, Table: "t", Key: "k1"},
		{Op: db.OpInsert, Table: "t", Key: "k3", Values: rec("v3")},
		{Op: db.OpRead, Table: "t", Key: "k2"},
	})
	if res[0].Err != nil || string(res[0].Record["f"]) != "v1b" {
		t.Fatalf("wire batch read = %v, %v; want v1b", res[0].Record, res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("wire batch insert: %v", res[1].Err)
	}
	if !errors.Is(res[2].Err, db.ErrNotFound) {
		t.Fatalf("wire batch read of deleted key: %v, want ErrNotFound", res[2].Err)
	}

	if c.caps.wireEp.Load() == nil {
		t.Fatal("no wire endpoint despite advertisement")
	}
	if c.caps.wireUnsupported.Load() {
		t.Error("wire latched off against a healthy server")
	}
	if n := f.httpCount.Load(); n != base {
		t.Errorf("HTTP requests grew %d -> %d after the sniff; ops did not ride the wire", base, n)
	}

	// The records really landed: read the store directly.
	if rec, err := f.store.Get("t", "k3"); err != nil || string(rec.Fields["f"]) != "v3" {
		t.Fatalf("store state after wire batch: %v, %v", rec, err)
	}
}

// TestRouterPerEndpointWireLatch: one node of a fleet advertises a
// wire address nothing listens on. Its endpoint must latch back to
// HTTP after the first refused dial — without disabling the binary
// path for the healthy nodes, and without failing a single operation.
func TestRouterPerEndpointWireLatch(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]

	// Node a advertises a live wire listener sharing its core.
	coreA := kvwire.NewCore(a.store, a.state, 0)
	a.h.Store(NewServerWithOptions(a.store, ServerOptions{
		Cluster: a.state, Core: coreA, WireAddr: startWireListenerFor(t, coreA),
	}))
	// Node b advertises a dead port: reserve one, then close it.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	b.h.Store(NewServerWithOptions(b.store, ServerOptions{
		Cluster: b.state, WireAddr: deadAddr,
	}))

	r := newTestRouter(t, nodes, nil)
	ctx := context.Background()
	m := r.Map()

	seenA, seenB := false, false
	var keys []string
	for i := 0; len(keys) < 24; i++ {
		k := fmt.Sprintf("user%05d", i)
		switch owner, _ := m.Owner(k); owner {
		case a.URL:
			seenA = true
		case b.URL:
			seenB = true
		}
		keys = append(keys, k)
		if err := r.Insert(ctx, "t", k, rec("v-"+k)); err != nil {
			t.Fatalf("insert %s: %v", k, err)
		}
	}
	if !seenA || !seenB {
		t.Fatalf("test keys did not cover both nodes (a=%v b=%v)", seenA, seenB)
	}
	for _, k := range keys {
		got, err := r.Read(ctx, "t", k, nil)
		if err != nil || string(got["f"]) != "v-"+k {
			t.Fatalf("read-back %s: %v %v", k, got, err)
		}
	}

	r.mu.RLock()
	capsA, capsB := r.caps[a.URL], r.caps[b.URL]
	r.mu.RUnlock()
	if !capsB.wireUnsupported.Load() {
		t.Error("dead wire endpoint not latched back to HTTP")
	}
	if capsA.wireUnsupported.Load() {
		t.Error("healthy node's wire path latched off by the dead node — latch must be per endpoint")
	}
	if capsA.wireEp.Load() == nil {
		t.Error("healthy node never rode the binary path")
	}
}
