package httpkv

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"ycsbt/internal/cluster"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
)

// clusterNode is one in-process cluster member: a real Server behind a
// real HTTP listener, late-bound so the shard map can name the
// listener's URL before the Server exists.
type clusterNode struct {
	URL   string
	state *cluster.State
	store *kvstore.Store
	srv   *httptest.Server
	h     atomic.Pointer[Server]
	// pre intercepts requests before the Server sees them (handled
	// when it returns true) — used to fake old-version nodes.
	pre atomic.Pointer[func(http.ResponseWriter, *http.Request) bool]
}

// startTestCluster boots n cluster-mode nodes sharing one uniform
// hash map over the given slot count.
func startTestCluster(t *testing.T, n, slots int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		tn := &clusterNode{}
		tn.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if pre := tn.pre.Load(); pre != nil && (*pre)(w, r) {
				return
			}
			if s := tn.h.Load(); s != nil {
				s.ServeHTTP(w, r)
				return
			}
			http.Error(w, "booting", http.StatusServiceUnavailable)
		}))
		tn.URL = tn.srv.URL
		t.Cleanup(tn.srv.Close)
		nodes[i] = tn
	}
	addrs := make([]string, n)
	for i, tn := range nodes {
		addrs[i] = tn.URL
	}
	m, err := cluster.NewUniform(cluster.PlacementHash, slots, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes {
		st, err := cluster.NewState(tn.URL, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		store, err := kvstore.Open(kvstore.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		tn.state = st
		tn.store = store
		tn.h.Store(NewServerWithOptions(store, ServerOptions{Cluster: st}))
	}
	return nodes
}

// keyOwnedBy generates a key the given node owns under m.
func keyOwnedBy(t *testing.T, m *cluster.Map, addr, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%s%05d", prefix, i)
		if owner, _ := m.Owner(k); owner == addr {
			return k
		}
	}
	t.Fatalf("no key with prefix %q owned by %s", prefix, addr)
	return ""
}

func rec(v string) db.Record { return db.Record{"f": []byte(v)} }

// A cluster node must answer operations on keys it does not own with
// 410 plus routing hints, and serve its own keys normally.
func TestClusterSingleOpMoved(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	ca := NewClient(a.URL, a.srv.Client())

	theirs := keyOwnedBy(t, m, b.URL, "user")
	var me *cluster.MovedError
	if err := ca.Insert(ctx, "t", theirs, rec("x")); !errors.As(err, &me) {
		t.Fatalf("insert of foreign key: got %v, want MovedError", err)
	}
	if me.Owner != b.URL || me.MapVersion != m.Version {
		t.Errorf("moved hints: owner=%q v=%d, want owner=%q v=%d", me.Owner, me.MapVersion, b.URL, m.Version)
	}
	if _, err := ca.Read(ctx, "t", theirs, nil); !errors.As(err, &me) {
		t.Errorf("read of foreign key: got %v, want MovedError", err)
	}

	mine := keyOwnedBy(t, m, a.URL, "user")
	if err := ca.Insert(ctx, "t", mine, rec("y")); err != nil {
		t.Fatalf("insert of owned key: %v", err)
	}
	got, err := ca.Read(ctx, "t", mine, nil)
	if err != nil || string(got["f"]) != "y" {
		t.Errorf("read of owned key: %v %v", got, err)
	}
}

// Batch envelopes gate per item: foreign items answer 410 results with
// routing hints while owned items in the same envelope succeed.
func TestClusterBatchPartialMoved(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	ca := NewClient(a.URL, a.srv.Client())

	mine := keyOwnedBy(t, m, a.URL, "user")
	theirs := keyOwnedBy(t, m, b.URL, "user")
	res := ca.ExecBatch(ctx, []db.BatchOp{
		{Op: db.OpInsert, Table: "t", Key: mine, Values: rec("v1")},
		{Op: db.OpInsert, Table: "t", Key: theirs, Values: rec("v2")},
		{Op: db.OpRead, Table: "t", Key: mine},
	})
	if res[0].Err != nil {
		t.Errorf("owned insert in batch: %v", res[0].Err)
	}
	var me *cluster.MovedError
	if !errors.As(res[1].Err, &me) {
		t.Fatalf("foreign insert in batch: got %v, want MovedError", res[1].Err)
	}
	if me.Owner != b.URL {
		t.Errorf("batch moved owner hint = %q, want %q", me.Owner, b.URL)
	}
	if res[2].Err != nil || string(res[2].Record["f"]) != "v1" {
		t.Errorf("owned read in batch: %v %v", res[2].Record, res[2].Err)
	}
}

// A frozen slot drains writes (410, no owner hint — the slot has not
// moved yet) while reads keep serving; thaw restores writes.
func TestClusterFreezeWindow(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a := nodes[0]
	m := a.state.Map()
	ctx := context.Background()
	ca := NewClient(a.URL, a.srv.Client())

	key := keyOwnedBy(t, m, a.URL, "user")
	if err := ca.Insert(ctx, "t", key, rec("v1")); err != nil {
		t.Fatal(err)
	}
	_, slot := m.Owner(key)

	resp, err := a.srv.Client().Post(fmt.Sprintf("%s/v1/shardmap/freeze?slot=%d", a.URL, slot), "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("freeze: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	var me *cluster.MovedError
	if err := ca.Update(ctx, "t", key, rec("v2")); !errors.As(err, &me) {
		t.Fatalf("write to frozen slot: got %v, want MovedError", err)
	}
	if me.Owner != "" {
		t.Errorf("frozen slot advertised owner %q, want none (back off, not redirect)", me.Owner)
	}
	if got, err := ca.Read(ctx, "t", key, nil); err != nil || string(got["f"]) != "v1" {
		t.Errorf("read during freeze: %v %v", got, err)
	}

	resp, err = a.srv.Client().Post(fmt.Sprintf("%s/v1/shardmap/freeze?slot=%d&thaw=1", a.URL, slot), "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("thaw: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	if err := ca.Update(ctx, "t", key, rec("v2")); err != nil {
		t.Errorf("write after thaw: %v", err)
	}
}

// GET serves the current map; PUT installs strictly newer maps and
// answers 409 with the node's version header otherwise. After an
// install the node starts 410ing the slots it lost.
func TestClusterShardMapRoutes(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	hc := a.srv.Client()

	got, err := fetchShardMap(ctx, hc, a.URL)
	if err != nil {
		t.Fatalf("GET shardmap: %v", err)
	}
	if got.Version != m.Version || len(got.Nodes) != 2 {
		t.Errorf("fetched map v%d nodes=%d, want v%d nodes=2", got.Version, len(got.Nodes), m.Version)
	}

	// Re-PUT of the current version is stale → 409 + version header.
	if err := putShardMap(ctx, hc, a.URL, m, 0); err != nil {
		t.Errorf("idempotent re-PUT of current map should be accepted as converged: %v", err)
	}
	doc, _ := m.Encode()
	req, _ := http.NewRequest(http.MethodPut, a.URL+"/v1/shardmap", bytes.NewReader(doc))
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale PUT status = %d, want 409", resp.StatusCode)
	}
	if v, _ := strconv.ParseInt(resp.Header.Get(cluster.HeaderMapVersion), 10, 64); v != m.Version {
		t.Errorf("stale PUT version header = %d, want %d", v, m.Version)
	}

	// A v+1 map moving one of a's slots to b installs and takes effect.
	slots := m.SlotsOf(a.URL)
	next, err := m.WithSlotMoved(slots[0], b.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := putShardMap(ctx, hc, a.URL, next, 0); err != nil {
		t.Fatalf("PUT v2: %v", err)
	}
	key := keyOwnedBy(t, next, b.URL, "moved")
	if owner, sl := m.Owner(key); owner != a.URL || sl != slots[0] {
		// keyOwnedBy walked next; re-derive one in the moved slot.
		for i := 0; ; i++ {
			key = fmt.Sprintf("mv%05d", i)
			if _, s2 := m.Owner(key); s2 == slots[0] {
				break
			}
		}
	}
	ca := NewClient(a.URL, hc)
	var me *cluster.MovedError
	if err := ca.Insert(ctx, "t", key, rec("x")); !errors.As(err, &me) {
		t.Fatalf("write to moved-away slot: got %v, want MovedError", err)
	}
	if me.MapVersion != next.Version || me.Owner != b.URL {
		t.Errorf("moved hints after install: owner=%q v=%d, want %q v=%d", me.Owner, me.MapVersion, b.URL, next.Version)
	}
}

// POST /v1/ingest merges NDJSON records version-preservingly.
// PUT /v1/shardmap with the CAS header only lands on the exact
// predecessor version; the unconditional path keeps treating an
// equal-or-newer node as converged.
func TestClusterShardMapPutCAS(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a, b := nodes[0], nodes[1]
	m := a.state.Map()
	ctx := context.Background()
	hc := a.srv.Client()
	next, err := m.WithSlotMoved(m.SlotsOf(a.URL)[0], b.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong predecessor → strict failure, map untouched.
	if err := putShardMap(ctx, hc, a.URL, next, m.Version+7); err == nil {
		t.Fatal("CAS install against the wrong predecessor succeeded")
	}
	if got := a.state.Map().Version; got != m.Version {
		t.Fatalf("failed CAS moved the map to v%d", got)
	}
	// Right predecessor → lands.
	if err := putShardMap(ctx, hc, a.URL, next, m.Version); err != nil {
		t.Fatalf("CAS install against the right predecessor: %v", err)
	}
	// The predecessor is consumed: a rival CAS of the same expected
	// version must fail even though the node already carries v+1 — a
	// divergent v+1 is not "already converged".
	if err := putShardMap(ctx, hc, a.URL, next, m.Version); err == nil {
		t.Error("CAS re-install of a consumed predecessor succeeded")
	}
	// The unconditional path still reads equal-or-newer as converged.
	if err := putShardMap(ctx, hc, a.URL, next, 0); err != nil {
		t.Errorf("unconditional re-install of the current map: %v", err)
	}
	// A malformed CAS header is a 400, not an install.
	doc, _ := next.Encode()
	req, _ := http.NewRequest(http.MethodPut, a.URL+"/v1/shardmap", bytes.NewReader(doc))
	req.Header.Set(cluster.HeaderMapCAS, "bogus")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed CAS header status = %d, want 400", resp.StatusCode)
	}
}

func TestClusterIngestRoute(t *testing.T) {
	nodes := startTestCluster(t, 1, 4)
	a := nodes[0]
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i, tc := range []struct {
		ver uint64
		ts  int64
	}{{7, 100}, {3, 101}} {
		enc.Encode(wireRecord{
			Key:      fmt.Sprintf("k%d", i),
			Fields:   map[string][]byte{"f": []byte("v")},
			Version:  tc.ver,
			CommitTS: tc.ts,
		})
	}
	resp, err := a.srv.Client().Post(a.URL+"/v1/ingest?table=t", NDJSONContentType, &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	r0, err := a.store.Get("t", "k0")
	if err != nil || r0.Version != 7 || r0.CommitTS != 100 {
		t.Errorf("k0 after ingest: %+v %v, want version=7 ts=100", r0, err)
	}
	r1, err := a.store.Get("t", "k1")
	if err != nil || r1.Version != 3 || r1.CommitTS != 101 {
		t.Errorf("k1 after ingest: %+v %v, want version=3 ts=101", r1, err)
	}
}

// Scans in cluster mode filter to owned slots by default and to one
// exact slot with ?slot=N, paging the engine far enough that filtered
// rows never truncate the result.
func TestClusterScanFiltered(t *testing.T) {
	nodes := startTestCluster(t, 2, 8)
	a := nodes[0]
	m := a.state.Map()
	ctx := context.Background()
	ca := NewClient(a.URL, a.srv.Client())

	// Land 40 keys on node a (writes of foreign keys would 410).
	var mine []string
	for i := 0; len(mine) < 40; i++ {
		k := fmt.Sprintf("user%05d", i)
		if owner, _ := m.Owner(k); owner == a.URL {
			if err := ca.Insert(ctx, "t", k, rec("v")); err != nil {
				t.Fatal(err)
			}
			mine = append(mine, k)
		}
	}

	kvs, err := ca.Scan(ctx, "t", "", -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(mine) {
		t.Fatalf("owned scan returned %d keys, want %d", len(kvs), len(mine))
	}

	slot := -1
	for _, k := range mine {
		_, slot = m.Owner(k)
		break
	}
	resp, err := a.srv.Client().Get(fmt.Sprintf("%s/v1/t?start=&count=-1&slot=%d", a.URL, slot))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page []wireRecord
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, k := range mine {
		if _, s := m.Owner(k); s == slot {
			want++
		}
	}
	if len(page) != want || want == 0 {
		t.Fatalf("slot scan returned %d keys, want %d (>0)", len(page), want)
	}
	for _, wr := range page {
		if _, s := m.Owner(wr.Key); s != slot {
			t.Errorf("slot scan leaked key %q from slot %d", wr.Key, s)
		}
	}
}

// Scan count=-1 (drain) stays rejected outside cluster mode, where
// unbounded scans have no migration to serve.
func TestScanDrainRequiresCluster(t *testing.T) {
	store, err := kvstore.Open(kvstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/t?start=&count=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("count=-1 without cluster: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(resp.Status, "400") {
		t.Errorf("unexpected status %s", resp.Status)
	}
}
