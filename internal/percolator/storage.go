package percolator

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ycsbt/internal/kvstore"
)

// This file implements the storage-level record manipulation: loading
// records, reading a snapshot version, committing and rolling back
// locks, and crash resolution through a lock's primary.

// loadRecord fetches the raw record fields and version; a missing
// record returns (nil, 0, nil).
func (m *Manager) loadRecord(ctx context.Context, table, key string) (map[string][]byte, uint64, error) {
	rec, err := m.store.Get(ctx, table, key)
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	return rec.Fields, rec.Version, nil
}

// dataField formats the committed-version field name for a commit_ts.
func dataField(commitTS int64) string {
	return dataPrefix + fmt.Sprintf("%0*d", tsFieldWide, commitTS)
}

// parseDataField extracts the commit_ts from a version field name, or
// -1 when the field is not a version.
func parseDataField(name string) int64 {
	if !strings.HasPrefix(name, dataPrefix) {
		return -1
	}
	ts, err := strconv.ParseInt(name[len(dataPrefix):], 10, 64)
	if err != nil {
		return -1
	}
	return ts
}

// maxCommitTS returns the newest committed version timestamp in a
// record (0 when none).
func maxCommitTS(fields map[string][]byte) int64 {
	var max int64
	for f := range fields {
		if ts := parseDataField(f); ts > max {
			max = ts
		}
	}
	return max
}

// versionAt returns the newest committed version with commit_ts ≤ ts,
// or (nil, 0) when none is visible.
func versionAt(fields map[string][]byte, ts int64) ([]byte, int64) {
	var bestTS int64 = -1
	var best []byte
	for f, v := range fields {
		if cts := parseDataField(f); cts >= 0 && cts <= ts && cts > bestTS {
			bestTS, best = cts, v
		}
	}
	if bestTS < 0 {
		return nil, 0
	}
	return best, bestTS
}

// readAt performs a snapshot read with lock resolution and bounded
// waiting.
func (m *Manager) readAt(ctx context.Context, table, key string, ts int64) (map[string][]byte, error) {
	fields, _, err := m.loadRecord(ctx, table, key)
	if err != nil {
		return nil, err
	}
	if fields == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
	}
	rec := &kvstore.VersionedRecord{Fields: fields}
	return m.resolveRead(ctx, table, key, rec, ts, m.opts.ReadLockRetries)
}

// resolveRead turns a fetched raw record into the user image at ts,
// resolving or waiting out locks as Percolator prescribes: a lock
// with start_ts ≤ read_ts could commit at a commit_ts below read_ts,
// so the read cannot proceed past it.
func (m *Manager) resolveRead(ctx context.Context, table, key string, rec *kvstore.VersionedRecord, ts int64, retries int) (map[string][]byte, error) {
	fields := rec.Fields
	for attempt := 0; ; attempt++ {
		if lockBytes := fields[lockField]; len(lockBytes) > 0 {
			lk, err := decodeLock(lockBytes)
			if err != nil {
				return nil, err
			}
			if lk.StartTS <= ts {
				if m.maybeResolve(ctx, table, key, lk) {
					// Resolved; reload and re-check.
				} else if attempt >= retries {
					return nil, fmt.Errorf("%w: %s/%s by txn@%d", ErrLocked, table, key, lk.StartTS)
				} else if err := sleepCtx(ctx, m.opts.ReadLockBackoff); err != nil {
					return nil, err
				}
				var lerr error
				fields, _, lerr = m.loadRecord(ctx, table, key)
				if lerr != nil {
					return nil, lerr
				}
				if fields == nil {
					return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, table, key)
				}
				continue
			}
		}
		break
	}
	val, _ := versionAt(fields, ts)
	if val == nil {
		return nil, fmt.Errorf("%w: %s/%s (no version ≤ %d)", ErrNotFound, table, key, ts)
	}
	del, user, err := decodePending(val)
	if err != nil {
		return nil, err
	}
	if del {
		return nil, fmt.Errorf("%w: %s/%s (tombstone)", ErrNotFound, table, key)
	}
	return user, nil
}

// commitRecord replaces this transaction's lock on table/key with a
// committed version at commitTS. It is used for both the primary (the
// commit point, where failure aborts) and secondaries / recovery
// roll-forward (where a missing lock means someone else finished the
// job).
func (m *Manager) commitRecord(ctx context.Context, table, key string, startTS, commitTS int64) error {
	for {
		fields, ver, err := m.loadRecord(ctx, table, key)
		if err != nil {
			return err
		}
		if fields == nil {
			return fmt.Errorf("record vanished")
		}
		lockBytes := fields[lockField]
		if len(lockBytes) == 0 {
			// Lock gone: either already committed (fine) or rolled
			// back (conflict for the primary path).
			if _, ok := fields[dataField(commitTS)]; ok {
				return nil
			}
			return fmt.Errorf("lock lost before commit")
		}
		lk, err := decodeLock(lockBytes)
		if err != nil {
			return err
		}
		if lk.StartTS != startTS {
			return fmt.Errorf("lock stolen by txn@%d", lk.StartTS)
		}
		next := make(map[string][]byte, len(fields)+1)
		for f, v := range fields {
			if f == lockField || f == pendingFld {
				continue
			}
			next[f] = v
		}
		next[dataField(commitTS)] = fields[pendingFld]
		pruneVersions(next, m.opts.MaxVersions)
		if _, err := m.store.Put(ctx, table, key, next, ver); err != nil {
			if errors.Is(err, kvstore.ErrVersionMismatch) {
				continue // raced with a reader's resolution; reload
			}
			return err
		}
		return nil
	}
}

// rollbackLock removes a lock installed by startTS (and its pending
// value) from table/key. A lock held by someone else, or no lock at
// all, is left untouched.
func (m *Manager) rollbackLock(ctx context.Context, table, key string, startTS int64) error {
	for {
		fields, ver, err := m.loadRecord(ctx, table, key)
		if err != nil {
			return err
		}
		if fields == nil {
			return nil
		}
		lockBytes := fields[lockField]
		if len(lockBytes) == 0 {
			return nil
		}
		lk, err := decodeLock(lockBytes)
		if err != nil {
			return err
		}
		if lk.StartTS != startTS {
			return nil
		}
		next := make(map[string][]byte, len(fields))
		for f, v := range fields {
			if f == lockField || f == pendingFld {
				continue
			}
			next[f] = v
		}
		if len(next) == 0 {
			// The prewrite created this record; remove it entirely.
			err = m.store.Delete(ctx, table, key, ver)
		} else {
			_, err = m.store.Put(ctx, table, key, next, ver)
		}
		if err != nil {
			if errors.Is(err, kvstore.ErrVersionMismatch) {
				continue
			}
			if errors.Is(err, kvstore.ErrNotFound) {
				return nil
			}
			return err
		}
		return nil
	}
}

// maybeResolve handles a foreign lock: when it is older than the lock
// TTL the writer is presumed dead and the lock is resolved through
// its primary — rolled forward if the primary committed, rolled back
// otherwise. Returns true when the lock was (probably) cleared.
func (m *Manager) maybeResolve(ctx context.Context, table, key string, lk lockRecord) bool {
	// Consult the primary first: rolling FORWARD a transaction whose
	// primary committed is safe at any lock age (the outcome is
	// decided), so readers never stall behind a committed-but-
	// unfinished writer.
	pFields, _, err := m.loadRecord(ctx, lk.PrimaryTable, lk.PrimaryKey)
	if err != nil {
		return false
	}
	// Did the primary commit? Percolator stores the start_ts in the
	// write column; we scan the primary's committed versions for one
	// recorded at this lock's start_ts.
	if commitTS := m.findCommit(pFields, lk.StartTS); commitTS > 0 {
		m.recovered.Add(1)
		m.commitRecord(ctx, table, key, lk.StartTS, commitTS)
		return true
	}
	// Rolling BACK requires presuming the writer dead: TTL-gated.
	age := time.Duration(time.Now().UnixNano() - lk.WallNano)
	if age < m.opts.LockTTL {
		return false
	}
	m.recovered.Add(1)
	// Primary still locked by the same transaction → roll it back
	// first, then this record.
	if lockBytes := pFields[lockField]; len(lockBytes) > 0 {
		if plk, err := decodeLock(lockBytes); err == nil && plk.StartTS == lk.StartTS {
			if err := m.rollbackLock(ctx, lk.PrimaryTable, lk.PrimaryKey, lk.StartTS); err != nil {
				return false
			}
		}
	}
	m.rollbackLock(ctx, table, key, lk.StartTS)
	return true
}

// findCommit searches a record's committed versions for one written
// by startTS and returns its commit_ts (0 when none).
func (m *Manager) findCommit(fields map[string][]byte, startTS int64) int64 {
	for f, v := range fields {
		if cts := parseDataField(f); cts > 0 {
			if sts, ok := pendingStartTS(v); ok && sts == startTS {
				return cts
			}
		}
	}
	return 0
}

// pruneVersions drops the oldest committed versions beyond max.
func pruneVersions(fields map[string][]byte, max int) {
	var tss []int64
	for f := range fields {
		if ts := parseDataField(f); ts >= 0 {
			tss = append(tss, ts)
		}
	}
	if len(tss) <= max {
		return
	}
	sortInt64s(tss)
	for _, ts := range tss[:len(tss)-max] {
		delete(fields, dataField(ts))
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
