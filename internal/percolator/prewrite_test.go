package percolator

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/oracle"
	"ycsbt/internal/txn"
)

// countingStore wraps a Store+BatchStore and counts every call class,
// so tests can prove which path a commit took.
type countingStore struct {
	inner     *txn.LocalStore
	gets      atomic.Int64
	puts      atomic.Int64
	batchGets atomic.Int64
	batchMuts atomic.Int64
}

func (c *countingStore) Name() string { return c.inner.Name() }

func (c *countingStore) Get(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error) {
	c.gets.Add(1)
	return c.inner.Get(ctx, table, key)
}

func (c *countingStore) Put(ctx context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error) {
	c.puts.Add(1)
	return c.inner.Put(ctx, table, key, fields, expect)
}

func (c *countingStore) Delete(ctx context.Context, table, key string, expect uint64) error {
	return c.inner.Delete(ctx, table, key, expect)
}

func (c *countingStore) Scan(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error) {
	return c.inner.Scan(ctx, table, startKey, count)
}

func (c *countingStore) BatchGet(ctx context.Context, reqs []kvstore.GetReq) ([]kvstore.GetResult, error) {
	c.batchGets.Add(1)
	return c.inner.BatchGet(ctx, reqs)
}

func (c *countingStore) BatchApply(ctx context.Context, muts []kvstore.Mutation) ([]kvstore.MutResult, error) {
	c.batchMuts.Add(1)
	return c.inner.BatchApply(ctx, muts)
}

// noBatchStore hides the batch capability so the same manager takes
// the per-key prewrite path.
type noBatchStore struct{ *countingStore }

func (n noBatchStore) BatchGet()   {} // shadow with the wrong arity
func (n noBatchStore) BatchApply() {}

func newCountingManager(t *testing.T) (*Manager, *countingStore) {
	t.Helper()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	cs := &countingStore{inner: txn.NewLocalStore("local", inner)}
	m, err := NewManager(Options{}, cs, oracle.NewLocal())
	if err != nil {
		t.Fatal(err)
	}
	return m, cs
}

func TestBatchedPrewriteUsesOneRoundTripPerPhase(t *testing.T) {
	ctx := context.Background()
	m, cs := newCountingManager(t)

	const n = 8
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for i := 0; i < n; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), bal(int64(i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := cs.batchGets.Load(); got != 1 {
		t.Errorf("prewrite issued %d batched reads, want 1", got)
	}
	if got := cs.batchMuts.Load(); got != 1 {
		t.Errorf("prewrite issued %d batched writes, want 1", got)
	}
	// No per-key store reads during prewrite. The commit phase still
	// loads each record once (commitRecord), so the budget is exactly
	// one get per key, not the per-key prewrite's two.
	if got := cs.gets.Load(); got > n {
		t.Errorf("batched prewrite still read per key: %d gets for %d records", got, n)
	}

	// The committed data is intact and unlocked.
	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback(ctx)
	for i := 0; i < n; i++ {
		f, err := tx.Get(ctx, "t", fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if getBal(t, f) != int64(i) {
			t.Errorf("k%d = %d", i, getBal(t, f))
		}
	}
}

func TestBatchedPrewriteSingleKeySkipsBatch(t *testing.T) {
	ctx := context.Background()
	m, cs := newCountingManager(t)
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "solo", bal(1))
	}); err != nil {
		t.Fatal(err)
	}
	if got := cs.batchGets.Load(); got != 0 {
		t.Errorf("single-key txn used the batch path: %d batched reads", got)
	}
}

func TestPrewriteFallsBackWithoutBatchCapability(t *testing.T) {
	ctx := context.Background()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	cs := &countingStore{inner: txn.NewLocalStore("local", inner)}
	m, err := NewManager(Options{}, noBatchStore{cs}, oracle.NewLocal())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for i := 0; i < 4; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), bal(int64(i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := cs.batchGets.Load(); got != 0 {
		t.Fatalf("store without the capability got %d batched reads", got)
	}
	if got := cs.gets.Load(); got < 4 {
		t.Fatalf("per-key fallback read only %d times for 4 records", got)
	}
}

func TestBatchedPrewriteWriteWriteConflict(t *testing.T) {
	ctx := context.Background()
	m, _ := newCountingManager(t)

	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "a", bal(1))
	}); err != nil {
		t.Fatal(err)
	}
	// tx1 snapshots, then tx2 commits a newer version of a — tx1's
	// batched prewrite must observe the newer commit and abort.
	tx1, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "a", bal(2))
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Put("t", "a", bal(99)); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Put("t", "b", bal(1)); err != nil { // ≥2 keys → batch path
		t.Fatal(err)
	}
	if err := tx1.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit over a newer version: %v, want ErrConflict", err)
	}
	// The loser's locks are gone: a fresh writer succeeds.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "b", bal(7))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedPrewriteForeignLockFallsToSlowPath(t *testing.T) {
	ctx := context.Background()
	m, _ := newCountingManager(t)

	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Put("t", "a", bal(1)); err != nil {
			return err
		}
		return tx.Put("t", "b", bal(2))
	}); err != nil {
		t.Fatal(err)
	}
	// An abandoned transaction leaves a fresh foreign lock on "a".
	blocker, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := blocker.Put("t", "a", bal(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.prewriteAll(ctx, []tkey{{table: "t", key: "a"}}, tkey{table: "t", key: "a"}); err != nil {
		t.Fatal(err)
	}

	// A competing multi-key writer hits the lock on "a": the batch path
	// routes it to the per-key resolver, which cannot wait out a live
	// lock and aborts — but "b", clean, must not be left locked.
	loser, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := loser.Put("t", "a", bal(100)); err != nil {
		t.Fatal(err)
	}
	if err := loser.Put("t", "b", bal(200)); err != nil {
		t.Fatal(err)
	}
	if err := loser.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit against a held lock: %v, want ErrConflict", err)
	}

	// Release the blocker; both records stay writable afterwards.
	if err := blocker.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Put("t", "a", bal(3)); err != nil {
			return err
		}
		return tx.Put("t", "b", bal(4))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedPrewriteMixedInsertAndDelete(t *testing.T) {
	ctx := context.Background()
	m, _ := newCountingManager(t)

	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "old", bal(1))
	}); err != nil {
		t.Fatal(err)
	}
	// One transaction inserts a fresh key (MustNotExist expect) and
	// deletes an existing one through the same batched prewrite.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Put("t", "new", bal(9)); err != nil {
			return err
		}
		return tx.Delete("t", "old")
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback(ctx)
	if f, err := tx.Get(ctx, "t", "new"); err != nil || getBal(t, f) != 9 {
		t.Fatalf("new: %v / %v", f, err)
	}
	if _, err := tx.Get(ctx, "t", "old"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old after delete: %v", err)
	}
}
