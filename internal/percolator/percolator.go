// Package percolator implements a Percolator-style snapshot-isolation
// transaction protocol — the baseline design the paper contrasts its
// client-coordinated library against (Section II-B: Percolator
// "depends on a central fault-tolerant timestamp service called a
// timestamp oracle (TO) ... making this technique unsuitable for
// client applications spread across relatively high-latency WANs").
//
// The protocol (Peng & Dabek, OSDI'10), adapted to a versioned
// key-value store whose conditional put stands in for BigTable's
// single-row transactions:
//
//   - Begin draws start_ts from the timestamp oracle (one round trip).
//   - Reads return the newest committed version with commit_ts ≤
//     start_ts; a pending lock from an older transaction is resolved
//     (rolled forward or back via its primary) or waited out.
//   - Commit prewrites every buffered write: it installs a lock
//     naming the transaction's primary record plus the pending value,
//     failing on any committed version newer than start_ts
//     (write-write conflict) or any foreign lock.
//   - commit_ts is drawn from the oracle (a second round trip); the
//     primary's lock is atomically replaced by a committed version at
//     commit_ts — the commit point — and the secondaries follow.
//
// Every record keeps its recent committed versions in reserved
// "_perc:d:<commit_ts>" fields, so snapshot reads need no separate
// version store. Crash recovery mirrors Percolator: a reader that
// finds a lock older than the lock TTL consults the lock's primary —
// if the primary committed, the lock is rolled forward with the
// primary's commit_ts; otherwise it is rolled back.
//
// The two oracle round trips per read-write transaction (one per
// read-only) are the point of the comparison experiment in
// internal/bench: as oracle RTT grows, Percolator-style throughput
// collapses while the client-coordinated design is unaffected.
package percolator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/oracle"
)

// Store is the storage interface the protocol needs — identical to
// the client-coordinated library's (txn.Store), so every store
// substrate serves both protocols.
type Store interface {
	Name() string
	Get(ctx context.Context, table, key string) (*kvstore.VersionedRecord, error)
	Put(ctx context.Context, table, key string, fields map[string][]byte, expect uint64) (uint64, error)
	Delete(ctx context.Context, table, key string, expect uint64) error
	Scan(ctx context.Context, table, startKey string, count int) ([]kvstore.VersionedKV, error)
}

// Sentinel errors.
var (
	// ErrConflict reports a write-write conflict or lost race; retry.
	ErrConflict = errors.New("percolator: conflict, transaction aborted")
	// ErrNotFound reports a missing record (at this snapshot).
	ErrNotFound = errors.New("percolator: key not found")
	// ErrLocked reports a record held by an in-flight transaction
	// that could not be waited out.
	ErrLocked = errors.New("percolator: record locked")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("percolator: transaction already finished")
)

// Reserved field names.
const (
	lockField   = "_perc:lock"    // encoded lockRecord
	pendingFld  = "_perc:pending" // encoded pending write (kind+image)
	dataPrefix  = "_perc:d:"      // + %020d commit_ts → encoded version
	tsFieldWide = 20
)

// Options tunes a Manager.
type Options struct {
	// LockTTL is how old a lock must be before another client may
	// resolve it as crashed. Committers enforce LockTTL/2 between
	// prewrite and primary commit. Default 10s.
	LockTTL time.Duration
	// MaxVersions bounds the committed versions retained per record.
	// Default 8.
	MaxVersions int
	// ReadLockRetries is how many times a read waits (with backoff)
	// on a fresh foreign lock before failing with ErrLocked.
	// Default 10.
	ReadLockRetries int
	// ReadLockBackoff is the wait between lock retries. Default 2ms.
	ReadLockBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.LockTTL <= 0 {
		o.LockTTL = 10 * time.Second
	}
	if o.MaxVersions <= 0 {
		o.MaxVersions = 8
	}
	if o.ReadLockRetries <= 0 {
		o.ReadLockRetries = 10
	}
	if o.ReadLockBackoff <= 0 {
		o.ReadLockBackoff = 2 * time.Millisecond
	}
	return o
}

// Manager coordinates Percolator-style transactions over one store
// and one timestamp oracle.
type Manager struct {
	store Store
	to    oracle.Oracle
	opts  Options

	commits   atomic.Int64
	aborts    atomic.Int64
	conflicts atomic.Int64
	recovered atomic.Int64
}

// NewManager returns a manager over store using the given oracle.
func NewManager(opts Options, store Store, to oracle.Oracle) (*Manager, error) {
	if store == nil || to == nil {
		return nil, errors.New("percolator: store and oracle required")
	}
	return &Manager{store: store, to: to, opts: opts.withDefaults()}, nil
}

// Stats reports commit/abort/conflict/recovery counters.
func (m *Manager) Stats() (commits, aborts, conflicts, recovered int64) {
	return m.commits.Load(), m.aborts.Load(), m.conflicts.Load(), m.recovered.Load()
}

// Begin starts a transaction, drawing start_ts from the oracle.
func (m *Manager) Begin(ctx context.Context) (*Txn, error) {
	startTS, err := m.to.Next(ctx)
	if err != nil {
		return nil, fmt.Errorf("percolator: fetching start_ts: %w", err)
	}
	return &Txn{
		m:       m,
		startTS: startTS,
		writes:  make(map[tkey]*bufWrite),
	}, nil
}

// RunInTxn executes fn with commit and conflict retry, like
// txn.Manager.RunInTxn.
func (m *Manager) RunInTxn(ctx context.Context, maxRetries int, fn func(*Txn) error) error {
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		t, err := m.Begin(ctx)
		if err != nil {
			return err
		}
		if err := fn(t); err != nil {
			t.Rollback(ctx)
			if errors.Is(err, ErrConflict) || errors.Is(err, ErrLocked) {
				lastErr = err
				continue
			}
			return err
		}
		err = t.Commit(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) && !errors.Is(err, ErrLocked) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("percolator: retries exhausted: %w", lastErr)
}

// tkey identifies a record.
type tkey struct{ table, key string }

func (k tkey) less(o tkey) bool {
	if k.table != o.table {
		return k.table < o.table
	}
	return k.key < o.key
}

// bufWrite is one buffered write.
type bufWrite struct {
	del    bool
	fields map[string][]byte

	prewritten  bool
	prewriteVer uint64
}

// Txn is one Percolator-style transaction, confined to one goroutine.
type Txn struct {
	m       *Manager
	startTS int64
	done    bool
	writes  map[tkey]*bufWrite
}

// StartTS returns the transaction's snapshot timestamp.
func (t *Txn) StartTS() int64 { return t.startTS }

// Get returns the user fields of table/key as of the snapshot,
// honouring the transaction's own buffered writes.
func (t *Txn) Get(ctx context.Context, table, key string) (map[string][]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if w, ok := t.writes[tkey{table, key}]; ok {
		if w.del {
			return nil, fmt.Errorf("%w: %s/%s (deleted in this txn)", ErrNotFound, table, key)
		}
		return cloneFields(w.fields), nil
	}
	return t.m.readAt(ctx, table, key, t.startTS)
}

// Put buffers a full-record write.
func (t *Txn) Put(table, key string, fields map[string][]byte) error {
	if t.done {
		return ErrTxnDone
	}
	for f := range fields {
		if strings.HasPrefix(f, "_perc:") {
			return fmt.Errorf("percolator: field name %q is reserved", f)
		}
	}
	t.writes[tkey{table, key}] = &bufWrite{fields: cloneFields(fields)}
	return nil
}

// Delete buffers a delete (a committed tombstone version).
func (t *Txn) Delete(table, key string) error {
	if t.done {
		return ErrTxnDone
	}
	t.writes[tkey{table, key}] = &bufWrite{del: true}
	return nil
}

// Scan returns up to count live records from startKey at the
// snapshot, overlaying buffered writes.
func (t *Txn) Scan(ctx context.Context, table, startKey string, count int) ([]ScanKV, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	kvs, err := t.m.store.Scan(ctx, table, startKey, count)
	if err != nil {
		return nil, err
	}
	out := make([]ScanKV, 0, len(kvs))
	for _, kv := range kvs {
		k := tkey{table, kv.Key}
		if w, ok := t.writes[k]; ok {
			if !w.del {
				out = append(out, ScanKV{Key: kv.Key, Fields: cloneFields(w.fields)})
			}
			continue
		}
		fields, err := t.m.resolveRead(ctx, table, kv.Key, kv.Record, t.startTS, t.m.opts.ReadLockRetries)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return nil, err
		}
		out = append(out, ScanKV{Key: kv.Key, Fields: fields})
	}
	// Overlay buffered puts in range but absent from the store page.
	present := map[string]bool{}
	for _, kv := range out {
		present[kv.Key] = true
	}
	for k, w := range t.writes {
		if k.table == table && !w.del && k.key >= startKey && !present[k.key] {
			out = append(out, ScanKV{Key: k.key, Fields: cloneFields(w.fields)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if count >= 0 && len(out) > count {
		out = out[:count]
	}
	return out, nil
}

// ScanKV is one scan result.
type ScanKV struct {
	Key    string
	Fields map[string][]byte
}

// Rollback aborts the transaction, removing any locks it installed.
func (t *Txn) Rollback(ctx context.Context) error {
	if t.done {
		return nil
	}
	t.done = true
	t.m.aborts.Add(1)
	return t.removeLocks(ctx)
}

func (t *Txn) removeLocks(ctx context.Context) error {
	var firstErr error
	for k, w := range t.writes {
		if !w.prewritten {
			continue
		}
		if err := t.m.rollbackLock(ctx, k.table, k.key, t.startTS); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Commit runs prewrite → commit_ts → primary commit → secondaries.
func (t *Txn) Commit(ctx context.Context) error {
	if t.done {
		return ErrTxnDone
	}
	if len(t.writes) == 0 {
		t.done = true
		t.m.commits.Add(1)
		return nil
	}
	keys := make([]tkey, 0, len(t.writes))
	for k := range t.writes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	primary := keys[0]

	// Cleanup after failures (and post-commit-point work) runs on a
	// detached context so it survives caller cancellation.
	cleanupCtx := context.WithoutCancel(ctx)

	prewriteStart := time.Now()
	if k, err := t.prewriteAll(ctx, keys, primary); err != nil {
		t.done = true
		t.m.conflicts.Add(1)
		t.m.aborts.Add(1)
		t.removeLocks(cleanupCtx)
		return fmt.Errorf("%w: prewriting %s/%s: %v", ErrConflict, k.table, k.key, err)
	}

	// Second oracle round trip: the commit timestamp.
	commitTS, err := t.m.to.Next(ctx)
	if err != nil {
		t.done = true
		t.m.aborts.Add(1)
		t.removeLocks(cleanupCtx)
		return fmt.Errorf("percolator: fetching commit_ts: %w", err)
	}

	// Enforce the TTL discipline before the commit point so readers'
	// crash recovery never rolls back a live committer.
	if time.Since(prewriteStart) > t.m.opts.LockTTL/2 {
		t.done = true
		t.m.aborts.Add(1)
		t.removeLocks(cleanupCtx)
		return fmt.Errorf("%w: commit deadline exceeded", ErrConflict)
	}

	// Commit point: the primary.
	if err := t.m.commitRecord(ctx, primary.table, primary.key, t.startTS, commitTS); err != nil {
		t.done = true
		t.m.aborts.Add(1)
		t.removeLocks(cleanupCtx)
		return fmt.Errorf("%w: committing primary: %v", ErrConflict, err)
	}
	// Secondaries: the transaction is committed; finish on the
	// detached context. Failures are recoverable by readers via the
	// primary, so they are best-effort here.
	for _, k := range keys[1:] {
		t.m.commitRecord(cleanupCtx, k.table, k.key, t.startTS, commitTS)
	}
	t.done = true
	t.m.commits.Add(1)
	return nil
}

// prewrite installs this transaction's lock and pending value on one
// record.
func (t *Txn) prewrite(ctx context.Context, k, primary tkey) error {
	w := t.writes[k]
	for attempt := 0; attempt < 2; attempt++ {
		rec, ver, err := t.m.loadRecord(ctx, k.table, k.key)
		if err != nil {
			return err
		}
		if rec != nil {
			// Write-write conflict: any version committed after our
			// snapshot.
			if maxCommitTS(rec) > t.startTS {
				return fmt.Errorf("newer committed version")
			}
			if lockBytes := rec[lockField]; len(lockBytes) > 0 {
				lk, err := decodeLock(lockBytes)
				if err != nil {
					return err
				}
				if lk.StartTS == t.startTS {
					return nil // already prewritten (retry path)
				}
				// Foreign lock: resolvable only if stale.
				if resolved := t.m.maybeResolve(ctx, k.table, k.key, lk); resolved {
					continue // reload and retry once
				}
				return fmt.Errorf("locked by txn@%d", lk.StartTS)
			}
		}
		fields := map[string][]byte{}
		for f, v := range rec {
			fields[f] = v
		}
		fields[lockField] = encodeLock(lockRecord{
			PrimaryTable: primary.table,
			PrimaryKey:   primary.key,
			StartTS:      t.startTS,
			WallNano:     time.Now().UnixNano(),
		})
		fields[pendingFld] = encodePending(w.del, t.startTS, w.fields)
		expect := ver
		if rec == nil {
			expect = kvstore.MustNotExist
		}
		newVer, err := t.m.store.Put(ctx, k.table, k.key, fields, expect)
		if err != nil {
			return err
		}
		w.prewritten = true
		w.prewriteVer = newVer
		return nil
	}
	return fmt.Errorf("lock not resolvable")
}

func cloneFields(in map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(in))
	for f, v := range in {
		out[f] = append([]byte(nil), v...)
	}
	return out
}
