package percolator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ycsbt/internal/cloudsim"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/obs"
	"ycsbt/internal/oracle"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
)

// Binding exposes the Percolator-style protocol as the "percolator"
// YCSB+T binding, mirroring the shape of the client-coordinated
// library's binding so the two protocols can be benchmarked
// apples-to-apples.
type Binding struct {
	m      *Manager
	closer func() error
}

// NewBinding wraps an existing manager.
func NewBinding(m *Manager) *Binding { return &Binding{m: m} }

func init() {
	db.Register("percolator", func() (db.DB, error) { return &Binding{}, nil })
}

// Init builds the manager from properties when opened by name:
// "percolator.backend" (memory|was|gcs), "percolator.oracle_rtt_us"
// (simulated round trip to the timestamp oracle, default 0).
func (b *Binding) Init(p *properties.Properties) error {
	if b.m != nil {
		return nil
	}
	var store Store
	var closer func() error
	reg := obs.Enabled(p.GetBool("obs.enabled", false))
	sim := func(cfg cloudsim.Config) *cloudsim.Store {
		cfg.Metrics = reg
		return cloudsim.New(cfg)
	}
	switch backend := p.GetString("percolator.backend", "memory"); backend {
	case "memory":
		inner, err := kvstore.Open(kvstore.Options{
			Shards:  p.GetInt("kvstore.shards", kvstore.DefaultShards),
			Metrics: reg,
		})
		if err != nil {
			return err
		}
		store, closer = txn.NewLocalStore("local", inner), inner.Close
	case "was":
		s := sim(cloudsim.WASPreset())
		store, closer = s, s.Close
	case "gcs":
		s := sim(cloudsim.GCSPreset())
		store, closer = s, s.Close
	default:
		return fmt.Errorf("percolator: unknown backend %q", backend)
	}
	var to oracle.Oracle = oracle.NewLocal()
	if u := p.GetString("percolator.oracle_url", ""); u != "" {
		to = oracle.NewClient(u, nil, p.GetInt64("percolator.oracle_batch", 1))
	}
	if rtt := p.GetInt64("percolator.oracle_rtt_us", 0); rtt > 0 {
		to = oracle.NewDelayed(to, time.Duration(rtt)*time.Microsecond)
	}
	m, err := NewManager(Options{}, store, to)
	if err != nil {
		closer()
		return err
	}
	b.m = m
	b.closer = closer
	return nil
}

// Cleanup closes stores the binding created.
func (b *Binding) Cleanup() error {
	if b.closer != nil {
		return b.closer()
	}
	return nil
}

// Manager exposes the underlying protocol manager.
func (b *Binding) Manager() *Manager { return b.m }

func translateErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNotFound):
		return fmt.Errorf("%w: %v", db.ErrNotFound, err)
	case errors.Is(err, ErrConflict), errors.Is(err, ErrLocked):
		return fmt.Errorf("%w: %v", db.ErrAborted, err)
	default:
		return err
	}
}

// Start implements db.TransactionalDB.
func (b *Binding) Start(ctx context.Context) (*db.TransactionContext, error) {
	t, err := b.m.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &db.TransactionContext{Handle: t}, nil
}

// Commit implements db.TransactionalDB.
func (b *Binding) Commit(ctx context.Context, tctx *db.TransactionContext) error {
	t, err := b.txnOf(tctx)
	if err != nil {
		return err
	}
	return translateErr(t.Commit(ctx))
}

// Abort implements db.TransactionalDB.
func (b *Binding) Abort(ctx context.Context, tctx *db.TransactionContext) error {
	t, err := b.txnOf(tctx)
	if err != nil {
		return err
	}
	return t.Rollback(ctx)
}

func (b *Binding) txnOf(tctx *db.TransactionContext) (*Txn, error) {
	if tctx == nil {
		return nil, errors.New("percolator: nil transaction context")
	}
	t, ok := tctx.Handle.(*Txn)
	if !ok {
		return nil, fmt.Errorf("percolator: foreign transaction context %T", tctx.Handle)
	}
	return t, nil
}

// WithTx implements db.ContextualDB.
func (b *Binding) WithTx(tctx *db.TransactionContext) db.DB {
	t, err := b.txnOf(tctx)
	if err != nil {
		return b
	}
	return &txView{b: b, t: t}
}

func (b *Binding) autoCommit(ctx context.Context, fn func(*Txn) error) error {
	return translateErr(b.m.RunInTxn(ctx, 3, fn))
}

// Read implements db.DB (auto-commit).
func (b *Binding) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	var out db.Record
	err := b.autoCommit(ctx, func(t *Txn) error {
		f, err := t.Get(ctx, table, key)
		if err != nil {
			return err
		}
		out = db.ProjectFields(f, fields)
		return nil
	})
	return out, err
}

// Scan implements db.DB (auto-commit).
func (b *Binding) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	var out []db.KV
	err := b.autoCommit(ctx, func(t *Txn) error {
		kvs, err := t.Scan(ctx, table, startKey, count)
		if err != nil {
			return err
		}
		out = out[:0]
		for _, kv := range kvs {
			out = append(out, db.KV{Key: kv.Key, Record: db.ProjectFields(kv.Fields, fields)})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return nil
	})
	return out, err
}

// Update implements db.DB (auto-commit read-merge-write).
func (b *Binding) Update(ctx context.Context, table, key string, values db.Record) error {
	return b.autoCommit(ctx, func(t *Txn) error {
		return txUpdate(ctx, t, table, key, values)
	})
}

// Insert implements db.DB (auto-commit).
func (b *Binding) Insert(ctx context.Context, table, key string, values db.Record) error {
	return b.autoCommit(ctx, func(t *Txn) error {
		return t.Put(table, key, values)
	})
}

// Delete implements db.DB (auto-commit).
func (b *Binding) Delete(ctx context.Context, table, key string) error {
	return b.autoCommit(ctx, func(t *Txn) error {
		return t.Delete(table, key)
	})
}

// txView is the in-transaction view.
type txView struct {
	b *Binding
	t *Txn
}

// Init implements db.DB.
func (v *txView) Init(*properties.Properties) error { return nil }

// Cleanup implements db.DB.
func (v *txView) Cleanup() error { return nil }

// Read implements db.DB inside the transaction.
func (v *txView) Read(ctx context.Context, table, key string, fields []string) (db.Record, error) {
	f, err := v.t.Get(ctx, table, key)
	if err != nil {
		return nil, translateErr(err)
	}
	return db.ProjectFields(f, fields), nil
}

// Scan implements db.DB inside the transaction.
func (v *txView) Scan(ctx context.Context, table, startKey string, count int, fields []string) ([]db.KV, error) {
	kvs, err := v.t.Scan(ctx, table, startKey, count)
	if err != nil {
		return nil, translateErr(err)
	}
	out := make([]db.KV, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, db.KV{Key: kv.Key, Record: db.ProjectFields(kv.Fields, fields)})
	}
	return out, nil
}

// Update implements db.DB inside the transaction.
func (v *txView) Update(ctx context.Context, table, key string, values db.Record) error {
	return translateErr(txUpdate(ctx, v.t, table, key, values))
}

// Insert implements db.DB inside the transaction.
func (v *txView) Insert(ctx context.Context, table, key string, values db.Record) error {
	return translateErr(v.t.Put(table, key, values))
}

// Delete implements db.DB inside the transaction.
func (v *txView) Delete(ctx context.Context, table, key string) error {
	return translateErr(v.t.Delete(table, key))
}

// txUpdate merges values over the snapshot image inside t.
func txUpdate(ctx context.Context, t *Txn, table, key string, values db.Record) error {
	cur, err := t.Get(ctx, table, key)
	if err != nil {
		return err
	}
	merged := make(map[string][]byte, len(cur)+len(values))
	for f, val := range cur {
		merged[f] = val
	}
	for f, val := range values {
		merged[f] = append([]byte(nil), val...)
	}
	return t.Put(table, key, merged)
}

var (
	_ db.TransactionalDB = (*Binding)(nil)
	_ db.ContextualDB    = (*Binding)(nil)
)
