package percolator

import "testing"

// FuzzDecodeLock checks the lock decoder never panics.
func FuzzDecodeLock(f *testing.F) {
	f.Add(encodeLock(lockRecord{PrimaryTable: "t", PrimaryKey: "k", StartTS: 1, WallNano: 2}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x61})
	f.Fuzz(func(t *testing.T, data []byte) {
		lk, err := decodeLock(data)
		if err != nil {
			return
		}
		got, err2 := decodeLock(encodeLock(lk))
		if err2 != nil || got != lk {
			t.Fatalf("round trip: %+v vs %+v (%v)", got, lk, err2)
		}
	})
}

// FuzzDecodePending checks the pending-payload decoder never panics.
func FuzzDecodePending(f *testing.F) {
	f.Add(encodePending(false, 42, map[string][]byte{"a": []byte("1")}))
	f.Add(encodePending(true, 7, nil))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		del, fields, err := decodePending(data)
		if err != nil {
			return
		}
		sts, ok := pendingStartTS(data)
		if !ok {
			t.Fatal("accepted payload has no start_ts")
		}
		round := encodePending(del, sts, fields)
		d2, f2, err2 := decodePending(round)
		if err2 != nil || d2 != del || len(f2) != len(fields) {
			t.Fatalf("round trip mismatch: %v %v %v", d2, f2, err2)
		}
	})
}
