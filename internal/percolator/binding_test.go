package percolator

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"ycsbt/internal/client"
	"ycsbt/internal/db"
	"ycsbt/internal/kvstore"
	"ycsbt/internal/measurement"
	"ycsbt/internal/oracle"
	"ycsbt/internal/properties"
	"ycsbt/internal/txn"
	"ycsbt/internal/workload"
)

func newTestBinding(t *testing.T) *Binding {
	t.Helper()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	m, err := NewManager(Options{}, txn.NewLocalStore("local", inner), oracle.NewLocal())
	if err != nil {
		t.Fatal(err)
	}
	return NewBinding(m)
}

func TestBindingAutoCommitCRUD(t *testing.T) {
	ctx := context.Background()
	b := newTestBinding(t)
	if err := b.Init(properties.New()); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(ctx, "t", "k", db.Record{"f": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	rec, err := b.Read(ctx, "t", "k", nil)
	if err != nil || string(rec["f"]) != "1" {
		t.Fatalf("Read = %v, %v", rec, err)
	}
	if err := b.Update(ctx, "t", "k", db.Record{"g": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	rec, _ = b.Read(ctx, "t", "k", nil)
	if string(rec["f"]) != "1" || string(rec["g"]) != "2" {
		t.Errorf("merged = %v", rec)
	}
	rec, _ = b.Read(ctx, "t", "k", []string{"g"})
	if len(rec) != 1 {
		t.Errorf("projection = %v", rec)
	}
	kvs, err := b.Scan(ctx, "t", "", 5, nil)
	if err != nil || len(kvs) != 1 {
		t.Errorf("Scan = %v, %v", kvs, err)
	}
	if err := b.Delete(ctx, "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(ctx, "t", "k", nil); !errors.Is(err, db.ErrNotFound) {
		t.Errorf("Read deleted = %v", err)
	}
	if err := b.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestBindingTransactionalFlow(t *testing.T) {
	ctx := context.Background()
	b := newTestBinding(t)
	tctx, err := b.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	view := b.WithTx(tctx)
	if err := view.Insert(ctx, "t", "a", db.Record{"bal": []byte("10")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(ctx, tctx); err != nil {
		t.Fatal(err)
	}
	rec, err := b.Read(ctx, "t", "a", nil)
	if err != nil || string(rec["bal"]) != "10" {
		t.Fatalf("after commit = %v, %v", rec, err)
	}
	// Abort path.
	t2, _ := b.Start(ctx)
	v2 := b.WithTx(t2)
	if err := v2.Update(ctx, "t", "a", db.Record{"bal": []byte("99")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Abort(ctx, t2); err != nil {
		t.Fatal(err)
	}
	rec, _ = b.Read(ctx, "t", "a", nil)
	if string(rec["bal"]) != "10" {
		t.Errorf("aborted update leaked: %s", rec["bal"])
	}
	// Context validation.
	if err := b.Commit(ctx, nil); err == nil {
		t.Error("nil tctx accepted")
	}
	if v := b.WithTx(&db.TransactionContext{Handle: 42}); v != b {
		t.Error("foreign WithTx should return the binding")
	}
}

func TestBindingInitBackends(t *testing.T) {
	for _, backend := range []string{"memory", "was", "gcs"} {
		b := &Binding{}
		p := properties.FromMap(map[string]string{
			"percolator.backend":      backend,
			"cloudsim.readlatency_us": "0",
		})
		if err := b.Init(p); err != nil {
			t.Fatalf("Init(%s) = %v", backend, err)
		}
		b.Cleanup()
	}
	b := &Binding{}
	if err := b.Init(properties.FromMap(map[string]string{"percolator.backend": "nope"})); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestPercolatorCEWInvariant(t *testing.T) {
	// The Tier 6 check against the Percolator-style protocol: the CEW
	// invariant must hold (snapshot isolation forbids lost updates).
	ctx := context.Background()
	b := newTestBinding(t)
	p := properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"recordcount":               "300",
		"totalcash":                 "30000",
		"operationcount":            "8000",
		"threadcount":               "8",
		"readproportion":            "0.5",
		"readmodifywriteproportion": "0.5",
		"requestdistribution":       "zipfian",
	})
	w, err := workload.New("closedeconomy")
	if err != nil {
		t.Fatal(err)
	}
	reg := measurement.NewRegistry(0)
	if err := w.Init(p, reg); err != nil {
		t.Fatal(err)
	}
	c, err := client.New(client.BuildConfig(p), w, b, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Validation == nil || !res.Validation.Valid {
		t.Fatalf("Percolator CEW broke the invariant: %+v", res.Validation)
	}
	t.Logf("percolator CEW: %d ops, %d aborts, score %g",
		res.Operations, res.Aborts, res.Validation.AnomalyScore)
}

func TestPercolatorWithRemoteOracle(t *testing.T) {
	// Two managers ("client hosts") share one HTTP timestamp oracle
	// and one store — the multi-process Percolator deployment shape.
	srv := httptest.NewServer(oracle.NewServer(oracle.NewLocal()))
	defer srv.Close()
	inner := kvstore.OpenMemory()
	defer inner.Close()
	store := txn.NewLocalStore("local", inner)
	newM := func() *Manager {
		m, err := NewManager(Options{}, store, oracle.NewClient(srv.URL, srv.Client(), 1))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := newM(), newM()
	ctx := context.Background()
	if err := m1.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "k", map[string][]byte{"n": []byte("1")})
	}); err != nil {
		t.Fatal(err)
	}
	// m2's snapshot (timestamp from the shared oracle) sees m1's commit.
	var got string
	if err := m2.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Get(ctx, "t", "k")
		if err != nil {
			return err
		}
		got = string(f["n"])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Errorf("cross-manager read = %q", got)
	}
	// Conflicts across managers behave as within one.
	t1, _ := m1.Begin(ctx)
	t2, _ := m2.Begin(ctx)
	t1.Get(ctx, "t", "k")
	t2.Get(ctx, "t", "k")
	t1.Put("t", "k", map[string][]byte{"n": []byte("2")})
	t2.Put("t", "k", map[string][]byte{"n": []byte("3")})
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Errorf("cross-manager conflict = %v", err)
	}
}

func TestBindingInitRemoteOracle(t *testing.T) {
	srv := httptest.NewServer(oracle.NewServer(oracle.NewLocal()))
	defer srv.Close()
	b := &Binding{}
	p := properties.FromMap(map[string]string{
		"percolator.backend":      "memory",
		"percolator.oracle_url":   srv.URL,
		"percolator.oracle_batch": "10",
	})
	if err := b.Init(p); err != nil {
		t.Fatal(err)
	}
	defer b.Cleanup()
	ctx := context.Background()
	if err := b.Insert(ctx, "t", "k", db.Record{"f": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	rec, err := b.Read(ctx, "t", "k", nil)
	if err != nil || string(rec["f"]) != "v" {
		t.Fatalf("read through remote-oracle binding = %v, %v", rec, err)
	}
}
