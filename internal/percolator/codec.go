package percolator

import (
	"encoding/binary"
	"errors"
	"sort"
)

// Wire encodings for the reserved fields. All integers little-endian;
// strings and values uvarint-length-prefixed.

// lockRecord is the decoded _perc:lock field: which transaction holds
// the record, and where its primary lives.
type lockRecord struct {
	PrimaryTable string
	PrimaryKey   string
	StartTS      int64
	WallNano     int64 // wall-clock time of the prewrite, for the TTL
}

func encodeLock(lk lockRecord) []byte {
	buf := make([]byte, 0, 32+len(lk.PrimaryTable)+len(lk.PrimaryKey))
	buf = appendChunk(buf, []byte(lk.PrimaryTable))
	buf = appendChunk(buf, []byte(lk.PrimaryKey))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lk.StartTS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lk.WallNano))
	return buf
}

func decodeLock(buf []byte) (lockRecord, error) {
	var lk lockRecord
	tbl, rest, err := readChunk(buf)
	if err != nil {
		return lk, errors.New("percolator: corrupt lock (table)")
	}
	key, rest, err := readChunk(rest)
	if err != nil {
		return lk, errors.New("percolator: corrupt lock (key)")
	}
	if len(rest) != 16 {
		return lk, errors.New("percolator: corrupt lock (timestamps)")
	}
	lk.PrimaryTable = string(tbl)
	lk.PrimaryKey = string(key)
	lk.StartTS = int64(binary.LittleEndian.Uint64(rest[:8]))
	lk.WallNano = int64(binary.LittleEndian.Uint64(rest[8:]))
	return lk, nil
}

// Pending / committed version payload:
//
//	kind(1: 0=put 1=delete) startTS(8) nfields {name value}*
//
// The start_ts inside the payload is what lets crash recovery match a
// committed version on the primary back to the lock that references
// it (Percolator's write-column start_ts pointer).

func encodePending(del bool, startTS int64, fields map[string][]byte) []byte {
	kind := byte(0)
	if del {
		kind = 1
	}
	buf := make([]byte, 0, 16)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(startTS))
	names := make([]string, 0, len(fields))
	for f := range fields {
		names = append(names, f)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, f := range names {
		buf = appendChunk(buf, []byte(f))
		buf = appendChunk(buf, fields[f])
	}
	return buf
}

func decodePending(buf []byte) (del bool, fields map[string][]byte, err error) {
	if len(buf) < 9 {
		return false, nil, errors.New("percolator: corrupt pending payload")
	}
	del = buf[0] == 1
	rest := buf[9:]
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return false, nil, errors.New("percolator: corrupt pending field count")
	}
	rest = rest[w:]
	fields = make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		var name, val []byte
		name, rest, err = readChunk(rest)
		if err != nil {
			return false, nil, err
		}
		val, rest, err = readChunk(rest)
		if err != nil {
			return false, nil, err
		}
		fields[string(name)] = append([]byte(nil), val...)
	}
	if len(rest) != 0 {
		return false, nil, errors.New("percolator: trailing pending bytes")
	}
	return del, fields, nil
}

// pendingStartTS extracts just the start_ts from a pending/committed
// payload.
func pendingStartTS(buf []byte) (int64, bool) {
	if len(buf) < 9 {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(buf[1:9])), true
}

func appendChunk(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readChunk(buf []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < l {
		return nil, nil, errors.New("percolator: truncated chunk")
	}
	return buf[n : n+int(l)], buf[n+int(l):], nil
}
