package percolator

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
	"ycsbt/internal/oracle"
	"ycsbt/internal/txn"
)

func newTestManager(t *testing.T, opts Options) (*Manager, *kvstore.Store) {
	t.Helper()
	inner := kvstore.OpenMemory()
	t.Cleanup(func() { inner.Close() })
	m, err := NewManager(opts, txn.NewLocalStore("local", inner), oracle.NewLocal())
	if err != nil {
		t.Fatal(err)
	}
	return m, inner
}

func bal(n int64) map[string][]byte {
	return map[string][]byte{"balance": []byte(strconv.FormatInt(n, 10))}
}

func getBal(t *testing.T, f map[string][]byte) int64 {
	t.Helper()
	n, err := strconv.ParseInt(string(f["balance"]), 10, 64)
	if err != nil {
		t.Fatalf("bad balance %q: %v", f["balance"], err)
	}
	return n
}

func TestCommitAndSnapshotRead(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})

	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Put("t", "a", bal(10)); err != nil {
			return err
		}
		return tx.Put("t", "b", bal(20))
	}); err != nil {
		t.Fatal(err)
	}
	// A later snapshot sees the committed values.
	tx, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := tx.Get(ctx, "t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, fa) != 10 {
		t.Errorf("a = %d", getBal(t, fa))
	}
	tx.Rollback(ctx)
	commits, _, _, _ := m.Stats()
	if commits != 1 {
		t.Errorf("commits = %d", commits)
	}
}

func TestSnapshotIsolationReadsOldVersion(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "k", bal(1)) })

	// T1 snapshots before T2 commits a new version; T1 must keep
	// seeing the old value (MVCC), not the new one.
	t1, _ := m.Begin(ctx)
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "k", bal(2)) }); err != nil {
		t.Fatal(err)
	}
	f, err := t1.Get(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if getBal(t, f) != 1 {
		t.Errorf("snapshot read = %d, want 1 (old version)", getBal(t, f))
	}
	t1.Rollback(ctx)

	// A fresh transaction sees 2.
	t2, _ := m.Begin(ctx)
	f, _ = t2.Get(ctx, "t", "k")
	if getBal(t, f) != 2 {
		t.Errorf("fresh read = %d", getBal(t, f))
	}
	t2.Rollback(ctx)
}

func TestWriteWriteConflictFirstCommitterWins(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "k", bal(0)) })

	t1, _ := m.Begin(ctx)
	t2, _ := m.Begin(ctx)
	f1, _ := t1.Get(ctx, "t", "k")
	f2, _ := t2.Get(ctx, "t", "k")
	t1.Put("t", "k", bal(getBal(t, f1)+1))
	t2.Put("t", "k", bal(getBal(t, f2)+1))
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer = %v, want conflict", err)
	}
	var final int64
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Get(ctx, "t", "k")
		if err != nil {
			return err
		}
		final = getBal(t, f)
		return nil
	})
	if final != 1 {
		t.Errorf("final = %d, want 1", final)
	}
}

func TestRollbackRemovesLocksAndNewRecords(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "old", bal(5)) })

	tx, _ := m.Begin(ctx)
	tx.Put("t", "old", bal(99))
	tx.Put("t", "new", bal(1))
	// Force prewrite without commit by... committing would finish it;
	// instead drive prewrite through a conflict: manually prewrite.
	// Simpler: rollback after a full prewrite via an oracle error is
	// overkill — use the internal API.
	keys := []tkey{{"t", "new"}, {"t", "old"}}
	for _, k := range keys {
		if err := tx.prewrite(ctx, k, keys[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	// Old record intact and unlocked; new record gone.
	rec, err := inner.Get("t", "old")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Fields[lockField]) != 0 {
		t.Error("lock left behind")
	}
	if _, err := inner.Get("t", "new"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Errorf("rolled-back insert survived: %v", err)
	}
	// Old value unchanged.
	var got int64
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Get(ctx, "t", "old")
		if err != nil {
			return err
		}
		got = getBal(t, f)
		return nil
	})
	if got != 5 {
		t.Errorf("old = %d", got)
	}
}

func TestTransactionalDeleteAndTombstone(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "k", bal(7)) })
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Delete("t", "k") }); err != nil {
		t.Fatal(err)
	}
	tx, _ := m.Begin(ctx)
	if _, err := tx.Get(ctx, "t", "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read of deleted key = %v", err)
	}
	// Scans skip tombstones.
	kvs, err := tx.Scan(ctx, "t", "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Errorf("scan = %v", kvs)
	}
	tx.Rollback(ctx)
}

func TestReadYourWritesAndScanOverlay(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), bal(int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	tx, _ := m.Begin(ctx)
	defer tx.Rollback(ctx)
	tx.Put("t", "k2", bal(222))
	tx.Delete("t", "k3")
	tx.Put("t", "k9", bal(9))
	f, err := tx.Get(ctx, "t", "k2")
	if err != nil || getBal(t, f) != 222 {
		t.Errorf("read-your-writes = %v, %v", f, err)
	}
	kvs, err := tx.Scan(ctx, "t", "k1", 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k1", "k2", "k4", "k9"}
	if len(kvs) != len(want) {
		t.Fatalf("scan = %+v", kvs)
	}
	for i, w := range want {
		if kvs[i].Key != w {
			t.Fatalf("scan keys = %+v, want %v", kvs, want)
		}
	}
}

func TestRecoveryRollForwardViaPrimary(t *testing.T) {
	// A writer that crashes after committing its primary but before
	// its secondaries: readers of the secondary must roll it forward.
	ctx := context.Background()
	m, _ := newTestManager(t, Options{LockTTL: 20 * time.Millisecond})
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		if err := tx.Put("t", "p", bal(1)); err != nil {
			return err
		}
		return tx.Put("t", "s", bal(1))
	})

	// Prewrite both, then commit only the primary ("crash").
	tx, _ := m.Begin(ctx)
	tx.Put("t", "p", bal(100))
	tx.Put("t", "s", bal(200))
	for _, k := range []tkey{{"t", "p"}, {"t", "s"}} {
		if err := tx.prewrite(ctx, k, tkey{"t", "p"}); err != nil {
			t.Fatal(err)
		}
	}
	commitTS, err := m.to.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.commitRecord(ctx, "t", "p", tx.startTS, commitTS); err != nil {
		t.Fatal(err)
	}
	// Crash: never commit the secondary. Wait past the TTL.
	time.Sleep(30 * time.Millisecond)

	var got int64
	if err := m.RunInTxn(ctx, 3, func(tx2 *Txn) error {
		f, err := tx2.Get(ctx, "t", "s")
		if err != nil {
			return err
		}
		got = getBal(t, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Errorf("secondary after roll-forward = %d, want 200", got)
	}
	_, _, _, recovered := m.Stats()
	if recovered == 0 {
		t.Error("recovery not counted")
	}
}

func TestRecoveryRollBackDeadPrewrite(t *testing.T) {
	// A writer that crashes between prewrite and primary commit:
	// readers roll everything back.
	ctx := context.Background()
	m, _ := newTestManager(t, Options{LockTTL: 20 * time.Millisecond})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "k", bal(42)) })

	tx, _ := m.Begin(ctx)
	tx.Put("t", "k", bal(999))
	if err := tx.prewrite(ctx, tkey{"t", "k"}, tkey{"t", "k"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // crash; TTL expires

	var got int64
	if err := m.RunInTxn(ctx, 3, func(tx2 *Txn) error {
		f, err := tx2.Get(ctx, "t", "k")
		if err != nil {
			return err
		}
		got = getBal(t, f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("read after rollback = %d, want 42", got)
	}
}

func TestFreshLockBlocksThenFails(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{
		LockTTL:         time.Hour,
		ReadLockRetries: 2,
		ReadLockBackoff: time.Millisecond,
	})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "k", bal(1)) })

	holder, _ := m.Begin(ctx)
	holder.Put("t", "k", bal(2))
	if err := holder.prewrite(ctx, tkey{"t", "k"}, tkey{"t", "k"}); err != nil {
		t.Fatal(err)
	}
	reader, _ := m.Begin(ctx)
	if _, err := reader.Get(ctx, "t", "k"); !errors.Is(err, ErrLocked) {
		t.Errorf("read under fresh lock = %v, want ErrLocked", err)
	}
	reader.Rollback(ctx)
	holder.Rollback(ctx)
	// After rollback the record is readable again.
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		_, err := tx.Get(ctx, "t", "k")
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNoLostUpdatesConcurrent(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	m.RunInTxn(ctx, 0, func(tx *Txn) error { return tx.Put("t", "ctr", bal(0)) })
	const workers, per = 8, 30
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := m.RunInTxn(ctx, 50, func(tx *Txn) error {
					f, err := tx.Get(ctx, "t", "ctr")
					if err != nil {
						return err
					}
					return tx.Put("t", "ctr", bal(getBal(t, f)+1))
				})
				if err == nil {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	var final int64
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Get(ctx, "t", "ctr")
		if err != nil {
			return err
		}
		final = getBal(t, f)
		return nil
	})
	if final != committed {
		t.Errorf("final = %d, committed = %d", final, committed)
	}
	if committed == 0 {
		t.Error("nothing committed")
	}
}

func TestVersionPruning(t *testing.T) {
	ctx := context.Background()
	m, inner := newTestManager(t, Options{MaxVersions: 3})
	for i := 0; i < 10; i++ {
		if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
			return tx.Put("t", "k", bal(int64(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := inner.Get("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	versions := 0
	for f := range rec.Fields {
		if parseDataField(f) >= 0 {
			versions++
		}
	}
	if versions > 3 {
		t.Errorf("%d versions retained, want ≤ 3", versions)
	}
	// Latest value survives pruning.
	var got int64
	m.RunInTxn(ctx, 0, func(tx *Txn) error {
		f, err := tx.Get(ctx, "t", "k")
		if err != nil {
			return err
		}
		got = getBal(t, f)
		return nil
	})
	if got != 9 {
		t.Errorf("latest = %d", got)
	}
}

func TestOracleRTTSlowsTransactions(t *testing.T) {
	// The Section II-B claim in miniature: a 10ms-away oracle makes
	// even an in-memory read-write transaction pay ≥ 2 RTTs.
	inner := kvstore.OpenMemory()
	defer inner.Close()
	m, err := NewManager(Options{}, txn.NewLocalStore("local", inner),
		oracle.NewDelayed(oracle.NewLocal(), 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	if err := m.RunInTxn(ctx, 0, func(tx *Txn) error {
		return tx.Put("t", "k", bal(1))
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("read-write txn took %v, want ≥ 2×10ms oracle RTTs", elapsed)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	lk := lockRecord{PrimaryTable: "t", PrimaryKey: "pk", StartTS: 12345, WallNano: 67890}
	got, err := decodeLock(encodeLock(lk))
	if err != nil || got != lk {
		t.Errorf("lock round trip = %+v, %v", got, err)
	}
	if _, err := decodeLock([]byte{0xFF}); err == nil {
		t.Error("corrupt lock accepted")
	}
	if _, err := decodeLock(nil); err == nil {
		t.Error("empty lock accepted")
	}

	for _, del := range []bool{false, true} {
		fields := map[string][]byte{"a": []byte("1"), "b": nil}
		buf := encodePending(del, 777, fields)
		gdel, gf, err := decodePending(buf)
		if err != nil || gdel != del || len(gf) != 2 || string(gf["a"]) != "1" {
			t.Errorf("pending round trip del=%v: %v %v %v", del, gdel, gf, err)
		}
		if sts, ok := pendingStartTS(buf); !ok || sts != 777 {
			t.Errorf("pendingStartTS = %d, %v", sts, ok)
		}
	}
	if _, _, err := decodePending([]byte{1, 2}); err == nil {
		t.Error("short pending accepted")
	}
	if _, ok := pendingStartTS(nil); ok {
		t.Error("empty pendingStartTS accepted")
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Options{}, nil, oracle.NewLocal()); err == nil {
		t.Error("nil store accepted")
	}
	inner := kvstore.OpenMemory()
	defer inner.Close()
	if _, err := NewManager(Options{}, txn.NewLocalStore("x", inner), nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestReservedFieldRejected(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	tx, _ := m.Begin(ctx)
	defer tx.Rollback(ctx)
	if err := tx.Put("t", "k", map[string][]byte{"_perc:lock": []byte("x")}); err == nil {
		t.Error("reserved field accepted")
	}
}

func TestTxnDone(t *testing.T) {
	ctx := context.Background()
	m, _ := newTestManager(t, Options{})
	tx, _ := m.Begin(ctx)
	tx.Rollback(ctx)
	if _, err := tx.Get(ctx, "t", "k"); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Get after rollback = %v", err)
	}
	if err := tx.Put("t", "k", bal(1)); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Put after rollback = %v", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Commit after rollback = %v", err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Errorf("double rollback = %v", err)
	}
	// Read-only commit is trivial.
	tx2, _ := m.Begin(ctx)
	if err := tx2.Commit(ctx); err != nil {
		t.Errorf("read-only commit = %v", err)
	}
}
