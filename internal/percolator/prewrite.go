package percolator

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ycsbt/internal/kvstore"
)

// Batched prewrite. The per-key prewrite pays one read and one
// conditional put per record — 2N store round trips for an N-record
// write set, which is exactly the per-operation overhead the paper's
// Tier 5 identifies as the transactional bottleneck. When the store
// offers the batched capability, the whole write set is prewritten
// with ONE batched read plus ONE batched conditional put; only records
// that hit a foreign lock or lose a version race fall back to the
// per-key path, which knows how to resolve and retry.

// BatchStore is the optional store capability the batched prewrite
// detects: multi-key reads and conditional writes as single requests.
// cloudsim.Store and txn.LocalStore implement it; any Store without it
// gets the per-key path unchanged.
type BatchStore interface {
	BatchGet(ctx context.Context, reqs []kvstore.GetReq) ([]kvstore.GetResult, error)
	BatchApply(ctx context.Context, muts []kvstore.Mutation) ([]kvstore.MutResult, error)
}

// prewriteAll installs the transaction's locks on every buffered
// write. On failure it reports which record conflicted.
func (t *Txn) prewriteAll(ctx context.Context, keys []tkey, primary tkey) (tkey, error) {
	bs, ok := t.m.store.(BatchStore)
	if !ok || len(keys) < 2 {
		for _, k := range keys {
			if err := t.prewrite(ctx, k, primary); err != nil {
				return k, err
			}
		}
		return tkey{}, nil
	}

	// One batched read of the whole write set.
	reqs := make([]kvstore.GetReq, len(keys))
	for i, k := range keys {
		reqs[i] = kvstore.GetReq{Table: k.table, Key: k.key}
	}
	recs, err := bs.BatchGet(ctx, reqs)
	if err != nil {
		return primary, err
	}

	// Build the lock mutations for every record that is cleanly
	// writable at this snapshot; anything holding a foreign lock goes
	// to the per-key path, which resolves stale holders.
	muts := make([]kvstore.Mutation, 0, len(keys))
	mutIdx := make([]int, 0, len(keys))
	var slow []int
	for i, k := range keys {
		r := recs[i]
		var fields map[string][]byte
		var ver uint64
		if r.Err != nil {
			if !errors.Is(r.Err, kvstore.ErrNotFound) {
				return k, r.Err
			}
		} else {
			fields, ver = r.Record.Fields, r.Record.Version
		}
		if fields != nil {
			if maxCommitTS(fields) > t.startTS {
				return k, fmt.Errorf("newer committed version")
			}
			if lockBytes := fields[lockField]; len(lockBytes) > 0 {
				lk, err := decodeLock(lockBytes)
				if err != nil {
					return k, err
				}
				if lk.StartTS == t.startTS {
					continue // already prewritten (retry path)
				}
				slow = append(slow, i)
				continue
			}
		}
		w := t.writes[k]
		next := make(map[string][]byte, len(fields)+2)
		for f, v := range fields {
			next[f] = v
		}
		next[lockField] = encodeLock(lockRecord{
			PrimaryTable: primary.table,
			PrimaryKey:   primary.key,
			StartTS:      t.startTS,
			WallNano:     time.Now().UnixNano(),
		})
		next[pendingFld] = encodePending(w.del, t.startTS, w.fields)
		expect := ver
		if fields == nil {
			expect = kvstore.MustNotExist
		}
		muts = append(muts, kvstore.Mutation{Op: kvstore.MutPut, Table: k.table, Key: k.key, Fields: next, Expect: expect})
		mutIdx = append(mutIdx, i)
	}

	// One batched conditional put installs all the clean locks.
	if len(muts) > 0 {
		results, err := bs.BatchApply(ctx, muts)
		if err != nil {
			return primary, err
		}
		for j, r := range results {
			i := mutIdx[j]
			if r.Err == nil {
				w := t.writes[keys[i]]
				w.prewritten = true
				w.prewriteVer = r.Version
				continue
			}
			// Lost a version race since the batched read; the per-key
			// path reloads, re-checks, and resolves.
			slow = append(slow, i)
		}
	}

	for _, i := range slow {
		if err := t.prewrite(ctx, keys[i], primary); err != nil {
			return keys[i], err
		}
	}
	return tkey{}, nil
}
