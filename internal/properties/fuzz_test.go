package properties

import (
	"strings"
	"testing"
)

// FuzzLoad checks the parser never panics on arbitrary input and that
// whatever it parses can be re-serialized and re-parsed to the same
// set (for escape-free keys and values).
func FuzzLoad(f *testing.F) {
	f.Add("a=1\nb: two\nc three\n# comment\n")
	f.Add("k=\\u0041\\t\\n")
	f.Add("continued=one\\\ntwo\n")
	f.Add("")
	f.Add("\\")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Load(strings.NewReader(src))
		if err != nil {
			return
		}
		q, err := Load(strings.NewReader(p.String()))
		if err != nil {
			// Values containing newlines/controls may not re-parse;
			// that is a printing limitation, not a crash.
			return
		}
		// Every parsed pair must survive the round trip: String()
		// escapes everything the parser can read back.
		if q.Len() != p.Len() {
			t.Fatalf("round trip changed pair count: %d vs %d", q.Len(), p.Len())
		}
		for _, k := range p.Keys() {
			v, _ := p.Get(k)
			if got := q.GetString(k, "<absent>"); got != v {
				t.Fatalf("round trip of %q: %q vs %q", k, got, v)
			}
		}
	})
}
