// Package properties implements parsing and typed access for
// Java-style .properties files, the configuration format used by YCSB
// workload parameter files (Listing 2 of the YCSB+T paper).
//
// The subset implemented matches what YCSB relies on:
//
//   - "key=value" and "key: value" and "key value" separators
//   - leading-whitespace trimming on keys and values
//   - '#' and '!' comment lines
//   - trailing-backslash line continuations
//   - \n, \t, \r, \\, \:, \=, \uXXXX escapes in keys and values
//
// Values are stored as strings; typed getters perform conversion on
// access and fall back to a caller-supplied default when the key is
// absent or malformed, mirroring YCSB's Properties.getProperty usage.
package properties

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Properties is a set of string key/value pairs with typed accessors.
// It is safe for concurrent use: benchmark client threads read
// properties while a status reporter may enumerate them.
type Properties struct {
	mu   sync.RWMutex
	vals map[string]string
}

// New returns an empty property set.
func New() *Properties {
	return &Properties{vals: make(map[string]string)}
}

// FromMap builds a property set from an existing map. The map is
// copied; later changes to m are not reflected.
func FromMap(m map[string]string) *Properties {
	p := New()
	for k, v := range m {
		p.vals[k] = v
	}
	return p
}

// Load parses properties from r and returns the resulting set.
func Load(r io.Reader) (*Properties, error) {
	p := New()
	if err := p.Read(r); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadFile parses the properties file at path.
func LoadFile(path string) (*Properties, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("properties: %w", err)
	}
	defer f.Close()
	p, err := Load(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("properties: parsing %s: %w", path, err)
	}
	return p, nil
}

// Read parses properties from r and merges them into p, overwriting
// duplicate keys with the later value.
func (p *Properties) Read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var logical strings.Builder
	lineno := 0
	flush := func() error {
		line := logical.String()
		logical.Reset()
		if line == "" {
			return nil
		}
		key, value, err := splitKV(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineno, err)
		}
		if key != "" {
			p.Set(key, value)
		}
		return nil
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimLeft(sc.Text(), " \t\f")
		if logical.Len() == 0 && (line == "" || line[0] == '#' || line[0] == '!') {
			continue
		}
		if hasOddTrailingBackslash(line) {
			logical.WriteString(line[:len(line)-1])
			continue
		}
		logical.WriteString(line)
		if err := flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// hasOddTrailingBackslash reports whether line ends in an unescaped
// backslash, i.e. a line continuation.
func hasOddTrailingBackslash(line string) bool {
	n := 0
	for i := len(line) - 1; i >= 0 && line[i] == '\\'; i-- {
		n++
	}
	return n%2 == 1
}

// splitKV splits a logical property line into key and value,
// honouring escape sequences.
func splitKV(line string) (key, value string, err error) {
	var kb strings.Builder
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		if c == '\\' {
			s, adv, err := unescapeAt(line, i)
			if err != nil {
				return "", "", err
			}
			kb.WriteString(s)
			i += adv
			continue
		}
		if c == '=' || c == ':' || c == ' ' || c == '\t' || c == '\f' {
			break
		}
		kb.WriteByte(c)
		i++
	}
	// Skip whitespace, then at most one separator, then whitespace.
	for i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\f') {
		i++
	}
	if i < n && (line[i] == '=' || line[i] == ':') {
		i++
	}
	for i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\f') {
		i++
	}
	var vb strings.Builder
	for i < n {
		if line[i] == '\\' {
			s, adv, err := unescapeAt(line, i)
			if err != nil {
				return "", "", err
			}
			vb.WriteString(s)
			i += adv
			continue
		}
		vb.WriteByte(line[i])
		i++
	}
	return kb.String(), vb.String(), nil
}

// unescapeAt decodes the escape sequence starting at line[i] (which
// must be a backslash) and returns the decoded string and the number
// of input bytes consumed.
func unescapeAt(line string, i int) (string, int, error) {
	if i+1 >= len(line) {
		return "", 1, nil // lone trailing backslash: drop it
	}
	switch c := line[i+1]; c {
	case 'n':
		return "\n", 2, nil
	case 't':
		return "\t", 2, nil
	case 'r':
		return "\r", 2, nil
	case 'f':
		return "\f", 2, nil
	case 'u':
		if i+6 > len(line) {
			return "", 0, fmt.Errorf("truncated \\u escape in %q", line)
		}
		v, err := strconv.ParseUint(line[i+2:i+6], 16, 32)
		if err != nil {
			return "", 0, fmt.Errorf("bad \\u escape in %q: %w", line, err)
		}
		return string(rune(v)), 6, nil
	default:
		return string(c), 2, nil
	}
}

// Set stores value under key, replacing any previous value.
func (p *Properties) Set(key, value string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.vals[key] = value
}

// Get returns the raw string value for key and whether it was present.
func (p *Properties) Get(key string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.vals[key]
	return v, ok
}

// GetString returns the value for key, or def when absent.
func (p *Properties) GetString(key, def string) string {
	if v, ok := p.Get(key); ok {
		return v
	}
	return def
}

// GetInt returns the value for key parsed as an int, or def when the
// key is absent or unparsable.
func (p *Properties) GetInt(key string, def int) int {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return def
	}
	return n
}

// GetInt64 returns the value for key parsed as an int64, or def.
func (p *Properties) GetInt64(key string, def int64) int64 {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return def
	}
	return n
}

// GetFloat returns the value for key parsed as a float64, or def.
func (p *Properties) GetFloat(key string, def float64) float64 {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return def
	}
	return f
}

// GetBool returns the value for key parsed as a boolean, or def.
// Accepted spellings follow strconv.ParseBool.
func (p *Properties) GetBool(key string, def bool) bool {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(strings.TrimSpace(v))
	if err != nil {
		return def
	}
	return b
}

// Has reports whether key is present.
func (p *Properties) Has(key string) bool {
	_, ok := p.Get(key)
	return ok
}

// Keys returns all keys in sorted order.
func (p *Properties) Keys() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	keys := make([]string, 0, len(p.vals))
	for k := range p.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of properties stored.
func (p *Properties) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.vals)
}

// Merge copies every property of other into p, overwriting duplicates.
// Passing nil is a no-op.
func (p *Properties) Merge(other *Properties) {
	if other == nil {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range other.vals {
		p.vals[k] = v
	}
}

// Clone returns an independent copy of p.
func (p *Properties) Clone() *Properties {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c := New()
	for k, v := range p.vals {
		c.vals[k] = v
	}
	return c
}

// String renders the property set one pair per line in key order
// with Java-compatible escaping, so the output re-parses to the same
// set; suitable for logging or persisting the effective configuration
// of a run.
func (p *Properties) String() string {
	var b strings.Builder
	for _, k := range p.Keys() {
		v, _ := p.Get(k)
		b.WriteString(escapeKey(k))
		b.WriteByte('=')
		b.WriteString(escapeValue(v))
		b.WriteByte('\n')
	}
	return b.String()
}

// escapeKey escapes every character that would terminate or alter a
// key during parsing.
func escapeKey(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		escapeByte(&b, s[i], true)
	}
	return b.String()
}

// escapeValue escapes control characters and backslashes everywhere,
// and spaces only at the front (where the parser would trim them).
func escapeValue(s string) string {
	var b strings.Builder
	leading := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != ' ' && c != '\t' && c != '\f' {
			leading = false
		}
		escapeByte(&b, c, leading)
	}
	return b.String()
}

// escapeByte writes c to b, escaped as the parser expects. When
// spaceSensitive is set, spaces/tabs/formfeeds are escaped too.
func escapeByte(b *strings.Builder, c byte, spaceSensitive bool) {
	switch c {
	case '\\':
		b.WriteString(`\\`)
	case '\n':
		b.WriteString(`\n`)
	case '\r':
		b.WriteString(`\r`)
	case '\t':
		if spaceSensitive {
			b.WriteString(`\t`)
		} else {
			b.WriteByte(c)
		}
	case '\f':
		if spaceSensitive {
			b.WriteString(`\f`)
		} else {
			b.WriteByte(c)
		}
	case ' ':
		if spaceSensitive {
			b.WriteString(`\ `)
		} else {
			b.WriteByte(c)
		}
	case '=', ':', '#', '!':
		if spaceSensitive {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	default:
		b.WriteByte(c)
	}
}
