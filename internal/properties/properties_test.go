package properties

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadBasic(t *testing.T) {
	src := `
# comment line
! also a comment
recordcount=10000
operationcount = 1000000
workload: com.yahoo.ycsb.workloads.ClosedEconomyWorkload
totalcash 100000000
readproportion=0.9
`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GetInt("recordcount", -1); got != 10000 {
		t.Errorf("recordcount = %d, want 10000", got)
	}
	if got := p.GetInt64("operationcount", -1); got != 1000000 {
		t.Errorf("operationcount = %d, want 1000000", got)
	}
	if got := p.GetString("workload", ""); got != "com.yahoo.ycsb.workloads.ClosedEconomyWorkload" {
		t.Errorf("workload = %q", got)
	}
	if got := p.GetInt64("totalcash", -1); got != 100000000 {
		t.Errorf("totalcash = %d (space separator)", got)
	}
	if got := p.GetFloat("readproportion", 0); got != 0.9 {
		t.Errorf("readproportion = %v", got)
	}
}

func TestLoadListing2(t *testing.T) {
	// The exact CEW properties file from Listing 2 of the paper.
	src := `recordcount=10000
operationcount=1000000
workload=com.yahoo.ycsb.workloads.ClosedEconomyWorkload
totalcash=100000000
readproportion=0.9
readmodifywriteproportion=0.1
requestdistribution=zipfian
fieldcount=1
fieldlength=100
writeallfields=true
readallfields=true
histogram.buckets=0
`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 12 {
		t.Errorf("Len = %d, want 12", p.Len())
	}
	if !p.GetBool("writeallfields", false) {
		t.Error("writeallfields should parse true")
	}
	if got := p.GetFloat("readmodifywriteproportion", 0); got != 0.1 {
		t.Errorf("readmodifywriteproportion = %v", got)
	}
	if got := p.GetInt("histogram.buckets", -1); got != 0 {
		t.Errorf("histogram.buckets = %d", got)
	}
}

func TestDefaults(t *testing.T) {
	p := New()
	if got := p.GetInt("absent", 42); got != 42 {
		t.Errorf("GetInt default = %d", got)
	}
	if got := p.GetString("absent", "x"); got != "x" {
		t.Errorf("GetString default = %q", got)
	}
	if got := p.GetFloat("absent", 1.5); got != 1.5 {
		t.Errorf("GetFloat default = %v", got)
	}
	if got := p.GetBool("absent", true); got != true {
		t.Errorf("GetBool default = %v", got)
	}
	p.Set("bad", "not-a-number")
	if got := p.GetInt("bad", 7); got != 7 {
		t.Errorf("GetInt malformed = %d, want default 7", got)
	}
	if got := p.GetFloat("bad", 2.5); got != 2.5 {
		t.Errorf("GetFloat malformed = %v, want default", got)
	}
}

func TestContinuationLines(t *testing.T) {
	src := "key=first\\\nsecond\nother=v\n"
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GetString("key", ""); got != "firstsecond" {
		t.Errorf("continuation = %q, want firstsecond", got)
	}
	if got := p.GetString("other", ""); got != "v" {
		t.Errorf("other = %q", got)
	}
}

func TestEscapes(t *testing.T) {
	src := `tabbed=a\tb
newline=a\nb
colonkey\:x=1
unicode=ABC
backslash=a\\b
`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"tabbed":     "a\tb",
		"newline":    "a\nb",
		"colonkey:x": "1",
		"unicode":    "ABC",
		"backslash":  `a\b`,
	}
	for k, want := range cases {
		if got := p.GetString(k, "<absent>"); got != want {
			t.Errorf("%s = %q, want %q", k, got, want)
		}
	}
}

func TestBadUnicodeEscape(t *testing.T) {
	if _, err := Load(strings.NewReader(`k=\u00ZZ`)); err == nil {
		t.Error("expected error for bad \\u escape")
	}
	if _, err := Load(strings.NewReader(`k=\u00`)); err == nil {
		t.Error("expected error for truncated \\u escape")
	}
}

func TestOverwriteAndMerge(t *testing.T) {
	p, err := Load(strings.NewReader("a=1\na=2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GetString("a", ""); got != "2" {
		t.Errorf("later duplicate should win, got %q", got)
	}
	q := FromMap(map[string]string{"a": "3", "b": "4"})
	p.Merge(q)
	if got := p.GetString("a", ""); got != "3" {
		t.Errorf("merge should overwrite, got %q", got)
	}
	if got := p.GetString("b", ""); got != "4" {
		t.Errorf("merge should add, got %q", got)
	}
	p.Merge(nil) // must not panic
}

func TestCloneIndependence(t *testing.T) {
	p := FromMap(map[string]string{"a": "1"})
	c := p.Clone()
	p.Set("a", "2")
	if got := c.GetString("a", ""); got != "1" {
		t.Errorf("clone mutated: %q", got)
	}
}

func TestKeysSortedAndString(t *testing.T) {
	p := FromMap(map[string]string{"b": "2", "a": "1", "c": "3"})
	keys := p.Keys()
	want := []string{"a", "b", "c"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
	if got := p.String(); got != "a=1\nb=2\nc=3\n" {
		t.Errorf("String() = %q", got)
	}
}

func TestEmptyValueAndEmptyKeyLines(t *testing.T) {
	p, err := Load(strings.NewReader("novalue=\njustkey\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Get("novalue"); !ok || v != "" {
		t.Errorf("novalue = %q, %v", v, ok)
	}
	if v, ok := p.Get("justkey"); !ok || v != "" {
		t.Errorf("justkey = %q, %v", v, ok)
	}
}

// TestRoundTripQuick property: any map of escape-free keys/values
// survives a String() → Load() round trip.
func TestRoundTripQuick(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r > ' ' && r < 127 && r != '=' && r != ':' && r != '\\' && r != '#' && r != '!' {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(pairs map[string]string) bool {
		p := New()
		want := make(map[string]string)
		for k, v := range pairs {
			k, v = sanitize(k), sanitize(v)
			if k == "" {
				continue
			}
			p.Set(k, v)
			want[k] = v
		}
		q, err := Load(strings.NewReader(p.String()))
		if err != nil {
			return false
		}
		if q.Len() != len(want) {
			return false
		}
		for k, v := range want {
			if got := q.GetString(k, "<absent>"); got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path/file.properties"); err == nil {
		t.Error("expected error for missing file")
	}
}
