// Package core is the YCSB+T entry point: it ties the framework's
// pieces — property files, workload registry, binding registry,
// workload executor, Tier 5 measurement and Tier 6 validation — into
// the single load → run → validate → report pipeline that the paper's
// client executes (Listing 1 → Listing 3). cmd/ycsbt is a thin flag
// wrapper around this package; tests and examples can drive the same
// pipeline programmatically.
//
// Importing core registers every binding (memory, kvstore, rawhttp,
// cloudsim, txnkv, percolator) and every workload (core/A–F,
// closedeconomy, writeskew).
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"ycsbt/internal/client"
	"ycsbt/internal/properties"

	// Register every binding and workload implementation.
	_ "ycsbt/internal/cloudsim"
	_ "ycsbt/internal/httpkv"
	_ "ycsbt/internal/kvstore"
	_ "ycsbt/internal/percolator"
	_ "ycsbt/internal/txn"
	_ "ycsbt/internal/workload"
)

// RunOptions selects which phases to execute and where output goes.
type RunOptions struct {
	// Load executes the load phase (the YCSB -load flag).
	Load bool
	// Transactions executes the transaction phase (the -t flag).
	Transactions bool
	// Report receives the Listing-3-format results (nil = discard).
	Report io.Writer
	// Status receives interim throughput lines every StatusInterval
	// (nil = none).
	Status io.Writer
	// StatusInterval defaults to 10s when Status is set.
	StatusInterval time.Duration
	// Timeline records a 1-second throughput time series.
	Timeline bool
}

// Outcome bundles the phase results of one Execute call.
type Outcome struct {
	// Load is the load-phase result (nil when the phase was skipped).
	Load *client.Result
	// Run is the transaction-phase result (nil when skipped).
	Run *client.Result
}

// Final returns the result of the last phase executed.
func (o *Outcome) Final() *client.Result {
	if o.Run != nil {
		return o.Run
	}
	return o.Load
}

// Execute runs the configured phases of the benchmark described by
// props (workload, db, recordcount, operationcount, threadcount, …)
// and writes the report of the final phase.
func Execute(ctx context.Context, props *properties.Properties, opts RunOptions) (*Outcome, error) {
	if !opts.Load && !opts.Transactions {
		return nil, fmt.Errorf("core: nothing to do: enable Load, Transactions or both")
	}
	c, _, err := client.NewFromProperties(props)
	if err != nil {
		return nil, err
	}
	if opts.Status != nil || opts.Timeline {
		cfg := client.BuildConfig(props)
		if opts.Status != nil {
			cfg.Status = opts.Status
			cfg.StatusInterval = opts.StatusInterval
			if cfg.StatusInterval <= 0 {
				cfg.StatusInterval = 10 * time.Second
			}
		}
		if opts.Timeline {
			cfg.TimelineInterval = time.Second
		}
		c, err = client.New(cfg, c.Workload(), c.DB(), c.Registry())
		if err != nil {
			return nil, err
		}
	}
	defer c.DB().Cleanup()

	out := &Outcome{}
	if opts.Load {
		res, err := c.Load(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: load phase: %w", err)
		}
		out.Load = res
	}
	if opts.Transactions {
		res, err := c.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: transaction phase: %w", err)
		}
		out.Run = res
	}
	if opts.Report != nil {
		if err := client.Report(opts.Report, out.Final()); err != nil {
			return nil, err
		}
	}
	return out, nil
}
