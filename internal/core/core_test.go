package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ycsbt/internal/properties"
)

func cewProps() *properties.Properties {
	return properties.FromMap(map[string]string{
		"workload":                  "closedeconomy",
		"db":                        "txnkv",
		"recordcount":               "100",
		"operationcount":            "1000",
		"totalcash":                 "10000",
		"threadcount":               "4",
		"readproportion":            "0.8",
		"readmodifywriteproportion": "0.2",
	})
}

func TestExecuteFullPipeline(t *testing.T) {
	var report bytes.Buffer
	out, err := Execute(context.Background(), cewProps(), RunOptions{
		Load:         true,
		Transactions: true,
		Report:       &report,
		Timeline:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Load == nil || out.Run == nil {
		t.Fatalf("phases missing: %+v", out)
	}
	if out.Final() != out.Run {
		t.Error("Final should be the run phase")
	}
	if out.Run.Validation == nil || !out.Run.Validation.Valid {
		t.Errorf("transactional pipeline broke the invariant: %+v", out.Run.Validation)
	}
	text := report.String()
	for _, want := range []string{"[TOTAL CASH], 10000", "[ANOMALY SCORE], 0", "[TX-READ]", "[TIMELINE]"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestExecuteLoadOnly(t *testing.T) {
	out, err := Execute(context.Background(), cewProps(), RunOptions{Load: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Run != nil || out.Load == nil {
		t.Fatalf("phases = %+v", out)
	}
	if out.Final() != out.Load {
		t.Error("Final should be the load phase")
	}
}

func TestExecuteValidation(t *testing.T) {
	if _, err := Execute(context.Background(), cewProps(), RunOptions{}); err == nil {
		t.Error("no phases accepted")
	}
	bad := properties.FromMap(map[string]string{"workload": "missing"})
	if _, err := Execute(context.Background(), bad, RunOptions{Load: true}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestExecuteRegistersEverything(t *testing.T) {
	// Every binding and workload combination the README advertises
	// must resolve through the registries core imports.
	for _, dbName := range []string{"memory", "kvstore", "cloudsim", "txnkv", "percolator"} {
		p := cewProps()
		p.Set("db", dbName)
		p.Set("operationcount", "50")
		p.Set("recordcount", "20")
		p.Set("totalcash", "2000")
		p.Set("cloudsim.readlatency_us", "0")
		p.Set("cloudsim.writelatency_us", "0")
		if _, err := Execute(context.Background(), p, RunOptions{Load: true, Transactions: true}); err != nil {
			t.Errorf("pipeline with db=%s: %v", dbName, err)
		}
	}
}
