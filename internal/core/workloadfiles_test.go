package core

import (
	"context"
	"path/filepath"
	"testing"

	"ycsbt/internal/properties"
)

// TestShippedWorkloadFiles loads every property file under workloads/
// and runs a shrunken version of it end to end, so the files the
// README points users at can never rot.
func TestShippedWorkloadFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "workloads", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 7 { // CEW + A-F + write-skew
		t.Fatalf("only %d workload files found: %v", len(files), files)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			p, err := properties.LoadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			// Shrink for test speed; keep proportions intact.
			p.Set("recordcount", "100")
			p.Set("operationcount", "300")
			p.Set("totalcash", "10000")
			p.Set("threadcount", "2")
			p.Set("maxscanlength", "10")
			p.Set("db", "txnkv")
			out, err := Execute(context.Background(), p, RunOptions{Load: true, Transactions: true})
			if err != nil {
				t.Fatalf("pipeline for %s: %v", file, err)
			}
			if out.Run.Operations != 300 {
				t.Errorf("operations = %d", out.Run.Operations)
			}
			if out.Run.Validation == nil {
				t.Error("no validation result")
			}
		})
	}
}
