package oracle

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestLocalMonotonic(t *testing.T) {
	o := NewLocal()
	ctx := context.Background()
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := int64(0)
			for i := 0; i < 500; i++ {
				ts, err := o.Next(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if ts <= prev {
					t.Errorf("not monotonic per goroutine: %d after %d", ts, prev)
					return
				}
				prev = ts
				mu.Lock()
				if seen[ts] {
					t.Errorf("duplicate timestamp %d", ts)
					mu.Unlock()
					return
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestDelayedPaysRTT(t *testing.T) {
	o := NewDelayed(NewLocal(), 20*time.Millisecond)
	ctx := context.Background()
	start := time.Now()
	if _, err := o.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("Next returned in %v, want ≥ 20ms RTT", elapsed)
	}
	// Cancellation interrupts the wait.
	slow := NewDelayed(NewLocal(), 5*time.Second)
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := slow.Next(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Next = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not interrupt")
	}
	// Zero RTT passes straight through.
	fast := NewDelayed(NewLocal(), 0)
	if _, err := fast.Next(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPOracle(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal()))
	defer srv.Close()
	ctx := context.Background()

	c := NewClient(srv.URL, srv.Client(), 1)
	prev := int64(0)
	for i := 0; i < 20; i++ {
		ts, err := c.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ts <= prev {
			t.Fatalf("not monotonic: %d after %d", ts, prev)
		}
		prev = ts
	}
}

func TestHTTPOracleBatching(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal()))
	defer srv.Close()
	ctx := context.Background()
	c := NewClient(srv.URL, srv.Client(), 50)
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		ts, err := c.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ts] {
			t.Fatalf("duplicate %d", ts)
		}
		seen[ts] = true
	}
}

func TestHTTPOracleConcurrentClients(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal()))
	defer srv.Close()
	ctx := context.Background()
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(srv.URL, srv.Client(), 10)
			for i := 0; i < 100; i++ {
				ts, err := c.Next(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[ts] {
					t.Errorf("duplicate across clients: %d", ts)
					mu.Unlock()
					return
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestHTTPOracleBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal()))
	defer srv.Close()
	for _, q := range []string{"/ts?n=0", "/ts?n=-3", "/ts?n=xyz", "/ts?n=99999999"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET %s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHTTPOracleServerDown(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal()))
	srv.Close() // immediately dead
	c := NewClient(srv.URL, nil, 1)
	if _, err := c.Next(context.Background()); err == nil {
		t.Error("dead server accepted")
	}
}
