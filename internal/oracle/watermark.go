package oracle

import (
	"math"
	"sync"
)

// Watermark tracks the set of snapshot timestamps currently held by
// live readers and publishes their minimum — the min-active-ts
// watermark MVCC garbage collection must stay below. The transaction
// layer acquires an entry when a read-only transaction pins its
// snapshot and releases it on commit/abort; the storage vacuum asks
// Min before reclaiming versions, so a version still visible to some
// active snapshot is never cut from under its reader.
//
// Timestamps are refcounted: two snapshots at the same ts are two
// acquisitions. Min returns math.MaxInt64 when no snapshot is active —
// "no floor", letting the vacuum fall back to its retention window.
type Watermark struct {
	mu     sync.Mutex
	active map[int64]int
	min    int64 // cached; MaxInt64 when active is empty
}

// NewWatermark returns an empty tracker.
func NewWatermark() *Watermark {
	return &Watermark{active: make(map[int64]int), min: math.MaxInt64}
}

// Acquire registers a live snapshot at ts and returns its release
// func. Release is idempotent.
func (w *Watermark) Acquire(ts int64) func() {
	w.mu.Lock()
	w.active[ts]++
	if ts < w.min {
		w.min = ts
	}
	w.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			if w.active[ts]--; w.active[ts] <= 0 {
				delete(w.active, ts)
				if ts == w.min {
					w.min = math.MaxInt64
					for t := range w.active {
						if t < w.min {
							w.min = t
						}
					}
				}
			}
			w.mu.Unlock()
		})
	}
}

// Min reports the oldest active snapshot timestamp, or math.MaxInt64
// when none is active.
func (w *Watermark) Min() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.min
}

// Active reports how many snapshot acquisitions are currently live.
func (w *Watermark) Active() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, c := range w.active {
		n += c
	}
	return n
}
