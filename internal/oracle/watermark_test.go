package oracle

import (
	"math"
	"sync"
	"testing"
)

func TestWatermarkMinAndRefcount(t *testing.T) {
	w := NewWatermark()
	if w.Min() != math.MaxInt64 {
		t.Fatalf("empty Min = %d, want MaxInt64", w.Min())
	}
	r10 := w.Acquire(10)
	r5a := w.Acquire(5)
	r5b := w.Acquire(5) // same ts held twice
	if w.Min() != 5 {
		t.Fatalf("Min = %d, want 5", w.Min())
	}
	r5a()
	if w.Min() != 5 {
		t.Fatalf("Min after one of two releases = %d, want 5", w.Min())
	}
	r5b()
	r5b() // idempotent
	if w.Min() != 10 {
		t.Fatalf("Min after both 5-releases = %d, want 10", w.Min())
	}
	if w.Active() != 1 {
		t.Fatalf("Active = %d, want 1", w.Active())
	}
	r10()
	if w.Min() != math.MaxInt64 || w.Active() != 0 {
		t.Fatalf("drained: Min=%d Active=%d", w.Min(), w.Active())
	}
}

func TestWatermarkConcurrent(t *testing.T) {
	w := NewWatermark()
	floor := w.Acquire(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release := w.Acquire(int64(2 + (g*7+i)%50))
				if w.Min() != 1 {
					t.Errorf("Min = %d, want 1 while floor held", w.Min())
					release()
					return
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	floor()
	if w.Min() != math.MaxInt64 {
		t.Fatalf("Min = %d, want MaxInt64 after all releases", w.Min())
	}
}
