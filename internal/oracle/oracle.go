// Package oracle provides the centralized timestamp oracle (TO) that
// Percolator-style transaction protocols depend on — and that the
// paper's own client-coordinated design pointedly avoids ("It does
// not depend on any centralized timestamp oracle or logging
// infrastructure", Section II-B).
//
// Three implementations:
//
//   - Local: an in-process strictly-monotonic counter, the best case.
//   - Delayed: wraps another oracle with a simulated network round
//     trip, modelling a WAN-remote oracle; this is what makes the
//     paper's "bottleneck over a long-haul network" claim measurable.
//   - HTTP server/client: an actual oracle service over HTTP for
//     multi-process setups.
package oracle

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"ycsbt/internal/obs"
)

// Oracle hands out strictly increasing timestamps. Implementations
// must be safe for concurrent use.
type Oracle interface {
	// Next returns a timestamp strictly greater than every timestamp
	// previously returned.
	Next(ctx context.Context) (int64, error)
}

// Local is an in-process oracle: wall-clock nanoseconds, bumped to
// stay strictly monotonic.
type Local struct {
	last atomic.Int64
}

// NewLocal returns a fresh in-process oracle.
func NewLocal() *Local { return &Local{} }

// Next implements Oracle.
func (l *Local) Next(context.Context) (int64, error) {
	for {
		phys := time.Now().UnixNano()
		last := l.last.Load()
		next := phys
		if next <= last {
			next = last + 1
		}
		if l.last.CompareAndSwap(last, next) {
			return next, nil
		}
	}
}

// Delayed wraps an oracle with a simulated round-trip time; every
// Next pays the full RTT, as a WAN client of a central oracle would.
type Delayed struct {
	inner Oracle
	rtt   time.Duration
}

// NewDelayed wraps inner with the given round-trip time.
func NewDelayed(inner Oracle, rtt time.Duration) *Delayed {
	return &Delayed{inner: inner, rtt: rtt}
}

// Next implements Oracle, paying the round trip before consulting the
// wrapped oracle.
func (d *Delayed) Next(ctx context.Context) (int64, error) {
	if d.rtt > 0 {
		t := time.NewTimer(d.rtt)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return d.inner.Next(ctx)
}

// Server exposes an oracle over HTTP: GET /ts → {"ts": n}. Batched
// allocation (GET /ts?n=100) lets clients amortize round trips the
// way production oracles (e.g. Percolator's) do.
type Server struct {
	inner Oracle
	mux   *http.ServeMux

	// obs handles; nil (uninstrumented) handles no-op.
	mRequests   *obs.Counter
	mTimestamps *obs.Counter
}

// Instrument registers the oracle_* series on reg: allocation
// requests and timestamps handed out (the gap between the two is the
// batching amortization).
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("oracle_requests_total", "Timestamp allocation requests served.")
	reg.Help("oracle_timestamps_total", "Timestamps handed out (a batched request counts its whole block).")
	s.mRequests = reg.Counter("oracle_requests_total")
	s.mTimestamps = reg.Counter("oracle_timestamps_total")
}

// NewServer serves the given oracle.
func NewServer(inner Oracle) *Server {
	s := &Server{inner: inner, mux: http.NewServeMux()}
	s.mux.HandleFunc("/ts", s.handleTS)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type tsResponse struct {
	// TS is the first allocated timestamp; the caller owns
	// [TS, TS+N).
	TS int64 `json:"ts"`
	N  int64 `json:"n"`
}

func (s *Server) handleTS(w http.ResponseWriter, r *http.Request) {
	n := int64(1)
	if q := r.URL.Query().Get("n"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n < 1 || n > 1<<20 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
	}
	// Allocate a contiguous block by drawing n times; Local is cheap.
	first, err := s.inner.Next(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for i := int64(1); i < n; i++ {
		if _, err := s.inner.Next(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.mRequests.Inc()
	s.mTimestamps.Add(n)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tsResponse{TS: first, N: n})
}

// Client is an HTTP oracle client with optional block caching.
type Client struct {
	base  string
	hc    *http.Client
	batch int64

	mu     chMutex
	next   int64
	remain int64
}

// chMutex is a channel-based mutex so Lock can respect contexts.
type chMutex chan struct{}

func newChMutex() chMutex {
	m := make(chMutex, 1)
	m <- struct{}{}
	return m
}

func (m chMutex) lock(ctx context.Context) error {
	select {
	case <-m:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chMutex) unlock() { m <- struct{}{} }

// NewClient returns an oracle client for the server at baseURL. A
// batch > 1 prefetches blocks of timestamps, trading strictness of
// global ordering across clients for fewer round trips (Percolator
// does the same).
func NewClient(baseURL string, hc *http.Client, batch int64) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if batch < 1 {
		batch = 1
	}
	return &Client{base: baseURL, hc: hc, batch: batch, mu: newChMutex()}
}

// Next implements Oracle.
func (c *Client) Next(ctx context.Context) (int64, error) {
	if err := c.mu.lock(ctx); err != nil {
		return 0, err
	}
	defer c.mu.unlock()
	if c.remain == 0 {
		first, n, err := c.fetch(ctx)
		if err != nil {
			return 0, err
		}
		c.next, c.remain = first, n
	}
	ts := c.next
	c.next++
	c.remain--
	return ts, nil
}

func (c *Client) fetch(ctx context.Context) (int64, int64, error) {
	u := fmt.Sprintf("%s/ts?n=%d", c.base, c.batch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("oracle: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, 0, fmt.Errorf("oracle: server returned %s: %s", resp.Status, body)
	}
	var tr tsResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return 0, 0, fmt.Errorf("oracle: decoding response: %w", err)
	}
	return tr.TS, tr.N, nil
}
