package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterMergesSharedAndHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "kind", "get")
	c.Add(3)
	c.Inc()
	h1 := c.Handle()
	h2 := c.Handle()
	h1.Add(10)
	h2.Inc()
	if got := c.Value(); got != 15 {
		t.Fatalf("Value() = %d, want 15", got)
	}
	// Same name+labels returns the same series; label order must not
	// split the series.
	if r.Counter("ops_total", "kind", "get") != c {
		t.Fatal("re-registration returned a different counter")
	}
	r.Counter("multi", "a", "1", "b", "2").Inc()
	r.Counter("multi", "b", "2", "a", "1").Inc()
	var b strings.Builder
	if err := r.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `multi{a="1",b="2"} 2`) {
		t.Fatalf("label order split the series:\n%s", b.String())
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("lag", func() float64 { return 1 })
	// Re-registration replaces the function (runtime owner swap).
	r.GaugeFunc("lag", func() float64 { return 42 })
	var b strings.Builder
	if err := r.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lag 42\n") {
		t.Fatalf("GaugeFunc re-registration did not replace fn:\n%s", b.String())
	}
}

func TestHistogramExport(t *testing.T) {
	r := NewRegistry()
	r.Help("latency_seconds", "Request latency.")
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05) // le 0.1
	h.Observe(0.5)  // le 1
	h.Observe(0.5)  // le 1
	h.Observe(100)  // +Inf only
	hh := h.Handle()
	hh.Observe(5) // le 10
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 106.05 {
		t.Fatalf("Sum() = %g, want 106.05", got)
	}
	var b strings.Builder
	if err := r.Export(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# HELP latency_seconds Request latency.",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`, // cumulative
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 106.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestCollectorAndSortedFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Inc()
	r.RegisterCollector(func() []Sample {
		return []Sample{
			{Name: "aa_gauge", Kind: KindGauge, Help: "first.", Labels: []string{"s", "x"}, Value: 2.5},
		}
	})
	var b strings.Builder
	if err := r.Export(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `aa_gauge{s="x"} 2.5`) {
		t.Fatalf("collector sample missing:\n%s", text)
	}
	if strings.Index(text, "aa_gauge") > strings.Index(text, "zz_total") {
		t.Fatalf("families not sorted by name:\n%s", text)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "v", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", b.String())
	}
}

// TestNilSafety drives the whole API through nil receivers — the
// contract instrumented code relies on instead of enabled checks.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	c.Add(1)
	c.Inc()
	c.Handle().Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("b")
	g.Set(1)
	g.Add(1)
	_ = g.Value()
	r.GaugeFunc("c", func() float64 { return 1 })
	h := r.Histogram("d", DurationBuckets)
	h.Observe(1)
	h.Handle().Observe(1)
	_ = h.Count()
	_ = h.Sum()
	r.Help("a", "help")
	r.RegisterCollector(func() []Sample { return nil })
	if err := r.Export(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if Enabled(false) != nil {
		t.Fatal("Enabled(false) != nil")
	}
	if Enabled(true) != Default() {
		t.Fatal("Enabled(true) != Default()")
	}
}

// TestConcurrentScrape hammers counters, gauges, histograms, handle
// allocation and registration from many goroutines while scraping the
// exposition concurrently; run under -race this is the registry's
// thread-safety proof.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	r.Counter("w_total", "writer", "0") // family exists before the first scrape
	var wg, ready sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("w_total", "writer", fmt.Sprint(id))
			h := r.Histogram("w_seconds", DurationBuckets, "writer", fmt.Sprint(id))
			ch := c.Handle()
			hh := h.Handle()
			g := r.Gauge("w_inflight")
			for j := 0; ; j++ {
				c.Inc()
				ch.Inc()
				h.Observe(float64(j%100) / 1000)
				hh.Observe(0.001)
				g.Add(1)
				g.Add(-1)
				if j%64 == 0 {
					// Exercise registration under load too.
					r.Counter("w_total", "writer", fmt.Sprint(id)).Inc()
				}
				if j == 0 {
					ready.Done()
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(i)
	}
	ready.Wait()
	for s := 0; s < 20; s++ {
		var b strings.Builder
		if err := r.Export(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "# TYPE w_total counter") {
			t.Fatalf("scrape %d missing w_total family", s)
		}
	}
	close(stop)
	wg.Wait()
	var b strings.Builder
	if err := r.Export(&b); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < writers; i++ {
		total += r.Counter("w_total", "writer", fmt.Sprint(i)).Value()
	}
	if total == 0 {
		t.Fatal("no counts recorded")
	}
}

// Overhead benchmarks: the same instrumented hot path against a live
// registry and against nil (metrics off). The delta is the cost the
// acceptance criterion bounds at ≤2% of engine ops/s.
func benchmarkInstrumentedOp(b *testing.B, reg *Registry) {
	c := reg.Counter("bench_ops_total", "kind", "put")
	h := reg.Histogram("bench_seconds", DurationBuckets, "kind", "put")
	b.RunParallel(func(pb *testing.PB) {
		ch := c.Handle()
		hh := h.Handle()
		for pb.Next() {
			ch.Inc()
			hh.Observe(0.000123)
		}
	})
}

func BenchmarkMetricsOn(b *testing.B)  { benchmarkInstrumentedOp(b, NewRegistry()) }
func BenchmarkMetricsOff(b *testing.B) { benchmarkInstrumentedOp(b, nil) }
