package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOpsMuxMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kvstore_ops_total", "op", "get").Add(9)
	srv := httptest.NewServer(NewOpsMux(r, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `kvstore_ops_total{op="get"} 9`) {
		t.Fatalf("metrics body missing series:\n%s", body)
	}
}

func TestOpsMuxHealthz(t *testing.T) {
	var fail error
	srv := httptest.NewServer(NewOpsMux(NewRegistry(), func() error { return fail }))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthy: got %s %q", resp.Status, body)
	}

	fail = errors.New("wal: disk full")
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy: got %s, want 503", resp.Status)
	}
	if !strings.Contains(string(body), "disk full") {
		t.Fatalf("unhealthy body %q does not carry the error", body)
	}
}

func TestOpsMuxPprof(t *testing.T) {
	srv := httptest.NewServer(NewOpsMux(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%.200s", body)
	}
}

func TestStartOps(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(RuntimeCollector())
	srv, addr, err := StartOps("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_runs_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("runtime collector missing %s", want)
		}
	}
}
