package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Handler serves the registry as Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Export(w)
	})
}

// NewOpsMux builds the private ops mux: /metrics (Prometheus text),
// /healthz (200 "ok" or 503 with the error), and /debug/pprof/*. The
// pprof handlers are mounted explicitly so nothing depends on
// http.DefaultServeMux. health may be nil (always healthy).
func NewOpsMux(r *Registry, health func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartOps binds addr and serves the ops mux in a background
// goroutine. It returns the server (for Close/Shutdown) and the bound
// address, so ":0" listeners can report their port.
func StartOps(addr string, r *Registry, health func() error) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewOpsMux(r, health), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// RuntimeCollector returns a scrape-time collector for Go runtime
// vitals: goroutine count, heap bytes, cumulative GC runs and total
// GC pause time.
func RuntimeCollector() func() []Sample {
	return func() []Sample {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []Sample{
			{Name: "go_goroutines", Kind: KindGauge, Help: "Number of live goroutines.", Value: float64(runtime.NumGoroutine())},
			{Name: "go_heap_alloc_bytes", Kind: KindGauge, Help: "Bytes of allocated heap objects.", Value: float64(ms.HeapAlloc)},
			{Name: "go_gc_runs_total", Kind: KindCounter, Help: "Completed GC cycles.", Value: float64(ms.NumGC)},
			{Name: "go_gc_pause_seconds_total", Kind: KindCounter, Help: "Cumulative GC stop-the-world pause time.", Value: float64(ms.PauseTotalNs) / 1e9},
		}
	}
}
