// Package obs is the live observability layer: a dependency-free
// metric registry (counters, gauges, histograms) with a Prometheus
// text-format exporter, plus an ops HTTP listener serving /metrics,
// /healthz and net/http/pprof (http.go).
//
// # Sharded recording
//
// The hot path reuses the per-shard accumulation idiom of
// internal/measurement: a Counter or Histogram is a set of cells, each
// a block of plain atomics. Hot code obtains a Handle once (e.g. one
// per engine partition or per WAL) and increments its own private,
// cache-line-padded cell, so concurrent writers never contend; the
// direct Add/Observe methods write a shared multi-writer cell and stay
// lock-free, merely contended. Readers (the /metrics scrape) merge all
// cells at read time — the cold path.
//
// # Nil safety
//
// Every method on *Registry, on the metric types and on their handles
// is a no-op on a nil receiver. Instrumented code therefore never
// checks whether metrics are enabled: wiring a nil *Registry through
// an Options struct turns the whole layer into dead branches, which is
// also how the registry-on/off overhead benchmark measures cost.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// DurationBuckets are the default histogram bounds for latencies, in
// seconds: 50µs up to 10s, roughly ×2–2.5 per step.
var DurationBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are the default bounds for size-like observations
// (batch occupancy, queue lengths): powers of two up to 1024.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// cell is one writer's counter slot, padded so distinct handles never
// share a cache line.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing series.
type Counter struct {
	grow   sync.Mutex
	shared cell
	extra  atomic.Pointer[[]*cell]
}

// Add increments the shared multi-writer cell. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shared.n.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Handle allocates a private single-writer cell linked into the
// counter (copy-on-write, like measurement.Series.newShard). Call once
// per writer, not on the hot path. Nil-safe: a nil Counter returns a
// nil handle whose methods no-op.
func (c *Counter) Handle() *CounterHandle {
	if c == nil {
		return nil
	}
	cl := &cell{}
	c.grow.Lock()
	old := c.extra.Load()
	var next []*cell
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, cl)
	c.extra.Store(&next)
	c.grow.Unlock()
	return &CounterHandle{c: cl}
}

// Value merges every cell. Nil-safe (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	n := c.shared.n.Load()
	if extra := c.extra.Load(); extra != nil {
		for _, cl := range *extra {
			n += cl.n.Load()
		}
	}
	return n
}

// CounterHandle is one writer's private cell of a Counter.
type CounterHandle struct{ c *cell }

// Add increments the handle's private cell. Nil-safe.
func (h *CounterHandle) Add(n int64) {
	if h == nil {
		return
	}
	h.c.n.Add(n)
}

// Inc is Add(1).
func (h *CounterHandle) Inc() { h.Add(1) }

// Gauge is a settable instantaneous value. A single atomic — gauges
// are set, not accumulated, so there is nothing to shard.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use for inflight-style up/down
// tracking). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge. Nil-safe (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histCells is one writer's histogram block: one count per bucket
// (the last slot is +Inf) plus the float64 sum as CAS'd bits.
type histCells struct {
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

func (hc *histCells) observe(bounds []float64, v float64) {
	// First bound >= v is the le bucket; past the end is +Inf.
	i := sort.SearchFloat64s(bounds, v)
	hc.counts[i].Add(1)
	for {
		old := hc.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if hc.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Histogram accumulates observations into fixed cumulative buckets
// (Prometheus le semantics). Durations observe seconds.
type Histogram struct {
	bounds []float64
	grow   sync.Mutex
	shared *histCells
	extra  atomic.Pointer[[]*histCells]
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, shared: &histCells{counts: make([]atomic.Int64, len(b)+1)}}
}

// Observe records v into the shared multi-writer cells. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.shared.observe(h.bounds, v)
}

// Handle allocates a private single-writer cell block. Nil-safe.
func (h *Histogram) Handle() *HistogramHandle {
	if h == nil {
		return nil
	}
	hc := &histCells{counts: make([]atomic.Int64, len(h.bounds)+1)}
	h.grow.Lock()
	old := h.extra.Load()
	var next []*histCells
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, hc)
	h.extra.Store(&next)
	h.grow.Unlock()
	return &HistogramHandle{h: h, hc: hc}
}

// snapshot merges every cell block into per-bucket counts (non-
// cumulative), the total count, and the sum.
func (h *Histogram) snapshot() (counts []int64, total int64, sum float64) {
	counts = make([]int64, len(h.bounds)+1)
	blocks := []*histCells{h.shared}
	if extra := h.extra.Load(); extra != nil {
		blocks = append(blocks, *extra...)
	}
	for _, hc := range blocks {
		for i := range hc.counts {
			counts[i] += hc.counts[i].Load()
		}
		sum += math.Float64frombits(hc.sumBits.Load())
	}
	for _, c := range counts {
		total += c
	}
	return counts, total, sum
}

// Count returns the merged observation count. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	_, n, _ := h.snapshot()
	return n
}

// Sum returns the merged observation sum. Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	_, _, s := h.snapshot()
	return s
}

// HistogramHandle is one writer's private cell block of a Histogram.
type HistogramHandle struct {
	h  *Histogram
	hc *histCells
}

// Observe records v into the handle's private cells. Nil-safe.
func (hh *HistogramHandle) Observe(v float64) {
	if hh == nil {
		return
	}
	hh.hc.observe(hh.h.bounds, v)
}

// Sample is one scrape-time data point emitted by a collector:
// derived values (queue depths, live percentiles from the measurement
// bridge, runtime stats) that are computed when /metrics is read
// rather than maintained on a hot path.
type Sample struct {
	Name   string   // metric family name
	Kind   Kind     // KindGauge or KindCounter
	Help   string   // optional; first non-empty help per family wins
	Labels []string // alternating key, value
	Value  float64
}

// series is one registered (family, labels) pair.
type series struct {
	labels string // rendered `k="v",…` fragment, canonical (sorted keys)
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	kind   Kind
	help   string
	order  []string // label fragments in registration order
	series map[string]*series
}

// Registry holds metric families and scrape-time collectors. All
// methods are safe for concurrent use and no-ops on a nil receiver.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func() []Sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry backs Default(): the process-wide registry that the
// -ops-addr listeners serve and that property-driven bindings attach
// to (obs.enabled=true).
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Enabled returns the process-wide registry when on is true and nil
// otherwise — the one-liner bindings use to honour the "obs.enabled"
// workload property (a nil registry disables instrumentation
// entirely; see the nil-safety contract above).
func Enabled(on bool) *Registry {
	if on {
		return defaultRegistry
	}
	return nil
}

// labelFragment renders alternating key/value pairs as `k="v",…` with
// keys sorted so the same label set always names the same series.
// Values are escaped per the exposition format.
func labelFragment(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	if len(labels)%2 != 0 {
		pairs = append(pairs, kv{labels[len(labels)-1], ""})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getSeries returns (creating if absent) the series for name+labels,
// checking the family kind. A kind clash is a programming error and
// panics, like the upstream Prometheus client.
func (r *Registry) getSeries(name string, kind Kind, labels []string) *series {
	frag := labelFragment(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind == "" {
		f.kind = kind // family pre-created by Help
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[frag]
	if !ok {
		s = &series{labels: frag}
		f.series[frag] = s
		f.order = append(f.order, frag)
	}
	return s
}

// Counter returns (creating if absent) the counter series for
// name+labels, given as alternating key, value. Nil-safe: a nil
// registry returns a nil Counter whose methods no-op.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (creating if absent) the gauge series for name+labels.
// Nil-safe.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers fn as the scrape-time value of the gauge series
// for name+labels, replacing any previous function for the same
// series (so an owner swapped at runtime re-registers cleanly).
// Nil-safe.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.getSeries(name, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gf = fn
}

// Histogram returns (creating if absent) the histogram series for
// name+labels with the given bucket upper bounds (+Inf is implicit).
// Bounds are fixed at first registration. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// Help sets the # HELP text of a metric family. Nil-safe.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: make(map[string]*series)}
	}
}

// RegisterCollector adds a scrape-time sample source; every /metrics
// read invokes it and merges its samples into the exposition.
// Nil-safe.
func (r *Registry) RegisterCollector(fn func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// exportLine is one sample line of the exposition.
type exportLine struct {
	name  string // full series name including labels
	value string
}

// exportFamily is a family resolved for export.
type exportFamily struct {
	kind  Kind
	help  string
	lines []exportLine
}

// Export writes the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with a # TYPE line
// (and # HELP when set), histograms expanded into cumulative
// _bucket{le=…}, _sum and _count. Nil-safe.
func (r *Registry) Export(w io.Writer) error {
	if r == nil {
		return nil
	}
	out := make(map[string]*exportFamily)
	ensure := func(name string, kind Kind, help string) *exportFamily {
		ef, ok := out[name]
		if !ok {
			ef = &exportFamily{kind: kind, help: help}
			out[name] = ef
		}
		if ef.help == "" {
			ef.help = help
		}
		return ef
	}

	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := append([]func() []Sample(nil), r.collectors...)
	r.mu.RUnlock()

	for _, f := range fams {
		r.mu.RLock()
		order := append([]string(nil), f.order...)
		kind, help := f.kind, f.help
		serieses := make([]*series, 0, len(order))
		for _, frag := range order {
			serieses = append(serieses, f.series[frag])
		}
		r.mu.RUnlock()
		if len(serieses) == 0 {
			continue
		}
		ef := ensure(f.name, kind, help)
		for _, s := range serieses {
			switch {
			case s.c != nil:
				ef.lines = append(ef.lines, exportLine{seriesName(f.name, s.labels), strconv.FormatInt(s.c.Value(), 10)})
			case s.gf != nil:
				ef.lines = append(ef.lines, exportLine{seriesName(f.name, s.labels), formatFloat(s.gf())})
			case s.g != nil:
				ef.lines = append(ef.lines, exportLine{seriesName(f.name, s.labels), strconv.FormatInt(s.g.Value(), 10)})
			case s.h != nil:
				appendHistogramLines(ef, f.name, s.labels, s.h)
			}
		}
	}

	for _, fn := range collectors {
		for _, smp := range fn() {
			kind := smp.Kind
			if kind == "" {
				kind = KindGauge
			}
			ef := ensure(smp.Name, kind, smp.Help)
			ef.lines = append(ef.lines, exportLine{
				seriesName(smp.Name, labelFragment(smp.Labels)),
				formatFloat(smp.Value),
			})
		}
	}

	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ef := out[n]
		if len(ef.lines) == 0 {
			continue
		}
		if ef.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, ef.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, ef.kind); err != nil {
			return err
		}
		for _, l := range ef.lines {
			if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
				return err
			}
		}
	}
	return nil
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// appendHistogramLines expands one histogram series into its
// cumulative bucket, sum and count lines.
func appendHistogramLines(ef *exportFamily, name, labels string, h *Histogram) {
	counts, total, sum := h.snapshot()
	var cum int64
	for i, b := range h.bounds {
		cum += counts[i]
		ef.lines = append(ef.lines, exportLine{
			seriesName(name+"_bucket", joinLabels(labels, `le="`+formatFloat(b)+`"`)),
			strconv.FormatInt(cum, 10),
		})
	}
	ef.lines = append(ef.lines,
		exportLine{seriesName(name+"_bucket", joinLabels(labels, `le="+Inf"`)), strconv.FormatInt(total, 10)},
		exportLine{seriesName(name+"_sum", labels), formatFloat(sum)},
		exportLine{seriesName(name+"_count", labels), strconv.FormatInt(total, 10)},
	)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
