package measurement

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasic(t *testing.T) {
	r := NewRegistry(0)
	r.Measure("READ", 100*time.Microsecond, 0)
	r.Measure("READ", 300*time.Microsecond, 0)
	r.Measure("READ", 200*time.Microsecond, 1)
	s := r.Snapshot("READ")
	if s.Operations != 3 {
		t.Errorf("Operations = %d", s.Operations)
	}
	if s.AvgUS != 200 {
		t.Errorf("AvgUS = %v", s.AvgUS)
	}
	if s.MinUS != 100 || s.MaxUS != 300 {
		t.Errorf("Min/Max = %d/%d", s.MinUS, s.MaxUS)
	}
	if s.Returns[0] != 2 || s.Returns[1] != 1 {
		t.Errorf("Returns = %v", s.Returns)
	}
}

func TestEmptySeries(t *testing.T) {
	r := NewRegistry(0)
	s := r.Snapshot("NOPE")
	if s.Operations != 0 || s.MinUS != 0 || s.MaxUS != 0 || s.AvgUS != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	// Creating the series but never measuring must also give zeros.
	r.Series("EMPTY")
	s = r.Snapshot("EMPTY")
	if s.MinUS != 0 {
		t.Errorf("MinUS of empty created series = %d", s.MinUS)
	}
}

func TestNegativeLatencyClamped(t *testing.T) {
	r := NewRegistry(0)
	r.Measure("X", -5*time.Microsecond, 0)
	s := r.Snapshot("X")
	if s.MinUS != 0 || s.MaxUS != 0 {
		t.Errorf("negative latency not clamped: %+v", s)
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRegistry(0)
	// 100 measurements: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		r.Measure("OP", time.Duration(i)*time.Millisecond, 0)
	}
	s := r.Snapshot("OP")
	if s.P95MS < 94 || s.P95MS > 96 {
		t.Errorf("P95 = %d, want ≈95", s.P95MS)
	}
	if s.P99MS < 98 || s.P99MS > 100 {
		t.Errorf("P99 = %d, want ≈99", s.P99MS)
	}
}

func TestPercentileOverflowBucket(t *testing.T) {
	r := NewRegistry(0)
	r.Measure("SLOW", 5*time.Second, 0)
	s := r.Snapshot("SLOW")
	if s.P99MS != 1000 {
		t.Errorf("overflow percentile = %d, want capped at 1000", s.P99MS)
	}
}

func TestConcurrentMeasure(t *testing.T) {
	r := NewRegistry(0)
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Measure("READ", time.Duration(i%50)*time.Microsecond, i%3)
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot("READ")
	if s.Operations != workers*per {
		t.Errorf("Operations = %d, want %d", s.Operations, workers*per)
	}
	var retSum int64
	for _, c := range s.Returns {
		retSum += c
	}
	if retSum != workers*per {
		t.Errorf("return counts sum to %d", retSum)
	}
	if s.MinUS != 0 || s.MaxUS != 49 {
		t.Errorf("Min/Max = %d/%d", s.MinUS, s.MaxUS)
	}
}

// Property: count equals the histogram bucket sum, and min ≤ avg ≤ max.
func TestHistogramInvariantsQuick(t *testing.T) {
	f := func(latenciesMS []uint16) bool {
		r := NewRegistry(0)
		ser := r.Series("P")
		for _, l := range latenciesMS {
			ser.Measure(time.Duration(l%2000)*time.Millisecond, 0)
		}
		var bucketSum int64
		for i := 0; i < ser.NumBuckets(); i++ {
			bucketSum += ser.HistogramBucket(i)
		}
		s := ser.Snapshot()
		if bucketSum != s.Operations {
			return false
		}
		if s.Operations > 0 {
			minUS, maxUS := float64(s.MinUS), float64(s.MaxUS)
			if s.AvgUS < minUS-0.5 || s.AvgUS > maxUS+0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExportTextFormat(t *testing.T) {
	r := NewRegistry(0)
	r.Measure("UPDATE", 1536*time.Microsecond, 0)
	r.Measure("COMMIT", 1*time.Microsecond, 0)
	var buf bytes.Buffer
	if err := r.ExportText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[UPDATE], Operations, 1",
		"[UPDATE], AverageLatency(us), 1536",
		"[UPDATE], MinLatency(us), 1536",
		"[UPDATE], MaxLatency(us), 1536",
		"[UPDATE], Return=0, 1",
		"[COMMIT], Operations, 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Series are exported sorted by name: COMMIT before UPDATE,
	// whatever order they were first measured in.
	if strings.Index(out, "[COMMIT]") > strings.Index(out, "[UPDATE]") {
		t.Error("series not in sorted-name order")
	}
}

func TestSnapshotsSortedDeterministic(t *testing.T) {
	r := NewRegistry(0)
	// Touch series in an order far from sorted.
	for _, n := range []string{"UPDATE", "ABORT", "READ", "COMMIT", "INSERT"} {
		r.Measure(n, time.Microsecond, 0)
	}
	want := []string{"ABORT", "COMMIT", "INSERT", "READ", "UPDATE"}
	for trial := 0; trial < 3; trial++ {
		snaps := r.Snapshots()
		if len(snaps) != len(want) {
			t.Fatalf("Snapshots len = %d", len(snaps))
		}
		for i, s := range snaps {
			if s.Name != want[i] {
				t.Fatalf("Snapshots order = %v at %d, want %v", s.Name, i, want)
			}
		}
	}
	var buf bytes.Buffer
	if err := r.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Summary
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("ExportJSON order = %v, want %v", got, want)
		}
	}
}

func TestRecorderShardsMerge(t *testing.T) {
	r := NewRegistry(0)
	// Three writers: two private recorders plus the shared series path.
	rec1 := r.Recorder()
	rec2 := r.Recorder()
	h1 := rec1.Series("READ")
	h2 := rec2.Series("READ")
	h1.Measure(100*time.Microsecond, 0)
	h1.Measure(300*time.Microsecond, 1)
	h2.Measure(50*time.Microsecond, 0)
	r.Measure("READ", 450*time.Microsecond, 2)

	s := r.Snapshot("READ")
	if s.Operations != 4 {
		t.Errorf("merged Operations = %d, want 4", s.Operations)
	}
	if s.MinUS != 50 || s.MaxUS != 450 {
		t.Errorf("merged Min/Max = %d/%d, want 50/450", s.MinUS, s.MaxUS)
	}
	if s.AvgUS != 225 {
		t.Errorf("merged AvgUS = %v, want 225", s.AvgUS)
	}
	if s.Returns[0] != 2 || s.Returns[1] != 1 || s.Returns[2] != 1 {
		t.Errorf("merged Returns = %v", s.Returns)
	}
	// Resolving the same series twice on one recorder reuses the handle
	// (and therefore the shard).
	if rec1.Series("READ") != h1 {
		t.Error("recorder handed out two handles for one series")
	}
}

func TestRecorderReturnCodeSlots(t *testing.T) {
	r := NewRegistry(0)
	h := r.Recorder().Series("OP")
	h.Measure(time.Microsecond, 0)
	h.Measure(time.Microsecond, -1)  // unknown error
	h.Measure(time.Microsecond, 99)  // out of range → "other"
	h.Measure(time.Microsecond, -42) // out of range → "other"
	s := r.Snapshot("OP")
	if s.Returns[0] != 1 {
		t.Errorf("Returns[0] = %d", s.Returns[0])
	}
	// Everything unrepresentable lands on code -1.
	if s.Returns[-1] != 3 {
		t.Errorf("Returns[-1] = %d, want 3 (got %v)", s.Returns[-1], s.Returns)
	}
}

func TestRecorderConcurrentWithSnapshots(t *testing.T) {
	r := NewRegistry(0)
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Recorder().Series("READ")
			for i := 0; i < per; i++ {
				h.Measure(time.Duration(i%50)*time.Microsecond, i%3)
			}
		}(w)
	}
	// Snapshot while writers run: must not race and never tear counts.
	for i := 0; i < 200; i++ {
		var retSum int64
		s := r.Snapshot("READ")
		for _, c := range s.Returns {
			retSum += c
		}
		if retSum > s.Operations {
			t.Fatalf("return counts %d exceed operations %d", retSum, s.Operations)
		}
	}
	wg.Wait()
	s := r.Snapshot("READ")
	if s.Operations != workers*per {
		t.Errorf("Operations = %d, want %d", s.Operations, workers*per)
	}
	if s.MinUS != 0 || s.MaxUS != 49 {
		t.Errorf("Min/Max = %d/%d", s.MinUS, s.MaxUS)
	}
}

func TestExportTextHistogramLines(t *testing.T) {
	r := NewRegistry(3)
	r.Measure("OP", 500*time.Microsecond, 0)  // bucket 0
	r.Measure("OP", 1500*time.Microsecond, 0) // bucket 1
	r.Measure("OP", 10*time.Millisecond, 0)   // overflow (>2)
	var buf bytes.Buffer
	if err := r.ExportText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[OP], 0, 1",
		"[OP], 1, 1",
		"[OP], 2, 0",
		"[OP], >2, 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExportJSON(t *testing.T) {
	r := NewRegistry(0)
	r.Measure("READ", time.Millisecond, 0)
	var buf bytes.Buffer
	if err := r.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Summary
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "READ" || got[0].Operations != 1 {
		t.Errorf("JSON round trip = %+v", got)
	}
}

func TestTotalOperations(t *testing.T) {
	r := NewRegistry(0)
	r.Measure("A", time.Microsecond, 0)
	r.Measure("A", time.Microsecond, 0)
	r.Measure("B", time.Microsecond, 0)
	if got := r.TotalOperations("A"); got != 2 {
		t.Errorf("TotalOperations(A) = %d", got)
	}
	if got := r.TotalOperations(); got != 3 {
		t.Errorf("TotalOperations() = %d", got)
	}
	if got := r.TotalOperations("A", "B"); got != 3 {
		t.Errorf("TotalOperations(A,B) = %d", got)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	time.Sleep(2 * time.Millisecond)
	if d := tm.Done(); d < time.Millisecond || d > time.Second {
		t.Errorf("timer measured %v", d)
	}
}

func TestSeriesRace(t *testing.T) {
	// Snapshot concurrently with Measure must not race (run with -race).
	r := NewRegistry(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			r.Measure("R", time.Duration(i)*time.Microsecond, 0)
		}
	}()
	for i := 0; i < 100; i++ {
		s := r.Snapshot("R")
		if s.Operations > 0 && float64(s.MinUS) > math.Max(s.AvgUS, 1) {
			// MinUS can briefly exceed avg only through tearing, which
			// the atomics prevent for a single writer.
			t.Fatalf("torn snapshot: %+v", s)
		}
	}
	<-done
}

func BenchmarkMeasure(b *testing.B) {
	r := NewRegistry(0)
	s := r.Series("READ")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Measure(123*time.Microsecond, 0)
		}
	})
}

// BenchmarkSeriesMeasureParallel is the sharded-recorder hot path as
// the client runs it: one Recorder per goroutine, handle resolved
// once, every Measure hitting thread-private shards. Compare with
// BenchmarkMeasure (all writers sharing one shard) at -cpu=1,8,32.
func BenchmarkSeriesMeasureParallel(b *testing.B) {
	r := NewRegistry(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		h := r.Recorder().Series("READ")
		for pb.Next() {
			h.Measure(123*time.Microsecond, 0)
		}
	})
}
