package measurement

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Timeline records per-interval operation counts — YCSB's
// "timeseries" measurement type. It answers questions the aggregate
// histogram cannot: warm-up ramps, throttling plateaus, and
// throughput collapses mid-run.
//
// Record is safe for concurrent use and lock-free once a bucket
// exists; buckets grow on demand.
type Timeline struct {
	start    time.Time
	interval time.Duration

	mu      sync.RWMutex
	buckets []*atomic.Int64
}

// NewTimeline starts a timeline now with the given bucket interval.
func NewTimeline(interval time.Duration) *Timeline {
	if interval <= 0 {
		interval = time.Second
	}
	return &Timeline{start: time.Now(), interval: interval}
}

// Record counts one operation completing now.
func (t *Timeline) Record() {
	idx := int(time.Since(t.start) / t.interval)
	if idx < 0 {
		idx = 0
	}
	t.mu.RLock()
	if idx < len(t.buckets) {
		t.buckets[idx].Add(1)
		t.mu.RUnlock()
		return
	}
	t.mu.RUnlock()
	t.mu.Lock()
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, &atomic.Int64{})
	}
	t.buckets[idx].Add(1)
	t.mu.Unlock()
}

// Interval returns the bucket width.
func (t *Timeline) Interval() time.Duration { return t.interval }

// Counts returns a copy of the per-interval operation counts.
func (t *Timeline) Counts() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int64, len(t.buckets))
	for i, b := range t.buckets {
		out[i] = b.Load()
	}
	return out
}

// Rates returns per-interval throughput in ops/sec.
func (t *Timeline) Rates() []float64 {
	counts := t.Counts()
	out := make([]float64, len(counts))
	secs := t.interval.Seconds()
	for i, c := range counts {
		out[i] = float64(c) / secs
	}
	return out
}

// ExportText writes the timeline in the YCSB time-series style:
//
//	[TIMELINE], 0, 812.0
//	[TIMELINE], 1, 1033.0
//
// where the second column is the interval start in seconds and the
// third the interval's throughput in ops/sec.
func (t *Timeline) ExportText(w io.Writer) error {
	for i, r := range t.Rates() {
		sec := float64(i) * t.interval.Seconds()
		if _, err := fmt.Fprintf(w, "[TIMELINE], %g, %.1f\n", sec, r); err != nil {
			return err
		}
	}
	return nil
}
