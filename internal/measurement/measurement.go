// Package measurement collects and reports the per-operation latency
// metrics of a YCSB+T run.
//
// Every database operation type gets its own named series: the raw
// CRUD series ("READ", "UPDATE", …), the transaction-demarcation
// series ("START", "COMMIT", "ABORT"), and — for Tier 5, transactional
// overhead — one "TX-<TYPE>" series per workload operation type that
// records the latency of the whole wrapping transaction. The text
// exporter reproduces the output format of Listing 3 in the paper:
//
//	[UPDATE], Operations, 200206
//	[UPDATE], AverageLatency(us), 1536.4616944547117
//	[UPDATE], MinLatency(us), 1202
//	[UPDATE], MaxLatency(us), 80946
//	[UPDATE], Return=0, 200206
//
// # Sharded recording
//
// The hot path is lock-free: a Series is a set of shards, each a block
// of plain atomics (count, sum, min/max, 1-ms histogram, and a fixed
// return-code array — no map, no mutex). Client threads obtain a
// per-thread Recorder from the Registry; each Recorder writes to its
// own private shard per series, so concurrent threads never touch the
// same cache lines on the per-operation path. Readers
// (Snapshot/Export*) merge all shards at read time, which is the cold
// path. Series.Measure without a Recorder is still supported and
// lock-free; it writes to a shared multi-writer shard.
package measurement

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultHistogramBuckets is the number of 1-ms histogram buckets
// maintained for percentile estimation, matching YCSB's default.
const defaultHistogramBuckets = 1000

// maxReturnSlots sizes the fixed per-shard return-code array. Codes
// 0..maxReturnSlots-2 index their own slot; every other code
// (negative, e.g. the -1 "unknown error" code, or overflow) shares
// the final slot and is reported back as code -1.
const maxReturnSlots = 16

// returnSlot maps a return code onto its array slot.
func returnSlot(code int) int {
	if code >= 0 && code < maxReturnSlots-1 {
		return code
	}
	return maxReturnSlots - 1
}

// shard is one writer's view of a series: a block of atomics with no
// interior locking. A shard handed to a Recorder has a single writing
// goroutine in the common case, but every update is a full atomic
// RMW, so sharing one (Series.Measure's shared shard) stays correct —
// merely contended. There is deliberately no operation counter: the
// count is the sum of the return-code array, recovered at snapshot
// time, which keeps one atomic off the per-operation path.
type shard struct {
	sumUS   atomic.Int64
	minUS   atomic.Int64 // math.MaxInt64 until first measurement
	maxUS   atomic.Int64
	returns [maxReturnSlots]atomic.Int64
	// histogram of latencies in 1-ms buckets; the final slot counts
	// overflow (latency ≥ len-1 ms).
	buckets []atomic.Int64
}

// count recovers the shard's operation count (snapshot-time only).
func (sh *shard) countOps() int64 {
	var n int64
	for i := range sh.returns {
		n += sh.returns[i].Load()
	}
	return n
}

func newShard(nbuckets int) *shard {
	sh := &shard{buckets: make([]atomic.Int64, nbuckets+1)}
	sh.minUS.Store(math.MaxInt64)
	return sh
}

func (sh *shard) measure(latency time.Duration, returnCode int) {
	sh.measureN(latency, returnCode, 1)
}

// measureN records n operations that shared one latency (a batch: each
// item experienced the whole batch's round trip). sum, histogram and
// return counts weight by n, so Operations counts items while AvgUS
// stays the per-item latency.
func (sh *shard) measureN(latency time.Duration, returnCode int, n int64) {
	if n <= 0 {
		return
	}
	us := latency.Microseconds()
	if us < 0 {
		us = 0
	}
	sh.sumUS.Add(us * n)
	for {
		cur := sh.minUS.Load()
		if us >= cur || sh.minUS.CompareAndSwap(cur, us) {
			break
		}
	}
	for {
		cur := sh.maxUS.Load()
		if us <= cur || sh.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
	ms := us / 1000
	if ms >= int64(len(sh.buckets)-1) {
		ms = int64(len(sh.buckets) - 1)
	}
	sh.buckets[ms].Add(n)
	sh.returns[returnSlot(returnCode)].Add(n)
}

// Series accumulates latency measurements for one operation type.
type Series struct {
	name     string
	nbuckets int

	// shared is the multi-writer shard behind Series.Measure, for
	// callers that never allocated a Recorder.
	shared shard

	// extra holds the Recorder-owned shards. The slice is replaced
	// copy-on-write (guarded by grow) so readers can load it without
	// locking; Measure never touches grow.
	grow  sync.Mutex
	extra atomic.Pointer[[]*shard]
}

func newSeries(name string, nbuckets int) *Series {
	if nbuckets <= 0 {
		nbuckets = defaultHistogramBuckets
	}
	s := &Series{name: name, nbuckets: nbuckets}
	s.shared.buckets = make([]atomic.Int64, nbuckets+1)
	s.shared.minUS.Store(math.MaxInt64)
	return s
}

// Name returns the series name, e.g. "READ" or "TX-READMODIFYWRITE".
func (s *Series) Name() string { return s.name }

// Measure records one operation with the given latency and return
// code (0 = success, like YCSB's Status ordinals) into the shared
// shard. Lock-free; prefer a Recorder handle on hot paths so threads
// write disjoint shards.
func (s *Series) Measure(latency time.Duration, returnCode int) {
	s.shared.measure(latency, returnCode)
}

// MeasureN records n operations sharing one latency (see
// SeriesRecorder.MeasureN) into the shared shard.
func (s *Series) MeasureN(latency time.Duration, returnCode int, n int64) {
	s.shared.measureN(latency, returnCode, n)
}

// newShard allocates a fresh single-writer shard and links it into
// the series. Called once per (Recorder, series); not a hot path.
func (s *Series) newShard() *shard {
	sh := newShard(s.nbuckets)
	s.grow.Lock()
	old := s.extra.Load()
	var next []*shard
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, sh)
	s.extra.Store(&next)
	s.grow.Unlock()
	return sh
}

// allShards returns the shared shard plus every recorder shard.
func (s *Series) allShards() []*shard {
	out := []*shard{&s.shared}
	if extra := s.extra.Load(); extra != nil {
		out = append(out, *extra...)
	}
	return out
}

// Summary is a point-in-time snapshot of a series.
type Summary struct {
	Name       string        `json:"name"`
	Operations int64         `json:"operations"`
	AvgUS      float64       `json:"avg_us"`
	MinUS      int64         `json:"min_us"`
	MaxUS      int64         `json:"max_us"`
	P50MS      int64         `json:"p50_ms"`
	P95MS      int64         `json:"p95_ms"`
	P99MS      int64         `json:"p99_ms"`
	Returns    map[int]int64 `json:"returns"`
}

// Snapshot merges every shard into a consistent-enough summary.
// Usually called after the run completes; mid-run calls (the status
// reporter) may observe operations mid-flight, which is fine for
// progress reporting.
func (s *Series) Snapshot() Summary {
	var (
		n, sum  int64
		minUS   int64 = math.MaxInt64
		maxUS   int64
		returns [maxReturnSlots]int64
	)
	buckets := make([]int64, s.nbuckets+1)
	for _, sh := range s.allShards() {
		c := sh.countOps()
		if c == 0 {
			continue
		}
		n += c
		sum += sh.sumUS.Load()
		if m := sh.minUS.Load(); m < minUS {
			minUS = m
		}
		if m := sh.maxUS.Load(); m > maxUS {
			maxUS = m
		}
		for i := range sh.buckets {
			buckets[i] += sh.buckets[i].Load()
		}
		for i := range sh.returns {
			returns[i] += sh.returns[i].Load()
		}
	}
	if n == 0 {
		minUS = 0
	}
	out := Summary{
		Name:       s.name,
		Operations: n,
		MinUS:      minUS,
		MaxUS:      maxUS,
		Returns:    make(map[int]int64),
	}
	if n > 0 {
		out.AvgUS = float64(sum) / float64(n)
	}
	out.P50MS = percentileMS(buckets, n, 0.50)
	out.P95MS = percentileMS(buckets, n, 0.95)
	out.P99MS = percentileMS(buckets, n, 0.99)
	for slot, c := range returns {
		if c == 0 {
			continue
		}
		code := slot
		if slot == maxReturnSlots-1 {
			code = -1
		}
		out.Returns[code] = c
	}
	return out
}

// percentileMS estimates the p-th percentile latency in milliseconds
// from a merged bucket histogram.
func percentileMS(buckets []int64, n int64, p float64) int64 {
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(n) * p))
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			return int64(i)
		}
	}
	return int64(len(buckets) - 1)
}

// HistogramBucket returns the count of measurements that fell in the
// i-th 1-ms bucket (the final index is the overflow bucket), merged
// across shards.
func (s *Series) HistogramBucket(i int) int64 {
	if i < 0 || i > s.nbuckets {
		return 0
	}
	var total int64
	for _, sh := range s.allShards() {
		total += sh.buckets[i].Load()
	}
	return total
}

// NumBuckets returns the number of histogram buckets including the
// overflow slot.
func (s *Series) NumBuckets() int { return s.nbuckets + 1 }

// Registry holds all measurement series of one benchmark run.
type Registry struct {
	mu             sync.RWMutex
	series         map[string]*Series
	histogramCount int // buckets to *print*; 0 disables bucket lines
}

// NewRegistry returns an empty registry. printBuckets controls how
// many histogram bucket lines the text exporter prints per series
// (the "histogram.buckets" workload property; 0 disables).
func NewRegistry(printBuckets int) *Registry {
	return &Registry{
		series:         make(map[string]*Series),
		histogramCount: printBuckets,
	}
}

// Series returns the series with the given name, creating it when
// absent. Safe for concurrent use.
func (r *Registry) Series(name string) *Series {
	r.mu.RLock()
	s, ok := r.series[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.series[name]; ok {
		return s
	}
	s = newSeries(name, defaultHistogramBuckets)
	r.series[name] = s
	return s
}

// Measure records one measurement in the named series' shared shard.
// Convenience slow-ish path (map lookup under RLock); hot loops should
// hold a Recorder handle instead.
func (r *Registry) Measure(name string, latency time.Duration, returnCode int) {
	r.Series(name).Measure(latency, returnCode)
}

// Recorder is a per-thread front end to the registry: each series
// handle it resolves is backed by a private shard, so measurements
// from distinct Recorders never contend. Handle resolution takes a
// small lock; do it once (Series) and measure through the returned
// handle on the hot path. A Recorder is safe for concurrent use, but
// sharing one across threads shares its shards and reintroduces
// contention.
type Recorder struct {
	reg     *Registry
	mu      sync.Mutex
	handles map[string]*SeriesRecorder
}

// Recorder allocates a new per-thread recorder over the registry.
func (r *Registry) Recorder() *Recorder {
	return &Recorder{reg: r, handles: make(map[string]*SeriesRecorder)}
}

// Series resolves (once) the recorder's private handle for a series.
func (rec *Recorder) Series(name string) *SeriesRecorder {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if h, ok := rec.handles[name]; ok {
		return h
	}
	h := &SeriesRecorder{sh: rec.reg.Series(name).newShard()}
	rec.handles[name] = h
	return h
}

// Measure records into the named series via the recorder's private
// shard (resolving the handle on first use).
func (rec *Recorder) Measure(name string, latency time.Duration, returnCode int) {
	rec.Series(name).Measure(latency, returnCode)
}

// SeriesRecorder is one recorder's handle to one series. Measure is
// the per-operation hot path: a handful of uncontended atomics, no
// map, no mutex.
type SeriesRecorder struct {
	sh *shard
}

// Measure records one operation into the handle's private shard.
func (h *SeriesRecorder) Measure(latency time.Duration, returnCode int) {
	h.sh.measure(latency, returnCode)
}

// MeasureN records n operations that shared one latency — a batch,
// where every item experienced the batch's round trip. Operations
// counts items (n per call) while the latency statistics weight each
// item at the shared duration, so AvgUS reads as per-item latency.
func (h *SeriesRecorder) MeasureN(latency time.Duration, returnCode int, n int64) {
	h.sh.measureN(latency, returnCode, n)
}

// Names returns the series names sorted alphabetically, so reports
// and exports are deterministic across runs.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshots returns summaries for every series, sorted by name.
func (r *Registry) Snapshots() []Summary {
	names := r.Names()
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		out = append(out, r.Series(n).Snapshot())
	}
	return out
}

// Snapshot returns the summary for one named series (zero Summary
// when the series does not exist yet).
func (r *Registry) Snapshot(name string) Summary {
	r.mu.RLock()
	s, ok := r.series[name]
	r.mu.RUnlock()
	if !ok {
		return Summary{Name: name, Returns: map[int]int64{}}
	}
	return s.Snapshot()
}

// TotalOperations sums the operation counts of the listed series; it
// is used for the overall-throughput line. When no names are given it
// sums every series.
func (r *Registry) TotalOperations(names ...string) int64 {
	if len(names) == 0 {
		names = r.Names()
	}
	var total int64
	for _, n := range names {
		total += r.Snapshot(n).Operations
	}
	return total
}

// ExportText writes every series in the paper's Listing 3 format,
// sorted by series name.
func (r *Registry) ExportText(w io.Writer) error {
	for _, s := range r.Snapshots() {
		if err := exportSeriesText(w, s, r); err != nil {
			return err
		}
	}
	return nil
}

func exportSeriesText(w io.Writer, s Summary, r *Registry) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("[%s], Operations, %d\n", s.Name, s.Operations); err != nil {
		return err
	}
	if err := p("[%s], AverageLatency(us), %g\n", s.Name, s.AvgUS); err != nil {
		return err
	}
	if err := p("[%s], MinLatency(us), %d\n", s.Name, s.MinUS); err != nil {
		return err
	}
	if err := p("[%s], MaxLatency(us), %d\n", s.Name, s.MaxUS); err != nil {
		return err
	}
	if err := p("[%s], 95thPercentileLatency(ms), %d\n", s.Name, s.P95MS); err != nil {
		return err
	}
	if err := p("[%s], 99thPercentileLatency(ms), %d\n", s.Name, s.P99MS); err != nil {
		return err
	}
	codes := make([]int, 0, len(s.Returns))
	for c := range s.Returns {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		if err := p("[%s], Return=%d, %d\n", s.Name, c, s.Returns[c]); err != nil {
			return err
		}
	}
	if r.histogramCount > 0 {
		ser := r.Series(s.Name)
		n := r.histogramCount
		if n > ser.NumBuckets()-1 {
			n = ser.NumBuckets() - 1
		}
		for i := 0; i < n; i++ {
			if err := p("[%s], %d, %d\n", s.Name, i, ser.HistogramBucket(i)); err != nil {
				return err
			}
		}
		var overflow int64
		for i := n; i < ser.NumBuckets(); i++ {
			overflow += ser.HistogramBucket(i)
		}
		if err := p("[%s], >%d, %d\n", s.Name, n-1, overflow); err != nil {
			return err
		}
	}
	return nil
}

// ExportJSON writes every series summary as a JSON array, sorted by
// series name so exports diff cleanly across runs.
func (r *Registry) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshots())
}

// Timer measures one interval; use Start then observe with Done.
type Timer struct {
	start time.Time
}

// StartTimer begins timing now.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Done returns the elapsed time since StartTimer.
func (t Timer) Done() time.Duration { return time.Since(t.start) }
