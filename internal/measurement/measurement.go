// Package measurement collects and reports the per-operation latency
// metrics of a YCSB+T run.
//
// Every database operation type gets its own named series: the raw
// CRUD series ("READ", "UPDATE", …), the transaction-demarcation
// series ("START", "COMMIT", "ABORT"), and — for Tier 5, transactional
// overhead — one "TX-<TYPE>" series per workload operation type that
// records the latency of the whole wrapping transaction. The text
// exporter reproduces the output format of Listing 3 in the paper:
//
//	[UPDATE], Operations, 200206
//	[UPDATE], AverageLatency(us), 1536.4616944547117
//	[UPDATE], MinLatency(us), 1202
//	[UPDATE], MaxLatency(us), 80946
//	[UPDATE], Return=0, 200206
//
// Series are safe for concurrent use by many client threads; the hot
// path (Measure) is a handful of atomic operations.
package measurement

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultHistogramBuckets is the number of 1-ms histogram buckets
// maintained for percentile estimation, matching YCSB's default.
const defaultHistogramBuckets = 1000

// Series accumulates latency measurements for one operation type.
type Series struct {
	name string

	count atomic.Int64
	sumUS atomic.Int64
	minUS atomic.Int64 // math.MaxInt64 until first measurement
	maxUS atomic.Int64

	// histogram of latencies in 1-ms buckets; the final slot counts
	// overflow (latency ≥ len-1 ms).
	buckets []atomic.Int64

	mu      sync.Mutex
	returns map[int]int64 // return code → count
}

func newSeries(name string, nbuckets int) *Series {
	if nbuckets <= 0 {
		nbuckets = defaultHistogramBuckets
	}
	s := &Series{
		name:    name,
		buckets: make([]atomic.Int64, nbuckets+1),
		returns: make(map[int]int64),
	}
	s.minUS.Store(math.MaxInt64)
	return s
}

// Name returns the series name, e.g. "READ" or "TX-READMODIFYWRITE".
func (s *Series) Name() string { return s.name }

// Measure records one operation with the given latency and return
// code (0 = success, like YCSB's Status ordinals).
func (s *Series) Measure(latency time.Duration, returnCode int) {
	us := latency.Microseconds()
	if us < 0 {
		us = 0
	}
	s.count.Add(1)
	s.sumUS.Add(us)
	for {
		cur := s.minUS.Load()
		if us >= cur || s.minUS.CompareAndSwap(cur, us) {
			break
		}
	}
	for {
		cur := s.maxUS.Load()
		if us <= cur || s.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
	ms := us / 1000
	if ms >= int64(len(s.buckets)-1) {
		ms = int64(len(s.buckets) - 1)
	}
	s.buckets[ms].Add(1)

	s.mu.Lock()
	s.returns[returnCode]++
	s.mu.Unlock()
}

// Summary is a point-in-time snapshot of a series.
type Summary struct {
	Name       string        `json:"name"`
	Operations int64         `json:"operations"`
	AvgUS      float64       `json:"avg_us"`
	MinUS      int64         `json:"min_us"`
	MaxUS      int64         `json:"max_us"`
	P95MS      int64         `json:"p95_ms"`
	P99MS      int64         `json:"p99_ms"`
	Returns    map[int]int64 `json:"returns"`
}

// Snapshot returns a consistent-enough summary of the series. Called
// after the run completes, so no tearing matters in practice.
func (s *Series) Snapshot() Summary {
	n := s.count.Load()
	sum := s.sumUS.Load()
	min := s.minUS.Load()
	if n == 0 {
		min = 0
	}
	out := Summary{
		Name:       s.name,
		Operations: n,
		MinUS:      min,
		MaxUS:      s.maxUS.Load(),
		Returns:    make(map[int]int64),
	}
	if n > 0 {
		out.AvgUS = float64(sum) / float64(n)
	}
	out.P95MS = s.percentileMS(n, 0.95)
	out.P99MS = s.percentileMS(n, 0.99)
	s.mu.Lock()
	for k, v := range s.returns {
		out.Returns[k] = v
	}
	s.mu.Unlock()
	return out
}

// percentileMS estimates the p-th percentile latency in milliseconds
// from the bucket histogram.
func (s *Series) percentileMS(n int64, p float64) int64 {
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(n) * p))
	var cum int64
	for i := range s.buckets {
		cum += s.buckets[i].Load()
		if cum >= target {
			return int64(i)
		}
	}
	return int64(len(s.buckets) - 1)
}

// HistogramBucket returns the count of measurements that fell in the
// i-th 1-ms bucket (the final index is the overflow bucket).
func (s *Series) HistogramBucket(i int) int64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return s.buckets[i].Load()
}

// NumBuckets returns the number of histogram buckets including the
// overflow slot.
func (s *Series) NumBuckets() int { return len(s.buckets) }

// Registry holds all measurement series of one benchmark run.
type Registry struct {
	mu             sync.RWMutex
	series         map[string]*Series
	order          []string // insertion order, for stable reporting
	histogramCount int      // buckets to *print*; 0 disables bucket lines
}

// NewRegistry returns an empty registry. printBuckets controls how
// many histogram bucket lines the text exporter prints per series
// (the "histogram.buckets" workload property; 0 disables).
func NewRegistry(printBuckets int) *Registry {
	return &Registry{
		series:         make(map[string]*Series),
		histogramCount: printBuckets,
	}
}

// Series returns the series with the given name, creating it when
// absent. Safe for concurrent use.
func (r *Registry) Series(name string) *Series {
	r.mu.RLock()
	s, ok := r.series[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.series[name]; ok {
		return s
	}
	s = newSeries(name, defaultHistogramBuckets)
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Measure records one measurement in the named series.
func (r *Registry) Measure(name string, latency time.Duration, returnCode int) {
	r.Series(name).Measure(latency, returnCode)
}

// Names returns the series names in first-use order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Snapshots returns summaries for every series in first-use order.
func (r *Registry) Snapshots() []Summary {
	names := r.Names()
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		out = append(out, r.Series(n).Snapshot())
	}
	return out
}

// Snapshot returns the summary for one named series (zero Summary
// when the series does not exist yet).
func (r *Registry) Snapshot(name string) Summary {
	r.mu.RLock()
	s, ok := r.series[name]
	r.mu.RUnlock()
	if !ok {
		return Summary{Name: name, Returns: map[int]int64{}}
	}
	return s.Snapshot()
}

// TotalOperations sums the operation counts of the listed series; it
// is used for the overall-throughput line. When no names are given it
// sums every series.
func (r *Registry) TotalOperations(names ...string) int64 {
	if len(names) == 0 {
		names = r.Names()
	}
	var total int64
	for _, n := range names {
		total += r.Snapshot(n).Operations
	}
	return total
}

// ExportText writes every series in the paper's Listing 3 format.
func (r *Registry) ExportText(w io.Writer) error {
	for _, s := range r.Snapshots() {
		if err := exportSeriesText(w, s, r); err != nil {
			return err
		}
	}
	return nil
}

func exportSeriesText(w io.Writer, s Summary, r *Registry) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("[%s], Operations, %d\n", s.Name, s.Operations); err != nil {
		return err
	}
	if err := p("[%s], AverageLatency(us), %g\n", s.Name, s.AvgUS); err != nil {
		return err
	}
	if err := p("[%s], MinLatency(us), %d\n", s.Name, s.MinUS); err != nil {
		return err
	}
	if err := p("[%s], MaxLatency(us), %d\n", s.Name, s.MaxUS); err != nil {
		return err
	}
	if err := p("[%s], 95thPercentileLatency(ms), %d\n", s.Name, s.P95MS); err != nil {
		return err
	}
	if err := p("[%s], 99thPercentileLatency(ms), %d\n", s.Name, s.P99MS); err != nil {
		return err
	}
	codes := make([]int, 0, len(s.Returns))
	for c := range s.Returns {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		if err := p("[%s], Return=%d, %d\n", s.Name, c, s.Returns[c]); err != nil {
			return err
		}
	}
	if r.histogramCount > 0 {
		ser := r.Series(s.Name)
		n := r.histogramCount
		if n > ser.NumBuckets()-1 {
			n = ser.NumBuckets() - 1
		}
		for i := 0; i < n; i++ {
			if err := p("[%s], %d, %d\n", s.Name, i, ser.HistogramBucket(i)); err != nil {
				return err
			}
		}
		var overflow int64
		for i := n; i < ser.NumBuckets(); i++ {
			overflow += ser.HistogramBucket(i)
		}
		if err := p("[%s], >%d, %d\n", s.Name, n-1, overflow); err != nil {
			return err
		}
	}
	return nil
}

// ExportJSON writes every series summary as a JSON array.
func (r *Registry) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshots())
}

// Timer measures one interval; use Start then observe with Done.
type Timer struct {
	start time.Time
}

// StartTimer begins timing now.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Done returns the elapsed time since StartTimer.
func (t Timer) Done() time.Duration { return time.Since(t.start) }
