package measurement

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimelineBasics(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		tl.Record()
	}
	time.Sleep(12 * time.Millisecond)
	for i := 0; i < 3; i++ {
		tl.Record()
	}
	counts := tl.Counts()
	if len(counts) < 2 {
		t.Fatalf("counts = %v", counts)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 8 {
		t.Errorf("total = %d, want 8", total)
	}
	if counts[0] != 5 {
		t.Errorf("first bucket = %d, want 5", counts[0])
	}
	if tl.Interval() != 10*time.Millisecond {
		t.Errorf("Interval = %v", tl.Interval())
	}
	rates := tl.Rates()
	if rates[0] != 500 { // 5 ops / 0.01s
		t.Errorf("rate[0] = %v, want 500", rates[0])
	}
}

func TestTimelineDefaultInterval(t *testing.T) {
	tl := NewTimeline(0)
	if tl.Interval() != time.Second {
		t.Errorf("default interval = %v", tl.Interval())
	}
}

func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline(time.Millisecond)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tl.Record()
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, c := range tl.Counts() {
		total += c
	}
	if total != workers*per {
		t.Errorf("total = %d, want %d", total, workers*per)
	}
}

func TestTimelineExportText(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	tl.Record()
	tl.Record()
	var buf bytes.Buffer
	if err := tl.ExportText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[TIMELINE], 0, 200.0") {
		t.Errorf("export = %q", buf.String())
	}
}
