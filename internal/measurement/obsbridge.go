package measurement

import "ycsbt/internal/obs"

// ObsCollector bridges a measurement registry into an obs registry as
// a scrape-time collector, so a live /metrics scrape mid-run shows
// per-series operation counts and latency percentiles (the TX-* and
// BATCH-* series included) without touching the hot recording path or
// perturbing the end-of-run exports — each scrape is an independent
// read-time merge of the shards, exactly like Snapshot.
//
// Register it on the obs registry the ops listener serves:
//
//	reg.RegisterCollector(measurement.ObsCollector(c.Registry()))
func ObsCollector(r *Registry) func() []obs.Sample {
	return func() []obs.Sample {
		sums := r.Snapshots()
		out := make([]obs.Sample, 0, len(sums)*5)
		for _, s := range sums {
			if s.Operations == 0 {
				continue
			}
			labels := []string{"series", s.Name}
			out = append(out,
				obs.Sample{
					Name: "ycsbt_operations_total", Kind: obs.KindCounter,
					Help:   "Operations recorded per measurement series.",
					Labels: labels, Value: float64(s.Operations),
				},
				obs.Sample{
					Name: "ycsbt_latency_avg_us", Kind: obs.KindGauge,
					Help:   "Mean per-item latency per series, microseconds.",
					Labels: labels, Value: s.AvgUS,
				},
				obs.Sample{
					Name: "ycsbt_latency_p50_ms", Kind: obs.KindGauge,
					Help:   "Median latency per series, milliseconds (1-ms buckets).",
					Labels: labels, Value: float64(s.P50MS),
				},
				obs.Sample{
					Name: "ycsbt_latency_p95_ms", Kind: obs.KindGauge,
					Help:   "95th-percentile latency per series, milliseconds.",
					Labels: labels, Value: float64(s.P95MS),
				},
				obs.Sample{
					Name: "ycsbt_latency_p99_ms", Kind: obs.KindGauge,
					Help:   "99th-percentile latency per series, milliseconds.",
					Labels: labels, Value: float64(s.P99MS),
				},
			)
		}
		return out
	}
}
