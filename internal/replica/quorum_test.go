package replica

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ycsbt/internal/kvstore"
)

func TestQuorumDefaultsToMajority(t *testing.T) {
	for _, tc := range []struct {
		backups, cfg, want int
	}{
		{1, 0, 1}, // majority of 1 = 1 (= all: classic sync)
		{2, 0, 2}, // ⌈3/2⌉ = 2 (= all: classic sync)
		{3, 0, 2},
		{4, 0, 3},
		{5, 0, 3},
		{3, 1, 1}, // explicit quorum wins
		{3, 3, 3},
	} {
		s, err := New(Config{Name: "r", Backups: tc.backups, Mode: Sync, Quorum: tc.cfg})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Quorum(); got != tc.want {
			t.Errorf("backups=%d quorum=%d: resolved %d, want %d", tc.backups, tc.cfg, got, tc.want)
		}
		s.Close()
	}
	for _, bad := range []Config{
		{Name: "r", Backups: 2, Mode: Sync, Quorum: 3},
		{Name: "r", Backups: 2, Mode: Sync, Quorum: -1},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("quorum %d with %d backups accepted", bad.Quorum, bad.Backups)
		}
	}
}

// TestQuorumAllActsLikeClassicSync pins the quorum=all behavior the
// pre-quorum Sync mode had: once a write returns, every backup has it
// and lag is zero.
func TestQuorumAllActsLikeClassicSync(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 3, Mode: Sync, Quorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if _, err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
		if lag := s.Lag(); lag != 0 {
			t.Fatalf("lag = %d after quorum=all write", lag)
		}
	}
	for b := 0; b < 3; b++ {
		if d := s.Divergence("t", b); d != 0 {
			t.Errorf("backup %d diverges by %d", b, d)
		}
	}
}

// TestQuorumMajorityAcksDespiteStalledBackup is the headline scenario:
// with 3 backups and the default quorum of 2, a completely stalled
// backup must not block writers — acks come from the healthy majority,
// the straggler's lane holds the backlog, and releasing the stall lets
// the backup converge without any write having waited for it.
func TestQuorumMajorityAcksDespiteStalledBackup(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 3, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Quorum() != 2 {
		t.Fatalf("default quorum = %d, want 2", s.Quorum())
	}
	const stalled = 2
	release := make(chan struct{})
	var held atomic.Bool
	s.stallBackup = func(idx int) {
		if idx == stalled && !held.Load() {
			held.Store(true)
			<-release
		}
	}

	ctx := context.Background()
	const n = 50
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writes blocked on the stalled backup")
	}

	// The healthy majority has everything; the straggler has applied at
	// most nothing (its lane parked before the first apply), and the
	// backlog shows up as lag.
	for b := 0; b < 2; b++ {
		if got := s.Backup(b).Len("t"); got != n {
			t.Errorf("healthy backup %d holds %d records, want %d", b, got, n)
		}
	}
	if got := s.Backup(stalled).Len("t"); got != 0 {
		t.Errorf("stalled backup applied %d records while parked", got)
	}
	if lag := s.Lag(); lag != n {
		t.Errorf("lag = %d, want %d (every write short one backup)", lag, n)
	}

	// Release the stall: the lane drains in order and the store
	// converges with zero divergence anywhere.
	close(release)
	s.Flush()
	if lag := s.Lag(); lag != 0 {
		t.Errorf("lag after drain = %d", lag)
	}
	for b := 0; b < 3; b++ {
		if d := s.Divergence("t", b); d != 0 {
			t.Errorf("backup %d diverges by %d after drain", b, d)
		}
	}
}

// TestQuorumPromoteDrainsStragglers: a promote while a straggler lane
// holds a backlog must not lose quorum-acknowledged writes — the lanes
// drain before the topology rewires, so Promote reports zero lost even
// when the promoted backup was the one behind.
func TestQuorumPromoteDrainsStragglers(t *testing.T) {
	s, err := New(Config{Name: "r", Backups: 3, Mode: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const stalled = 0 // the backup Promote will elect
	release := make(chan struct{})
	var parked atomic.Bool
	s.stallBackup = func(idx int) {
		if idx == stalled && !parked.Load() {
			parked.Store(true)
			<-release
		}
	}
	ctx := context.Background()
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), fieldsOf("v"), kvstore.AnyVersion); err != nil {
			t.Fatal(err)
		}
	}
	s.FailPrimary()
	go func() {
		// Promote blocks in drainLanes until the stall lifts — model the
		// backup recovering shortly after the failover starts.
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	if lost := s.Promote(); lost != 0 {
		t.Fatalf("sync promote lost %d writes", lost)
	}
	kvs, err := s.Scan(ctx, "t", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("new primary holds %d records, want %d", len(kvs), n)
	}
	// The rebuilt lanes replicate post-promotion writes.
	if _, err := s.Put(ctx, "t", "post", fieldsOf("v"), kvstore.AnyVersion); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	for b := 0; b < 2; b++ {
		if d := s.Divergence("t", b); d != 0 {
			t.Errorf("backup %d diverges by %d after promote", b, d)
		}
	}
}
